#!/usr/bin/env python3
"""Docs-lint: fail when documentation references code that no longer exists.

Scans every Markdown file under docs/ plus the repo-root README.md for
inline-code spans (`...`) and checks that each *checkable* token still
resolves against the repository:

  * path-like tokens (contain '/' or end in a known source extension) must
    name an existing file or directory;
  * identifier-like tokens (CamelCase, snake_case, ALL_CAPS, `qualified::names`,
    `calls()`) must appear somewhere in the non-docs tree (src/, bench/,
    tests/, tools/, examples/, CMakeLists.txt, CI config) or match a file
    basename.

Everything else — prose words, flags (`--quick`), math (`⊕`), quoted values —
is skipped, so the check stays low-noise: it exists to catch docs drifting
from renamed symbols and deleted files, not to spell-check.

Usage: tools/check_docs_symbols.py [--repo-root PATH]
Exit status: 0 = all references resolve, 1 = dangling references, 2 = usage.
"""

import argparse
import pathlib
import re
import sys

CODE_SPAN = re.compile(r"`([^`\n]+)`")
FENCE = re.compile(r"^(```|~~~)")

# Identifier-ish shapes worth checking (anything else in backticks is prose).
QUALIFIED = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(::[A-Za-z_~][A-Za-z0-9_]*)+$")
CAMEL = re.compile(r"^[A-Z][a-z0-9]+(?:[A-Z][A-Za-z0-9]*)+$")
SNAKE = re.compile(r"^[a-z][a-z0-9]*(?:_[a-z0-9]+)+$")
ALL_CAPS = re.compile(r"^[A-Z][A-Z0-9]*(?:_[A-Z0-9]+)+$")
SOURCE_EXT = (".h", ".cc", ".cpp", ".py", ".md", ".json", ".yml", ".txt")

# Trees whose text defines "exists in the code". docs/ and *.md are excluded
# on purpose: a symbol surviving only inside documentation is exactly the
# drift this check exists to catch.
CODE_TREES = ("src", "bench", "tests", "tools", "examples", ".github")
CODE_FILES = ("CMakeLists.txt",)


def doc_files(root):
    docs = sorted((root / "docs").glob("*.md")) if (root / "docs").is_dir() else []
    readme = root / "README.md"
    if readme.is_file():
        docs.append(readme)
    return docs


def load_code_corpus(root):
    chunks = []
    names = set()
    for tree in CODE_TREES:
        base = root / tree
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if not p.is_file() or p.suffix == ".md":
                continue
            names.add(p.name)
            names.add(p.stem)
            try:
                chunks.append(p.read_text(errors="replace"))
            except OSError:
                pass
    for name in CODE_FILES:
        p = root / name
        if p.is_file():
            names.add(p.name)
            chunks.append(p.read_text(errors="replace"))
    return "\n".join(chunks), names


def code_spans(text):
    """Inline-code spans outside fenced blocks (fences quote whole programs,
    prompts and shell transcripts — not single symbol references)."""
    spans = []
    fenced = False
    for line in text.splitlines():
        if FENCE.match(line.strip()):
            fenced = not fenced
            continue
        if fenced:
            continue
        spans.extend(CODE_SPAN.findall(line))
    return spans


def normalize(token):
    token = token.strip().rstrip(",.;:")
    if token.startswith("./"):
        token = token[2:]
    if token.endswith("()"):
        token = token[:-2]
    return token


def is_path_like(token):
    return "/" in token or token.endswith(SOURCE_EXT)


def is_identifier_like(token):
    return bool(
        QUALIFIED.match(token)
        or CAMEL.match(token)
        or SNAKE.match(token)
        or ALL_CAPS.match(token)
    )


def check_token(token, root, corpus, names):
    """Returns None when the token resolves, else a reason string."""
    token = normalize(token)
    if not token or any(c.isspace() for c in token) or token.startswith("-"):
        return None
    if "*" in token or "?" in token:  # glob patterns, not concrete paths
        return None
    if is_path_like(token):
        if "build/" in token:  # build artifacts exist only after cmake
            return None
        if (root / token).exists():
            return None
        base = token.rsplit("/", 1)[-1]
        if base in names:
            return None
        return f"path not found: {token}"
    if not is_identifier_like(token):
        return None
    for part in token.split("::"):
        part = part.rstrip("()")
        if part in names or part in corpus:
            continue
        return f"symbol not found in code: {part} (from `{token}`)"
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repo-root", default=None,
                    help="repository root (default: this script's parent's parent)")
    args = ap.parse_args()
    root = (pathlib.Path(args.repo_root) if args.repo_root
            else pathlib.Path(__file__).resolve().parent.parent)
    docs = doc_files(root)
    if not docs:
        print("error: no docs/*.md or README.md found", file=sys.stderr)
        return 2
    corpus, names = load_code_corpus(root)

    failures = []
    checked = 0
    for doc in docs:
        for token in code_spans(doc.read_text(errors="replace")):
            checked += 1
            reason = check_token(token, root, corpus, names)
            if reason:
                failures.append((doc.relative_to(root), reason))

    if failures:
        print(f"FAIL: {len(failures)} dangling doc reference(s):",
              file=sys.stderr)
        for doc, reason in failures:
            print(f"  {doc}: {reason}", file=sys.stderr)
        return 1
    print(f"OK: {checked} inline-code references across {len(docs)} docs "
          f"all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
