#!/usr/bin/env python3
"""Merge bench JSON arrays into one baseline file.

The committed BENCH_relation_ops.json baseline holds the rows of *both*
kernel microbenches (bench_relation_ops and bench_multiway_join); CI gates
each bench's fresh output against its own subset. After refreshing, merge
with:

  ./build/bench_relation_ops --out BENCH_relation_ops.json
  ./build/bench_multiway_join --out BENCH_multiway_join.json
  tools/merge_bench_json.py BENCH_relation_ops.json BENCH_multiway_join.json \
      --out BENCH_relation_ops.json

Rows are concatenated in argument order; a later (bench, n) duplicate
replaces an earlier one — the same key check_bench_regression.py gates on,
so a merged baseline can never carry two rows for one gate key — and
re-merging is idempotent.
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="+", help="bench JSON files to merge")
    ap.add_argument("--out", required=True, help="merged output path")
    args = ap.parse_args()

    merged = {}
    for path in args.inputs:
        try:
            with open(path) as f:
                rows = json.load(f)
        except (OSError, ValueError) as e:
            print(f"error: cannot read {path}: {e}", file=sys.stderr)
            return 2
        for row in rows:
            merged[(row["bench"], row["n"])] = row

    with open(args.out, "w") as f:
        f.write("[\n")
        rows = list(merged.values())
        for i, row in enumerate(rows):
            f.write("  " + json.dumps(row) +
                    ("," if i + 1 < len(rows) else "") + "\n")
        f.write("]\n")
    print(f"wrote {args.out} ({len(merged)} rows from {len(args.inputs)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
