#!/usr/bin/env python3
"""Validate a topofaq Chrome trace-event JSON export (CI gate).

Checks, in order:

  1. The file parses as JSON and has the Chrome trace shape:
     {"traceEvents": [...]} with only "X" (complete) and "M" (metadata)
     events.
  2. Every "X" event carries the required keys (name, pid, tid, ts, dur),
     ts/dur are finite and non-negative, and pid is 1 (wall clock) or 2
     (simulated time) — the two clock domains obs/trace.h exports.
  3. Per (pid, tid) track, clock domains never mix, and every tid has a
     thread_name metadata record.
  4. Wall-clock tracks (pid 1) are proper span *trees*: sorted by
     (ts, -dur), every span either nests inside the enclosing open span or
     starts after it ends. Simulated tracks (pid 2) are exempt from nesting
     — one node legitimately runs overlapping computes in simulated time —
     but still need ordered, non-negative intervals.
  5. Every --require NAME appears as at least one span name (CI requires
     the pipeline stages in the engine smoke trace and the transport spans
     in the async trace).

Exit 0 on success; 1 with a diagnostic naming the first offending event
otherwise.

Usage: check_trace_json.py TRACE.json [--require NAME]...
"""

import argparse
import json
import math
import sys

WALL_PID = 1
SIM_PID = 2
# Wall spans from concurrent recorders can interleave clock reads: a child's
# Emit happens after its interval closes, so sub-microsecond overhangs at
# span edges are measurement noise, not malformed nesting.
EDGE_SLACK_US = 1.0


def fail(msg):
    print(f"check_trace_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace JSON file")
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="span name that must appear at least once (repeatable)",
    )
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.trace}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents must be an array")

    named_tracks = set()  # (pid, tid) with a thread_name metadata record
    spans = []
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"event #{i} is not an object")
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") == "thread_name":
                named_tracks.add((e.get("pid"), e.get("tid")))
            continue
        if ph != "X":
            fail(f"event #{i}: unexpected ph={ph!r} (only X and M allowed)")
        for key in ("name", "pid", "tid", "ts", "dur"):
            if key not in e:
                fail(f"event #{i} ({e.get('name')!r}): missing {key!r}")
        pid, ts, dur = e["pid"], e["ts"], e["dur"]
        if pid not in (WALL_PID, SIM_PID):
            fail(f"event #{i} ({e['name']!r}): pid {pid} is neither "
                 f"{WALL_PID} (wall) nor {SIM_PID} (simulated)")
        for key in ("ts", "dur"):
            v = e[key]
            if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
                fail(f"event #{i} ({e['name']!r}): {key}={v!r} must be a "
                     "finite non-negative number")
        spans.append(e)

    if not spans:
        fail("no X (span) events in the trace")

    tracks = {}
    for e in spans:
        tracks.setdefault((e["pid"], e["tid"]), []).append(e)

    for (pid, tid), evs in sorted(tracks.items()):
        if (pid, tid) not in named_tracks:
            fail(f"track pid={pid} tid={tid} has spans but no thread_name "
                 "metadata")
        if pid == SIM_PID:
            continue  # overlap allowed in simulated time (see docstring)
        # Wall track: spans must form a tree — check with an interval stack.
        stack = []
        for e in sorted(evs, key=lambda e: (e["ts"], -e["dur"])):
            start, end = e["ts"], e["ts"] + e["dur"]
            while stack and start >= stack[-1] - EDGE_SLACK_US:
                stack.pop()
            if stack and end > stack[-1] + EDGE_SLACK_US:
                fail(f"track pid={pid} tid={tid}: span {e['name']!r} "
                     f"[{start:.3f}, {end:.3f}) overlaps the enclosing span "
                     f"ending at {stack[-1]:.3f} without nesting")
            stack.append(end)

    names = {e["name"] for e in spans}
    missing = [r for r in args.require if r not in names]
    if missing:
        fail(f"required span name(s) absent: {', '.join(missing)}; "
             f"present: {', '.join(sorted(names))}")

    n_wall = sum(len(v) for (p, _), v in tracks.items() if p == WALL_PID)
    n_sim = sum(len(v) for (p, _), v in tracks.items() if p == SIM_PID)
    print(f"check_trace_json: OK: {len(spans)} spans "
          f"({n_wall} wall, {n_sim} simulated) on {len(tracks)} tracks")


if __name__ == "__main__":
    main()
