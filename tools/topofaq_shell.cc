// topofaq_shell — interactive / batch driver for the FAQ engine.
//
// Reads commands from stdin (REPL) or from script files given on the
// command line (batch), and serves every query through one topofaq::Engine,
// printing the answer next to the engine's predicted bounds, queue class,
// and plan-cache behavior.
//
// Commands:
//   gen NAME ROWS ARITY DOMAIN [SEED]   make a random relation
//   load NAME FILE                      load rows (whitespace-separated
//                                       values, one tuple per line, '#'
//                                       comments)
//   semiring boolean|natural|counting|minplus
//   query  q(A) :- R(A,B), S(B,C); min(B)
//   explain q(A) :- ...                 parse + admission only, don't run
//   stats                               engine counters + metrics registry
//   trace on [PATH] / trace off         span tracing (Chrome trace JSON;
//                                       'off' writes PATH and reports the
//                                       span count)
//   help / quit
//
// Atom names in a query refer to gen/load relation names; atom columns bind
// positionally to the atom's written variables (faq/parse.h).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "faq/parse.h"
#include "obs/format.h"
#include "server/engine.h"
#include "util/rng.h"

namespace topofaq {
namespace {

/// Semiring-agnostic stored table: raw rows; annotations are S::One() at
/// instantiation time, so one loaded table serves queries on any semiring.
struct Table {
  size_t arity = 0;
  std::vector<std::vector<Value>> rows;
};

struct ShellState {
  Engine engine;
  std::map<std::string, Table> tables;
  std::string semiring = "counting";
};

template <CommutativeSemiring S>
Result<FaqQuery<S>> BindQuery(const ParsedQuery& parsed,
                              const ShellState& st) {
  std::vector<Relation<S>> rels;
  rels.reserve(parsed.atoms.size());
  for (const ParsedQuery::Atom& atom : parsed.atoms) {
    auto it = st.tables.find(atom.name);
    if (it == st.tables.end())
      return Status::NotFound("no relation named " + atom.name +
                              " (use gen/load first)");
    const Table& t = it->second;
    if (t.arity != atom.vars.size())
      return Status::InvalidArgument(
          "relation " + atom.name + " has arity " + std::to_string(t.arity) +
          ", atom wants " + std::to_string(atom.vars.size()));
    // Placeholder schema 0..arity-1; InstantiateQuery re-schemas the
    // columns onto the atom's variables.
    std::vector<VarId> cols(t.arity);
    for (size_t j = 0; j < cols.size(); ++j) cols[j] = static_cast<VarId>(j);
    Relation<S> r{Schema(cols)};
    for (const std::vector<Value>& row : t.rows)
      r.Add(std::span<const Value>(row.data(), row.size()), S::One());
    rels.push_back(std::move(r));
  }
  return InstantiateQuery<S>(parsed, std::move(rels));
}

template <CommutativeSemiring S>
void RunQuery(const ParsedQuery& parsed, ShellState& st, bool execute) {
  auto q = BindQuery<S>(parsed, st);
  if (!q.ok()) {
    std::printf("error: %s\n", q.status().ToString().c_str());
    return;
  }
  QueryRequest req;
  req.query = *std::move(q);
  req.tag = parsed.head;
  auto r = st.engine.Solve(std::move(req));
  if (!r.ok()) {
    std::printf("error: %s\n", r.status().ToString().c_str());
    return;
  }
  std::printf("-- %s: queue=%s  predicted<=%llu rows  observed=%llu  "
              "plan-cache=%s  queue=%.2fms exec=%.2fms\n",
              FormatQuery(parsed).c_str(), QueueClassName(r->klass),
              static_cast<unsigned long long>(r->bounds.predicted_output_rows),
              static_cast<unsigned long long>(r->observed_rows),
              r->plan_cache_hit ? "hit" : "miss", r->queue_ms, r->exec_ms);
  if (execute) {
    const auto& rel = r->answer_as<S>();
    std::printf("%s\n", rel.DebugString().c_str());
  }
}

void Dispatch(const ParsedQuery& parsed, ShellState& st, bool execute) {
  if (st.semiring == "boolean")
    RunQuery<BooleanSemiring>(parsed, st, execute);
  else if (st.semiring == "natural")
    RunQuery<NaturalSemiring>(parsed, st, execute);
  else if (st.semiring == "minplus")
    RunQuery<MinPlusSemiring>(parsed, st, execute);
  else
    RunQuery<CountingSemiring>(parsed, st, execute);
}

void PrintStats(const ShellState& st) {
  std::printf("%s", obs::FormatEngineStats(st.engine.stats()).c_str());
  std::printf("%s", st.engine.MetricsText().c_str());
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  gen NAME ROWS ARITY DOMAIN [SEED]  random relation\n"
      "  load NAME FILE                     tuples from file (one per line)\n"
      "  semiring boolean|natural|counting|minplus\n"
      "  query  q(A) :- R(A,B), S(B,C); min(B)\n"
      "  explain QUERY                      bounds/class only, no rows\n"
      "  trace on [PATH] | trace off        span tracing (Chrome JSON)\n"
      "  stats | help | quit\n");
}

/// Executes one shell line; returns false on quit.
bool HandleLine(const std::string& line, ShellState& st) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd) || cmd[0] == '#') return true;
  if (cmd == "quit" || cmd == "exit") return false;
  if (cmd == "help") {
    PrintHelp();
  } else if (cmd == "stats") {
    PrintStats(st);
  } else if (cmd == "trace") {
    std::string mode, path;
    in >> mode >> path;
    if (mode == "on") {
      st.engine.EnableTracing(path);
      std::printf("tracing on%s%s\n", path.empty() ? "" : " -> ",
                  path.c_str());
    } else if (mode == "off") {
      auto tr = st.engine.DisableTracing();
      if (tr == nullptr)
        std::printf("tracing was off\n");
      else
        std::printf("tracing off: %zu spans recorded\n", tr->event_count());
    } else {
      std::printf("usage: trace on [PATH] | trace off\n");
    }
  } else if (cmd == "semiring") {
    std::string s;
    in >> s;
    if (s == "boolean" || s == "natural" || s == "counting" || s == "minplus")
      st.semiring = s;
    else
      std::printf("error: unknown semiring '%s'\n", s.c_str());
  } else if (cmd == "gen") {
    std::string name;
    uint64_t rows = 0, arity = 0, domain = 0, seed = 42;
    if (!(in >> name >> rows >> arity >> domain) || arity == 0 ||
        domain == 0) {
      std::printf("usage: gen NAME ROWS ARITY DOMAIN [SEED]\n");
      return true;
    }
    in >> seed;
    Rng rng(seed);
    Table t;
    t.arity = arity;
    t.rows.reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) {
      std::vector<Value> row(arity);
      for (Value& v : row) v = rng.NextU64(domain);
      t.rows.push_back(std::move(row));
    }
    std::printf("%s: %zu rows, arity %llu\n", name.c_str(), t.rows.size(),
                static_cast<unsigned long long>(arity));
    st.tables[name] = std::move(t);
  } else if (cmd == "load") {
    std::string name, file;
    if (!(in >> name >> file)) {
      std::printf("usage: load NAME FILE\n");
      return true;
    }
    std::ifstream f(file);
    if (!f) {
      std::printf("error: cannot open %s\n", file.c_str());
      return true;
    }
    Table t;
    std::string row_line;
    while (std::getline(f, row_line)) {
      if (row_line.empty() || row_line[0] == '#') continue;
      std::istringstream rs(row_line);
      std::vector<Value> row;
      Value v;
      while (rs >> v) row.push_back(v);
      if (row.empty()) continue;
      if (t.arity == 0) t.arity = row.size();
      if (row.size() != t.arity) {
        std::printf("error: %s: ragged row (arity %zu vs %zu)\n",
                    file.c_str(), row.size(), t.arity);
        return true;
      }
      t.rows.push_back(std::move(row));
    }
    std::printf("%s: %zu rows, arity %zu\n", name.c_str(), t.rows.size(),
                t.arity);
    st.tables[name] = std::move(t);
  } else if (cmd == "query" || cmd == "explain") {
    std::string rest;
    std::getline(in, rest);
    auto parsed = ParseQuery(rest);
    if (!parsed.ok()) {
      std::printf("error: %s\n", parsed.status().ToString().c_str());
      return true;
    }
    Dispatch(*parsed, st, cmd == "query");
  } else {
    std::printf("error: unknown command '%s' (try help)\n", cmd.c_str());
  }
  return true;
}

int Run(int argc, char** argv) {
  ShellState st;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::ifstream f(argv[i]);
      if (!f) {
        std::printf("error: cannot open %s\n", argv[i]);
        return 1;
      }
      std::string line;
      while (std::getline(f, line))
        if (!HandleLine(line, st)) return 0;
    }
    return 0;
  }
  std::printf("topofaq shell — 'help' lists commands\n");
  std::string line;
  while (true) {
    std::printf("> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!HandleLine(line, st)) break;
  }
  return 0;
}

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) { return topofaq::Run(argc, argv); }
