// Request/response types for the engine, and the Session handle a caller
// polls, waits on, or cancels.
//
// The engine serves FAQ queries over every semiring the library ships, from
// one untemplated entry point: AnyQuery/AnyRelation are closed variants over
// the semiring set, so QueryRequest and QueryResult are plain structs that
// can sit in queues, and the engine dispatches to the templated solvers with
// one std::visit. Callers that know their semiring statically use
// Engine::Solve(FaqQuery<S>) and never see the variant.
#ifndef TOPOFAQ_SERVER_SESSION_H_
#define TOPOFAQ_SERVER_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "faq/query.h"
#include "relation/exec.h"
#include "server/admission.h"
#include "util/status.h"

namespace topofaq {

/// Every semiring the engine can execute. Gf2 rides along for the matrix
/// multiplication pipeline (mcm/faq_mcm.h), MaxProduct for MAP-style
/// marginals.
using AnyQuery =
    std::variant<FaqQuery<BooleanSemiring>, FaqQuery<NaturalSemiring>,
                 FaqQuery<CountingSemiring>, FaqQuery<MinPlusSemiring>,
                 FaqQuery<MaxProductSemiring>, FaqQuery<Gf2Semiring>>;

using AnyRelation =
    std::variant<Relation<BooleanSemiring>, Relation<NaturalSemiring>,
                 Relation<CountingSemiring>, Relation<MinPlusSemiring>,
                 Relation<MaxProductSemiring>, Relation<Gf2Semiring>>;

/// Which solver runs the query. kAuto prefers the Theorem G.3 GHD pass and
/// falls back to the brute-force oracle only when the free-variable set is
/// unsupported by the decomposition (the Appendix G.5 restriction).
enum class Strategy { kAuto = 0, kYannakakis, kBruteForce };

struct QueryRequest {
  AnyQuery query;
  Strategy strategy = Strategy::kAuto;
  /// Caller-chosen label, echoed in logs and shell output.
  std::string tag;
};

/// The answer plus everything the engine learned along the way.
struct QueryResult {
  AnyRelation answer;
  /// Kernel counters rolled up over the whole query.
  OpStats kernel;
  /// What admission predicted — compare bounds.predicted_output_rows
  /// against observed_rows for a predicted-vs-observed check.
  QueryBounds bounds;
  QueueClass klass = QueueClass::kGeneral;
  uint64_t observed_rows = 0;
  /// True when the decomposition came out of the plan cache.
  bool plan_cache_hit = false;
  double queue_ms = 0.0;  ///< admission → dispatch
  double exec_ms = 0.0;   ///< dispatch → answer

  template <CommutativeSemiring S>
  const Relation<S>& answer_as() const {
    return std::get<Relation<S>>(answer);
  }
};

/// One submitted query's lifecycle handle. Returned as a shared_ptr by
/// Engine::Submit: the engine holds one reference until the result is
/// delivered, the caller holds the other, so neither side can dangle.
///
/// Thread-safe. Cancel() may be called from any thread at any point; it
/// flips the token the query's ExecContext carries, and the running solver
/// observes it at the next morsel/operator boundary (Status::Cancelled).
/// Queued-but-unstarted queries are cancelled without running at all.
class Session {
 public:
  Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Requests cooperative cancellation. Idempotent; never blocks.
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// The token wired into the query's ExecContext (relation/exec.h).
  const std::atomic<bool>* cancel_token() const { return &cancel_; }

  /// True once the result (or error) has been delivered.
  bool Done() const {
    std::lock_guard<std::mutex> lock(mu_);
    return result_.has_value();
  }

  /// Blocks until the result is delivered, then returns it. May be called
  /// repeatedly; every call sees the same outcome.
  Result<QueryResult> Wait() const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return result_.has_value(); });
    return *result_;
  }

 private:
  friend class Engine;

  void Deliver(Result<QueryResult> r) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      result_.emplace(std::move(r));
    }
    cv_.notify_all();
  }

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::atomic<bool> cancel_{false};
  std::optional<Result<QueryResult>> result_;
};

}  // namespace topofaq

#endif  // TOPOFAQ_SERVER_SESSION_H_
