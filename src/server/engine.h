// topofaq::Engine — the FAQ-as-a-service entry point.
//
// One Engine owns the whole serving path:
//
//   Submit(QueryRequest)
//     → validate + profile inputs (one O(rows) scan per relation)
//     → plan: decomposition from the process-wide PlanCache
//     → admit: predicted bounds vs budgets (server/admission.h); rejected
//       queries complete immediately with ResourceExhausted, before any
//       execution resource is spent
//     → classify: point / general / heavy priority queues
//     → dispatch: dispatcher threads drain the queues in strict priority
//       order, with at most `heavy_slots` heavy queries in flight — so a
//       dispatcher is always free for point lookups while cyclic analytics
//       churn, and point-lookup latency stays flat under heavy load
//       (bench/bench_engine_concurrent.cc gates this in CI).
//
// Concurrency model: queries multiplex the process-wide WorkerPool at morsel
// granularity. A parallel operator whose ParallelFor finds the pool busy
// runs its morsels on the dispatcher thread instead of queueing
// (relation/parallel.h), so concurrent queries interleave at morsel
// boundaries without any additional scheduler — and results stay
// bit-identical to direct solver calls because morsel decomposition never
// changes output bytes (the determinism contract).
//
// Cancellation: Session::Cancel() flips an atomic the query's ExecContext
// carries; MorselRun checks it at every morsel boundary and the solvers
// between operator calls, so a heavy query unwinds within one morsel and
// surfaces Status::Cancelled. Queued queries cancel without running.
//
// This is the one public solve surface: examples, benches, and the shell go
// through Engine::Solve. BruteForceSolve / YannakakisSolve remain available
// as strategies (and as the differential oracle in tests), selected via
// QueryRequest::strategy.
#ifndef TOPOFAQ_SERVER_ENGINE_H_
#define TOPOFAQ_SERVER_ENGINE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ghd/plan_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/admission.h"
#include "server/options.h"
#include "server/session.h"
#include "server/subscribe.h"

namespace topofaq {

/// Cumulative engine counters plus a plan-cache snapshot. Obtained via
/// Engine::stats(), which reads every counter under the one engine mutex the
/// writers hold — the snapshot is *coherent*: completed + cancelled + failed
/// never exceeds submitted, even while dispatchers are mid-delivery.
struct EngineStats {
  /// Queries accepted by Submit (before validation/admission).
  int64_t submitted = 0;
  /// Queries refused by admission control.
  int64_t rejected = 0;
  /// Queries that delivered an answer.
  int64_t completed = 0;
  /// Queries that delivered Status::Cancelled.
  int64_t cancelled = 0;
  /// Queries that delivered any other error.
  int64_t failed = 0;
  /// Standing sessions created via Subscribe.
  int64_t subscriptions = 0;
  /// Subscription deltas applied.
  int64_t deltas_applied = 0;
  /// Subscription deltas refused by admission.
  int64_t deltas_rejected = 0;
  PlanCache::Stats plan_cache;
};

class Engine {
 public:
  /// Constructing an Engine installs opts.encoding as the process encoding
  /// mode (the engine owns process configuration) and starts the
  /// dispatcher threads.
  explicit Engine(EngineOptions opts = EngineOptions::FromEnv());
  /// Drains every submitted query (cancelled ones unwind fast), then joins.
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Admits and enqueues. Never blocks on execution: the returned session
  /// resolves immediately for validation/admission failures, later for
  /// executed queries. Wait()/Cancel() on the session from any thread.
  std::shared_ptr<Session> Submit(QueryRequest req);

  /// Submit + Wait: the synchronous entry point every call site uses.
  Result<QueryResult> Solve(QueryRequest req) { return Submit(std::move(req))->Wait(); }

  /// Statically-typed convenience: callers that know their semiring get the
  /// answer relation back directly.
  template <CommutativeSemiring S>
  Result<Relation<S>> Solve(FaqQuery<S> q, Strategy strategy = Strategy::kAuto) {
    QueryRequest req;
    req.query = std::move(q);
    req.strategy = strategy;
    Result<QueryResult> r = Solve(std::move(req));
    if (!r.ok()) return r.status();
    return r->answer_as<S>();
  }

  /// Subscription mode (docs/ivm.md): plans + admits like Submit, runs the
  /// full pass once on the calling thread, and returns a live session whose
  /// answer stays current under StandingSession::ApplyDelta. Standing
  /// queries require the GHD pass (F ⊆ V(C(H))): shapes Solve would finish
  /// by brute force come back FailedPrecondition here, because only the
  /// Yannakakis pass has incrementally maintainable state. The engine must
  /// outlive the returned session.
  Result<std::shared_ptr<StandingSession>> Subscribe(QueryRequest req);

  EngineStats stats() const;
  const EngineOptions& options() const { return opts_; }

  /// Starts a fresh TraceSession covering every query submitted from now on
  /// (docs/observability.md): each Submit registers a per-query track and
  /// records the pipeline as nested wall-clock spans — submit (validate /
  /// profile / plan / admit as children), queue_wait, execute, with the
  /// kernel's operator and morsel spans inside execute. `path` is where
  /// DisableTracing (or the destructor) writes the Chrome trace JSON; empty
  /// means keep the session in memory only. Replaces any active session
  /// without writing it. EngineOptions::trace_path (the TOPOFAQ_TRACE knob)
  /// calls this at construction.
  void EnableTracing(std::string path = {});

  /// Stops tracing: writes the Chrome JSON to the EnableTracing path (when
  /// one was given) and returns the finished session, or null if tracing was
  /// off. Queries already in flight keep recording into the returned session
  /// (each job snapshots a shared_ptr), so inspect it after their sessions
  /// resolve.
  std::shared_ptr<obs::TraceSession> DisableTracing();

  /// The active trace session (null when tracing is off).
  std::shared_ptr<obs::TraceSession> trace() const;

  /// The process-wide metrics registry rendered as text — per-class
  /// queue/exec latency quantiles, admission and plan-cache counters, IVM
  /// path counts, bound-residual quantiles (obs/metrics.h TextDump format).
  /// Process-wide by design: two engines in one process share the registry.
  std::string MetricsText() const;

 private:
  friend class StandingSession;

  struct Job {
    QueryRequest req;
    std::shared_ptr<Session> session;
    QueryBounds bounds;
    QueueClass klass = QueueClass::kGeneral;
    bool plan_cache_hit = false;
    std::chrono::steady_clock::time_point enqueued;
    /// Snapshot of the engine's trace session at submit time (null = tracing
    /// was off): keeps the session alive until the job delivers even if
    /// DisableTracing raced in, and pins which session the execute-side
    /// spans land in.
    std::shared_ptr<obs::TraceSession> trace;
    /// This query's track in `trace`.
    uint32_t trace_track = 0;
    /// Non-query work riding the priority queues (subscription deltas):
    /// when set, RunJob executes this instead of the solver path, with
    /// cancellation disabled (a delta must never half-apply).
    std::function<Result<QueryResult>(ExecContext&)> work;
  };

  /// Admits a subscription delta (FD-aware bounds with the touched
  /// relation's profile replaced by the delta's), queues it, and waits.
  Result<QueryResult> SubmitDelta(StandingSession* ss, int relation_id,
                                  AnyDelta delta);

  void DispatcherLoop();
  /// Pops the runnable job of highest priority (point > general > heavy,
  /// heavy only below the in-flight cap). Caller holds mu_.
  bool PopLocked(Job* out);
  bool RunnableLocked() const;
  void RunJob(Job& job, ExecContext& ctx);

  EngineOptions opts_;
  AdmissionController admission_;

  /// Registry handles resolved once at construction (metric objects are
  /// process-lifetime), so serving-path recording never takes the registry
  /// map lock. Histogram arrays are indexed by QueueClass.
  struct Metrics {
    obs::Counter* submitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* admission_rejected = nullptr;
    obs::Counter* plan_hit = nullptr;
    obs::Counter* plan_miss = nullptr;
    obs::Counter* ivm_ring = nullptr;
    obs::Counter* ivm_recompute = nullptr;
    std::array<obs::Histogram*, 3> queue_ms{};
    std::array<obs::Histogram*, 3> exec_ms{};
    obs::Histogram* bound_residual = nullptr;
  };
  Metrics m_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::array<std::deque<Job>, 3> queues_;  // indexed by QueueClass
  int running_heavy_ = 0;
  bool stopping_ = false;
  EngineStats stats_;
  std::shared_ptr<obs::TraceSession> trace_;  // null = tracing off
  std::string trace_path_;                    // written by DisableTracing

  std::vector<std::thread> dispatchers_;
};

}  // namespace topofaq

#endif  // TOPOFAQ_SERVER_ENGINE_H_
