// topofaq::Engine — the FAQ-as-a-service entry point.
//
// One Engine owns the whole serving path:
//
//   Submit(QueryRequest)
//     → validate + profile inputs (one O(rows) scan per relation)
//     → plan: decomposition from the process-wide PlanCache
//     → admit: predicted bounds vs budgets (server/admission.h); rejected
//       queries complete immediately with ResourceExhausted, before any
//       execution resource is spent
//     → classify: point / general / heavy priority queues
//     → dispatch: dispatcher threads drain the queues in strict priority
//       order, with at most `heavy_slots` heavy queries in flight — so a
//       dispatcher is always free for point lookups while cyclic analytics
//       churn, and point-lookup latency stays flat under heavy load
//       (bench/bench_engine_concurrent.cc gates this in CI).
//
// Concurrency model: queries multiplex the process-wide WorkerPool at morsel
// granularity. A parallel operator whose ParallelFor finds the pool busy
// runs its morsels on the dispatcher thread instead of queueing
// (relation/parallel.h), so concurrent queries interleave at morsel
// boundaries without any additional scheduler — and results stay
// bit-identical to direct solver calls because morsel decomposition never
// changes output bytes (the determinism contract).
//
// Cancellation: Session::Cancel() flips an atomic the query's ExecContext
// carries; MorselRun checks it at every morsel boundary and the solvers
// between operator calls, so a heavy query unwinds within one morsel and
// surfaces Status::Cancelled. Queued queries cancel without running.
//
// This is the one public solve surface: examples, benches, and the shell go
// through Engine::Solve. BruteForceSolve / YannakakisSolve remain available
// as strategies (and as the differential oracle in tests), selected via
// QueryRequest::strategy.
#ifndef TOPOFAQ_SERVER_ENGINE_H_
#define TOPOFAQ_SERVER_ENGINE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "ghd/plan_cache.h"
#include "server/admission.h"
#include "server/options.h"
#include "server/session.h"
#include "server/subscribe.h"

namespace topofaq {

/// Cumulative engine counters plus a plan-cache snapshot.
struct EngineStats {
  int64_t submitted = 0;
  int64_t rejected = 0;   ///< refused by admission control
  int64_t completed = 0;  ///< delivered an answer
  int64_t cancelled = 0;  ///< delivered Status::Cancelled
  int64_t failed = 0;     ///< delivered any other error
  int64_t subscriptions = 0;     ///< standing sessions created
  int64_t deltas_applied = 0;    ///< subscription deltas applied
  int64_t deltas_rejected = 0;   ///< subscription deltas refused by admission
  PlanCache::Stats plan_cache;
};

class Engine {
 public:
  /// Constructing an Engine installs opts.encoding as the process encoding
  /// mode (the engine owns process configuration) and starts the
  /// dispatcher threads.
  explicit Engine(EngineOptions opts = EngineOptions::FromEnv());
  /// Drains every submitted query (cancelled ones unwind fast), then joins.
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Admits and enqueues. Never blocks on execution: the returned session
  /// resolves immediately for validation/admission failures, later for
  /// executed queries. Wait()/Cancel() on the session from any thread.
  std::shared_ptr<Session> Submit(QueryRequest req);

  /// Submit + Wait: the synchronous entry point every call site uses.
  Result<QueryResult> Solve(QueryRequest req) { return Submit(std::move(req))->Wait(); }

  /// Statically-typed convenience: callers that know their semiring get the
  /// answer relation back directly.
  template <CommutativeSemiring S>
  Result<Relation<S>> Solve(FaqQuery<S> q, Strategy strategy = Strategy::kAuto) {
    QueryRequest req;
    req.query = std::move(q);
    req.strategy = strategy;
    Result<QueryResult> r = Solve(std::move(req));
    if (!r.ok()) return r.status();
    return r->answer_as<S>();
  }

  /// Subscription mode (docs/ivm.md): plans + admits like Submit, runs the
  /// full pass once on the calling thread, and returns a live session whose
  /// answer stays current under StandingSession::ApplyDelta. Standing
  /// queries require the GHD pass (F ⊆ V(C(H))): shapes Solve would finish
  /// by brute force come back FailedPrecondition here, because only the
  /// Yannakakis pass has incrementally maintainable state. The engine must
  /// outlive the returned session.
  Result<std::shared_ptr<StandingSession>> Subscribe(QueryRequest req);

  EngineStats stats() const;
  const EngineOptions& options() const { return opts_; }

 private:
  friend class StandingSession;

  struct Job {
    QueryRequest req;
    std::shared_ptr<Session> session;
    QueryBounds bounds;
    QueueClass klass = QueueClass::kGeneral;
    bool plan_cache_hit = false;
    std::chrono::steady_clock::time_point enqueued;
    /// Non-query work riding the priority queues (subscription deltas):
    /// when set, RunJob executes this instead of the solver path, with
    /// cancellation disabled (a delta must never half-apply).
    std::function<Result<QueryResult>(ExecContext&)> work;
  };

  /// Admits a subscription delta (FD-aware bounds with the touched
  /// relation's profile replaced by the delta's), queues it, and waits.
  Result<QueryResult> SubmitDelta(StandingSession* ss, int relation_id,
                                  AnyDelta delta);

  void DispatcherLoop();
  /// Pops the runnable job of highest priority (point > general > heavy,
  /// heavy only below the in-flight cap). Caller holds mu_.
  bool PopLocked(Job* out);
  bool RunnableLocked() const;
  void RunJob(Job& job, ExecContext& ctx);

  EngineOptions opts_;
  AdmissionController admission_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::array<std::deque<Job>, 3> queues_;  // indexed by QueueClass
  int running_heavy_ = 0;
  bool stopping_ = false;
  EngineStats stats_;

  std::vector<std::thread> dispatchers_;
};

}  // namespace topofaq

#endif  // TOPOFAQ_SERVER_ENGINE_H_
