#include "server/admission.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <string>

#include "hypergraph/gyo.h"

namespace topofaq {

namespace {

/// log2 with the convention log2(0) = 0 (an empty relation joins to an
/// empty output; the chain bound handles that via the 0-row factor anyway).
double Log2(uint64_t v) {
  return v <= 1 ? 0.0 : std::log2(static_cast<double>(v));
}

}  // namespace

QueryBounds AdmissionController::Assess(
    const Hypergraph& h, const std::vector<RelationProfile>& profiles,
    size_t num_free_vars, uint64_t domain, const WidthResult& width) const {
  QueryBounds b;
  b.y = width.internal_nodes;
  b.cyclic = !IsAcyclic(h);
  b.n2 = width.n2;
  for (const RelationProfile& p : profiles)
    b.max_input_rows = std::max(b.max_input_rows, p.rows);

  // Union-find over edges keyed by shared variables: chain bounds multiply
  // only within a variable-connected component.
  const int m = h.num_edges();
  std::vector<int> parent(m);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  std::vector<int> var_owner(static_cast<size_t>(h.num_vertices()), -1);
  for (int e = 0; e < m; ++e)
    for (VarId v : h.edge(e)) {
      if (var_owner[v] < 0)
        var_owner[v] = e;
      else
        parent[find(e)] = find(var_owner[v]);
    }

  double chain_log2 = 0.0;
  std::vector<bool> bound(static_cast<size_t>(h.num_vertices()), false);
  std::vector<int> order(static_cast<size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  // Ascending input size: starting each component's chain from its smallest
  // relation tightens the product (stable sort keeps ties deterministic).
  std::stable_sort(order.begin(), order.end(), [&](int a, int b2) {
    return profiles[static_cast<size_t>(a)].rows <
           profiles[static_cast<size_t>(b2)].rows;
  });
  for (int root = 0; root < m; ++root) {
    if (find(root) != root) continue;
    for (int e : order) {
      if (find(e) != root) continue;
      const RelationProfile& p = profiles[static_cast<size_t>(e)];
      const std::vector<VarId>& vars = h.edge(e);
      const bool all_bound =
          std::all_of(vars.begin(), vars.end(),
                      [&](VarId v) { return bound[v]; });
      if (all_bound) {
        // Factor 1: every variable is determined, the edge only filters.
      } else if (!vars.empty() && bound[vars.front()]) {
        // Leading key bound: at most max_leading_run matches per key.
        chain_log2 += Log2(p.max_leading_run);
      } else {
        chain_log2 += Log2(p.rows);
      }
      for (VarId v : vars) bound[v] = true;
    }
  }

  const double domain_log2 =
      static_cast<double>(num_free_vars) * Log2(std::max<uint64_t>(domain, 2));
  b.log2_output = std::min(chain_log2, domain_log2);
  b.predicted_output_rows =
      b.log2_output >= 63.0
          ? std::numeric_limits<uint64_t>::max()
          : static_cast<uint64_t>(std::ceil(std::exp2(b.log2_output)));
  return b;
}

Status AdmissionController::Admit(const QueryBounds& b) const {
  if (opts_.max_predicted_output_rows > 0 &&
      b.predicted_output_rows > opts_.max_predicted_output_rows)
    return Status::ResourceExhausted(
        "FD-aware output bound " + std::to_string(b.predicted_output_rows) +
        " rows exceeds max_predicted_output_rows=" +
        std::to_string(opts_.max_predicted_output_rows));
  if (opts_.max_width >= 0 && b.y > opts_.max_width)
    return Status::ResourceExhausted(
        "internal-node-width y(H)=" + std::to_string(b.y) +
        " exceeds max_width=" + std::to_string(opts_.max_width));
  return Status::Ok();
}

QueueClass AdmissionController::Classify(const QueryBounds& b) const {
  if (b.cyclic || b.predicted_output_rows >= opts_.heavy_output_rows_min ||
      b.max_input_rows >= opts_.heavy_input_rows_min)
    return QueueClass::kHeavy;
  if (b.predicted_output_rows <= opts_.point_output_rows_max &&
      b.max_input_rows <= opts_.point_input_rows_max)
    return QueueClass::kPoint;
  return QueueClass::kGeneral;
}

}  // namespace topofaq
