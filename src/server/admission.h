// Admission control: predict a query's cost from the paper's structural
// quantities *before* running it, reject work that would blow a budget, and
// classify the rest into priority queues.
//
// The predictor combines two bounds, taking the smaller:
//
//  * Domain bound: |output| <= D^|F| — the free variables can take at most
//    D values each (the paper's log2 D per-attribute cost).
//  * FD-aware chain bound: per variable-connected component of H, order the
//    edges by ascending input size and walk the chain. The first edge
//    contributes its full row count; a later edge whose leading schema
//    variable is already bound by earlier edges contributes at most its
//    longest leading-key run (the relation's worst-case "matches per bound
//    key" — a degree constraint read off the canonical sorted column); an
//    edge whose variables are all already bound contributes a factor of 1
//    (it can only filter). Components multiply (they share no variables).
//    This is the GLV-style degree-aware refinement of the AGM-flavored
//    product bound, computed from O(1) per-relation statistics.
//
// Both are upper bounds on distinct output tuples, so their min is too.
// Everything here is data the engine already has: relation profiles are one
// O(rows) scan (done once per Submit), the width result comes from the plan
// cache, so admission adds no decomposition work to the hot path.
#ifndef TOPOFAQ_SERVER_ADMISSION_H_
#define TOPOFAQ_SERVER_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "ghd/width.h"
#include "hypergraph/hypergraph.h"
#include "relation/relation.h"
#include "server/options.h"
#include "util/status.h"

namespace topofaq {

/// O(1) statistics the predictor needs from one input relation.
struct RelationProfile {
  uint64_t rows = 0;
  /// Longest run of one value in the leading (lowest-VarId) key column: the
  /// worst-case number of tuples matching a bound leading key. 1 for empty
  /// or nullary relations (a scalar matches at most once).
  uint64_t max_leading_run = 1;
};

/// Scans r's leading column once (canonical order ⇒ equal keys are
/// contiguous, so the longest run is the max matches-per-key degree).
template <CommutativeSemiring S>
RelationProfile ProfileRelation(const Relation<S>& r) {
  RelationProfile p;
  p.rows = r.size();
  if (r.arity() == 0 || r.size() == 0) return p;
  uint64_t run = 1;
  Value prev = r.at(0, 0);
  for (size_t i = 1; i < r.size(); ++i) {
    const Value v = r.at(i, 0);
    run = (v == prev) ? run + 1 : 1;
    prev = v;
    if (run > p.max_leading_run) p.max_leading_run = run;
  }
  if (run > p.max_leading_run) p.max_leading_run = run;
  return p;
}

/// What admission predicted for one query; carried on the QueryResult so
/// callers can compare predicted vs observed.
struct QueryBounds {
  int y = 0;   ///< internal-node-width of the cached decomposition
  int n2 = 0;  ///< |V(C(H))| of the cached decomposition
  /// GYO-cyclic (residual core non-empty). Note y >= 1 does NOT mean cyclic:
  /// every multi-edge acyclic H already has internal join-tree nodes.
  bool cyclic = false;
  /// log2 of the output-size bound (min of domain and chain bounds).
  double log2_output = 0.0;
  /// 2^log2_output, saturated at uint64 max.
  uint64_t predicted_output_rows = 0;
  /// Largest input relation (the paper's N).
  uint64_t max_input_rows = 0;
};

/// Priority classes, highest priority first. Strict-priority dispatch with a
/// capped number of in-flight kHeavy queries is what keeps point-lookup
/// latency flat while cyclic analytics churn (tests/engine_test.cc,
/// bench/bench_engine_concurrent.cc).
enum class QueueClass { kPoint = 0, kGeneral = 1, kHeavy = 2 };

inline const char* QueueClassName(QueueClass c) {
  switch (c) {
    case QueueClass::kPoint:
      return "point";
    case QueueClass::kGeneral:
      return "general";
    case QueueClass::kHeavy:
      return "heavy";
  }
  return "?";
}

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions opts) : opts_(opts) {}

  /// Evaluates the bounds for one query shape + data profile. `width` is the
  /// decomposition YannakakisSolve will execute (from the plan cache);
  /// `num_free_vars` and `domain` feed the D^|F| bound.
  QueryBounds Assess(const Hypergraph& h,
                     const std::vector<RelationProfile>& profiles,
                     size_t num_free_vars, uint64_t domain,
                     const WidthResult& width) const;

  /// Ok, or ResourceExhausted naming the violated bound and its budget.
  Status Admit(const QueryBounds& b) const;

  QueueClass Classify(const QueryBounds& b) const;

  const AdmissionOptions& options() const { return opts_; }

 private:
  AdmissionOptions opts_;
};

}  // namespace topofaq

#endif  // TOPOFAQ_SERVER_ADMISSION_H_
