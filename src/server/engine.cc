#include "server/engine.h"

#include <algorithm>

#include "faq/solvers.h"

namespace topofaq {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Everything admission needs, extracted from one typed query.
struct Assessed {
  Status validate;
  std::vector<RelationProfile> profiles;
  std::vector<VarId> free_vars;
  uint64_t domain = 2;
};

/// Executes one typed query with the job's strategy. The context already
/// carries the session's cancel token and the class parallelism.
template <CommutativeSemiring S>
Result<Relation<S>> RunSolver(const FaqQuery<S>& q, Strategy strategy,
                              ExecContext& ctx) {
  switch (strategy) {
    case Strategy::kBruteForce:
      return BruteForceSolve(q, &ctx);
    case Strategy::kYannakakis:
      return YannakakisSolve(q, &ctx);
    case Strategy::kAuto:
      break;
  }
  Result<Relation<S>> ans = YannakakisSolve(q, &ctx);
  // Appendix G.5: the GHD pass requires F ⊆ V(C(H)). Shapes outside that
  // restriction fall back to the brute-force oracle.
  if (!ans.ok() && ans.status().code() == StatusCode::kFailedPrecondition)
    return BruteForceSolve(q, &ctx);
  return ans;
}

}  // namespace

Engine::Engine(EngineOptions opts)
    : opts_(std::move(opts)), admission_(opts_.admission) {
  SetGlobalEncodingMode(opts_.encoding);
  SetSimdEnabled(opts_.simd);
  // Resolve every metric handle now (registry objects are process-lifetime);
  // the serving path then records with relaxed atomics only.
  auto& reg = obs::MetricsRegistry::Shared();
  m_.submitted = &reg.GetCounter("engine.submitted");
  m_.completed = &reg.GetCounter("engine.completed");
  m_.cancelled = &reg.GetCounter("engine.cancelled");
  m_.failed = &reg.GetCounter("engine.failed");
  m_.admission_rejected = &reg.GetCounter("engine.admission.rejected");
  m_.plan_hit = &reg.GetCounter("engine.plan_cache.hit");
  m_.plan_miss = &reg.GetCounter("engine.plan_cache.miss");
  m_.ivm_ring = &reg.GetCounter("engine.ivm.ring_deltas");
  m_.ivm_recompute = &reg.GetCounter("engine.ivm.recompute_deltas");
  for (QueueClass c :
       {QueueClass::kPoint, QueueClass::kGeneral, QueueClass::kHeavy}) {
    const size_t i = static_cast<size_t>(c);
    m_.queue_ms[i] = &reg.GetHistogram(
        obs::LabeledName("engine.queue_ms", "class", QueueClassName(c)));
    m_.exec_ms[i] = &reg.GetHistogram(
        obs::LabeledName("engine.exec_ms", "class", QueueClassName(c)));
  }
  // Residual = (predicted + 1) / (observed + 1): values straddle 1.0 in both
  // directions (the bound is an over-estimate when > 1), so the histogram
  // floor sits at 1/16 rather than the default 1e-3 to keep resolution
  // around 1.
  m_.bound_residual = &reg.GetHistogram("engine.bound.residual_ratio", 0.0625);
  if (!opts_.trace_path.empty()) EnableTracing(opts_.trace_path);
  const int n = std::max(1, opts_.dispatchers);
  dispatchers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
  // Every job has delivered, so the active session (if any) is complete:
  // flush it to the configured path.
  DisableTracing();
}

void Engine::EnableTracing(std::string path) {
  auto s = std::make_shared<obs::TraceSession>();
  std::lock_guard<std::mutex> lock(mu_);
  trace_ = std::move(s);
  trace_path_ = std::move(path);
}

std::shared_ptr<obs::TraceSession> Engine::DisableTracing() {
  std::shared_ptr<obs::TraceSession> s;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = std::move(trace_);
    path = std::move(trace_path_);
    trace_.reset();
    trace_path_.clear();
  }
  if (s != nullptr && !path.empty()) s->WriteChromeJson(path);
  return s;
}

std::shared_ptr<obs::TraceSession> Engine::trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

std::string Engine::MetricsText() const {
  return obs::MetricsRegistry::Shared().TextDump();
}

std::shared_ptr<Session> Engine::Submit(QueryRequest req) {
  auto session = std::make_shared<Session>();
  std::shared_ptr<obs::TraceSession> tr;
  int64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = ++stats_.submitted;
    m_.submitted->Add();
    if (stopping_) {
      ++stats_.cancelled;
      m_.cancelled->Add();
      session->Deliver(Status::Cancelled("engine is shutting down"));
      return session;
    }
    tr = trace_;
  }

  // With tracing on, this query gets its own track; the whole submission
  // pipeline is one "submit" span with validate / profile / plan / admit
  // children, closed *before* the queue push so the queue_wait span RunJob
  // emits (starting at job.enqueued) never overlaps it.
  uint32_t track = 0;
  if (tr != nullptr)
    track = tr->RegisterTrack(req.tag.empty()
                                  ? "query #" + std::to_string(seq)
                                  : "query " + req.tag);
  obs::Span submit_sp(tr.get(), "submit", track);

  Assessed a;
  {
    obs::Span sp(tr.get(), "validate", track);
    a.validate =
        std::visit([](const auto& q) { return q.Validate(); }, req.query);
  }
  if (!a.validate.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failed;
    m_.failed->Add();
    session->Deliver(a.validate);
    return session;
  }
  {
    obs::Span sp(tr.get(), "profile", track);
    std::visit(
        [&a](const auto& q) {
          a.profiles.reserve(q.relations.size());
          for (const auto& r : q.relations)
            a.profiles.push_back(ProfileRelation(r));
          a.free_vars = q.free_vars;
          a.domain = q.DomainSize();
        },
        req.query);
  }

  // Plan through the shared cache with the exact keys YannakakisSolve will
  // use, so submission warms the plan the execution consumes. When the
  // rooted search fails (free vars outside the core — the brute-force
  // fallback shapes), the canonical decomposition still provides y/n2 for
  // admission.
  const Hypergraph& h = std::visit(
      [](const auto& q) -> const Hypergraph& { return q.hypergraph; },
      req.query);
  bool plan_hit = false;
  WidthResult width;
  {
    obs::Span sp(tr.get(), "plan", track);
    auto w = PlanCache::Shared().PlanFor(h, a.free_vars, &plan_hit);
    if (w.ok())
      width = *std::move(w);
    else
      width = PlanCache::Shared().Canonical(h, &plan_hit);
  }
  (plan_hit ? m_.plan_hit : m_.plan_miss)->Add();

  Job job;
  Status admit = Status::Ok();
  {
    obs::Span sp(tr.get(), "admit", track);
    job.bounds = admission_.Assess(h, a.profiles, a.free_vars.size(),
                                   a.domain, width);
    admit = admission_.Admit(job.bounds);
  }
  if (!admit.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    m_.admission_rejected->Add();
    session->Deliver(admit);
    return session;
  }
  job.klass = admission_.Classify(job.bounds);
  job.req = std::move(req);
  job.session = session;
  job.plan_cache_hit = plan_hit;
  job.trace = std::move(tr);
  job.trace_track = track;
  // Close before stamping enqueued: the submit span and the queue_wait span
  // RunJob emits (starting at job.enqueued) stay disjoint by construction.
  submit_sp.Close();
  job.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[static_cast<size_t>(job.klass)].push_back(std::move(job));
  }
  cv_.notify_one();
  return session;
}

bool Engine::RunnableLocked() const {
  if (!queues_[static_cast<size_t>(QueueClass::kPoint)].empty()) return true;
  if (!queues_[static_cast<size_t>(QueueClass::kGeneral)].empty()) return true;
  return !queues_[static_cast<size_t>(QueueClass::kHeavy)].empty() &&
         running_heavy_ < std::max(1, opts_.heavy_slots);
}

bool Engine::PopLocked(Job* out) {
  for (QueueClass c : {QueueClass::kPoint, QueueClass::kGeneral}) {
    std::deque<Job>& q = queues_[static_cast<size_t>(c)];
    if (!q.empty()) {
      *out = std::move(q.front());
      q.pop_front();
      return true;
    }
  }
  std::deque<Job>& heavy = queues_[static_cast<size_t>(QueueClass::kHeavy)];
  if (!heavy.empty() && running_heavy_ < std::max(1, opts_.heavy_slots)) {
    *out = std::move(heavy.front());
    heavy.pop_front();
    ++running_heavy_;
    return true;
  }
  return false;
}

void Engine::DispatcherLoop() {
  // One context per dispatcher: scratch buffers and the worker arena are
  // reused across every query this thread runs.
  ExecContext ctx;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Wake for runnable work, or to exit once shutdown has drained every
      // queue. A heavy backlog behind an occupied slot keeps the thread
      // asleep (not spinning) until the slot-release notify_all.
      auto drained = [this] {
        for (const auto& q : queues_)
          if (!q.empty()) return false;
        return true;
      };
      cv_.wait(lock, [&] { return RunnableLocked() || (stopping_ && drained()); });
      if (!PopLocked(&job)) {
        if (stopping_ && drained()) return;
        continue;
      }
    }
    const bool was_heavy = job.klass == QueueClass::kHeavy;
    RunJob(job, ctx);
    if (was_heavy) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        --running_heavy_;
      }
      cv_.notify_all();  // a heavy slot freed; wake waiting dispatchers
    } else {
      cv_.notify_one();
    }
  }
}

void Engine::RunJob(Job& job, ExecContext& ctx) {
  const auto started = std::chrono::steady_clock::now();
  if (job.trace != nullptr) {
    // The wait interval started back at the enqueue timestamp, so the span
    // is emitted directly with an explicit start rather than through a Span.
    const double ts = job.trace->TimeUs(job.enqueued);
    job.trace->Emit("queue_wait", job.trace_track, obs::ClockDomain::kWall,
                    ts, job.trace->TimeUs(started) - ts);
  }
  ctx.ResetStats();
  ctx.cancel = job.session->cancel_token();
  // Point lookups always run serially: morsel fan-out costs more than the
  // lookup itself, and a serial point query can never be blocked behind the
  // pool by a heavy query's morsels.
  ctx.parallelism =
      job.klass == QueueClass::kPoint ? 1 : std::max(1, opts_.parallelism);
  // Operator and morsel spans of this query land on its track, in the
  // session it was submitted under (null clears the dispatcher context).
  ctx.SetTrace(job.trace.get(), job.trace_track);

  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    obs::Span exec_sp(job.trace.get(), "execute", job.trace_track);
    if (job.work) {
      // Subscription delta: the closure applies it under the session mutex.
      // No cancel token — a delta observed a cancel mid-propagation would
      // leave the standing pass state half-updated.
      ctx.cancel = nullptr;
      return job.work(ctx);
    }
    if (job.session->cancel_requested())
      return Status::Cancelled("query cancelled while queued");
    return std::visit(
        [&](const auto& q) -> Result<QueryResult> {
          auto ans = RunSolver(q, job.req.strategy, ctx);
          if (!ans.ok()) return ans.status();
          if (ctx.cancelled())
            return Status::Cancelled("query cancelled mid-solve");
          QueryResult out;
          out.observed_rows = ans->size();
          out.answer = *std::move(ans);
          return out;
        },
        job.req.query);
  }();
  ctx.cancel = nullptr;
  ctx.SetTrace(nullptr, 0);

  const auto finished = std::chrono::steady_clock::now();
  const size_t ci = static_cast<size_t>(job.klass);
  m_.queue_ms[ci]->Record(MsSince(job.enqueued, started));
  m_.exec_ms[ci]->Record(MsSince(started, finished));
  if (result.ok()) {
    result->kernel = ctx.Totals();
    result->bounds = job.bounds;
    result->klass = job.klass;
    result->plan_cache_hit = job.plan_cache_hit;
    result->queue_ms = MsSince(job.enqueued, started);
    result->exec_ms = MsSince(started, finished);
    // Predicted-vs-observed residual for real queries (delta jobs assess a
    // different quantity — the delta's own bound). > 1 means the admission
    // bound over-estimated, the safe direction; the +1s keep empty answers
    // finite.
    if (!job.work)
      m_.bound_residual->Record(
          (static_cast<double>(job.bounds.predicted_output_rows) + 1.0) /
          (static_cast<double>(result->observed_rows) + 1.0));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.ok()) {
      ++stats_.completed;
      m_.completed->Add();
    } else if (result.status().code() == StatusCode::kCancelled) {
      ++stats_.cancelled;
      m_.cancelled->Add();
    } else {
      ++stats_.failed;
      m_.failed->Add();
    }
  }
  job.session->Deliver(std::move(result));
}

Result<std::shared_ptr<StandingSession>> Engine::Subscribe(QueryRequest req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::Cancelled("engine is shutting down");
    ++stats_.subscriptions;
  }

  Assessed a = std::visit(
      [](const auto& q) {
        Assessed out;
        out.validate = q.Validate();
        if (!out.validate.ok()) return out;
        out.profiles.reserve(q.relations.size());
        for (const auto& r : q.relations)
          out.profiles.push_back(ProfileRelation(r));
        out.free_vars = q.free_vars;
        out.domain = q.DomainSize();
        return out;
      },
      req.query);
  if (!a.validate.ok()) return a.validate;

  const Hypergraph& h = std::visit(
      [](const auto& q) -> const Hypergraph& { return q.hypergraph; },
      req.query);
  auto w = PlanCache::Shared().PlanFor(h, a.free_vars);
  if (!w.ok()) return w.status();  // no brute-force fallback for subscriptions

  const QueryBounds bounds =
      admission_.Assess(h, a.profiles, a.free_vars.size(), a.domain, *w);
  const Status admit = admission_.Admit(bounds);
  if (!admit.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return admit;
  }

  // Build the standing state on the calling thread: one full pass, the same
  // work Solve would do, with full kernel parallelism.
  ExecContext ctx;
  ctx.parallelism = std::max(1, opts_.parallelism);
  return std::visit(
      [&](auto& q) -> Result<std::shared_ptr<StandingSession>> {
        using Sm = typename std::decay_t<decltype(q)>::Semiring;
        auto sq = StandingQuery<Sm>::Create(std::move(q), &ctx);
        if (!sq.ok()) return sq.status();
        return std::shared_ptr<StandingSession>(new StandingSession(
            this, AnyStandingQuery(*std::move(sq)), std::move(a.profiles),
            a.domain, *std::move(w)));
      },
      req.query);
}

Result<QueryResult> Engine::SubmitDelta(StandingSession* ss, int relation_id,
                                        AnyDelta delta) {
  if (delta.index() != ss->standing_.index())
    return Status::InvalidArgument(
        "delta semiring does not match the subscription's semiring");
  if (relation_id < 0 ||
      relation_id >= static_cast<int>(ss->profiles_.size()))
    return Status::InvalidArgument("delta targets unknown relation " +
                                   std::to_string(relation_id));

  // FD-aware bounds on the *delta's* profile: assess the query shape with
  // the touched relation swapped for the delta, so admission prices the
  // incremental join work this batch can cause, not the standing database.
  const RelationProfile dp = std::visit(
      [](const auto& d) {
        const RelationProfile rm = ProfileRelation(d.removes);
        const RelationProfile ad = ProfileRelation(d.adds);
        RelationProfile out;
        out.rows = rm.rows + ad.rows;
        out.max_leading_run = std::max(rm.max_leading_run, ad.max_leading_run);
        return out;
      },
      delta);
  std::vector<RelationProfile> profiles;
  size_t num_free = 0;
  const Hypergraph* h = nullptr;
  {
    std::lock_guard<std::mutex> lock(ss->mu_);
    profiles = ss->profiles_;
    std::visit(
        [&](const auto& sq) {
          h = &sq.query().hypergraph;  // shape is immutable after Create
          num_free = sq.query().free_vars.size();
        },
        ss->standing_);
  }
  profiles[static_cast<size_t>(relation_id)] = dp;
  const QueryBounds bounds =
      admission_.Assess(*h, profiles, num_free, ss->domain_, ss->width_);
  const Status admit = admission_.Admit(bounds);
  if (!admit.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deltas_rejected;
    m_.admission_rejected->Add();
    return admit;
  }

  Job job;
  job.bounds = bounds;
  job.klass = admission_.Classify(bounds);
  job.session = std::make_shared<Session>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    job.trace = trace_;
  }
  if (job.trace != nullptr)
    job.trace_track =
        job.trace->RegisterTrack("delta r" + std::to_string(relation_id));
  job.enqueued = std::chrono::steady_clock::now();
  // The caller blocks on Wait() below, so `ss` outlives the closure.
  job.work = [this, ss, relation_id, dp,
              d = std::move(delta)](ExecContext& ctx) mutable
      -> Result<QueryResult> {
    std::lock_guard<std::mutex> lock(ss->mu_);
    QueryResult out;
    const Status applied = std::visit(
        [&](auto& sq) -> Status {
          using Sm = typename std::decay_t<decltype(sq)>::Semiring;
          Delta<Sm>& dd = std::get<Delta<Sm>>(d);
          const StandingStats path_before = sq.stats();
          TOPOFAQ_RETURN_IF_ERROR(
              sq.ApplyDelta(relation_id, std::move(dd), &ctx));
          // Which maintenance path this batch took, as the stats diff
          // (empty deltas take neither).
          const StandingStats path_after = sq.stats();
          m_.ivm_ring->Add(static_cast<uint64_t>(
              path_after.ring_deltas - path_before.ring_deltas));
          m_.ivm_recompute->Add(static_cast<uint64_t>(
              path_after.recompute_deltas - path_before.recompute_deltas));
          out.observed_rows = sq.Current().size();
          // Keep the admission profile current without rescanning: exact
          // row count, monotone upper bound on the leading run.
          RelationProfile& p =
              ss->profiles_[static_cast<size_t>(relation_id)];
          p.rows = sq.query().relations[static_cast<size_t>(relation_id)]
                       .size();
          p.max_leading_run = std::max(p.max_leading_run, dp.max_leading_run);
          return Status::Ok();
        },
        ss->standing_);
    if (!applied.ok()) return applied;
    return out;
  };
  std::shared_ptr<Session> session = job.session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::Cancelled("engine is shutting down");
    queues_[static_cast<size_t>(job.klass)].push_back(std::move(job));
  }
  cv_.notify_one();
  Result<QueryResult> r = session->Wait();
  if (r.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deltas_applied;
  }
  return r;
}

Result<QueryResult> StandingSession::ApplyDelta(int relation_id,
                                                AnyDelta delta) {
  return engine_->SubmitDelta(this, relation_id, std::move(delta));
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats s = stats_;
  s.plan_cache = PlanCache::Shared().stats();
  return s;
}

}  // namespace topofaq
