#include "server/engine.h"

#include <algorithm>

#include "faq/solvers.h"

namespace topofaq {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Everything admission needs, extracted from one typed query.
struct Assessed {
  Status validate;
  std::vector<RelationProfile> profiles;
  std::vector<VarId> free_vars;
  uint64_t domain = 2;
};

/// Executes one typed query with the job's strategy. The context already
/// carries the session's cancel token and the class parallelism.
template <CommutativeSemiring S>
Result<Relation<S>> RunSolver(const FaqQuery<S>& q, Strategy strategy,
                              ExecContext& ctx) {
  switch (strategy) {
    case Strategy::kBruteForce:
      return BruteForceSolve(q, &ctx);
    case Strategy::kYannakakis:
      return YannakakisSolve(q, &ctx);
    case Strategy::kAuto:
      break;
  }
  Result<Relation<S>> ans = YannakakisSolve(q, &ctx);
  // Appendix G.5: the GHD pass requires F ⊆ V(C(H)). Shapes outside that
  // restriction fall back to the brute-force oracle.
  if (!ans.ok() && ans.status().code() == StatusCode::kFailedPrecondition)
    return BruteForceSolve(q, &ctx);
  return ans;
}

}  // namespace

Engine::Engine(EngineOptions opts)
    : opts_(opts), admission_(opts.admission) {
  SetGlobalEncodingMode(opts_.encoding);
  SetSimdEnabled(opts_.simd);
  const int n = std::max(1, opts_.dispatchers);
  dispatchers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
}

std::shared_ptr<Session> Engine::Submit(QueryRequest req) {
  auto session = std::make_shared<Session>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stopping_) {
      ++stats_.cancelled;
      session->Deliver(Status::Cancelled("engine is shutting down"));
      return session;
    }
  }

  Assessed a = std::visit(
      [](const auto& q) {
        Assessed out;
        out.validate = q.Validate();
        if (!out.validate.ok()) return out;
        out.profiles.reserve(q.relations.size());
        for (const auto& r : q.relations)
          out.profiles.push_back(ProfileRelation(r));
        out.free_vars = q.free_vars;
        out.domain = q.DomainSize();
        return out;
      },
      req.query);
  if (!a.validate.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failed;
    session->Deliver(a.validate);
    return session;
  }

  // Plan through the shared cache with the exact keys YannakakisSolve will
  // use, so submission warms the plan the execution consumes. When the
  // rooted search fails (free vars outside the core — the brute-force
  // fallback shapes), the canonical decomposition still provides y/n2 for
  // admission.
  const Hypergraph& h = std::visit(
      [](const auto& q) -> const Hypergraph& { return q.hypergraph; },
      req.query);
  bool plan_hit = false;
  WidthResult width;
  auto w = PlanCache::Shared().PlanFor(h, a.free_vars, &plan_hit);
  if (w.ok())
    width = *std::move(w);
  else
    width = PlanCache::Shared().Canonical(h, &plan_hit);

  Job job;
  job.bounds = admission_.Assess(h, a.profiles, a.free_vars.size(), a.domain,
                                 width);
  const Status admit = admission_.Admit(job.bounds);
  if (!admit.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    session->Deliver(admit);
    return session;
  }
  job.klass = admission_.Classify(job.bounds);
  job.req = std::move(req);
  job.session = session;
  job.plan_cache_hit = plan_hit;
  job.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[static_cast<size_t>(job.klass)].push_back(std::move(job));
  }
  cv_.notify_one();
  return session;
}

bool Engine::RunnableLocked() const {
  if (!queues_[static_cast<size_t>(QueueClass::kPoint)].empty()) return true;
  if (!queues_[static_cast<size_t>(QueueClass::kGeneral)].empty()) return true;
  return !queues_[static_cast<size_t>(QueueClass::kHeavy)].empty() &&
         running_heavy_ < std::max(1, opts_.heavy_slots);
}

bool Engine::PopLocked(Job* out) {
  for (QueueClass c : {QueueClass::kPoint, QueueClass::kGeneral}) {
    std::deque<Job>& q = queues_[static_cast<size_t>(c)];
    if (!q.empty()) {
      *out = std::move(q.front());
      q.pop_front();
      return true;
    }
  }
  std::deque<Job>& heavy = queues_[static_cast<size_t>(QueueClass::kHeavy)];
  if (!heavy.empty() && running_heavy_ < std::max(1, opts_.heavy_slots)) {
    *out = std::move(heavy.front());
    heavy.pop_front();
    ++running_heavy_;
    return true;
  }
  return false;
}

void Engine::DispatcherLoop() {
  // One context per dispatcher: scratch buffers and the worker arena are
  // reused across every query this thread runs.
  ExecContext ctx;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Wake for runnable work, or to exit once shutdown has drained every
      // queue. A heavy backlog behind an occupied slot keeps the thread
      // asleep (not spinning) until the slot-release notify_all.
      auto drained = [this] {
        for (const auto& q : queues_)
          if (!q.empty()) return false;
        return true;
      };
      cv_.wait(lock, [&] { return RunnableLocked() || (stopping_ && drained()); });
      if (!PopLocked(&job)) {
        if (stopping_ && drained()) return;
        continue;
      }
    }
    const bool was_heavy = job.klass == QueueClass::kHeavy;
    RunJob(job, ctx);
    if (was_heavy) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        --running_heavy_;
      }
      cv_.notify_all();  // a heavy slot freed; wake waiting dispatchers
    } else {
      cv_.notify_one();
    }
  }
}

void Engine::RunJob(Job& job, ExecContext& ctx) {
  const auto started = std::chrono::steady_clock::now();
  ctx.ResetStats();
  ctx.cancel = job.session->cancel_token();
  // Point lookups always run serially: morsel fan-out costs more than the
  // lookup itself, and a serial point query can never be blocked behind the
  // pool by a heavy query's morsels.
  ctx.parallelism =
      job.klass == QueueClass::kPoint ? 1 : std::max(1, opts_.parallelism);

  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    if (job.work) {
      // Subscription delta: the closure applies it under the session mutex.
      // No cancel token — a delta observed a cancel mid-propagation would
      // leave the standing pass state half-updated.
      ctx.cancel = nullptr;
      return job.work(ctx);
    }
    if (job.session->cancel_requested())
      return Status::Cancelled("query cancelled while queued");
    return std::visit(
        [&](const auto& q) -> Result<QueryResult> {
          auto ans = RunSolver(q, job.req.strategy, ctx);
          if (!ans.ok()) return ans.status();
          if (ctx.cancelled())
            return Status::Cancelled("query cancelled mid-solve");
          QueryResult out;
          out.observed_rows = ans->size();
          out.answer = *std::move(ans);
          return out;
        },
        job.req.query);
  }();
  ctx.cancel = nullptr;

  if (result.ok()) {
    result->kernel = ctx.Totals();
    result->bounds = job.bounds;
    result->klass = job.klass;
    result->plan_cache_hit = job.plan_cache_hit;
    result->queue_ms = MsSince(job.enqueued, started);
    result->exec_ms = MsSince(started, std::chrono::steady_clock::now());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.ok())
      ++stats_.completed;
    else if (result.status().code() == StatusCode::kCancelled)
      ++stats_.cancelled;
    else
      ++stats_.failed;
  }
  job.session->Deliver(std::move(result));
}

Result<std::shared_ptr<StandingSession>> Engine::Subscribe(QueryRequest req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::Cancelled("engine is shutting down");
    ++stats_.subscriptions;
  }

  Assessed a = std::visit(
      [](const auto& q) {
        Assessed out;
        out.validate = q.Validate();
        if (!out.validate.ok()) return out;
        out.profiles.reserve(q.relations.size());
        for (const auto& r : q.relations)
          out.profiles.push_back(ProfileRelation(r));
        out.free_vars = q.free_vars;
        out.domain = q.DomainSize();
        return out;
      },
      req.query);
  if (!a.validate.ok()) return a.validate;

  const Hypergraph& h = std::visit(
      [](const auto& q) -> const Hypergraph& { return q.hypergraph; },
      req.query);
  auto w = PlanCache::Shared().PlanFor(h, a.free_vars);
  if (!w.ok()) return w.status();  // no brute-force fallback for subscriptions

  const QueryBounds bounds =
      admission_.Assess(h, a.profiles, a.free_vars.size(), a.domain, *w);
  const Status admit = admission_.Admit(bounds);
  if (!admit.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return admit;
  }

  // Build the standing state on the calling thread: one full pass, the same
  // work Solve would do, with full kernel parallelism.
  ExecContext ctx;
  ctx.parallelism = std::max(1, opts_.parallelism);
  return std::visit(
      [&](auto& q) -> Result<std::shared_ptr<StandingSession>> {
        using Sm = typename std::decay_t<decltype(q)>::Semiring;
        auto sq = StandingQuery<Sm>::Create(std::move(q), &ctx);
        if (!sq.ok()) return sq.status();
        return std::shared_ptr<StandingSession>(new StandingSession(
            this, AnyStandingQuery(*std::move(sq)), std::move(a.profiles),
            a.domain, *std::move(w)));
      },
      req.query);
}

Result<QueryResult> Engine::SubmitDelta(StandingSession* ss, int relation_id,
                                        AnyDelta delta) {
  if (delta.index() != ss->standing_.index())
    return Status::InvalidArgument(
        "delta semiring does not match the subscription's semiring");
  if (relation_id < 0 ||
      relation_id >= static_cast<int>(ss->profiles_.size()))
    return Status::InvalidArgument("delta targets unknown relation " +
                                   std::to_string(relation_id));

  // FD-aware bounds on the *delta's* profile: assess the query shape with
  // the touched relation swapped for the delta, so admission prices the
  // incremental join work this batch can cause, not the standing database.
  const RelationProfile dp = std::visit(
      [](const auto& d) {
        const RelationProfile rm = ProfileRelation(d.removes);
        const RelationProfile ad = ProfileRelation(d.adds);
        RelationProfile out;
        out.rows = rm.rows + ad.rows;
        out.max_leading_run = std::max(rm.max_leading_run, ad.max_leading_run);
        return out;
      },
      delta);
  std::vector<RelationProfile> profiles;
  size_t num_free = 0;
  const Hypergraph* h = nullptr;
  {
    std::lock_guard<std::mutex> lock(ss->mu_);
    profiles = ss->profiles_;
    std::visit(
        [&](const auto& sq) {
          h = &sq.query().hypergraph;  // shape is immutable after Create
          num_free = sq.query().free_vars.size();
        },
        ss->standing_);
  }
  profiles[static_cast<size_t>(relation_id)] = dp;
  const QueryBounds bounds =
      admission_.Assess(*h, profiles, num_free, ss->domain_, ss->width_);
  const Status admit = admission_.Admit(bounds);
  if (!admit.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deltas_rejected;
    return admit;
  }

  Job job;
  job.bounds = bounds;
  job.klass = admission_.Classify(bounds);
  job.session = std::make_shared<Session>();
  job.enqueued = std::chrono::steady_clock::now();
  // The caller blocks on Wait() below, so `ss` outlives the closure.
  job.work = [ss, relation_id, dp,
              d = std::move(delta)](ExecContext& ctx) mutable
      -> Result<QueryResult> {
    std::lock_guard<std::mutex> lock(ss->mu_);
    QueryResult out;
    const Status applied = std::visit(
        [&](auto& sq) -> Status {
          using Sm = typename std::decay_t<decltype(sq)>::Semiring;
          Delta<Sm>& dd = std::get<Delta<Sm>>(d);
          TOPOFAQ_RETURN_IF_ERROR(
              sq.ApplyDelta(relation_id, std::move(dd), &ctx));
          out.observed_rows = sq.Current().size();
          // Keep the admission profile current without rescanning: exact
          // row count, monotone upper bound on the leading run.
          RelationProfile& p =
              ss->profiles_[static_cast<size_t>(relation_id)];
          p.rows = sq.query().relations[static_cast<size_t>(relation_id)]
                       .size();
          p.max_leading_run = std::max(p.max_leading_run, dp.max_leading_run);
          return Status::Ok();
        },
        ss->standing_);
    if (!applied.ok()) return applied;
    return out;
  };
  std::shared_ptr<Session> session = job.session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::Cancelled("engine is shutting down");
    queues_[static_cast<size_t>(job.klass)].push_back(std::move(job));
  }
  cv_.notify_one();
  Result<QueryResult> r = session->Wait();
  if (r.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deltas_applied;
  }
  return r;
}

Result<QueryResult> StandingSession::ApplyDelta(int relation_id,
                                                AnyDelta delta) {
  return engine_->SubmitDelta(this, relation_id, std::move(delta));
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats s = stats_;
  s.plan_cache = PlanCache::Shared().stats();
  return s;
}

}  // namespace topofaq
