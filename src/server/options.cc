// The single file in src/ that reads the process environment. Every knob is
// parsed here — either into an EngineOptions field or into one of the two
// legacy default seams the kernel layer consumes — so "what does variable X
// accept" has exactly one answer.
#include "server/options.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "relation/simd.h"
#include "util/check.h"

namespace topofaq {

int DefaultParallelism() {
  static const int v = [] {
    const char* env = std::getenv("TOPOFAQ_PARALLELISM");
    if (env == nullptr || *env == '\0') return 1;
    const int hw =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    if (std::strcmp(env, "max") == 0) return hw;
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || n < 0) return 1;  // invalid → serial
    if (n == 0) return hw;  // "0" = use every core, like "max"
    return static_cast<int>(std::min<long>(n, 1024));
  }();
  return v;
}

EncodingMode DefaultEncodingMode() {
  static const EncodingMode v = [] {
    const char* s = std::getenv("TOPOFAQ_ENCODING");
    if (s == nullptr || *s == '\0' || std::strcmp(s, "auto") == 0)
      return EncodingMode::kAuto;
    if (std::strcmp(s, "plain") == 0 || std::strcmp(s, "off") == 0)
      return EncodingMode::kPlain;
    if (std::strcmp(s, "dict") == 0) return EncodingMode::kForceDict;
    if (std::strcmp(s, "for") == 0) return EncodingMode::kForceFor;
    TOPOFAQ_CHECK_MSG(false,
                      "TOPOFAQ_ENCODING must be auto|plain|off|dict|for");
    return EncodingMode::kAuto;
  }();
  return v;
}

bool DefaultSimdEnabled() {
  static const bool v = [] {
    const char* s = std::getenv("TOPOFAQ_SIMD");
    if (s == nullptr || *s == '\0' || std::strcmp(s, "auto") == 0 ||
        std::strcmp(s, "on") == 0 || std::strcmp(s, "1") == 0)
      return true;
    if (std::strcmp(s, "off") == 0 || std::strcmp(s, "0") == 0) return false;
    TOPOFAQ_CHECK_MSG(false, "TOPOFAQ_SIMD must be auto|on|1|off|0");
    return true;
  }();
  return v;
}

EngineOptions EngineOptions::FromEnv() {
  EngineOptions opts;
  opts.parallelism = DefaultParallelism();
  opts.encoding = DefaultEncodingMode();
  opts.simd = DefaultSimdEnabled();
  const char* budget = std::getenv("TOPOFAQ_PAGE_BUDGET");
  if (budget != nullptr && *budget != '\0') {
    const long v = std::atol(budget);
    if (v >= 1) opts.page_budget = v;
  }
  const char* trace = std::getenv("TOPOFAQ_TRACE");
  if (trace != nullptr && *trace != '\0') opts.trace_path = trace;
  return opts;
}

}  // namespace topofaq
