// Engine configuration: every tunable the serving layer honors, in one
// struct, with one parser for the environment.
//
// Before this header existed the process knobs were scattered getenv calls:
// TOPOFAQ_PARALLELISM in relation/exec.cc, TOPOFAQ_ENCODING in
// relation/encoding.cc, TOPOFAQ_PAGE_BUDGET read ad hoc by tests. They are
// now fields of EngineOptions, and EngineOptions::FromEnv() — implemented in
// options.cc, the single file in src/ that calls std::getenv — is the only
// place environment text is parsed. The legacy seams DefaultParallelism()
// (relation/exec.h) and DefaultEncodingMode() (relation/encoding.h) are also
// defined there, so kernel-level defaults and engine options can never
// disagree about what an environment variable means.
#ifndef TOPOFAQ_SERVER_OPTIONS_H_
#define TOPOFAQ_SERVER_OPTIONS_H_

#include <cstdint>
#include <string>

#include "relation/encoding.h"
#include "relation/exec.h"
#include "relation/simd.h"

namespace topofaq {

/// Budgets and queue-classification thresholds for the admission controller
/// (server/admission.h). Budgets default to "unlimited" so an Engine admits
/// everything unless the caller opts into limits.
struct AdmissionOptions {
  /// Reject queries whose predicted output exceeds this many rows
  /// (the FD-aware chain bound of admission.h). 0 = no cap.
  uint64_t max_predicted_output_rows = 0;
  /// Reject queries whose internal-node-width y(H) exceeds this
  /// (Definition 2.9's y counts internal join-tree nodes, so it is >= 1 for
  /// any multi-edge query — even acyclic paths). -1 = no cap.
  int max_width = -1;

  /// Point class (highest priority): predicted output and largest input both
  /// small — a lookup that must never wait behind analytic work.
  uint64_t point_output_rows_max = 1024;
  uint64_t point_input_rows_max = 65536;
  /// Heavy class (lowest priority, capped slots): a GYO-cyclic core, a huge
  /// predicted output, or a huge input.
  uint64_t heavy_output_rows_min = 1ull << 20;
  uint64_t heavy_input_rows_min = 1ull << 20;
};

/// Everything an Engine needs to know at construction time.
struct EngineOptions {
  /// Operator parallelism granted to non-point queries (point lookups always
  /// run serially — fan-out costs more than the lookup).
  int parallelism = DefaultParallelism();
  /// Column encoding policy the engine installs process-wide on
  /// construction (SetGlobalEncodingMode).
  EncodingMode encoding = DefaultEncodingMode();
  /// Whether the vector kernels (relation/simd.h) may run; installed
  /// process-wide on construction (SetSimdEnabled). The TOPOFAQ_SIMD knob;
  /// off forces the guaranteed-equivalent scalar bodies everywhere.
  bool simd = DefaultSimdEnabled();
  /// Per-node page budget for the streaming network protocols
  /// (protocols/async.h); the TOPOFAQ_PAGE_BUDGET knob. Engine execution is
  /// in-process and ignores it, but it rides along so protocol drivers and
  /// tests read the knob through the same parser.
  int64_t page_budget = 8;
  /// Dispatcher threads draining the engine's queues. Two by default: one
  /// can sit inside a heavy query while the other keeps serving points.
  int dispatchers = 2;
  /// Queries of the heavy class allowed in flight at once. Keeping this
  /// below `dispatchers` is what guarantees a free dispatcher for point
  /// lookups under sustained heavy load.
  int heavy_slots = 1;
  AdmissionOptions admission;
  /// When non-empty, the engine starts with tracing enabled (one
  /// TraceSession spanning its lifetime) and writes the Chrome trace JSON
  /// here on destruction — the TOPOFAQ_TRACE knob. Empty (default): tracing
  /// off until Engine::EnableTracing is called.
  std::string trace_path;

  /// The one environment parser: TOPOFAQ_PARALLELISM ("max"/"0" = all
  /// cores, n = n workers, unset/invalid = 1), TOPOFAQ_ENCODING
  /// (auto | plain/off | dict | for), TOPOFAQ_SIMD (auto/on/1 | off/0),
  /// TOPOFAQ_PAGE_BUDGET (pages >= 1, unset/invalid = the field default),
  /// TOPOFAQ_TRACE (a file path; non-empty = trace from startup).
  /// Other fields keep their defaults.
  static EngineOptions FromEnv();
};

}  // namespace topofaq

#endif  // TOPOFAQ_SERVER_OPTIONS_H_
