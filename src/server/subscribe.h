// Subscription mode: Engine::Subscribe(QueryRequest) -> StandingSession.
//
// A standing session owns one StandingQuery (ivm/standing_query.h) behind
// the engine's untemplated surface: AnyDelta/AnyStandingQuery close the
// variants over the same semiring set as AnyQuery. Deltas are admitted
// through the same AdmissionController as one-shot queries — the FD-aware
// chain bound is assessed with the touched relation's profile replaced by
// the *delta's* profile, so admission prices the incremental work (delta
// rows × matching key runs elsewhere), not the standing database — and ride
// the same point/general/heavy priority queues as a dedicated job class, so
// a storm of delta batches cannot starve point lookups (nor vice versa).
//
// Concurrency: ApplyDelta calls are serialized per session by a mutex (delta
// propagation mutates the materialized pass state); Current() takes the same
// mutex and copies the answer out, so readers never observe a half-applied
// delta. Different sessions are independent. The engine must outlive every
// session handle it returned.
#ifndef TOPOFAQ_SERVER_SUBSCRIBE_H_
#define TOPOFAQ_SERVER_SUBSCRIBE_H_

#include <mutex>
#include <utility>
#include <variant>
#include <vector>

#include "ghd/width.h"
#include "ivm/standing_query.h"
#include "server/session.h"

namespace topofaq {

class Engine;

/// Every semiring the engine can maintain incrementally (same closed set as
/// AnyQuery). Which maintenance mode runs inside — ring propagation or
/// affected-subtree recompute — is per-semiring (RingTraits).
using AnyDelta =
    std::variant<Delta<BooleanSemiring>, Delta<NaturalSemiring>,
                 Delta<CountingSemiring>, Delta<MinPlusSemiring>,
                 Delta<MaxProductSemiring>, Delta<Gf2Semiring>>;

using AnyStandingQuery =
    std::variant<StandingQuery<BooleanSemiring>, StandingQuery<NaturalSemiring>,
                 StandingQuery<CountingSemiring>,
                 StandingQuery<MinPlusSemiring>,
                 StandingQuery<MaxProductSemiring>, StandingQuery<Gf2Semiring>>;

/// One live subscription. Obtained from Engine::Subscribe; see the file
/// comment for the concurrency contract.
class StandingSession {
 public:
  StandingSession(const StandingSession&) = delete;
  StandingSession& operator=(const StandingSession&) = delete;

  /// Snapshot of the current answer (copy, taken under the session mutex).
  AnyRelation Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return std::visit(
        [](const auto& sq) -> AnyRelation { return sq.Current(); }, standing_);
  }

  /// Statically-typed snapshot for callers that know their semiring.
  template <CommutativeSemiring S>
  Relation<S> Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return std::get<StandingQuery<S>>(standing_).Current();
  }

  /// Admits `delta` against the session's bounds, queues it on the engine
  /// (its own QueueClass), and blocks until it has been applied. Returns
  /// the delta job's QueryResult (bounds/queue timings; the answer slot is
  /// left empty — read Current() for data). ResourceExhausted deltas are
  /// NOT applied. Implemented in engine.cc.
  Result<QueryResult> ApplyDelta(int relation_id, AnyDelta delta);

  /// Statically-typed convenience.
  template <CommutativeSemiring S>
  Result<QueryResult> ApplyDelta(int relation_id, Delta<S> delta) {
    return ApplyDelta(relation_id, AnyDelta(std::move(delta)));
  }

  StandingStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return std::visit([](const auto& sq) { return sq.stats(); }, standing_);
  }

  bool ring_mode() const {
    std::lock_guard<std::mutex> lock(mu_);
    return std::visit([](const auto& sq) { return sq.ring_mode(); },
                      standing_);
  }

  /// Number of base relations (valid delta targets are [0, n)).
  int num_relations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return std::visit(
        [](const auto& sq) {
          return static_cast<int>(sq.query().relations.size());
        },
        standing_);
  }

 private:
  friend class Engine;

  StandingSession(Engine* engine, AnyStandingQuery standing,
                  std::vector<RelationProfile> profiles, uint64_t domain,
                  WidthResult width)
      : engine_(engine),
        standing_(std::move(standing)),
        profiles_(std::move(profiles)),
        domain_(domain),
        width_(std::move(width)) {}

  Engine* engine_;
  mutable std::mutex mu_;  // serializes ApplyDelta propagation and Current()
  AnyStandingQuery standing_;
  /// Base-relation profiles for delta admission. Row counts track the live
  /// base exactly; max_leading_run is maintained as a monotone upper bound
  /// (max of base-at-subscribe and every admitted delta) so admission never
  /// rescans the database on the delta path.
  std::vector<RelationProfile> profiles_;
  uint64_t domain_;
  WidthResult width_;
};

}  // namespace topofaq

#endif  // TOPOFAQ_SERVER_SUBSCRIBE_H_
