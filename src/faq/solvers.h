// Centralized FAQ solvers:
//
//  * BruteForceSolve — joins everything, then eliminates bound variables in
//    the canonical innermost-first order of Eq. (4). Exponential; the
//    ground-truth oracle for tests.
//  * YannakakisSolve — the GHD message-passing upward pass of Theorem G.3:
//    O~(N) for acyclic H, with aggregate push-down (Corollary G.2) at every
//    node; cyclic cores are finished at the root by the worst-case-optimal
//    MultiwayJoin (relation/multiway.h) via JoinAndEliminate, so the peak
//    materialization there is the core's output, not a pairwise
//    intermediate. This mirrors, step for step, what the distributed
//    protocol computes.
//
// Every solver threads one ExecContext through the sorted-relation kernel
// (relation/ops.h): operators reuse the context's scratch buffers and
// consume their inputs through typed column views (columnar storage,
// docs/kernel.md — Eliminate in particular never copies or even reads the
// eliminated columns), bound variables are eliminated in batches (one
// group-by per aggregate run instead of one per variable), and callers can
// read operator statistics off the context afterwards. Passing nullptr uses a thread-local context.
// Setting ctx->parallelism > 1 (or TOPOFAQ_PARALLELISM, which both the
// explicit and the thread-local context inherit) makes every pass's large
// joins and eliminations morsel-parallel with bit-identical results
// (docs/kernel.md, "Morsel-parallel execution").
#ifndef TOPOFAQ_FAQ_SOLVERS_H_
#define TOPOFAQ_FAQ_SOLVERS_H_

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "faq/query.h"
#include "ghd/plan_cache.h"
#include "ghd/width.h"
#include "relation/exec.h"
#include "relation/multiway.h"

namespace topofaq {

namespace internal {

/// Unit relation: empty schema, single empty tuple annotated 1.
template <CommutativeSemiring S>
Relation<S> UnitRelation() {
  Relation<S> r{Schema(std::vector<VarId>{})};
  r.Add(std::initializer_list<Value>{}, S::One());
  r.Canonicalize();  // one row, trivially sorted — certify so the unit can
                     // flow anywhere a canonical relation is required
  return r;
}

/// Eliminates `vars` from r with each variable's own aggregate, batched:
/// Eliminate() orders them descending (the Eq. (4) innermost-first order
/// restricted to this bag) and groups once per run of equal aggregates.
template <CommutativeSemiring S>
Relation<S> EliminateAll(Relation<S> r, std::vector<VarId> vars,
                         const FaqQuery<S>& q, ExecContext* ctx = nullptr) {
  std::vector<VarOp> ops;
  ops.reserve(vars.size());
  for (VarId v : vars) ops.push_back(q.OpFor(v));
  return Eliminate(std::move(r), std::move(vars), std::move(ops), ctx);
}

/// Joins a bag of relations and eliminates their bound variables, working
/// one variable-connected component at a time.
///
/// Correctness of the component reordering (Theorem G.1): components share
/// no variables (hence no relations), so the ⊗-product of the inputs
/// factorizes over components, every bound-variable aggregate ⊕(i) commutes
/// past the factors that do not mention variable i (the Theorem G.1
/// push-down condition, trivially met across components), and the final
/// cross-combination of the reduced components is the same function as
/// joining everything first and eliminating afterwards — without ever
/// materializing cross products of unreduced inputs.
///
/// Within a component the join plan is routed by shape: a component of >= 3
/// relations goes through the worst-case-optimal MultiwayJoin, whose peak
/// materialization is its output (every *cyclic* component has >= 3 edges —
/// any two-edge hypergraph is GYO-reducible — so cyclic cores never pay the
/// pairwise chain's super-AGM intermediates). One- and two-relation
/// components keep the pairwise sort-merge Join, which also survives as the
/// differential-test oracle for the multiway path (tests/multiway_test.cc).
template <CommutativeSemiring S>
Relation<S> JoinAndEliminate(std::vector<Relation<S>> parts,
                             const FaqQuery<S>& q, ExecContext* ctx = nullptr) {
  // Union-find over parts keyed by variable: each variable remembers the
  // first part it appeared in and every later occurrence unions with it —
  // O(total arity) pairings instead of the old O(parts²) pairwise
  // schema-intersection scan.
  std::vector<int> comp(parts.size());
  for (size_t i = 0; i < parts.size(); ++i) comp[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    return comp[x] == x ? x : comp[x] = find(comp[x]);
  };
  std::unordered_map<VarId, int> var_part;
  var_part.reserve(parts.size() * 2);
  for (size_t i = 0; i < parts.size(); ++i)
    for (VarId v : parts[i].schema().vars()) {
      auto [it, inserted] = var_part.emplace(v, static_cast<int>(i));
      if (!inserted) comp[find(static_cast<int>(i))] = find(it->second);
    }

  Relation<S> acc = UnitRelation<S>();
  for (size_t root = 0; root < parts.size(); ++root) {
    if (find(static_cast<int>(root)) != static_cast<int>(root)) continue;
    std::vector<Relation<S>> members;
    for (size_t i = 0; i < parts.size(); ++i)
      if (find(static_cast<int>(i)) == static_cast<int>(root))
        members.push_back(std::move(parts[i]));
    Relation<S> part;
    if (members.size() >= 3) {
      part = MultiwayJoin(std::move(members), ctx);
    } else {
      part = UnitRelation<S>();
      for (Relation<S>& m : members) part = Join(part, m, ctx);
    }
    std::vector<VarId> bound;
    for (VarId v : part.schema().vars())
      if (std::find(q.free_vars.begin(), q.free_vars.end(), v) ==
          q.free_vars.end())
        bound.push_back(v);
    part = EliminateAll(std::move(part), bound, q, ctx);
    acc = Join(acc, part, ctx);  // disjoint schemas: scalar/cross combination
  }
  return acc;
}

}  // namespace internal

/// Ground-truth solver. Returns a relation over exactly `free_vars`.
/// Cooperative cancellation: when the context carries a fired cancel token
/// (server/engine.h), returns Status::Cancelled — checked between operator
/// calls, plus at every morsel boundary inside parallel operators.
template <CommutativeSemiring S>
Result<Relation<S>> BruteForceSolve(const FaqQuery<S>& q,
                                    ExecContext* ctx = nullptr) {
  TOPOFAQ_RETURN_IF_ERROR(q.Validate());
  ExecContext& cx = ExecContext::Resolve(ctx);
  if (cx.cancelled()) return Status::Cancelled("query cancelled before solve");
  Relation<S> acc = internal::JoinAndEliminate(q.relations, q, ctx);
  if (cx.cancelled()) return Status::Cancelled("query cancelled mid-solve");
  return Project(acc, q.free_vars, ctx);
}

/// Theorem G.3 solver over a supplied decomposition; free variables must lie
/// in the root bag (F ⊆ V(C(H)), the Appendix G.5 restriction).
template <CommutativeSemiring S>
Result<Relation<S>> YannakakisSolveOn(const FaqQuery<S>& q, const GyoGhd& gg,
                                      ExecContext* ctx = nullptr) {
  TOPOFAQ_RETURN_IF_ERROR(q.Validate());
  const Ghd& ghd = gg.ghd;
  const auto& root_chi = ghd.node(ghd.root()).chi;
  for (VarId v : q.free_vars)
    if (!std::binary_search(root_chi.begin(), root_chi.end(), v))
      return Status::FailedPrecondition(
          "free variable " + std::to_string(v) +
          " outside V(C(H)): unsupported choice of F (Appendix G.5)");

  // Upward pass: message[v] = relation over χ(v) ∩ χ(parent(v)). Every join
  // and batched elimination below shares `ctx`'s scratch buffers.
  ExecContext& cx = ExecContext::Resolve(ctx);
  std::vector<Relation<S>> state(ghd.num_nodes());
  for (int v = 0; v < ghd.num_nodes(); ++v) {
    const int e = ghd.node(v).edge_id;
    state[v] = (e >= 0) ? q.relations[e] : internal::UnitRelation<S>();
  }
  for (int v : ghd.BottomUpOrder()) {
    // Node-boundary cancellation check: one GHD node's work is the pass's
    // natural morsel (parallel operators additionally check per morsel).
    if (cx.cancelled()) return Status::Cancelled("query cancelled mid-pass");
    for (int c : ghd.node(v).children) state[v] = Join(state[v], state[c], ctx);
    if (v == ghd.root()) break;
    // Push down aggregates over variables private to this subtree
    // (Corollary G.2): everything in the current schema that is not in the
    // parent bag. RIP guarantees such variables occur nowhere else.
    const auto& parent_chi = ghd.node(ghd.node(v).parent).chi;
    std::vector<VarId> private_vars;
    for (VarId x : state[v].schema().vars())
      if (!std::binary_search(parent_chi.begin(), parent_chi.end(), x))
        private_vars.push_back(x);
    state[v] = internal::EliminateAll(std::move(state[v]), private_vars, q, ctx);
  }
  // Root: eliminate the remaining bound variables, then order columns as F.
  Relation<S>& root_rel = state[ghd.root()];
  std::vector<VarId> bound;
  for (VarId v : root_rel.schema().vars())
    if (std::find(q.free_vars.begin(), q.free_vars.end(), v) ==
        q.free_vars.end())
      bound.push_back(v);
  root_rel = internal::EliminateAll(std::move(root_rel), bound, q, ctx);
  if (cx.cancelled()) return Status::Cancelled("query cancelled mid-pass");
  return Project(root_rel, q.free_vars, ctx);
}

/// Theorem G.3 solver using the canonical minimized decomposition; when F is
/// non-empty the decomposition is re-rooted so that F ⊆ χ(root) whenever the
/// query shape permits it. Decompositions come from the process-wide
/// PlanCache (ghd/plan_cache.h), so repeated query shapes skip the
/// GYO/width search entirely — both lookup paths are deterministic, hence a
/// cache hit produces bit-identical plans and answers; the cache's
/// hit/miss counters are the observability surface (PlanCache::stats).
template <CommutativeSemiring S>
Result<Relation<S>> YannakakisSolve(const FaqQuery<S>& q,
                                    ExecContext* ctx = nullptr) {
  auto w = PlanCache::Shared().PlanFor(q.hypergraph, q.free_vars);
  if (!w.ok()) return w.status();
  return YannakakisSolveOn(q, w->decomposition, ctx);
}

/// Convenience for BCQ: true iff the query is satisfiable.
inline Result<bool> SolveBcq(const FaqQuery<BooleanSemiring>& q,
                             ExecContext* ctx = nullptr) {
  auto r = YannakakisSolve(q, ctx);
  if (!r.ok()) return r.status();
  return !r->empty();
}

}  // namespace topofaq

#endif  // TOPOFAQ_FAQ_SOLVERS_H_
