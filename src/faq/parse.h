// Textual FAQ query format: a datalog-ish surface syntax for QueryRequests.
//
//   q(A, C) :- R(A, B), S(B, C); min(B)
//
// reads "the FAQ with free variables {A, C}, one hyperedge per body atom,
// and aggregate min for bound variable B" (bound variables without an
// aggregate clause default to the semiring's own ⊕, i.e. FAQ-SS). The text
// names *shapes* only — variables are identifiers, there are no constants —
// because an FAQ instance is a hypergraph plus one input function per edge;
// the functions (relations) are bound separately by InstantiateQuery, one
// per atom in atom order, with columns matching the atom's written variable
// order.
//
// Grammar (whitespace-insensitive; a trailing '.' is accepted):
//
//   query   := head ":-" atom ("," atom)* [";" agg ("," agg)*] ["."]
//   head    := ident "(" [ident ("," ident)*] ")"
//   atom    := ident "(" [ident ("," ident)*] ")"
//   agg     := ("sum" | "min" | "max" | "prod") "(" ident ")"
//   ident   := [A-Za-z_][A-Za-z0-9_]*
//
// VarIds are assigned by first appearance (head first, then atoms left to
// right), so the parse is deterministic: the same text always produces the
// same hypergraph, which is what lets the engine's plan cache key on parsed
// shapes. FormatQuery prints a ParsedQuery back to this grammar such that
// ParseQuery(FormatQuery(p)) reproduces p exactly (round-trip property,
// tests/engine_test.cc).
#ifndef TOPOFAQ_FAQ_PARSE_H_
#define TOPOFAQ_FAQ_PARSE_H_

#include <string>
#include <string_view>
#include <vector>

#include "faq/query.h"
#include "hypergraph/hypergraph.h"
#include "semiring/variable_ops.h"
#include "util/status.h"

namespace topofaq {

/// The semiring-independent result of parsing: query shape + names. Pair it
/// with per-atom relations via InstantiateQuery to get a runnable FaqQuery.
struct ParsedQuery {
  /// One body atom: a named input function over variables in written order
  /// (possibly unsorted; never repeated within one atom).
  struct Atom {
    std::string name;
    std::vector<VarId> vars;
  };

  std::string head;                    ///< head predicate name (kept verbatim)
  std::vector<std::string> var_names;  ///< display name per VarId
  std::vector<VarId> free_vars;        ///< head variables, in written order
  std::vector<VarOp> var_ops;          ///< aggregate per VarId (default sum)
  std::vector<Atom> atoms;             ///< body atoms, in written order

  /// The query hypergraph: one edge per atom, in atom order (edge ids index
  /// the atom list and hence InstantiateQuery's relation list).
  Hypergraph ToHypergraph() const {
    std::vector<std::vector<VarId>> edges;
    edges.reserve(atoms.size());
    for (const Atom& a : atoms) edges.push_back(a.vars);
    return Hypergraph(static_cast<int>(var_names.size()), std::move(edges));
  }
};

/// Parses one query in the grammar above. Rejects: empty bodies, repeated
/// variables within an atom, head variables that appear in no atom,
/// aggregates naming free or unknown variables, duplicate aggregate clauses,
/// and trailing garbage — each with a position-carrying message.
Result<ParsedQuery> ParseQuery(std::string_view text);

/// Prints `p` back to the surface grammar. Aggregate clauses are emitted
/// only for bound variables whose op differs from the kSemiringSum default,
/// in VarId order, so the output is canonical and round-trips exactly.
std::string FormatQuery(const ParsedQuery& p);

/// Binds one relation per atom (atom order) and returns the runnable query.
/// `atom_relations[i]`'s columns must positionally match atom i's written
/// variable order; the relation is re-schema'd to the atom's variables,
/// column-reordered into sorted-VarId order (the Relation schema invariant)
/// and canonicalized. Arity mismatches are InvalidArgument.
template <CommutativeSemiring S>
Result<FaqQuery<S>> InstantiateQuery(const ParsedQuery& p,
                                     std::vector<Relation<S>> atom_relations) {
  if (atom_relations.size() != p.atoms.size())
    return Status::InvalidArgument(
        "need exactly one relation per atom: got " +
        std::to_string(atom_relations.size()) + " for " +
        std::to_string(p.atoms.size()) + " atoms");
  for (size_t i = 0; i < p.atoms.size(); ++i) {
    const ParsedQuery::Atom& atom = p.atoms[i];
    Relation<S>& r = atom_relations[i];
    if (r.arity() != atom.vars.size())
      return Status::InvalidArgument(
          "atom " + atom.name + " has arity " +
          std::to_string(atom.vars.size()) + " but its relation has arity " +
          std::to_string(r.arity()));
    // Columns arrive in written-atom order; the storage invariant wants
    // sorted VarId order. src[j] = written position of the j-th sorted var.
    std::vector<VarId> sorted = atom.vars;
    std::sort(sorted.begin(), sorted.end());
    std::vector<int> src(sorted.size());
    for (size_t j = 0; j < sorted.size(); ++j)
      src[j] = static_cast<int>(
          std::find(atom.vars.begin(), atom.vars.end(), sorted[j]) -
          atom.vars.begin());
    r.ReorderColumns(Schema(sorted), src);
    r.Canonicalize();
  }
  FaqQuery<S> q;
  q.hypergraph = p.ToHypergraph();
  q.relations = std::move(atom_relations);
  q.free_vars = p.free_vars;
  q.var_ops = p.var_ops;
  TOPOFAQ_RETURN_IF_ERROR(q.Validate());
  return q;
}

}  // namespace topofaq

#endif  // TOPOFAQ_FAQ_PARSE_H_
