// FAQ queries (Eq. (1.0)/(4) of the paper): a multi-hypergraph H, one input
// function (relation in listing representation) per hyperedge, a set of free
// variables F, and a per-bound-variable aggregate ⊕(i).
//
// Specializations (Appendix G.1): BCQ (Boolean semiring, F = ∅), natural
// join (Boolean, F = V), semijoin, and PGM variable/factor marginals
// (counting semiring, F = {v} or F = e).
#ifndef TOPOFAQ_FAQ_QUERY_H_
#define TOPOFAQ_FAQ_QUERY_H_

#include <vector>

#include "hypergraph/hypergraph.h"
#include "relation/ops.h"
#include "relation/relation.h"
#include "semiring/variable_ops.h"
#include "util/status.h"

namespace topofaq {

/// An FAQ instance over semiring S. For FAQ-SS every bound variable uses
/// VarOp::kSemiringSum; general FAQ may assign kMax/kMin/kProduct per
/// variable (Eq. (4)), subject to the push-down conditions of Theorem G.1.
template <CommutativeSemiring S>
struct FaqQuery {
  using Semiring = S;

  Hypergraph hypergraph;
  /// relations[e] has schema == hypergraph.edge(e) (sorted variable order).
  std::vector<Relation<S>> relations;
  /// Free variables F ⊆ V; the answer is a relation over F (a scalar
  /// annotation on the empty tuple when F = ∅).
  std::vector<VarId> free_vars;
  /// Aggregate per vertex id; consulted only for bound variables.
  std::vector<VarOp> var_ops;

  /// Structural checks: one relation per edge with matching schema; free
  /// variables exist; var_ops sized to the vertex count.
  Status Validate() const {
    if (static_cast<int>(relations.size()) != hypergraph.num_edges())
      return Status::InvalidArgument("need exactly one relation per hyperedge");
    for (int e = 0; e < hypergraph.num_edges(); ++e)
      if (relations[e].schema().vars() != hypergraph.edge(e))
        return Status::InvalidArgument("relation schema != hyperedge " +
                                       std::to_string(e));
    for (VarId v : free_vars)
      if (v >= static_cast<VarId>(hypergraph.num_vertices()))
        return Status::InvalidArgument("free variable out of range");
    if (var_ops.size() != static_cast<size_t>(hypergraph.num_vertices()))
      return Status::InvalidArgument("var_ops must cover every vertex");
    // Product aggregates (⊕(i) = ⊗) cannot be pushed below a join without
    // the indicator-function rewriting of Abo Khamis et al.: for a group
    // with m matching tuples, ⊗ over the joined rows contributes the other
    // factors to the m-th power. We support the semiring aggregates
    // (sum/min/max), which cover every experiment in the paper.
    for (VarId v = 0; v < static_cast<VarId>(hypergraph.num_vertices()); ++v) {
      const bool is_free = std::find(free_vars.begin(), free_vars.end(), v) !=
                           free_vars.end();
      if (!is_free && var_ops[v] == VarOp::kProduct && hypergraph.Degree(v) > 0)
        return Status::Unimplemented(
            "product aggregate on bound variable " + std::to_string(v) +
            " requires the FAQ indicator rewriting (not implemented)");
    }
    return Status::Ok();
  }

  VarOp OpFor(VarId v) const { return var_ops[v]; }

  /// The paper's D: an upper bound on attribute-domain size, derived from
  /// the data (at least 2 so log2 D >= 1).
  uint64_t DomainSize() const {
    uint64_t d = 2;
    for (const auto& r : relations) d = std::max(d, r.MaxValuePlusOne());
    return d;
  }

  int MaxRelationSize() const {
    size_t n = 0;
    for (const auto& r : relations) n = std::max(n, r.size());
    return static_cast<int>(n);
  }
};

/// FAQ-SS query with all-sum aggregates.
template <CommutativeSemiring S>
FaqQuery<S> MakeFaqSS(Hypergraph h, std::vector<Relation<S>> relations,
                      std::vector<VarId> free_vars) {
  FaqQuery<S> q;
  q.var_ops.assign(h.num_vertices(), VarOp::kSemiringSum);
  q.hypergraph = std::move(h);
  q.relations = std::move(relations);
  q.free_vars = std::move(free_vars);
  return q;
}

/// Boolean conjunctive query: F = ∅ over the Boolean semiring.
inline FaqQuery<BooleanSemiring> MakeBcq(
    Hypergraph h, std::vector<Relation<BooleanSemiring>> relations) {
  return MakeFaqSS<BooleanSemiring>(std::move(h), std::move(relations), {});
}

/// Natural join: F = V over the Boolean semiring (footnote 4).
inline FaqQuery<BooleanSemiring> MakeNaturalJoin(
    Hypergraph h, std::vector<Relation<BooleanSemiring>> relations) {
  std::vector<VarId> all = h.UsedVertices();
  return MakeFaqSS<BooleanSemiring>(std::move(h), std::move(relations), all);
}

/// PGM factor marginal: F = e for a hyperedge e over (ℝ≥0, +, ×).
inline FaqQuery<CountingSemiring> MakeFactorMarginal(
    Hypergraph h, std::vector<Relation<CountingSemiring>> relations,
    int marginal_edge) {
  std::vector<VarId> f = h.edge(marginal_edge);
  return MakeFaqSS<CountingSemiring>(std::move(h), std::move(relations), f);
}

}  // namespace topofaq

#endif  // TOPOFAQ_FAQ_QUERY_H_
