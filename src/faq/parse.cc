#include "faq/parse.h"

#include <cctype>

namespace topofaq {

namespace {

/// Hand-rolled cursor over the query text. Error messages carry the byte
/// offset so shell users can locate the problem in long batch lines.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  /// Consumes `tok` (after whitespace) or returns false without moving.
  bool Eat(std::string_view tok) {
    SkipWs();
    if (text_.substr(pos_, tok.size()) != tok) return false;
    pos_ += tok.size();
    return true;
  }

  /// Consumes an identifier, or returns an empty string without moving.
  std::string Ident() {
    SkipWs();
    size_t end = pos_;
    auto head = [&](char c) {
      return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
    };
    auto tail = [&](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    if (end < text_.size() && head(text_[end])) {
      ++end;
      while (end < text_.size() && tail(text_[end])) ++end;
    }
    std::string id(text_.substr(pos_, end - pos_));
    pos_ = end;
    return id;
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

/// Parses `name ( v1, v2, ... )`, returning variable names in written order.
Status ParseAtomInto(Cursor& c, std::string* name,
                     std::vector<std::string>* vars) {
  *name = c.Ident();
  if (name->empty()) return c.Error("expected a predicate name");
  if (!c.Eat("(")) return c.Error("expected '(' after " + *name);
  vars->clear();
  if (c.Eat(")")) return Status::Ok();
  for (;;) {
    std::string v = c.Ident();
    if (v.empty()) return c.Error("expected a variable name in " + *name);
    vars->push_back(std::move(v));
    if (c.Eat(")")) return Status::Ok();
    if (!c.Eat(","))
      return c.Error("expected ',' or ')' in " + *name + "'s argument list");
  }
}

}  // namespace

Result<ParsedQuery> ParseQuery(std::string_view text) {
  Cursor c(text);
  ParsedQuery p;

  // Name -> VarId interning, first appearance wins (head first, then atoms).
  auto intern = [&p](const std::string& name) {
    for (size_t i = 0; i < p.var_names.size(); ++i)
      if (p.var_names[i] == name) return static_cast<VarId>(i);
    p.var_names.push_back(name);
    return static_cast<VarId>(p.var_names.size() - 1);
  };

  std::vector<std::string> head_vars;
  TOPOFAQ_RETURN_IF_ERROR(ParseAtomInto(c, &p.head, &head_vars));
  for (const std::string& v : head_vars) {
    const VarId id = intern(v);
    if (std::find(p.free_vars.begin(), p.free_vars.end(), id) !=
        p.free_vars.end())
      return c.Error("head variable " + v + " repeated");
    p.free_vars.push_back(id);
  }

  if (!c.Eat(":-")) return c.Error("expected ':-' after the head");

  do {
    ParsedQuery::Atom atom;
    std::vector<std::string> names;
    TOPOFAQ_RETURN_IF_ERROR(ParseAtomInto(c, &atom.name, &names));
    for (const std::string& v : names) {
      const VarId id = intern(v);
      if (std::find(atom.vars.begin(), atom.vars.end(), id) != atom.vars.end())
        return c.Error("variable " + v + " repeated within atom " + atom.name);
      atom.vars.push_back(id);
    }
    p.atoms.push_back(std::move(atom));
  } while (c.Eat(","));
  if (p.atoms.empty()) return c.Error("query body has no atoms");

  p.var_ops.assign(p.var_names.size(), VarOp::kSemiringSum);
  std::vector<bool> agg_seen(p.var_names.size(), false);
  if (c.Eat(";")) {
    do {
      const std::string op_name = c.Ident();
      VarOp op;
      if (op_name == "sum") {
        op = VarOp::kSemiringSum;
      } else if (op_name == "min") {
        op = VarOp::kMin;
      } else if (op_name == "max") {
        op = VarOp::kMax;
      } else if (op_name == "prod") {
        op = VarOp::kProduct;
      } else {
        return c.Error("unknown aggregate '" + op_name +
                       "' (want sum/min/max/prod)");
      }
      if (!c.Eat("(")) return c.Error("expected '(' after " + op_name);
      const std::string v = c.Ident();
      if (v.empty() || !c.Eat(")"))
        return c.Error("expected '(variable)' after " + op_name);
      // Aggregates may only name bound variables that actually occur: a
      // typo'd variable silently defaulting to sum would change answers.
      VarId id = static_cast<VarId>(-1);
      for (size_t i = 0; i < p.var_names.size(); ++i)
        if (p.var_names[i] == v) id = static_cast<VarId>(i);
      if (id == static_cast<VarId>(-1))
        return c.Error("aggregate names unknown variable " + v);
      if (std::find(p.free_vars.begin(), p.free_vars.end(), id) !=
          p.free_vars.end())
        return c.Error("aggregate on free variable " + v +
                       " (free variables are not eliminated)");
      if (agg_seen[id])
        return c.Error("duplicate aggregate clause for " + v);
      agg_seen[id] = true;
      p.var_ops[id] = op;
    } while (c.Eat(","));
  }

  c.Eat(".");  // optional statement terminator
  if (!c.AtEnd()) return c.Error("trailing input after query");

  // Every head variable must occur in some atom: a free variable outside
  // every hyperedge has no input function constraining it.
  for (VarId f : p.free_vars) {
    bool found = false;
    for (const ParsedQuery::Atom& a : p.atoms)
      if (std::find(a.vars.begin(), a.vars.end(), f) != a.vars.end())
        found = true;
    if (!found)
      return Status::InvalidArgument("head variable " + p.var_names[f] +
                                     " appears in no body atom");
  }
  return p;
}

std::string FormatQuery(const ParsedQuery& p) {
  auto atom = [&p](const std::string& name, const std::vector<VarId>& vars) {
    std::string out = name + "(";
    for (size_t i = 0; i < vars.size(); ++i) {
      if (i > 0) out += ", ";
      out += p.var_names[vars[i]];
    }
    return out + ")";
  };
  std::string out = atom(p.head, p.free_vars) + " :- ";
  for (size_t i = 0; i < p.atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += atom(p.atoms[i].name, p.atoms[i].vars);
  }
  std::string aggs;
  for (size_t v = 0; v < p.var_ops.size(); ++v) {
    if (p.var_ops[v] == VarOp::kSemiringSum) continue;
    if (std::find(p.free_vars.begin(), p.free_vars.end(),
                  static_cast<VarId>(v)) != p.free_vars.end())
      continue;
    if (!aggs.empty()) aggs += ", ";
    aggs += std::string(VarOpName(p.var_ops[v])) + "(" + p.var_names[v] + ")";
  }
  if (!aggs.empty()) out += "; " + aggs;
  return out;
}

}  // namespace topofaq
