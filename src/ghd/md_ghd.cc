#include "ghd/md_ghd.h"

#include <algorithm>

namespace topofaq {
namespace {

bool SubsetOf(const std::vector<VarId>& a, const std::vector<VarId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::vector<VarId> IntersectSorted(const std::vector<VarId>& a,
                                   const std::vector<VarId>& b) {
  std::vector<VarId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

int FlattenToMdGhd(Ghd* ghd) {
  int rehangs = 0;
  bool changed = true;
  // Corollary F.7 bounds the process by |E(T)| * y(T); we guard generously.
  const int max_steps = ghd->num_nodes() * ghd->num_nodes() + 16;
  while (changed) {
    changed = false;
    for (int v = 0; v < ghd->num_nodes() && !changed; ++v) {
      const int u = ghd->node(v).parent;
      if (u < 0) continue;
      const std::vector<VarId> inter =
          IntersectSorted(ghd->node(v).chi, ghd->node(u).chi);
      // Topmost strict ancestor of u whose bag contains the intersection.
      // Synthetic core roots (edge_id < 0) are not valid targets: a
      // Construction 2.8 GYO-GHD only hangs hyperedges e ⊂ V(C(H)) or tree
      // roots there, and re-hanging arbitrary nodes onto the wide core bag
      // would leave the protocol nothing to star-reduce.
      int target = -1;
      for (int w : ghd->AncestorsOf(u))
        if (ghd->node(w).edge_id >= 0 && SubsetOf(inter, ghd->node(w).chi))
          target = w;  // ancestors run parent→root: the last hit is topmost
      if (target >= 0) {
        ghd->Rehang(v, target);
        ++rehangs;
        changed = true;
      }
    }
    TOPOFAQ_CHECK_MSG(rehangs <= max_steps, "MD-GHD flattening did not settle");
  }
  return rehangs;
}

std::vector<PrivateAttributeWitness> FindPrivateAttributes(const Hypergraph& h,
                                                           const Ghd& ghd) {
  // subtree_vertices[v] = union of bags in v's subtree.
  std::vector<std::vector<VarId>> subtree(ghd.num_nodes());
  for (int v : ghd.BottomUpOrder()) {
    std::vector<VarId> acc = ghd.node(v).chi;
    for (int c : ghd.node(v).children)
      acc.insert(acc.end(), subtree[c].begin(), subtree[c].end());
    std::sort(acc.begin(), acc.end());
    acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
    subtree[v] = std::move(acc);
  }

  std::vector<PrivateAttributeWitness> out;
  for (int u : ghd.BottomUpOrder()) {
    if (ghd.node(u).children.empty()) continue;
    // p must appear in u's bag, in some child's bag, and nowhere outside u's
    // subtree.
    for (VarId p : ghd.node(u).chi) {
      bool outside = false;
      for (int v = 0; v < ghd.num_nodes() && !outside; ++v) {
        if (v == u) continue;
        // v outside u's subtree? A node is in u's subtree iff u is an
        // ancestor-or-self.
        bool in_subtree = (v == u);
        for (int a = v; a >= 0 && !in_subtree; a = ghd.node(a).parent)
          if (a == u) in_subtree = true;
        if (in_subtree) continue;
        outside = std::binary_search(ghd.node(v).chi.begin(),
                                     ghd.node(v).chi.end(), p);
      }
      if (outside) continue;
      bool in_child = false;
      for (int c : ghd.node(u).children)
        if (std::binary_search(ghd.node(c).chi.begin(), ghd.node(c).chi.end(),
                               p)) {
          in_child = true;
          break;
        }
      if (!in_child) continue;
      // Two distinct hyperedges incident on p.
      std::vector<int> incident = h.IncidentEdges(p);
      if (incident.size() < 2) continue;
      out.push_back(PrivateAttributeWitness{u, p, incident[0], incident[1]});
      break;  // one witness per internal node
    }
  }
  return out;
}

}  // namespace topofaq
