// Construction 2.8: building a GYO-GHD from the core/forest decomposition.
// The root r' carries χ(r') = V(C(H)); every residual (core) hyperedge gets a
// leaf child of r'; every GYO tree in W(H) hangs below r' via its root edge.
// If a hyperedge's vertex set equals V(C(H)) (e.g. H acyclic and connected),
// that edge *is* the root node, keeping the decomposition reduced.
#ifndef TOPOFAQ_GHD_GYO_GHD_H_
#define TOPOFAQ_GHD_GYO_GHD_H_

#include "ghd/ghd.h"
#include "hypergraph/gyo.h"

namespace topofaq {

/// A GYO-GHD together with the decomposition it was built from.
struct GyoGhd {
  Ghd ghd;
  CoreForest core_forest;
  /// ghd node id for each hyperedge (the node with χ == edge).
  std::vector<int> node_of_edge;
};

/// Builds the canonical GYO-GHD of H via Construction 2.8.
GyoGhd BuildGyoGhd(const Hypergraph& h);

}  // namespace topofaq

#endif  // TOPOFAQ_GHD_GYO_GHD_H_
