#include "ghd/width.h"

#include <algorithm>
#include <numeric>

#include "ghd/md_ghd.h"

namespace topofaq {
namespace {

/// Rebuilds `ghd` rooted at `new_root`, keeping node ids and bags. Valid for
/// join trees of acyclic H: RIP is a property of the *unrooted* tree, so any
/// node may serve as root.
Ghd Reroot(const Ghd& ghd, int new_root) {
  // Undirected adjacency.
  std::vector<std::vector<int>> adj(ghd.num_nodes());
  for (int v = 0; v < ghd.num_nodes(); ++v)
    if (ghd.node(v).parent >= 0) {
      adj[v].push_back(ghd.node(v).parent);
      adj[ghd.node(v).parent].push_back(v);
    }
  Ghd out;
  for (int v = 0; v < ghd.num_nodes(); ++v) {
    GhdNode n = ghd.node(v);
    n.parent = -1;
    n.children.clear();
    out.AddNode(std::move(n));
  }
  out.set_root(new_root);
  std::vector<int> stack{new_root};
  std::vector<bool> seen(ghd.num_nodes(), false);
  seen[new_root] = true;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (int w : adj[v])
      if (!seen[w]) {
        seen[w] = true;
        out.SetParent(w, v);
        stack.push_back(w);
      }
  }
  return out;
}

/// For acyclic single-tree H, tries every node as root (each re-rooting
/// is a different GYO-GHD), flattening each; keeps the best. Updates the
/// root-edge bookkeeping in `gg->core_forest` when the root changes.
void ImproveByRerooting(GyoGhd* gg, const Hypergraph* h) {
  const CoreForest& cf = gg->core_forest;
  if (!cf.core_edges.empty() || cf.root_edges.size() != 1) return;
  int best_root = gg->ghd.root();
  int best_count = gg->ghd.InternalNodeCount();
  Ghd best = gg->ghd;
  for (int r = 0; r < gg->ghd.num_nodes(); ++r) {
    if (r == gg->ghd.root()) continue;
    Ghd cand = Reroot(gg->ghd, r);
    FlattenToMdGhd(&cand);
    const int count = cand.InternalNodeCount();
    if (count < best_count) {
      best_count = count;
      best_root = r;
      best = std::move(cand);
    }
  }
  if (best_root != gg->ghd.root()) {
    gg->ghd = std::move(best);
    // node_of_edge is unchanged (node ids were preserved); update the
    // root-edge summary so n2 reflects the new decomposition.
    const int edge = gg->ghd.node(best_root).edge_id;
    if (edge >= 0 && h != nullptr) {
      gg->core_forest.root_edges = {edge};
      gg->core_forest.core_vertices = h->edge(edge);
    }
  }
}

WidthResult Assemble(GyoGhd gg, const Hypergraph* h) {
  WidthResult r;
  FlattenToMdGhd(&gg.ghd);
  ImproveByRerooting(&gg, h);
  r.internal_nodes = gg.ghd.InternalNodeCount();
  r.n2 = gg.core_forest.n2();
  r.decomposition = std::move(gg);
  return r;
}

/// Applies a vertex and edge permutation to H, producing the relabeled
/// hypergraph and the mappings needed to translate results back.
struct Permuted {
  Hypergraph h;
  std::vector<VarId> vertex_to_orig;  // new id -> original id
  std::vector<int> edge_to_orig;      // new edge id -> original edge id
};

Permuted PermuteHypergraph(const Hypergraph& h, Rng* rng) {
  Permuted p;
  std::vector<VarId> vperm(h.num_vertices());
  std::iota(vperm.begin(), vperm.end(), 0);
  rng->Shuffle(&vperm);  // vperm[orig] = new id
  p.vertex_to_orig.resize(h.num_vertices());
  for (int v = 0; v < h.num_vertices(); ++v) p.vertex_to_orig[vperm[v]] = v;

  std::vector<int> eorder(h.num_edges());
  std::iota(eorder.begin(), eorder.end(), 0);
  rng->Shuffle(&eorder);  // new edge i is original eorder[i]
  p.edge_to_orig = eorder;

  std::vector<std::vector<VarId>> edges;
  for (int i = 0; i < h.num_edges(); ++i) {
    std::vector<VarId> e;
    for (VarId v : h.edge(eorder[i])) e.push_back(vperm[v]);
    edges.push_back(std::move(e));
  }
  p.h = Hypergraph(h.num_vertices(), std::move(edges));
  return p;
}

/// Maps a decomposition of the permuted hypergraph back to original labels.
GyoGhd Unpermute(const GyoGhd& gg, const Permuted& p, int orig_num_edges) {
  GyoGhd out = gg;
  for (int v = 0; v < out.ghd.num_nodes(); ++v) {
    GhdNode& n = out.ghd.mutable_node(v);
    for (VarId& x : n.chi) x = p.vertex_to_orig[x];
    std::sort(n.chi.begin(), n.chi.end());
    for (int& e : n.lambda) e = p.edge_to_orig[e];
    if (n.edge_id >= 0) n.edge_id = p.edge_to_orig[n.edge_id];
  }
  out.node_of_edge.assign(orig_num_edges, -1);
  for (int i = 0; i < static_cast<int>(gg.node_of_edge.size()); ++i)
    if (gg.node_of_edge[i] >= 0)
      out.node_of_edge[p.edge_to_orig[i]] = gg.node_of_edge[i];

  CoreForest& cf = out.core_forest;
  for (int& e : cf.core_edges) e = p.edge_to_orig[e];
  for (int& e : cf.root_edges) e = p.edge_to_orig[e];
  for (int& e : cf.forest_edges) e = p.edge_to_orig[e];
  for (VarId& v : cf.core_vertices) v = p.vertex_to_orig[v];
  std::sort(cf.core_vertices.begin(), cf.core_vertices.end());
  // Remap the parent array (indexed by edge id).
  std::vector<int> parent(orig_num_edges, -1);
  for (int i = 0; i < static_cast<int>(cf.parent.size()); ++i)
    if (cf.parent[i] >= 0)
      parent[p.edge_to_orig[i]] = p.edge_to_orig[cf.parent[i]];
  cf.parent = std::move(parent);
  // Note: cf.gyo retains permuted labels; only the summary fields above are
  // remapped. Protocols consume core/forest/parent and the GHD itself.
  return out;
}

}  // namespace

WidthResult ComputeWidth(const Hypergraph& h) {
  return Assemble(BuildGyoGhd(h), &h);
}

Result<WidthResult> MinimizeWidthWithRoot(const Hypergraph& h,
                                           const std::vector<VarId>& required_vars,
                                           int restarts, uint64_t seed) {
  auto covers = [&](const std::vector<VarId>& bag) {
    for (VarId v : required_vars)
      if (!std::binary_search(bag.begin(), bag.end(), v)) return false;
    return true;
  };
  WidthResult base = MinimizeWidth(h, restarts, seed);
  if (covers(base.decomposition.ghd.node(base.decomposition.ghd.root()).chi))
    return base;
  // Single-tree acyclic case: any node can be made the root.
  const CoreForest& cf = base.decomposition.core_forest;
  if (!cf.core_edges.empty() || cf.root_edges.size() != 1)
    return Status::FailedPrecondition(
        "required free variables are not contained in V(C(H))");
  const Ghd& ghd = base.decomposition.ghd;
  for (int v = 0; v < ghd.num_nodes(); ++v) {
    if (!covers(ghd.node(v).chi) || ghd.node(v).edge_id < 0) continue;
    GyoGhd gg = base.decomposition;
    gg.ghd = Reroot(gg.ghd, v);
    FlattenToMdGhd(&gg.ghd);
    const int edge = gg.ghd.node(v).edge_id;
    gg.core_forest.root_edges = {edge};
    gg.core_forest.core_vertices = h.edge(edge);
    WidthResult out;
    out.internal_nodes = gg.ghd.InternalNodeCount();
    out.n2 = gg.core_forest.n2();
    out.decomposition = std::move(gg);
    return out;
  }
  return Status::FailedPrecondition(
      "no hyperedge bag contains all required free variables");
}

WidthResult MinimizeWidth(const Hypergraph& h, int restarts, uint64_t seed) {
  WidthResult best = ComputeWidth(h);
  Rng rng(seed);
  for (int i = 0; i < restarts; ++i) {
    Permuted p = PermuteHypergraph(h, &rng);
    WidthResult cand =
        Assemble(Unpermute(BuildGyoGhd(p.h), p, h.num_edges()), &h);
    if (cand.internal_nodes < best.internal_nodes ||
        (cand.internal_nodes == best.internal_nodes && cand.n2 < best.n2)) {
      best = std::move(cand);
    }
  }
  return best;
}

}  // namespace topofaq
