// Generalized Hypertree Decompositions (Definition 2.4): a rooted tree T
// with bags χ(v) ⊆ V(H) and edge covers λ(v) ⊆ E(H), satisfying
//   (1) every hyperedge e has a node v with e ⊆ χ(v) and e ∈ λ(v), and
//   (2) the running intersection property (RIP): for every vertex set V',
//       the nodes whose bags contain V' are connected in T.
#ifndef TOPOFAQ_GHD_GHD_H_
#define TOPOFAQ_GHD_GHD_H_

#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace topofaq {

/// One node of a GHD.
struct GhdNode {
  std::vector<VarId> chi;   ///< bag (sorted, unique)
  std::vector<int> lambda;  ///< hyperedge ids covered at this node
  int parent = -1;
  std::vector<int> children;
  /// For reduced-GHD nodes: the hyperedge with χ(v) == edge; -1 for the
  /// synthetic core root of Construction 2.8 (when its bag is not an edge).
  int edge_id = -1;
};

/// A rooted GHD. Node 0 conventionally exists; `root()` names the root.
class Ghd {
 public:
  Ghd() = default;

  int AddNode(GhdNode node);
  void SetParent(int child, int parent);
  /// Detaches `child` from its current parent and re-hangs it under
  /// `new_parent` (subtree moves along).
  void Rehang(int child, int new_parent);

  int root() const { return root_; }
  void set_root(int r) { root_ = r; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const GhdNode& node(int i) const { return nodes_[i]; }
  GhdNode& mutable_node(int i) { return nodes_[i]; }

  /// Number of internal (non-leaf) nodes — the paper's y(T), Definition 2.9.
  int InternalNodeCount() const;

  /// Longest root-to-leaf path length (edges).
  int Depth() const;

  /// Nodes in a bottom-up order (children before parents).
  std::vector<int> BottomUpOrder() const;

  /// Ancestors of `v` from parent to root.
  std::vector<int> AncestorsOf(int v) const;

  /// Checks tree-structural integrity, hyperedge coverage and RIP against H.
  Status Validate(const Hypergraph& h) const;

  /// Checks the reduced-GHD property (Definition 2.4): every hyperedge id has
  /// a node whose bag *equals* it. Multi-hyperedges over the same vertex set
  /// may share or duplicate bags.
  Status ValidateReduced(const Hypergraph& h) const;

  std::string DebugString() const;

 private:
  std::vector<GhdNode> nodes_;
  int root_ = -1;
};

}  // namespace topofaq

#endif  // TOPOFAQ_GHD_GHD_H_
