// Internal-node-width y(H) (Definition 2.9): the minimum number of internal
// nodes over GYO-GHDs of H. Computing the exact minimum over all GYO-GHDs is
// a search over GYO tie-breaking and attachment choices; the paper only needs
// an O(1)-approximation (Appendix F), obtained by flattening to an MD-GHD.
//
// ComputeWidth() returns the canonical flattened GYO-GHD; MinimizeWidth()
// additionally explores randomized GYO orderings (via vertex/edge relabeling)
// and keeps the best decomposition found — deterministic given the seed.
#ifndef TOPOFAQ_GHD_WIDTH_H_
#define TOPOFAQ_GHD_WIDTH_H_

#include "ghd/gyo_ghd.h"
#include "util/rng.h"

namespace topofaq {

struct WidthResult {
  GyoGhd decomposition;  ///< flattened (MD) GYO-GHD achieving the width
  int internal_nodes = 0;  ///< y of the returned decomposition
  int n2 = 0;              ///< |V(C(H))| of the returned decomposition
};

/// Canonical GYO-GHD, flattened. Deterministic.
WidthResult ComputeWidth(const Hypergraph& h);

/// Best decomposition over `restarts` randomized GYO orderings plus the
/// canonical one. Ties prefer smaller n2.
WidthResult MinimizeWidth(const Hypergraph& h, int restarts, uint64_t seed);

/// Like MinimizeWidth, but guarantees the root bag contains `required_vars`
/// (needed when the FAQ's free variables F must lie in V(C(H)); for acyclic
/// single-tree H the join tree is re-rooted at a node covering F). Fails if
/// no bag covers the variables or the hypergraph's core cannot host them.
Result<WidthResult> MinimizeWidthWithRoot(const Hypergraph& h,
                                          const std::vector<VarId>& required_vars,
                                          int restarts, uint64_t seed);

}  // namespace topofaq

#endif  // TOPOFAQ_GHD_WIDTH_H_
