#include "ghd/plan_cache.h"

#include <algorithm>

namespace topofaq {

PlanCache& PlanCache::Shared() {
  static PlanCache cache;
  return cache;
}

std::string PlanCache::Fingerprint(const Hypergraph& h,
                                   const std::vector<VarId>& root_vars,
                                   int restarts, uint64_t seed) {
  // Edge insertion order is preserved: the decomposition's edge ids index
  // the query's relation list, so two hypergraphs with the same edge *set*
  // but different order are different shapes.
  std::string fp;
  fp.reserve(16 + static_cast<size_t>(h.num_edges()) * 8);
  fp += "V" + std::to_string(h.num_vertices());
  for (int e = 0; e < h.num_edges(); ++e) {
    fp += ";e";
    for (VarId v : h.edge(e)) {
      fp += std::to_string(v);
      fp += ',';
    }
  }
  fp += ";F";
  for (VarId v : root_vars) {
    fp += std::to_string(v);
    fp += ',';
  }
  fp += ";r" + std::to_string(restarts) + ";s" + std::to_string(seed);
  return fp;
}

template <typename Compute>
WidthResult PlanCache::GetOrCompute(const std::string& key, Compute&& compute,
                                    bool* was_hit) {
  if (was_hit != nullptr) *was_hit = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
      ++stats_.hits;
      if (was_hit != nullptr) *was_hit = true;
      return it->second->second;
    }
    ++stats_.misses;
  }
  // Compute outside the lock: decomposition search over a large shape must
  // not serialize unrelated lookups. Two threads may race to compute the
  // same shape; both results are deterministic and identical, so whichever
  // insert lands last is indistinguishable from a single compute.
  WidthResult value = compute();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(key, value);
  by_key_[key] = lru_.begin();
  while (capacity_ > 0 && lru_.size() > capacity_) {
    by_key_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return value;
}

WidthResult PlanCache::Canonical(const Hypergraph& h, bool* was_hit) {
  const std::string key = Fingerprint(h, {}, /*restarts=*/-1, /*seed=*/0);
  return GetOrCompute(key, [&] { return ComputeWidth(h); }, was_hit);
}

Result<WidthResult> PlanCache::WithRoot(
    const Hypergraph& h, const std::vector<VarId>& required_root_vars,
    int restarts, uint64_t seed, bool* was_hit) {
  const std::string key = Fingerprint(h, required_root_vars, restarts, seed);
  if (was_hit != nullptr) *was_hit = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      if (was_hit != nullptr) *was_hit = true;
      return it->second->second;
    }
  }
  // Probe-then-compute keeps failures out of the cache: only successful
  // plans are inserted.
  auto w = MinimizeWidthWithRoot(h, required_root_vars, restarts, seed);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  if (!w.ok()) return w.status();
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {  // racing compute landed first; identical value
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(key, *std::move(w));
  by_key_[key] = lru_.begin();
  while (capacity_ > 0 && lru_.size() > capacity_) {
    by_key_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return lru_.front().second;
}

Result<WidthResult> PlanCache::PlanFor(const Hypergraph& h,
                                       const std::vector<VarId>& free_vars,
                                       bool* was_hit) {
  if (free_vars.empty()) return Canonical(h, was_hit);
  std::vector<VarId> f = free_vars;
  std::sort(f.begin(), f.end());
  return WithRoot(h, f, /*restarts=*/4, /*seed=*/1, was_hit);
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  by_key_.clear();
  stats_ = Stats{};
}

}  // namespace topofaq
