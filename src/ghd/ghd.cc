#include "ghd/ghd.h"

#include <algorithm>
#include <queue>

namespace topofaq {

int Ghd::AddNode(GhdNode node) {
  std::sort(node.chi.begin(), node.chi.end());
  node.chi.erase(std::unique(node.chi.begin(), node.chi.end()), node.chi.end());
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

void Ghd::SetParent(int child, int parent) {
  TOPOFAQ_CHECK(child != parent);
  nodes_[child].parent = parent;
  nodes_[parent].children.push_back(child);
}

void Ghd::Rehang(int child, int new_parent) {
  const int old = nodes_[child].parent;
  TOPOFAQ_CHECK(old >= 0);
  auto& siblings = nodes_[old].children;
  siblings.erase(std::find(siblings.begin(), siblings.end(), child));
  SetParent(child, new_parent);
}

int Ghd::InternalNodeCount() const {
  int c = 0;
  for (const auto& n : nodes_)
    if (!n.children.empty()) ++c;
  return c;
}

int Ghd::Depth() const {
  if (root_ < 0) return 0;
  int best = 0;
  std::queue<std::pair<int, int>> q;
  q.push({root_, 0});
  while (!q.empty()) {
    auto [v, d] = q.front();
    q.pop();
    best = std::max(best, d);
    for (int c : nodes_[v].children) q.push({c, d + 1});
  }
  return best;
}

std::vector<int> Ghd::BottomUpOrder() const {
  std::vector<int> order, stack{root_};
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (int c : nodes_[v].children) stack.push_back(c);
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<int> Ghd::AncestorsOf(int v) const {
  std::vector<int> out;
  for (int p = nodes_[v].parent; p >= 0; p = nodes_[p].parent) out.push_back(p);
  return out;
}

Status Ghd::Validate(const Hypergraph& h) const {
  if (root_ < 0 || root_ >= num_nodes())
    return Status::FailedPrecondition("invalid root");
  // Tree structure: every non-root node has a parent; reachability from root
  // covers all nodes exactly once.
  std::vector<bool> seen(num_nodes(), false);
  std::vector<int> stack{root_};
  int count = 0;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    if (seen[v]) return Status::FailedPrecondition("cycle in GHD tree");
    seen[v] = true;
    ++count;
    for (int c : nodes_[v].children) {
      if (nodes_[c].parent != v)
        return Status::FailedPrecondition("child/parent mismatch");
      stack.push_back(c);
    }
  }
  if (count != num_nodes())
    return Status::FailedPrecondition("GHD tree not connected");

  // Property 1: coverage.
  for (int e = 0; e < h.num_edges(); ++e) {
    bool covered = false;
    for (int v = 0; v < num_nodes() && !covered; ++v) {
      const auto& n = nodes_[v];
      if (std::find(n.lambda.begin(), n.lambda.end(), e) == n.lambda.end())
        continue;
      covered = std::includes(n.chi.begin(), n.chi.end(), h.edge(e).begin(),
                              h.edge(e).end());
    }
    if (!covered)
      return Status::FailedPrecondition("hyperedge " + std::to_string(e) +
                                        " not covered by any node");
  }

  // Property 2 (RIP): it suffices to check single vertices — for a set V',
  // the V'-nodes are the intersection of the per-vertex connected subtrees,
  // and an intersection of subtrees of a tree is connected.
  for (int x = 0; x < h.num_vertices(); ++x) {
    const VarId v = static_cast<VarId>(x);
    std::vector<int> holders;
    for (int i = 0; i < num_nodes(); ++i)
      if (std::binary_search(nodes_[i].chi.begin(), nodes_[i].chi.end(), v))
        holders.push_back(i);
    if (holders.size() <= 1) continue;
    // BFS within holder-induced subgraph.
    std::vector<bool> is_holder(num_nodes(), false);
    for (int i : holders) is_holder[i] = true;
    std::vector<bool> visited(num_nodes(), false);
    std::vector<int> st{holders[0]};
    visited[holders[0]] = true;
    int reached = 0;
    while (!st.empty()) {
      int u = st.back();
      st.pop_back();
      ++reached;
      std::vector<int> nbrs = nodes_[u].children;
      if (nodes_[u].parent >= 0) nbrs.push_back(nodes_[u].parent);
      for (int w : nbrs)
        if (is_holder[w] && !visited[w]) {
          visited[w] = true;
          st.push_back(w);
        }
    }
    if (reached != static_cast<int>(holders.size()))
      return Status::FailedPrecondition("RIP violated for vertex " +
                                        std::to_string(x));
  }
  return Status::Ok();
}

Status Ghd::ValidateReduced(const Hypergraph& h) const {
  TOPOFAQ_RETURN_IF_ERROR(Validate(h));
  for (int e = 0; e < h.num_edges(); ++e) {
    bool found = false;
    for (int v = 0; v < num_nodes() && !found; ++v)
      found = (nodes_[v].chi == h.edge(e));
    if (!found)
      return Status::FailedPrecondition(
          "no node with bag equal to hyperedge " + std::to_string(e));
  }
  return Status::Ok();
}

std::string Ghd::DebugString() const {
  std::string out;
  for (int v = 0; v < num_nodes(); ++v) {
    out += "node " + std::to_string(v) + (v == root_ ? " (root)" : "") + ": chi={";
    for (size_t j = 0; j < nodes_[v].chi.size(); ++j) {
      if (j) out += ",";
      out += std::to_string(nodes_[v].chi[j]);
    }
    out += "} parent=" + std::to_string(nodes_[v].parent) +
           " edge=" + std::to_string(nodes_[v].edge_id) + "\n";
  }
  return out;
}

}  // namespace topofaq
