// Decomposition plan cache: repeated query *shapes* skip GYO/width work.
//
// ComputeWidth / MinimizeWidthWithRoot are pure functions of the hypergraph
// shape (plus the root constraint and search parameters), yet every
// YannakakisSolve call used to recompute them from scratch — for a serving
// workload where the same handful of query shapes arrives millions of times
// (server/engine.h), that is decomposition work on every request. PlanCache
// memoizes WidthResult values behind a canonical shape fingerprint:
//
//   key  = (num_vertices, edge list in insertion order, required root vars,
//           restarts, seed)
//   value = the WidthResult those inputs deterministically produce
//
// Insertion order of edges matters (H is a multi-hypergraph and the
// decomposition's edge ids index the query's relation list), so the
// fingerprint preserves it. Both lookup paths are deterministic, so a cache
// hit returns bit-identical plans — answers computed through the cache are
// byte-equal to answers computed without it.
//
// Thread-safe (one mutex; values are copied out), LRU-bounded, with
// hit/miss/eviction counters the engine exports (EngineStats) and the
// QueryResult records per query (`plan_cache_hit`).
#ifndef TOPOFAQ_GHD_PLAN_CACHE_H_
#define TOPOFAQ_GHD_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ghd/width.h"

namespace topofaq {

class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 128) : capacity_(capacity) {}
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The process-wide cache YannakakisSolve routes through. Engines default
  /// to this instance so direct solver calls and engine calls share plans.
  static PlanCache& Shared();

  /// Cached ComputeWidth(h): the canonical flattened GYO-GHD. When
  /// `was_hit` is non-null it reports whether this lookup was served from
  /// cache (the engine stamps it into QueryResult::plan_cache_hit).
  WidthResult Canonical(const Hypergraph& h, bool* was_hit = nullptr);

  /// Cached MinimizeWidthWithRoot(h, required_root_vars, restarts, seed).
  /// `required_root_vars` must be sorted (callers already sort free vars).
  /// Failures (no bag can host the root vars) are NOT cached: they are
  /// data-independent but cheap to rediscover and keep the cache pure.
  Result<WidthResult> WithRoot(const Hypergraph& h,
                               const std::vector<VarId>& required_root_vars,
                               int restarts, uint64_t seed,
                               bool* was_hit = nullptr);

  /// The one planning rule every execution surface shares (YannakakisSolve,
  /// Engine::Submit, StandingQuery::Create): F = ∅ takes the canonical
  /// decomposition, non-empty F takes the rooted search with fixed
  /// restarts/seed — identical keys on every path, so a query shape planned
  /// by any surface is a cache hit for all of them, and all of them execute
  /// the same (bit-identical) plan.
  Result<WidthResult> PlanFor(const Hypergraph& h,
                              const std::vector<VarId>& free_vars,
                              bool* was_hit = nullptr);

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    double HitRate() const {
      const int64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }
  };
  Stats stats() const;

  size_t size() const;
  void Clear();

  /// The canonical shape fingerprint (exposed for tests and the admission
  /// controller, which keys its own per-shape memo off the same string).
  static std::string Fingerprint(const Hypergraph& h,
                                 const std::vector<VarId>& root_vars,
                                 int restarts, uint64_t seed);

 private:
  /// Returns the cached value for `key`, else computes it via `compute`
  /// (outside the lock — decomposition search can be slow) and inserts it.
  template <typename Compute>
  WidthResult GetOrCompute(const std::string& key, Compute&& compute,
                           bool* was_hit);

  mutable std::mutex mu_;
  size_t capacity_;
  /// LRU list, most recent first; map values point into the list.
  std::list<std::pair<std::string, WidthResult>> lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, WidthResult>>::iterator>
      by_key_;
  Stats stats_;
};

}  // namespace topofaq

#endif  // TOPOFAQ_GHD_PLAN_CACHE_H_
