// Construction F.6 (MD-GHD): repeatedly re-hang a child v from its parent u
// to the topmost strict ancestor w of u with χ(v) ∩ χ(u) ⊆ χ(w). This
// preserves GHD validity, terminates within |E(T)|·y(T) steps
// (Corollary F.7), and can only lower the internal-node count — it is the
// O(1)-approximation engine for internal-node-width used in Appendix F.
//
// Also implements the Lemma F.3 witnesses: for every internal node u_i of an
// MD-GHD (bottom-up order) there is a "private" attribute p_i that appears
// only in u_i's subtree and is covered by two distinct hyperedges.
#ifndef TOPOFAQ_GHD_MD_GHD_H_
#define TOPOFAQ_GHD_MD_GHD_H_

#include <vector>

#include "ghd/ghd.h"

namespace topofaq {

/// Flattens `ghd` in place per Construction F.6. Returns the number of
/// re-hang operations performed.
int FlattenToMdGhd(Ghd* ghd);

/// A Lemma F.3 witness for one internal node.
struct PrivateAttributeWitness {
  int internal_node;  ///< ghd node id u_i
  VarId attribute;    ///< p_i: appears only in the subtree of u_i
  int edge_a;         ///< hyperedge id of one relation incident on p_i
  int edge_b;         ///< a distinct hyperedge id also incident on p_i
};

/// Extracts Lemma F.3 witnesses from an MD-GHD of an acyclic H (one per
/// internal node that has a child sharing an attribute). Nodes without a
/// two-edge witness are skipped (can happen for the synthetic core root).
std::vector<PrivateAttributeWitness> FindPrivateAttributes(const Hypergraph& h,
                                                           const Ghd& ghd);

}  // namespace topofaq

#endif  // TOPOFAQ_GHD_MD_GHD_H_
