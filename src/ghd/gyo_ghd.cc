#include "ghd/gyo_ghd.h"

#include <algorithm>

namespace topofaq {

GyoGhd BuildGyoGhd(const Hypergraph& h) {
  GyoGhd out;
  out.core_forest = DecomposeCoreForest(h);
  const CoreForest& cf = out.core_forest;
  Ghd& ghd = out.ghd;
  out.node_of_edge.assign(h.num_edges(), -1);

  // Root r' with χ = V(C(H)).
  GhdNode root_node;
  root_node.chi = cf.core_vertices;
  int root = ghd.AddNode(root_node);
  ghd.set_root(root);

  auto equals_core = [&](int e) { return h.edge(e) == cf.core_vertices; };

  // The root can absorb exactly one hyperedge whose vertex set equals
  // V(C(H)) — prefer a tree-root edge (the acyclic connected case), then a
  // core edge.
  int absorbed = -1;
  for (int e : cf.root_edges)
    if (absorbed < 0 && equals_core(e)) absorbed = e;
  for (int e : cf.core_edges)
    if (absorbed < 0 && equals_core(e)) absorbed = e;
  if (absorbed >= 0) {
    ghd.mutable_node(root).edge_id = absorbed;
    ghd.mutable_node(root).lambda.push_back(absorbed);
    out.node_of_edge[absorbed] = root;
  }

  // Children of r' for the remaining core edges and tree-root edges.
  auto add_edge_node = [&](int e, int parent) {
    GhdNode n;
    n.chi = h.edge(e);
    n.lambda = {e};
    n.edge_id = e;
    int id = ghd.AddNode(n);
    ghd.SetParent(id, parent);
    out.node_of_edge[e] = id;
    return id;
  };
  for (int e : cf.core_edges)
    if (e != absorbed) add_edge_node(e, root);
  for (int e : cf.root_edges)
    if (e != absorbed) add_edge_node(e, root);

  // Forest edges attach below their GYO parent, processed in reverse
  // deletion order so parents exist first.
  std::vector<int> forest = cf.forest_edges;
  std::sort(forest.begin(), forest.end(), [&](int a, int b) {
    return cf.gyo.delete_time[a] > cf.gyo.delete_time[b];
  });
  for (int e : forest) {
    const int p = cf.parent[e];
    TOPOFAQ_CHECK(p >= 0);
    TOPOFAQ_CHECK_MSG(out.node_of_edge[p] >= 0,
                      "GYO parent not yet materialized");
    add_edge_node(e, out.node_of_edge[p]);
  }
  return out;
}

}  // namespace topofaq
