#include "relation/parallel.h"

namespace topofaq {

WorkerPool& WorkerPool::Shared() {
  // Floor of 3 extra threads so multi-worker execution (and its sanitizer
  // coverage) stays real on 1–2 core machines; morsel work-stealing keeps
  // mild oversubscription harmless.
  static WorkerPool pool(std::max(
      3, static_cast<int>(std::thread::hardware_concurrency()) - 1));
  return pool;
}

WorkerPool::WorkerPool(int threads) {
  threads_.reserve(static_cast<size_t>(std::max(0, threads)));
  for (int i = 0; i < threads; ++i)
    threads_.emplace_back([this, i] { WorkerLoop(i); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::WorkerLoop(int id) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int, size_t)>* fn = nullptr;
    size_t n_tasks = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      if (id >= job_workers_) continue;  // not enlisted for this job
      fn = fn_;
      n_tasks = n_tasks_;
    }
    for (;;) {
      const size_t t = next_task_.fetch_add(1, std::memory_order_relaxed);
      if (t >= n_tasks) break;
      (*fn)(id + 1, t);  // pool thread i is worker i+1 (caller is worker 0)
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::ParallelFor(int workers, size_t n_tasks,
                             const std::function<void(int, size_t)>& fn) {
  if (n_tasks == 0) return;
  int extra = std::min<int>(static_cast<int>(threads_.size()), workers - 1);
  extra = std::min<int>(extra, static_cast<int>(n_tasks) - 1);
  if (extra > 0) {
    std::unique_lock<std::mutex> lk(mu_);
    if (busy_) {
      extra = 0;  // a concurrent caller owns the pool: degrade to serial
    } else {
      busy_ = true;
      fn_ = &fn;
      n_tasks_ = n_tasks;
      job_workers_ = extra;
      active_ = extra;
      next_task_.store(0, std::memory_order_relaxed);
      ++epoch_;
    }
  }
  if (extra == 0) {
    for (size_t t = 0; t < n_tasks; ++t) fn(0, t);
    return;
  }
  work_cv_.notify_all();
  for (;;) {
    const size_t t = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (t >= n_tasks) break;
    fn(0, t);
  }
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return active_ == 0; });
  fn_ = nullptr;
  busy_ = false;
}

}  // namespace topofaq
