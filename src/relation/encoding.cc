#include "relation/encoding.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace topofaq {

namespace {

// DefaultEncodingMode() is defined in server/options.cc: every environment
// knob (TOPOFAQ_ENCODING included) is read and parsed in that one file.

std::atomic<EncodingMode>& ModeSlot() {
  static std::atomic<EncodingMode> mode{DefaultEncodingMode()};
  return mode;
}

/// Packs one column of codes produced by `code(v)`.
template <typename CodeFn>
std::vector<uint64_t> Pack(std::span<const Value> col, int width,
                           CodeFn&& code) {
  std::vector<uint64_t> words(PackedWords(col.size(), width), 0);
  for (size_t i = 0; i < col.size(); ++i)
    PackAt(words.data(), i, width, code(col[i]));
  return words;
}

int WidthFor(uint64_t code_domain) {
  const int w = code_domain <= 1 ? 1 : CeilLog2(code_domain);
  return w < 1 ? 1 : w;
}

/// The exact distinct value set of `col`. When the adjacent-distinct count
/// is small the run-head values already cover every distinct value (each
/// value heads at least one of its runs), so only those are collected; the
/// fallback sorts a full copy (forced-dict mode on high-churn columns).
std::vector<Value> DistinctValues(std::span<const Value> col,
                                  const ColumnStats& st) {
  std::vector<Value> vals;
  if (st.run_heads <= kDictMaxEntries) {
    vals.reserve(st.run_heads);
    for (size_t i = 0; i < col.size(); ++i)
      if (i == 0 || col[i] != col[i - 1]) vals.push_back(col[i]);
  } else {
    vals.assign(col.begin(), col.end());
  }
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals;
}

}  // namespace

EncodingMode GlobalEncodingMode() {
  return ModeSlot().load(std::memory_order_relaxed);
}

void SetGlobalEncodingMode(EncodingMode mode) {
  ModeSlot().store(mode, std::memory_order_relaxed);
}

EncodedColumn EncodedColumn::For(std::span<const Value> col, Value min,
                                 Value max) {
  EncodedColumn e;
  e.encoding = ColumnEncoding::kFor;
  e.rows = col.size();
  e.base = min;
  e.width = static_cast<uint8_t>(max - min == ~0ull ? 64
                                                    : WidthFor(max - min + 1));
  e.words = Pack(col, e.width, [min](Value v) { return v - min; });
  return e;
}

EncodedColumn EncodedColumn::Dict(std::span<const Value> col,
                                  std::vector<Value> d) {
  EncodedColumn e;
  e.encoding = ColumnEncoding::kDict;
  e.rows = col.size();
  e.dict = std::move(d);
  e.width = static_cast<uint8_t>(WidthFor(e.dict.size()));
  const Value* db = e.dict.data();
  const Value* de = db + e.dict.size();
  e.words = Pack(col, e.width, [db, de](Value v) {
    const Value* it = std::lower_bound(db, de, v);
    TOPOFAQ_CHECK_MSG(it != de && *it == v, "value missing from dictionary");
    return static_cast<uint64_t>(it - db);
  });
  return e;
}

EncodedColumn EncodedColumn::Slice(const EncodedColumn& src, size_t begin,
                                   size_t end, bool ship_dict) {
  EncodedColumn e;
  e.encoding = src.encoding;
  e.width = src.width;
  e.base = src.base;
  e.rows = end - begin;
  if (ship_dict) e.dict = src.dict;
  e.words.assign(PackedWords(e.rows, e.width), 0);
  const uint64_t m = src.mask();
  for (size_t i = begin; i < end; ++i)
    PackAt(e.words.data(), i - begin, e.width,
           UnpackAt(src.words.data(), i, src.width, m));
  return e;
}

EncodedColumn ChooseAndEncode(std::span<const Value> col,
                              const ColumnStats& st, EncodingMode mode,
                              bool leading) {
  EncodedColumn plain;  // encoding == kPlain signals "leave as raw values"
  if (mode == EncodingMode::kPlain || col.empty()) return plain;
  if (mode == EncodingMode::kForceFor)
    return EncodedColumn::For(col, st.min, st.max);
  if (mode == EncodingMode::kForceDict)
    return EncodedColumn::Dict(col, DistinctValues(col, st));

  // kAuto: encode only when the payload at least halves, and only for
  // columns long enough that set-up cost amortizes. FOR is preferred for
  // the globally sorted leading key column (narrow deltas, O(1) seeks);
  // dictionaries for skewed/low-cardinality columns elsewhere.
  if (st.rows < kEncodeMinRows) return plain;
  const size_t plain_bits = st.rows * sizeof(Value) * 8;

  const uint64_t span = st.max - st.min;
  const int for_width = span == ~0ull ? 64 : WidthFor(span + 1);
  const size_t for_bits = st.rows * static_cast<size_t>(for_width);
  const bool for_ok = for_bits * 2 <= plain_bits;

  const bool dict_candidate =
      st.run_heads <= kDictMaxEntries && st.run_heads * 8 <= st.rows;
  size_t dict_bits = ~size_t{0};
  std::vector<Value> dict;
  if (dict_candidate) {
    dict = DistinctValues(col, st);
    dict_bits = st.rows * static_cast<size_t>(WidthFor(dict.size())) +
                dict.size() * sizeof(Value) * 8;
  }
  const bool dict_ok = dict_candidate && dict_bits * 2 <= plain_bits;

  if (leading && for_ok && (!dict_ok || for_bits <= dict_bits))
    return EncodedColumn::For(col, st.min, st.max);
  if (dict_ok && (!for_ok || dict_bits < for_bits))
    return EncodedColumn::Dict(col, std::move(dict));
  if (for_ok) return EncodedColumn::For(col, st.min, st.max);
  return plain;
}

}  // namespace topofaq
