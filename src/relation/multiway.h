// Worst-case-optimal multiway join (docs/kernel.md, "Worst-case-optimal
// join"): a Leapfrog-Triejoin-style intersection join over any number of
// relations, evaluated variable by variable instead of relation by relation,
// so the peak materialized size is the output itself — never the
// polynomially larger pairwise intermediates the AGM / fractional-edge-cover
// bound rules out for cyclic queries (Gottlob–Lee–Valiant size bounds;
// PAPERS.md).
//
// The kernel's canonical-order invariant does the heavy lifting: a canonical
// relation whose columns follow the shared global variable order (ascending
// VarId) *is* a sorted trie — level d of the trie is column d, and every
// trie operation (open a child, seek a key, step to the next key) is a
// galloping search over a contiguous row range. So the only preprocessing is
// a schema-order permutation pass per input whose columns are out of order
// (one sort, counted in OpStats::sorts; already-ascending canonical inputs
// are free and counted in sort_skips), after which the join needs nothing
// but per-relation cursor stacks. Annotations combine with ⊗ exactly once
// per relation, at the level where its last variable is bound.
//
// Output rows are emitted in ascending global variable order — which is the
// output's own schema order — so the result is certified canonical with no
// closing sort, like every other operator in ops.h.
//
// With ctx->parallelism > 1 the outermost variable's intersection is cut
// into key-aligned morsels over the smallest top-level relation
// (MorselRun/KeyAlignedCuts, docs/kernel.md "Morsel-parallel execution");
// each worker runs the full leapfrog restricted to its key window, and the
// per-morsel outputs splice bit-identically to the serial bytes.
#ifndef TOPOFAQ_RELATION_MULTIWAY_H_
#define TOPOFAQ_RELATION_MULTIWAY_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "relation/exec.h"
#include "relation/parallel.h"
#include "relation/relation.h"

namespace topofaq {
namespace internal {

/// First traversal position in [lo, hi) whose `col` value is >= key
/// (galloping search; probes are counted into *cmps).
size_t TrieSeek(const Value* d, size_t stride, size_t col, size_t lo,
                size_t hi, Value key, int64_t* cmps);

/// First traversal position in [lo, hi) whose `col` value is > key: the end
/// of the key's run when [lo, hi) is positioned at it.
size_t TrieRunEnd(const Value* d, size_t stride, size_t col, size_t lo,
                  size_t hi, Value key, int64_t* cmps);

/// Returns `r` as a canonical relation whose columns follow ascending VarId
/// order — the trie view MultiwayJoin consumes. Takes its argument by value
/// so the common case — a canonical input whose schema is already ascending
/// (every hyperedge relation) — moves through with no copy at all
/// (sort_skips); otherwise one permutation pass + builder sort is paid
/// (sorts).
template <CommutativeSemiring S>
Relation<S> PermuteToVarOrder(Relation<S> r, ExecContext& cx, OpStats* st) {
  bool ascending = true;
  for (size_t i = 1; i < r.arity(); ++i)
    if (r.schema().var(i - 1) > r.schema().var(i)) {
      ascending = false;
      break;
    }
  if (ascending) {
    if (r.canonical()) {
      ++st->sort_skips;
      return r;
    }
    r.Canonicalize();
    ++st->sorts;
    st->peak_rows = std::max<int64_t>(st->peak_rows,
                                      static_cast<int64_t>(r.size()));
    return r;
  }
  std::vector<VarId> tvars = r.schema().vars();
  std::sort(tvars.begin(), tvars.end());
  const SchemaIndex idx(r.schema());
  std::vector<int>& pos = cx.pos_a;
  pos.clear();
  for (VarId v : tvars) pos.push_back(idx.PositionOf(v));
  RelationBuilder<S> b{Schema(std::move(tvars))};
  b.Reserve(r.size());
  std::vector<Value>& row = cx.row;
  row.resize(r.arity());
  const Value* d = r.data().data();
  for (size_t i = 0; i < r.size(); ++i) {
    const Value* src = d + i * r.arity();
    for (size_t k = 0; k < pos.size(); ++k)
      row[k] = src[static_cast<size_t>(pos[k])];
    b.Append(row, r.annot(i));
  }
  ++st->sorts;
  Relation<S> out = b.Build();
  st->peak_rows = std::max<int64_t>(st->peak_rows,
                                    static_cast<int64_t>(out.size()));
  return out;
}

/// Read-only plan shared by every worker of one MultiwayJoin call.
template <CommutativeSemiring S>
struct MultiwayPlan {
  /// One relation's participation at one global level.
  struct Active {
    int rel;     ///< index into rels
    size_t col;  ///< the level variable's column (== trie depth) in rel
    bool last;   ///< this is rel's deepest column: its row is now determined
  };
  std::vector<Relation<S>> rels;  ///< trie views (canonical, ascending vars)
  std::vector<VarId> vars;        ///< global variable order (ascending)
  std::vector<std::vector<Active>> levels;  ///< actives per global level
};

/// One leapfrog walk over the plan: per-relation cursor stacks (rng_), one
/// iterator per active relation per level. A walker is built per morsel (or
/// once, serially); all mutable state is its own, so workers share only the
/// immutable plan.
template <CommutativeSemiring S>
class MultiwayWalker {
 public:
  using SemiringValue = typename S::Value;

  MultiwayWalker(const MultiwayPlan<S>& plan, RelationBuilder<S>* out,
                 OpStats* st)
      : plan_(plan), out_(out), st_(st) {
    const size_t levels = plan.vars.size();
    its_.resize(levels);
    for (size_t l = 0; l < levels; ++l) {
      its_[l].reserve(plan.levels[l].size());
      for (const auto& a : plan.levels[l]) {
        Iter it;
        it.d = plan.rels[static_cast<size_t>(a.rel)].data().data();
        it.stride = plan.rels[static_cast<size_t>(a.rel)].arity();
        it.col = a.col;
        it.rel = a.rel;
        it.last = a.last;
        its_[l].push_back(it);
      }
    }
    row_.resize(levels);
    rng_.resize(plan.rels.size());
    for (size_t i = 0; i < plan.rels.size(); ++i)
      rng_[i].assign(plan.rels[i].arity(), {0, 0});
  }

  /// Runs the walk over the outermost-key window [win_lo, win_hi) — the
  /// morsel contract. win_lo == 0 skips the entry seek (every iterator
  /// already starts at >= 0); bounded == false drops the upper limit (the
  /// last morsel, and the whole walk for serial callers, who pass
  /// (0, 0, false)).
  void Run(SemiringValue scalar, Value win_lo, Value win_hi, bool bounded) {
    for (size_t i = 0; i < plan_.rels.size(); ++i) {
      if (plan_.rels[i].empty()) return;  // any empty input: empty join
      rng_[i][0] = {0, plan_.rels[i].size()};
    }
    win_lo_ = win_lo;
    win_hi_ = win_hi;
    bounded_ = bounded;
    Level(0, scalar);
  }

 private:
  struct Iter {
    const Value* d;
    size_t stride;
    size_t col;
    size_t lo, hi;   // current candidate range (rows matching bound prefix)
    size_t run;      // end of the matched key's run
    int rel;
    bool last;
  };

  Value Key(const Iter& it) const { return it.d[it.lo * it.stride + it.col]; }

  void Level(size_t l, SemiringValue acc) {
    std::vector<Iter>& its = its_[l];
    const size_t k = its.size();
    for (Iter& it : its) {
      const auto [a, b] = rng_[static_cast<size_t>(it.rel)][it.col];
      if (a == b) return;
      it.lo = a;
      it.hi = b;
    }
    if (l == 0 && win_lo_ > 0) {
      // Morsel window entry: land every outermost iterator at the first key
      // >= the window start instead of replaying the prefix.
      for (Iter& it : its) {
        ++st_->seeks;
        it.lo = TrieSeek(it.d, it.stride, it.col, it.lo, it.hi, win_lo_,
                         &st_->comparisons);
        if (it.lo == it.hi) return;
      }
    }
    Value maxkey = Key(its[0]);
    for (size_t t = 1; t < k; ++t) maxkey = std::max(maxkey, Key(its[t]));

    while (true) {
      // Leapfrog: seek every iterator below the current frontier key up to
      // it; any overshoot raises the frontier and rescans until stable.
      bool changed = true;
      while (changed) {
        changed = false;
        for (Iter& it : its) {
          ++st_->comparisons;
          if (Key(it) < maxkey) {
            ++st_->seeks;
            it.lo = TrieSeek(it.d, it.stride, it.col, it.lo, it.hi, maxkey,
                             &st_->comparisons);
            if (it.lo == it.hi) return;
            if (Key(it) > maxkey) {
              maxkey = Key(it);
              changed = true;
            }
          }
        }
      }
      // All active iterators agree on maxkey: one assignment of this level's
      // variable. The morsel window is half-open, so a frontier at or past
      // win_hi_ belongs to the next morsel.
      if (l == 0 && bounded_ && maxkey >= win_hi_) return;
      SemiringValue child = acc;
      for (Iter& it : its) {
        ++st_->seeks;
        it.run = TrieRunEnd(it.d, it.stride, it.col, it.lo, it.hi, maxkey,
                            &st_->comparisons);
        if (it.last) {
          // All of this relation's columns are bound and canonical rows are
          // distinct, so the run is exactly one row: fold its annotation.
          child = S::Multiply(
              child, plan_.rels[static_cast<size_t>(it.rel)].annot(it.lo));
        } else {
          rng_[static_cast<size_t>(it.rel)][it.col + 1] = {it.lo, it.run};
        }
      }
      row_[l] = maxkey;
      if (l + 1 == row_.size()) {
        out_->Append(row_, child);
      } else {
        Level(l + 1, child);
      }
      // Step past the matched runs and re-establish the frontier.
      maxkey = 0;
      for (Iter& it : its) {
        it.lo = it.run;
        if (it.lo == it.hi) return;
        maxkey = std::max(maxkey, Key(it));
      }
    }
  }

  const MultiwayPlan<S>& plan_;
  RelationBuilder<S>* out_;
  OpStats* st_;
  std::vector<std::vector<Iter>> its_;             // per level
  std::vector<std::vector<std::pair<size_t, size_t>>> rng_;  // per rel/depth
  std::vector<Value> row_;
  Value win_lo_ = 0;
  Value win_hi_ = 0;
  bool bounded_ = false;
};

}  // namespace internal

/// Worst-case-optimal natural join of any number of relations; annotations
/// multiply (⊗). Output schema is the union of the input variables in
/// ascending VarId order, and the output is canonical.
///
/// Leapfrog intersection per variable over the trie views of the inputs
/// (see the header comment): runtime is O~(Σ inputs + output·Σ seeks) and
/// the peak materialization is the output itself, so cyclic queries (the
/// triangle, k-cycles, Loomis–Whitney) never pay the super-AGM pairwise
/// intermediates. Zero-arity inputs fold into a scalar factor; any empty
/// input short-circuits to the empty result.
///
/// With ctx->parallelism > 1 and a large enough top-level relation, the
/// outermost variable's key space is cut into key-aligned morsels
/// (bit-identical splice semantics, like every kernel operator).
template <CommutativeSemiring S>
Relation<S> MultiwayJoin(std::vector<Relation<S>> inputs,
                         ExecContext* ctx = nullptr) {
  ExecContext& cx = ExecContext::Resolve(ctx);
  OpStats& st = cx.multiway;
  ++st.calls;
  for (const auto& r : inputs) st.rows_in += static_cast<int64_t>(r.size());

  internal::MultiwayPlan<S> plan;
  typename S::Value scalar = S::One();
  bool scalar_zero = false;
  for (Relation<S>& r : inputs) {
    if (r.arity() == 0) {
      // Zero-ary input: a scalar factor (at most one nonzero empty tuple).
      r.Canonicalize();
      if (r.empty())
        scalar_zero = true;
      else
        scalar = S::Multiply(scalar, r.annot(0));
      continue;
    }
    plan.rels.push_back(internal::PermuteToVarOrder(std::move(r), cx, &st));
  }

  for (const auto& r : plan.rels)
    plan.vars.insert(plan.vars.end(), r.schema().vars().begin(),
                     r.schema().vars().end());
  std::sort(plan.vars.begin(), plan.vars.end());
  plan.vars.erase(std::unique(plan.vars.begin(), plan.vars.end()),
                  plan.vars.end());
  Schema out_schema{plan.vars};

  if (plan.vars.empty()) {
    // Every input was zero-ary: the answer is the combined scalar.
    Relation<S> out{out_schema};
    if (!scalar_zero) out.Add(std::initializer_list<Value>{}, scalar);
    out.Canonicalize();
    st.rows_out += static_cast<int64_t>(out.size());
    return out;
  }

  // Any empty input (or a zero scalar) annihilates the join; short-circuit
  // before the morsel dispatch so the cut source is never an empty relation.
  bool annihilated = scalar_zero;
  for (const auto& r : plan.rels)
    if (r.empty()) annihilated = true;
  if (annihilated) return Relation<S>{std::move(out_schema)};

  plan.levels.resize(plan.vars.size());
  for (size_t i = 0; i < plan.rels.size(); ++i) {
    const Schema& s = plan.rels[i].schema();
    for (size_t c = 0; c < s.arity(); ++c) {
      const size_t level = static_cast<size_t>(
          std::lower_bound(plan.vars.begin(), plan.vars.end(), s.var(c)) -
          plan.vars.begin());
      plan.levels[level].push_back({static_cast<int>(i), c,
                                    c + 1 == s.arity()});
    }
  }

  // Morsel cut source: the smallest relation intersecting at the outermost
  // level. Its distinct leading keys partition the output's key space, so
  // key-aligned cuts over it are key-aligned cuts of the whole join.
  int cut_rel = plan.levels[0][0].rel;
  for (const auto& a : plan.levels[0])
    if (plan.rels[static_cast<size_t>(a.rel)].size() <
        plan.rels[static_cast<size_t>(cut_rel)].size())
      cut_rel = a.rel;
  const Relation<S>& cut = plan.rels[static_cast<size_t>(cut_rel)];
  const Value* cd = cut.data().data();
  const size_t ca = cut.arity();
  const size_t cn = cut.size();

  // Gate the fan-out on the *largest* input, not the cut relation: a small
  // top-level relation can still drive per-outer-key subtrees over huge
  // deeper relations, and each of its keys is a valid morsel boundary.
  size_t max_rows = 0;
  for (const auto& r : plan.rels) max_rows = std::max(max_rows, r.size());
  const int workers = PlannedWorkers(cx, max_rows);
  if (workers > 1) {
    Relation<S> out = MorselRun<S>(
        cx, workers, out_schema, cn,
        [&](size_t t) { return cd[t * ca] != cd[(t - 1) * ca]; }, &st,
        [&](ExecContext& wc, size_t xb, size_t xe, RelationBuilder<S>* b) {
          internal::MultiwayWalker<S> walk(plan, b, &wc.multiway);
          const bool bounded_hi = xe < cn;
          walk.Run(scalar, cd[xb * ca], bounded_hi ? cd[xe * ca] : 0,
                   bounded_hi);
        });
    for (int w = 0; w < workers; ++w) {
      ExecContext& wc = cx.WorkerContext(w);
      st += wc.multiway;
      wc.multiway = OpStats{};
    }
    st.rows_out += static_cast<int64_t>(out.size());
    st.peak_rows = std::max(st.peak_rows, static_cast<int64_t>(out.size()));
    return out;
  }

  RelationBuilder<S> b{out_schema};
  {
    internal::MultiwayWalker<S> walk(plan, &b, &st);
    walk.Run(scalar, 0, 0, /*bounded=*/false);
  }
  Relation<S> out = b.Build();
  st.rows_out += static_cast<int64_t>(out.size());
  st.peak_rows = std::max(st.peak_rows, static_cast<int64_t>(out.size()));
  return out;
}

}  // namespace topofaq

#endif  // TOPOFAQ_RELATION_MULTIWAY_H_
