// Worst-case-optimal multiway join (docs/kernel.md, "Worst-case-optimal
// join"): a Leapfrog-Triejoin-style intersection join over any number of
// relations, evaluated variable by variable instead of relation by relation,
// so the peak materialized size is the output itself — never the
// polynomially larger pairwise intermediates the AGM / fractional-edge-cover
// bound rules out for cyclic queries (Gottlob–Lee–Valiant size bounds;
// PAPERS.md).
//
// The kernel's canonical-order invariant does the heavy lifting: a canonical
// relation whose columns follow the shared global variable order (ascending
// VarId) *is* a sorted trie — level d of the trie is column d, and every
// trie operation (open a child, seek a key, step to the next key) is a
// galloping search over a contiguous range *of that single column array*:
// columnar storage (docs/kernel.md, "Columnar storage") makes each seek a
// dense binary search with no row stride between probed keys, the layout's
// payoff case. The only preprocessing is a column-handle permutation +
// re-canonicalization per input whose columns are out of order (one sort,
// counted in OpStats::sorts; already-ascending canonical inputs are free
// and counted in sort_skips), after which the join needs nothing but
// per-relation cursor stacks. Annotations combine with ⊗ exactly once
// per relation, at the level where its last variable is bound.
//
// Output rows are emitted in ascending global variable order — which is the
// output's own schema order — so the result is certified canonical with no
// closing sort, like every other operator in ops.h.
//
// With ctx->parallelism > 1 the outermost variable's intersection is cut
// into key-aligned morsels over the smallest top-level relation
// (MorselRun/KeyAlignedCuts, docs/kernel.md "Morsel-parallel execution");
// each worker runs the full leapfrog restricted to its key window, and the
// per-morsel outputs splice bit-identically to the serial bytes.
#ifndef TOPOFAQ_RELATION_MULTIWAY_H_
#define TOPOFAQ_RELATION_MULTIWAY_H_

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/op_format.h"
#include "obs/trace.h"
#include "relation/exec.h"
#include "relation/parallel.h"
#include "relation/relation.h"
#include "relation/simd.h"

namespace topofaq {
namespace internal {

/// Far seeks descend through a per-column *sample*: every
/// kSeekSampleStride-th key copied into a dense side array small enough to
/// stay cache-resident (built once per MultiwayJoin call for columns of at
/// least kSeekSampleMinRows rows). A sampled seek binary-searches the
/// sample first — cached probes — and finishes inside one stride-wide
/// window of the column (a couple of cache lines), instead of chasing
/// ~log2(n) dependent misses across the full column. Short seeks (within
/// kShortSeekLimit positions) keep the plain exponential gallop, which is
/// cheaper on already-hot lines.
inline constexpr size_t kSeekSampleStride = 64;
inline constexpr size_t kSeekSampleMinRows = 4096;
inline constexpr size_t kShortSeekLimit = 128;

/// First position in [lo, hi) of the contiguous column array `col` whose
/// value is >= key (galloping search; probes are counted into *cmps).
/// `samp` is the column's seek sample, or nullptr for unsampled columns.
/// When the vector kernels are on, the descent finishes with one
/// simd::LowerBoundU64 sweep over the final window; its vector iterations
/// are counted into *blocks (nullable).
size_t TrieSeek(const Value* col, const Value* samp, size_t lo, size_t hi,
                Value key, int64_t* cmps, int64_t* blocks = nullptr);

/// First position in [lo, hi) of `col` whose value is > key: the end of the
/// key's run when [lo, hi) is positioned at it.
size_t TrieRunEnd(const Value* col, const Value* samp, size_t lo, size_t hi,
                  Value key, int64_t* cmps, int64_t* blocks = nullptr);

/// The packed-column gallop: first position in [lo, hi) of the bit-packed
/// code buffer `words` (codes of `width` bits) whose code is >= `code`.
/// Encoded trie columns seek through this — the seek key is translated to
/// code space once per seek (EncodedColumn::LowerCode/UpperCode, valid
/// because both encodings preserve order within a column), then every
/// gallop probe is a word-at-a-time unpack instead of a decode. `samp`
/// holds every kSeekSampleStride-th *code* (or nullptr).
size_t TrieSeekPacked(const uint64_t* words, int width, const Value* samp,
                      size_t lo, size_t hi, uint64_t code, int64_t* cmps);

/// Returns `r` as a canonical relation whose columns follow ascending VarId
/// order — the trie view MultiwayJoin consumes. Takes its argument by value
/// so the common case — a canonical input whose schema is already ascending
/// (every hyperedge relation) — moves through with no copy at all
/// (sort_skips); otherwise the column handles are reordered in place and
/// one re-canonicalization sort is paid (sorts).
template <CommutativeSemiring S>
Relation<S> PermuteToVarOrder(Relation<S> r, ExecContext& cx, OpStats* st) {
  bool ascending = true;
  for (size_t i = 1; i < r.arity(); ++i)
    if (r.schema().var(i - 1) > r.schema().var(i)) {
      ascending = false;
      break;
    }
  if (ascending) {
    if (r.canonical()) {
      ++st->sort_skips;
      return r;
    }
    r.Canonicalize(&cx);
    ++st->sorts;
    st->peak_rows = std::max<int64_t>(st->peak_rows,
                                      static_cast<int64_t>(r.size()));
    return r;
  }
  // Columnar permutation: reorder the column *handles* into ascending
  // variable order (no row data moves), then one re-canonicalization sorts
  // the rows under the new column order — a permutation sort plus one
  // gather pass per column, instead of the old per-row rebuild.
  std::vector<VarId> tvars = r.schema().vars();
  std::sort(tvars.begin(), tvars.end());
  const SchemaIndex idx(r.schema());
  std::vector<int>& pos = cx.pos_a;
  pos.clear();
  for (VarId v : tvars) pos.push_back(idx.PositionOf(v));
  r.ReorderColumns(Schema(std::move(tvars)), pos);
  r.Canonicalize(&cx);
  ++st->sorts;
  st->peak_rows = std::max<int64_t>(st->peak_rows,
                                    static_cast<int64_t>(r.size()));
  return r;
}

/// Read-only plan shared by every worker of one MultiwayJoin call.
template <CommutativeSemiring S>
struct MultiwayPlan {
  /// One relation's participation at one global level.
  struct Active {
    int rel;     ///< index into rels
    size_t col;  ///< the level variable's column (== trie depth) in rel
    bool last;   ///< this is rel's deepest column: its row is now determined
  };
  std::vector<Relation<S>> rels;  ///< trie views (canonical, ascending vars)
  std::vector<VarId> vars;        ///< global variable order (ascending)
  std::vector<std::vector<Active>> levels;  ///< actives per global level
  /// samples[rel][col]: the column's seek sample (every
  /// kSeekSampleStride-th value — raw *codes* for an encoded column, so the
  /// sampled descent compares in code space), empty below
  /// kSeekSampleMinRows rows.
  std::vector<std::vector<std::vector<Value>>> samples;
  /// root_dirs[rel]: dense O(1) seek directory for the relation's *root*
  /// column — the one column that is globally sorted over the whole
  /// relation, so a single array d with d[v] = first position whose leading
  /// key is >= v answers every seek with one cached load. Built only when
  /// the leading-key domain is dense (max key + 1 <= 4x rows) and the
  /// relation is large; empty otherwise (seeks fall back to the gallop).
  /// For an encoded root column the directory is rebuilt in *code space*
  /// (d indexed by code, seeks translate through LowerCode/UpperCode first)
  /// — and since codes are dense by construction (dict codes are
  /// consecutive, FOR deltas span the value range), encoded roots qualify
  /// far more often than raw keys do.
  std::vector<std::vector<uint32_t>> root_dirs;

  /// Builds the per-column seek samples and per-relation root directories;
  /// one sequential pass each, shared read-only by all workers. Encoded
  /// columns are sampled/indexed via CodeAt — never decoded, never through
  /// the col() cache.
  void BuildSeekIndexes() {
    samples.resize(rels.size());
    root_dirs.resize(rels.size());
    for (size_t i = 0; i < rels.size(); ++i) {
      samples[i].resize(rels[i].arity());
      const size_t n = rels[i].size();
      if (n < kSeekSampleMinRows) continue;
      for (size_t c = 0; c < rels[i].arity(); ++c) {
        std::vector<Value>& samp = samples[i][c];
        if (const EncodedColumn* e = rels[i].encoded_col(c)) {
          samp.reserve(n / kSeekSampleStride + 1);
          for (size_t t = 0; t < n; t += kSeekSampleStride)
            samp.push_back(e->CodeAt(t));
          continue;
        }
        const ColumnView col = rels[i].col(c);
        samp.reserve(col.size() / kSeekSampleStride + 1);
        for (size_t t = 0; t < col.size(); t += kSeekSampleStride)
          samp.push_back(col[t]);
      }
      if (const EncodedColumn* e = rels[i].encoded_col(0)) {
        // Root column sorted ⇒ codes sorted (order-preserving encodings),
        // so the last code is the max. Same density guard as the plain
        // directory, in code space.
        const uint64_t max_code = e->CodeAt(n - 1);
        if (max_code < 4 * n && n < UINT32_MAX) {
          std::vector<uint32_t>& d = root_dirs[i];
          d.resize(static_cast<size_t>(max_code) + 2);
          size_t pos = 0;
          for (uint64_t v = 0; v <= max_code + 1; ++v) {
            while (pos < n && e->CodeAt(pos) < v) ++pos;
            d[static_cast<size_t>(v)] = static_cast<uint32_t>(pos);
          }
        }
        continue;
      }
      const ColumnView c0 = rels[i].col(0);
      const Value max_key = c0[n - 1];  // root column is globally sorted
      // max_key < 4n (rather than max_key + 1 <= 4n) so a UINT64_MAX key
      // cannot wrap the density check and the resize below.
      if (max_key < 4 * n && n < UINT32_MAX) {
        std::vector<uint32_t>& d = root_dirs[i];
        d.resize(static_cast<size_t>(max_key) + 2);
        size_t pos = 0;
        for (Value v = 0; v <= max_key + 1; ++v) {
          while (pos < n && c0[pos] < v) ++pos;
          d[static_cast<size_t>(v)] = static_cast<uint32_t>(pos);
        }
      }
    }
  }
};

/// One leapfrog walk over the plan: per-relation cursor stacks (rng_), one
/// iterator per active relation per level. A walker is built per morsel (or
/// once, serially); all mutable state is its own, so workers share only the
/// immutable plan.
template <CommutativeSemiring S>
class MultiwayWalker {
 public:
  using SemiringValue = typename S::Value;

  MultiwayWalker(const MultiwayPlan<S>& plan, RelationBuilder<S>* out,
                 OpStats* st)
      : plan_(plan), out_(out), st_(st) {
    const size_t levels = plan.vars.size();
    its_.resize(levels);
    for (size_t l = 0; l < levels; ++l) {
      its_[l].reserve(plan.levels[l].size());
      for (const auto& a : plan.levels[l]) {
        Iter it;
        // The level variable's column of this relation: one contiguous
        // value array (plain) or one packed code buffer (encoded) — every
        // seek below gallops over dense keys or codes respectively, and an
        // encoded column is never materialized.
        const Relation<S>& rel = plan.rels[static_cast<size_t>(a.rel)];
        if (const EncodedColumn* e = rel.encoded_col(a.col)) {
          it.enc = e;
          it.c = nullptr;
          it.ebytes = reinterpret_cast<const unsigned char*>(e->words.data());
          it.edict = e->encoding == ColumnEncoding::kDict ? e->dict.data()
                                                          : nullptr;
          it.ebase = e->encoding == ColumnEncoding::kDict ? 0 : e->base;
          it.emask = e->mask();
          it.ewidth = static_cast<uint32_t>(e->width);
        } else {
          it.c = rel.col(a.col).data();
          it.enc = nullptr;
          it.ebytes = nullptr;
          it.edict = nullptr;
          it.ebase = 0;
          it.emask = 0;
          it.ewidth = 0;
        }
        it.dec = nullptr;
        it.dec32 = nullptr;
        it.dec_lo = 0;
        it.dec_hi = 0;
        it.dec32_lo = 0;
        it.dec32_hi = 0;
        it.use32 = it.enc != nullptr && simd::FitsU32(*it.enc);
        const auto& samp = plan.samples[static_cast<size_t>(a.rel)][a.col];
        it.samp = samp.empty() ? nullptr : samp.data();
        const auto& dir = plan.root_dirs[static_cast<size_t>(a.rel)];
        it.dir = (a.col == 0 && !dir.empty()) ? dir.data() : nullptr;
        it.dir_max = it.dir ? static_cast<Value>(dir.size() - 2) : 0;
        it.col = a.col;
        it.rel = a.rel;
        it.last = a.last;
        its_[l].push_back(it);
      }
    }
    row_.resize(levels);
    rng_.resize(plan.rels.size());
    for (size_t i = 0; i < plan.rels.size(); ++i)
      rng_[i].assign(plan.rels[i].arity(), {0, 0});
  }

  /// Runs the walk over the outermost-key window [win_lo, win_hi) — the
  /// morsel contract. win_lo == 0 skips the entry seek (every iterator
  /// already starts at >= 0); bounded == false drops the upper limit (the
  /// last morsel, and the whole walk for serial callers, who pass
  /// (0, 0, false)).
  void Run(SemiringValue scalar, Value win_lo, Value win_hi, bool bounded) {
    for (size_t i = 0; i < plan_.rels.size(); ++i) {
      if (plan_.rels[i].empty()) return;  // any empty input: empty join
      rng_[i][0] = {0, plan_.rels[i].size()};
    }
    win_lo_ = win_lo;
    win_hi_ = win_hi;
    bounded_ = bounded;
    Level(0, scalar);
  }

 private:
  struct Iter {
    const Value* c;       // this level's column array (nullptr if encoded)
    const EncodedColumn* enc;  // this level's packed column (nullptr if plain)
    // Flattened encoded-column fields (valid iff enc != nullptr): the
    // per-step decode in Key() runs off the iterator row alone instead of
    // chasing the EncodedColumn object on every frontier advance.
    const unsigned char* ebytes;  // packed code bytes
    const Value* edict;           // dict table (nullptr for FOR)
    Value ebase;                  // FOR base (0 for dict)
    uint64_t emask;
    uint32_t ewidth;
    const Value* samp;    // its seek sample (nullptr below the size floor)
    const uint32_t* dir;  // root-column dense directory (col == 0 only)
    Value dir_max;        // largest key (plain) / code (encoded) it covers
    size_t col;           // trie depth (column index) of c in rel
    size_t lo = 0, hi = 0;  // current candidate range (rows matching prefix)
    size_t run = 0;         // end of the matched key's run
    // Small-window decode cache: when the parent level binds this iterator
    // to a window of at most kDecodeWindow rows, the packed codes are
    // decoded once into `scratch` and the whole intersection at this level
    // runs on plain values (dec[pos - dec_lo]). Keyed by the window bounds,
    // so a window revisited across sibling subtrees (the same prefix run
    // re-intersected for every key of an unrelated level) decodes once.
    // When every value of the column fits 32 bits (use32) and the vector
    // kernels are on, windows decode into `scratch32` instead — 8 frontier
    // lanes per vector instead of 4, and a quarter of plain's cache
    // footprint; the separate cache key keeps the two modes from aliasing.
    std::vector<Value> scratch;
    std::vector<uint32_t> scratch32;
    const Value* dec;     // scratch.data() iff the current window is decoded
    const uint32_t* dec32;  // scratch32.data() iff decoded narrow
    size_t dec_lo, dec_hi;
    size_t dec32_lo, dec32_hi;
    int rel;
    bool last;
    bool use32;  // FitsU32(enc): the column qualifies for narrow windows
  };

  /// Largest encoded window materialized by the small-window decode cache.
  static constexpr size_t kDecodeWindow = 128;

  /// Vector blocks one NextMatch call may burn before the frontier falls
  /// back to a far seek (dense directory / sampled gallop). Small, so a
  /// sparse intersection keeps its sub-linear seek asymptotics; a dense one
  /// re-enters the block loop right after the landing.
  static constexpr size_t kFrontierBlockCap = 8;

  /// The *value* at the iterator's head: keys cross relation boundaries in
  /// the leapfrog frontier, so they are always decoded (codes from
  /// different columns are incomparable). This is the only per-step decode
  /// an encoded column pays; seeks translate once and stay in code space.
  /// The packed read is the byte-addressed single-load form of UnpackAt,
  /// off the iterator's flattened fields (widths above 57 bits fall back
  /// to the two-word read; the policy never picks them, forced modes can).
  Value Key(const Iter& it) const {
    if (it.c != nullptr) return it.c[it.lo];
    if (it.dec32 != nullptr) return it.dec32[it.lo - it.dec32_lo];
    if (it.dec != nullptr) return it.dec[it.lo - it.dec_lo];
    if (it.ewidth <= 57) {
      const size_t bit = it.lo * it.ewidth;
      uint64_t v;
      std::memcpy(&v, it.ebytes + (bit >> 3), sizeof v);
      const uint64_t code = (v >> (bit & 7)) & it.emask;
      return it.edict != nullptr ? it.edict[code] : it.ebase + code;
    }
    return it.enc->At(it.lo);
  }

  /// First position in [it.lo, it.hi) with value >= key. Root columns with
  /// a dense directory answer in O(1): the directory's global lower bound,
  /// clamped into the current window (valid because the root column is
  /// globally sorted). Everything else gallops — over raw values (plain)
  /// or packed codes after one LowerCode translation (encoded).
  size_t Seek(const Iter& it, Value key) {
    ++st_->seeks;
    if (it.dec32 != nullptr) {
      // Narrow decoded window: one branchless vector lower bound. A key
      // past the u32 range is past every stored value by construction.
      ++st_->comparisons;
      if (key > UINT32_MAX) return it.hi;
      return it.dec32_lo +
             simd::LowerBoundU32(it.dec32, it.lo - it.dec32_lo,
                                 it.hi - it.dec32_lo,
                                 static_cast<uint32_t>(key),
                                 /*strict=*/false, &st_->simd_blocks);
    }
    if (it.dec != nullptr) {
      // Materialized window: value-space gallop over the decoded scratch
      // (window <= kDecodeWindow rows, so no sample is ever warranted).
      return it.dec_lo + TrieSeek(it.dec, nullptr, it.lo - it.dec_lo,
                                  it.hi - it.dec_lo, key, &st_->comparisons,
                                  &st_->simd_blocks);
    }
    if (it.enc != nullptr) {
      const uint64_t target = it.enc->LowerCode(key);
      if (it.dir != nullptr) {
        ++st_->comparisons;
        // The code-space directory is addressable up to dir_max + 1.
        if (target > static_cast<uint64_t>(it.dir_max) + 1) return it.hi;
        const size_t g = it.dir[static_cast<size_t>(target)];
        return g <= it.lo ? it.lo : (g >= it.hi ? it.hi : g);
      }
      return TrieSeekPacked(it.enc->words.data(), it.enc->width, it.samp,
                            it.lo, it.hi, target, &st_->comparisons);
    }
    if (it.dir != nullptr) {
      ++st_->comparisons;
      if (key > it.dir_max) return it.hi;
      const size_t g = it.dir[static_cast<size_t>(key)];
      return g <= it.lo ? it.lo : (g >= it.hi ? it.hi : g);
    }
    return TrieSeek(it.c, it.samp, it.lo, it.hi, key, &st_->comparisons,
                    &st_->simd_blocks);
  }

  /// End of `key`'s run at [it.lo, it.hi): first position with value > key.
  /// On an encoded column the strict bound is translated to code space —
  /// first code >= UpperCode(key) — with the top-of-domain corner (no code
  /// can exceed `key`) answered directly, so the ~0ull sentinel never
  /// collides with a legitimate width-64 code.
  size_t RunEnd(const Iter& it, Value key) {
    ++st_->seeks;
    if (it.dec32 != nullptr) {
      ++st_->comparisons;
      if (key > UINT32_MAX) return it.hi;
      return it.dec32_lo +
             simd::LowerBoundU32(it.dec32, it.lo - it.dec32_lo,
                                 it.hi - it.dec32_lo,
                                 static_cast<uint32_t>(key),
                                 /*strict=*/true, &st_->simd_blocks);
    }
    if (it.dec != nullptr) {
      return it.dec_lo + TrieRunEnd(it.dec, nullptr, it.lo - it.dec_lo,
                                    it.hi - it.dec_lo, key, &st_->comparisons,
                                    &st_->simd_blocks);
    }
    if (it.enc != nullptr) {
      uint64_t target;
      if (it.enc->encoding == ColumnEncoding::kDict) {
        target = it.enc->UpperCode(key);
      } else if (key < it.enc->base) {
        target = 0;
      } else {
        const uint64_t d = key - it.enc->base;
        if (d == ~0ull) return it.hi;  // no representable code exceeds key
        target = d + 1;
      }
      if (it.dir != nullptr) {
        ++st_->comparisons;
        if (target > static_cast<uint64_t>(it.dir_max) + 1) return it.hi;
        const size_t g = it.dir[static_cast<size_t>(target)];
        return g <= it.lo ? it.lo : (g >= it.hi ? it.hi : g);
      }
      return TrieSeekPacked(it.enc->words.data(), it.enc->width, it.samp,
                            it.lo, it.hi, target, &st_->comparisons);
    }
    if (it.dir != nullptr) {
      ++st_->comparisons;
      if (key >= it.dir_max) return it.hi;
      const size_t g = it.dir[static_cast<size_t>(key) + 1];
      return g <= it.lo ? it.lo : (g >= it.hi ? it.hi : g);
    }
    return TrieRunEnd(it.c, it.samp, it.lo, it.hi, key, &st_->comparisons,
                      &st_->simd_blocks);
  }

  void Level(size_t l, SemiringValue acc) {
    std::vector<Iter>& its = its_[l];
    const size_t k = its.size();
    for (Iter& it : its) {
      const auto [a, b] = rng_[static_cast<size_t>(it.rel)][it.col];
      if (a == b) return;
      it.lo = a;
      it.hi = b;
      if (it.enc != nullptr && b - a <= kDecodeWindow) {
        if (it.use32 && simd::Available()) {
          if (it.dec32_lo != a || it.dec32_hi != b) {
            it.scratch32.resize(b - a);
            simd::DecodeWindowU32(*it.enc, a, b, it.scratch32.data(),
                                  &st_->simd_blocks);
            it.dec32_lo = a;
            it.dec32_hi = b;
          }
          it.dec32 = it.scratch32.data();
          it.dec = nullptr;
        } else {
          if (it.dec_lo != a || it.dec_hi != b) {
            it.scratch.resize(b - a);
            simd::DecodeWindowU64(*it.enc, a, b, it.scratch.data(),
                                  &st_->simd_blocks);
            it.dec_lo = a;
            it.dec_hi = b;
          }
          it.dec = it.scratch.data();
          it.dec32 = nullptr;
        }
      } else {
        it.dec = nullptr;
        it.dec32 = nullptr;
      }
    }
    if (l == 0 && win_lo_ > 0) {
      // Morsel window entry: land every outermost iterator at the first key
      // >= the window start instead of replaying the prefix.
      for (Iter& it : its) {
        it.lo = Seek(it, win_lo_);
        if (it.lo == it.hi) return;
      }
    }
    Value maxkey = Key(its[0]);
    for (size_t t = 1; t < k; ++t) maxkey = std::max(maxkey, Key(its[t]));

    while (true) {
      // Leapfrog: seek every iterator below the current frontier key up to
      // it; any overshoot raises the frontier and rescans until stable.
      if (k == 2) {
        // Two-iterator levels (every level of a k-cycle query) collapse to
        // the classic two-pointer intersection. When both sides expose
        // contiguous lanes — plain column arrays, or decoded windows (u32
        // windows pair only with u32 windows; values, never codes, cross
        // relations) — the pointer chase becomes block intersects
        // (simd::NextMatch*): whole vector blocks retire per compare, and
        // the per-call block cap hands sparse stretches back to the far
        // seeks (dense directory / sampled gallop) so the leapfrog bound
        // survives. Match positions equal the scalar walk's exactly, so
        // output bytes are identical with the kernels on or off.
        Iter& i0 = its[0];
        Iter& i1 = its[1];
        const uint32_t* n0 = i0.dec32;
        const uint32_t* n1 = i1.dec32;
        const Value* a0 = i0.c != nullptr ? i0.c : i0.dec;
        const Value* a1 = i1.c != nullptr ? i1.c : i1.dec;
        if (simd::Available() && n0 != nullptr && n1 != nullptr) {
          const size_t off0 = i0.dec32_lo;
          const size_t off1 = i1.dec32_lo;
          while (true) {
            const simd::Frontier f = simd::NextMatchU32(
                n0, i0.lo - off0, i0.hi - off0, n1, i1.lo - off1,
                i1.hi - off1, kFrontierBlockCap, &st_->simd_blocks);
            ++st_->seeks;
            ++st_->comparisons;
            i0.lo = off0 + f.i;
            i1.lo = off1 + f.j;
            if (f.kind == simd::Frontier::kMatch) {
              maxkey = n0[f.i];
              break;
            }
            if (f.kind == simd::Frontier::kExhausted) return;
            if (f.kind == simd::Frontier::kSeekA) {
              i0.lo = Seek(i0, Key(i1));
              if (i0.lo == i0.hi) return;
            } else {
              i1.lo = Seek(i1, Key(i0));
              if (i1.lo == i1.hi) return;
            }
          }
        } else if (simd::Available() && a0 != nullptr && a1 != nullptr) {
          const size_t off0 = i0.c != nullptr ? 0 : i0.dec_lo;
          const size_t off1 = i1.c != nullptr ? 0 : i1.dec_lo;
          while (true) {
            const simd::Frontier f = simd::NextMatchU64(
                a0, i0.lo - off0, i0.hi - off0, a1, i1.lo - off1,
                i1.hi - off1, kFrontierBlockCap, &st_->simd_blocks);
            ++st_->seeks;
            ++st_->comparisons;
            i0.lo = off0 + f.i;
            i1.lo = off1 + f.j;
            if (f.kind == simd::Frontier::kMatch) {
              maxkey = a0[f.i];
              break;
            }
            if (f.kind == simd::Frontier::kExhausted) return;
            if (f.kind == simd::Frontier::kSeekA) {
              i0.lo = Seek(i0, Key(i1));
              if (i0.lo == i0.hi) return;
            } else {
              i1.lo = Seek(i1, Key(i0));
              if (i1.lo == i1.hi) return;
            }
          }
        } else {
          if (simd::Available()) ++st_->scalar_fallbacks;
          Value k0 = Key(i0);
          Value k1 = Key(i1);
          while (k0 != k1) {
            ++st_->comparisons;
            if (k0 < k1) {
              i0.lo = Seek(i0, k1);
              if (i0.lo == i0.hi) return;
              k0 = Key(i0);
            } else {
              i1.lo = Seek(i1, k0);
              if (i1.lo == i1.hi) return;
              k1 = Key(i1);
            }
          }
          maxkey = k0;
        }
      } else {
        bool changed = true;
        while (changed) {
          changed = false;
          for (Iter& it : its) {
            ++st_->comparisons;
            if (Key(it) < maxkey) {
              it.lo = Seek(it, maxkey);
              if (it.lo == it.hi) return;
              if (Key(it) > maxkey) {
                maxkey = Key(it);
                changed = true;
              }
            }
          }
        }
      }
      // All active iterators agree on maxkey: one assignment of this level's
      // variable. The morsel window is half-open, so a frontier at or past
      // win_hi_ belongs to the next morsel.
      if (l == 0 && bounded_ && maxkey >= win_hi_) return;
      SemiringValue child = acc;
      for (Iter& it : its) {
        if (it.last) {
          // All of this relation's columns are bound and canonical rows are
          // distinct, so the run is exactly one row: fold its annotation
          // and skip the run-end gallop entirely.
          it.run = it.lo + 1;
          child = S::Multiply(
              child, plan_.rels[static_cast<size_t>(it.rel)].annot(it.lo));
        } else {
          it.run = RunEnd(it, maxkey);
          rng_[static_cast<size_t>(it.rel)][it.col + 1] = {it.lo, it.run};
        }
      }
      row_[l] = maxkey;
      if (l + 1 == row_.size()) {
        out_->Append(row_, child);
      } else {
        Level(l + 1, child);
      }
      // Step past the matched runs and re-establish the frontier.
      maxkey = 0;
      for (Iter& it : its) {
        it.lo = it.run;
        if (it.lo == it.hi) return;
        maxkey = std::max(maxkey, Key(it));
      }
    }
  }

  const MultiwayPlan<S>& plan_;
  RelationBuilder<S>* out_;
  OpStats* st_;
  std::vector<std::vector<Iter>> its_;             // per level
  std::vector<std::vector<std::pair<size_t, size_t>>> rng_;  // per rel/depth
  std::vector<Value> row_;
  Value win_lo_ = 0;
  Value win_hi_ = 0;
  bool bounded_ = false;
};

/// The MultiwayJoin body, with the context already resolved; the public
/// wrapper below adds the trace span (this body has four exits — the
/// wrapper gives the span a single one).
template <CommutativeSemiring S>
Relation<S> MultiwayJoinImpl(std::vector<Relation<S>> inputs,
                             ExecContext& cx) {
  OpStats& st = cx.multiway;
  ++st.calls;
  for (const auto& r : inputs) st.rows_in += static_cast<int64_t>(r.size());

  internal::MultiwayPlan<S> plan;
  typename S::Value scalar = S::One();
  bool scalar_zero = false;
  for (Relation<S>& r : inputs) {
    if (r.arity() == 0) {
      // Zero-ary input: a scalar factor (at most one nonzero empty tuple).
      r.Canonicalize();
      if (r.empty())
        scalar_zero = true;
      else
        scalar = S::Multiply(scalar, r.annot(0));
      continue;
    }
    plan.rels.push_back(internal::PermuteToVarOrder(std::move(r), cx, &st));
  }

  for (const auto& r : plan.rels)
    plan.vars.insert(plan.vars.end(), r.schema().vars().begin(),
                     r.schema().vars().end());
  std::sort(plan.vars.begin(), plan.vars.end());
  plan.vars.erase(std::unique(plan.vars.begin(), plan.vars.end()),
                  plan.vars.end());
  Schema out_schema{plan.vars};

  if (plan.vars.empty()) {
    // Every input was zero-ary: the answer is the combined scalar.
    Relation<S> out{out_schema};
    if (!scalar_zero) out.Add(std::initializer_list<Value>{}, scalar);
    out.Canonicalize();
    st.rows_out += static_cast<int64_t>(out.size());
    return out;
  }

  // Any empty input (or a zero scalar) annihilates the join; short-circuit
  // before the morsel dispatch so the cut source is never an empty relation.
  bool annihilated = scalar_zero;
  for (const auto& r : plan.rels)
    if (r.empty()) annihilated = true;
  if (annihilated) return Relation<S>{std::move(out_schema)};

  plan.levels.resize(plan.vars.size());
  for (size_t i = 0; i < plan.rels.size(); ++i) {
    const Schema& s = plan.rels[i].schema();
    for (size_t c = 0; c < s.arity(); ++c) {
      const size_t level = static_cast<size_t>(
          std::lower_bound(plan.vars.begin(), plan.vars.end(), s.var(c)) -
          plan.vars.begin());
      plan.levels[level].push_back({static_cast<int>(i), c,
                                    c + 1 == s.arity()});
    }
  }
  plan.BuildSeekIndexes();

  // Morsel cut source: the smallest relation intersecting at the outermost
  // level. Its distinct leading keys partition the output's key space, so
  // key-aligned cuts over it are key-aligned cuts of the whole join.
  int cut_rel = plan.levels[0][0].rel;
  for (const auto& a : plan.levels[0])
    if (plan.rels[static_cast<size_t>(a.rel)].size() <
        plan.rels[static_cast<size_t>(cut_rel)].size())
      cut_rel = a.rel;
  const Relation<S>& cut = plan.rels[static_cast<size_t>(cut_rel)];
  // Leading column behind the encoding seam: run boundaries compare codes,
  // window endpoints decode once per morsel.
  const ColView cd = cut.view(0);
  const size_t cn = cut.size();

  // Gate the fan-out on the *largest* input, not the cut relation: a small
  // top-level relation can still drive per-outer-key subtrees over huge
  // deeper relations, and each of its keys is a valid morsel boundary.
  size_t max_rows = 0;
  for (const auto& r : plan.rels) max_rows = std::max(max_rows, r.size());
  const int workers = PlannedWorkers(cx, max_rows);
  if (workers > 1) {
    Relation<S> out = MorselRun<S>(
        cx, workers, out_schema, cn,
        [&](size_t t) { return !cd.EqualAt(t, t - 1); }, &st,
        [&](ExecContext& wc, size_t xb, size_t xe, RelationBuilder<S>* b) {
          internal::MultiwayWalker<S> walk(plan, b, &wc.multiway);
          const bool bounded_hi = xe < cn;
          walk.Run(scalar, cd.At(xb), bounded_hi ? cd.At(xe) : 0, bounded_hi);
        });
    for (int w = 0; w < workers; ++w) {
      ExecContext& wc = cx.WorkerContext(w);
      st += wc.multiway;
      wc.multiway = OpStats{};
    }
    st.rows_out += static_cast<int64_t>(out.size());
    st.peak_rows = std::max(st.peak_rows, static_cast<int64_t>(out.size()));
    return out;
  }

  RelationBuilder<S> b{out_schema};
  {
    internal::MultiwayWalker<S> walk(plan, &b, &st);
    walk.Run(scalar, 0, 0, /*bounded=*/false);
  }
  Relation<S> out = b.Build();
  st.rows_out += static_cast<int64_t>(out.size());
  st.peak_rows = std::max(st.peak_rows, static_cast<int64_t>(out.size()));
  return out;
}

}  // namespace internal

/// Worst-case-optimal natural join of any number of relations; annotations
/// multiply (⊗). Output schema is the union of the input variables in
/// ascending VarId order, and the output is canonical.
///
/// Leapfrog intersection per variable over the trie views of the inputs
/// (see the header comment): runtime is O~(Σ inputs + output·Σ seeks) and
/// the peak materialization is the output itself, so cyclic queries (the
/// triangle, k-cycles, Loomis–Whitney) never pay the super-AGM pairwise
/// intermediates. Zero-arity inputs fold into a scalar factor; any empty
/// input short-circuits to the empty result.
///
/// With ctx->parallelism > 1 and a large enough top-level relation, the
/// outermost variable's key space is cut into key-aligned morsels
/// (bit-identical splice semantics, like every kernel operator).
template <CommutativeSemiring S>
Relation<S> MultiwayJoin(std::vector<Relation<S>> inputs,
                         ExecContext* ctx = nullptr) {
  ExecContext& cx = ExecContext::Resolve(ctx);
  // One branch when tracing is off — see Join in relation/ops.h.
  if (cx.trace == nullptr)
    return internal::MultiwayJoinImpl<S>(std::move(inputs), cx);
  obs::Span sp(cx.trace, "multiway", cx.trace_track);
  const OpStats before = cx.multiway;
  Relation<S> out = internal::MultiwayJoinImpl<S>(std::move(inputs), cx);
  sp.SetArgsJson(obs::OpStatsJson(obs::OpStatsDelta(before, cx.multiway)));
  return out;
}

}  // namespace topofaq

#endif  // TOPOFAQ_RELATION_MULTIWAY_H_
