#include "relation/simd.h"

#include <algorithm>
#include <array>
#include <atomic>

// DefaultSimdEnabled() is defined in server/options.cc: every environment
// knob (TOPOFAQ_SIMD included) is read and parsed in that one file.

namespace topofaq {

namespace {

std::atomic<bool>& SimdSlot() {
  static std::atomic<bool> on{DefaultSimdEnabled()};
  return on;
}

}  // namespace

bool SimdEnabled() { return SimdSlot().load(std::memory_order_relaxed); }
void SetSimdEnabled(bool on) {
  SimdSlot().store(on, std::memory_order_relaxed);
}

namespace simd {

// ---------------------------------------------------------------------------
// Scalar reference bodies. These define the kernel semantics; the AVX2
// bodies below must agree with them on every input (tests/simd_kernel_test.cc
// fuzzes the equivalence).

size_t ScalarLowerBoundU64(const Value* a, size_t lo, size_t hi, Value key,
                           bool strict) {
  return static_cast<size_t>(
      (strict ? std::upper_bound(a + lo, a + hi, key)
              : std::lower_bound(a + lo, a + hi, key)) -
      a);
}

size_t ScalarLowerBoundU32(const uint32_t* a, size_t lo, size_t hi,
                           uint32_t key, bool strict) {
  return static_cast<size_t>(
      (strict ? std::upper_bound(a + lo, a + hi, key)
              : std::lower_bound(a + lo, a + hi, key)) -
      a);
}

size_t ScalarAdvanceU64(const Value* a, size_t i, size_t n, Value key,
                        bool strict) {
  if (strict) {
    while (i < n && a[i] <= key) ++i;
  } else {
    while (i < n && a[i] < key) ++i;
  }
  return i;
}

namespace {

/// Shared scalar frontier walk: the classic two-pointer intersection with a
/// step budget (4 scalar steps ~ one vector block). kMatch positions are the
/// leftmost occurrences of the smallest common key at or after (i, j) — the
/// canonical answer every implementation must reproduce.
template <typename T>
Frontier ScalarNextMatch(const T* a, size_t i, size_t an, const T* b,
                         size_t j, size_t bn, size_t max_blocks) {
  size_t steps = 0;
  const size_t max_steps = max_blocks * 4;
  while (i < an && j < bn) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return {i, j, Frontier::kMatch};
    }
    if (++steps >= max_steps && i < an && j < bn)
      return {i, j, a[i] < b[j] ? Frontier::kSeekA : Frontier::kSeekB};
  }
  return {i, j, Frontier::kExhausted};
}

template <typename T>
size_t ScalarIntersect(const T* a, size_t an, const T* b, size_t bn, T* out) {
  size_t i = 0, j = 0, c = 0;
  while (i < an && j < bn) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[c++] = a[i];
      ++i;  // keep j: the next (duplicated) a position may match it too
    }
  }
  return c;
}

}  // namespace

Frontier ScalarNextMatchU64(const Value* a, size_t i, size_t an,
                            const Value* b, size_t j, size_t bn,
                            size_t max_blocks) {
  return ScalarNextMatch(a, i, an, b, j, bn, max_blocks);
}

Frontier ScalarNextMatchU32(const uint32_t* a, size_t i, size_t an,
                            const uint32_t* b, size_t j, size_t bn,
                            size_t max_blocks) {
  return ScalarNextMatch(a, i, an, b, j, bn, max_blocks);
}

size_t ScalarIntersectU64(const Value* a, size_t an, const Value* b,
                          size_t bn, Value* out) {
  return ScalarIntersect(a, an, b, bn, out);
}

size_t ScalarIntersectU32(const uint32_t* a, size_t an, const uint32_t* b,
                          size_t bn, uint32_t* out) {
  return ScalarIntersect(a, an, b, bn, out);
}

// ---------------------------------------------------------------------------
// AVX2 bodies (x86 only, selected at runtime). Unsigned lane compares go
// through a sign-bit bias: x XOR 2^63 (2^31) maps unsigned order onto the
// signed order the cmpgt instructions implement.

#if defined(TOPOFAQ_X86_SIMD)

namespace {

constexpr long long kBias64 = static_cast<long long>(0x8000000000000000ull);
constexpr int kBias32 = static_cast<int>(0x80000000u);

/// Compaction table for 4 64-bit lanes: row m holds the permutevar8x32
/// indices (32-bit lane pairs) that pack the set bits of m to the front.
struct Lut64 {
  alignas(32) int idx[16][8];
};
constexpr Lut64 MakeLut64() {
  Lut64 t{};
  for (int m = 0; m < 16; ++m) {
    int o = 0;
    for (int l = 0; l < 4; ++l) {
      if (m & (1 << l)) {
        t.idx[m][o++] = 2 * l;
        t.idx[m][o++] = 2 * l + 1;
      }
    }
    for (; o < 8; ++o) t.idx[m][o] = 0;
  }
  return t;
}
constexpr Lut64 kLut64 = MakeLut64();

/// Compaction table for 8 32-bit lanes.
struct Lut32 {
  alignas(32) int idx[256][8];
};
constexpr Lut32 MakeLut32() {
  Lut32 t{};
  for (int m = 0; m < 256; ++m) {
    int o = 0;
    for (int l = 0; l < 8; ++l)
      if (m & (1 << l)) t.idx[m][o++] = l;
    for (; o < 8; ++o) t.idx[m][o] = 0;
  }
  return t;
}
constexpr Lut32 kLut32 = MakeLut32();

__attribute__((target("avx2"))) inline __m256i Bias64(__m256i v) {
  return _mm256_xor_si256(v, _mm256_set1_epi64x(kBias64));
}
__attribute__((target("avx2"))) inline __m256i Bias32(__m256i v) {
  return _mm256_xor_si256(v, _mm256_set1_epi32(kBias32));
}

__attribute__((target("avx2"))) size_t LowerBoundU64Avx2(
    const Value* a, size_t lo, size_t hi, Value key, bool strict,
    int64_t* blocks) {
  // Branchless count of not-past lanes: the answer is lo + #{t : a[t] < key}
  // (strict: <= key), and sortedness makes the not-past lanes a prefix — so
  // a fully-past block also ends the scan.
  const __m256i kb = Bias64(_mm256_set1_epi64x(static_cast<long long>(key)));
  size_t i = lo;
  size_t cnt = 0;
  int64_t nb = 0;
  for (; i + 4 <= hi; i += 4) {
    const __m256i v =
        Bias64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    ++nb;
    int np;  // bitmask of not-past lanes
    if (strict) {
      np = ~_mm256_movemask_pd(
               _mm256_castsi256_pd(_mm256_cmpgt_epi64(v, kb))) &
           0xF;
    } else {
      np = _mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpgt_epi64(kb, v)));
    }
    cnt += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(np)));
    if (np != 0xF) break;  // a past lane appeared: nothing later counts
  }
  if (blocks != nullptr) *blocks += nb;
  if (cnt == i - lo) {  // every scanned lane was not-past: finish the tail
    size_t t = i;
    while (t < hi && (strict ? a[t] <= key : a[t] < key)) ++t;
    return t;
  }
  return lo + cnt;
}

__attribute__((target("avx2"))) size_t LowerBoundU32Avx2(
    const uint32_t* a, size_t lo, size_t hi, uint32_t key, bool strict,
    int64_t* blocks) {
  const __m256i kb =
      Bias32(_mm256_set1_epi32(static_cast<int>(key)));
  size_t i = lo;
  size_t cnt = 0;
  int64_t nb = 0;
  for (; i + 8 <= hi; i += 8) {
    const __m256i v =
        Bias32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    ++nb;
    int np;
    if (strict) {
      np = ~_mm256_movemask_ps(
               _mm256_castsi256_ps(_mm256_cmpgt_epi32(v, kb))) &
           0xFF;
    } else {
      np = _mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpgt_epi32(kb, v)));
    }
    cnt += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(np)));
    if (np != 0xFF) break;
  }
  if (blocks != nullptr) *blocks += nb;
  if (cnt == i - lo) {
    size_t t = i;
    while (t < hi && (strict ? a[t] <= key : a[t] < key)) ++t;
    return t;
  }
  return lo + cnt;
}

__attribute__((target("avx2"))) size_t AdvanceU64Avx2(const Value* a, size_t i,
                                                      size_t n, Value key,
                                                      bool strict,
                                                      int64_t* blocks) {
  const __m256i kb = Bias64(_mm256_set1_epi64x(static_cast<long long>(key)));
  int64_t nb = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        Bias64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    ++nb;
    // Past lanes (>= key, strict: > key) form a suffix of the block; the
    // lowest set bit is the answer.
    int past;
    if (strict) {
      past = _mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpgt_epi64(v, kb)));
    } else {
      past = ~_mm256_movemask_pd(
                 _mm256_castsi256_pd(_mm256_cmpgt_epi64(kb, v))) &
             0xF;
    }
    if (past != 0) {
      if (blocks != nullptr) *blocks += nb;
      return i + static_cast<size_t>(
                     __builtin_ctz(static_cast<unsigned>(past)));
    }
  }
  if (blocks != nullptr) *blocks += nb;
  while (i < n && (strict ? a[i] <= key : a[i] < key)) ++i;
  return i;
}

/// All-pairs equality between a 4x64 block and every rotation of another:
/// nonzero iff some a lane equals some b lane.
__attribute__((target("avx2"))) inline __m256i AnyEq64(__m256i va,
                                                       __m256i vb) {
  __m256i e = _mm256_cmpeq_epi64(va, vb);
  e = _mm256_or_si256(
      e, _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0x39)));
  e = _mm256_or_si256(
      e, _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0x4E)));
  e = _mm256_or_si256(
      e, _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0x93)));
  return e;
}

/// All-pairs equality for 8x32 blocks: compare against all 8 rotations.
__attribute__((target("avx2"))) inline __m256i AnyEq32(__m256i va,
                                                       __m256i vb) {
  __m256i e = _mm256_cmpeq_epi32(va, vb);
  __m256i r = vb;
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  for (int k = 1; k < 8; ++k) {
    r = _mm256_permutevar8x32_epi32(r, rot1);
    e = _mm256_or_si256(e, _mm256_cmpeq_epi32(va, r));
  }
  return e;
}

__attribute__((target("avx2"))) Frontier NextMatchU64Avx2(
    const Value* a, size_t i, size_t an, const Value* b, size_t j, size_t bn,
    size_t max_blocks, int64_t* blocks) {
  size_t nb = 0;
  while (i + 4 <= an && j + 4 <= bn) {
    const Value amax = a[i + 3];
    const Value bmax = b[j + 3];
    if (amax < b[j]) {  // whole a block below b's minimum: skip it
      i += 4;
    } else if (bmax < a[i]) {
      j += 4;
    } else {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      const __m256i e = AnyEq64(va, vb);
      if (!_mm256_testz_si256(e, e)) {
        // A match exists within these two blocks; the scalar walk finds the
        // leftmost pair without leaving them.
        if (blocks != nullptr) *blocks += static_cast<int64_t>(nb + 1);
        while (true) {
          if (a[i] < b[j]) {
            ++i;
          } else if (b[j] < a[i]) {
            ++j;
          } else {
            return {i, j, Frontier::kMatch};
          }
        }
      }
      // No equal pair, so amax != bmax; the smaller-max block can't match
      // anything later either and retires whole.
      if (amax < bmax) {
        i += 4;
      } else {
        j += 4;
      }
    }
    if (++nb >= max_blocks && i + 4 <= an && j + 4 <= bn) {
      if (blocks != nullptr) *blocks += static_cast<int64_t>(nb);
      return {i, j, a[i] < b[j] ? Frontier::kSeekA : Frontier::kSeekB};
    }
  }
  if (blocks != nullptr) *blocks += static_cast<int64_t>(nb);
  while (i < an && j < bn) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return {i, j, Frontier::kMatch};
    }
  }
  return {i, j, Frontier::kExhausted};
}

__attribute__((target("avx2"))) Frontier NextMatchU32Avx2(
    const uint32_t* a, size_t i, size_t an, const uint32_t* b, size_t j,
    size_t bn, size_t max_blocks, int64_t* blocks) {
  size_t nb = 0;
  while (i + 8 <= an && j + 8 <= bn) {
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax < b[j]) {
      i += 8;
    } else if (bmax < a[i]) {
      j += 8;
    } else {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      const __m256i e = AnyEq32(va, vb);
      if (!_mm256_testz_si256(e, e)) {
        if (blocks != nullptr) *blocks += static_cast<int64_t>(nb + 1);
        while (true) {
          if (a[i] < b[j]) {
            ++i;
          } else if (b[j] < a[i]) {
            ++j;
          } else {
            return {i, j, Frontier::kMatch};
          }
        }
      }
      if (amax < bmax) {
        i += 8;
      } else {
        j += 8;
      }
    }
    if (++nb >= max_blocks && i + 8 <= an && j + 8 <= bn) {
      if (blocks != nullptr) *blocks += static_cast<int64_t>(nb);
      return {i, j, a[i] < b[j] ? Frontier::kSeekA : Frontier::kSeekB};
    }
  }
  if (blocks != nullptr) *blocks += static_cast<int64_t>(nb);
  while (i < an && j < bn) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return {i, j, Frontier::kMatch};
    }
  }
  return {i, j, Frontier::kExhausted};
}

// Shuffle-compact the acc-masked lanes of `va` to out + c; returns the new
// count. Free functions (not lambdas) because GCC does not propagate the
// enclosing function's target attribute into lambda call operators.
__attribute__((target("avx2"))) size_t EmitMatches64(__m256i va, __m256i acc,
                                                     Value* out, size_t c) {
  const int m = _mm256_movemask_pd(_mm256_castsi256_pd(acc));
  if (m != 0) {
    const __m256i idx =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kLut64.idx[m]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c),
                        _mm256_permutevar8x32_epi32(va, idx));
    c += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(m)));
  }
  return c;
}

__attribute__((target("avx2"))) size_t EmitMatches32(__m256i va, __m256i acc,
                                                     uint32_t* out, size_t c) {
  const int m = _mm256_movemask_ps(_mm256_castsi256_ps(acc));
  if (m != 0) {
    const __m256i idx =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kLut32.idx[m]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c),
                        _mm256_permutevar8x32_epi32(va, idx));
    c += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(m)));
  }
  return c;
}

__attribute__((target("avx2"))) size_t IntersectU64Avx2(
    const Value* a, size_t an, const Value* b, size_t bn, Value* out,
    int64_t* blocks) {
  size_t i = 0, j = 0, c = 0;
  size_t jbase = 0;  // value of j when the current a block became current
  int64_t nb = 0;
  if (i + 4 <= an && j + 4 <= bn) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    // acc: per-lane "this a position's value occurred in some b block seen
    // while this a block was current". Emitted (shuffle-compacted) when the
    // a block retires; b blocks retire without emission because their
    // matches against the current a block are already accumulated.
    __m256i acc = _mm256_setzero_si256();
    while (i + 4 <= an && j + 4 <= bn) {
      const Value amax = a[i + 3];
      const Value bmax = b[j + 3];
      ++nb;
      if (amax < b[j]) {  // a block done: flush what earlier b blocks matched
        c = EmitMatches64(va, acc, out, c);
        i += 4;
        jbase = j;
        acc = _mm256_setzero_si256();
        if (i + 4 <= an)
          va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        continue;
      }
      if (bmax < a[i]) {  // b block wholly below the a block: no matches
        j += 4;
        continue;
      }
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      acc = _mm256_or_si256(acc, AnyEq64(va, vb));
      if (amax <= bmax) {
        // The a block's matches are fully determined (any later b value
        // exceeds bmax >= amax): emit and retire it.
        c = EmitMatches64(va, acc, out, c);
        i += 4;
        jbase = j;
        acc = _mm256_setzero_si256();
        if (i + 4 <= an)
          va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      } else {
        j += 4;  // b retires; its matches are in acc
      }
    }
    // Tail: the current a block is unfinished — rewind b to where this block
    // became current and let the scalar walk re-find its matches (acc is
    // dropped; nothing was emitted for this block yet).
    j = jbase;
  }
  if (blocks != nullptr) *blocks += nb;
  while (i < an && j < bn) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[c++] = a[i];
      ++i;
    }
  }
  return c;
}

__attribute__((target("avx2"))) size_t IntersectU32Avx2(
    const uint32_t* a, size_t an, const uint32_t* b, size_t bn, uint32_t* out,
    int64_t* blocks) {
  size_t i = 0, j = 0, c = 0;
  size_t jbase = 0;
  int64_t nb = 0;
  if (i + 8 <= an && j + 8 <= bn) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    __m256i acc = _mm256_setzero_si256();
    while (i + 8 <= an && j + 8 <= bn) {
      const uint32_t amax = a[i + 7];
      const uint32_t bmax = b[j + 7];
      ++nb;
      if (amax < b[j]) {
        c = EmitMatches32(va, acc, out, c);
        i += 8;
        jbase = j;
        acc = _mm256_setzero_si256();
        if (i + 8 <= an)
          va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        continue;
      }
      if (bmax < a[i]) {
        j += 8;
        continue;
      }
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      acc = _mm256_or_si256(acc, AnyEq32(va, vb));
      if (amax <= bmax) {
        c = EmitMatches32(va, acc, out, c);
        i += 8;
        jbase = j;
        acc = _mm256_setzero_si256();
        if (i + 8 <= an)
          va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      } else {
        j += 8;
      }
    }
    j = jbase;
  }
  if (blocks != nullptr) *blocks += nb;
  while (i < an && j < bn) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[c++] = a[i];
      ++i;
    }
  }
  return c;
}

/// Quad-window unpack + decode into 64-bit lanes (widths <= 14, like
/// ScanChecksumAvx2): one scalar 8-byte load covers four codes, vpsrlv
/// splits them into lanes, dict codes resolve through a gathered lookup.
__attribute__((target("avx2"))) void DecodeWindowU64Avx2(
    const EncodedColumn& e, size_t begin, size_t end, Value* out,
    int64_t* blocks) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(e.words.data());
  const size_t w = e.width;
  const __m256i shifts =
      _mm256_set_epi64x(static_cast<long long>(3 * w),
                        static_cast<long long>(2 * w),
                        static_cast<long long>(w), 0);
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(e.mask()));
  const __m256i base = _mm256_set1_epi64x(static_cast<long long>(e.base));
  const bool isdict = e.encoding == ColumnEncoding::kDict;
  const auto* dict = reinterpret_cast<const long long*>(e.dict.data());
  size_t i = begin;
  size_t bit = begin * w;
  int64_t nb = 0;
  for (; i + 4 <= end; i += 4, bit += 4 * w) {
    uint64_t v;
    std::memcpy(&v, bytes + (bit >> 3), sizeof v);
    v >>= (bit & 7);
    const __m256i codes = _mm256_and_si256(
        _mm256_srlv_epi64(_mm256_set1_epi64x(static_cast<long long>(v)),
                          shifts),
        mask);
    const __m256i keys = isdict ? _mm256_i64gather_epi64(dict, codes, 8)
                                : _mm256_add_epi64(codes, base);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + (i - begin)), keys);
    ++nb;
  }
  if (blocks != nullptr) *blocks += nb;
  for (; i < end; ++i) out[i - begin] = e.At(i);
}

/// Same, narrowed into 32-bit lanes (requires FitsU32(e)): the even 32-bit
/// halves of the four decoded 64-bit lanes pack into one 16-byte store.
__attribute__((target("avx2"))) void DecodeWindowU32Avx2(
    const EncodedColumn& e, size_t begin, size_t end, uint32_t* out,
    int64_t* blocks) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(e.words.data());
  const size_t w = e.width;
  const __m256i shifts =
      _mm256_set_epi64x(static_cast<long long>(3 * w),
                        static_cast<long long>(2 * w),
                        static_cast<long long>(w), 0);
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(e.mask()));
  const __m256i base = _mm256_set1_epi64x(static_cast<long long>(e.base));
  const __m256i narrow = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const bool isdict = e.encoding == ColumnEncoding::kDict;
  const auto* dict = reinterpret_cast<const long long*>(e.dict.data());
  size_t i = begin;
  size_t bit = begin * w;
  int64_t nb = 0;
  for (; i + 4 <= end; i += 4, bit += 4 * w) {
    uint64_t v;
    std::memcpy(&v, bytes + (bit >> 3), sizeof v);
    v >>= (bit & 7);
    const __m256i codes = _mm256_and_si256(
        _mm256_srlv_epi64(_mm256_set1_epi64x(static_cast<long long>(v)),
                          shifts),
        mask);
    const __m256i keys = isdict ? _mm256_i64gather_epi64(dict, codes, 8)
                                : _mm256_add_epi64(codes, base);
    const __m128i packed =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(keys, narrow));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + (i - begin)), packed);
    ++nb;
  }
  if (blocks != nullptr) *blocks += nb;
  for (; i < end; ++i)
    out[i - begin] = static_cast<uint32_t>(e.At(i));
}

}  // namespace

#endif  // TOPOFAQ_X86_SIMD

// ---------------------------------------------------------------------------
// Dispatchers.

size_t LowerBoundU64(const Value* a, size_t lo, size_t hi, Value key,
                     bool strict, int64_t* blocks) {
#if defined(TOPOFAQ_X86_SIMD)
  if (Available()) return LowerBoundU64Avx2(a, lo, hi, key, strict, blocks);
#endif
  (void)blocks;
  return ScalarLowerBoundU64(a, lo, hi, key, strict);
}

size_t LowerBoundU32(const uint32_t* a, size_t lo, size_t hi, uint32_t key,
                     bool strict, int64_t* blocks) {
#if defined(TOPOFAQ_X86_SIMD)
  if (Available()) return LowerBoundU32Avx2(a, lo, hi, key, strict, blocks);
#endif
  (void)blocks;
  return ScalarLowerBoundU32(a, lo, hi, key, strict);
}

size_t AdvanceU64(const Value* a, size_t i, size_t n, Value key, bool strict,
                  int64_t* blocks) {
#if defined(TOPOFAQ_X86_SIMD)
  if (Available()) return AdvanceU64Avx2(a, i, n, key, strict, blocks);
#endif
  (void)blocks;
  return ScalarAdvanceU64(a, i, n, key, strict);
}

Frontier NextMatchU64(const Value* a, size_t i, size_t an, const Value* b,
                      size_t j, size_t bn, size_t max_blocks,
                      int64_t* blocks) {
#if defined(TOPOFAQ_X86_SIMD)
  if (Available())
    return NextMatchU64Avx2(a, i, an, b, j, bn, max_blocks, blocks);
#endif
  (void)blocks;
  return ScalarNextMatchU64(a, i, an, b, j, bn, max_blocks);
}

Frontier NextMatchU32(const uint32_t* a, size_t i, size_t an,
                      const uint32_t* b, size_t j, size_t bn,
                      size_t max_blocks, int64_t* blocks) {
#if defined(TOPOFAQ_X86_SIMD)
  if (Available())
    return NextMatchU32Avx2(a, i, an, b, j, bn, max_blocks, blocks);
#endif
  (void)blocks;
  return ScalarNextMatchU32(a, i, an, b, j, bn, max_blocks);
}

size_t IntersectU64(const Value* a, size_t an, const Value* b, size_t bn,
                    Value* out, int64_t* blocks) {
#if defined(TOPOFAQ_X86_SIMD)
  if (Available()) return IntersectU64Avx2(a, an, b, bn, out, blocks);
#endif
  (void)blocks;
  return ScalarIntersectU64(a, an, b, bn, out);
}

size_t IntersectU32(const uint32_t* a, size_t an, const uint32_t* b,
                    size_t bn, uint32_t* out, int64_t* blocks) {
#if defined(TOPOFAQ_X86_SIMD)
  if (Available()) return IntersectU32Avx2(a, an, b, bn, out, blocks);
#endif
  (void)blocks;
  return ScalarIntersectU32(a, an, b, bn, out);
}

void DecodeWindowU64(const EncodedColumn& e, size_t begin, size_t end,
                     Value* out, int64_t* blocks) {
#if defined(TOPOFAQ_X86_SIMD)
  if (e.width <= 14 && end - begin >= 4 && Available()) {
    DecodeWindowU64Avx2(e, begin, end, out, blocks);
    return;
  }
#endif
  (void)blocks;
  e.DecodeInto(begin, end, out);
}

void DecodeWindowU32(const EncodedColumn& e, size_t begin, size_t end,
                     uint32_t* out, int64_t* blocks) {
#if defined(TOPOFAQ_X86_SIMD)
  if (e.width <= 14 && end - begin >= 4 && Available()) {
    DecodeWindowU32Avx2(e, begin, end, out, blocks);
    return;
  }
#endif
  (void)blocks;
  e.VisitValues(begin, end, [out, begin](size_t i, Value v) {
    out[i - begin] = static_cast<uint32_t>(v);
  });
}

}  // namespace simd
}  // namespace topofaq
