// Out-of-line pieces of the columnar relation storage (relation.h) that need
// the kernel seams: the canonicalization permutation sort is routed through
// the WorkerPool (parallel.h) when the ambient ExecContext allows, which
// relation.h itself must not include.
#include "relation/relation.h"

#include "relation/exec.h"
#include "relation/parallel.h"

namespace topofaq {
namespace detail {

void SortRowPerm(const std::vector<std::vector<Value>>& cols, size_t rows,
                 std::vector<size_t>* perm, ExecContext* ctx) {
  perm->resize(rows);
  std::iota(perm->begin(), perm->end(), size_t{0});
  const size_t ncols = cols.size();
  // Hoisted column bases: the comparator touches one contiguous array per
  // compared column, never a row stride.
  std::vector<const Value*> cp(ncols);
  for (size_t j = 0; j < ncols; ++j) cp[j] = cols[j].data();
  const Value* const* c = cp.data();
  // Index tiebreak ⇒ total order ⇒ the sorted permutation is unique, so the
  // parallel sort-and-merge below is bit-identical to a serial std::sort.
  auto less = [c, ncols](size_t x, size_t y) {
    for (size_t j = 0; j < ncols; ++j) {
      const Value a = c[j][x];
      const Value b = c[j][y];
      if (a != b) return a < b;
    }
    return x < y;
  };
  ExecContext& cx = ExecContext::Resolve(ctx);
  ParallelSortPerm(perm, PlannedWorkers(cx, rows), less);
}

}  // namespace detail
}  // namespace topofaq
