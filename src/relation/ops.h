// Relational algebra over semiring-annotated relations: natural join ⋈,
// semijoin ⋉ (Definitions 3.4/3.5), projection with ⊕-aggregation, and
// multi-variable elimination with per-variable aggregates (the push-down
// step of Corollary G.2 / Algorithm 3).
//
// All operators run on the sorted-relation kernel (docs/kernel.md): inputs
// are consumed through key-order row permutations — the identity, with no
// sort at all, whenever the key columns are a schema prefix of a canonical
// relation — and outputs are emitted through RelationBuilder in
// nondecreasing row order wherever the access pattern allows, so the result
// is certified canonical without a closing sort. At most one permutation
// sort per input is paid when key orderings mismatch. The seed hash-based
// operators survive in reference_ops.h for differential tests and speedup
// benchmarks.
//
// Storage is columnar (docs/kernel.md, "Columnar storage"), and columns may
// arrive *compressed* (relation/encoding.h). Every kernel below has exactly
// one body, templated over an access policy — PlainAccess (raw base-pointer
// loads, byte-for-byte the pre-encoding code paths) or EncodedAccess
// (ColView, decoding per access) — and each public operator dispatches on
// whether any input column is encoded. Same-column work (run boundaries,
// group detection, key-order sorts, morsel cut alignment) compares raw
// codes without decoding — valid because both encodings preserve order and
// equality within a column; only cross-relation key comparisons and hashes
// decode, and rows decode at emission into the RelationBuilder.
//
// Each operator's emission loop is factored over a traversal *range* so the
// morsel-parallel path (relation/parallel.h) can replay disjoint key-aligned
// slices of the same traversal on worker threads; ExecContext::parallelism
// == 1 (the default) runs exactly the serial loop, and results are
// bit-identical at every parallelism level.
#ifndef TOPOFAQ_RELATION_OPS_H_
#define TOPOFAQ_RELATION_OPS_H_

#include <numeric>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/op_format.h"
#include "obs/trace.h"
#include "relation/exec.h"
#include "relation/parallel.h"
#include "relation/relation.h"
#include "relation/simd.h"
#include "semiring/variable_ops.h"

namespace topofaq {
namespace internal {

/// Fills `out` with the base pointers of the `pos` columns of `r` — the
/// typed column view the plain kernel instantiation traverses. Borrowed
/// from `r`: invalidated by any mutation. Plain-path only: the caller must
/// have dispatched away relations with encoded columns.
template <CommutativeSemiring S>
void GatherColPtrs(const Relation<S>& r, const std::vector<int>& pos,
                   std::vector<const Value*>* out) {
  out->clear();
  out->reserve(pos.size());
  for (int p : pos) out->push_back(r.col(static_cast<size_t>(p)).data());
}

/// All columns of `r` in schema order.
template <CommutativeSemiring S>
void GatherAllColPtrs(const Relation<S>& r, std::vector<const Value*>* out) {
  out->clear();
  out->reserve(r.arity());
  for (size_t j = 0; j < r.arity(); ++j) out->push_back(r.col(j).data());
}

/// ColView counterparts for the encoded instantiation (safe on worker
/// threads: views never touch the relation's decode cache).
template <CommutativeSemiring S>
void GatherColViews(const Relation<S>& r, const std::vector<int>& pos,
                    std::vector<ColView>* out) {
  out->clear();
  out->reserve(pos.size());
  for (int p : pos) out->push_back(r.view(static_cast<size_t>(p)));
}

template <CommutativeSemiring S>
void GatherAllColViews(const Relation<S>& r, std::vector<ColView>* out) {
  out->clear();
  out->reserve(r.arity());
  for (size_t j = 0; j < r.arity(); ++j) out->push_back(r.view(j));
}

/// One gather entry point per access policy.
template <typename A, CommutativeSemiring S>
void GatherCols(const Relation<S>& r, const std::vector<int>& pos,
                std::vector<typename A::Col>* out) {
  if constexpr (std::is_same_v<A, PlainAccess>)
    GatherColPtrs(r, pos, out);
  else
    GatherColViews(r, pos, out);
}

template <typename A, CommutativeSemiring S>
void GatherAllCols(const Relation<S>& r, std::vector<typename A::Col>* out) {
  if constexpr (std::is_same_v<A, PlainAccess>)
    GatherAllColPtrs(r, out);
  else
    GatherAllColViews(r, out);
}

/// Maps an access policy to the ExecContext scratch vectors it borrows.
template <typename A>
struct ScratchCols;
template <>
struct ScratchCols<PlainAccess> {
  static std::vector<const Value*>& a(ExecContext& cx) { return cx.cols_a; }
  static std::vector<const Value*>& b(ExecContext& cx) { return cx.cols_b; }
  static std::vector<const Value*>& c(ExecContext& cx) { return cx.cols_c; }
  static std::vector<const Value*>& d(ExecContext& cx) { return cx.cols_d; }
  static std::vector<const Value*>& e(ExecContext& cx) { return cx.cols_e; }
};
template <>
struct ScratchCols<EncodedAccess> {
  static std::vector<ColView>& a(ExecContext& cx) { return cx.vcols_a; }
  static std::vector<ColView>& b(ExecContext& cx) { return cx.vcols_b; }
  static std::vector<ColView>& c(ExecContext& cx) { return cx.vcols_c; }
  static std::vector<ColView>& d(ExecContext& cx) { return cx.vcols_d; }
  static std::vector<ColView>& e(ExecContext& cx) { return cx.vcols_e; }
};

/// Lexicographic compare of row `x` under columns `a` vs row `y` under
/// columns `b`; both views must have width `k`. Cross-view: values decode
/// through the access policy (codes from different columns are not
/// comparable).
template <typename A>
int CompareKeysAt(const typename A::Col* a, size_t x, const typename A::Col* b,
                  size_t y, size_t k) {
  for (size_t t = 0; t < k; ++t) {
    const Value u = A::At(a[t], x);
    const Value v = A::At(b[t], y);
    if (u < v) return -1;
    if (u > v) return 1;
  }
  return 0;
}

/// Equality of rows `x` and `y` under the SAME column views — compares raw
/// codes on encoded columns (encodings are injective per column), so run
/// boundaries and group scans never decode.
template <typename A>
bool KeysEqualAt(const typename A::Col* c, size_t x, size_t y, size_t k) {
  for (size_t t = 0; t < k; ++t)
    if (!A::EqualAt(c[t], x, y)) return false;
  return true;
}

/// Ordered compare of rows `x` and `y` under the SAME column views —
/// compares raw codes on encoded columns (both encodings preserve value
/// order within a column), so key-order permutation sorts stay in code
/// space.
template <typename A>
int CompareKeysSameAt(const typename A::Col* c, size_t x, size_t y, size_t k) {
  for (size_t t = 0; t < k; ++t) {
    const int r = A::CompareAt(c[t], x, y);
    if (r != 0) return r;
  }
  return 0;
}

/// n·ceil(log2 n): the comparison count reported for permutation sorts.
/// (Sorts run through ParallelSortPerm, so per-invocation comparator
/// counting would race across sort workers; the bound is deterministic at
/// every parallelism level.)
inline int64_t SortComparisonBound(size_t n) {
  if (n < 2) return 0;
  int64_t lg = 0;
  while ((size_t{1} << lg) < n) ++lg;
  return static_cast<int64_t>(n) * lg;
}

/// Fills `perm` with the canonical (full-row lexicographic) order of `r`;
/// the identity, sort skipped, when `r` is already canonical. The sort runs
/// through ParallelSortPerm (index tiebreak → total order → bit-identical
/// at every parallelism level). Non-canonical relations are always plain
/// (mutation decodes), so this path reads raw columns.
template <CommutativeSemiring S>
void RowOrderPerm(const Relation<S>& r, ExecContext& cx,
                  std::vector<size_t>* perm, OpStats* st) {
  const size_t n = r.size();
  perm->resize(n);
  std::iota(perm->begin(), perm->end(), size_t{0});
  if (r.canonical()) {
    ++st->sort_skips;
    return;
  }
  detail::SortRowPerm(r.columns(), n, perm, &cx);
  ++st->sorts;
  st->comparisons += SortComparisonBound(n);
}

/// True when `pos` names the schema prefix [0, k) in order.
inline bool IsPrefixPositions(const std::vector<int>& pos) {
  for (size_t t = 0; t < pos.size(); ++t)
    if (pos[t] != static_cast<int>(t)) return false;
  return true;
}

/// True when the key columns `pos` are the schema prefix [0, k) of a
/// canonical relation — its rows are then already key-ordered in place and
/// every kernel fast path (identity traversal, skipped sorts) applies.
template <CommutativeSemiring S>
bool IsCanonicalKeyPrefix(const Relation<S>& r, const std::vector<int>& pos) {
  return r.canonical() && IsPrefixPositions(pos);
}

/// FNV-1a over row `row` of the key columns `cols` (width `k`). Hashes the
/// *decoded* values so directories built over one relation's codes match
/// probes arriving from another relation's.
template <typename A>
uint64_t HashKeyAt(const typename A::Col* cols, size_t k, size_t row) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t t = 0; t < k; ++t) {
    h ^= A::At(cols[t], row);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Builds an open-addressing directory from key hashes to the key-run starts
/// of the traversal-position range [sb, se) of a key-ordered traversal (runs
/// have distinct keys, so no duplicate handling is needed). `rk` is the
/// key-column view of the probed side (width `nk`); `rp` maps traversal
/// position to row id; nullptr means the identity (rows already key-ordered
/// in place — the canonical-prefix case, spared the indirection). Stored
/// positions are *global* traversal positions (+ 1; entry 0 means empty), so
/// per-shard directories built over key-aligned ranges probe with the
/// unchanged ProbeRunDirectory below. Run detection compares codes; only
/// the per-run hash decodes.
template <typename A>
void BuildRunDirectoryRange(const typename A::Col* rk, size_t nk, size_t sb,
                            size_t se, const size_t* rp,
                            std::vector<uint64_t>* table) {
  const size_t rows = se - sb;
  size_t cap = 16;
  while (cap < rows * 2) cap <<= 1;
  table->assign(cap, 0);
  const uint64_t mask = cap - 1;
  size_t prev = 0;
  bool have_prev = false;
  for (size_t s = sb; s < se; ++s) {
    const size_t row = rp ? rp[s] : s;
    if (have_prev && KeysEqualAt<A>(rk, row, prev, nk)) {
      prev = row;
      continue;
    }
    prev = row;
    have_prev = true;
    uint64_t idx = HashKeyAt<A>(rk, nk, row) & mask;
    while ((*table)[idx] != 0) idx = (idx + 1) & mask;
    (*table)[idx] = s + 1;
  }
}

/// Whole-traversal directory (the serial path).
template <typename A>
void BuildRunDirectory(const typename A::Col* rk, size_t nk, size_t rn,
                       const size_t* rp, std::vector<uint64_t>* table) {
  BuildRunDirectoryRange<A>(rk, nk, 0, rn, rp, table);
}

/// Returns the traversal-position run [lo, hi) whose key equals row `lrow`
/// of the left key view `lk`, or an empty range when there is no match.
template <typename A>
std::pair<size_t, size_t> ProbeRunDirectory(const std::vector<uint64_t>& table,
                                            const typename A::Col* rk,
                                            size_t nk, size_t rn,
                                            const size_t* rp,
                                            const typename A::Col* lk,
                                            size_t lrow, int64_t* cmps) {
  const uint64_t mask = table.size() - 1;
  uint64_t idx = HashKeyAt<A>(lk, nk, lrow) & mask;
  while (table[idx] != 0) {
    const size_t s = table[idx] - 1;
    ++*cmps;
    if (CompareKeysAt<A>(rk, rp ? rp[s] : s, lk, lrow, nk) == 0) {
      size_t hi = s + 1;
      while (hi < rn &&
             CompareKeysAt<A>(rk, rp ? rp[hi] : hi, lk, lrow, nk) == 0)
        ++hi;
      *cmps += static_cast<int64_t>(hi - s);
      return {s, hi};
    }
    idx = (idx + 1) & mask;
  }
  return {0, 0};
}

/// Probe-side handle over either the single whole-traversal run directory
/// (serial path) or the per-shard directories of the parallel path, where
/// shard s covers the key-aligned traversal range [cuts[s], cuts[s+1]) of
/// the probed side and was built by one worker. Probing a sharded directory
/// first binary-searches the shard whose first key is the largest one ≤ the
/// probe key (shards are key-ordered), then probes only that shard's table;
/// a key run never crosses a shard because shard cuts are key-aligned.
struct RunDirectory {
  const std::vector<uint64_t>* single = nullptr;
  const std::vector<std::vector<uint64_t>>* shards = nullptr;
  const std::vector<size_t>* shard_cuts = nullptr;
};

template <typename A>
std::pair<size_t, size_t> DirProbe(const RunDirectory& dir,
                                   const typename A::Col* rk, size_t nk,
                                   size_t rn, const size_t* rp,
                                   const typename A::Col* lk, size_t lrow,
                                   int64_t* cmps) {
  if (dir.single != nullptr)
    return ProbeRunDirectory<A>(*dir.single, rk, nk, rn, rp, lk, lrow, cmps);
  const std::vector<size_t>& cuts = *dir.shard_cuts;
  size_t lo = 0;
  size_t hi = cuts.size() - 1;  // number of shards
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    ++*cmps;
    const size_t s = rp ? rp[cuts[mid]] : cuts[mid];
    if (CompareKeysAt<A>(rk, s, lk, lrow, nk) <= 0)
      lo = mid;
    else
      hi = mid;
  }
  return ProbeRunDirectory<A>((*dir.shards)[lo], rk, nk, rn, rp, lk, lrow,
                              cmps);
}

/// Fills `perm` with a row ordering of `r` sorted by key columns `pos`.
/// When `pos` is the schema prefix [0, k) of a canonical relation the rows
/// are already key-ordered and the sort is skipped (the kernel fast path).
/// Like RowOrderPerm, the sort is a ParallelSortPerm with index tiebreak;
/// on encoded columns the comparator runs in code space.
template <typename A, CommutativeSemiring S>
void KeyOrderPerm(const Relation<S>& r, const std::vector<int>& pos,
                  ExecContext& cx, std::vector<size_t>* perm, OpStats* st) {
  const size_t n = r.size();
  perm->resize(n);
  std::iota(perm->begin(), perm->end(), size_t{0});
  if (IsCanonicalKeyPrefix(r, pos)) {
    ++st->sort_skips;
    return;
  }
  std::vector<typename A::Col> kc;
  GatherCols<A>(r, pos, &kc);
  const typename A::Col* k = kc.data();
  const size_t nk = kc.size();
  ParallelSortPerm(perm, PlannedWorkers(cx, n), [k, nk](size_t x, size_t y) {
    const int c = CompareKeysSameAt<A>(k, x, y, nk);
    if (c != 0) return c < 0;
    return x < y;
  });
  ++st->sorts;
  st->comparisons += SortComparisonBound(n);
}

/// Lower bound of the left key of row `lrow` in the key-ordered right
/// traversal: first traversal position whose key is not < the probe key.
/// Used by morsels entering the middle of a monotone merge.
template <typename A>
size_t RightLowerBound(const typename A::Col* rk, size_t nk, size_t rn,
                       const size_t* rpm, const typename A::Col* lk,
                       size_t lrow, int64_t* cmps) {
  size_t lo = 0, hi = rn;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    ++*cmps;
    if (CompareKeysAt<A>(rk, rpm ? rpm[mid] : mid, lk, lrow, nk) < 0)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// The raw sorted key array behind a merge side, or nullptr when the column
/// is encoded — the eligibility probe for the vector merge fast path.
inline const Value* RawMergeColumn(const Value* c) { return c; }
inline const Value* RawMergeColumn(const ColView& v) {
  return v.enc == nullptr ? v.plain : nullptr;
}

/// Emits the join outputs of left traversal positions [xb, xe) into `b`:
/// the serial Join emission loop, parameterized over the traversal range so
/// key-aligned morsels can replay disjoint slices of it on workers. `lall`
/// is every left column (output assembly — rows decode here, at emission),
/// `lk`/`rk` the key views, `rex` the right extra columns. `dir` must be
/// populated when !lmono and rn > 0.
///
/// The monotone merge's advance + run scan — a single plain key column in
/// traversal order — runs through simd::AdvanceU64 (4 key lanes per probe,
/// same linear walk, same comparison counts); every other shape keeps the
/// scalar loops.
template <typename A, CommutativeSemiring S>
void JoinEmitRange(const Relation<S>& left, const Relation<S>& right,
                   const typename A::Col* lall, const typename A::Col* lk,
                   const typename A::Col* rk, size_t nk,
                   const typename A::Col* rex, size_t nex, const size_t* lpm,
                   const size_t* rpm, bool lmono, const RunDirectory& dir,
                   size_t xb, size_t xe, RelationBuilder<S>* b,
                   std::vector<Value>* rowbuf, OpStats* st) {
  const size_t la = left.arity();
  const size_t rn = right.size();
  if (xb >= xe || rn == 0) return;
  int64_t* const cmps = &st->comparisons;
  std::vector<Value>& row = *rowbuf;
  row.resize(la + nex);

  const Value* rk0 =
      (nk == 1 && rpm == nullptr) ? RawMergeColumn(rk[0]) : nullptr;
  const bool vec = rk0 != nullptr && simd::Available();
  if (lmono && nk == 1 && rpm == nullptr && !vec) ++st->scalar_fallbacks;

  // Monotone morsels entering mid-merge find their right-side start by one
  // binary search instead of replaying the merge from traversal position 0.
  size_t j = 0;
  if (lmono && xb > 0)
    j = RightLowerBound<A>(rk, nk, rn, rpm, lk, lpm ? lpm[xb] : xb, cmps);

  bool have_prev = false;
  size_t prev_x = 0;
  size_t lo = 0, hi = 0;
  for (size_t xi = xb; xi < xe; ++xi) {
    const size_t x = lpm ? lpm[xi] : xi;
#if defined(__GNUC__)
    // Hide the directory-probe cache miss of the next left row behind this
    // row's emission work (single-table probes only; sharded probes start
    // with a shard binary search instead).
    if (!lmono && dir.single != nullptr && xi + 1 < xe) {
      const size_t nx = lpm ? lpm[xi + 1] : xi + 1;
      __builtin_prefetch(
          dir.single->data() +
          (HashKeyAt<A>(lk, nk, nx) & (dir.single->size() - 1)));
    }
#endif
    if (!have_prev || !KeysEqualAt<A>(lk, x, prev_x, nk)) {
      if (lmono) {
        if (vec) {
          const Value key = A::At(lk[0], x);
          lo = simd::AdvanceU64(rk0, j, rn, key, /*strict=*/false,
                                &st->simd_blocks);
          *cmps += static_cast<int64_t>(lo - j);
          hi = simd::AdvanceU64(rk0, lo, rn, key, /*strict=*/true,
                                &st->simd_blocks);
          *cmps += static_cast<int64_t>(hi - lo) + 1;
          j = hi;
        } else {
          while (j < rn &&
                 CompareKeysAt<A>(rk, rpm ? rpm[j] : j, lk, x, nk) < 0) {
            ++*cmps;
            ++j;
          }
          lo = hi = j;
          while (hi < rn &&
                 CompareKeysAt<A>(rk, rpm ? rpm[hi] : hi, lk, x, nk) == 0)
            ++hi;
          *cmps += static_cast<int64_t>(hi - lo) + 1;
          j = hi;
        }
      } else {
        std::tie(lo, hi) = DirProbe<A>(dir, rk, nk, rn, rpm, lk, x, cmps);
      }
    }
    have_prev = true;
    prev_x = x;
    if (lo == hi) continue;
    for (size_t t = 0; t < la; ++t) row[t] = A::At(lall[t], x);
    for (size_t y = lo; y < hi; ++y) {
      const size_t ry = rpm ? rpm[y] : y;
      for (size_t t = 0; t < nex; ++t) row[la + t] = A::At(rex[t], ry);
      b->Append(row, S::Multiply(left.annot(x), right.annot(ry)));
    }
  }
}

/// Emits the semijoin survivors among left rows [xb, xe) (original row
/// order) into `b`; the serial Semijoin loop parameterized over the range.
/// Survivors are appended column-to-column (RelationBuilder::AppendFrom)
/// through the `lall` views, with no row-gather buffer.
template <typename A, CommutativeSemiring S>
void SemijoinEmitRange(const Relation<S>& left, const Relation<S>& right,
                       const typename A::Col* lall, const typename A::Col* lk,
                       const typename A::Col* rk, size_t nk, const size_t* rpm,
                       bool lmono, const RunDirectory& dir, size_t xb,
                       size_t xe, RelationBuilder<S>* b, OpStats* st) {
  const size_t rn = right.size();
  if (xb >= xe || rn == 0) return;
  int64_t* const cmps = &st->comparisons;

  const Value* rk0 =
      (nk == 1 && rpm == nullptr) ? RawMergeColumn(rk[0]) : nullptr;
  const bool vec = rk0 != nullptr && simd::Available();
  if (lmono && nk == 1 && rpm == nullptr && !vec) ++st->scalar_fallbacks;

  size_t j = 0;
  if (lmono && xb > 0) j = RightLowerBound<A>(rk, nk, rn, rpm, lk, xb, cmps);

  bool have_prev = false;
  size_t prev_x = 0;
  bool matched = false;
  for (size_t x = xb; x < xe; ++x) {
    if (!have_prev || !KeysEqualAt<A>(lk, x, prev_x, nk)) {
      if (lmono && vec) {
        const Value key = A::At(lk[0], x);
        const size_t jn = simd::AdvanceU64(rk0, j, rn, key, /*strict=*/false,
                                           &st->simd_blocks);
        *cmps += static_cast<int64_t>(jn - j) + 1;
        j = jn;
        matched = j < rn && rk0[j] == key;
      } else if (lmono) {
        while (j < rn &&
               CompareKeysAt<A>(rk, rpm ? rpm[j] : j, lk, x, nk) < 0) {
          ++*cmps;
          ++j;
        }
        ++*cmps;
        matched =
            j < rn && CompareKeysAt<A>(rk, rpm ? rpm[j] : j, lk, x, nk) == 0;
      } else {
        auto [lo, hi] = DirProbe<A>(dir, rk, nk, rn, rpm, lk, x, cmps);
        matched = lo != hi;
      }
    }
    have_prev = true;
    prev_x = x;
    if (matched) b->AppendFrom(lall, x, left.annot(x));
  }
}

/// Emits the projections of traversal positions [tb, te) (kept-column
/// order via `perm`; nullptr = identity — the canonical-prefix case, spared
/// the permutation stream entirely) into `b`; collapsing rows merge
/// adjacently in the builder, and key-aligned morsels guarantee a collapse
/// never straddles a morsel boundary. `kc` is the kept-column view (width
/// `nkc`).
template <typename A, CommutativeSemiring S>
void ProjectEmitRange(const Relation<S>& r, const typename A::Col* kc,
                      size_t nkc, const size_t* perm, size_t tb, size_t te,
                      RelationBuilder<S>* b, std::vector<Value>* rowbuf) {
  std::vector<Value>& row = *rowbuf;
  row.resize(nkc);
  for (size_t t = tb; t < te; ++t) {
    const size_t src = perm ? perm[t] : t;
    for (size_t k = 0; k < nkc; ++k) row[k] = A::At(kc[k], src);
    b->Append(row, r.annot(src));
  }
}

/// Counts the elimination groups covering traversal positions [gb, ge) —
/// the pre-scan that sizes the output builder's Reserve. Pure same-column
/// equality (codes on encoded columns), no decoding; not charged to
/// OpStats::comparisons so counter semantics stay unchanged.
template <typename A>
size_t CountGroups(const typename A::Col* kc, size_t nkc, const size_t* perm,
                   size_t gb, size_t ge) {
  if (gb >= ge) return 0;
  size_t groups = 1;
  if (perm == nullptr && nkc == 1) {
    if constexpr (std::is_same_v<A, EncodedAccess>) {
      if (kc[0].encoded() && PackedCursor::Eligible(*kc[0].enc)) {
        // Rolling bit cursor over the packed codes: the boundary scan is
        // purely sequential, so no positional unpack per row. Narrow codes
        // (width <= 14, the policy's usual output) extract four per load —
        // branchless boundary adds over one 8-byte window.
        const EncodedColumn& E = *kc[0].enc;
        const size_t w = E.width;
        PackedCursor cur(E, kc[0].offset + gb);
        uint64_t prev = cur.Next();
        size_t t = gb + 1;
        if (w <= 14) {
          const uint64_t m = cur.mask;
          for (; t + 4 <= ge; t += 4, cur.bit += 4 * w) {
            uint64_t v;
            std::memcpy(&v, cur.bytes + (cur.bit >> 3), sizeof v);
            v >>= (cur.bit & 7);
            const uint64_t c0 = v & m;
            const uint64_t c1 = (v >> w) & m;
            const uint64_t c2 = (v >> (2 * w)) & m;
            const uint64_t c3 = (v >> (3 * w)) & m;
            groups += (c0 != prev) + (c1 != c0) + (c2 != c1) + (c3 != c2);
            prev = c3;
          }
        }
        for (; t < ge; ++t) {
          const uint64_t code = cur.Next();
          groups += code != prev;
          prev = code;
        }
        return groups;
      }
    }
    for (size_t t = gb + 1; t < ge; ++t)
      groups += !A::EqualAt(kc[0], t, t - 1);
    return groups;
  }
  for (size_t t = gb + 1; t < ge; ++t) {
    const size_t a = perm ? perm[t] : t;
    const size_t p = perm ? perm[t - 1] : t - 1;
    groups += !KeysEqualAt<A>(kc, a, p, nkc);
  }
  return groups;
}

/// Folds the elimination groups covering traversal positions [gb, ge)
/// (kept-key order via `perm`) into `b`. gb and ge must be group boundaries
/// — key-aligned morsel cuts guarantee exactly that — so every group folds
/// whole, in traversal order, identical to the serial pass. The group scan
/// touches only the kept columns `kc` and the annotation column; on an
/// encoded key column it detects runs over the packed codes and decodes
/// exactly once per group, at emission.
template <typename A, CommutativeSemiring S>
void EliminateEmitRange(const Relation<S>& r, const typename A::Col* kc,
                        size_t nkc, const size_t* perm, VarOp op, size_t gb,
                        size_t ge, RelationBuilder<S>* b,
                        std::vector<Value>* rowbuf, int64_t* cmps) {
  std::vector<Value>& row = *rowbuf;
  row.resize(nkc);
  const auto annots = r.annots().data();
  if (perm == nullptr && nkc == 1) {
    // The flagship columnar scan: group boundaries read one contiguous key
    // column and the fold one contiguous annotation column — no permutation
    // stream, no pointer-array indirection.
    const Value* c0 = nullptr;
    if constexpr (std::is_same_v<A, PlainAccess>) {
      c0 = kc[0];
    } else {
      c0 = kc[0].plain;  // non-null when the single kept column is plain
    }
    if (c0 != nullptr) {
      // Hoisting the base pointer into a local also frees the compiler
      // from assuming the builder aliases it.
      for (size_t g = gb; g < ge;) {
        const Value key = c0[g];
        typename S::Value acc = annots[g];
        size_t e = g + 1;
        while (e < ge && c0[e] == key) {
          acc = ApplyVarOp<S>(op, acc, annots[e]);
          ++e;
        }
        *cmps += static_cast<int64_t>(e - g);
        row[0] = key;
        b->Append(row, acc);
        g = e;
      }
      return;
    }
    if constexpr (std::is_same_v<A, EncodedAccess>) {
      // Encoded single-column scan: run detection over the packed codes
      // (one word-at-a-time unpack per step, no dictionary touch), decode
      // once per group at emission.
      const ColView c0v = kc[0];
      if (PackedCursor::Eligible(*c0v.enc)) {
        // Sequential scan over the packed codes — one unaligned load per
        // probe instead of a positional unpack, four rows per load inside a
        // run for narrow codes — and the dictionary is touched once per
        // group, at emission.
        const EncodedColumn& E = *c0v.enc;
        const auto* bytes =
            reinterpret_cast<const unsigned char*>(E.words.data());
        const size_t w = E.width;
        const uint64_t m = E.mask();
        const size_t off = c0v.offset;
        uint64_t code = E.CodeAt(off + gb);
        for (size_t g = gb; g < ge;) {
          typename S::Value acc = annots[g];
          size_t e = g + 1;
          size_t bit = (off + e) * w;
          if (w <= 14) {
            // Quad run fold: leave at the first window containing a
            // boundary, finish that run scalar.
            while (e + 4 <= ge) {
              uint64_t v;
              std::memcpy(&v, bytes + (bit >> 3), sizeof v);
              v >>= (bit & 7);
              if ((v & m) != code || ((v >> w) & m) != code ||
                  ((v >> (2 * w)) & m) != code ||
                  ((v >> (3 * w)) & m) != code)
                break;
              acc = ApplyVarOp<S>(op, acc, annots[e]);
              acc = ApplyVarOp<S>(op, acc, annots[e + 1]);
              acc = ApplyVarOp<S>(op, acc, annots[e + 2]);
              acc = ApplyVarOp<S>(op, acc, annots[e + 3]);
              e += 4;
              bit += 4 * w;
            }
          }
          uint64_t next = 0;
          bool have_next = false;
          while (e < ge) {
            uint64_t v;
            std::memcpy(&v, bytes + (bit >> 3), sizeof v);
            const uint64_t c = (v >> (bit & 7)) & m;
            if (c != code) {
              next = c;
              have_next = true;
              break;
            }
            acc = ApplyVarOp<S>(op, acc, annots[e]);
            ++e;
            bit += w;
          }
          *cmps += static_cast<int64_t>(e - g);
          row[0] = E.Decode(code);
          b->Append(row, acc);
          g = e;
          if (have_next) code = next;
        }
        return;
      }
      for (size_t g = gb; g < ge;) {
        const uint64_t code = c0v.CodeAt(g);
        typename S::Value acc = annots[g];
        size_t e = g + 1;
        while (e < ge && c0v.CodeAt(e) == code) {
          acc = ApplyVarOp<S>(op, acc, annots[e]);
          ++e;
        }
        *cmps += static_cast<int64_t>(e - g);
        row[0] = c0v.enc->Decode(code);
        b->Append(row, acc);
        g = e;
      }
      return;
    }
  }
  for (size_t g = gb; g < ge;) {
    const size_t head = perm ? perm[g] : g;
    typename S::Value acc = annots[head];
    size_t e = g + 1;
    while (e < ge) {
      const size_t src = perm ? perm[e] : e;
      if (!KeysEqualAt<A>(kc, src, head, nkc)) break;
      acc = ApplyVarOp<S>(op, acc, annots[src]);
      ++e;
    }
    *cmps += static_cast<int64_t>(e - g);
    for (size_t k = 0; k < nkc; ++k) row[k] = A::At(kc[k], head);
    b->Append(row, acc);
    g = e;
  }
}

/// Builds per-shard run directories over the key-ordered right traversal on
/// the worker pool: the traversal is cut into key-aligned shards, worker w
/// claims shards through the pool and builds each into
/// `cx.table_shards[s]`. Returns the shard cuts for RunDirectory probing.
template <typename A>
std::vector<size_t> BuildShardedRunDirectory(ExecContext& cx, int workers,
                                             const typename A::Col* rk,
                                             size_t nk, size_t rn,
                                             const size_t* rpm) {
  std::vector<size_t> cuts =
      KeyAlignedCuts(rn, static_cast<size_t>(workers), [&](size_t t) {
        const size_t a = rpm ? rpm[t] : t;
        const size_t p = rpm ? rpm[t - 1] : t - 1;
        return !KeysEqualAt<A>(rk, a, p, nk);
      });
  const size_t n_shards = cuts.size() - 1;
  if (cx.table_shards.size() < n_shards) cx.table_shards.resize(n_shards);
  WorkerPool::Shared().ParallelFor(
      std::min<int>(workers, static_cast<int>(n_shards)), n_shards,
      [&](int, size_t s) {
        BuildRunDirectoryRange<A>(rk, nk, cuts[s], cuts[s + 1], rpm,
                                  &cx.table_shards[s]);
      });
  return cuts;
}

/// The Join body (see the public wrapper below for semantics), one
/// instantiation per access policy.
template <typename A, CommutativeSemiring S>
Relation<S> JoinImpl(const Relation<S>& left, const Relation<S>& right,
                     ExecContext* ctx) {
  ExecContext& cx = ExecContext::Resolve(ctx);
  OpStats& st = cx.join;
  ++st.calls;
  st.rows_in += static_cast<int64_t>(left.size() + right.size());

  const SchemaIndex lidx(left.schema());
  const SchemaIndex ridx(right.schema());
  std::vector<int>& lpos = cx.pos_a;
  std::vector<int>& rpos = cx.pos_b;
  std::vector<int>& rextra = cx.pos_c;
  lpos.clear();
  rpos.clear();
  rextra.clear();
  for (size_t i = 0; i < left.arity(); ++i) {
    const int rp = ridx.PositionOf(left.schema().var(i));
    if (rp >= 0) {
      lpos.push_back(static_cast<int>(i));
      rpos.push_back(rp);
    }
  }
  std::vector<VarId> out_vars = left.schema().vars();
  for (size_t i = 0; i < right.arity(); ++i)
    if (!lidx.Contains(right.schema().var(i))) {
      out_vars.push_back(right.schema().var(i));
      rextra.push_back(static_cast<int>(i));
    }

  // Typed column views of everything this call traverses: left key + all
  // left columns (output assembly), right key + right extras.
  GatherCols<A>(left, lpos, &ScratchCols<A>::a(cx));
  GatherCols<A>(right, rpos, &ScratchCols<A>::b(cx));
  GatherCols<A>(right, rextra, &ScratchCols<A>::c(cx));
  GatherAllCols<A>(left, &ScratchCols<A>::d(cx));
  const typename A::Col* lk = ScratchCols<A>::a(cx).data();
  const typename A::Col* rk = ScratchCols<A>::b(cx).data();
  const typename A::Col* rex = ScratchCols<A>::c(cx).data();
  const typename A::Col* lall = ScratchCols<A>::d(cx).data();
  const size_t nk = lpos.size();
  const size_t nex = rextra.size();
  const size_t ln = left.size();
  const size_t rn = right.size();

  // Left traversal in canonical row order: nullptr permutation = identity
  // (no indirection on the hot path) when already canonical.
  const size_t* lpm = nullptr;
  if (left.canonical()) {
    ++st.sort_skips;
  } else {
    RowOrderPerm(left, cx, &cx.perm_a, &st);
    lpm = cx.perm_a.data();
  }

  // Right side key-ordered with full-row tiebreak so extras within a key-run
  // stream out sorted; identity (no sort, no indirection) when the key is
  // already a canonical schema prefix. Comparators run in code space on
  // encoded columns.
  const size_t* rpm = nullptr;
  if (IsCanonicalKeyPrefix(right, rpos)) {
    ++st.sort_skips;
  } else {
    std::vector<size_t>& rp = cx.perm_b;
    rp.resize(rn);
    std::iota(rp.begin(), rp.end(), size_t{0});
    GatherAllCols<A>(right, &ScratchCols<A>::e(cx));
    const typename A::Col* rall = ScratchCols<A>::e(cx).data();
    const size_t ra = right.arity();
    ParallelSortPerm(&rp, PlannedWorkers(cx, rn), [&](size_t x, size_t y) {
      const int c = CompareKeysSameAt<A>(rk, x, y, nk);
      if (c != 0) return c < 0;
      const int f = CompareKeysSameAt<A>(rall, x, y, ra);
      if (f != 0) return f < 0;
      return x < y;
    });
    ++st.sorts;
    st.comparisons += SortComparisonBound(rn);
    rpm = rp.data();
  }

  // Left keys arrive monotonically under full-row traversal order exactly
  // when the key columns are the left schema prefix — then a linear merge
  // suffices; otherwise probe through the hashed run directory.
  const bool lmono = IsPrefixPositions(lpos);
  Schema out_schema{std::move(out_vars)};

  // Parallel only for a canonical left: duplicate left tuples would emit
  // non-adjacent duplicate outputs, and piece-local canonicalization folds
  // their ⊕ in a different association than the serial whole-output
  // Canonicalize — observable as different float bits. A non-canonical
  // right is fine: the right sort above tie-breaks by full row, so
  // duplicate right rows are adjacent in traversal order (sort stability
  // irrelevant) and duplicate outputs merge adjacently in the builder, in
  // emission order, identically on both paths.
  const int workers = left.canonical() ? PlannedWorkers(cx, ln) : 1;
  if (workers > 1 && rn > 0) {
    RunDirectory dir;
    std::vector<size_t> shard_cuts;
    if (!lmono) {
      shard_cuts = BuildShardedRunDirectory<A>(cx, workers, rk, nk, rn, rpm);
      dir.shards = &cx.table_shards;
      dir.shard_cuts = &shard_cuts;
    }
    Relation<S> out = MorselRun<S>(
        cx, workers, std::move(out_schema), ln,
        [&](size_t t) {
          const size_t a = lpm ? lpm[t] : t;
          const size_t p = lpm ? lpm[t - 1] : t - 1;
          return !KeysEqualAt<A>(lk, a, p, nk);
        },
        &st,
        [&](ExecContext& wc, size_t xb, size_t xe, RelationBuilder<S>* b) {
          b->Reserve(xe - xb);
          JoinEmitRange<A>(left, right, lall, lk, rk, nk, rex, nex, lpm, rpm,
                           lmono, dir, xb, xe, b, &wc.row, &wc.join);
        });
    for (int w = 0; w < workers; ++w) {
      ExecContext& wc = cx.WorkerContext(w);
      st += wc.join;
      wc.join = OpStats{};
    }
    st.rows_out += static_cast<int64_t>(out.size());
    return out;
  }

  RunDirectory dir;
  if (!lmono && ln > 0 && rn > 0) {
    BuildRunDirectory<A>(rk, nk, rn, rpm, &cx.table);
    dir.single = &cx.table;
  }
  RelationBuilder<S> b{std::move(out_schema)};
  b.Reserve(std::max(ln, rn));
  JoinEmitRange<A>(left, right, lall, lk, rk, nk, rex, nex, lpm, rpm, lmono,
                   dir, 0, ln, &b, &cx.row, &st);
  Relation<S> out = b.Build();
  st.rows_out += static_cast<int64_t>(out.size());
  return out;
}

/// The Semijoin body, one instantiation per access policy.
template <typename A, CommutativeSemiring S>
Relation<S> SemijoinImpl(const Relation<S>& left, const Relation<S>& right,
                         ExecContext* ctx) {
  ExecContext& cx = ExecContext::Resolve(ctx);
  OpStats& st = cx.semijoin;
  ++st.calls;
  st.rows_in += static_cast<int64_t>(left.size() + right.size());

  const SchemaIndex ridx(right.schema());
  std::vector<int>& lpos = cx.pos_a;
  std::vector<int>& rpos = cx.pos_b;
  lpos.clear();
  rpos.clear();
  for (size_t i = 0; i < left.arity(); ++i) {
    const int rp = ridx.PositionOf(left.schema().var(i));
    if (rp >= 0) {
      lpos.push_back(static_cast<int>(i));
      rpos.push_back(rp);
    }
  }

  GatherCols<A>(left, lpos, &ScratchCols<A>::a(cx));
  GatherCols<A>(right, rpos, &ScratchCols<A>::b(cx));
  GatherAllCols<A>(left, &ScratchCols<A>::d(cx));
  const typename A::Col* lk = ScratchCols<A>::a(cx).data();
  const typename A::Col* rk = ScratchCols<A>::b(cx).data();
  const typename A::Col* lall = ScratchCols<A>::d(cx).data();
  const size_t nk = lpos.size();
  const size_t ln = left.size();
  const size_t rn = right.size();

  // Right side key-ordered; identity when the key is a canonical prefix.
  const size_t* rpm = nullptr;
  if (IsCanonicalKeyPrefix(right, rpos)) {
    ++st.sort_skips;
  } else {
    KeyOrderPerm<A>(right, rpos, cx, &cx.perm_b, &st);
    rpm = cx.perm_b.data();
  }

  // Left keys arrive monotonically only when left is canonical and the key
  // is its schema prefix (the traversal below is in original row order).
  const bool lmono = IsCanonicalKeyPrefix(left, lpos);

  // Parallel only for canonical left: the output is then a concatenation of
  // canonical subsequences; a non-canonical left would make piece-local
  // canonicalization orders observable.
  const int workers = left.canonical() ? PlannedWorkers(cx, ln) : 1;
  if (workers > 1 && rn > 0) {
    RunDirectory dir;
    std::vector<size_t> shard_cuts;
    if (!lmono) {
      shard_cuts = BuildShardedRunDirectory<A>(cx, workers, rk, nk, rn, rpm);
      dir.shards = &cx.table_shards;
      dir.shard_cuts = &shard_cuts;
    }
    Relation<S> out = MorselRun<S>(
        cx, workers, left.schema(), ln,
        [&](size_t t) { return !KeysEqualAt<A>(lk, t, t - 1, nk); }, &st,
        [&](ExecContext& wc, size_t xb, size_t xe, RelationBuilder<S>* b) {
          b->Reserve(xe - xb);
          SemijoinEmitRange<A>(left, right, lall, lk, rk, nk, rpm, lmono, dir,
                               xb, xe, b, &wc.semijoin);
        });
    for (int w = 0; w < workers; ++w) {
      ExecContext& wc = cx.WorkerContext(w);
      st += wc.semijoin;
      wc.semijoin = OpStats{};
    }
    st.rows_out += static_cast<int64_t>(out.size());
    return out;
  }

  RunDirectory dir;
  if (!lmono && ln > 0 && rn > 0) {
    BuildRunDirectory<A>(rk, nk, rn, rpm, &cx.table);
    dir.single = &cx.table;
  }
  RelationBuilder<S> b{left.schema()};
  b.Reserve(ln);
  SemijoinEmitRange<A>(left, right, lall, lk, rk, nk, rpm, lmono, dir, 0, ln,
                       &b, &st);
  Relation<S> out = b.Build();
  st.rows_out += static_cast<int64_t>(out.size());
  return out;
}

/// The Project body, one instantiation per access policy.
template <typename A, CommutativeSemiring S>
Relation<S> ProjectImpl(const Relation<S>& r, const std::vector<VarId>& keep,
                        ExecContext* ctx) {
  ExecContext& cx = ExecContext::Resolve(ctx);
  OpStats& st = cx.project;
  ++st.calls;
  st.rows_in += static_cast<int64_t>(r.size());

  const SchemaIndex idx(r.schema());
  std::vector<int>& pos = cx.pos_a;
  pos.clear();
  for (VarId v : keep) {
    const int p = idx.PositionOf(v);
    TOPOFAQ_CHECK_MSG(p >= 0, "projection variable not in schema");
    pos.push_back(p);
  }

  // Traversal in kept-column order; nullptr permutation = identity (no
  // permutation stream on the hot path) when `keep` is a canonical prefix.
  const size_t n = r.size();
  const size_t* perm = nullptr;
  if (IsCanonicalKeyPrefix(r, pos)) {
    ++st.sort_skips;
  } else {
    KeyOrderPerm<A>(r, pos, cx, &cx.perm_a, &st);
    perm = cx.perm_a.data();
  }
  GatherCols<A>(r, pos, &ScratchCols<A>::a(cx));
  const typename A::Col* kc = ScratchCols<A>::a(cx).data();
  const size_t nkc = pos.size();

  Relation<S> out;
  const int workers = PlannedWorkers(cx, n);
  if (workers > 1) {
    out = MorselRun<S>(
        cx, workers, Schema(keep), n,
        [&](size_t t) {
          const size_t a = perm ? perm[t] : t;
          const size_t p = perm ? perm[t - 1] : t - 1;
          return !KeysEqualAt<A>(kc, a, p, nkc);
        },
        &st,
        [&](ExecContext& wc, size_t tb, size_t te, RelationBuilder<S>* b) {
          b->Reserve(te - tb);
          ProjectEmitRange<A>(r, kc, nkc, perm, tb, te, b, &wc.row);
        });
  } else {
    RelationBuilder<S> b{Schema(keep)};
    b.Reserve(n);
    ProjectEmitRange<A>(r, kc, nkc, perm, 0, n, &b, &cx.row);
    out = b.Build();
  }
  st.rows_out += static_cast<int64_t>(out.size());
  return out;
}

/// One Eliminate batch (all variables sharing one aggregate), one
/// instantiation per access policy. `vb`/`ve` delimit the batch's variables.
template <typename A, CommutativeSemiring S>
Relation<S> EliminateBatch(const Relation<S>& in, const VarId* vb,
                           const VarId* ve, VarOp op, ExecContext& cx,
                           OpStats& st) {
  // Surviving columns of this batch, in schema order.
  std::vector<VarId> kept_vars;
  std::vector<int>& kept_pos = cx.pos_a;
  kept_pos.clear();
  for (size_t p = 0; p < in.arity(); ++p) {
    const VarId v = in.schema().var(p);
    if (std::find(vb, ve, v) == ve) {
      kept_vars.push_back(v);
      kept_pos.push_back(static_cast<int>(p));
    }
  }

  const size_t n = in.size();
  const size_t* perm = nullptr;
  if (IsCanonicalKeyPrefix(in, kept_pos)) {
    ++st.sort_skips;
  } else {
    KeyOrderPerm<A>(in, kept_pos, cx, &cx.perm_a, &st);
    perm = cx.perm_a.data();
  }
  GatherCols<A>(in, kept_pos, &ScratchCols<A>::a(cx));
  const typename A::Col* kc = ScratchCols<A>::a(cx).data();
  const size_t nkc = kept_pos.size();
  Schema out_schema{std::move(kept_vars)};

  Relation<S> out;
  const int workers = PlannedWorkers(cx, n);
  if (workers > 1) {
    out = MorselRun<S>(
        cx, workers, std::move(out_schema), n,
        [&](size_t t) {
          const size_t a = perm ? perm[t] : t;
          const size_t p = perm ? perm[t - 1] : t - 1;
          return !KeysEqualAt<A>(kc, a, p, nkc);
        },
        &st,
        [&](ExecContext& wc, size_t gb, size_t ge, RelationBuilder<S>* b) {
          // Reserve from the group count discovered by the scan pass: the
          // emission loop then never regrows its output columns.
          b->Reserve(CountGroups<A>(kc, nkc, perm, gb, ge));
          EliminateEmitRange<A>(in, kc, nkc, perm, op, gb, ge, b, &wc.row,
                                &wc.eliminate.comparisons);
        });
    for (int w = 0; w < workers; ++w) {
      ExecContext& wc = cx.WorkerContext(w);
      st += wc.eliminate;
      wc.eliminate = OpStats{};
    }
  } else {
    RelationBuilder<S> b{std::move(out_schema)};
    b.Reserve(CountGroups<A>(kc, nkc, perm, 0, n));
    EliminateEmitRange<A>(in, kc, nkc, perm, op, 0, n, &b, &cx.row,
                          &st.comparisons);
    out = b.Build();
  }
  return out;
}

}  // namespace internal

/// Natural join: output schema is left's variables followed by right's
/// non-shared variables; annotations multiply (⊗). Output is canonical.
///
/// Left-driven sort-merge: the left side is walked in canonical row order
/// and matched against key-runs of the key-ordered right side — by a linear
/// two-pointer merge when the left key is a schema prefix (keys then arrive
/// monotonically), and by a flat hashed run directory otherwise. Because
/// every output row is the left row extended by right extras — and runs are
/// tie-broken by full right row — output rows stream out in nondecreasing
/// order, so the result is certified canonical with no closing sort. At most
/// one permutation sort is paid (on the right, only when its key columns are
/// not already a canonical schema prefix); with no shared variables the
/// single all-rows run makes this the streaming cross product.
///
/// With ctx->parallelism > 1 and a large enough left side, the left
/// traversal is cut into key-aligned morsels executed on the worker pool
/// (run directory sharded across workers too); output bytes are identical
/// to the serial path — see docs/kernel.md, "Morsel-parallel execution".
/// Encoded inputs dispatch to the EncodedAccess instantiation of the same
/// body; outputs are bit-identical either way.
template <CommutativeSemiring S>
Relation<S> Join(const Relation<S>& left, const Relation<S>& right,
                 ExecContext* ctx = nullptr) {
  ExecContext& cx = ExecContext::Resolve(ctx);
  const bool enc = left.any_encoded() || right.any_encoded();
  // Tracing off is the overwhelmingly common case and must stay free: this
  // one branch is the operator's entire span cost (the contract
  // bench/bench_obs_overhead.cc gates). Same shape in every wrapper below.
  if (cx.trace == nullptr) {
    return enc ? internal::JoinImpl<EncodedAccess>(left, right, &cx)
               : internal::JoinImpl<PlainAccess>(left, right, &cx);
  }
  obs::Span sp(cx.trace, "join", cx.trace_track);
  const OpStats before = cx.join;
  Relation<S> out = enc ? internal::JoinImpl<EncodedAccess>(left, right, &cx)
                        : internal::JoinImpl<PlainAccess>(left, right, &cx);
  sp.SetArgsJson(obs::OpStatsJson(obs::OpStatsDelta(before, cx.join)));
  return out;
}

/// Semijoin left ⋉ right: rows of `left` whose projection onto the shared
/// variables matches some non-zero row of `right`; annotations of `left`
/// are kept unchanged (Definition 3.5 semantics).
///
/// Left rows are tested in their original order against a key-ordered right
/// side (linear merge when the left key is a canonical schema prefix, hashed
/// run-directory probes otherwise; the right-side sort is skipped when its
/// key is a canonical schema prefix) — for a canonical left input the output
/// is a canonical subsequence and never needs sorting. A canonical left also
/// unlocks the morsel-parallel path (ctx->parallelism > 1): disjoint
/// key-aligned slices of the left filter independently and concatenate.
template <CommutativeSemiring S>
Relation<S> Semijoin(const Relation<S>& left, const Relation<S>& right,
                     ExecContext* ctx = nullptr) {
  ExecContext& cx = ExecContext::Resolve(ctx);
  const bool enc = left.any_encoded() || right.any_encoded();
  if (cx.trace == nullptr) {
    return enc ? internal::SemijoinImpl<EncodedAccess>(left, right, &cx)
               : internal::SemijoinImpl<PlainAccess>(left, right, &cx);
  }
  obs::Span sp(cx.trace, "semijoin", cx.trace_track);
  const OpStats before = cx.semijoin;
  Relation<S> out = enc
                        ? internal::SemijoinImpl<EncodedAccess>(left, right, &cx)
                        : internal::SemijoinImpl<PlainAccess>(left, right, &cx);
  sp.SetArgsJson(obs::OpStatsJson(obs::OpStatsDelta(before, cx.semijoin)));
  return out;
}

/// π with ⊕-aggregation: projects onto `keep` (which must be a subset of the
/// schema), summing annotations of collapsing rows with S::Add.
///
/// Streaming: rows are walked in kept-column order (no sort when `keep` is a
/// canonical schema prefix) and collapsing rows merge adjacently in the
/// builder — no hash table, and the output is canonical by construction.
/// Only the kept columns and the annotation column are ever read.
/// Key-aligned morsels keep every collapse inside one morsel, so the
/// parallel path (ctx->parallelism > 1) is bit-identical to serial.
template <CommutativeSemiring S>
Relation<S> Project(const Relation<S>& r, const std::vector<VarId>& keep,
                    ExecContext* ctx = nullptr) {
  ExecContext& cx = ExecContext::Resolve(ctx);
  if (cx.trace == nullptr) {
    return r.any_encoded() ? internal::ProjectImpl<EncodedAccess>(r, keep, &cx)
                           : internal::ProjectImpl<PlainAccess>(r, keep, &cx);
  }
  obs::Span sp(cx.trace, "project", cx.trace_track);
  const OpStats before = cx.project;
  Relation<S> out = r.any_encoded()
                        ? internal::ProjectImpl<EncodedAccess>(r, keep, &cx)
                        : internal::ProjectImpl<PlainAccess>(r, keep, &cx);
  sp.SetArgsJson(obs::OpStatsJson(obs::OpStatsDelta(before, cx.project)));
  return out;
}

/// Batched multi-variable elimination: removes every variable of `vars`
/// (paired with its aggregate in `ops`) in the canonical innermost-first
/// order of Eq. (4) — descending VarId. Variables absent from the schema are
/// ignored.
///
/// Consecutive variables sharing the same aggregate are eliminated as one
/// batch: a single group-by over the surviving columns folds the whole batch
/// (sound because each aggregate is associative and commutative, so folding
/// the combined group equals folding variable-at-a-time). FAQ-SS queries —
/// every aggregate the semiring ⊕ — therefore group exactly once, where the
/// seed kernel re-grouped once per variable. Columnar storage makes the
/// group-by touch only the surviving columns and the annotation column —
/// the eliminated columns are never read, the payoff the scan benches gate;
/// on an encoded key column the group scan runs over packed codes.
/// Each batch's group-by fans out into key-aligned morsels when
/// ctx->parallelism > 1; a group always folds whole inside one morsel, in
/// traversal order, so parallel results are bit-identical to serial —
/// floating-point semirings included. The input is consumed by const
/// reference through column views — no defensive copy. Each batch
/// re-dispatches on its input's encoding, so encoded intermediates stay on
/// the encoded kernel.
template <CommutativeSemiring S>
Relation<S> Eliminate(const Relation<S>& r, std::vector<VarId> vars,
                      std::vector<VarOp> ops, ExecContext* ctx = nullptr) {
  TOPOFAQ_CHECK_MSG(vars.size() == ops.size(),
                    "one aggregate op per eliminated variable required");
  ExecContext& cx = ExecContext::Resolve(ctx);
  // Single span over the whole batched loop (one operator call, however many
  // batches it folds); the per-batch breakdown is visible in the counters it
  // carries. One branch here when tracing is off — see Join.
  obs::Span sp(cx.trace, "eliminate", cx.trace_track);
  const OpStats op_before = cx.trace != nullptr ? cx.eliminate : OpStats{};
  OpStats& st = cx.eliminate;
  ++st.calls;
  st.rows_in += static_cast<int64_t>(r.size());

  // The input is only ever *read* (the first batch consumes it through
  // column views; later batches consume the previous batch's output), so an
  // lvalue argument costs no relation copy. Only the degenerate call that
  // eliminates nothing returns a copy of `r`.
  const Relation<S>* src = &r;
  Relation<S> cur;

  // Keep only variables present, then order descending (innermost first).
  {
    const SchemaIndex idx(r.schema());
    size_t w = 0;
    for (size_t i = 0; i < vars.size(); ++i)
      if (idx.Contains(vars[i])) {
        vars[w] = vars[i];
        ops[w] = ops[i];
        ++w;
      }
    vars.resize(w);
    ops.resize(w);
  }
  std::vector<size_t> order(vars.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return vars[x] > vars[y]; });
  {
    std::vector<VarId> v2(vars.size());
    std::vector<VarOp> o2(ops.size());
    for (size_t i = 0; i < order.size(); ++i) {
      v2[i] = vars[order[i]];
      o2[i] = ops[order[i]];
    }
    vars = std::move(v2);
    ops = std::move(o2);
  }

  size_t bi = 0;
  while (bi < vars.size()) {
    size_t be = bi + 1;
    while (be < vars.size() && ops[be] == ops[bi]) ++be;
    const VarOp op = ops[bi];
    const Relation<S>& in = *src;
    const VarId* vb = vars.data() + bi;
    const VarId* ve = vars.data() + be;
    Relation<S> out =
        in.any_encoded()
            ? internal::EliminateBatch<EncodedAccess>(in, vb, ve, op, cx, st)
            : internal::EliminateBatch<PlainAccess>(in, vb, ve, op, cx, st);
    cur = std::move(out);
    src = &cur;
    bi = be;
  }
  st.rows_out += static_cast<int64_t>(src->size());
  if (cx.trace != nullptr)
    sp.SetArgsJson(obs::OpStatsJson(obs::OpStatsDelta(op_before, st)));
  return src == &r ? r : std::move(cur);
}

/// Eliminates a single variable `v` with aggregate `op`: groups rows by the
/// remaining variables and folds annotations of each group with `op`. This is
/// one ⊕(i) application of Eq. (4).
template <CommutativeSemiring S>
Relation<S> EliminateVar(const Relation<S>& r, VarId v, VarOp op,
                         ExecContext* ctx = nullptr) {
  TOPOFAQ_CHECK_MSG(r.schema().Contains(v), "eliminated variable not in schema");
  return Eliminate(r, std::vector<VarId>{v}, std::vector<VarOp>{op}, ctx);
}

/// Intersection of two same-schema relations: tuples present (non-zero) in
/// both, annotations multiplied. A full-key sort-merge Join — linear with no
/// sort at all when both sides are canonical.
template <CommutativeSemiring S>
Relation<S> Intersect(const Relation<S>& a, const Relation<S>& b,
                      ExecContext* ctx = nullptr) {
  TOPOFAQ_CHECK_MSG(a.schema() == b.schema(), "intersection needs equal schemas");
  return Join(a, b, ctx);
}

/// The full relation [N]^arity × {1} on `schema` with domain [0, n) — used by
/// the TRIBES embeddings ("[N] × {1}" relations of Lemma 4.3). Enumerated in
/// lexicographic order, so the result is canonical with no sort.
template <CommutativeSemiring S>
Relation<S> FullRelation(const Schema& schema, uint64_t n) {
  RelationBuilder<S> b{schema};
  std::vector<Value> row(schema.arity(), 0);
  // Odometer enumeration of [n)^arity, last column fastest.
  while (true) {
    b.Append(row, S::One());
    size_t k = row.size();
    while (k > 0) {
      if (++row[k - 1] < n) break;
      row[k - 1] = 0;
      --k;
    }
    if (k == 0) break;
  }
  return b.Build();
}

}  // namespace topofaq

#endif  // TOPOFAQ_RELATION_OPS_H_
