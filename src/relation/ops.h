// Relational algebra over semiring-annotated relations: natural join ⋈,
// semijoin ⋉ (Definitions 3.4/3.5), projection with ⊕-aggregation, and
// multi-variable elimination with per-variable aggregates (the push-down
// step of Corollary G.2 / Algorithm 3).
//
// All operators run on the sorted-relation kernel (docs/kernel.md): inputs
// are consumed through key-order row permutations — the identity, with no
// sort at all, whenever the key columns are a schema prefix of a canonical
// relation — and outputs are emitted through RelationBuilder in
// nondecreasing row order wherever the access pattern allows, so the result
// is certified canonical without a closing sort. At most one permutation
// sort per input is paid when key orderings mismatch. The seed hash-based
// operators survive in reference_ops.h for differential tests and speedup
// benchmarks.
//
// Each operator's emission loop is factored over a traversal *range* so the
// morsel-parallel path (relation/parallel.h) can replay disjoint key-aligned
// slices of the same traversal on worker threads; ExecContext::parallelism
// == 1 (the default) runs exactly the serial loop, and results are
// bit-identical at every parallelism level.
#ifndef TOPOFAQ_RELATION_OPS_H_
#define TOPOFAQ_RELATION_OPS_H_

#include <numeric>
#include <tuple>
#include <utility>
#include <vector>

#include "relation/exec.h"
#include "relation/parallel.h"
#include "relation/relation.h"
#include "semiring/variable_ops.h"

namespace topofaq {
namespace internal {

/// Lexicographic compare of columns `apos` of `a_row` vs `bpos` of `b_row`.
/// The position vectors must have equal length.
inline int CompareKeys(const Value* a_row, const std::vector<int>& apos,
                       const Value* b_row, const std::vector<int>& bpos) {
  for (size_t t = 0; t < apos.size(); ++t) {
    const Value x = a_row[static_cast<size_t>(apos[t])];
    const Value y = b_row[static_cast<size_t>(bpos[t])];
    if (x < y) return -1;
    if (x > y) return 1;
  }
  return 0;
}

/// Lexicographic compare of two full rows of width `n`.
inline int CompareRows(const Value* a, const Value* b, size_t n) {
  for (size_t t = 0; t < n; ++t) {
    if (a[t] < b[t]) return -1;
    if (a[t] > b[t]) return 1;
  }
  return 0;
}

/// Fills `perm` with the canonical (full-row lexicographic) order of `r`;
/// the identity, sort skipped, when `r` is already canonical.
template <CommutativeSemiring S>
void RowOrderPerm(const Relation<S>& r, std::vector<size_t>* perm,
                  OpStats* st) {
  const size_t n = r.size();
  perm->resize(n);
  std::iota(perm->begin(), perm->end(), size_t{0});
  if (r.canonical()) {
    ++st->sort_skips;
    return;
  }
  const Value* d = r.data().data();
  const size_t a = r.arity();
  std::sort(perm->begin(), perm->end(), [d, a](size_t x, size_t y) {
    return CompareRows(d + x * a, d + y * a, a) < 0;
  });
  ++st->sorts;
}

/// True when `pos` names the schema prefix [0, k) in order.
inline bool IsPrefixPositions(const std::vector<int>& pos) {
  for (size_t t = 0; t < pos.size(); ++t)
    if (pos[t] != static_cast<int>(t)) return false;
  return true;
}

/// True when the key columns `pos` are the schema prefix [0, k) of a
/// canonical relation — its rows are then already key-ordered in place and
/// every kernel fast path (identity traversal, skipped sorts) applies.
template <CommutativeSemiring S>
bool IsCanonicalKeyPrefix(const Relation<S>& r, const std::vector<int>& pos) {
  return r.canonical() && IsPrefixPositions(pos);
}

/// FNV-1a over the `pos` columns of `row`.
inline uint64_t HashKeyAt(const Value* row, const std::vector<int>& pos) {
  uint64_t h = 1469598103934665603ULL;
  for (int p : pos) {
    h ^= row[static_cast<size_t>(p)];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Builds an open-addressing directory from key hashes to the key-run starts
/// of the traversal-position range [sb, se) of a key-ordered traversal (runs
/// have distinct keys, so no duplicate handling is needed). `rp` maps
/// traversal position to row id; nullptr means the identity (rows already
/// key-ordered in place — the canonical-prefix case, spared the
/// indirection). Stored positions are *global* traversal positions (+ 1;
/// entry 0 means empty), so per-shard directories built over key-aligned
/// ranges probe with the unchanged ProbeRunDirectory below.
inline void BuildRunDirectoryRange(const Value* rd, size_t ra, size_t sb,
                                   size_t se, const size_t* rp,
                                   const std::vector<int>& rpos,
                                   std::vector<uint64_t>* table) {
  const size_t rows = se - sb;
  size_t cap = 16;
  while (cap < rows * 2) cap <<= 1;
  table->assign(cap, 0);
  const uint64_t mask = cap - 1;
  const Value* prev = nullptr;
  for (size_t s = sb; s < se; ++s) {
    const Value* row = rd + (rp ? rp[s] : s) * ra;
    if (prev != nullptr && CompareKeys(row, rpos, prev, rpos) == 0) {
      prev = row;
      continue;
    }
    prev = row;
    uint64_t idx = HashKeyAt(row, rpos) & mask;
    while ((*table)[idx] != 0) idx = (idx + 1) & mask;
    (*table)[idx] = s + 1;
  }
}

/// Whole-traversal directory (the serial path).
inline void BuildRunDirectory(const Value* rd, size_t ra, size_t rn,
                              const size_t* rp, const std::vector<int>& rpos,
                              std::vector<uint64_t>* table) {
  BuildRunDirectoryRange(rd, ra, 0, rn, rp, rpos, table);
}

/// Returns the traversal-position run [lo, hi) whose key equals the `lpos`
/// columns of `lrow`, or an empty range when there is no match.
inline std::pair<size_t, size_t> ProbeRunDirectory(
    const std::vector<uint64_t>& table, const Value* rd, size_t ra, size_t rn,
    const size_t* rp, const std::vector<int>& rpos, const Value* lrow,
    const std::vector<int>& lpos, int64_t* cmps) {
  const uint64_t mask = table.size() - 1;
  uint64_t idx = HashKeyAt(lrow, lpos) & mask;
  while (table[idx] != 0) {
    const size_t s = table[idx] - 1;
    ++*cmps;
    if (CompareKeys(rd + (rp ? rp[s] : s) * ra, rpos, lrow, lpos) == 0) {
      size_t hi = s + 1;
      while (hi < rn &&
             CompareKeys(rd + (rp ? rp[hi] : hi) * ra, rpos, lrow, lpos) == 0)
        ++hi;
      *cmps += static_cast<int64_t>(hi - s);
      return {s, hi};
    }
    idx = (idx + 1) & mask;
  }
  return {0, 0};
}

/// Probe-side handle over either the single whole-traversal run directory
/// (serial path) or the per-shard directories of the parallel path, where
/// shard s covers the key-aligned traversal range [cuts[s], cuts[s+1]) of
/// the probed side and was built by one worker. Probing a sharded directory
/// first binary-searches the shard whose first key is the largest one ≤ the
/// probe key (shards are key-ordered), then probes only that shard's table;
/// a key run never crosses a shard because shard cuts are key-aligned.
struct RunDirectory {
  const std::vector<uint64_t>* single = nullptr;
  const std::vector<std::vector<uint64_t>>* shards = nullptr;
  const std::vector<size_t>* shard_cuts = nullptr;

  std::pair<size_t, size_t> Probe(const Value* rd, size_t ra, size_t rn,
                                  const size_t* rp,
                                  const std::vector<int>& rpos,
                                  const Value* lrow,
                                  const std::vector<int>& lpos,
                                  int64_t* cmps) const {
    if (single != nullptr)
      return ProbeRunDirectory(*single, rd, ra, rn, rp, rpos, lrow, lpos,
                               cmps);
    const std::vector<size_t>& cuts = *shard_cuts;
    size_t lo = 0;
    size_t hi = cuts.size() - 1;  // number of shards
    while (hi - lo > 1) {
      const size_t mid = lo + (hi - lo) / 2;
      ++*cmps;
      const size_t s = rp ? rp[cuts[mid]] : cuts[mid];
      if (CompareKeys(rd + s * ra, rpos, lrow, lpos) <= 0)
        lo = mid;
      else
        hi = mid;
    }
    return ProbeRunDirectory((*shards)[lo], rd, ra, rn, rp, rpos, lrow, lpos,
                             cmps);
  }
};

/// Fills `perm` with a row ordering of `r` sorted by key columns `pos`.
/// When `pos` is the schema prefix [0, k) of a canonical relation the rows
/// are already key-ordered and the sort is skipped (the kernel fast path).
template <CommutativeSemiring S>
void KeyOrderPerm(const Relation<S>& r, const std::vector<int>& pos,
                  std::vector<size_t>* perm, OpStats* st) {
  const size_t n = r.size();
  perm->resize(n);
  std::iota(perm->begin(), perm->end(), size_t{0});
  if (IsCanonicalKeyPrefix(r, pos)) {
    ++st->sort_skips;
    return;
  }
  const Value* d = r.data().data();
  const size_t a = r.arity();
  int64_t cmps = 0;
  std::sort(perm->begin(), perm->end(), [&](size_t x, size_t y) {
    ++cmps;
    return CompareKeys(d + x * a, pos, d + y * a, pos) < 0;
  });
  ++st->sorts;
  st->comparisons += cmps;
}

/// Lower bound of the `lpos` key of `lrow` in the key-ordered right
/// traversal: first traversal position whose key is not < the probe key.
/// Used by morsels entering the middle of a monotone merge.
inline size_t RightLowerBound(const Value* rd, size_t ra, size_t rn,
                              const size_t* rpm, const std::vector<int>& rpos,
                              const Value* lrow, const std::vector<int>& lpos,
                              int64_t* cmps) {
  size_t lo = 0, hi = rn;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    ++*cmps;
    if (CompareKeys(rd + (rpm ? rpm[mid] : mid) * ra, rpos, lrow, lpos) < 0)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// Emits the join outputs of left traversal positions [xb, xe) into `b`:
/// the serial Join emission loop, parameterized over the traversal range so
/// key-aligned morsels can replay disjoint slices of it on workers. `dir`
/// must be populated when !lmono and rn > 0.
template <CommutativeSemiring S>
void JoinEmitRange(const Relation<S>& left, const Relation<S>& right,
                   const std::vector<int>& lpos, const std::vector<int>& rpos,
                   const std::vector<int>& rextra, const size_t* lpm,
                   const size_t* rpm, bool lmono, const RunDirectory& dir,
                   size_t xb, size_t xe, RelationBuilder<S>* b,
                   std::vector<Value>* rowbuf, int64_t* cmps) {
  const Value* ld = left.data().data();
  const Value* rd = right.data().data();
  const size_t la = left.arity();
  const size_t ra = right.arity();
  const size_t rn = right.size();
  if (xb >= xe || rn == 0) return;
  std::vector<Value>& row = *rowbuf;
  row.resize(la + rextra.size());

  // Monotone morsels entering mid-merge find their right-side start by one
  // binary search instead of replaying the merge from traversal position 0.
  size_t j = 0;
  if (lmono && xb > 0)
    j = RightLowerBound(rd, ra, rn, rpm, rpos,
                        ld + (lpm ? lpm[xb] : xb) * la, lpos, cmps);

  const Value* prev_lrow = nullptr;
  size_t lo = 0, hi = 0;
  for (size_t xi = xb; xi < xe; ++xi) {
    const size_t x = lpm ? lpm[xi] : xi;
    const Value* lrow = ld + x * la;
#if defined(__GNUC__)
    // Hide the directory-probe cache miss of the next left row behind this
    // row's emission work (single-table probes only; sharded probes start
    // with a shard binary search instead).
    if (!lmono && dir.single != nullptr && xi + 1 < xe) {
      const size_t nx = lpm ? lpm[xi + 1] : xi + 1;
      __builtin_prefetch(dir.single->data() +
                         (HashKeyAt(ld + nx * la, lpos) &
                          (dir.single->size() - 1)));
    }
#endif
    if (prev_lrow == nullptr ||
        CompareKeys(lrow, lpos, prev_lrow, lpos) != 0) {
      if (lmono) {
        while (j < rn &&
               CompareKeys(rd + (rpm ? rpm[j] : j) * ra, rpos, lrow, lpos) <
                   0) {
          ++*cmps;
          ++j;
        }
        lo = hi = j;
        while (hi < rn &&
               CompareKeys(rd + (rpm ? rpm[hi] : hi) * ra, rpos, lrow,
                           lpos) == 0)
          ++hi;
        *cmps += static_cast<int64_t>(hi - lo) + 1;
        j = hi;
      } else {
        std::tie(lo, hi) = dir.Probe(rd, ra, rn, rpm, rpos, lrow, lpos, cmps);
      }
    }
    prev_lrow = lrow;
    if (lo == hi) continue;
    std::copy(lrow, lrow + la, row.begin());
    for (size_t y = lo; y < hi; ++y) {
      const size_t ry = rpm ? rpm[y] : y;
      const Value* rrow = rd + ry * ra;
      for (size_t t = 0; t < rextra.size(); ++t)
        row[la + t] = rrow[static_cast<size_t>(rextra[t])];
      b->Append(row, S::Multiply(left.annot(x), right.annot(ry)));
    }
  }
}

/// Emits the semijoin survivors among left rows [xb, xe) (original row
/// order) into `b`; the serial Semijoin loop parameterized over the range.
template <CommutativeSemiring S>
void SemijoinEmitRange(const Relation<S>& left, const Relation<S>& right,
                       const std::vector<int>& lpos,
                       const std::vector<int>& rpos, const size_t* rpm,
                       bool lmono, const RunDirectory& dir, size_t xb,
                       size_t xe, RelationBuilder<S>* b, int64_t* cmps) {
  const Value* ld = left.data().data();
  const Value* rd = right.data().data();
  const size_t la = left.arity();
  const size_t ra = right.arity();
  const size_t rn = right.size();
  if (xb >= xe || rn == 0) return;

  size_t j = 0;
  if (lmono && xb > 0)
    j = RightLowerBound(rd, ra, rn, rpm, rpos, ld + xb * la, lpos, cmps);

  const Value* prev_lrow = nullptr;
  bool matched = false;
  for (size_t x = xb; x < xe; ++x) {
    const Value* lrow = ld + x * la;
    if (prev_lrow == nullptr ||
        CompareKeys(lrow, lpos, prev_lrow, lpos) != 0) {
      if (lmono) {
        while (j < rn &&
               CompareKeys(rd + (rpm ? rpm[j] : j) * ra, rpos, lrow, lpos) <
                   0) {
          ++*cmps;
          ++j;
        }
        ++*cmps;
        matched = j < rn &&
                  CompareKeys(rd + (rpm ? rpm[j] : j) * ra, rpos, lrow,
                              lpos) == 0;
      } else {
        auto [lo, hi] = dir.Probe(rd, ra, rn, rpm, rpos, lrow, lpos, cmps);
        matched = lo != hi;
      }
    }
    prev_lrow = lrow;
    if (matched) b->Append(left.tuple(x), left.annot(x));
  }
}

/// Emits the projections of traversal positions [tb, te) (kept-column
/// order via `perm`) into `b`; collapsing rows merge adjacently in the
/// builder, and key-aligned morsels guarantee a collapse never straddles a
/// morsel boundary.
template <CommutativeSemiring S>
void ProjectEmitRange(const Relation<S>& r, const std::vector<int>& pos,
                      const size_t* perm, size_t tb, size_t te,
                      RelationBuilder<S>* b, std::vector<Value>* rowbuf) {
  const Value* d = r.data().data();
  const size_t a = r.arity();
  std::vector<Value>& row = *rowbuf;
  row.resize(pos.size());
  for (size_t t = tb; t < te; ++t) {
    const Value* src = d + perm[t] * a;
    for (size_t k = 0; k < pos.size(); ++k)
      row[k] = src[static_cast<size_t>(pos[k])];
    b->Append(row, r.annot(perm[t]));
  }
}

/// Folds the elimination groups covering traversal positions [gb, ge)
/// (kept-key order via `perm`) into `b`. gb and ge must be group boundaries
/// — key-aligned morsel cuts guarantee exactly that — so every group folds
/// whole, in traversal order, identical to the serial pass.
template <CommutativeSemiring S>
void EliminateEmitRange(const Relation<S>& r,
                        const std::vector<int>& kept_pos, const size_t* perm,
                        VarOp op, size_t gb, size_t ge, RelationBuilder<S>* b,
                        std::vector<Value>* rowbuf, int64_t* cmps) {
  const Value* d = r.data().data();
  const size_t a = r.arity();
  std::vector<Value>& row = *rowbuf;
  row.resize(kept_pos.size());
  for (size_t g = gb; g < ge;) {
    const size_t head = perm[g];
    typename S::Value acc = r.annot(head);
    size_t e = g + 1;
    while (e < ge && CompareKeys(d + perm[e] * a, kept_pos, d + head * a,
                                 kept_pos) == 0) {
      acc = ApplyVarOp<S>(op, acc, r.annot(perm[e]));
      ++e;
    }
    *cmps += static_cast<int64_t>(e - g);
    for (size_t k = 0; k < kept_pos.size(); ++k)
      row[k] = d[head * a + static_cast<size_t>(kept_pos[k])];
    b->Append(row, acc);
    g = e;
  }
}

/// Builds per-shard run directories over the key-ordered right traversal on
/// the worker pool: the traversal is cut into key-aligned shards, worker w
/// claims shards through the pool and builds each into
/// `cx.table_shards[s]`. Returns the shard cuts for RunDirectory probing.
inline std::vector<size_t> BuildShardedRunDirectory(
    ExecContext& cx, int workers, const Value* rd, size_t ra, size_t rn,
    const size_t* rpm, const std::vector<int>& rpos) {
  std::vector<size_t> cuts = KeyAlignedCuts(
      rn, static_cast<size_t>(workers), [&](size_t t) {
        const size_t a = rpm ? rpm[t] : t;
        const size_t p = rpm ? rpm[t - 1] : t - 1;
        return CompareKeys(rd + a * ra, rpos, rd + p * ra, rpos) != 0;
      });
  const size_t n_shards = cuts.size() - 1;
  if (cx.table_shards.size() < n_shards) cx.table_shards.resize(n_shards);
  WorkerPool::Shared().ParallelFor(
      std::min<int>(workers, static_cast<int>(n_shards)), n_shards,
      [&](int, size_t s) {
        BuildRunDirectoryRange(rd, ra, cuts[s], cuts[s + 1], rpm, rpos,
                               &cx.table_shards[s]);
      });
  return cuts;
}

}  // namespace internal

/// Natural join: output schema is left's variables followed by right's
/// non-shared variables; annotations multiply (⊗). Output is canonical.
///
/// Left-driven sort-merge: the left side is walked in canonical row order
/// and matched against key-runs of the key-ordered right side — by a linear
/// two-pointer merge when the left key is a schema prefix (keys then arrive
/// monotonically), and by a flat hashed run directory otherwise. Because
/// every output row is the left row extended by right extras — and runs are
/// tie-broken by full right row — output rows stream out in nondecreasing
/// order, so the result is certified canonical with no closing sort. At most
/// one permutation sort is paid (on the right, only when its key columns are
/// not already a canonical schema prefix); with no shared variables the
/// single all-rows run makes this the streaming cross product.
///
/// With ctx->parallelism > 1 and a large enough left side, the left
/// traversal is cut into key-aligned morsels executed on the worker pool
/// (run directory sharded across workers too); output bytes are identical
/// to the serial path — see docs/kernel.md, "Morsel-parallel execution".
template <CommutativeSemiring S>
Relation<S> Join(const Relation<S>& left, const Relation<S>& right,
                 ExecContext* ctx = nullptr) {
  ExecContext& cx = ExecContext::Resolve(ctx);
  OpStats& st = cx.join;
  ++st.calls;
  st.rows_in += static_cast<int64_t>(left.size() + right.size());

  const SchemaIndex lidx(left.schema());
  const SchemaIndex ridx(right.schema());
  std::vector<int>& lpos = cx.pos_a;
  std::vector<int>& rpos = cx.pos_b;
  std::vector<int>& rextra = cx.pos_c;
  lpos.clear();
  rpos.clear();
  rextra.clear();
  for (size_t i = 0; i < left.arity(); ++i) {
    const int rp = ridx.PositionOf(left.schema().var(i));
    if (rp >= 0) {
      lpos.push_back(static_cast<int>(i));
      rpos.push_back(rp);
    }
  }
  std::vector<VarId> out_vars = left.schema().vars();
  for (size_t i = 0; i < right.arity(); ++i)
    if (!lidx.Contains(right.schema().var(i))) {
      out_vars.push_back(right.schema().var(i));
      rextra.push_back(static_cast<int>(i));
    }

  const Value* ld = left.data().data();
  const Value* rd = right.data().data();
  const size_t la = left.arity();
  const size_t ra = right.arity();
  const size_t ln = left.size();
  const size_t rn = right.size();

  // Left traversal in canonical row order: nullptr permutation = identity
  // (no indirection on the hot path) when already canonical.
  const size_t* lpm = nullptr;
  if (left.canonical()) {
    ++st.sort_skips;
  } else {
    internal::RowOrderPerm(left, &cx.perm_a, &st);
    lpm = cx.perm_a.data();
  }

  // Right side key-ordered with full-row tiebreak so extras within a key-run
  // stream out sorted; identity (no sort, no indirection) when the key is
  // already a canonical schema prefix.
  const size_t* rpm = nullptr;
  if (internal::IsCanonicalKeyPrefix(right, rpos)) {
    ++st.sort_skips;
  } else {
    std::vector<size_t>& rp = cx.perm_b;
    rp.resize(rn);
    std::iota(rp.begin(), rp.end(), size_t{0});
    int64_t cmps = 0;
    std::sort(rp.begin(), rp.end(), [&](size_t x, size_t y) {
      ++cmps;
      const int c =
          internal::CompareKeys(rd + x * ra, rpos, rd + y * ra, rpos);
      if (c != 0) return c < 0;
      return internal::CompareRows(rd + x * ra, rd + y * ra, ra) < 0;
    });
    ++st.sorts;
    st.comparisons += cmps;
    rpm = rp.data();
  }

  // Left keys arrive monotonically under full-row traversal order exactly
  // when the key columns are the left schema prefix — then a linear merge
  // suffices; otherwise probe through the hashed run directory.
  const bool lmono = internal::IsPrefixPositions(lpos);
  Schema out_schema{std::move(out_vars)};

  // Parallel only for a canonical left: duplicate left tuples would emit
  // non-adjacent duplicate outputs, and piece-local canonicalization folds
  // their ⊕ in a different association than the serial whole-output
  // Canonicalize — observable as different float bits. A non-canonical
  // right is fine: the right sort above tie-breaks by full row, so
  // duplicate right rows are adjacent in traversal order (sort stability
  // irrelevant) and duplicate outputs merge adjacently in the builder, in
  // emission order, identically on both paths.
  const int workers = left.canonical() ? PlannedWorkers(cx, ln) : 1;
  if (workers > 1 && rn > 0) {
    internal::RunDirectory dir;
    std::vector<size_t> shard_cuts;
    if (!lmono) {
      shard_cuts = internal::BuildShardedRunDirectory(cx, workers, rd, ra, rn,
                                                      rpm, rpos);
      dir.shards = &cx.table_shards;
      dir.shard_cuts = &shard_cuts;
    }
    Relation<S> out = MorselRun<S>(
        cx, workers, std::move(out_schema), ln,
        [&](size_t t) {
          const size_t a = lpm ? lpm[t] : t;
          const size_t p = lpm ? lpm[t - 1] : t - 1;
          return internal::CompareKeys(ld + a * la, lpos, ld + p * la,
                                       lpos) != 0;
        },
        &st,
        [&](ExecContext& wc, size_t xb, size_t xe, RelationBuilder<S>* b) {
          b->Reserve(xe - xb);
          internal::JoinEmitRange(left, right, lpos, rpos, rextra, lpm, rpm,
                                  lmono, dir, xb, xe, b, &wc.row,
                                  &wc.join.comparisons);
        });
    for (int w = 0; w < workers; ++w) {
      ExecContext& wc = cx.WorkerContext(w);
      st += wc.join;
      wc.join = OpStats{};
    }
    st.rows_out += static_cast<int64_t>(out.size());
    return out;
  }

  internal::RunDirectory dir;
  if (!lmono && ln > 0 && rn > 0) {
    internal::BuildRunDirectory(rd, ra, rn, rpm, rpos, &cx.table);
    dir.single = &cx.table;
  }
  RelationBuilder<S> b{std::move(out_schema)};
  b.Reserve(std::max(ln, rn));
  internal::JoinEmitRange(left, right, lpos, rpos, rextra, lpm, rpm, lmono,
                          dir, 0, ln, &b, &cx.row, &st.comparisons);
  Relation<S> out = b.Build();
  st.rows_out += static_cast<int64_t>(out.size());
  return out;
}

/// Semijoin left ⋉ right: rows of `left` whose projection onto the shared
/// variables matches some non-zero row of `right`; annotations of `left`
/// are kept unchanged (Definition 3.5 semantics).
///
/// Left rows are tested in their original order against a key-ordered right
/// side (linear merge when the left key is a canonical schema prefix, hashed
/// run-directory probes otherwise; the right-side sort is skipped when its
/// key is a canonical schema prefix) — for a canonical left input the output
/// is a canonical subsequence and never needs sorting. A canonical left also
/// unlocks the morsel-parallel path (ctx->parallelism > 1): disjoint
/// key-aligned slices of the left filter independently and concatenate.
template <CommutativeSemiring S>
Relation<S> Semijoin(const Relation<S>& left, const Relation<S>& right,
                     ExecContext* ctx = nullptr) {
  ExecContext& cx = ExecContext::Resolve(ctx);
  OpStats& st = cx.semijoin;
  ++st.calls;
  st.rows_in += static_cast<int64_t>(left.size() + right.size());

  const SchemaIndex ridx(right.schema());
  std::vector<int>& lpos = cx.pos_a;
  std::vector<int>& rpos = cx.pos_b;
  lpos.clear();
  rpos.clear();
  for (size_t i = 0; i < left.arity(); ++i) {
    const int rp = ridx.PositionOf(left.schema().var(i));
    if (rp >= 0) {
      lpos.push_back(static_cast<int>(i));
      rpos.push_back(rp);
    }
  }

  const Value* ld = left.data().data();
  const Value* rd = right.data().data();
  const size_t la = left.arity();
  const size_t ra = right.arity();
  const size_t ln = left.size();
  const size_t rn = right.size();

  // Right side key-ordered; identity when the key is a canonical prefix.
  const size_t* rpm = nullptr;
  if (internal::IsCanonicalKeyPrefix(right, rpos)) {
    ++st.sort_skips;
  } else {
    internal::KeyOrderPerm(right, rpos, &cx.perm_b, &st);
    rpm = cx.perm_b.data();
  }

  // Left keys arrive monotonically only when left is canonical and the key
  // is its schema prefix (the traversal below is in original row order).
  const bool lmono = internal::IsCanonicalKeyPrefix(left, lpos);

  // Parallel only for canonical left: the output is then a concatenation of
  // canonical subsequences; a non-canonical left would make piece-local
  // canonicalization orders observable.
  const int workers = left.canonical() ? PlannedWorkers(cx, ln) : 1;
  if (workers > 1 && rn > 0) {
    internal::RunDirectory dir;
    std::vector<size_t> shard_cuts;
    if (!lmono) {
      shard_cuts = internal::BuildShardedRunDirectory(cx, workers, rd, ra, rn,
                                                      rpm, rpos);
      dir.shards = &cx.table_shards;
      dir.shard_cuts = &shard_cuts;
    }
    Relation<S> out = MorselRun<S>(
        cx, workers, left.schema(), ln,
        [&](size_t t) {
          return internal::CompareKeys(ld + t * la, lpos, ld + (t - 1) * la,
                                       lpos) != 0;
        },
        &st,
        [&](ExecContext& wc, size_t xb, size_t xe, RelationBuilder<S>* b) {
          internal::SemijoinEmitRange(left, right, lpos, rpos, rpm, lmono,
                                      dir, xb, xe, b,
                                      &wc.semijoin.comparisons);
        });
    for (int w = 0; w < workers; ++w) {
      ExecContext& wc = cx.WorkerContext(w);
      st += wc.semijoin;
      wc.semijoin = OpStats{};
    }
    st.rows_out += static_cast<int64_t>(out.size());
    return out;
  }

  internal::RunDirectory dir;
  if (!lmono && ln > 0 && rn > 0) {
    internal::BuildRunDirectory(rd, ra, rn, rpm, rpos, &cx.table);
    dir.single = &cx.table;
  }
  RelationBuilder<S> b{left.schema()};
  internal::SemijoinEmitRange(left, right, lpos, rpos, rpm, lmono, dir, 0,
                              ln, &b, &st.comparisons);
  Relation<S> out = b.Build();
  st.rows_out += static_cast<int64_t>(out.size());
  return out;
}

/// π with ⊕-aggregation: projects onto `keep` (which must be a subset of the
/// schema), summing annotations of collapsing rows with S::Add.
///
/// Streaming: rows are walked in kept-column order (no sort when `keep` is a
/// canonical schema prefix) and collapsing rows merge adjacently in the
/// builder — no hash table, and the output is canonical by construction.
/// Key-aligned morsels keep every collapse inside one morsel, so the
/// parallel path (ctx->parallelism > 1) is bit-identical to serial.
template <CommutativeSemiring S>
Relation<S> Project(const Relation<S>& r, const std::vector<VarId>& keep,
                    ExecContext* ctx = nullptr) {
  ExecContext& cx = ExecContext::Resolve(ctx);
  OpStats& st = cx.project;
  ++st.calls;
  st.rows_in += static_cast<int64_t>(r.size());

  const SchemaIndex idx(r.schema());
  std::vector<int>& pos = cx.pos_a;
  pos.clear();
  for (VarId v : keep) {
    const int p = idx.PositionOf(v);
    TOPOFAQ_CHECK_MSG(p >= 0, "projection variable not in schema");
    pos.push_back(p);
  }

  internal::KeyOrderPerm(r, pos, &cx.perm_a, &st);
  const size_t n = r.size();
  const size_t* perm = cx.perm_a.data();
  const Value* d = r.data().data();
  const size_t a = r.arity();

  Relation<S> out;
  const int workers = PlannedWorkers(cx, n);
  if (workers > 1) {
    out = MorselRun<S>(
        cx, workers, Schema(keep), n,
        [&](size_t t) {
          return internal::CompareKeys(d + perm[t] * a, pos,
                                       d + perm[t - 1] * a, pos) != 0;
        },
        &st,
        [&](ExecContext& wc, size_t tb, size_t te, RelationBuilder<S>* b) {
          internal::ProjectEmitRange(r, pos, perm, tb, te, b, &wc.row);
        });
  } else {
    RelationBuilder<S> b{Schema(keep)};
    internal::ProjectEmitRange(r, pos, perm, 0, n, &b, &cx.row);
    out = b.Build();
  }
  st.rows_out += static_cast<int64_t>(out.size());
  return out;
}

/// Batched multi-variable elimination: removes every variable of `vars`
/// (paired with its aggregate in `ops`) in the canonical innermost-first
/// order of Eq. (4) — descending VarId. Variables absent from the schema are
/// ignored.
///
/// Consecutive variables sharing the same aggregate are eliminated as one
/// batch: a single group-by over the surviving columns folds the whole batch
/// (sound because each aggregate is associative and commutative, so folding
/// the combined group equals folding variable-at-a-time). FAQ-SS queries —
/// every aggregate the semiring ⊕ — therefore group exactly once, where the
/// seed kernel re-grouped once per variable. Each batch's group-by fans out
/// into key-aligned morsels when ctx->parallelism > 1; a group always folds
/// whole inside one morsel, in traversal order, so parallel results are
/// bit-identical to serial — floating-point semirings included.
template <CommutativeSemiring S>
Relation<S> Eliminate(Relation<S> r, std::vector<VarId> vars,
                      std::vector<VarOp> ops, ExecContext* ctx = nullptr) {
  TOPOFAQ_CHECK_MSG(vars.size() == ops.size(),
                    "one aggregate op per eliminated variable required");
  ExecContext& cx = ExecContext::Resolve(ctx);
  OpStats& st = cx.eliminate;
  ++st.calls;
  st.rows_in += static_cast<int64_t>(r.size());

  // Keep only variables present, then order descending (innermost first).
  {
    const SchemaIndex idx(r.schema());
    size_t w = 0;
    for (size_t i = 0; i < vars.size(); ++i)
      if (idx.Contains(vars[i])) {
        vars[w] = vars[i];
        ops[w] = ops[i];
        ++w;
      }
    vars.resize(w);
    ops.resize(w);
  }
  std::vector<size_t> order(vars.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return vars[x] > vars[y]; });
  {
    std::vector<VarId> v2(vars.size());
    std::vector<VarOp> o2(ops.size());
    for (size_t i = 0; i < order.size(); ++i) {
      v2[i] = vars[order[i]];
      o2[i] = ops[order[i]];
    }
    vars = std::move(v2);
    ops = std::move(o2);
  }

  size_t bi = 0;
  while (bi < vars.size()) {
    size_t be = bi + 1;
    while (be < vars.size() && ops[be] == ops[bi]) ++be;
    const VarOp op = ops[bi];

    // Surviving columns of this batch, in schema order.
    std::vector<VarId> kept_vars;
    std::vector<int>& kept_pos = cx.pos_a;
    kept_pos.clear();
    for (size_t p = 0; p < r.arity(); ++p) {
      const VarId v = r.schema().var(p);
      if (std::find(vars.begin() + bi, vars.begin() + be, v) ==
          vars.begin() + be) {
        kept_vars.push_back(v);
        kept_pos.push_back(static_cast<int>(p));
      }
    }

    internal::KeyOrderPerm(r, kept_pos, &cx.perm_a, &st);
    const size_t n = r.size();
    const size_t* perm = cx.perm_a.data();
    const Value* d = r.data().data();
    const size_t a = r.arity();
    Schema out_schema{std::move(kept_vars)};

    const int workers = PlannedWorkers(cx, n);
    if (workers > 1) {
      r = MorselRun<S>(
          cx, workers, std::move(out_schema), n,
          [&](size_t t) {
            return internal::CompareKeys(d + perm[t] * a, kept_pos,
                                         d + perm[t - 1] * a,
                                         kept_pos) != 0;
          },
          &st,
          [&](ExecContext& wc, size_t gb, size_t ge, RelationBuilder<S>* b) {
            internal::EliminateEmitRange(r, kept_pos, perm, op, gb, ge, b,
                                         &wc.row,
                                         &wc.eliminate.comparisons);
          });
      for (int w = 0; w < workers; ++w) {
        ExecContext& wc = cx.WorkerContext(w);
        st += wc.eliminate;
        wc.eliminate = OpStats{};
      }
    } else {
      RelationBuilder<S> b{std::move(out_schema)};
      internal::EliminateEmitRange(r, kept_pos, perm, op, 0, n, &b, &cx.row,
                                   &st.comparisons);
      r = b.Build();
    }
    bi = be;
  }
  st.rows_out += static_cast<int64_t>(r.size());
  return r;
}

/// Eliminates a single variable `v` with aggregate `op`: groups rows by the
/// remaining variables and folds annotations of each group with `op`. This is
/// one ⊕(i) application of Eq. (4).
template <CommutativeSemiring S>
Relation<S> EliminateVar(const Relation<S>& r, VarId v, VarOp op,
                         ExecContext* ctx = nullptr) {
  TOPOFAQ_CHECK_MSG(r.schema().Contains(v), "eliminated variable not in schema");
  return Eliminate(r, std::vector<VarId>{v}, std::vector<VarOp>{op}, ctx);
}

/// Intersection of two same-schema relations: tuples present (non-zero) in
/// both, annotations multiplied. A full-key sort-merge Join — linear with no
/// sort at all when both sides are canonical.
template <CommutativeSemiring S>
Relation<S> Intersect(const Relation<S>& a, const Relation<S>& b,
                      ExecContext* ctx = nullptr) {
  TOPOFAQ_CHECK_MSG(a.schema() == b.schema(), "intersection needs equal schemas");
  return Join(a, b, ctx);
}

/// The full relation [N]^arity × {1} on `schema` with domain [0, n) — used by
/// the TRIBES embeddings ("[N] × {1}" relations of Lemma 4.3). Enumerated in
/// lexicographic order, so the result is canonical with no sort.
template <CommutativeSemiring S>
Relation<S> FullRelation(const Schema& schema, uint64_t n) {
  RelationBuilder<S> b{schema};
  std::vector<Value> row(schema.arity(), 0);
  // Odometer enumeration of [n)^arity, last column fastest.
  while (true) {
    b.Append(row, S::One());
    size_t k = row.size();
    while (k > 0) {
      if (++row[k - 1] < n) break;
      row[k - 1] = 0;
      --k;
    }
    if (k == 0) break;
  }
  return b.Build();
}

}  // namespace topofaq

#endif  // TOPOFAQ_RELATION_OPS_H_
