// Per-column compressed encodings for the columnar relation storage.
//
// Two order-preserving encodings sit behind the ColumnView seam:
//
//   kDict  dictionary codes. The dictionary is the sorted distinct value
//          set, so code order == value order and code equality == value
//          equality. Chosen for skewed / low-cardinality columns.
//   kFor   frame of reference: each value is stored as the bit-packed
//          delta v - min(column). Order- and equality-preserving by
//          construction. Chosen for sorted leading key columns (and any
//          column whose value range is narrow).
//
// Codes are bit-packed little-endian into 64-bit words at a fixed width
// per column (width = ceil(log2(code_domain)), at least 1). The packed
// buffer is padded with one extra word so an unaligned code that straddles
// a word boundary can always be read with two word loads and a shift —
// no per-element bounds branch in the unpack loop.
//
// Because both encodings preserve order and equality *within a column*,
// operators may compare, group, and gallop over raw codes without
// decoding; only cross-column comparisons (join keys against another
// relation) and emission into a RelationBuilder decode, via At(). The
// scalar decode/compare/fold loops below are the dispatch seam: one
// kernel body in ops.h / multiway.cc instantiates against PlainAccess
// (raw Value loads, today's code paths, zero overhead) or EncodedAccess
// (ColView::At), so a later vectorized unpack only replaces these
// primitives.
#ifndef TOPOFAQ_RELATION_ENCODING_H_
#define TOPOFAQ_RELATION_ENCODING_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

// Vectorized unpack kernels are x86-only and runtime-dispatched: the
// generic scalar paths stay the portable fallback everywhere else.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TOPOFAQ_X86_SIMD 1
#include <immintrin.h>
#endif

#include "util/bits.h"
#include "util/check.h"
#include "util/types.h"

namespace topofaq {

enum class ColumnEncoding : uint8_t { kPlain = 0, kDict = 1, kFor = 2 };

/// How encode-on-canonicalize picks encodings. kAuto consults per-column
/// stats gathered during the Canonicalize gather pass; the forced modes
/// exist for tests and the TOPOFAQ_ENCODING CI matrix leg and encode every
/// column regardless of benefit (kForceDict falls back to kFor-free plain
/// only when a dictionary cannot be built at all, which never happens —
/// any column has a finite distinct set).
enum class EncodingMode : uint8_t { kAuto = 0, kPlain = 1, kForceDict = 2, kForceFor = 3 };

/// The TOPOFAQ_ENCODING default ("auto" | "plain"/"off" | "dict" | "for"),
/// resolved once. Defined in server/options.cc — the one file that reads
/// environment knobs (EngineOptions::FromEnv).
EncodingMode DefaultEncodingMode();

/// Process-global encoding mode. Starts at DefaultEncodingMode(); tests may
/// override it.
EncodingMode GlobalEncodingMode();
void SetGlobalEncodingMode(EncodingMode mode);

/// RAII test helper: force a mode for one scope, restore on exit.
class ScopedEncodingMode {
 public:
  explicit ScopedEncodingMode(EncodingMode mode) : prev_(GlobalEncodingMode()) {
    SetGlobalEncodingMode(mode);
  }
  ~ScopedEncodingMode() { SetGlobalEncodingMode(prev_); }
  ScopedEncodingMode(const ScopedEncodingMode&) = delete;
  ScopedEncodingMode& operator=(const ScopedEncodingMode&) = delete;

 private:
  EncodingMode prev_;
};

// ---------------------------------------------------------------------------
// Bit-packing primitives (the word-at-a-time unpack seam).

/// All-ones mask of `width` low bits, width in [1, 64].
inline uint64_t PackMask(int width) {
  return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

/// Number of 64-bit words needed for `rows` codes of `width` bits, plus one
/// padding word so the two-word straddle read in UnpackAt never runs past
/// the allocation.
inline size_t PackedWords(size_t rows, int width) {
  return static_cast<size_t>(
             CeilDiv(static_cast<int64_t>(rows) * width, 64)) +
         1;
}

/// Reads code `i` from a packed buffer. Relies on the +1 padding word.
///
/// For widths up to 57 a code at bit position b always lies inside the
/// 8 bytes starting at byte b/8 (b%8 + width <= 7 + 57 == 64), so on a
/// little-endian host one unaligned load + shift + mask reads it with no
/// word-straddle branch — the form the hot seek/scan loops compile to.
/// Wider codes fall back to the two-word assembly.
inline uint64_t UnpackAt(const uint64_t* words, size_t i, int width,
                         uint64_t mask) {
  const size_t bit = i * static_cast<size_t>(width);
  if (width <= 57) {
    uint64_t v;
    std::memcpy(&v, reinterpret_cast<const unsigned char*>(words) + (bit >> 3),
                sizeof v);
    return (v >> (bit & 7)) & mask;
  }
  const size_t w = bit >> 6;
  const int off = static_cast<int>(bit & 63);
  uint64_t v = words[w] >> off;
  if (off + width > 64) v |= words[w + 1] << (64 - off);
  return v & mask;
}

/// Writes code `v` (must fit `width` bits) at position `i`. The buffer must
/// be zero-initialised; codes are written at most once per position.
inline void PackAt(uint64_t* words, size_t i, int width, uint64_t v) {
  const size_t bit = i * static_cast<size_t>(width);
  const size_t w = bit >> 6;
  const int off = static_cast<int>(bit & 63);
  words[w] |= v << off;
  if (off + width > 64) words[w + 1] |= v >> (64 - off);
}

/// Unpacks codes [begin, end) into `out` (not decoded — raw codes). One
/// contiguous pass; the loop body is branch-free, which is what a SIMD
/// replacement would vectorize.
inline void UnpackRange(const uint64_t* words, size_t begin, size_t end,
                        int width, uint64_t* out) {
  const uint64_t mask = PackMask(width);
  if (width <= 57) {
    // Rolling bit cursor: one unaligned load + shift per code, no
    // positional multiply in the loop.
    const auto* bytes = reinterpret_cast<const unsigned char*>(words);
    size_t bit = begin * static_cast<size_t>(width);
    for (size_t i = begin; i < end; ++i, bit += static_cast<size_t>(width)) {
      uint64_t v;
      std::memcpy(&v, bytes + (bit >> 3), sizeof v);
      *out++ = (v >> (bit & 7)) & mask;
    }
    return;
  }
  for (size_t i = begin; i < end; ++i) *out++ = UnpackAt(words, i, width, mask);
}

// ---------------------------------------------------------------------------
// EncodedColumn: one compressed column.

/// Per-column stats gathered in one pass (piggybacked on the Canonicalize
/// gather loop) and consumed by the encoding policy. `run_heads` counts
/// adjacent-distinct positions (i == 0 or col[i] != col[i-1]); when it is
/// small the exact distinct set is recoverable from the run-head values
/// alone, so dictionary construction costs O(run_heads log run_heads)
/// instead of a full sort.
struct ColumnStats {
  Value min = 0;
  Value max = 0;
  size_t rows = 0;
  size_t run_heads = 0;

  static ColumnStats Of(std::span<const Value> col) {
    ColumnStats st;
    st.rows = col.size();
    if (col.empty()) return st;
    st.min = col[0];
    st.max = col[0];
    st.run_heads = 1;
    for (size_t i = 1; i < col.size(); ++i) {
      st.min = std::min(st.min, col[i]);
      st.max = std::max(st.max, col[i]);
      st.run_heads += col[i] != col[i - 1];
    }
    return st;
  }
};

/// A bit-packed column. Self-describing: holds everything needed to decode
/// (dictionary or FOR base plus width), so a sliced copy can travel in a
/// RelationPage and be decoded at the stream sink.
struct EncodedColumn {
  ColumnEncoding encoding = ColumnEncoding::kPlain;
  uint8_t width = 0;               // bits per packed code, 1..64
  Value base = 0;                  // kFor: frame of reference (column min)
  std::vector<Value> dict;         // kDict: sorted distinct values, code -> value
  std::vector<uint64_t> words;     // packed codes, PackedWords(rows, width)
  size_t rows = 0;

  uint64_t mask() const { return PackMask(width); }
  /// Number of distinct codes: dict size for kDict, range span for kFor.
  /// Codes are always < code_domain(); used for code-space directories.
  uint64_t code_domain() const {
    return encoding == ColumnEncoding::kDict
               ? static_cast<uint64_t>(dict.size())
               : mask() + (width >= 64 ? 0 : 1);
  }

  uint64_t CodeAt(size_t i) const {
    return UnpackAt(words.data(), i, width, mask());
  }
  Value Decode(uint64_t code) const {
    return encoding == ColumnEncoding::kDict ? dict[code] : base + code;
  }
  Value At(size_t i) const { return Decode(CodeAt(i)); }

  /// Calls `fn(row, value)` for every row in [begin, end), in order — the
  /// scan primitive operators fuse their per-row work into, so a fold or a
  /// block decode runs directly over the packed codes with no intermediate
  /// materialization. For widths up to 14 four consecutive codes always fit
  /// one 8-byte window ((bit % 8) + 4*width <= 7 + 56 < 64), so the scan
  /// amortizes one unaligned load over four independent shift+mask
  /// extractions; wider codes fall back to the rolling single-load cursor.
  template <typename Fn>
  void VisitValues(size_t begin, size_t end, Fn&& fn) const {
    if (encoding == ColumnEncoding::kDict) {
      VisitImpl(
          begin, end, [d = dict.data()](uint64_t c) { return d[c]; }, fn);
    } else {
      VisitImpl(
          begin, end, [b = base](uint64_t c) { return Value(b + c); }, fn);
    }
  }

  /// Decodes rows [begin, end) into `out`.
  void DecodeInto(size_t begin, size_t end, Value* out) const {
    VisitValues(begin, end, [&out](size_t, Value v) { *out++ = v; });
  }

  /// Fused scan fold Σ (3·value_i + annots_i) over [begin, end), mod 2^64 —
  /// the annotation-weighted column checksum the scan benches and the
  /// plain/encoded differential checks probe scan throughput with. Runs
  /// directly over the packed codes; on x86 with AVX2 the quad window is
  /// unpacked with one variable-shift per four lanes and folded in vector
  /// accumulators (dict codes resolve through a gathered table lookup),
  /// which is where packing the keys turns into scan *speed*, not just
  /// footprint. Scalar VisitValues fallback elsewhere.
  uint64_t ScanChecksum(size_t begin, size_t end,
                        const uint64_t* annots) const;

  /// VisitValues body, templated over the code->value map so the dict/FOR
  /// branch is hoisted out of the loops.
  template <typename Dec, typename Fn>
  void VisitImpl(size_t begin, size_t end, Dec dec, Fn& fn) const {
    const uint64_t m = mask();
    const size_t w = width;
    const auto* bytes = reinterpret_cast<const unsigned char*>(words.data());
    size_t i = begin;
    size_t bit = begin * w;
    if (w <= 14) {
      for (; i + 4 <= end; i += 4, bit += 4 * w) {
        uint64_t v;
        std::memcpy(&v, bytes + (bit >> 3), sizeof v);
        v >>= (bit & 7);
        fn(i, dec(v & m));
        fn(i + 1, dec((v >> w) & m));
        fn(i + 2, dec((v >> (2 * w)) & m));
        fn(i + 3, dec((v >> (3 * w)) & m));
      }
    }
    if (w <= 57) {
      for (; i < end; ++i, bit += w) {
        uint64_t v;
        std::memcpy(&v, bytes + (bit >> 3), sizeof v);
        fn(i, dec((v >> (bit & 7)) & m));
      }
      return;
    }
    for (; i < end; ++i) fn(i, dec(UnpackAt(words.data(), i, width, m)));
  }

  /// Smallest code c such that Decode(c) >= key — the code-space image of a
  /// value-space lower bound (valid because both encodings preserve order).
  /// May exceed every stored code (seek-past-end); callers compare codes as
  /// plain uint64_t so that case falls out naturally.
  uint64_t LowerCode(Value key) const {
    if (encoding == ColumnEncoding::kDict)
      return static_cast<uint64_t>(
          std::lower_bound(dict.begin(), dict.end(), key) - dict.begin());
    return key <= base ? 0 : key - base;
  }

  /// Smallest code c such that Decode(c) > key. Returns ~0ull when no code
  /// can exceed `key` (key at the top of the value domain); since width-64
  /// columns could legitimately hold code ~0ull, callers doing strict seeks
  /// must treat key == max-representable specially (TrieSeek does).
  uint64_t UpperCode(Value key) const {
    if (encoding == ColumnEncoding::kDict)
      return static_cast<uint64_t>(
          std::upper_bound(dict.begin(), dict.end(), key) - dict.begin());
    if (key < base) return 0;
    if (key == ~0ull) return ~0ull;  // top of the value domain
    return key - base + 1;
  }

  /// True bits on the wire for `n` codes of this column, excluding the
  /// dictionary table (shipped once per stream, accounted separately).
  size_t PayloadBits(size_t n) const { return n * width; }
  /// Bits for the dictionary table itself.
  size_t DictBits() const { return dict.size() * sizeof(Value) * 8; }
  /// Bytes this column pins in memory.
  size_t ResidentBytes() const {
    return words.size() * sizeof(uint64_t) + dict.size() * sizeof(Value);
  }

  /// Packs `col` as FOR deltas against `min`.
  static EncodedColumn For(std::span<const Value> col, Value min, Value max);
  /// Packs `col` as codes into the sorted dictionary `d` (must contain
  /// every value of `col`).
  static EncodedColumn Dict(std::span<const Value> col, std::vector<Value> d);
  /// Re-packs rows [begin, end) of `src` into a self-contained chunk that
  /// shares `src`'s code space (same width/base/dict). `ship_dict` controls
  /// whether the dictionary rides along (first page of a stream) or is
  /// elided (sink already cached it).
  static EncodedColumn Slice(const EncodedColumn& src, size_t begin,
                             size_t end, bool ship_dict);
};

#if defined(TOPOFAQ_X86_SIMD)
/// Cached CPUID probe for the vector unpack kernels.
inline bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

/// AVX2 body of EncodedColumn::ScanChecksum for widths <= 14: one scalar
/// 8-byte load covers four codes ((bit % 8) + 4·width <= 63), a per-lane
/// variable shift (vpsrlv) splits them into four 64-bit lanes, and the
/// 3·key + annot fold stays in vector accumulators end to end.
__attribute__((target("avx2"))) inline uint64_t ScanChecksumAvx2(
    const EncodedColumn& e, size_t begin, size_t end, const uint64_t* annots) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(e.words.data());
  const size_t w = e.width;
  const __m256i shifts =
      _mm256_set_epi64x(static_cast<long long>(3 * w),
                        static_cast<long long>(2 * w),
                        static_cast<long long>(w), 0);
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(e.mask()));
  const __m256i base = _mm256_set1_epi64x(static_cast<long long>(e.base));
  const bool isdict = e.encoding == ColumnEncoding::kDict;
  const auto* dict = reinterpret_cast<const long long*>(e.dict.data());
  __m256i acc = _mm256_setzero_si256();
  size_t i = begin;
  size_t bit = begin * w;
  for (; i + 4 <= end; i += 4, bit += 4 * w) {
    uint64_t v;
    std::memcpy(&v, bytes + (bit >> 3), sizeof v);
    v >>= (bit & 7);
    const __m256i codes = _mm256_and_si256(
        _mm256_srlv_epi64(_mm256_set1_epi64x(static_cast<long long>(v)),
                          shifts),
        mask);
    const __m256i keys = isdict ? _mm256_i64gather_epi64(dict, codes, 8)
                                : _mm256_add_epi64(codes, base);
    const __m256i ann =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(annots + i));
    const __m256i k3 = _mm256_add_epi64(keys, _mm256_slli_epi64(keys, 1));
    acc = _mm256_add_epi64(acc, _mm256_add_epi64(k3, ann));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t s = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < end; ++i) s += 3 * e.At(i) + annots[i];
  return s;
}
#endif  // TOPOFAQ_X86_SIMD

inline uint64_t EncodedColumn::ScanChecksum(size_t begin, size_t end,
                                            const uint64_t* annots) const {
#if defined(TOPOFAQ_X86_SIMD)
  if (width <= 14 && end - begin >= 8 && CpuHasAvx2())
    return ScanChecksumAvx2(*this, begin, end, annots);
#endif
  uint64_t s = 0;
  VisitValues(begin, end, [&](size_t i, Value v) { s += 3 * v + annots[i]; });
  return s;
}

/// Sequential packed-code reader: a rolling bit cursor over an
/// EncodedColumn — one unaligned load + shift per code, no positional
/// multiply, no dependent chain between rows. Only valid for widths the
/// single-load fast path covers (see UnpackAt); callers check Eligible()
/// and fall back to positional CodeAt for wider codes.
struct PackedCursor {
  const unsigned char* bytes;
  size_t bit;
  size_t width;
  uint64_t mask;

  static bool Eligible(const EncodedColumn& e) { return e.width <= 57; }

  PackedCursor(const EncodedColumn& e, size_t row)
      : bytes(reinterpret_cast<const unsigned char*>(e.words.data())),
        bit(row * static_cast<size_t>(e.width)),
        width(e.width),
        mask(e.mask()) {}

  /// Reads the code under the cursor and advances one row.
  uint64_t Next() {
    uint64_t v;
    std::memcpy(&v, bytes + (bit >> 3), sizeof v);
    const uint64_t code = (v >> (bit & 7)) & mask;
    bit += width;
    return code;
  }
};

/// Encode-on-canonicalize policy. Returns the chosen encoding for one
/// column, or a kPlain-tagged (empty) EncodedColumn when the column should
/// stay as raw values. `leading` marks the relation's first schema column,
/// which is globally sorted in canonical order and therefore the designated
/// FOR target; other columns prefer dictionaries.
EncodedColumn ChooseAndEncode(std::span<const Value> col,
                              const ColumnStats& st, EncodingMode mode,
                              bool leading);

/// Auto-mode thresholds, shared with tests. Columns shorter than
/// kEncodeMinRows stay plain (encoding set-up cost dominates); a candidate
/// encoding must at least halve the payload to be chosen.
inline constexpr size_t kEncodeMinRows = 4096;
inline constexpr size_t kDictMaxEntries = 1u << 16;

// ---------------------------------------------------------------------------
// ColView: the unified column view behind which operators run.

/// A read-only view of one column (or a row range of it) that is either a
/// raw Value pointer or an EncodedColumn plus offset. `At` is the single
/// scalar decode primitive the encoded kernel instantiations go through.
struct ColView {
  const Value* plain = nullptr;      // non-null iff the column is plain
  const EncodedColumn* enc = nullptr;
  size_t offset = 0;                 // row offset of this view into enc

  bool encoded() const { return enc != nullptr; }

  Value At(size_t i) const {
    return plain != nullptr ? plain[i] : enc->At(offset + i);
  }
  uint64_t CodeAt(size_t i) const {
    return plain != nullptr ? plain[i] : enc->CodeAt(offset + i);
  }
  /// Same-column equality without decoding: codes are injective per column.
  bool EqualAt(size_t i, size_t j) const {
    return plain != nullptr ? plain[i] == plain[j]
                            : enc->CodeAt(offset + i) == enc->CodeAt(offset + j);
  }
  /// Same-column ordered compare without decoding: both encodings preserve
  /// value order within a column.
  int CompareAt(size_t i, size_t j) const {
    uint64_t a, b;
    if (plain != nullptr) {
      a = plain[i];
      b = plain[j];
    } else {
      a = enc->CodeAt(offset + i);
      b = enc->CodeAt(offset + j);
    }
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  ColView Sub(size_t begin) const {
    if (plain != nullptr) return ColView{plain + begin, nullptr, 0};
    return ColView{nullptr, enc, offset + begin};
  }
};

// ---------------------------------------------------------------------------
// Access policies: the one-kernel-body dispatch seam used by ops.h.

/// Raw columnar access — compiles to exactly the pre-encoding loads, so the
/// plain instantiation of every kernel keeps its current codegen.
struct PlainAccess {
  using Col = const Value*;
  static Value At(Col c, size_t i) { return c[i]; }
  static bool EqualAt(Col c, size_t i, size_t j) { return c[i] == c[j]; }
  static int CompareAt(Col c, size_t i, size_t j) {
    return c[i] < c[j] ? -1 : (c[i] > c[j] ? 1 : 0);
  }
};

/// View access — decodes on the fly; same kernel bodies, encoded columns.
struct EncodedAccess {
  using Col = ColView;
  static Value At(const Col& c, size_t i) { return c.At(i); }
  static bool EqualAt(const Col& c, size_t i, size_t j) {
    return c.EqualAt(i, j);
  }
  static int CompareAt(const Col& c, size_t i, size_t j) {
    return c.CompareAt(i, j);
  }
};

}  // namespace topofaq

#endif  // TOPOFAQ_RELATION_ENCODING_H_
