#include "relation/exec.h"

#include "obs/op_format.h"

// DefaultParallelism() is defined in server/options.cc: every environment
// knob (TOPOFAQ_PARALLELISM included) is read and parsed in that one file.

namespace topofaq {

OpStats ExecContext::Totals() const {
  OpStats t;
  t += join;
  t += semijoin;
  t += project;
  t += eliminate;
  t += multiway;
  return t;
}

void ExecContext::ResetStats() {
  join = OpStats{};
  semijoin = OpStats{};
  project = OpStats{};
  eliminate = OpStats{};
  multiway = OpStats{};
}

ExecContext& ExecContext::WorkerContext(int i) {
  while (workers_.size() <= static_cast<size_t>(i)) {
    auto ctx = std::make_unique<ExecContext>();
    ctx->parallelism = 1;  // workers never fan out again
    workers_.push_back(std::move(ctx));
  }
  // Workers observe the owner's current cancel token and trace session
  // (either may be installed after the arena was first materialized, or
  // swapped between queries when an engine reuses a context). Worker i's
  // spans get their own per-thread track, registered once per session; the
  // fork/join contract (worker i touched only by one thread per region)
  // makes this lazy registration race-free.
  ExecContext& w = *workers_[static_cast<size_t>(i)];
  w.cancel = cancel;
  if (w.trace != trace || w.trace_epoch != trace_epoch) {
    w.trace = trace;
    w.trace_epoch = trace_epoch;
    w.trace_track =
        trace != nullptr
            ? trace->RegisterTrack("worker " + std::to_string(i))
            : 0;
  }
  return w;
}

std::string ExecContext::DebugString() const {
  std::string out;
  out += obs::FormatOpStats("join", join);
  out += obs::FormatOpStats("semijoin", semijoin);
  out += obs::FormatOpStats("project", project);
  out += obs::FormatOpStats("eliminate", eliminate);
  out += obs::FormatOpStats("multiway", multiway);
  return out;
}

ExecContext& ExecContext::Resolve(ExecContext* ctx) {
  if (ctx != nullptr) return *ctx;
  thread_local ExecContext default_ctx;
  return default_ctx;
}

}  // namespace topofaq
