#include "relation/exec.h"

#include <cstdio>

namespace topofaq {

OpStats ExecContext::Totals() const {
  OpStats t;
  t += join;
  t += semijoin;
  t += project;
  t += eliminate;
  return t;
}

void ExecContext::ResetStats() {
  join = OpStats{};
  semijoin = OpStats{};
  project = OpStats{};
  eliminate = OpStats{};
}

namespace {

void AppendOp(std::string* out, const char* name, const OpStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s: calls=%lld in=%lld out=%lld cmp=%lld sorts=%lld "
                "skips=%lld\n",
                name, static_cast<long long>(s.calls),
                static_cast<long long>(s.rows_in),
                static_cast<long long>(s.rows_out),
                static_cast<long long>(s.comparisons),
                static_cast<long long>(s.sorts),
                static_cast<long long>(s.sort_skips));
  *out += buf;
}

}  // namespace

std::string ExecContext::DebugString() const {
  std::string out;
  AppendOp(&out, "join", join);
  AppendOp(&out, "semijoin", semijoin);
  AppendOp(&out, "project", project);
  AppendOp(&out, "eliminate", eliminate);
  return out;
}

ExecContext& ExecContext::Resolve(ExecContext* ctx) {
  if (ctx != nullptr) return *ctx;
  thread_local ExecContext default_ctx;
  return default_ctx;
}

}  // namespace topofaq
