#include "relation/exec.h"

#include <cstdio>

// DefaultParallelism() is defined in server/options.cc: every environment
// knob (TOPOFAQ_PARALLELISM included) is read and parsed in that one file.

namespace topofaq {

OpStats ExecContext::Totals() const {
  OpStats t;
  t += join;
  t += semijoin;
  t += project;
  t += eliminate;
  t += multiway;
  return t;
}

void ExecContext::ResetStats() {
  join = OpStats{};
  semijoin = OpStats{};
  project = OpStats{};
  eliminate = OpStats{};
  multiway = OpStats{};
}

ExecContext& ExecContext::WorkerContext(int i) {
  while (workers_.size() <= static_cast<size_t>(i)) {
    auto ctx = std::make_unique<ExecContext>();
    ctx->parallelism = 1;  // workers never fan out again
    workers_.push_back(std::move(ctx));
  }
  // Workers observe the owner's current cancel token (it may be installed
  // after the arena was first materialized, or swapped between queries when
  // an engine reuses a context).
  workers_[static_cast<size_t>(i)]->cancel = cancel;
  return *workers_[static_cast<size_t>(i)];
}

namespace {

void AppendOp(std::string* out, const char* name, const OpStats& s) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "%s: calls=%lld in=%lld out=%lld cmp=%lld sorts=%lld "
                "skips=%lld morsels=%lld seeks=%lld peak=%lld "
                "simd=%lld scalar_fb=%lld\n",
                name, static_cast<long long>(s.calls),
                static_cast<long long>(s.rows_in),
                static_cast<long long>(s.rows_out),
                static_cast<long long>(s.comparisons),
                static_cast<long long>(s.sorts),
                static_cast<long long>(s.sort_skips),
                static_cast<long long>(s.morsels),
                static_cast<long long>(s.seeks),
                static_cast<long long>(s.peak_rows),
                static_cast<long long>(s.simd_blocks),
                static_cast<long long>(s.scalar_fallbacks));
  *out += buf;
}

}  // namespace

std::string ExecContext::DebugString() const {
  std::string out;
  AppendOp(&out, "join", join);
  AppendOp(&out, "semijoin", semijoin);
  AppendOp(&out, "project", project);
  AppendOp(&out, "eliminate", eliminate);
  AppendOp(&out, "multiway", multiway);
  return out;
}

ExecContext& ExecContext::Resolve(ExecContext* ctx) {
  if (ctx != nullptr) return *ctx;
  thread_local ExecContext default_ctx;
  return default_ctx;
}

}  // namespace topofaq
