#include "relation/exec.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace topofaq {

int DefaultParallelism() {
  static const int v = [] {
    const char* env = std::getenv("TOPOFAQ_PARALLELISM");
    if (env == nullptr || *env == '\0') return 1;
    const int hw =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    if (std::strcmp(env, "max") == 0) return hw;
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || n < 0) return 1;  // invalid → serial
    if (n == 0) return hw;  // "0" = use every core, like "max"
    return static_cast<int>(std::min<long>(n, 1024));
  }();
  return v;
}

OpStats ExecContext::Totals() const {
  OpStats t;
  t += join;
  t += semijoin;
  t += project;
  t += eliminate;
  t += multiway;
  return t;
}

void ExecContext::ResetStats() {
  join = OpStats{};
  semijoin = OpStats{};
  project = OpStats{};
  eliminate = OpStats{};
  multiway = OpStats{};
}

ExecContext& ExecContext::WorkerContext(int i) {
  while (workers_.size() <= static_cast<size_t>(i)) {
    auto ctx = std::make_unique<ExecContext>();
    ctx->parallelism = 1;  // workers never fan out again
    workers_.push_back(std::move(ctx));
  }
  return *workers_[static_cast<size_t>(i)];
}

namespace {

void AppendOp(std::string* out, const char* name, const OpStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s: calls=%lld in=%lld out=%lld cmp=%lld sorts=%lld "
                "skips=%lld morsels=%lld seeks=%lld peak=%lld\n",
                name, static_cast<long long>(s.calls),
                static_cast<long long>(s.rows_in),
                static_cast<long long>(s.rows_out),
                static_cast<long long>(s.comparisons),
                static_cast<long long>(s.sorts),
                static_cast<long long>(s.sort_skips),
                static_cast<long long>(s.morsels),
                static_cast<long long>(s.seeks),
                static_cast<long long>(s.peak_rows));
  *out += buf;
}

}  // namespace

std::string ExecContext::DebugString() const {
  std::string out;
  AppendOp(&out, "join", join);
  AppendOp(&out, "semijoin", semijoin);
  AppendOp(&out, "project", project);
  AppendOp(&out, "eliminate", eliminate);
  AppendOp(&out, "multiway", multiway);
  return out;
}

ExecContext& ExecContext::Resolve(ExecContext* ctx) {
  if (ctx != nullptr) return *ctx;
  thread_local ExecContext default_ctx;
  return default_ctx;
}

}  // namespace topofaq
