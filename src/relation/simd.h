// SIMD kernels for sorted-key work (docs/kernel.md, "SIMD intersection
// layer").
//
// Every hot cross-relation loop in the kernel — the leapfrog frontier of the
// multiway join, the sort-merge Join/Semijoin advance loops, the closing
// window of a galloping seek — is a scan over one or two *sorted* contiguous
// arrays. This header is the one kernel library those loops call into:
// block-wise lower bound, merge advance, pairwise frontier intersection with
// shuffle-based compaction, and a vectorized window decode that unpacks
// dict/FOR code spaces (encoding.h) straight into flat 32- or 64-bit lanes.
//
// Dispatch rules:
//   - Each kernel has a scalar body (the reference semantics, compiled
//     everywhere) and an AVX2 body (x86 only, `target("avx2")` functions
//     selected at runtime via CpuHasAvx2()). The AVX2 body is *guaranteed
//     equivalent*: same return value for every input, enforced by the
//     differential fuzz in tests/simd_kernel_test.cc.
//   - `simd::Available()` gates every vector path: CPU support AND the
//     process-wide toggle below. `TOPOFAQ_SIMD=off` (parsed in
//     server/options.cc through EngineOptions::FromEnv) forces the scalar
//     bodies end to end — the escape hatch for non-AVX2 hosts and for
//     bit-identity differential runs.
//   - Callers thread OpStats counters through the nullable counter
//     arguments: `simd_blocks` counts vector blocks retired, and callers
//     bump `scalar_fallbacks` when a loop that could vectorize ran the
//     scalar body instead (toggle off, unsupported CPU, or an ineligible
//     column shape).
//
// Code-space contract: codes from different columns are never compared —
// cross-relation intersection always runs on decoded *values*. What the
// SIMD layer adds is (a) vectorized decode of small windows (DecodeWindow*)
// so encoded iterators intersect over flat lanes, and (b) a narrow u32 lane
// mode: when every value of an encoded column fits 32 bits (FitsU32 — the
// common case for dictionary/FOR columns, whose whole point is a small
// domain), windows decode to uint32_t and the frontier runs 8 lanes per
// vector instead of 4. Plain columns stay u64 (no narrowing copy is ever
// made for them); the asymmetry is why the compressed path can *beat* plain
// on intersection-heavy shapes instead of merely keeping up.
#ifndef TOPOFAQ_RELATION_SIMD_H_
#define TOPOFAQ_RELATION_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "relation/encoding.h"
#include "util/types.h"

namespace topofaq {

/// The TOPOFAQ_SIMD default ("on"/"auto"/unset = vector kernels allowed,
/// "off"/"0" = forced scalar), resolved once. Defined in server/options.cc —
/// the one file that reads environment knobs (EngineOptions::FromEnv).
bool DefaultSimdEnabled();

/// Process-global SIMD toggle. Starts at DefaultSimdEnabled(); the engine
/// installs its EngineOptions::simd on construction, tests may override.
bool SimdEnabled();
void SetSimdEnabled(bool on);

/// RAII test helper: force the toggle for one scope, restore on exit.
class ScopedSimdMode {
 public:
  explicit ScopedSimdMode(bool on) : prev_(SimdEnabled()) { SetSimdEnabled(on); }
  ~ScopedSimdMode() { SetSimdEnabled(prev_); }
  ScopedSimdMode(const ScopedSimdMode&) = delete;
  ScopedSimdMode& operator=(const ScopedSimdMode&) = delete;

 private:
  bool prev_;
};

namespace simd {

/// True iff the vector bodies may run: toggle on and the CPU has AVX2.
inline bool Available() {
#if defined(TOPOFAQ_X86_SIMD)
  return SimdEnabled() && CpuHasAvx2();
#else
  return false;
#endif
}

/// First index in [lo, hi) with a[t] >= key (strict: > key) — the closing
/// window of a galloping seek, as one branchless block count instead of a
/// chain of dependent binary-search probes. Intended for cache-resident
/// windows (a gallop's final stride, a decoded window); cost is linear in
/// hi - lo.
size_t LowerBoundU64(const Value* a, size_t lo, size_t hi, Value key,
                     bool strict, int64_t* blocks);
size_t LowerBoundU32(const uint32_t* a, size_t lo, size_t hi, uint32_t key,
                     bool strict, int64_t* blocks);

/// The merge-compare primitive: first index t in [i, n) with a[t] >= key
/// (strict: > key), by forward block scan — the vector form of the
/// sort-merge `while (a[j] < key) ++j;` advance, same linear asymptotics,
/// 4 lanes per probe.
size_t AdvanceU64(const Value* a, size_t i, size_t n, Value key, bool strict,
                  int64_t* blocks);

/// One leapfrog frontier step between two sorted ranges.
struct Frontier {
  enum Kind {
    kMatch,      ///< a[i] == b[j]: the next common key, leftmost occurrences
    kExhausted,  ///< one side ran out (i == an or j == bn): the intersection
                 ///< is complete. The other side's position is unspecified —
                 ///< the vector body may retire a whole trailing block the
                 ///< scalar walk would have entered — so callers must treat
                 ///< kExhausted as a pure stop signal.
    kSeekA,      ///< block budget spent with a lagging: far-seek a to b[j]
    kSeekB,      ///< block budget spent with b lagging: far-seek b to a[i]
  };
  size_t i, j;
  Kind kind;
};

/// Advances (i, j) to the leftmost pair with a[i] == b[j], scanning at most
/// `max_blocks` vector blocks per call. The block scan is the dense-overlap
/// fast path; when the budget runs out the caller falls back to its far-seek
/// machinery (dense directories / sampled gallops), which preserves the
/// leapfrog complexity bound on sparse intersections. kMatch results are
/// positionally equal to the scalar two-pointer walk; see Frontier::Kind for
/// the kExhausted position caveat.
Frontier NextMatchU64(const Value* a, size_t i, size_t an, const Value* b,
                      size_t j, size_t bn, size_t max_blocks, int64_t* blocks);
Frontier NextMatchU32(const uint32_t* a, size_t i, size_t an,
                      const uint32_t* b, size_t j, size_t bn,
                      size_t max_blocks, int64_t* blocks);

/// Full pairwise sorted-set intersection with shuffle-based compaction:
/// writes, in order, the value of every a-position whose value occurs in b
/// (so duplicated a values emit once per a-position — semijoin
/// multiplicity). `out` must have room for an entries. Returns the count.
size_t IntersectU64(const Value* a, size_t an, const Value* b, size_t bn,
                    Value* out, int64_t* blocks);
size_t IntersectU32(const uint32_t* a, size_t an, const uint32_t* b,
                    size_t bn, uint32_t* out, int64_t* blocks);

// Scalar reference twins: always the scalar body, regardless of toggle or
// CPU — the differential oracle for tests/simd_kernel_test.cc and the
// scalar leg of bench_intersect.
size_t ScalarLowerBoundU64(const Value* a, size_t lo, size_t hi, Value key,
                           bool strict);
size_t ScalarLowerBoundU32(const uint32_t* a, size_t lo, size_t hi,
                           uint32_t key, bool strict);
size_t ScalarAdvanceU64(const Value* a, size_t i, size_t n, Value key,
                        bool strict);
Frontier ScalarNextMatchU64(const Value* a, size_t i, size_t an,
                            const Value* b, size_t j, size_t bn,
                            size_t max_blocks);
Frontier ScalarNextMatchU32(const uint32_t* a, size_t i, size_t an,
                            const uint32_t* b, size_t j, size_t bn,
                            size_t max_blocks);
size_t ScalarIntersectU64(const Value* a, size_t an, const Value* b,
                          size_t bn, Value* out);
size_t ScalarIntersectU32(const uint32_t* a, size_t an, const uint32_t* b,
                          size_t bn, uint32_t* out);

/// True iff every decoded value of `e` fits uint32_t, so windows of it may
/// decode into the narrow u32 lane mode.
inline bool FitsU32(const EncodedColumn& e) {
  if (e.encoding == ColumnEncoding::kDict)
    return e.dict.empty() || e.dict.back() <= UINT32_MAX;
  // kFor: max decoded value is base + mask() — checked without overflow.
  return e.mask() <= UINT32_MAX && e.base <= UINT32_MAX - e.mask();
}

/// Decodes rows [begin, end) of `e` into flat lanes — the vectorized form
/// of EncodedColumn::DecodeInto (quad-window unpack + gathered dict lookup
/// for widths <= 14; scalar VisitValues fallback for wider codes or scalar
/// mode). The u32 form requires FitsU32(e).
void DecodeWindowU64(const EncodedColumn& e, size_t begin, size_t end,
                     Value* out, int64_t* blocks);
void DecodeWindowU32(const EncodedColumn& e, size_t begin, size_t end,
                     uint32_t* out, int64_t* blocks);

}  // namespace simd
}  // namespace topofaq

#endif  // TOPOFAQ_RELATION_SIMD_H_
