// The seed hash-based relational operators, retained as the *reference
// implementation* for the sorted-relation kernel in ops.h: differential
// tests cross-check the sort-merge operators against these on randomized
// inputs, and bench_relation_ops reports kernel speedup relative to them.
// Row-at-a-time on purpose — rows are gathered through RowCursor (the
// columnar escape hatch), preserving the seed kernel's hash-and-gather
// access pattern as the baseline the benches normalize against. Not used on
// any production path.
#ifndef TOPOFAQ_RELATION_REFERENCE_OPS_H_
#define TOPOFAQ_RELATION_REFERENCE_OPS_H_

#include <unordered_map>
#include <vector>

#include "relation/relation.h"
#include "semiring/variable_ops.h"

namespace topofaq {
namespace reference {

namespace internal {

/// FNV-1a over a key tuple.
inline uint64_t HashKey(std::span<const Value> key) {
  uint64_t h = 1469598103934665603ULL;
  for (Value v : key) {
    h ^= v;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Extracts row `row` of the cursor's columns into `out`.
inline void Gather(const RowCursor& cur, size_t row, std::vector<Value>* out) {
  out->resize(cur.width());
  cur.Gather(row, out->data());
}

/// Groups rows of `r` by the named key positions. Returns map hash→row ids;
/// collisions resolved by the caller re-checking key equality.
template <CommutativeSemiring S>
std::unordered_multimap<uint64_t, size_t> BuildHashIndex(
    const Relation<S>& r, const std::vector<int>& key_positions) {
  std::unordered_multimap<uint64_t, size_t> index;
  index.reserve(r.size() * 2);
  const RowCursor keys(r, key_positions);
  std::vector<Value> key;
  for (size_t i = 0; i < r.size(); ++i) {
    Gather(keys, i, &key);
    index.emplace(HashKey(key), i);
  }
  return index;
}

}  // namespace internal

/// Hash natural join: output schema is left's variables followed by right's
/// non-shared variables; annotations multiply (⊗). Output is canonicalized.
template <CommutativeSemiring S>
Relation<S> Join(const Relation<S>& left, const Relation<S>& right) {
  const std::vector<VarId> shared = left.schema().SharedWith(right.schema());
  std::vector<int> lpos, rpos, rextra;
  for (VarId v : shared) {
    lpos.push_back(left.schema().PositionOf(v));
    rpos.push_back(right.schema().PositionOf(v));
  }
  std::vector<VarId> out_vars = left.schema().vars();
  for (size_t i = 0; i < right.arity(); ++i)
    if (!left.schema().Contains(right.schema().var(i))) {
      out_vars.push_back(right.schema().var(i));
      rextra.push_back(static_cast<int>(i));
    }

  Relation<S> out{Schema(out_vars)};
  auto index = internal::BuildHashIndex(right, rpos);
  const RowCursor lkeys(left, lpos);
  const RowCursor lall(left);
  const RowCursor rkeys(right, rpos);
  const RowCursor rex(right, rextra);
  std::vector<Value> key, rkey, row;
  for (size_t i = 0; i < left.size(); ++i) {
    internal::Gather(lkeys, i, &key);
    auto [lo, hi] = index.equal_range(internal::HashKey(key));
    for (auto it = lo; it != hi; ++it) {
      const size_t j = it->second;
      internal::Gather(rkeys, j, &rkey);
      if (rkey != key) continue;
      row.resize(left.arity() + rextra.size());
      lall.Gather(i, row.data());
      rex.Gather(j, row.data() + left.arity());
      out.Add(row, S::Multiply(left.annot(i), right.annot(j)));
    }
  }
  out.Canonicalize();
  return out;
}

/// Hash semijoin left ⋉ right (Definition 3.5 semantics).
template <CommutativeSemiring S>
Relation<S> Semijoin(const Relation<S>& left, const Relation<S>& right) {
  const std::vector<VarId> shared = left.schema().SharedWith(right.schema());
  std::vector<int> lpos, rpos;
  for (VarId v : shared) {
    lpos.push_back(left.schema().PositionOf(v));
    rpos.push_back(right.schema().PositionOf(v));
  }
  auto index = internal::BuildHashIndex(right, rpos);
  Relation<S> out{left.schema()};
  const RowCursor lkeys(left, lpos);
  const RowCursor lall(left);
  const RowCursor rkeys(right, rpos);
  std::vector<Value> key, rkey, row;
  for (size_t i = 0; i < left.size(); ++i) {
    internal::Gather(lkeys, i, &key);
    auto [lo, hi] = index.equal_range(internal::HashKey(key));
    bool matched = false;
    for (auto it = lo; it != hi && !matched; ++it) {
      internal::Gather(rkeys, it->second, &rkey);
      matched = (rkey == key);
    }
    if (matched) {
      internal::Gather(lall, i, &row);
      out.Add(row, left.annot(i));
    }
  }
  out.Canonicalize();
  return out;
}

/// π with ⊕-aggregation via hashing.
template <CommutativeSemiring S>
Relation<S> Project(const Relation<S>& r, const std::vector<VarId>& keep) {
  std::vector<int> pos;
  for (VarId v : keep) {
    int p = r.schema().PositionOf(v);
    TOPOFAQ_CHECK_MSG(p >= 0, "projection variable not in schema");
    pos.push_back(p);
  }
  Relation<S> out{Schema(keep)};
  const RowCursor kept(r, pos);
  std::vector<Value> row;
  for (size_t i = 0; i < r.size(); ++i) {
    internal::Gather(kept, i, &row);
    out.Add(row, r.annot(i));
  }
  out.Canonicalize();
  return out;
}

/// Single-variable elimination via hash grouping.
template <CommutativeSemiring S>
Relation<S> EliminateVar(const Relation<S>& r, VarId v, VarOp op) {
  TOPOFAQ_CHECK_MSG(r.schema().Contains(v), "eliminated variable not in schema");
  std::vector<VarId> keep;
  std::vector<int> pos;
  for (size_t i = 0; i < r.arity(); ++i)
    if (r.schema().var(i) != v) {
      keep.push_back(r.schema().var(i));
      pos.push_back(static_cast<int>(i));
    }
  // Group rows by the kept columns.
  struct Group {
    std::vector<Value> key;
    typename S::Value acc;
    bool init = false;
  };
  std::unordered_map<uint64_t, std::vector<Group>> groups;
  const RowCursor kept(r, pos);
  std::vector<Value> key;
  for (size_t i = 0; i < r.size(); ++i) {
    internal::Gather(kept, i, &key);
    auto& bucket = groups[internal::HashKey(key)];
    Group* g = nullptr;
    for (auto& cand : bucket)
      if (cand.key == key) {
        g = &cand;
        break;
      }
    if (g == nullptr) {
      bucket.push_back(Group{key, S::Zero(), false});
      g = &bucket.back();
    }
    if (!g->init) {
      g->acc = r.annot(i);
      g->init = true;
    } else {
      g->acc = ApplyVarOp<S>(op, g->acc, r.annot(i));
    }
  }
  Relation<S> out{Schema(keep)};
  for (auto& [h, bucket] : groups)
    for (auto& g : bucket) out.Add(g.key, g.acc);
  out.Canonicalize();
  return out;
}

}  // namespace reference
}  // namespace topofaq

#endif  // TOPOFAQ_RELATION_REFERENCE_OPS_H_
