// Semiring-annotated relations in *listing representation*: a function
// f_e : ∏_{v∈e} Dom(v) → D is stored as the list of its tuples with non-zero
// value, R_e = {(y, f_e(y)) : f_e(y) ≠ 0} — exactly the input representation
// assumed by the paper (Section 1).
//
// Storage is columnar (struct-of-arrays): one contiguous `std::vector<Value>`
// per schema column plus the parallel annotation column. Operators never see
// a row stride — they traverse typed column views (`ColumnView`, `RowCursor`)
// over exactly the columns they touch, so a key comparison or a trie seek
// reads only the cache lines of the key columns (docs/kernel.md, "Columnar
// storage"). `MaterializeRows()` is the row-major escape hatch kept for
// layout-differential tests and debugging.
//
// Canonical-order invariant (docs/kernel.md): a relation is *canonical* when
// its rows are sorted lexicographically in schema-column order, tuples are
// distinct, and no annotation is semiring zero. Canonical relations compare
// pointwise-equal functions as per-column bit-equal arrays, and the
// sort-merge operators in ops.h exploit the ordering to skip sorting entirely
// on shared-key-prefix inputs. The `canonical()` flag tracks the invariant;
// RelationBuilder is the sanctioned way for operators to produce sorted
// output directly.
#ifndef TOPOFAQ_RELATION_RELATION_H_
#define TOPOFAQ_RELATION_RELATION_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "relation/encoding.h"
#include "semiring/semiring.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/types.h"

namespace topofaq {

class ExecContext;  // exec.h; relation.h stays include-free of the kernel seams

/// An ordered list of distinct variables naming a relation's columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<VarId> vars) : vars_(std::move(vars)) {
    // Sort-based duplicate detection: O(n log n) instead of the quadratic
    // pairwise scan.
    std::vector<VarId> sorted = vars_;
    std::sort(sorted.begin(), sorted.end());
    TOPOFAQ_CHECK_MSG(
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "duplicate variable in schema");
  }

  size_t arity() const { return vars_.size(); }
  const std::vector<VarId>& vars() const { return vars_; }
  VarId var(size_t i) const { return vars_[i]; }

  /// Position of `v` in this schema, or -1 if absent. Linear; operators that
  /// look up many variables should build a SchemaIndex once instead.
  int PositionOf(VarId v) const {
    for (size_t i = 0; i < vars_.size(); ++i)
      if (vars_[i] == v) return static_cast<int>(i);
    return -1;
  }
  bool Contains(VarId v) const { return PositionOf(v) >= 0; }

  /// Variables present in both schemas, in this schema's order.
  std::vector<VarId> SharedWith(const Schema& other) const {
    std::vector<VarId> out;
    for (VarId v : vars_)
      if (other.Contains(v)) out.push_back(v);
    return out;
  }

  bool operator==(const Schema& other) const { return vars_ == other.vars_; }

 private:
  std::vector<VarId> vars_;
};

/// Precomputed position map for a schema: build once per operator call, then
/// answer PositionOf in O(log arity) instead of O(arity) per lookup.
class SchemaIndex {
 public:
  explicit SchemaIndex(const Schema& s) {
    pairs_.reserve(s.arity());
    for (size_t i = 0; i < s.arity(); ++i)
      pairs_.emplace_back(s.var(i), static_cast<int>(i));
    std::sort(pairs_.begin(), pairs_.end());
  }

  int PositionOf(VarId v) const {
    auto it = std::lower_bound(
        pairs_.begin(), pairs_.end(), v,
        [](const std::pair<VarId, int>& p, VarId x) { return p.first < x; });
    return (it != pairs_.end() && it->first == v) ? it->second : -1;
  }
  bool Contains(VarId v) const { return PositionOf(v) >= 0; }

 private:
  std::vector<std::pair<VarId, int>> pairs_;
};

/// A borrowed, read-only view of one column: contiguous row values.
using ColumnView = std::span<const Value>;

template <CommutativeSemiring S>
class RelationBuilder;

namespace detail {

/// Compacts parallel column/annotation arrays that are already sorted and
/// distinct by dropping zero-annotated rows in place (merge cancellation,
/// e.g. GF2). The single certification pass shared by
/// RelationBuilder::Build's sorted path, Relation::ConcatPieces, and
/// Relation::Compact. A no-op (and no writes at all) when nothing is zero.
template <CommutativeSemiring S>
void CompactSortedColumns(std::vector<std::vector<Value>>* cols,
                          std::vector<typename S::Value>* annots) {
  std::vector<typename S::Value>& an = *annots;
  size_t w = 0;
  while (w < an.size() && !S::IsZero(an[w])) ++w;
  if (w == an.size()) return;  // common case: nothing to drop
  size_t out = w;
  for (size_t i = w + 1; i < an.size(); ++i) {
    if (S::IsZero(an[i])) continue;
    an[out] = an[i];
    for (std::vector<Value>& c : *cols) c[out] = c[i];
    ++out;
  }
  an.resize(out);
  for (std::vector<Value>& c : *cols) c.resize(out);
}

/// Fills `perm` (resized to the row count) with the lexicographic row order
/// of the column arrays `cols`, ties broken by row id — a *total* order, so
/// the sorted permutation is unique and every downstream duplicate-merge ⊕
/// folds in a deterministic association. When the ambient context (`ctx`,
/// or the thread-local default for nullptr) has parallelism > 1 and the
/// input is large, sort morsels run on the WorkerPool and merge pairwise —
/// bit-identical to the serial sort by totality. Defined in relation.cc.
void SortRowPerm(const std::vector<std::vector<Value>>& cols, size_t rows,
                 std::vector<size_t>* perm, ExecContext* ctx);

}  // namespace detail

/// A relation annotated with values from semiring S. Column-major: column j
/// of the rows lives in its own contiguous array, parallel to the
/// annotation column.
template <CommutativeSemiring S>
class Relation {
 public:
  using SemiringValue = typename S::Value;

  Relation() = default;
  explicit Relation(Schema schema)
      : schema_(std::move(schema)), cols_(schema_.arity()) {}

  const Schema& schema() const { return schema_; }
  size_t arity() const { return schema_.arity(); }
  size_t size() const { return annots_.size(); }
  bool empty() const { return annots_.empty(); }

  /// True when rows are sorted lexicographically, distinct, and non-zero.
  bool canonical() const { return canonical_; }

  /// True when column `j` is stored compressed (encode-on-canonicalize).
  const EncodedColumn* encoded_col(size_t j) const {
    if (encs_.empty() || encs_[j].encoding == ColumnEncoding::kPlain)
      return nullptr;
    return &encs_[j];
  }
  bool any_encoded() const { return !encs_.empty(); }
  ColumnEncoding col_encoding(size_t j) const {
    const EncodedColumn* e = encoded_col(j);
    return e == nullptr ? ColumnEncoding::kPlain : e->encoding;
  }

  /// Column `j` behind the encoding seam — the view the operator kernels
  /// traverse. Plain columns cost a raw pointer; encoded columns decode
  /// per access (or compare raw codes, see ColView).
  ColView view(size_t j) const {
    if (const EncodedColumn* e = encoded_col(j)) return ColView{nullptr, e, 0};
    return ColView{cols_[j].data(), nullptr, 0};
  }
  /// View of column `j` starting at row `begin`.
  ColView view(size_t j, size_t begin) const { return view(j).Sub(begin); }

  /// Column `j` as a contiguous read-only view — the unit plain-path
  /// operators traverse. On an encoded column this *materializes* the
  /// decoded values into a per-relation cache (kept until the next
  /// mutation): correct but O(n) space, intended for tests, benches and
  /// reference code. NOT thread-safe on encoded columns — kernels running
  /// on the WorkerPool must go through view() instead.
  ColumnView col(size_t j) const {
    if (encs_.empty() || encs_[j].encoding == ColumnEncoding::kPlain)
      return cols_[j];
    if (dcache_.empty()) dcache_.resize(arity());
    if (dcache_[j].size() != size()) {
      dcache_[j].resize(size());
      encs_[j].DecodeInto(0, size(), dcache_[j].data());
    }
    return dcache_[j];
  }
  /// Rows [begin, end) of column `j` — the page-granular view the streaming
  /// transport (network/stream.h) cuts fixed-size column chunks from.
  ColumnView col(size_t j, size_t begin, size_t end) const {
    TOPOFAQ_DCHECK(begin <= end && end <= size());
    return col(j).subspan(begin, end - begin);
  }
  /// All columns, schema order, decoded. Per-column equality of columns() +
  /// annots() is the determinism contract of the parallel kernel (encoded
  /// relations compare by decoded bit pattern). Same caching caveat as
  /// col(): single-threaded callers only when any column is encoded.
  const std::vector<std::vector<Value>>& columns() const {
    if (encs_.empty()) return cols_;
    if (dcache_.empty()) dcache_.resize(arity());
    for (size_t j = 0; j < arity(); ++j) {
      if (dcache_[j].size() == size() && size() > 0) continue;
      if (encs_[j].encoding == ColumnEncoding::kPlain) {
        dcache_[j] = cols_[j];
      } else {
        dcache_[j].resize(size());
        encs_[j].DecodeInto(0, size(), dcache_[j].data());
      }
    }
    return dcache_;
  }

  /// Value of column `j` at row `i` (random access; hot loops should hoist
  /// view(j) or col(j).data() instead).
  Value at(size_t i, size_t j) const {
    if (const EncodedColumn* e = encoded_col(j)) return e->At(i);
    return cols_[j][i];
  }

  /// Row `i` gathered across all columns — the row-at-a-time escape hatch
  /// for reference/debug code; O(arity) column probes per call.
  std::vector<Value> Row(size_t i) const {
    std::vector<Value> out(arity());
    for (size_t j = 0; j < out.size(); ++j) out[j] = at(i, j);
    return out;
  }

  /// The whole relation gathered into a flat row-major array (stride =
  /// arity) — kept for layout round-trip tests and row-oriented baselines;
  /// no operator consumes this.
  std::vector<Value> MaterializeRows() const {
    std::vector<Value> out(size() * arity());
    for (size_t j = 0; j < arity(); ++j) {
      const Value* c = col(j).data();
      for (size_t i = 0; i < size(); ++i) out[i * arity() + j] = c[i];
    }
    return out;
  }

  /// Bytes the key columns pin in memory: packed words + dictionaries for
  /// encoded columns, raw value arrays for plain ones. The transient
  /// decode cache behind col() is excluded — production paths never fill
  /// it. This is the footprint number the bench gate compares encoded vs
  /// plain on.
  size_t ResidentKeyBytes() const {
    size_t bytes = 0;
    for (size_t j = 0; j < arity(); ++j) {
      if (const EncodedColumn* e = encoded_col(j))
        bytes += e->ResidentBytes();
      else
        bytes += cols_[j].size() * sizeof(Value);
    }
    return bytes;
  }

  SemiringValue annot(size_t i) const { return annots_[i]; }
  /// The full annotation column, parallel to the rows.
  const std::vector<SemiringValue>& annots() const { return annots_; }
  void set_annot(size_t i, SemiringValue v) {
    // Keep the invariant "encoded ⇒ canonical": mutation decodes first, so
    // the non-canonical states downstream code sorts through (RowOrderPerm
    // and friends) only ever see plain columns.
    DecodeAll();
    annots_[i] = v;
    // A zero annotation violates the canonical invariant (non-zero rows
    // only) but not row ordering/distinctness, so Compact() can re-certify
    // in one pass; nonzero overwrites keep the invariant intact.
    if (S::IsZero(v) && canonical_) {
      canonical_ = false;
      sorted_distinct_ = true;
    }
  }

  /// Re-certifies a relation whose only invariant violations are
  /// zero-valued annotations (the set_annot wart): drops those rows in one
  /// compaction pass and restores the canonical flag. Falls back to a full
  /// Canonicalize() when row order/distinctness is not certified.
  void Compact() {
    if (canonical_) return;
    if (!sorted_distinct_) {
      Canonicalize();
      return;
    }
    DecodeAll();
    detail::CompactSortedColumns<S>(&cols_, &annots_);
    canonical_ = true;
    EncodeColumns();
  }

  /// Appends (t, v). Zero-annotated tuples are dropped (listing rep stores
  /// only non-zeros). Duplicates are merged by Canonicalize().
  void Add(std::span<const Value> t, SemiringValue v) {
    TOPOFAQ_CHECK(t.size() == arity());
    if (S::IsZero(v)) return;
    DecodeAll();
    for (size_t j = 0; j < t.size(); ++j) cols_[j].push_back(t[j]);
    annots_.push_back(v);
    canonical_ = false;
    sorted_distinct_ = false;
  }
  void Add(std::initializer_list<Value> t, SemiringValue v) {
    Add(std::span<const Value>(t.begin(), t.size()), v);
  }
  /// Convenience: annotation = 1.
  void Add(std::initializer_list<Value> t) { Add(t, S::One()); }

  /// Sorts rows lexicographically, merges duplicate tuples with S::Add, and
  /// drops zero annotations. After this, the relation is a canonical function
  /// representation: pointwise-equal functions compare equal. A no-op when
  /// the canonical flag is already set. Columnar execution: one permutation
  /// sort (parallel on the WorkerPool when `ctx` — or the thread-local
  /// ambient context for nullptr — allows, see detail::SortRowPerm), then
  /// one gather pass per column; rows are never copied through a row buffer.
  void Canonicalize(ExecContext* ctx = nullptr) {
    if (canonical_) return;
    DecodeAll();  // non-canonical relations are plain; enforce defensively
    const size_t n = size();
    std::vector<size_t> order;
    detail::SortRowPerm(cols_, n, &order, ctx);
    // Walk sorted runs of equal rows once, folding annotations; `keep` is
    // the surviving source row per output row, in output order.
    std::vector<size_t> keep;
    std::vector<SemiringValue> na;
    keep.reserve(n);
    na.reserve(n);
    for (size_t idx = 0; idx < n;) {
      size_t run_end = idx + 1;
      while (run_end < n && RowsEqual(order[idx], order[run_end])) ++run_end;
      SemiringValue acc = annots_[order[idx]];
      for (size_t j = idx + 1; j < run_end; ++j)
        acc = S::Add(acc, annots_[order[j]]);
      if (!S::IsZero(acc)) {
        keep.push_back(order[idx]);
        na.push_back(acc);
      }
      idx = run_end;
    }
    // Per-column gather, with the cheap encoding stats (min/max and the
    // adjacent-distinct run-head count) folded into the same pass — the
    // encode-on-canonicalize policy consumes them without re-scanning.
    std::vector<ColumnStats> stats(cols_.size());
    size_t cj = 0;
    for (std::vector<Value>& c : cols_) {
      ColumnStats& st = stats[cj++];
      std::vector<Value> nc;
      nc.reserve(keep.size());
      const Value* src = c.data();
      Value prev = 0;
      for (size_t id : keep) {
        const Value v = src[id];
        if (nc.empty()) {
          st.min = st.max = v;
          st.run_heads = 1;
        } else {
          st.min = std::min(st.min, v);
          st.max = std::max(st.max, v);
          st.run_heads += v != prev;
        }
        prev = v;
        nc.push_back(v);
      }
      st.rows = nc.size();
      c = std::move(nc);
    }
    annots_ = std::move(na);
    canonical_ = true;
    sorted_distinct_ = true;
    EncodeColumnsWithStats(stats);
  }

  /// Applies the encode-on-canonicalize policy to a canonical, currently
  /// plain relation (no-op otherwise). Exposed so Build()/ConcatPieces —
  /// which certify canonical without running Canonicalize — and tests can
  /// trigger the same policy.
  void EncodeColumns() {
    if (!canonical_ || !encs_.empty() || size() == 0) return;
    std::vector<ColumnStats> stats(arity());
    for (size_t j = 0; j < arity(); ++j)
      stats[j] = ColumnStats::Of(cols_[j]);
    EncodeColumnsWithStats(stats);
  }

  /// Materializes every encoded column back into its plain value array and
  /// drops the encodings. Mutators call this so row-level edits and sorts
  /// always operate on raw values.
  void DecodeAll() {
    if (encs_.empty()) return;
    for (size_t j = 0; j < arity(); ++j) {
      if (encs_[j].encoding == ColumnEncoding::kPlain) continue;
      cols_[j].resize(encs_[j].rows);
      encs_[j].DecodeInto(0, encs_[j].rows, cols_[j].data());
    }
    encs_.clear();
    dcache_.clear();
    dcache_.shrink_to_fit();
  }

  /// Exact function equality. Canonical operands compare directly, column by
  /// column; others are canonicalized on a copy first.
  bool EqualsAsFunction(const Relation& other) const {
    if (!(schema_ == other.schema_)) return false;
    if (canonical_ && other.canonical_)
      return columns() == other.columns() && annots_ == other.annots_;
    Relation a = *this, b = other;
    a.Canonicalize();
    b.Canonicalize();
    return a.columns() == b.columns() && a.annots_ == b.annots_;
  }

  /// Wire size in bits when shipped over the network: each tuple costs
  /// arity·bits_per_attr (the paper's r·log2 D) plus kValueBits annotation.
  int64_t EncodedBits(int bits_per_attr) const {
    return EncodedBitsRange(0, size(), bits_per_attr);
  }

  /// Wire size of rows [begin, end) only under the plain cost model — what
  /// one streamed page of this relation would cost with no column
  /// encodings (network/stream.h prices every page both ways and ships the
  /// cheaper encoded form when columns carry one).
  int64_t EncodedBitsRange(size_t begin, size_t end, int bits_per_attr) const {
    TOPOFAQ_DCHECK(begin <= end && end <= size());
    return static_cast<int64_t>(end - begin) *
           (static_cast<int64_t>(arity()) * bits_per_attr + S::kValueBits);
  }

  /// Largest attribute value + 1 appearing anywhere (lower bound on D).
  uint64_t MaxValuePlusOne() const {
    uint64_t m = 1;
    for (size_t j = 0; j < arity(); ++j) {
      if (const EncodedColumn* e = encoded_col(j)) {
        if (e->encoding == ColumnEncoding::kDict) {
          if (!e->dict.empty()) m = std::max(m, e->dict.back() + 1);
        } else {
          for (size_t i = 0; i < e->rows; ++i) m = std::max(m, e->At(i) + 1);
        }
      } else {
        for (Value v : cols_[j]) m = std::max(m, v + 1);
      }
    }
    return m;
  }

  /// Reinterprets the relation under a permuted schema: column j of the
  /// result is current column `src[j]`. Pure column-handle moves — no row
  /// data is copied and rows keep their identity — but row *order* is no
  /// longer sorted under the new column order, so the canonical flag drops;
  /// callers re-canonicalize (one permutation sort + per-column gather).
  void ReorderColumns(Schema new_schema, const std::vector<int>& src) {
    TOPOFAQ_CHECK(new_schema.arity() == arity() && src.size() == arity());
    DecodeAll();
    std::vector<std::vector<Value>> nc(src.size());
    for (size_t j = 0; j < src.size(); ++j)
      nc[j] = std::move(cols_[static_cast<size_t>(src[j])]);
    cols_ = std::move(nc);
    schema_ = std::move(new_schema);
    canonical_ = false;
    sorted_distinct_ = false;
  }

  /// Concatenates per-morsel pieces produced by the parallel kernel
  /// (docs/kernel.md): each piece is the canonical output of one morsel, and
  /// morsels are disjoint key-aligned traversal ranges in nondecreasing
  /// order, so splicing the pieces column-by-column already yields sorted
  /// rows. Equal boundary rows (possible only if a cut were ever to land
  /// inside a run) are merged with ⊕ and zero annotations dropped, mirroring
  /// RelationBuilder::Append/Build, so the result is bit-identical (per
  /// column) to a single-builder serial run; out-of-order pieces fall back
  /// to one Canonicalize().
  static Relation ConcatPieces(Schema schema, std::vector<Relation> pieces) {
    const size_t a = schema.arity();
    size_t rows = 0;
    for (const Relation& p : pieces) rows += p.size();
    std::vector<std::vector<Value>> cols(a);
    for (std::vector<Value>& c : cols) c.reserve(rows);
    std::vector<SemiringValue> annots;
    annots.reserve(rows);
    bool sorted = true;
    for (Relation& p : pieces) {
      if (p.empty()) continue;
      if (!p.canonical()) sorted = false;
      p.DecodeAll();  // splice raw values; the result re-encodes below
      size_t start = 0;
      if (sorted && !annots.empty()) {
        const size_t last = annots.size() - 1;
        int cmp = 0;
        for (size_t k = 0; k < a && cmp == 0; ++k) {
          const Value x = cols[k][last];
          const Value y = p.cols_[k][0];
          cmp = x < y ? -1 : (x > y ? 1 : 0);
        }
        if (cmp == 0) {
          annots.back() = S::Add(annots.back(), p.annots_[0]);
          start = 1;
        } else if (cmp > 0) {
          sorted = false;
        }
      }
      for (size_t k = 0; k < a; ++k)
        cols[k].insert(cols[k].end(), p.cols_[k].begin() + start,
                       p.cols_[k].end());
      annots.insert(annots.end(), p.annots_.begin() + start, p.annots_.end());
      p = Relation();  // release the piece's storage eagerly
    }
    if (sorted) {
      // Rows are sorted and distinct; one compacting pass drops annotations
      // that merged to zero (exactly RelationBuilder::Build's sorted path).
      detail::CompactSortedColumns<S>(&cols, &annots);
      Relation out(std::move(schema), std::move(cols), std::move(annots),
                   true);
      out.EncodeColumns();
      return out;
    }
    Relation out(std::move(schema), std::move(cols), std::move(annots), false);
    out.Canonicalize();
    return out;
  }

  std::string DebugString() const {
    std::string out = "[";
    for (size_t i = 0; i < size(); ++i) {
      if (i) out += ", ";
      out += "(";
      for (size_t j = 0; j < arity(); ++j) {
        if (j) out += ",";
        out += std::to_string(at(i, j));
      }
      out += ")";
    }
    out += "]";
    return out;
  }

 private:
  friend class RelationBuilder<S>;

  Relation(Schema schema, std::vector<std::vector<Value>> cols,
           std::vector<SemiringValue> annots, bool canonical)
      : schema_(std::move(schema)),
        cols_(std::move(cols)),
        annots_(std::move(annots)),
        canonical_(canonical),
        sorted_distinct_(canonical) {
    TOPOFAQ_DCHECK(cols_.size() == schema_.arity());
  }

  bool RowsEqual(size_t x, size_t y) const {
    for (const std::vector<Value>& c : cols_)
      if (c[x] != c[y]) return false;
    return true;
  }

  /// Runs the per-column policy over freshly canonicalized plain columns:
  /// columns the policy compresses move into encs_ and release their plain
  /// storage; the rest stay raw (their encs_ slot is a kPlain marker).
  void EncodeColumnsWithStats(const std::vector<ColumnStats>& stats) {
    dcache_.clear();
    encs_.clear();
    const EncodingMode mode = GlobalEncodingMode();
    if (mode == EncodingMode::kPlain || size() == 0) return;
    std::vector<EncodedColumn> encs(arity());
    bool any = false;
    for (size_t j = 0; j < arity(); ++j) {
      encs[j] = ChooseAndEncode(cols_[j], stats[j], mode, j == 0);
      if (encs[j].encoding != ColumnEncoding::kPlain) {
        any = true;
        cols_[j].clear();
        cols_[j].shrink_to_fit();
      }
    }
    if (any) encs_ = std::move(encs);
  }

  Schema schema_;
  std::vector<std::vector<Value>> cols_;  // column-major: cols_[j][row]
  // Compressed columns (encode-on-canonicalize). Empty when every column is
  // plain; otherwise one entry per column, kPlain-tagged for columns left
  // raw. An encoded column's cols_[j] is released (empty).
  std::vector<EncodedColumn> encs_;
  // Lazy decoded copies backing col()/columns() on encoded relations.
  // Transient (cleared on mutation), excluded from ResidentKeyBytes().
  mutable std::vector<std::vector<Value>> dcache_;
  std::vector<SemiringValue> annots_;     // parallel annotation column
  // Empty relations are trivially canonical; Add clears the flags.
  bool canonical_ = true;
  // Rows sorted + distinct even though canonical_ dropped — true exactly
  // after set_annot(i, zero) on a canonical relation, letting Compact()
  // re-certify without a sort.
  bool sorted_distinct_ = true;
};

/// Cached per-column base pointers over a chosen column subset of one
/// relation — the typed view operators traverse instead of assuming any row
/// stride. Borrowed: invalidated by any mutation of the relation.
class RowCursor {
 public:
  RowCursor() = default;
  /// All columns, schema order.
  template <CommutativeSemiring S>
  explicit RowCursor(const Relation<S>& r) {
    cols_.reserve(r.arity());
    for (size_t j = 0; j < r.arity(); ++j) cols_.push_back(r.col(j).data());
  }
  /// The columns named by `pos`, in `pos` order.
  template <CommutativeSemiring S>
  RowCursor(const Relation<S>& r, const std::vector<int>& pos) {
    cols_.reserve(pos.size());
    for (int p : pos) cols_.push_back(r.col(static_cast<size_t>(p)).data());
  }

  size_t width() const { return cols_.size(); }
  Value at(size_t row, size_t c) const { return cols_[c][row]; }
  /// Raw base-pointer array for hot loops.
  const Value* const* cols() const { return cols_.data(); }
  /// Copies row `row` into out[0..width).
  void Gather(size_t row, Value* out) const {
    for (size_t c = 0; c < cols_.size(); ++c) out[c] = cols_[c][row];
  }

 private:
  std::vector<const Value*> cols_;
};

/// Accumulates operator output rows and produces a canonical Relation.
///
/// Append merges a row equal to the previous one with S::Add and tracks
/// whether rows arrive in nondecreasing order. Build() then either certifies
/// the output canonical with a single zero-dropping pass (the sorted case —
/// every sort-merge operator emitting in key order lands here) or falls back
/// to one Canonicalize() sort. This is what lets operators produce sorted
/// output directly instead of sort-after-the-fact. Output accumulates
/// column-major, so Build is a handle move with no transpose.
template <CommutativeSemiring S>
class RelationBuilder {
 public:
  using SemiringValue = typename S::Value;

  explicit RelationBuilder(Schema schema)
      : schema_(std::move(schema)),
        arity_(schema_.arity()),
        cols_(arity_) {}

  /// Disables encode-on-build. Morsel builders use this: their pieces are
  /// spliced by Relation::ConcatPieces (which would decode them right
  /// back), so only the spliced result runs the encoding policy.
  void set_encode(bool encode) { encode_ = encode; }

  void Reserve(size_t rows) {
    for (std::vector<Value>& c : cols_) c.reserve(rows);
    annots_.reserve(rows);
  }

  size_t rows() const { return annots_.size(); }

  /// Appends (t, v). A tuple equal to the previous appended tuple is merged
  /// into it with S::Add instead of stored again.
  void Append(std::span<const Value> t, SemiringValue v) {
    TOPOFAQ_DCHECK(t.size() == arity_);
    if (!annots_.empty()) {
      const int cmp = CompareLast(t.data());
      if (cmp == 0) {
        annots_.back() = S::Add(annots_.back(), v);
        return;
      }
      if (cmp > 0) sorted_ = false;
    }
    for (size_t j = 0; j < arity_; ++j) cols_[j].push_back(t[j]);
    annots_.push_back(v);
  }
  void Append(std::initializer_list<Value> t, SemiringValue v) {
    Append(std::span<const Value>(t.begin(), t.size()), v);
  }

  /// Bulk append of a sorted, distinct column-chunk — the page-splice path
  /// of the streaming transport (network/stream.h): one boundary compare
  /// against the last stored row, then arity+1 range inserts, instead of a
  /// per-row gather + compare. `cols[j]` are parallel column chunks of
  /// `annots.size()` rows each, lexicographically ascending and distinct
  /// (verified under TOPOFAQ_DCHECK); a chunk whose first row equals the
  /// stored last row merges that row with S::Add, exactly Append's rule,
  /// and a chunk starting below the stored last row clears the sorted flag
  /// (Build() then pays its closing sort).
  void AppendChunk(const std::vector<std::vector<Value>>& cols,
                   std::span<const SemiringValue> annots) {
    TOPOFAQ_DCHECK(cols.size() == arity_);
    const size_t n = annots.size();
    if (n == 0) return;
#ifndef NDEBUG
    for (size_t j = 0; j < arity_; ++j) TOPOFAQ_DCHECK(cols[j].size() == n);
    for (size_t i = 1; i < n; ++i) {
      int cmp = 0;
      for (size_t j = 0; j < arity_ && cmp == 0; ++j) {
        const Value x = cols[j][i - 1];
        const Value y = cols[j][i];
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      }
      TOPOFAQ_DCHECK(cmp < 0);
    }
#endif
    size_t start = 0;
    if (!annots_.empty()) {
      const size_t last = annots_.size() - 1;
      int cmp = 0;
      for (size_t j = 0; j < arity_ && cmp == 0; ++j) {
        const Value x = cols_[j][last];
        const Value y = cols[j][0];
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      }
      if (cmp == 0) {
        annots_.back() = S::Add(annots_.back(), annots[0]);
        start = 1;
      } else if (cmp > 0) {
        sorted_ = false;
      }
    }
    for (size_t j = 0; j < arity_; ++j)
      cols_[j].insert(cols_[j].end(), cols[j].begin() + start, cols[j].end());
    annots_.insert(annots_.end(), annots.begin() + start, annots.end());
  }

  /// AppendChunk over borrowed column sub-ranges: the delta-splice path of
  /// incremental maintenance (ivm/delta.h) appends runs of an existing
  /// canonical relation's columns between delta rows, so the chunks are
  /// views into live column storage rather than owned vectors. Same
  /// boundary-merge and sorted-flag rules as the owning overload.
  void AppendChunk(std::span<const ColumnView> cols,
                   std::span<const SemiringValue> annots) {
    TOPOFAQ_DCHECK(cols.size() == arity_);
    const size_t n = annots.size();
    if (n == 0) return;
#ifndef NDEBUG
    for (size_t j = 0; j < arity_; ++j) TOPOFAQ_DCHECK(cols[j].size() == n);
    for (size_t i = 1; i < n; ++i) {
      int cmp = 0;
      for (size_t j = 0; j < arity_ && cmp == 0; ++j) {
        const Value x = cols[j][i - 1];
        const Value y = cols[j][i];
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      }
      TOPOFAQ_DCHECK(cmp < 0);
    }
#endif
    size_t start = 0;
    if (!annots_.empty()) {
      const size_t last = annots_.size() - 1;
      int cmp = 0;
      for (size_t j = 0; j < arity_ && cmp == 0; ++j) {
        const Value x = cols_[j][last];
        const Value y = cols[j][0];
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      }
      if (cmp == 0) {
        annots_.back() = S::Add(annots_.back(), annots[0]);
        start = 1;
      } else if (cmp > 0) {
        sorted_ = false;
      }
    }
    for (size_t j = 0; j < arity_; ++j)
      cols_[j].insert(cols_[j].end(), cols[j].begin() + start, cols[j].end());
    annots_.insert(annots_.end(), annots.begin() + start, annots.end());
  }

  /// Appends row `row` read through per-column base pointers with annotation
  /// `v`, column to column — no row-gather buffer (the Semijoin survivor
  /// path, plain instantiation).
  void AppendFrom(const Value* const* cols, size_t row, SemiringValue v) {
    if (!annots_.empty()) {
      const size_t last = annots_.size() - 1;
      int cmp = 0;
      for (size_t j = 0; j < arity_ && cmp == 0; ++j) {
        const Value x = cols_[j][last];
        const Value y = cols[j][row];
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      }
      if (cmp == 0) {
        annots_.back() = S::Add(annots_.back(), v);
        return;
      }
      if (cmp > 0) sorted_ = false;
    }
    for (size_t j = 0; j < arity_; ++j) cols_[j].push_back(cols[j][row]);
    annots_.push_back(v);
  }

  /// Appends row `row` read through per-column views with annotation `v`,
  /// column to column — no row-gather buffer (the Semijoin survivor path).
  /// Views decode at this emission point; worker threads use this overload
  /// (never the relation's col() cache).
  void AppendFrom(const ColView* cols, size_t row, SemiringValue v) {
    if (!annots_.empty()) {
      const size_t last = annots_.size() - 1;
      int cmp = 0;
      for (size_t j = 0; j < arity_ && cmp == 0; ++j) {
        const Value x = cols_[j][last];
        const Value y = cols[j].At(row);
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      }
      if (cmp == 0) {
        annots_.back() = S::Add(annots_.back(), v);
        return;
      }
      if (cmp > 0) sorted_ = false;
    }
    for (size_t j = 0; j < arity_; ++j) cols_[j].push_back(cols[j].At(row));
    annots_.push_back(v);
  }

  /// Finalizes into a canonical relation. The builder is left empty and
  /// reusable for the same schema.
  Relation<S> Build() {
    if (sorted_) {
      // Rows are already sorted and distinct; drop zero annotations
      // (merge cancellation, e.g. GF2) with one compacting pass.
      detail::CompactSortedColumns<S>(&cols_, &annots_);
      Relation<S> out{schema_, std::move(cols_), std::move(annots_), true};
      Clear();
      if (encode_) out.EncodeColumns();
      return out;
    }
    Relation<S> out{schema_, std::move(cols_), std::move(annots_), false};
    Clear();
    out.Canonicalize();
    return out;
  }

 private:
  /// Lexicographic compare of the last stored row vs `t`: <0, 0, >0.
  int CompareLast(const Value* t) const {
    const size_t last = annots_.size() - 1;
    for (size_t j = 0; j < arity_; ++j) {
      const Value x = cols_[j][last];
      if (x < t[j]) return -1;
      if (x > t[j]) return 1;
    }
    return 0;
  }

  void Clear() {
    cols_.assign(arity_, {});
    annots_ = {};
    sorted_ = true;
  }

  Schema schema_;
  size_t arity_;
  std::vector<std::vector<Value>> cols_;  // column-major, parallel to annots_
  std::vector<SemiringValue> annots_;
  bool sorted_ = true;
  bool encode_ = true;
};

}  // namespace topofaq

#endif  // TOPOFAQ_RELATION_RELATION_H_
