// Semiring-annotated relations in *listing representation*: a function
// f_e : ∏_{v∈e} Dom(v) → D is stored as the list of its tuples with non-zero
// value, R_e = {(y, f_e(y)) : f_e(y) ≠ 0} — exactly the input representation
// assumed by the paper (Section 1).
//
// Storage is flat (row-major, fixed arity stride) for cache friendliness; the
// annotation array is parallel to the rows.
//
// Canonical-order invariant (docs/kernel.md): a relation is *canonical* when
// its rows are sorted lexicographically in schema-column order, tuples are
// distinct, and no annotation is semiring zero. Canonical relations compare
// pointwise-equal functions as bit-equal arrays, and the sort-merge operators
// in ops.h exploit the ordering to skip sorting entirely on shared-key-prefix
// inputs. The `canonical()` flag tracks the invariant; RelationBuilder is the
// sanctioned way for operators to produce sorted output directly.
#ifndef TOPOFAQ_RELATION_RELATION_H_
#define TOPOFAQ_RELATION_RELATION_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "semiring/semiring.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/types.h"

namespace topofaq {

/// An ordered list of distinct variables naming a relation's columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<VarId> vars) : vars_(std::move(vars)) {
    // Sort-based duplicate detection: O(n log n) instead of the quadratic
    // pairwise scan.
    std::vector<VarId> sorted = vars_;
    std::sort(sorted.begin(), sorted.end());
    TOPOFAQ_CHECK_MSG(
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "duplicate variable in schema");
  }

  size_t arity() const { return vars_.size(); }
  const std::vector<VarId>& vars() const { return vars_; }
  VarId var(size_t i) const { return vars_[i]; }

  /// Position of `v` in this schema, or -1 if absent. Linear; operators that
  /// look up many variables should build a SchemaIndex once instead.
  int PositionOf(VarId v) const {
    for (size_t i = 0; i < vars_.size(); ++i)
      if (vars_[i] == v) return static_cast<int>(i);
    return -1;
  }
  bool Contains(VarId v) const { return PositionOf(v) >= 0; }

  /// Variables present in both schemas, in this schema's order.
  std::vector<VarId> SharedWith(const Schema& other) const {
    std::vector<VarId> out;
    for (VarId v : vars_)
      if (other.Contains(v)) out.push_back(v);
    return out;
  }

  bool operator==(const Schema& other) const { return vars_ == other.vars_; }

 private:
  std::vector<VarId> vars_;
};

/// Precomputed position map for a schema: build once per operator call, then
/// answer PositionOf in O(log arity) instead of O(arity) per lookup.
class SchemaIndex {
 public:
  explicit SchemaIndex(const Schema& s) {
    pairs_.reserve(s.arity());
    for (size_t i = 0; i < s.arity(); ++i)
      pairs_.emplace_back(s.var(i), static_cast<int>(i));
    std::sort(pairs_.begin(), pairs_.end());
  }

  int PositionOf(VarId v) const {
    auto it = std::lower_bound(
        pairs_.begin(), pairs_.end(), v,
        [](const std::pair<VarId, int>& p, VarId x) { return p.first < x; });
    return (it != pairs_.end() && it->first == v) ? it->second : -1;
  }
  bool Contains(VarId v) const { return PositionOf(v) >= 0; }

 private:
  std::vector<std::pair<VarId, int>> pairs_;
};

template <CommutativeSemiring S>
class RelationBuilder;

namespace detail {

/// Compacts parallel row/annotation arrays that are already sorted and
/// distinct by dropping zero-annotated rows in place (merge cancellation,
/// e.g. GF2). The single certification pass shared by
/// RelationBuilder::Build's sorted path and Relation::ConcatPieces.
template <CommutativeSemiring S>
void CompactSortedRows(std::vector<Value>* data,
                       std::vector<typename S::Value>* annots, size_t arity) {
  size_t w = 0;
  for (size_t i = 0; i < annots->size(); ++i) {
    if (S::IsZero((*annots)[i])) continue;
    if (w != i) {
      std::copy(data->begin() + i * arity, data->begin() + (i + 1) * arity,
                data->begin() + w * arity);
      (*annots)[w] = (*annots)[i];
    }
    ++w;
  }
  data->resize(w * arity);
  annots->resize(w);
}

}  // namespace detail

/// A relation annotated with values from semiring S.
template <CommutativeSemiring S>
class Relation {
 public:
  using SemiringValue = typename S::Value;

  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t arity() const { return schema_.arity(); }
  size_t size() const { return annots_.size(); }
  bool empty() const { return annots_.empty(); }

  /// True when rows are sorted lexicographically, distinct, and non-zero.
  bool canonical() const { return canonical_; }

  /// The i-th tuple as a read-only view.
  std::span<const Value> tuple(size_t i) const {
    return {data_.data() + i * arity(), arity()};
  }
  SemiringValue annot(size_t i) const { return annots_[i]; }
  /// The full annotation array, parallel to the rows. Byte-level equality of
  /// data() + annots() is the determinism contract of the parallel kernel.
  const std::vector<SemiringValue>& annots() const { return annots_; }
  void set_annot(size_t i, SemiringValue v) {
    annots_[i] = v;
    // A zero annotation violates the canonical invariant (non-zero rows
    // only); nonzero overwrites keep ordering/distinctness intact.
    if (S::IsZero(v)) canonical_ = false;
  }

  /// Raw row storage (row-major, stride = arity). Operators use this to
  /// compare columns without materializing per-row key vectors.
  const std::vector<Value>& data() const { return data_; }

  /// Appends (t, v). Zero-annotated tuples are dropped (listing rep stores
  /// only non-zeros). Duplicates are merged by Canonicalize().
  void Add(std::span<const Value> t, SemiringValue v) {
    TOPOFAQ_CHECK(t.size() == arity());
    if (S::IsZero(v)) return;
    data_.insert(data_.end(), t.begin(), t.end());
    annots_.push_back(v);
    canonical_ = false;
  }
  void Add(std::initializer_list<Value> t, SemiringValue v) {
    Add(std::span<const Value>(t.begin(), t.size()), v);
  }
  /// Convenience: annotation = 1.
  void Add(std::initializer_list<Value> t) { Add(t, S::One()); }

  /// Sorts rows lexicographically, merges duplicate tuples with S::Add, and
  /// drops zero annotations. After this, the relation is a canonical function
  /// representation: pointwise-equal functions compare equal. A no-op when
  /// the canonical flag is already set.
  void Canonicalize() {
    if (canonical_) return;
    const size_t a = arity();
    const size_t n = size();
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    const Value* d = data_.data();
    std::sort(order.begin(), order.end(), [d, a](size_t x, size_t y) {
      const Value* px = d + x * a;
      const Value* py = d + y * a;
      for (size_t k = 0; k < a; ++k)
        if (px[k] != py[k]) return px[k] < py[k];
      return false;
    });
    std::vector<Value> nd;
    std::vector<SemiringValue> na;
    nd.reserve(data_.size());
    na.reserve(n);
    for (size_t idx = 0; idx < n;) {
      size_t run_end = idx + 1;
      while (run_end < n &&
             std::equal(data_.begin() + order[idx] * a,
                        data_.begin() + (order[idx] + 1) * a,
                        data_.begin() + order[run_end] * a))
        ++run_end;
      SemiringValue acc = annots_[order[idx]];
      for (size_t j = idx + 1; j < run_end; ++j)
        acc = S::Add(acc, annots_[order[j]]);
      if (!S::IsZero(acc)) {
        nd.insert(nd.end(), data_.begin() + order[idx] * a,
                  data_.begin() + (order[idx] + 1) * a);
        na.push_back(acc);
      }
      idx = run_end;
    }
    data_ = std::move(nd);
    annots_ = std::move(na);
    canonical_ = true;
  }

  /// Exact function equality. Canonical operands compare directly; others
  /// are canonicalized on a copy first.
  bool EqualsAsFunction(const Relation& other) const {
    if (!(schema_ == other.schema_)) return false;
    if (canonical_ && other.canonical_)
      return data_ == other.data_ && annots_ == other.annots_;
    Relation a = *this, b = other;
    a.Canonicalize();
    b.Canonicalize();
    return a.data_ == b.data_ && a.annots_ == b.annots_;
  }

  /// Wire size in bits when shipped over the network: each tuple costs
  /// arity·bits_per_attr (the paper's r·log2 D) plus kValueBits annotation.
  int64_t EncodedBits(int bits_per_attr) const {
    return static_cast<int64_t>(size()) *
           (static_cast<int64_t>(arity()) * bits_per_attr + S::kValueBits);
  }

  /// Largest attribute value + 1 appearing anywhere (lower bound on D).
  uint64_t MaxValuePlusOne() const {
    uint64_t m = 1;
    for (Value v : data_) m = std::max(m, v + 1);
    return m;
  }

  /// Concatenates per-morsel pieces produced by the parallel kernel
  /// (docs/kernel.md): each piece is the canonical output of one morsel, and
  /// morsels are disjoint key-aligned traversal ranges in nondecreasing
  /// order, so splicing the pieces back-to-back already yields sorted rows.
  /// Equal boundary rows (possible only if a cut were ever to land inside a
  /// run) are merged with ⊕ and zero annotations dropped, mirroring
  /// RelationBuilder::Append/Build, so the result is bit-identical to a
  /// single-builder serial run; out-of-order pieces fall back to one
  /// Canonicalize().
  static Relation ConcatPieces(Schema schema, std::vector<Relation> pieces) {
    const size_t a = schema.arity();
    size_t rows = 0;
    for (const Relation& p : pieces) rows += p.size();
    std::vector<Value> data;
    std::vector<SemiringValue> annots;
    data.reserve(rows * a);
    annots.reserve(rows);
    bool sorted = true;
    for (Relation& p : pieces) {
      if (p.empty()) continue;
      if (!p.canonical()) sorted = false;
      size_t start = 0;
      if (sorted && !annots.empty()) {
        const Value* last = data.data() + data.size() - a;
        const Value* first = p.data_.data();
        int cmp = 0;
        for (size_t k = 0; k < a && cmp == 0; ++k)
          cmp = last[k] < first[k] ? -1 : (last[k] > first[k] ? 1 : 0);
        if (cmp == 0) {
          annots.back() = S::Add(annots.back(), p.annots_[0]);
          start = 1;
        } else if (cmp > 0) {
          sorted = false;
        }
      }
      data.insert(data.end(), p.data_.begin() + start * a, p.data_.end());
      annots.insert(annots.end(), p.annots_.begin() + start, p.annots_.end());
      p = Relation();  // release the piece's storage eagerly
    }
    if (sorted) {
      // Rows are sorted and distinct; one compacting pass drops annotations
      // that merged to zero (exactly RelationBuilder::Build's sorted path).
      detail::CompactSortedRows<S>(&data, &annots, a);
      return Relation(std::move(schema), std::move(data), std::move(annots),
                      true);
    }
    Relation out(std::move(schema), std::move(data), std::move(annots), false);
    out.Canonicalize();
    return out;
  }

  std::string DebugString() const {
    std::string out = "[";
    for (size_t i = 0; i < size(); ++i) {
      if (i) out += ", ";
      out += "(";
      for (size_t j = 0; j < arity(); ++j) {
        if (j) out += ",";
        out += std::to_string(tuple(i)[j]);
      }
      out += ")";
    }
    out += "]";
    return out;
  }

 private:
  friend class RelationBuilder<S>;

  Relation(Schema schema, std::vector<Value> data,
           std::vector<SemiringValue> annots, bool canonical)
      : schema_(std::move(schema)),
        data_(std::move(data)),
        annots_(std::move(annots)),
        canonical_(canonical) {}

  Schema schema_;
  std::vector<Value> data_;             // row-major, stride = arity()
  std::vector<SemiringValue> annots_;   // parallel to rows
  // Empty relations are trivially canonical; Add clears the flag.
  bool canonical_ = true;
};

/// Accumulates operator output rows and produces a canonical Relation.
///
/// Append merges a row equal to the previous one with S::Add and tracks
/// whether rows arrive in nondecreasing order. Build() then either certifies
/// the output canonical with a single zero-dropping pass (the sorted case —
/// every sort-merge operator emitting in key order lands here) or falls back
/// to one Canonicalize() sort. This is what lets operators produce sorted
/// output directly instead of sort-after-the-fact.
template <CommutativeSemiring S>
class RelationBuilder {
 public:
  using SemiringValue = typename S::Value;

  explicit RelationBuilder(Schema schema)
      : schema_(std::move(schema)), arity_(schema_.arity()) {}

  void Reserve(size_t rows) {
    data_.reserve(rows * arity_);
    annots_.reserve(rows);
  }

  size_t rows() const { return annots_.size(); }

  /// Appends (t, v). A tuple equal to the previous appended tuple is merged
  /// into it with S::Add instead of stored again.
  void Append(std::span<const Value> t, SemiringValue v) {
    TOPOFAQ_DCHECK(t.size() == arity_);
    if (!annots_.empty()) {
      const Value* last = data_.data() + data_.size() - arity_;
      int cmp = Compare(last, t.data());
      if (cmp == 0) {
        annots_.back() = S::Add(annots_.back(), v);
        return;
      }
      if (cmp > 0) sorted_ = false;
    }
    data_.insert(data_.end(), t.begin(), t.end());
    annots_.push_back(v);
  }
  void Append(std::initializer_list<Value> t, SemiringValue v) {
    Append(std::span<const Value>(t.begin(), t.size()), v);
  }

  /// Finalizes into a canonical relation. The builder is left empty and
  /// reusable for the same schema.
  Relation<S> Build() {
    if (sorted_) {
      // Rows are already sorted and distinct; drop zero annotations
      // (merge cancellation, e.g. GF2) with one compacting pass.
      detail::CompactSortedRows<S>(&data_, &annots_, arity_);
      Relation<S> out{schema_, std::move(data_), std::move(annots_), true};
      Clear();
      return out;
    }
    Relation<S> out{schema_, std::move(data_), std::move(annots_), false};
    Clear();
    out.Canonicalize();
    return out;
  }

 private:
  int Compare(const Value* a, const Value* b) const {
    for (size_t i = 0; i < arity_; ++i) {
      if (a[i] < b[i]) return -1;
      if (a[i] > b[i]) return 1;
    }
    return 0;
  }

  void Clear() {
    data_ = {};
    annots_ = {};
    sorted_ = true;
  }

  Schema schema_;
  size_t arity_;
  std::vector<Value> data_;
  std::vector<SemiringValue> annots_;
  bool sorted_ = true;
};

}  // namespace topofaq

#endif  // TOPOFAQ_RELATION_RELATION_H_
