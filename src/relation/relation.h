// Semiring-annotated relations in *listing representation*: a function
// f_e : ∏_{v∈e} Dom(v) → D is stored as the list of its tuples with non-zero
// value, R_e = {(y, f_e(y)) : f_e(y) ≠ 0} — exactly the input representation
// assumed by the paper (Section 1).
//
// Storage is flat (row-major, fixed arity stride) for cache friendliness; the
// annotation array is parallel to the rows.
#ifndef TOPOFAQ_RELATION_RELATION_H_
#define TOPOFAQ_RELATION_RELATION_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "semiring/semiring.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/types.h"

namespace topofaq {

/// An ordered list of distinct variables naming a relation's columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<VarId> vars) : vars_(std::move(vars)) {
    for (size_t i = 0; i < vars_.size(); ++i)
      for (size_t j = i + 1; j < vars_.size(); ++j)
        TOPOFAQ_CHECK_MSG(vars_[i] != vars_[j], "duplicate variable in schema");
  }

  size_t arity() const { return vars_.size(); }
  const std::vector<VarId>& vars() const { return vars_; }
  VarId var(size_t i) const { return vars_[i]; }

  /// Position of `v` in this schema, or -1 if absent.
  int PositionOf(VarId v) const {
    for (size_t i = 0; i < vars_.size(); ++i)
      if (vars_[i] == v) return static_cast<int>(i);
    return -1;
  }
  bool Contains(VarId v) const { return PositionOf(v) >= 0; }

  /// Variables present in both schemas, in this schema's order.
  std::vector<VarId> SharedWith(const Schema& other) const {
    std::vector<VarId> out;
    for (VarId v : vars_)
      if (other.Contains(v)) out.push_back(v);
    return out;
  }

  bool operator==(const Schema& other) const { return vars_ == other.vars_; }

 private:
  std::vector<VarId> vars_;
};

/// A relation annotated with values from semiring S.
template <CommutativeSemiring S>
class Relation {
 public:
  using SemiringValue = typename S::Value;

  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t arity() const { return schema_.arity(); }
  size_t size() const { return annots_.size(); }
  bool empty() const { return annots_.empty(); }

  /// The i-th tuple as a read-only view.
  std::span<const Value> tuple(size_t i) const {
    return {data_.data() + i * arity(), arity()};
  }
  SemiringValue annot(size_t i) const { return annots_[i]; }
  void set_annot(size_t i, SemiringValue v) { annots_[i] = v; }

  /// Appends (t, v). Zero-annotated tuples are dropped (listing rep stores
  /// only non-zeros). Duplicates are merged by Canonicalize().
  void Add(std::span<const Value> t, SemiringValue v) {
    TOPOFAQ_CHECK(t.size() == arity());
    if (S::IsZero(v)) return;
    data_.insert(data_.end(), t.begin(), t.end());
    annots_.push_back(v);
  }
  void Add(std::initializer_list<Value> t, SemiringValue v) {
    Add(std::span<const Value>(t.begin(), t.size()), v);
  }
  /// Convenience: annotation = 1.
  void Add(std::initializer_list<Value> t) { Add(t, S::One()); }

  /// Sorts rows lexicographically, merges duplicate tuples with S::Add, and
  /// drops zero annotations. After this, the relation is a canonical function
  /// representation: pointwise-equal functions compare equal.
  void Canonicalize() {
    const size_t a = arity();
    const size_t n = size();
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      return std::lexicographical_compare(
          data_.begin() + x * a, data_.begin() + (x + 1) * a,
          data_.begin() + y * a, data_.begin() + (y + 1) * a);
    });
    std::vector<Value> nd;
    std::vector<SemiringValue> na;
    nd.reserve(data_.size());
    na.reserve(n);
    for (size_t idx = 0; idx < n;) {
      size_t run_end = idx + 1;
      while (run_end < n &&
             std::equal(data_.begin() + order[idx] * a,
                        data_.begin() + (order[idx] + 1) * a,
                        data_.begin() + order[run_end] * a))
        ++run_end;
      SemiringValue acc = annots_[order[idx]];
      for (size_t j = idx + 1; j < run_end; ++j)
        acc = S::Add(acc, annots_[order[j]]);
      if (!S::IsZero(acc)) {
        nd.insert(nd.end(), data_.begin() + order[idx] * a,
                  data_.begin() + (order[idx] + 1) * a);
        na.push_back(acc);
      }
      idx = run_end;
    }
    data_ = std::move(nd);
    annots_ = std::move(na);
  }

  /// Exact function equality (both sides are canonicalized copies).
  bool EqualsAsFunction(const Relation& other) const {
    if (!(schema_ == other.schema_)) return false;
    Relation a = *this, b = other;
    a.Canonicalize();
    b.Canonicalize();
    return a.data_ == b.data_ && a.annots_ == b.annots_;
  }

  /// Wire size in bits when shipped over the network: each tuple costs
  /// arity·bits_per_attr (the paper's r·log2 D) plus kValueBits annotation.
  int64_t EncodedBits(int bits_per_attr) const {
    return static_cast<int64_t>(size()) *
           (static_cast<int64_t>(arity()) * bits_per_attr + S::kValueBits);
  }

  /// Largest attribute value + 1 appearing anywhere (lower bound on D).
  uint64_t MaxValuePlusOne() const {
    uint64_t m = 1;
    for (Value v : data_) m = std::max(m, v + 1);
    return m;
  }

  std::string DebugString() const {
    std::string out = "[";
    for (size_t i = 0; i < size(); ++i) {
      if (i) out += ", ";
      out += "(";
      for (size_t j = 0; j < arity(); ++j) {
        if (j) out += ",";
        out += std::to_string(tuple(i)[j]);
      }
      out += ")";
    }
    out += "]";
    return out;
  }

 private:
  Schema schema_;
  std::vector<Value> data_;             // row-major, stride = arity()
  std::vector<SemiringValue> annots_;   // parallel to rows
};

}  // namespace topofaq

#endif  // TOPOFAQ_RELATION_RELATION_H_
