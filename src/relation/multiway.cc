#include "relation/multiway.h"

namespace topofaq {
namespace internal {

namespace {

/// Shared gallop: first position t in [lo, hi) of the column satisfying
/// load(t) >= key (strict == false) or load(t) > key (strict == true).
/// Probes are counted into *cmps. Templated over the element loader so the
/// same three-phase search runs on raw Value arrays (plain columns) and on
/// bit-packed code words (encoded columns, one word-at-a-time unpack per
/// probe) — keys and samples are then raw codes, translated once per seek
/// by the caller (LowerCode/UpperCode).
///
/// Three phases, all maintaining the invariant "everything ≤ prev is
/// not-past, cur is past or cur == hi", finished by one shared binary
/// search of (prev, cur]:
///
///  1. Short exponential probe from `lo` — a seek that lands d ≤
///     kShortSeekLimit positions ahead costs O(log d) probes on lines the
///     intersection loop usually just touched (the access pattern Leapfrog
///     Triejoin's complexity bound relies on).
///  2. Far seeks with a sample (`samp` non-null) descend the cache-resident
///     sample instead: a binary search over every-kSeekSampleStride-th key
///     whose probes hit cache, landing in a single stride-wide window of
///     the column — a couple of lines — rather than chasing ~log2(hi - lo)
///     dependent misses across it.
///  3. The closing binary search prefetches both candidate next midpoints
///     (plain columns only — packed probes land inside at most two words,
///     already covered by the loader), overlapping each dependent probe's
///     miss with the next. When the bracket has shrunk to a small window
///     over a raw Value array (`raw` non-null), the remaining dependent
///     probes are replaced by one simd::LowerBoundU64 sweep — independent
///     4-lane compares over memory the search already pulled near cache.
template <typename Load, typename Prefetch>
size_t Gallop(Load load, Prefetch prefetch, const Value* samp,
              const Value* raw, int64_t* blocks, size_t lo, size_t hi,
              uint64_t key, bool strict, int64_t* cmps) {
  auto past = [&](uint64_t v) { return strict ? v > key : v >= key; };
  if (lo >= hi) return hi;
  // Probes accumulate in a register and publish once on exit; a per-probe
  // write through the pointer would serialize the dependent-load chain.
  int64_t probes = 1;
  struct Publish {
    int64_t* out;
    int64_t* n;
    ~Publish() { *out += *n; }
  } publish{cmps, &probes};
  if (past(load(lo))) return lo;
  size_t prev = lo;  // last position known not-past
  size_t cur = hi;   // first position known past (hi: none yet)
  size_t step = 1;
  size_t probe = lo + 1;
  while (probe < hi) {
    if (samp != nullptr && probe - lo > kShortSeekLimit) {
      // Far seek: switch to the sampled descent. Grid points strictly
      // between prev and hi live at sample indices [slo, shi].
      const size_t slo = prev / kSeekSampleStride + 1;
      const size_t shi = (hi - 1) / kSeekSampleStride;
      if (slo <= shi) {
        size_t a = slo;
        size_t b = shi + 1;
        while (a < b) {
          const size_t mid = a + (b - a) / 2;
          ++probes;
          if (past(samp[mid]))
            b = mid;
          else
            a = mid + 1;
        }
        if (a > slo) prev = (a - 1) * kSeekSampleStride;
        cur = (a <= shi) ? a * kSeekSampleStride : hi;
      }
      break;
    }
    ++probes;
    if (past(load(probe))) {
      cur = probe;
      break;
    }
    prev = probe;
    step <<= 1;
    probe = (step < hi - lo) ? lo + step : hi;
  }
  // Binary search in (prev, cur]; cur == hi means nothing is known past.
  constexpr size_t kSimdCloseSpan = 128;
  const bool vec = raw != nullptr && simd::Available();
  size_t a = prev + 1;
  size_t b = cur;
  while (a < b) {
    if (vec && b - a <= kSimdCloseSpan) {
      ++probes;
      return simd::LowerBoundU64(raw, a, b, key, strict, blocks);
    }
    const size_t mid = a + (b - a) / 2;
    prefetch(a + (mid - a) / 2, mid + 1 + (b - mid) / 2);
    ++probes;
    if (past(load(mid))) {
      b = mid;
    } else {
      a = mid + 1;
    }
  }
  return a;
}

size_t GallopPlain(const Value* col, const Value* samp, size_t lo, size_t hi,
                   Value key, bool strict, int64_t* cmps, int64_t* blocks) {
  return Gallop(
      [col](size_t i) { return col[i]; },
      [col](size_t m1, size_t m2) {
#if defined(__GNUC__)
        // Both candidate next midpoints, prefetched so the next probe's
        // cache miss overlaps this one's — the search is a chain of
        // dependent loads.
        __builtin_prefetch(col + m1);
        __builtin_prefetch(col + m2);
#else
        (void)m1;
        (void)m2;
#endif
      },
      samp, col, blocks, lo, hi, key, strict, cmps);
}

}  // namespace

size_t TrieSeek(const Value* col, const Value* samp, size_t lo, size_t hi,
                Value key, int64_t* cmps, int64_t* blocks) {
  return GallopPlain(col, samp, lo, hi, key, /*strict=*/false, cmps, blocks);
}

size_t TrieRunEnd(const Value* col, const Value* samp, size_t lo, size_t hi,
                  Value key, int64_t* cmps, int64_t* blocks) {
  return GallopPlain(col, samp, lo, hi, key, /*strict=*/true, cmps, blocks);
}

size_t TrieSeekPacked(const uint64_t* words, int width, const Value* samp,
                      size_t lo, size_t hi, uint64_t code, int64_t* cmps) {
  const uint64_t mask = PackMask(width);
  if (width <= 57) {
    // Rolling byte-addressed scan of the first few positions: leapfrog
    // seek distances are usually tiny, and the sequential unpack (advance
    // the bit cursor, one unaligned load per code — no positional multiply,
    // no dependent probe chain) beats the exponential phase on those.
    // Far seeks fall through to the shared gallop from where the scan
    // stopped; every scanned position is known not-past, so the gallop
    // invariant holds from the new lo.
    constexpr size_t kPackedLinearProbe = 16;
    const auto* bytes = reinterpret_cast<const unsigned char*>(words);
    const size_t end = std::min(hi, lo + kPackedLinearProbe);
    size_t bit = lo * static_cast<size_t>(width);
    int64_t probes = 0;
    for (size_t pos = lo; pos < end; ++pos) {
      uint64_t v;
      std::memcpy(&v, bytes + (bit >> 3), sizeof v);
      ++probes;
      if (((v >> (bit & 7)) & mask) >= code) {
        *cmps += probes;
        return pos;
      }
      bit += static_cast<size_t>(width);
    }
    *cmps += probes;
    if (end == hi) return hi;
    lo = end;
  }
  // Strictness is handled by the caller's key→code translation (a strict
  // value seek is a non-strict seek to UpperCode), so only the >= form
  // exists here.
  return Gallop(
      [words, width, mask](size_t i) { return UnpackAt(words, i, width, mask); },
      [](size_t, size_t) {}, samp, /*raw=*/nullptr, /*blocks=*/nullptr, lo, hi,
      code, /*strict=*/false, cmps);
}

}  // namespace internal
}  // namespace topofaq
