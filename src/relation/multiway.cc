#include "relation/multiway.h"

namespace topofaq {
namespace internal {

namespace {

/// Shared gallop: first traversal position t in [lo, hi) whose `col` value
/// satisfies value >= key (strict == false) or value > key (strict == true).
/// Exponential probing from `lo` followed by a binary search of the located
/// window, so a seek that lands d positions ahead costs O(log d) probes —
/// the access pattern Leapfrog Triejoin's complexity bound relies on.
size_t Gallop(const Value* d, size_t stride, size_t col, size_t lo, size_t hi,
              Value key, bool strict, int64_t* cmps) {
  auto past = [&](size_t t) {
    const Value v = d[t * stride + col];
    return strict ? v > key : v >= key;
  };
  if (lo >= hi) return hi;
  ++*cmps;
  if (past(lo)) return lo;
  // Exponential probe: prev is the last position known not-past.
  size_t prev = lo;
  size_t step = 1;
  size_t cur = lo + 1;
  while (cur < hi) {
    ++*cmps;
    if (past(cur)) break;
    prev = cur;
    step <<= 1;
    cur = (step < hi - lo) ? lo + step : hi;
  }
  // Binary search in (prev, cur]; cur == hi means everything is not-past.
  size_t a = prev + 1;
  size_t b = cur;
  while (a < b) {
    const size_t mid = a + (b - a) / 2;
    ++*cmps;
    if (past(mid)) {
      b = mid;
    } else {
      a = mid + 1;
    }
  }
  return a;
}

}  // namespace

size_t TrieSeek(const Value* d, size_t stride, size_t col, size_t lo,
                size_t hi, Value key, int64_t* cmps) {
  return Gallop(d, stride, col, lo, hi, key, /*strict=*/false, cmps);
}

size_t TrieRunEnd(const Value* d, size_t stride, size_t col, size_t lo,
                  size_t hi, Value key, int64_t* cmps) {
  return Gallop(d, stride, col, lo, hi, key, /*strict=*/true, cmps);
}

}  // namespace internal
}  // namespace topofaq
