#include "relation/multiway.h"

namespace topofaq {
namespace internal {

namespace {

/// Shared gallop: first position t in [lo, hi) of the contiguous column
/// array `col` satisfying col[t] >= key (strict == false) or col[t] > key
/// (strict == true). Probes are counted into *cmps.
///
/// Three phases, all maintaining the invariant "everything ≤ prev is
/// not-past, cur is past or cur == hi", finished by one shared binary
/// search of (prev, cur]:
///
///  1. Short exponential probe from `lo` — a seek that lands d ≤
///     kShortSeekLimit positions ahead costs O(log d) probes on lines the
///     intersection loop usually just touched (the access pattern Leapfrog
///     Triejoin's complexity bound relies on).
///  2. Far seeks with a sample (`samp` non-null) descend the cache-resident
///     sample instead: a binary search over every-kSeekSampleStride-th key
///     whose probes hit cache, landing in a single stride-wide window of
///     the column — a couple of lines — rather than chasing ~log2(hi - lo)
///     dependent misses across it.
///  3. The closing binary search prefetches both candidate next midpoints,
///     overlapping each dependent probe's miss with the next.
size_t Gallop(const Value* col, const Value* samp, size_t lo, size_t hi,
              Value key, bool strict, int64_t* cmps) {
  auto past = [&](Value v) { return strict ? v > key : v >= key; };
  if (lo >= hi) return hi;
  // Probes accumulate in a register and publish once on exit; a per-probe
  // write through the pointer would serialize the dependent-load chain.
  int64_t probes = 1;
  struct Publish {
    int64_t* out;
    int64_t* n;
    ~Publish() { *out += *n; }
  } publish{cmps, &probes};
  if (past(col[lo])) return lo;
  size_t prev = lo;  // last position known not-past
  size_t cur = hi;   // first position known past (hi: none yet)
  size_t step = 1;
  size_t probe = lo + 1;
  while (probe < hi) {
    if (samp != nullptr && probe - lo > kShortSeekLimit) {
      // Far seek: switch to the sampled descent. Grid points strictly
      // between prev and hi live at sample indices [slo, shi].
      const size_t slo = prev / kSeekSampleStride + 1;
      const size_t shi = (hi - 1) / kSeekSampleStride;
      if (slo <= shi) {
        size_t a = slo;
        size_t b = shi + 1;
        while (a < b) {
          const size_t mid = a + (b - a) / 2;
          ++probes;
          if (past(samp[mid]))
            b = mid;
          else
            a = mid + 1;
        }
        if (a > slo) prev = (a - 1) * kSeekSampleStride;
        cur = (a <= shi) ? a * kSeekSampleStride : hi;
      }
      break;
    }
    ++probes;
    if (past(col[probe])) {
      cur = probe;
      break;
    }
    prev = probe;
    step <<= 1;
    probe = (step < hi - lo) ? lo + step : hi;
  }
  // Binary search in (prev, cur]; cur == hi means nothing is known past.
  size_t a = prev + 1;
  size_t b = cur;
  while (a < b) {
    const size_t mid = a + (b - a) / 2;
#if defined(__GNUC__)
    // Both candidate next midpoints, prefetched so the next probe's cache
    // miss overlaps this one's — the search is a chain of dependent loads.
    __builtin_prefetch(col + (a + (mid - a) / 2));
    __builtin_prefetch(col + (mid + 1 + (b - mid) / 2));
#endif
    ++probes;
    if (past(col[mid])) {
      b = mid;
    } else {
      a = mid + 1;
    }
  }
  return a;
}

}  // namespace

size_t TrieSeek(const Value* col, const Value* samp, size_t lo, size_t hi,
                Value key, int64_t* cmps) {
  return Gallop(col, samp, lo, hi, key, /*strict=*/false, cmps);
}

size_t TrieRunEnd(const Value* col, const Value* samp, size_t lo, size_t hi,
                  Value key, int64_t* cmps) {
  return Gallop(col, samp, lo, hi, key, /*strict=*/true, cmps);
}

}  // namespace internal
}  // namespace topofaq
