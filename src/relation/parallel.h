// Morsel-parallel execution for the sorted-relation kernel (docs/kernel.md,
// "Morsel-parallel execution").
//
// The operators in ops.h stay sort-merge kernels over canonical traversals;
// this header supplies the fork/join machinery that lets one operator call
// fan its traversal out across cores:
//
//  * WorkerPool — a lazily-created process-wide pool of workers with a
//    work-stealing ParallelFor (atomic task counter). The calling thread is
//    always worker 0, so a pool of zero threads degrades to plain serial
//    execution and parallelism never deadlocks.
//  * KeyAlignedCuts — splits a traversal range [0, n) into morsels whose
//    boundaries never land inside a key run. This is the invariant that
//    makes per-morsel outputs concatenate into the serial result byte for
//    byte: group folds and builder-level adjacent merges can never straddle
//    a cut.
//  * MorselRun — the shared fork/join scaffold: one RelationBuilder per
//    morsel, one worker-owned ExecContext per worker (ExecContext's arena),
//    concatenation through Relation::ConcatPieces, which certifies the
//    result canonical with no closing sort because morsels are disjoint key
//    ranges in traversal order.
//
// Determinism contract: for fixed inputs, operator output bytes (rows and
// annotations) are identical for every parallelism level, including 1 (the
// serial path). Only OpStats::comparisons/morsels may differ.
#ifndef TOPOFAQ_RELATION_PARALLEL_H_
#define TOPOFAQ_RELATION_PARALLEL_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "relation/exec.h"
#include "relation/relation.h"

namespace topofaq {

/// Persistent fork/join worker pool. One job runs at a time; a ParallelFor
/// issued while the pool is busy (e.g. from a second user thread) runs
/// entirely on the calling thread instead of queueing, so the pool can never
/// deadlock and callers never wait on unrelated work.
class WorkerPool {
 public:
  /// The process-wide pool, created on first use with
  /// max(3, hardware_concurrency - 1) threads (the floor keeps multi-worker
  /// execution — and its TSan coverage — real even on tiny machines).
  static WorkerPool& Shared();

  explicit WorkerPool(int threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(worker, task) for every task in [0, n_tasks), on up to
  /// `workers` workers: the calling thread is worker 0 and up to workers-1
  /// pool threads join in. Tasks are claimed through an atomic counter
  /// (work-stealing), so skewed morsels balance automatically. Blocks until
  /// every task has finished; the return establishes a happens-before edge
  /// with all task executions.
  void ParallelFor(int workers, size_t n_tasks,
                   const std::function<void(int, size_t)>& fn);

  /// Largest worker count ParallelFor can put to use (pool threads + 1).
  int max_workers() const { return static_cast<int>(threads_.size()) + 1; }

 private:
  void WorkerLoop(int id);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, size_t)>* fn_ = nullptr;  // guarded by mu_
  size_t n_tasks_ = 0;                                    // guarded by mu_
  int job_workers_ = 0;   // pool threads participating in the current job
  int active_ = 0;        // pool threads still inside the current job
  uint64_t epoch_ = 0;    // bumped per job so workers wake exactly once
  bool busy_ = false;
  bool stop_ = false;
  std::atomic<size_t> next_task_{0};
};

/// Inputs smaller than this stay on the serial path regardless of the
/// parallelism knob: below it, fork/join overhead dwarfs the morsel work.
inline constexpr size_t kParallelMinRows = 1024;

/// Morsels per worker. More than 1 lets the atomic task counter rebalance
/// skewed key distributions (a worker stuck on a heavy run stops claiming).
inline constexpr size_t kMorselsPerWorker = 4;

/// Workers a single operator call should fan out to: the context's knob,
/// capped by the pool, and 1 (serial) for inputs under kParallelMinRows.
inline int PlannedWorkers(const ExecContext& cx, size_t traversal_rows) {
  if (cx.parallelism <= 1 || traversal_rows < kParallelMinRows) return 1;
  return std::min(cx.parallelism, WorkerPool::Shared().max_workers());
}

/// Splits [0, n) into at most `want` contiguous morsels of roughly equal
/// size, each cut advanced to the next traversal position that starts a new
/// key run (`starts_run(t)` — t in [1, n) — must be true iff position t's key
/// differs from position t-1's). Returns cut points c0=0 < c1 < ... < ck=n.
/// Cuts depend only on the data and `want`, never on thread timing.
template <typename StartsRun>
std::vector<size_t> KeyAlignedCuts(size_t n, size_t want,
                                   StartsRun&& starts_run) {
  std::vector<size_t> cuts{0};
  if (n > 0 && want > 1) {
    const size_t step = std::max<size_t>(1, n / want);
    size_t c = step;
    while (c < n) {
      while (c < n && !starts_run(c)) ++c;
      if (c >= n) break;
      cuts.push_back(c);
      c += step;
    }
  }
  cuts.push_back(n);
  return cuts;
}

/// Deterministic parallel permutation sort — the "parallelize the serial
/// preambles" seam (ROADMAP): Canonicalize and the operator key/row-order
/// permutation sorts route through this. `less` MUST be a *total* order
/// (callers tie-break by index), so the sorted sequence is unique and the
/// chunked sort-then-pairwise-inplace-merge below produces bit-identical
/// results to a serial std::sort at every worker count — including
/// workers == 1, which is exactly the serial sort.
template <typename Less>
void ParallelSortPerm(std::vector<size_t>* perm, int workers, Less&& less) {
  const size_t n = perm->size();
  size_t* base = perm->data();
  if (workers <= 1 || n < 2 * kParallelMinRows) {
    std::sort(base, base + n, less);
    return;
  }
  const size_t chunks = static_cast<size_t>(workers);
  std::vector<size_t> bounds(chunks + 1);
  for (size_t i = 0; i <= chunks; ++i) bounds[i] = i * n / chunks;
  WorkerPool::Shared().ParallelFor(workers, chunks, [&](int, size_t i) {
    std::sort(base + bounds[i], base + bounds[i + 1], less);
  });
  // Balanced pairwise merge: log2(chunks) levels, each level's merges
  // independent and run on the pool.
  for (size_t width = 1; width < chunks; width <<= 1) {
    std::vector<std::array<size_t, 3>> jobs;
    for (size_t i = 0; i + width < chunks; i += 2 * width)
      jobs.push_back({bounds[i], bounds[i + width],
                      bounds[std::min(chunks, i + 2 * width)]});
    WorkerPool::Shared().ParallelFor(
        workers, jobs.size(), [&](int, size_t j) {
          std::inplace_merge(base + jobs[j][0], base + jobs[j][1],
                             base + jobs[j][2], less);
        });
  }
}

/// The shared fork/join scaffold for morsel-parallel operators: splits the
/// traversal [0, n) at key-run boundaries, runs
/// `emit(worker_ctx, begin, end, builder)` per morsel on the pool (each
/// morsel gets its own RelationBuilder; each worker its own child context
/// for scratch and stats), and concatenates the per-morsel outputs — already
/// globally sorted because morsels are disjoint key ranges in traversal
/// order. Returns the canonical result and reports the morsel count in
/// `st->morsels`; callers roll worker stats up separately.
///
/// Cancellation (server/engine.h): the owning context's cancel token is
/// checked once per morsel, inside the ParallelFor task body, before the
/// morsel's emission runs. Once the token fires, remaining morsels become
/// no-ops (their builders stay empty), so a cancelled parallel operator
/// call returns within one morsel's worth of work. The (empty-ish) result
/// is still structurally canonical but semantically unspecified; solvers
/// check ExecContext::cancelled between operator calls and discard it,
/// surfacing Status::Cancelled instead.
template <CommutativeSemiring S, typename StartsRun, typename Emit>
Relation<S> MorselRun(ExecContext& cx, int workers, Schema schema, size_t n,
                      StartsRun&& starts_run, OpStats* st, Emit&& emit) {
  std::vector<size_t> cuts =
      KeyAlignedCuts(n, static_cast<size_t>(workers) * kMorselsPerWorker,
                     starts_run);
  const size_t m = cuts.size() - 1;
  std::vector<RelationBuilder<S>> builders;
  builders.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    builders.emplace_back(schema);
    // Pieces are spliced by ConcatPieces, which decodes them anyway — only
    // the concatenated result runs the encoding policy.
    builders.back().set_encode(false);
  }
  // Materialize the worker arena before forking: lazy creation inside the
  // region would race on the arena vector.
  for (int w = 0; w < workers; ++w) cx.WorkerContext(w);
  WorkerPool::Shared().ParallelFor(
      std::min<int>(workers, static_cast<int>(m)), m, [&](int w, size_t t) {
        if (cx.cancelled()) return;  // morsel-boundary cancellation check
        ExecContext& wc = cx.WorkerContext(w);
        // One branch per morsel when tracing is off. When on, each slice
        // becomes a span on worker w's own track (registered by the
        // pre-fork WorkerContext pass above), so the timeline shows how the
        // key-aligned cuts actually balanced.
        if (wc.trace == nullptr) {
          emit(wc, cuts[t], cuts[t + 1], &builders[t]);
          return;
        }
        obs::Span sp(wc.trace, "morsel", wc.trace_track);
        emit(wc, cuts[t], cuts[t + 1], &builders[t]);
        char args[96];
        std::snprintf(args, sizeof(args),
                      "{\"task\":%zu,\"begin\":%zu,\"end\":%zu}", t, cuts[t],
                      cuts[t + 1]);
        sp.SetArgsJson(args);
      });
  st->morsels += static_cast<int64_t>(m);
  std::vector<Relation<S>> pieces;
  pieces.reserve(m);
  for (auto& b : builders) pieces.push_back(b.Build());
  return Relation<S>::ConcatPieces(std::move(schema), std::move(pieces));
}

}  // namespace topofaq

#endif  // TOPOFAQ_RELATION_PARALLEL_H_
