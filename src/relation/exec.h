// Execution context for the sorted-relation kernel (see docs/kernel.md).
//
// Every relational operator (Join / Semijoin / Project / Eliminate) threads
// an ExecContext through its hot loop. The context serves three purposes:
//
//  1. Scratch reuse: operators borrow the context's row/permutation buffers
//     instead of allocating per call, so a message-passing pass over a GHD
//     performs O(1) allocations per operator instead of O(rows).
//  2. Observability: per-operator counters (calls, rows in/out, key
//     comparisons, sorts performed vs. skipped, morsels executed) that the
//     protocol layer exports in ProtocolStats and the benches print.
//     `sort_skips` is the direct measure of how often the canonical-order
//     invariant saved a sort; `morsels` of how often the parallel path ran.
//  3. Parallelism: the `parallelism` knob selects how many workers a single
//     operator call may fan morsels out to (docs/kernel.md, "Morsel-parallel
//     execution"). The default is DefaultParallelism() — 1 unless the
//     TOPOFAQ_PARALLELISM environment variable says otherwise — and 1 always
//     means exactly the serial code path. Parallel operators borrow
//     per-worker child contexts from the arena below and roll their OpStats
//     back into this context's totals.
//
// Callers that don't care pass nullptr; operators then fall back to a
// thread-local default context (still reusing scratch across calls).
//
// Thread-safety: a context (with its worker arena) is owned by one logical
// caller at a time — do not share one ExecContext between concurrently
// executing operator calls; use one per calling thread. Operators themselves
// may fan out internally: worker threads only ever touch their own
// WorkerContext(i) plus read-only shared state, and the rollup happens after
// the fork/join barrier, so a parallel operator call is externally
// indistinguishable from a serial one.
#ifndef TOPOFAQ_RELATION_EXEC_H_
#define TOPOFAQ_RELATION_EXEC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "relation/encoding.h"
#include "util/types.h"

namespace topofaq {

/// Process-wide default operator parallelism, resolved once: the value of the
/// TOPOFAQ_PARALLELISM environment variable ("max" or "0" meaning
/// hardware_concurrency), or 1 when unset/invalid. Freshly constructed
/// ExecContexts start at this value. Defined in server/options.cc — the one
/// file that reads environment knobs (EngineOptions::FromEnv).
int DefaultParallelism();

/// Counters for one operator family. All counts are cumulative since the
/// last ResetStats().
struct OpStats {
  int64_t calls = 0;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  /// Key comparisons performed: merge/probe steps counted exactly, plus the
  /// deterministic n·ceil(log2 n) bound per permutation sort (sorts run on
  /// the worker pool, where per-invocation comparator counting would race).
  int64_t comparisons = 0;
  /// Permutation sorts that actually ran.
  int64_t sorts = 0;
  /// Sorts avoided because the input was canonical with a key-prefix order.
  int64_t sort_skips = 0;
  /// Morsel tasks executed by the parallel path (0 for purely serial calls).
  int64_t morsels = 0;
  /// Trie gallop searches issued by the worst-case-optimal multiway join
  /// (seek-to-key and run-end probes; 0 for the pairwise operators). For the
  /// multiway operator, `comparisons` counts leapfrog intersection steps:
  /// every key probe made while leapfrogging the active iterators to a
  /// common key.
  int64_t seeks = 0;
  /// High-water rows materialized by one call beyond its inputs (for the
  /// multiway join: rebuilt trie views + the output itself — the measured
  /// form of its peak-materialization-is-the-output guarantee). Combined
  /// with max, not sum, so rollups stay a high-water mark.
  int64_t peak_rows = 0;
  /// Vector blocks retired by the SIMD kernels (relation/simd.h): frontier
  /// intersection blocks, merge-advance probes, window decodes. 0 when
  /// TOPOFAQ_SIMD=off or the host lacks AVX2.
  int64_t simd_blocks = 0;
  /// Hot-loop iterations that were eligible for a vector kernel but ran the
  /// scalar body instead (toggle off, no AVX2, or an ineligible column
  /// shape — e.g. a permuted or encoded merge side).
  int64_t scalar_fallbacks = 0;

  OpStats& operator+=(const OpStats& o) {
    calls += o.calls;
    rows_in += o.rows_in;
    rows_out += o.rows_out;
    comparisons += o.comparisons;
    sorts += o.sorts;
    sort_skips += o.sort_skips;
    morsels += o.morsels;
    seeks += o.seeks;
    peak_rows = peak_rows > o.peak_rows ? peak_rows : o.peak_rows;
    simd_blocks += o.simd_blocks;
    scalar_fallbacks += o.scalar_fallbacks;
    return *this;
  }
};

class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Maximum workers one operator call may use. 1 (the default unless
  /// TOPOFAQ_PARALLELISM is set) selects the serial code path byte for byte;
  /// values > 1 let large inputs fan out into key-aligned morsels. Operator
  /// results are bit-identical for every setting.
  int parallelism = DefaultParallelism();

  /// Cooperative cancellation seam (server/engine.h): when non-null and set,
  /// the query that owns this context has been cancelled. The parallel
  /// scaffold checks it at every morsel boundary (MorselRun skips the
  /// morsel's emission entirely), and the solvers check it between operator
  /// calls; once it fires, operator outputs are unspecified and the caller
  /// must discard them and surface Status::Cancelled. Never consulted when
  /// null, so existing callers are untouched. Borrowed, not owned: the flag
  /// must outlive every operator call made through this context.
  const std::atomic<bool>* cancel = nullptr;
  bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  /// Span sink (obs/trace.h): when non-null, every public operator call and
  /// every morsel slice records a wall-clock span carrying its OpStats delta
  /// onto `trace_track`. Null (the default) is tracing off, and every span
  /// site then costs exactly one branch — the overhead contract
  /// bench/bench_obs_overhead.cc gates. Borrowed, not owned: the session
  /// must outlive every operator call made through this context (the engine
  /// snapshots a shared_ptr per job for exactly this reason).
  obs::TraceSession* trace = nullptr;
  /// The track operator spans from this context land on (a per-query track
  /// for engine jobs; per-worker tracks for morsel spans — WorkerContext
  /// registers those lazily).
  uint32_t trace_track = 0;
  /// Bumped by SetTrace so worker contexts re-register their tracks even
  /// when a new session lands at a freed session's address (a context that
  /// outlives many sessions — the engine's per-dispatcher contexts — would
  /// otherwise keep stale track ids on pointer equality alone).
  uint32_t trace_epoch = 0;

  /// Installs (or clears, with nullptr) the span sink. Always use this
  /// rather than assigning `trace` directly — the epoch bump is what keeps
  /// the worker arena's per-thread tracks in sync across sessions.
  void SetTrace(obs::TraceSession* t, uint32_t track) {
    trace = t;
    trace_track = track;
    ++trace_epoch;
  }

  // Per-operator statistics.
  OpStats join;
  OpStats semijoin;
  OpStats project;
  OpStats eliminate;
  OpStats multiway;

  // Scratch buffers borrowed by operators; contents are undefined between
  // calls. perm_a/perm_b hold row-order permutations, pos_* hold column
  // positions, cols_* hold the per-column base-pointer views the columnar
  // kernel traverses (borrowed from the input relations for the duration of
  // one call), row is the output-row assembly buffer.
  std::vector<size_t> perm_a;
  std::vector<size_t> perm_b;
  std::vector<int> pos_a;
  std::vector<int> pos_b;
  std::vector<int> pos_c;
  std::vector<const Value*> cols_a;
  std::vector<const Value*> cols_b;
  std::vector<const Value*> cols_c;
  std::vector<const Value*> cols_d;
  std::vector<const Value*> cols_e;
  // ColView counterparts of cols_* for the encoded kernel instantiations
  // (relations with compressed columns traverse views, never raw pointers).
  std::vector<ColView> vcols_a;
  std::vector<ColView> vcols_b;
  std::vector<ColView> vcols_c;
  std::vector<ColView> vcols_d;
  std::vector<ColView> vcols_e;
  std::vector<Value> row;
  /// Open-addressing run directory (key hash → key-run start + 1), serial
  /// path. The parallel path shards the directory instead (table_shards).
  std::vector<uint64_t> table;
  /// Per-shard run directories for the parallel path: shard s covers one
  /// key-aligned range of the probed side and is built by one worker.
  std::vector<std::vector<uint64_t>> table_shards;

  /// The i-th worker's child context, created on first use and reused across
  /// operator calls. Worker contexts always have parallelism == 1 (no nested
  /// fan-out) and inherit this context's cancel token; parallel operators
  /// hand context i exclusively to worker i for the duration of one
  /// fork/join region and roll its stats up afterwards.
  ExecContext& WorkerContext(int i);

  /// Sum of all operator counters (the protocol-level rollup).
  OpStats Totals() const;

  void ResetStats();

  std::string DebugString() const;

  /// `ctx` if non-null, otherwise a thread-local shared context.
  static ExecContext& Resolve(ExecContext* ctx);

 private:
  std::vector<std::unique_ptr<ExecContext>> workers_;
};

}  // namespace topofaq

#endif  // TOPOFAQ_RELATION_EXEC_H_
