// Execution context for the sorted-relation kernel (see docs/kernel.md).
//
// Every relational operator (Join / Semijoin / Project / Eliminate) threads
// an ExecContext through its hot loop. The context serves two purposes:
//
//  1. Scratch reuse: operators borrow the context's row/permutation buffers
//     instead of allocating per call, so a message-passing pass over a GHD
//     performs O(1) allocations per operator instead of O(rows).
//  2. Observability: per-operator counters (calls, rows in/out, key
//     comparisons, sorts performed vs. skipped) that the protocol layer
//     exports in ProtocolStats and the benches print. `sort_skips` is the
//     direct measure of how often the canonical-order invariant saved a sort.
//
// Callers that don't care pass nullptr; operators then fall back to a
// thread-local default context (still reusing scratch across calls).
#ifndef TOPOFAQ_RELATION_EXEC_H_
#define TOPOFAQ_RELATION_EXEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace topofaq {

/// Counters for one operator family. All counts are cumulative since the
/// last ResetStats().
struct OpStats {
  int64_t calls = 0;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  /// Key comparisons performed (merge steps + sort comparator invocations).
  int64_t comparisons = 0;
  /// Permutation sorts that actually ran.
  int64_t sorts = 0;
  /// Sorts avoided because the input was canonical with a key-prefix order.
  int64_t sort_skips = 0;

  OpStats& operator+=(const OpStats& o) {
    calls += o.calls;
    rows_in += o.rows_in;
    rows_out += o.rows_out;
    comparisons += o.comparisons;
    sorts += o.sorts;
    sort_skips += o.sort_skips;
    return *this;
  }
};

class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  // Per-operator statistics.
  OpStats join;
  OpStats semijoin;
  OpStats project;
  OpStats eliminate;

  // Scratch buffers borrowed by operators; contents are undefined between
  // calls. perm_a/perm_b hold row-order permutations, pos_* hold column
  // positions, row is the output-row assembly buffer.
  std::vector<size_t> perm_a;
  std::vector<size_t> perm_b;
  std::vector<int> pos_a;
  std::vector<int> pos_b;
  std::vector<int> pos_c;
  std::vector<Value> row;
  /// Open-addressing run directory (key hash → key-run start + 1).
  std::vector<uint64_t> table;

  /// Sum of all operator counters (the protocol-level rollup).
  OpStats Totals() const;

  void ResetStats();

  std::string DebugString() const;

  /// `ctx` if non-null, otherwise a thread-local shared context.
  static ExecContext& Resolve(ExecContext* ctx);
};

}  // namespace topofaq

#endif  // TOPOFAQ_RELATION_EXEC_H_
