// Event-driven execution mode of the paper's distributed protocols, on the
// AsyncNetwork + streaming relation transport (network/async.h,
// network/stream.h):
//
//  * RunTrivialProtocolAsync    — every relation is *streamed* to the sink
//                                 as fixed-size column-chunk pages under the
//                                 per-node page budget; the sink solves over
//                                 the reassembled relations.
//  * RunCoreForestProtocolAsync — the Theorem 4.1/5.2 star elimination as a
//                                 dependency DAG of simulated events: each
//                                 star broadcasts its center relation to the
//                                 remote leaf owners as a stream, leaves
//                                 compute their functional messages
//                                 (Corollary G.2 push-down) and stream them
//                                 back, and the center folds them in. Stars
//                                 in disjoint subtrees overlap in simulated
//                                 time, and every transfer overlaps with
//                                 whatever local kernel work is ready —
//                                 the communication/computation overlap the
//                                 synchronous round ledger cannot express.
//
// The synchronous protocols (distributed.h) stay the paper-faithful oracle:
// both async protocols construct the same decomposition (same
// width_restarts/seed defaults), run the same kernel operations on the same
// operands in the same order, and ship relations through a transport whose
// reassembly is bit-exact, so answers are bit-identical — per column and per
// annotation bit pattern — to RunTrivialProtocol / RunCoreForestProtocol at
// every parallelism level and page budget. What changes is the cost model:
// ProtocolStats reports a continuous makespan, actual transferred bits
// (pages + framing + credits), peak in-flight pages, and per-edge
// utilization instead of a round count.
//
// Local kernel work runs through the shared ExecContext: with parallelism
// > 1 every join/elimination a node "computes" fans out into morsels on the
// process-wide WorkerPool (docs/kernel.md), exactly as in the sync
// protocols.
#ifndef TOPOFAQ_PROTOCOLS_ASYNC_H_
#define TOPOFAQ_PROTOCOLS_ASYNC_H_

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "faq/solvers.h"
#include "ghd/width.h"
#include "network/async.h"
#include "network/stream.h"
#include "protocols/distributed.h"
#include "protocols/instance.h"

namespace topofaq {

/// Options shared by both async protocols.
struct AsyncProtocolOptions {
  /// Streaming transport knobs (page size, per-node page budget, framing).
  StreamOptions stream;
  /// Channel model. bandwidth_bits <= 0 derives the per-edge bandwidth from
  /// the instance's capacity_bits — one synchronous round's budget per time
  /// unit — so makespans are directly comparable to the round ledger's
  /// round counts; latency defaults to 1 (one "round" per hop).
  LinkParams link{1.0, 0.0};
  /// Kernel parallelism for the simulated local computations (same knob as
  /// CoreForestOptions::parallelism / TrivialOptions::parallelism).
  int parallelism = 0;
  /// Decomposition search knobs — defaults match CoreForestOptions, which is
  /// what makes async-vs-sync answers comparable star for star.
  int width_restarts = 8;
  uint64_t seed = 0xfa0;
  /// Simulated cost of local kernel work: time units per input row of each
  /// compute task. 0 (default) makes compute free in simulated time, so the
  /// makespan is pure transport; the *real* kernel work still runs (and is
  /// what the answer is computed from).
  double compute_time_per_row = 0.0;
  /// Span sink for the simulated timeline (obs/trace.h). When non-null, the
  /// run exports link transfers (via AsyncNetwork::set_trace) plus one span
  /// per scheduled compute task — stage name, on a per-player "node N"
  /// track, [schedule time, schedule time + simulated compute cost] — all in
  /// the simulated clock domain (pid 2 of the Chrome export). Spans on one
  /// node's track may overlap: a player can have several leaf computations
  /// in flight at once, which is exactly the concurrency worth seeing.
  /// Borrowed; must outlive the call.
  obs::TraceSession* trace = nullptr;
};

namespace internal {

/// Copies the async run's observables into ProtocolStats.
inline void FillAsyncStats(const AsyncNetwork& net, int64_t pages,
                           int64_t peak_pages, int64_t payload_bits_encoded,
                           int64_t payload_bits_plain, ProtocolStats* st) {
  st->makespan = net.makespan();
  st->total_bits = net.total_bits();
  st->pages = pages;
  st->max_in_flight_pages = peak_pages;
  st->payload_bits_encoded = payload_bits_encoded;
  st->payload_bits_plain = payload_bits_plain;
  st->edge_utilization = net.EdgeUtilization();
  st->max_edge_utilization = 0.0;
  for (double u : st->edge_utilization)
    st->max_edge_utilization = std::max(st->max_edge_utilization, u);
}

/// Per-player compute-span emitter for the async protocols: one lazily
/// registered simulated-domain "node N" track per player, one span per
/// scheduled compute task (interval = [schedule time, + simulated cost],
/// args = the row count the cost was derived from). Every method is a no-op
/// when constructed with a null session.
class NodeComputeTracer {
 public:
  NodeComputeTracer(obs::TraceSession* t, int num_nodes) : trace_(t) {
    if (t != nullptr) tracks_.assign(static_cast<size_t>(num_nodes), 0);
  }

  void Emit(const char* stage, NodeId node, double start, double dur,
            size_t rows) {
    if (trace_ == nullptr) return;
    uint32_t& slot = tracks_[static_cast<size_t>(node)];
    if (slot == 0)
      slot = trace_->RegisterTrack("node " + std::to_string(node),
                                   obs::ClockDomain::kSimulated) +
             1;
    char args[48];
    std::snprintf(args, sizeof(args), "{\"rows\":%zu}", rows);
    trace_->Emit(stage, slot - 1, obs::ClockDomain::kSimulated, start, dur,
                 args);
  }

 private:
  obs::TraceSession* trace_;
  std::vector<uint32_t> tracks_;  // track id + 1; 0 = not yet registered
};

/// Effective link parameters: the configured ones, with bandwidth derived
/// from the instance's per-round budget when unset.
inline LinkParams ResolveLink(const AsyncProtocolOptions& opts,
                              int64_t capacity_bits) {
  LinkParams link = opts.link;
  if (link.bandwidth_bits <= 0)
    link.bandwidth_bits = static_cast<double>(capacity_bits);
  return link;
}

/// The streaming transport cuts sorted pages from its sources, so the async
/// protocols require canonical input relations — surfaced as a Status here
/// rather than a CHECK crash mid-simulation. (The synchronous protocols
/// accept unsorted listings; they never page anything.)
template <CommutativeSemiring S>
Status ValidateCanonicalInputs(const DistInstance<S>& inst) {
  for (const Relation<S>& r : inst.query.relations)
    if (!r.canonical())
      return Status::InvalidArgument(
          "async protocols stream relations page by page and require "
          "canonical inputs — call Relation::Canonicalize() first (the "
          "synchronous protocols accept unsorted listings)");
  return Status::Ok();
}

}  // namespace internal

/// Lemma 3.1, streaming edition: pages every remote relation to the sink
/// under the page budget, then solves over the reassembled inputs. The
/// answer is bit-identical to RunTrivialProtocol's.
template <CommutativeSemiring S>
Result<ProtocolResult<S>> RunTrivialProtocolAsync(
    const DistInstance<S>& inst, const AsyncProtocolOptions& opts = {}) {
  auto d = inst.Derived();
  if (!d.ok()) return d.status();
  TOPOFAQ_RETURN_IF_ERROR(internal::ValidateCanonicalInputs(inst));
  AsyncNetwork net(inst.topology, internal::ResolveLink(opts, d->capacity_bits));
  if (opts.trace != nullptr) net.set_trace(opts.trace);
  internal::NodeComputeTracer ntrace(opts.trace, inst.topology.num_nodes());
  StreamNet<S> streams(&net, opts.stream);
  ExecContext ctx;
  if (opts.parallelism > 0) ctx.parallelism = opts.parallelism;

  const int ne = inst.query.hypergraph.num_edges();
  std::vector<Relation<S>> at_sink(ne);
  int pending = 0;
  Status task_status = Status::Ok();
  bool solved = false;
  ProtocolResult<S> out;

  // The sink's solve task: scheduled (with the simulated compute cost) once
  // the last stream completes. It consumes the *reassembled* relations, so
  // this path also proves the transport lossless end to end.
  auto solve = [&] {
    size_t rows = 0;
    for (const Relation<S>& r : at_sink) rows += r.size();
    const double delay =
        opts.compute_time_per_row * static_cast<double>(rows);
    ntrace.Emit("solve", inst.sink, net.now(), delay, rows);
    net.ScheduleAfter(delay,
                      [&] {
                        FaqQuery<S> q;
                        q.hypergraph = inst.query.hypergraph;
                        q.relations = std::move(at_sink);
                        q.free_vars = inst.query.free_vars;
                        q.var_ops = inst.query.var_ops;
                        auto a = BruteForceSolve(q, &ctx);
                        if (!a.ok()) {
                          task_status = a.status();
                          return;
                        }
                        out.answer = std::move(a.value());
                        solved = true;
                      });
  };

  for (int e = 0; e < ne; ++e) {
    if (inst.owners[e] == inst.sink) {
      at_sink[e] = inst.query.relations[e];
      continue;
    }
    ++pending;
    streams.SendRelation(inst.owners[e], inst.sink, inst.query.relations[e],
                         d->bits_per_attr, [&, e](Relation<S> r) {
                           at_sink[e] = std::move(r);
                           if (--pending == 0) solve();
                         });
  }
  if (pending == 0) solve();

  net.Run();
  TOPOFAQ_RETURN_IF_ERROR(task_status);
  TOPOFAQ_CHECK_MSG(solved, "async trivial protocol did not complete");
  internal::FillAsyncStats(net, streams.pages_shipped(),
                           streams.max_in_flight_pages(),
                           streams.payload_bits_encoded(),
                           streams.payload_bits_plain(), &out.stats);
  out.stats.kernel = ctx.Totals();
  return out;
}

/// The Theorem 4.1 / 5.2 protocol as an event-driven star DAG. Same
/// decomposition, same local kernel operations in the same order as
/// RunCoreForestProtocol — bit-identical answers — with streaming transfers,
/// per-node page budgets, and makespan accounting instead of rounds.
template <CommutativeSemiring S>
Result<ProtocolResult<S>> RunCoreForestProtocolAsync(
    const DistInstance<S>& inst, const AsyncProtocolOptions& opts = {}) {
  auto d = inst.Derived();
  if (!d.ok()) return d.status();
  TOPOFAQ_RETURN_IF_ERROR(internal::ValidateCanonicalInputs(inst));
  // Shared with RunCoreForestProtocol (one definition each), so both modes
  // process the same stars from the same initial state.
  auto w = internal::CoreForestDecomposition(inst.query, opts.width_restarts,
                                             opts.seed);
  if (!w.ok()) return w.status();
  const Ghd& ghd = w->decomposition.ghd;

  AsyncNetwork net(inst.topology, internal::ResolveLink(opts, d->capacity_bits));
  if (opts.trace != nullptr) net.set_trace(opts.trace);
  internal::NodeComputeTracer ntrace(opts.trace, inst.topology.num_nodes());
  StreamNet<S> streams(&net, opts.stream);
  ExecContext ctx;
  if (opts.parallelism > 0) ctx.parallelism = opts.parallelism;

  const int n_nodes = ghd.num_nodes();
  std::vector<Relation<S>> state;
  std::vector<NodeId> node_owner;
  std::vector<bool> removed(n_nodes, false);
  internal::InitGhdState(inst, ghd, &state, &node_owner);
  const bool root_is_relation = ghd.node(ghd.root()).edge_id >= 0;

  // The star DAG. Each internal GHD node is one star step (the sync
  // protocol's loop body); a star can start once the stars of its internal
  // children have folded their subtrees, so disjoint subtrees run
  // concurrently in simulated time.
  struct Star {
    int center = -1;
    std::vector<int> kids;
    int deps = 0;              // unfinished child stars
    int messages_pending = 0;  // leaf messages not yet at the center owner
    std::vector<Relation<S>> msg_local;      // computed at the leaf (stream
                                             // sources; alive while in flight)
    std::vector<Relation<S>> msg_at_center;  // as delivered, kid order
    std::vector<int> dependents;             // star indices waiting on this
  };
  std::vector<Star> stars;
  std::vector<int> star_of(n_nodes, -1);
  for (int center : ghd.BottomUpOrder()) {
    if (center == ghd.root() && !root_is_relation) break;
    if (ghd.node(center).children.empty()) continue;
    Star s;
    s.center = center;
    s.kids = ghd.node(center).children;
    star_of[center] = static_cast<int>(stars.size());
    stars.push_back(std::move(s));
  }
  for (size_t i = 0; i < stars.size(); ++i)
    for (int c : stars[i].kids)
      if (star_of[c] >= 0) {
        ++stars[i].deps;
        stars[star_of[c]].dependents.push_back(static_cast<int>(i));
      }

  int stars_done = 0;
  bool finished = false;
  ProtocolResult<S> out;
  Relation<S> final_acc;                 // root answer, alive while streamed
  std::vector<Relation<S>> gather_parts; // core-bag gather, sync's at_sink
  int gather_pending = 0;

  // Every node-local kernel task goes through here, so this is also the one
  // compute-span site: `stage` names the protocol step, `node` the player
  // whose simulated track the span lands on.
  auto schedule_compute = [&](const char* stage, NodeId node, size_t rows,
                              std::function<void()> fn) {
    const double delay =
        opts.compute_time_per_row * static_cast<double>(rows);
    ntrace.Emit(stage, node, net.now(), delay, rows);
    net.ScheduleAfter(delay, std::move(fn));
  };

  // Mutually recursive stages, declared up front so any of them can chain
  // to any other from inside an event callback.
  std::function<void(int)> start_star;
  std::function<void(int, size_t)> compute_message;
  std::function<void(int, size_t, Relation<S>)> on_message;
  std::function<void(int)> star_join;
  std::function<void()> finish;
  std::function<void()> solve_core;

  // Leaf side of one star: aggregate out the private bound variables
  // (Corollary G.2) and stream the functional message to the center owner.
  compute_message = [&](int i, size_t k) {
    const int c = stars[i].kids[k];
    schedule_compute("compute_message", node_owner[c], state[c].size(),
                     [&, i, k, c] {
      Star& s = stars[i];
      const NodeId co = node_owner[s.center];
      const Schema& center_schema = state[s.center].schema();
      std::vector<VarId> private_vars;
      for (VarId x : state[c].schema().vars())
        if (!center_schema.Contains(x)) private_vars.push_back(x);
      Relation<S> msg =
          internal::EliminateAll(state[c], private_vars, inst.query, &ctx);
      removed[c] = true;
      if (node_owner[c] != co) {
        s.msg_local[k] = std::move(msg);
        streams.SendRelation(node_owner[c], co, s.msg_local[k],
                             d->bits_per_attr, [&, i, k](Relation<S> m) {
                               on_message(i, k, std::move(m));
                             });
      } else {
        on_message(i, k, std::move(msg));
      }
    });
  };

  on_message = [&](int i, size_t k, Relation<S> m) {
    Star& s = stars[i];
    s.msg_at_center[k] = std::move(m);
    if (--s.messages_pending == 0) star_join(i);
  };

  // Center side: fold the messages in kid order — the exact join sequence
  // of the sync protocol — then release dependent stars.
  star_join = [&](int i) {
    size_t rows = state[stars[i].center].size();
    for (const Relation<S>& m : stars[i].msg_at_center) rows += m.size();
    schedule_compute("star_join", node_owner[stars[i].center], rows, [&, i] {
      Star& s = stars[i];
      for (size_t k = 0; k < s.kids.size(); ++k)
        state[s.center] = Join(state[s.center], s.msg_at_center[k], &ctx);
      s.msg_local.clear();
      s.msg_at_center.clear();
      ++stars_done;
      for (int dep : s.dependents)
        if (--stars[dep].deps == 0) start_star(dep);
      if (stars_done == static_cast<int>(stars.size())) finish();
    });
  };

  start_star = [&](int i) {
    Star& s = stars[i];
    const NodeId co = node_owner[s.center];
    s.messages_pending = static_cast<int>(s.kids.size());
    s.msg_local.resize(s.kids.size());
    s.msg_at_center.resize(s.kids.size());
    // Kid indices grouped by owning player: one broadcast stream per remote
    // owner (Algorithm 1 step 3 — here as actual paged bytes), after which
    // that owner's leaves compute their messages. Local leaves (and every
    // leaf when the center is empty, where the sync protocol also skips the
    // broadcast) start at once.
    std::map<NodeId, std::vector<size_t>> by_owner;
    for (size_t k = 0; k < s.kids.size(); ++k)
      by_owner[node_owner[s.kids[k]]].push_back(k);
    const bool broadcast = !state[s.center].empty();
    for (const auto& [owner, kid_idx] : by_owner) {
      if (owner == co || !broadcast) {
        for (size_t k : kid_idx) compute_message(i, k);
      } else {
        streams.SendRelation(co, owner, state[s.center], d->bits_per_attr,
                             [&, i, kid_idx](Relation<S>) {
                               // The delivered copy only models the
                               // broadcast's bytes; leaves compute messages
                               // from their own state (see compute_message).
                               for (size_t k : kid_idx) compute_message(i, k);
                             });
      }
    }
  };

  // Residual core at the sink (Lemma 4.2 / F.2): join-and-eliminate the
  // gathered survivors, exactly the sync finish.
  solve_core = [&] {
    size_t rows = 0;
    for (const Relation<S>& r : gather_parts) rows += r.size();
    schedule_compute("solve_core", inst.sink, rows, [&] {
      Relation<S> acc =
          internal::JoinAndEliminate(std::move(gather_parts), inst.query, &ctx);
      acc = Project(acc, inst.query.free_vars, &ctx);
      out.answer = std::move(acc);
      finished = true;
    });
  };

  finish = [&] {
    if (root_is_relation) {
      const NodeId ro = node_owner[ghd.root()];
      schedule_compute("finish", ro, state[ghd.root()].size(), [&, ro] {
        Relation<S> acc = std::move(state[ghd.root()]);
        std::vector<VarId> bound;
        for (VarId v : acc.schema().vars())
          if (std::find(inst.query.free_vars.begin(),
                        inst.query.free_vars.end(),
                        v) == inst.query.free_vars.end())
            bound.push_back(v);
        acc = internal::EliminateAll(std::move(acc), bound, inst.query, &ctx);
        acc = Project(acc, inst.query.free_vars, &ctx);
        if (ro != inst.sink) {
          final_acc = std::move(acc);
          streams.SendRelation(ro, inst.sink, final_acc, d->bits_per_attr,
                               [&](Relation<S> a) {
                                 out.answer = std::move(a);
                                 finished = true;
                               });
        } else {
          out.answer = std::move(acc);
          finished = true;
        }
      });
      return;
    }
    // Synthetic core bag: stream the surviving root children to the sink.
    std::vector<int> gather_nodes;
    for (int c : ghd.node(ghd.root()).children)
      if (!removed[c]) gather_nodes.push_back(c);
    gather_parts.resize(gather_nodes.size());
    gather_pending = 0;
    for (int c : gather_nodes)
      if (node_owner[c] != inst.sink) ++gather_pending;
    for (size_t idx = 0; idx < gather_nodes.size(); ++idx) {
      const int c = gather_nodes[idx];
      if (node_owner[c] == inst.sink) {
        gather_parts[idx] = state[c];
        continue;
      }
      streams.SendRelation(node_owner[c], inst.sink, state[c],
                           d->bits_per_attr, [&, idx](Relation<S> r) {
                             gather_parts[idx] = std::move(r);
                             if (--gather_pending == 0) solve_core();
                           });
    }
    if (gather_pending == 0) solve_core();
  };

  // Kick off every dependency-free star; a star-less decomposition (single
  // bag) goes straight to the finish.
  if (stars.empty()) {
    finish();
  } else {
    for (size_t i = 0; i < stars.size(); ++i)
      if (stars[i].deps == 0) start_star(static_cast<int>(i));
  }

  net.Run();
  TOPOFAQ_CHECK_MSG(finished, "async core-forest protocol did not complete");
  internal::FillAsyncStats(net, streams.pages_shipped(),
                           streams.max_in_flight_pages(),
                           streams.payload_bits_encoded(),
                           streams.payload_bits_plain(), &out.stats);
  out.stats.kernel = ctx.Totals();
  return out;
}

/// BCQ wrapper over the async structured protocol.
inline Result<bool> RunBcqProtocolAsync(
    const DistInstance<BooleanSemiring>& inst, ProtocolStats* stats = nullptr,
    const AsyncProtocolOptions& opts = {}) {
  auto r = RunCoreForestProtocolAsync(inst, opts);
  if (!r.ok()) return r.status();
  if (stats != nullptr) *stats = r->stats;
  return !r->answer.empty();
}

}  // namespace topofaq

#endif  // TOPOFAQ_PROTOCOLS_ASYNC_H_
