// The paper's distributed protocols, executed against the SyncNetwork
// transport ledger:
//
//  * RunTrivialProtocol    — ship every relation to the sink and solve
//                            locally (Lemma 3.1, cost τ_MCF).
//  * RunCoreForestProtocol — the main upper bound (Theorems 4.1 / 5.2,
//                            Algorithms 1–3): process the GYO-GHD bottom-up;
//                            each star is one broadcast of the center
//                            relation plus one aggregated set-intersection
//                            over a packed family of edge-disjoint Steiner
//                            trees (Theorem 3.11); the leftover core is
//                            finished with the trivial protocol.
//
// Transport is simulated round-by-round with exact capacity accounting;
// relation payloads are computed at the owning node exactly when the
// simulated transfer completes, so answers are bit-identical — per column
// and per annotation bit pattern, the columnar kernel's determinism
// contract (docs/kernel.md) — to the centralized solvers while round
// counts reflect Model 2.1.
#ifndef TOPOFAQ_PROTOCOLS_DISTRIBUTED_H_
#define TOPOFAQ_PROTOCOLS_DISTRIBUTED_H_

#include <algorithm>

#include "faq/solvers.h"
#include "ghd/width.h"
#include "network/primitives.h"
#include "network/simulator.h"
#include "protocols/instance.h"

namespace topofaq {

/// Options for the trivial protocol.
struct TrivialOptions {
  /// Kernel parallelism for the sink's local solve — the same knob as
  /// CoreForestOptions::parallelism (0 inherits the process default;
  /// answers are bit-identical either way).
  int parallelism = 0;
};

/// Lemma 3.1: gather all relations at the sink, solve centrally.
template <CommutativeSemiring S>
Result<ProtocolResult<S>> RunTrivialProtocol(const DistInstance<S>& inst,
                                             const TrivialOptions& opts = {}) {
  auto d = inst.Derived();
  if (!d.ok()) return d.status();
  auto net = SyncNetwork::Create(inst.topology, d->capacity_bits);
  if (!net.ok()) return net.status();

  std::vector<FlowDemand> demands;
  for (int e = 0; e < inst.query.hypergraph.num_edges(); ++e)
    if (inst.owners[e] != inst.sink)
      demands.push_back({inst.owners[e],
                         inst.query.relations[e].EncodedBits(d->bits_per_attr)});
  int64_t finish =
      demands.empty() ? 0 : GatherFlows(&net.value(), demands, inst.sink, 0);

  ExecContext ctx;
  if (opts.parallelism > 0) ctx.parallelism = opts.parallelism;
  auto answer = BruteForceSolve(inst.query, &ctx);
  if (!answer.ok()) return answer.status();
  ProtocolResult<S> out;
  out.answer = std::move(answer.value());
  out.stats.rounds = finish;
  out.stats.total_bits = net->total_bits();
  out.stats.kernel = ctx.Totals();
  return out;
}

namespace internal {

/// Picks, for each Steiner tree in the plan, the convergecast root: the
/// plan's trees all span K_star, and the center owner is a terminal, so it
/// roots every tree.
inline std::vector<RootedTree> OrientAll(const Graph& g,
                                         const std::vector<SteinerTree>& trees,
                                         NodeId root) {
  std::vector<RootedTree> out;
  out.reserve(trees.size());
  for (const auto& t : trees) out.push_back(OrientTree(g, t.edges, root));
  return out;
}

/// The decomposition both execution modes of the structured protocol run on
/// (RunCoreForestProtocol and RunCoreForestProtocolAsync share this single
/// definition, so their star sequences — and hence their bit-identical
/// answers — can never silently diverge): width-minimized, re-rooted so
/// F ⊆ χ(root) when F is non-empty, with the Appendix G.5 precondition
/// checked.
template <CommutativeSemiring S>
Result<WidthResult> CoreForestDecomposition(const FaqQuery<S>& q,
                                            int width_restarts,
                                            uint64_t seed) {
  WidthResult w;
  if (q.free_vars.empty()) {
    w = width_restarts > 0 ? MinimizeWidth(q.hypergraph, width_restarts, seed)
                           : ComputeWidth(q.hypergraph);
  } else {
    std::vector<VarId> f = q.free_vars;
    std::sort(f.begin(), f.end());
    auto rooted = MinimizeWidthWithRoot(q.hypergraph, f, width_restarts, seed);
    if (!rooted.ok()) return rooted.status();
    w = std::move(rooted.value());
  }
  const Ghd& ghd = w.decomposition.ghd;
  const auto& root_chi = ghd.node(ghd.root()).chi;
  for (VarId v : q.free_vars)
    if (!std::binary_search(root_chi.begin(), root_chi.end(), v))
      return Status::FailedPrecondition(
          "free variable outside V(C(H)) (Appendix G.5)");
  return w;
}

/// Initial per-bag protocol state, shared by both execution modes: each GHD
/// node starts with its relation (owned by that relation's player) or, for
/// the synthetic core bag, the unit relation at the sink.
template <CommutativeSemiring S>
void InitGhdState(const DistInstance<S>& inst, const Ghd& ghd,
                  std::vector<Relation<S>>* state,
                  std::vector<NodeId>* node_owner) {
  const int n_nodes = ghd.num_nodes();
  state->resize(n_nodes);
  node_owner->assign(n_nodes, inst.sink);
  for (int v = 0; v < n_nodes; ++v) {
    const int e = ghd.node(v).edge_id;
    if (e >= 0) {
      (*state)[v] = inst.query.relations[e];
      (*node_owner)[v] = inst.owners[e];
    } else {
      (*state)[v] = UnitRelation<S>();
    }
  }
}

}  // namespace internal

/// Options for the structured protocol.
struct CoreForestOptions {
  /// Width-minimization restarts (0: canonical decomposition only).
  int width_restarts = 8;
  uint64_t seed = 0xfa0;
  /// Kernel parallelism for the simulated local computations (morsel-parallel
  /// operators, docs/kernel.md). 0 inherits the process default
  /// (TOPOFAQ_PARALLELISM, else 1); answers are bit-identical either way.
  int parallelism = 0;
};

/// The Theorem 4.1 / 5.2 protocol. Works for any assignment of relations to
/// players; requires F ⊆ V(C(H)) (Appendix G.5).
template <CommutativeSemiring S>
Result<ProtocolResult<S>> RunCoreForestProtocol(
    const DistInstance<S>& inst, const CoreForestOptions& opts = {}) {
  auto d = inst.Derived();
  if (!d.ok()) return d.status();
  auto w = internal::CoreForestDecomposition(inst.query, opts.width_restarts,
                                             opts.seed);
  if (!w.ok()) return w.status();
  const Ghd& ghd = w->decomposition.ghd;

  auto created = SyncNetwork::Create(inst.topology, d->capacity_bits);
  if (!created.ok()) return created.status();
  SyncNetwork& net = created.value();
  int64_t round = 0;
  // One execution context for every local relational computation the
  // protocol simulates: scratch buffers are reused across all star steps and
  // the kernel counters are exported in the result's ProtocolStats. With
  // opts.parallelism (or TOPOFAQ_PARALLELISM) > 1, every star's joins and
  // eliminations fan out into morsels on the worker pool.
  ExecContext ctx;
  if (opts.parallelism > 0) ctx.parallelism = opts.parallelism;

  // Node state: current relation + owning player.
  const int n_nodes = ghd.num_nodes();
  std::vector<Relation<S>> state;
  std::vector<NodeId> node_owner;
  std::vector<bool> removed(n_nodes, false);
  internal::InitGhdState(inst, ghd, &state, &node_owner);
  // Bottom-up star elimination (Lemma 4.1 / F.1): repeatedly take an
  // internal node whose children are all leaves, run Algorithm 1/2/3 on that
  // star. The root (whether a real relation or the synthetic core bag) is
  // handled after the loop.
  // The root is itself a star center when it carries a real relation (the
  // acyclic case): Algorithm 2 applies there too. The synthetic core bag
  // (cyclic H or a multi-component forest) is finished by the trivial
  // protocol instead.
  const bool root_is_relation = ghd.node(ghd.root()).edge_id >= 0;
  auto order = ghd.BottomUpOrder();
  for (int center : order) {
    if (center == ghd.root() && !root_is_relation) break;
    if (ghd.node(center).children.empty()) continue;
    // BottomUpOrder guarantees children were already processed (their own
    // subtrees are folded into them), so this is now a bottom star.
    const auto& kids = ghd.node(center).children;

    // Algorithm 1/2/3 star step. Participants: the center owner and the
    // leaf owners.
    std::vector<NodeId> leaf_owners;
    for (int c : kids)
      if (node_owner[c] != node_owner[center])
        leaf_owners.push_back(node_owner[c]);
    std::vector<NodeId> k_star{node_owner[center]};
    k_star.insert(k_star.end(), leaf_owners.begin(), leaf_owners.end());
    std::sort(k_star.begin(), k_star.end());
    k_star.erase(std::unique(k_star.begin(), k_star.end()), k_star.end());

    const int64_t center_bits = state[center].EncodedBits(d->bits_per_attr);
    const int64_t n_items = static_cast<int64_t>(state[center].size());

    if (k_star.size() > 1 && n_items > 0) {
      // One Steiner-tree packing serves both phases (all trees span K_star
      // and are rooted at the center owner): step 3's broadcast of the
      // center relation flows *down* the trees in chunks, and the
      // Theorem 3.11 combine flows *up* as a pipelined convergecast of the
      // |R_center| aggregated values.
      const int64_t star_bits = center_bits + n_items * S::kValueBits;
      const int64_t plan_items =
          std::max<int64_t>(1, CeilDiv(star_bits, d->capacity_bits));
      IntersectionPlan plan = PlanIntersection(inst.topology, k_star, plan_items,
                                               opts.seed + center);
      auto rooted = internal::OrientAll(inst.topology, plan.trees,
                                        node_owner[center]);
      round = MultiTreeBroadcast(&net, rooted, center_bits, round);

      // Leaves now hold the center relation; messages are computed locally
      // (Corollary G.2 push-down of private bound variables), then combined
      // on the way up.
      const int64_t chunk = CeilDiv(n_items, static_cast<int64_t>(rooted.size()));
      int64_t finish = round;
      for (auto& tree : rooted)
        finish = std::max(finish, ConvergecastItems(&net, tree, chunk,
                                                    S::kValueBits, round));
      round = finish;
    }

    // Functional leaf messages: relation over χ(center) ∩ χ(leaf) with
    // private bound variables aggregated out.
    std::vector<Relation<S>> messages;
    for (int c : kids) {
      const auto& center_schema = state[center].schema();
      std::vector<VarId> private_vars;
      for (VarId x : state[c].schema().vars())
        if (!center_schema.Contains(x)) private_vars.push_back(x);
      messages.push_back(
          internal::EliminateAll(state[c], private_vars, inst.query, &ctx));
      removed[c] = true;
    }

    // Functional update of the center relation (what the convergecast
    // delivered): R'_center = R_center ⊗ Π_c message_c, elementwise over
    // center tuples (message schemas are subsets of the center schema, so
    // the center schema is preserved).
    for (const auto& msg : messages)
      state[center] = Join(state[center], msg, &ctx);
  }

  // Finish. If the root was a star center it now holds the fully reduced
  // relation: eliminate remaining bound variables locally and route the
  // answer to the sink. Otherwise (synthetic core bag) gather the surviving
  // relations at the sink with the trivial protocol and solve the residual
  // core there (Lemma 4.2 / F.2) — JoinAndEliminate routes a cyclic core
  // through the worst-case-optimal MultiwayJoin, so the sink's local
  // computation stays within the core's output size.
  Relation<S> acc = internal::UnitRelation<S>();
  if (root_is_relation) {
    acc = std::move(state[ghd.root()]);
    std::vector<VarId> bound;
    for (VarId v : acc.schema().vars())
      if (std::find(inst.query.free_vars.begin(), inst.query.free_vars.end(), v) ==
          inst.query.free_vars.end())
        bound.push_back(v);
    acc = internal::EliminateAll(std::move(acc), bound, inst.query, &ctx);
  } else {
    std::vector<FlowDemand> demands;
    std::vector<Relation<S>> at_sink;
    for (int c : ghd.node(ghd.root()).children) {
      if (removed[c]) continue;
      if (node_owner[c] != inst.sink)
        demands.push_back(
            {node_owner[c], state[c].EncodedBits(d->bits_per_attr)});
      at_sink.push_back(state[c]);
    }
    if (!demands.empty()) round = GatherFlows(&net, demands, inst.sink, round);
    acc = internal::JoinAndEliminate(at_sink, inst.query, &ctx);
  }
  acc = Project(acc, inst.query.free_vars, &ctx);
  if (root_is_relation && node_owner[ghd.root()] != inst.sink)
    round = UnicastBits(&net, node_owner[ghd.root()], inst.sink,
                        std::max<int64_t>(1, acc.EncodedBits(d->bits_per_attr)),
                        round);

  ProtocolResult<S> out;
  out.answer = std::move(acc);
  out.stats.rounds = round;
  out.stats.total_bits = net.total_bits();
  out.stats.kernel = ctx.Totals();
  return out;
}

/// BCQ wrapper: runs the structured protocol, answer is satisfiability.
inline Result<bool> RunBcqProtocol(const DistInstance<BooleanSemiring>& inst,
                                   ProtocolStats* stats = nullptr,
                                   const CoreForestOptions& opts = {}) {
  auto r = RunCoreForestProtocol(inst, opts);
  if (!r.ok()) return r.status();
  if (stats != nullptr) *stats = r->stats;
  return !r->answer.empty();
}

}  // namespace topofaq

#endif  // TOPOFAQ_PROTOCOLS_DISTRIBUTED_H_
