// A distributed FAQ instance (Model 2.1): the query, the topology G, the
// assignment of input functions to players, the designated sink, and the
// channel budget (the paper's O(r·log2 D) bits per edge per round).
#ifndef TOPOFAQ_PROTOCOLS_INSTANCE_H_
#define TOPOFAQ_PROTOCOLS_INSTANCE_H_

#include <vector>

#include "faq/query.h"
#include "graphalg/graph.h"
#include "relation/exec.h"
#include "util/bits.h"

namespace topofaq {

template <CommutativeSemiring S>
struct DistInstance {
  FaqQuery<S> query;
  Graph topology;
  /// owners[e] = node holding relation e. More than one function may live on
  /// one player (|K| <= k, as exploited by the lower bounds).
  std::vector<NodeId> owners;
  /// The pre-determined player that must know the answer.
  NodeId sink = 0;
  /// Per-attribute wire width: log2(D). Derived by default.
  int bits_per_attr = 0;
  /// Per-edge per-round budget. Model 2.1 allots O(r·log2 D) bits so that
  /// "any tuple in any function can be communicated" each round; for
  /// annotated tuples this means r·log2(D) + kValueBits (the default).
  int64_t capacity_bits = 0;

  /// Fills derived fields and validates shapes.
  Status Finalize() {
    TOPOFAQ_RETURN_IF_ERROR(query.Validate());
    if (static_cast<int>(owners.size()) != query.hypergraph.num_edges())
      return Status::InvalidArgument("one owner per relation required");
    for (NodeId o : owners)
      if (o < 0 || o >= topology.num_nodes())
        return Status::InvalidArgument("owner node out of range");
    if (sink < 0 || sink >= topology.num_nodes())
      return Status::InvalidArgument("sink out of range");
    if (!topology.IsConnected())
      return Status::InvalidArgument("topology must be connected");
    if (bits_per_attr == 0)
      bits_per_attr = BitsForDomain(query.DomainSize());
    if (capacity_bits == 0)
      capacity_bits =
          static_cast<int64_t>(std::max(1, query.hypergraph.MaxArity())) *
              bits_per_attr +
          S::kValueBits;
    return Status::Ok();
  }

  /// Distinct players (the set K).
  std::vector<NodeId> Players() const {
    std::vector<NodeId> k = owners;
    std::sort(k.begin(), k.end());
    k.erase(std::unique(k.begin(), k.end()), k.end());
    return k;
  }
};

/// Round/byte accounting common to all protocols, plus the rolled-up
/// sorted-relation kernel counters for the local computation the protocol
/// simulated (rows in/out, key comparisons, sorts paid vs. skipped).
struct ProtocolStats {
  int64_t rounds = 0;
  int64_t total_bits = 0;
  OpStats kernel;
};

template <CommutativeSemiring S>
struct ProtocolResult {
  Relation<S> answer;
  ProtocolStats stats;
};

/// Spreads relations over nodes round-robin (the default assignment used by
/// upper-bound experiments; upper bounds hold for *every* assignment).
inline std::vector<NodeId> RoundRobinOwners(int num_relations, int num_nodes) {
  std::vector<NodeId> owners(num_relations);
  for (int e = 0; e < num_relations; ++e) owners[e] = e % num_nodes;
  return owners;
}

}  // namespace topofaq

#endif  // TOPOFAQ_PROTOCOLS_INSTANCE_H_
