// A distributed FAQ instance (Model 2.1): the query, the topology G, the
// assignment of input functions to players, the designated sink, and the
// channel budget (the paper's O(r·log2 D) bits per edge per round).
#ifndef TOPOFAQ_PROTOCOLS_INSTANCE_H_
#define TOPOFAQ_PROTOCOLS_INSTANCE_H_

#include <vector>

#include "faq/query.h"
#include "graphalg/graph.h"
#include "relation/exec.h"
#include "util/bits.h"

namespace topofaq {

/// Wire parameters derived from a DistInstance without mutating it — what
/// protocols consume instead of deep-copying the instance just to fill the
/// derived fields in place (the seed's copy-then-finalize pattern).
struct DistDerived {
  /// Per-attribute wire width: log2(D).
  int bits_per_attr = 0;
  /// Per-edge per-round budget (the paper's O(r·log2 D) default unless the
  /// instance pins one).
  int64_t capacity_bits = 0;
};

template <CommutativeSemiring S>
struct DistInstance {
  FaqQuery<S> query;
  Graph topology;
  /// owners[e] = node holding relation e. More than one function may live on
  /// one player (|K| <= k, as exploited by the lower bounds).
  std::vector<NodeId> owners;
  /// The pre-determined player that must know the answer.
  NodeId sink = 0;
  /// Per-attribute wire width: log2(D). Derived by default.
  int bits_per_attr = 0;
  /// Per-edge per-round budget. Model 2.1 allots O(r·log2 D) bits so that
  /// "any tuple in any function can be communicated" each round; for
  /// annotated tuples this means r·log2(D) + kValueBits (the default).
  int64_t capacity_bits = 0;

  /// Validates shapes and computes the derived wire parameters without
  /// mutating the instance — every protocol calls this on a const
  /// reference, so running a protocol never deep-copies the relations. The
  /// instance's own bits_per_attr / capacity_bits, when non-zero, pin the
  /// derived values.
  Result<DistDerived> Derived() const {
    TOPOFAQ_RETURN_IF_ERROR(query.Validate());
    if (static_cast<int>(owners.size()) != query.hypergraph.num_edges())
      return Status::InvalidArgument("one owner per relation required");
    for (NodeId o : owners)
      if (o < 0 || o >= topology.num_nodes())
        return Status::InvalidArgument("owner node out of range");
    if (sink < 0 || sink >= topology.num_nodes())
      return Status::InvalidArgument("sink out of range");
    if (!topology.IsConnected())
      return Status::InvalidArgument("topology must be connected");
    DistDerived d;
    d.bits_per_attr =
        bits_per_attr != 0 ? bits_per_attr : BitsForDomain(query.DomainSize());
    d.capacity_bits =
        capacity_bits != 0
            ? capacity_bits
            : static_cast<int64_t>(std::max(1, query.hypergraph.MaxArity())) *
                      d.bits_per_attr +
                  S::kValueBits;
    return d;
  }

  /// Distinct players (the set K).
  std::vector<NodeId> Players() const {
    std::vector<NodeId> k = owners;
    std::sort(k.begin(), k.end());
    k.erase(std::unique(k.begin(), k.end()), k.end());
    return k;
  }
};

/// Round/byte accounting common to all protocols, plus the rolled-up
/// sorted-relation kernel counters for the local computation the protocol
/// simulated (rows in/out, key comparisons, sorts paid vs. skipped).
///
/// The synchronous round-ledger protocols fill `rounds`; the event-driven
/// async protocols (protocols/async.h) leave rounds at 0 and fill the
/// makespan/streaming block instead. `total_bits` is exact in both modes —
/// for async it is the *actual* transferred bits (pages + framing +
/// credits), the observable the paper's footnote-6 per-edge budgets bound.
struct ProtocolStats {
  int64_t rounds = 0;
  int64_t total_bits = 0;
  /// Simulated completion time of the async run (0 for sync protocols).
  double makespan = 0.0;
  /// Relation pages shipped end to end by the streaming transport.
  int64_t pages = 0;
  /// High-water mark of pages any single *source* node had in flight
  /// (materialized but not yet consumed at the sink) — bounded by
  /// StreamOptions::node_page_budget by construction. Pages being relayed
  /// on a multi-hop route stay charged to their source, so a relay node may
  /// transiently buffer its own budget plus forwarded pages.
  int64_t max_in_flight_pages = 0;
  /// Actual payload bits the streaming transport shipped, with per-column
  /// encodings applied (packed codes + dictionaries + annotations; framing
  /// and credits excluded), and the same payload priced by the plain
  /// r·log2(D) cost model. encoded/plain is the wire compression the
  /// column encodings bought; the two are equal when nothing shipped
  /// encoded. Zero for the synchronous protocols, which never page.
  int64_t payload_bits_encoded = 0;
  int64_t payload_bits_plain = 0;
  /// Per-edge channel utilization over the whole run (both directions,
  /// AsyncNetwork::EdgeUtilization), and its maximum.
  std::vector<double> edge_utilization;
  double max_edge_utilization = 0.0;
  OpStats kernel;
};

template <CommutativeSemiring S>
struct ProtocolResult {
  Relation<S> answer;
  ProtocolStats stats;
};

/// Spreads relations over nodes round-robin (the default assignment used by
/// upper-bound experiments; upper bounds hold for *every* assignment).
inline std::vector<NodeId> RoundRobinOwners(int num_relations, int num_nodes) {
  std::vector<NodeId> owners(num_relations);
  for (int e = 0; e < num_relations; ++e) owners[e] = e % num_nodes;
  return owners;
}

}  // namespace topofaq

#endif  // TOPOFAQ_PROTOCOLS_INSTANCE_H_
