// Per-bound-variable aggregate operators for the *general* FAQ problem
// (Eq. (4) of the paper): each bound variable i carries its own ⊕(i), which is
// either the semiring's ⊗ (a "product aggregate") or forms a commutative
// semiring (D, ⊕(i), ⊗) sharing the same 0 and 1 (a "semiring aggregate").
//
// We realize this generality over a numeric domain: a runtime VarOp selects
// the aggregate applied when a bound variable is eliminated.
#ifndef TOPOFAQ_SEMIRING_VARIABLE_OPS_H_
#define TOPOFAQ_SEMIRING_VARIABLE_OPS_H_

#include <algorithm>

#include "semiring/semiring.h"

namespace topofaq {

/// Aggregate operator choices for bound variables in a general FAQ.
enum class VarOp {
  kSemiringSum,  ///< the semiring's own ⊕ (FAQ-SS default)
  kMax,          ///< (D, max, ⊗) semiring aggregate
  kMin,          ///< (D, min, ⊗) semiring aggregate
  kProduct,      ///< ⊕(i) = ⊗ (product aggregate)
};

/// Returns a stable display name.
inline const char* VarOpName(VarOp op) {
  switch (op) {
    case VarOp::kSemiringSum:
      return "sum";
    case VarOp::kMax:
      return "max";
    case VarOp::kMin:
      return "min";
    case VarOp::kProduct:
      return "prod";
  }
  return "?";
}

/// Applies `op` to two accumulated values of semiring S. kMax/kMin require an
/// ordered Value type; they are only meaningful for numeric semirings
/// (Counting / MaxProduct / MinPlus share Value = double).
///
/// Forced inline: this sits in the per-row fold of every elimination scan,
/// and an out-of-line call (the compiler's occasional choice under O2 once
/// the surrounding kernel grows) costs ~2x on the whole group-by. Inlined,
/// the switch hoists out of the loop entirely.
template <CommutativeSemiring S>
#if defined(__GNUC__) || defined(__clang__)
__attribute__((always_inline)) inline
#else
inline
#endif
typename S::Value ApplyVarOp(VarOp op, typename S::Value a, typename S::Value b) {
  switch (op) {
    case VarOp::kSemiringSum:
      return S::Add(a, b);
    case VarOp::kMax:
      return std::max(a, b);
    case VarOp::kMin:
      return std::min(a, b);
    case VarOp::kProduct:
      return S::Multiply(a, b);
  }
  return S::Zero();
}

}  // namespace topofaq

#endif  // TOPOFAQ_SEMIRING_VARIABLE_OPS_H_
