// Commutative semirings (D, ⊕, ⊗) with additive identity 0 and multiplicative
// identity 1, exactly as required by the FAQ framework (Abo Khamis et al.,
// PODS'16) and by Section 1 of the paper: ⊕ and ⊗ are commutative monoids,
// ⊗ distributes over ⊕, and 0 annihilates under ⊗.
//
// A semiring is a stateless struct with:
//   using Value = ...;
//   static Value Zero();            // additive identity
//   static Value One();             // multiplicative identity
//   static Value Add(Value, Value);
//   static Value Multiply(Value, Value);
//   static bool IsZero(Value);
//   static constexpr int kValueBits;  // wire size of one annotation value
//   static constexpr const char* kName;
#ifndef TOPOFAQ_SEMIRING_SEMIRING_H_
#define TOPOFAQ_SEMIRING_SEMIRING_H_

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <limits>

namespace topofaq {

/// Concept satisfied by all semiring structs in this library.
template <typename S>
concept CommutativeSemiring = requires(typename S::Value a, typename S::Value b) {
  { S::Zero() } -> std::same_as<typename S::Value>;
  { S::One() } -> std::same_as<typename S::Value>;
  { S::Add(a, b) } -> std::same_as<typename S::Value>;
  { S::Multiply(a, b) } -> std::same_as<typename S::Value>;
  { S::IsZero(a) } -> std::same_as<bool>;
  { S::kValueBits } -> std::convertible_to<int>;
};

/// The Boolean semiring ({0,1}, ∨, ∧). BCQ and natural join live here
/// (paper Section 1: F = ∅ gives BCQ, F = V gives natural join).
struct BooleanSemiring {
  using Value = uint8_t;
  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Value Add(Value a, Value b) { return a | b; }
  static Value Multiply(Value a, Value b) { return a & b; }
  static bool IsZero(Value a) { return a == 0; }
  static constexpr int kValueBits = 1;
  static constexpr const char* kName = "Boolean";
};

/// (ℝ≥0, +, ×): probability/counting semiring; PGM marginals (Section 1).
struct CountingSemiring {
  using Value = double;
  static Value Zero() { return 0.0; }
  static Value One() { return 1.0; }
  static Value Add(Value a, Value b) { return a + b; }
  static Value Multiply(Value a, Value b) { return a * b; }
  static bool IsZero(Value a) { return a == 0.0; }
  static constexpr int kValueBits = 64;
  static constexpr const char* kName = "Counting";
};

/// (ℕ, +, ×) over uint64 (wrapping): exact count aggregation.
struct NaturalSemiring {
  using Value = uint64_t;
  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Value Add(Value a, Value b) { return a + b; }
  static Value Multiply(Value a, Value b) { return a * b; }
  static bool IsZero(Value a) { return a == 0; }
  static constexpr int kValueBits = 64;
  static constexpr const char* kName = "Natural";
};

/// Tropical (min, +) semiring: shortest-path style aggregation.
struct MinPlusSemiring {
  using Value = double;
  static Value Zero() { return std::numeric_limits<double>::infinity(); }
  static Value One() { return 0.0; }
  static Value Add(Value a, Value b) { return std::min(a, b); }
  static Value Multiply(Value a, Value b) { return a + b; }
  static bool IsZero(Value a) { return std::isinf(a) && a > 0; }
  static constexpr int kValueBits = 64;
  static constexpr const char* kName = "MinPlus";
};

/// (max, ×) over ℝ≥0: MAP / most-probable-explanation aggregation in PGMs.
struct MaxProductSemiring {
  using Value = double;
  static Value Zero() { return 0.0; }
  static Value One() { return 1.0; }
  static Value Add(Value a, Value b) { return std::max(a, b); }
  static Value Multiply(Value a, Value b) { return a * b; }
  static bool IsZero(Value a) { return a == 0.0; }
  static constexpr int kValueBits = 64;
  static constexpr const char* kName = "MaxProduct";
};

/// GF(2) = F2 (⊕ = XOR, ⊗ = AND). The MCM problem of Section 6 is FAQ-SS
/// over this semiring (Eq. (5) of the paper).
struct Gf2Semiring {
  using Value = uint8_t;
  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Value Add(Value a, Value b) { return a ^ b; }
  static Value Multiply(Value a, Value b) { return a & b; }
  static bool IsZero(Value a) { return a == 0; }
  static constexpr int kValueBits = 1;
  static constexpr const char* kName = "GF2";
};

static_assert(CommutativeSemiring<BooleanSemiring>);
static_assert(CommutativeSemiring<CountingSemiring>);
static_assert(CommutativeSemiring<NaturalSemiring>);
static_assert(CommutativeSemiring<MinPlusSemiring>);
static_assert(CommutativeSemiring<MaxProductSemiring>);
static_assert(CommutativeSemiring<Gf2Semiring>);

}  // namespace topofaq

#endif  // TOPOFAQ_SEMIRING_SEMIRING_H_
