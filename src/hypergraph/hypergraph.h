// Multi-hypergraph H = (V, E): the structure underlying an FAQ query.
// Vertices are variables (VarId); hyperedges are the attribute sets of the
// input functions. Multiple hyperedges over the same vertex set are allowed
// (H is a multi-hypergraph in the paper).
#ifndef TOPOFAQ_HYPERGRAPH_HYPERGRAPH_H_
#define TOPOFAQ_HYPERGRAPH_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace topofaq {

/// A multi-hypergraph over vertices [0, num_vertices). Hyperedges keep their
/// insertion order; edge ids index into edges().
class Hypergraph {
 public:
  Hypergraph() : num_vertices_(0) {}
  /// Each edge is sorted and de-duplicated on construction. Vertices must lie
  /// in [0, num_vertices).
  Hypergraph(int num_vertices, std::vector<std::vector<VarId>> edges);

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const std::vector<VarId>& edge(int e) const { return edges_[e]; }
  const std::vector<std::vector<VarId>>& edges() const { return edges_; }

  /// Maximum hyperedge arity (the paper's r).
  int MaxArity() const;

  /// Number of hyperedges containing v (Definition 3.2).
  int Degree(VarId v) const;

  /// Ids of hyperedges containing v.
  std::vector<int> IncidentEdges(VarId v) const;

  bool EdgeContains(int e, VarId v) const;

  /// True if every hyperedge has arity <= 2 (H is a "simple graph" in the
  /// paper's sense; self-loops of arity 1 allowed, as in query H0).
  bool IsGraph() const { return MaxArity() <= 2; }

  /// Vertices that appear in at least one hyperedge.
  std::vector<VarId> UsedVertices() const;

  std::string DebugString() const;

 private:
  int num_vertices_;
  std::vector<std::vector<VarId>> edges_;
};

}  // namespace topofaq

#endif  // TOPOFAQ_HYPERGRAPH_HYPERGRAPH_H_
