#include "hypergraph/degeneracy.h"

#include <algorithm>

namespace topofaq {

DegeneracyResult ComputeDegeneracy(const Hypergraph& h) {
  DegeneracyResult res;
  const int n = h.num_vertices();
  const int m = h.num_edges();
  std::vector<bool> vertex_gone(n, true);
  std::vector<bool> edge_gone(m, false);
  for (int e = 0; e < m; ++e)
    for (VarId v : h.edge(e)) vertex_gone[v] = false;

  int remaining = 0;
  for (int v = 0; v < n; ++v)
    if (!vertex_gone[v]) ++remaining;

  while (remaining > 0) {
    // Find the min-degree remaining vertex (degree over surviving edges).
    int best = -1, best_deg = 0;
    for (int v = 0; v < n; ++v) {
      if (vertex_gone[v]) continue;
      int deg = 0;
      for (int e = 0; e < m; ++e)
        if (!edge_gone[e] && h.EdgeContains(e, static_cast<VarId>(v))) ++deg;
      if (best < 0 || deg < best_deg) {
        best = v;
        best_deg = deg;
      }
    }
    res.degeneracy = std::max(res.degeneracy, best_deg);
    res.elimination_order.push_back(static_cast<VarId>(best));
    vertex_gone[best] = true;
    --remaining;
    for (int e = 0; e < m; ++e)
      if (!edge_gone[e] && h.EdgeContains(e, static_cast<VarId>(best)))
        edge_gone[e] = true;
  }
  return res;
}

}  // namespace topofaq
