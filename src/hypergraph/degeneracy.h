// Degeneracy of a (hyper)graph (Definition 3.3): the smallest d such that
// every sub(hyper)graph has a vertex of degree at most d. Computed by the
// standard min-degree peeling order (remove the vertex together with its
// incident hyperedges).
#ifndef TOPOFAQ_HYPERGRAPH_DEGENERACY_H_
#define TOPOFAQ_HYPERGRAPH_DEGENERACY_H_

#include <vector>

#include "hypergraph/hypergraph.h"

namespace topofaq {

struct DegeneracyResult {
  int degeneracy = 0;
  /// Vertices in peeling order (min-degree first).
  std::vector<VarId> elimination_order;
};

/// Peels min-degree vertices; degeneracy is the maximum min-degree observed.
/// Only vertices appearing in at least one edge are considered.
DegeneracyResult ComputeDegeneracy(const Hypergraph& h);

}  // namespace topofaq

#endif  // TOPOFAQ_HYPERGRAPH_DEGENERACY_H_
