#include "hypergraph/gyo.h"

#include <algorithm>
#include <set>

namespace topofaq {
namespace {

bool IsSubset(const std::vector<VarId>& a, const std::vector<VarId>& b) {
  // Both sorted.
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

std::vector<int> GyoResult::TreeRoots() const {
  std::vector<int> roots;
  for (size_t e = 0; e < deleted.size(); ++e)
    if (deleted[e] && parent[e] == -1) roots.push_back(static_cast<int>(e));
  return roots;
}

std::vector<std::vector<int>> GyoResult::Children(int num_edges) const {
  std::vector<std::vector<int>> ch(num_edges);
  for (int e = 0; e < num_edges; ++e)
    if (deleted[e] && parent[e] >= 0) ch[parent[e]].push_back(e);
  return ch;
}

GyoResult GyoReduce(const Hypergraph& h) {
  const int m = h.num_edges();
  GyoResult res;
  res.deleted.assign(m, false);
  res.delete_time.assign(m, -1);
  res.residual_set.resize(m);
  res.parent.assign(m, -1);

  // Working sets.
  std::vector<std::vector<VarId>> w(m);
  for (int e = 0; e < m; ++e) w[e] = h.edge(e);

  int time = 0;
  bool progress = true;
  while (progress) {
    progress = false;

    // Step (a): eliminate a vertex present in exactly one alive working set.
    // Count degrees over alive working sets.
    std::vector<int> deg(h.num_vertices(), 0);
    std::vector<int> holder(h.num_vertices(), -1);
    for (int e = 0; e < m; ++e) {
      if (res.deleted[e]) continue;
      for (VarId v : w[e]) {
        ++deg[v];
        holder[v] = e;
      }
    }
    for (int v = 0; v < h.num_vertices(); ++v) {
      if (deg[v] == 1) {
        const int e = holder[v];
        auto& we = w[e];
        we.erase(std::find(we.begin(), we.end(), static_cast<VarId>(v)));
        res.trace.push_back(GyoStep{GyoStep::Kind::kEliminateVertex,
                                    static_cast<VarId>(v), e, -1});
        progress = true;
      }
    }
    if (progress) continue;  // re-derive degrees before trying deletions

    // Step (b): delete an alive edge whose working set is contained in
    // another alive edge's working set. An empty working set is always
    // deletable (it represents a fully-absorbed relation). Among deletable
    // edges we pick the one with the smallest working set (ties: smallest
    // id); deleting most-absorbed edges first makes later-deleted edges
    // valid join-forest parents for them, which keeps each GYO tree large
    // and the core C(H) small (cf. the Appendix C.2 trace, where e5, e6, e7
    // are deleted before the eventual tree root e4).
    int pick = -1, pick_container = -1;
    for (int e = 0; e < m; ++e) {
      if (res.deleted[e]) continue;
      int container = -1;
      for (int f = 0; f < m && container < 0; ++f) {
        if (f == e || res.deleted[f]) continue;
        if (IsSubset(w[e], w[f])) container = f;
      }
      const bool deletable = w[e].empty() || container >= 0;
      if (!deletable) continue;
      if (pick < 0 || w[e].size() < w[pick].size()) {
        pick = e;
        pick_container = container;
      }
    }
    if (pick >= 0) {
      res.deleted[pick] = true;
      res.delete_time[pick] = time++;
      res.residual_set[pick] = w[pick];
      res.trace.push_back(
          GyoStep{GyoStep::Kind::kDeleteEdge, 0, pick, pick_container});
      progress = true;
    }
  }

  for (int e = 0; e < m; ++e) {
    if (!res.deleted[e]) {
      res.residual_set[e] = w[e];
      res.residual_edges.push_back(e);
    }
  }
  res.acyclic = res.residual_edges.empty();

  // Parent assignment (post-hoc): the residual set of a deleted edge e is
  // contained in the working set of every candidate f that was alive when e
  // was deleted (see DESIGN.md). Valid parents are edges deleted strictly
  // later whose *original* vertex set contains residual_set[e]; preferring
  // the earliest-deleted such edge keeps trees local. If none exists the
  // edge is a tree root.
  for (int e = 0; e < m; ++e) {
    if (!res.deleted[e]) continue;
    // An empty residual set shares nothing with the rest of H: the edge is a
    // tree root (otherwise unrelated components would be spliced together).
    if (res.residual_set[e].empty()) continue;
    int best = -1;
    for (int f = 0; f < m; ++f) {
      if (f == e || !res.deleted[f]) continue;
      if (res.delete_time[f] <= res.delete_time[e]) continue;
      if (!IsSubset(res.residual_set[e], h.edge(f))) continue;
      if (best < 0 || res.delete_time[f] < res.delete_time[best]) best = f;
    }
    res.parent[e] = best;
  }
  return res;
}

CoreForest DecomposeCoreForest(const Hypergraph& h) {
  CoreForest cf;
  cf.gyo = GyoReduce(h);
  cf.core_edges = cf.gyo.residual_edges;
  cf.root_edges = cf.gyo.TreeRoots();
  for (int e = 0; e < h.num_edges(); ++e)
    if (cf.gyo.deleted[e] && cf.gyo.parent[e] != -1) cf.forest_edges.push_back(e);
  cf.parent = cf.gyo.parent;

  std::set<VarId> verts;
  for (int e : cf.core_edges) verts.insert(h.edge(e).begin(), h.edge(e).end());
  for (int e : cf.root_edges) verts.insert(h.edge(e).begin(), h.edge(e).end());
  cf.core_vertices.assign(verts.begin(), verts.end());
  return cf;
}

bool IsAcyclic(const Hypergraph& h) { return GyoReduce(h).acyclic; }

std::string TraceToString(const Hypergraph& h, const GyoResult& r) {
  std::string out;
  auto edge_name = [&](int e) {
    std::string s = "e" + std::to_string(e) + "={";
    for (size_t j = 0; j < h.edge(e).size(); ++j) {
      if (j) s += ",";
      s += std::to_string(h.edge(e)[j]);
    }
    return s + "}";
  };
  for (const auto& step : r.trace) {
    if (step.kind == GyoStep::Kind::kEliminateVertex) {
      out += "eliminate vertex " + std::to_string(step.vertex) + " from " +
             edge_name(step.edge) + "\n";
    } else {
      out += "delete " + edge_name(step.edge);
      if (step.into_edge >= 0) out += " (contained in " + edge_name(step.into_edge) + ")";
      out += "\n";
    }
  }
  out += r.acyclic ? "acyclic: H' is empty\n" : "cyclic: H' non-empty\n";
  return out;
}

}  // namespace topofaq
