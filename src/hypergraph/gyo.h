// The GYO algorithm (Graham / Yu–Ozsoyoglu) and the core/forest decomposition
// of Definitions 2.6–2.7: repeatedly (a) eliminate a vertex contained in only
// one hyperedge, (b) delete a hyperedge whose (current) vertex set is
// contained in another's. The leftover hypergraph H' is the GYO-reduction;
// the deleted hyperedges form a forest of acyclic hypergraphs, and H is
// acyclic iff everything is deleted.
//
// We additionally record, for every deleted edge, its *residual set* (working
// vertex set at deletion time) and a parent edge chosen so that the deleted
// edges form join-forest trees. Parent choices are made to maximize tree
// depth toward later-deleted edges, which keeps each GYO tree as large as
// possible and hence the core C(H) (residual edges plus one root edge per
// tree, Definition 2.7 and Appendix C.2) as small as possible.
#ifndef TOPOFAQ_HYPERGRAPH_GYO_H_
#define TOPOFAQ_HYPERGRAPH_GYO_H_

#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace topofaq {

/// One step of the GYO execution trace (Definition 2.6 / Appendix C.2).
struct GyoStep {
  enum class Kind { kEliminateVertex, kDeleteEdge };
  Kind kind;
  VarId vertex = 0;    ///< for kEliminateVertex
  int edge = -1;       ///< edge acted upon
  int into_edge = -1;  ///< for kDeleteEdge: a containing edge (-1 if the
                       ///< working set was empty and no container exists)
};

/// Full result of running GYO on a hypergraph.
struct GyoResult {
  std::vector<GyoStep> trace;

  /// Per original edge id.
  std::vector<bool> deleted;
  std::vector<int> delete_time;                  ///< -1 if never deleted
  std::vector<std::vector<VarId>> residual_set;  ///< working set at deletion
                                                 ///< (or at termination if alive)
  /// Join-forest parent for deleted edges: another *deleted-later* edge when
  /// one exists, else -1 (the edge is the root of its GYO tree; it either
  /// attaches to the residual core or stands alone).
  std::vector<int> parent;

  /// Edge ids still alive at termination (the GYO-reduction H').
  std::vector<int> residual_edges;

  /// True iff every hyperedge was deleted (Definition 2.5: H is acyclic).
  bool acyclic = false;

  /// Tree roots: deleted edges with parent == -1.
  std::vector<int> TreeRoots() const;

  /// Children lists induced by `parent` (indexed by edge id).
  std::vector<std::vector<int>> Children(int num_edges) const;
};

/// Runs GYO to completion. Deterministic: ties are broken by smallest
/// vertex / edge id. An edge whose working set becomes empty is always
/// deletable (so H' is empty exactly when H is acyclic, matching the paper).
GyoResult GyoReduce(const Hypergraph& h);

/// The decomposition of Definition 2.7 / Construction 2.8 ingredients.
struct CoreForest {
  /// Edges of the GYO-reduction H' (possibly empty).
  std::vector<int> core_edges;
  /// One root edge per GYO tree; these join the core (Definition 2.7).
  std::vector<int> root_edges;
  /// Deleted edges that are not tree roots; these form W(H).
  std::vector<int> forest_edges;
  /// V(C(H)) = vertices of core_edges ∪ root_edges; n2(H) = its size
  /// (Definition 3.1).
  std::vector<VarId> core_vertices;
  /// Join-forest parent over all deleted edges (as in GyoResult).
  std::vector<int> parent;
  GyoResult gyo;

  int n2() const { return static_cast<int>(core_vertices.size()); }
};

/// Runs GYO and assembles the C(H)/W(H) decomposition.
CoreForest DecomposeCoreForest(const Hypergraph& h);

/// True iff H is acyclic (Definition 2.5, via GYO).
bool IsAcyclic(const Hypergraph& h);

/// Pretty-printed trace for documentation/benches (Appendix C.2 style).
std::string TraceToString(const Hypergraph& h, const GyoResult& r);

}  // namespace topofaq

#endif  // TOPOFAQ_HYPERGRAPH_GYO_H_
