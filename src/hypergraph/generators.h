// Query-hypergraph generators: the concrete queries used in the paper's
// figures and examples (H0, H1, H2, H3) plus parameterized random families
// used by the benchmarks (forests, d-degenerate graphs, acyclic hypergraphs).
#ifndef TOPOFAQ_HYPERGRAPH_GENERATORS_H_
#define TOPOFAQ_HYPERGRAPH_GENERATORS_H_

#include "hypergraph/hypergraph.h"
#include "util/rng.h"

namespace topofaq {

/// H0 (Example 2.1): four self-loop edges R(A), S(A), T(A), U(A).
Hypergraph PaperH0();

/// H1 (Figure 1): the star R(A,B), S(A,C), T(A,D), U(A,E);
/// vertices A,B,C,D,E = 0..4.
Hypergraph PaperH1();

/// H2 (Figure 1): R(A,B,C), S(B,D), T(C,F), U(A,B,E);
/// vertices A..F = 0..5 (paper order A,B,C,D,E,F).
Hypergraph PaperH2();

/// H3 (Appendix C.2): e1=(A,B,C), e2=(B,C,D), e3=(A,C,D), e4=(A,B,E),
/// e5=(A,F), e6=(B,G), e7=(G,H); vertices A..H = 0..7.
Hypergraph PaperH3();

/// Star with `leaves` leaf edges (center,leaf_i); vertex 0 is the center.
Hypergraph StarGraph(int leaves);

/// Path with `edges` edges 0-1-2-...-edges.
Hypergraph PathGraph(int edges);

/// Cycle on n >= 3 vertices.
Hypergraph CycleGraph(int n);

/// Clique on n vertices (all arity-2 edges).
Hypergraph CliqueGraph(int n);

/// Uniformly random spanning tree on n vertices (random Prüfer sequence).
Hypergraph RandomTree(int n, Rng* rng);

/// Forest: `trees` independent random trees of `tree_size` vertices each.
Hypergraph RandomForest(int trees, int tree_size, Rng* rng);

/// d-degenerate simple graph on n vertices: vertex i >= 1 connects to
/// min(i, d) distinct random earlier vertices. Degeneracy <= d by
/// construction.
Hypergraph RandomDDegenerate(int n, int d, Rng* rng);

/// Random connected acyclic hypergraph with `num_edges` hyperedges of arity
/// up to `max_arity`: grown join-tree style — each new edge overlaps an
/// existing edge in a nonempty subset and adds fresh vertices, which keeps
/// the hypergraph alpha-acyclic.
Hypergraph RandomAcyclicHypergraph(int num_edges, int max_arity, Rng* rng);

/// d-degenerate hypergraph of arity <= r: starts from RandomDDegenerate-like
/// vertex growth, grouping each new vertex's back-neighbors into hyperedges
/// of arity <= r.
Hypergraph RandomHypergraph(int n, int d, int r, Rng* rng);

}  // namespace topofaq

#endif  // TOPOFAQ_HYPERGRAPH_GENERATORS_H_
