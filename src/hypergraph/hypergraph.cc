#include "hypergraph/hypergraph.h"

#include <algorithm>

namespace topofaq {

Hypergraph::Hypergraph(int num_vertices, std::vector<std::vector<VarId>> edges)
    : num_vertices_(num_vertices), edges_(std::move(edges)) {
  TOPOFAQ_CHECK(num_vertices_ >= 0);
  for (auto& e : edges_) {
    std::sort(e.begin(), e.end());
    e.erase(std::unique(e.begin(), e.end()), e.end());
    TOPOFAQ_CHECK_MSG(!e.empty(), "empty hyperedge");
    TOPOFAQ_CHECK_MSG(e.back() < static_cast<VarId>(num_vertices_),
                      "hyperedge vertex out of range");
  }
}

int Hypergraph::MaxArity() const {
  int r = 0;
  for (const auto& e : edges_) r = std::max<int>(r, static_cast<int>(e.size()));
  return r;
}

int Hypergraph::Degree(VarId v) const {
  int d = 0;
  for (const auto& e : edges_)
    if (std::binary_search(e.begin(), e.end(), v)) ++d;
  return d;
}

std::vector<int> Hypergraph::IncidentEdges(VarId v) const {
  std::vector<int> out;
  for (int i = 0; i < num_edges(); ++i)
    if (EdgeContains(i, v)) out.push_back(i);
  return out;
}

bool Hypergraph::EdgeContains(int e, VarId v) const {
  const auto& ed = edges_[e];
  return std::binary_search(ed.begin(), ed.end(), v);
}

std::vector<VarId> Hypergraph::UsedVertices() const {
  std::vector<bool> used(num_vertices_, false);
  for (const auto& e : edges_)
    for (VarId v : e) used[v] = true;
  std::vector<VarId> out;
  for (int v = 0; v < num_vertices_; ++v)
    if (used[v]) out.push_back(static_cast<VarId>(v));
  return out;
}

std::string Hypergraph::DebugString() const {
  std::string s = "H(n=" + std::to_string(num_vertices_) + "; ";
  for (int i = 0; i < num_edges(); ++i) {
    if (i) s += ", ";
    s += "e" + std::to_string(i) + "={";
    for (size_t j = 0; j < edges_[i].size(); ++j) {
      if (j) s += ",";
      s += std::to_string(edges_[i][j]);
    }
    s += "}";
  }
  s += ")";
  return s;
}

}  // namespace topofaq
