#include "hypergraph/generators.h"

#include <algorithm>
#include <numeric>

namespace topofaq {

Hypergraph PaperH0() {
  return Hypergraph(1, {{0}, {0}, {0}, {0}});
}

Hypergraph PaperH1() {
  // A=0, B=1, C=2, D=3, E=4.
  return Hypergraph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
}

Hypergraph PaperH2() {
  // A=0, B=1, C=2, D=3, E=4, F=5.
  return Hypergraph(6, {{0, 1, 2}, {1, 3}, {2, 5}, {0, 1, 4}});
}

Hypergraph PaperH3() {
  // A..H = 0..7.
  return Hypergraph(8, {{0, 1, 2},
                        {1, 2, 3},
                        {0, 2, 3},
                        {0, 1, 4},
                        {0, 5},
                        {1, 6},
                        {6, 7}});
}

Hypergraph StarGraph(int leaves) {
  TOPOFAQ_CHECK(leaves >= 1);
  std::vector<std::vector<VarId>> edges;
  for (int i = 1; i <= leaves; ++i)
    edges.push_back({0, static_cast<VarId>(i)});
  return Hypergraph(leaves + 1, std::move(edges));
}

Hypergraph PathGraph(int edges) {
  TOPOFAQ_CHECK(edges >= 1);
  std::vector<std::vector<VarId>> e;
  for (int i = 0; i < edges; ++i)
    e.push_back({static_cast<VarId>(i), static_cast<VarId>(i + 1)});
  return Hypergraph(edges + 1, std::move(e));
}

Hypergraph CycleGraph(int n) {
  TOPOFAQ_CHECK(n >= 3);
  std::vector<std::vector<VarId>> e;
  for (int i = 0; i < n; ++i)
    e.push_back({static_cast<VarId>(i), static_cast<VarId>((i + 1) % n)});
  return Hypergraph(n, std::move(e));
}

Hypergraph CliqueGraph(int n) {
  TOPOFAQ_CHECK(n >= 2);
  std::vector<std::vector<VarId>> e;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      e.push_back({static_cast<VarId>(i), static_cast<VarId>(j)});
  return Hypergraph(n, std::move(e));
}

Hypergraph RandomTree(int n, Rng* rng) {
  TOPOFAQ_CHECK(n >= 2);
  if (n == 2) return Hypergraph(2, {{0, 1}});
  // Prüfer sequence of length n-2.
  std::vector<int> prufer(n - 2);
  for (auto& p : prufer) p = static_cast<int>(rng->NextU64(n));
  std::vector<int> degree(n, 1);
  for (int p : prufer) ++degree[p];
  std::vector<std::vector<VarId>> edges;
  // Standard decoding.
  std::vector<bool> used(n, false);
  for (int p : prufer) {
    int leaf = -1;
    for (int v = 0; v < n; ++v)
      if (degree[v] == 1 && !used[v]) {
        leaf = v;
        break;
      }
    edges.push_back({static_cast<VarId>(std::min(leaf, p)),
                     static_cast<VarId>(std::max(leaf, p))});
    used[leaf] = true;
    --degree[p];
  }
  std::vector<int> last;
  for (int v = 0; v < n; ++v)
    if (!used[v] && degree[v] == 1) last.push_back(v);
  TOPOFAQ_CHECK(last.size() == 2);
  edges.push_back({static_cast<VarId>(last[0]), static_cast<VarId>(last[1])});
  return Hypergraph(n, std::move(edges));
}

Hypergraph RandomForest(int trees, int tree_size, Rng* rng) {
  TOPOFAQ_CHECK(trees >= 1 && tree_size >= 2);
  std::vector<std::vector<VarId>> edges;
  for (int t = 0; t < trees; ++t) {
    Hypergraph tree = RandomTree(tree_size, rng);
    const VarId offset = static_cast<VarId>(t * tree_size);
    for (const auto& e : tree.edges())
      edges.push_back({e[0] + offset, e[1] + offset});
  }
  return Hypergraph(trees * tree_size, std::move(edges));
}

Hypergraph RandomDDegenerate(int n, int d, Rng* rng) {
  TOPOFAQ_CHECK(n >= 2 && d >= 1);
  std::vector<std::vector<VarId>> edges;
  for (int i = 1; i < n; ++i) {
    const int back = std::min(i, d);
    // Choose `back` distinct earlier vertices.
    auto picks = rng->Sample(static_cast<uint64_t>(i), static_cast<uint64_t>(back));
    for (uint64_t p : picks)
      edges.push_back({static_cast<VarId>(p), static_cast<VarId>(i)});
  }
  return Hypergraph(n, std::move(edges));
}

Hypergraph RandomAcyclicHypergraph(int num_edges, int max_arity, Rng* rng) {
  TOPOFAQ_CHECK(num_edges >= 1 && max_arity >= 2);
  std::vector<std::vector<VarId>> edges;
  VarId next_vertex = 0;
  // First edge: fresh vertices.
  {
    int a = static_cast<int>(rng->NextInt(2, max_arity));
    std::vector<VarId> e;
    for (int i = 0; i < a; ++i) e.push_back(next_vertex++);
    edges.push_back(std::move(e));
  }
  for (int k = 1; k < num_edges; ++k) {
    const auto& host = edges[rng->NextU64(edges.size())];
    int overlap = static_cast<int>(
        rng->NextInt(1, static_cast<int64_t>(host.size())));
    overlap = std::min<int>(overlap, max_arity - 1);
    auto picks = rng->Sample(host.size(), static_cast<uint64_t>(overlap));
    std::vector<VarId> e;
    for (uint64_t p : picks) e.push_back(host[p]);
    const int fresh = static_cast<int>(
        rng->NextInt(1, max_arity - overlap));
    for (int i = 0; i < fresh; ++i) e.push_back(next_vertex++);
    edges.push_back(std::move(e));
  }
  return Hypergraph(static_cast<int>(next_vertex), std::move(edges));
}

Hypergraph RandomHypergraph(int n, int d, int r, Rng* rng) {
  TOPOFAQ_CHECK(n >= 2 && d >= 1 && r >= 2);
  std::vector<std::vector<VarId>> edges;
  for (int i = 1; i < n; ++i) {
    const int back = std::min(i, d);
    auto picks = rng->Sample(static_cast<uint64_t>(i),
                             static_cast<uint64_t>(back));
    // Pack the back-neighbors into hyperedges of arity <= r (vertex i plus
    // up to r-1 back-neighbors each).
    size_t idx = 0;
    while (idx < picks.size()) {
      std::vector<VarId> e{static_cast<VarId>(i)};
      for (int j = 0; j < r - 1 && idx < picks.size(); ++j, ++idx)
        e.push_back(static_cast<VarId>(picks[idx]));
      edges.push_back(std::move(e));
    }
  }
  return Hypergraph(n, std::move(edges));
}

}  // namespace topofaq
