// Dense F2 linear algebra for the Matrix Chain Multiplication problem
// (Section 6): N×N bit matrices and N-bit vectors with word-packed storage,
// XOR-accumulation products, and rank (used by the entropy experiments).
#ifndef TOPOFAQ_MCM_BITMATRIX_H_
#define TOPOFAQ_MCM_BITMATRIX_H_

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace topofaq {

/// A vector over F2, bit-packed into 64-bit words.
class BitVector {
 public:
  BitVector() : n_(0) {}
  explicit BitVector(int n) : n_(n), words_((n + 63) / 64, 0) {}

  int size() const { return n_; }
  bool Get(int i) const { return (words_[i >> 6] >> (i & 63)) & 1; }
  void Set(int i, bool v) {
    const uint64_t mask = 1ULL << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  /// Inner product over F2.
  bool Dot(const BitVector& other) const;
  void Xor(const BitVector& other);

  bool operator==(const BitVector& o) const {
    return n_ == o.n_ && words_ == o.words_;
  }

  static BitVector Random(int n, Rng* rng);

  const std::vector<uint64_t>& words() const { return words_; }

 private:
  int n_;
  std::vector<uint64_t> words_;
};

/// An N×N matrix over F2 (row-major bit-packed rows).
class BitMatrix {
 public:
  BitMatrix() : n_(0) {}
  explicit BitMatrix(int n) : n_(n), rows_(n, BitVector(n)) {}

  int size() const { return n_; }
  bool Get(int r, int c) const { return rows_[r].Get(c); }
  void Set(int r, int c, bool v) { rows_[r].Set(c, v); }
  const BitVector& row(int r) const { return rows_[r]; }

  /// y = A·x over F2.
  BitVector Apply(const BitVector& x) const;

  /// C = this · other over F2.
  BitMatrix Multiply(const BitMatrix& other) const;

  int Rank() const;

  bool operator==(const BitMatrix& o) const {
    return n_ == o.n_ && rows_ == o.rows_;
  }

  static BitMatrix Identity(int n);
  static BitMatrix Random(int n, Rng* rng);

 private:
  int n_;
  std::vector<BitVector> rows_;
};

/// A_k · A_{k-1} · ... · A_1 · x (the Problem 1.1 chain).
BitVector ChainApply(const std::vector<BitMatrix>& matrices, const BitVector& x);

}  // namespace topofaq

#endif  // TOPOFAQ_MCM_BITMATRIX_H_
