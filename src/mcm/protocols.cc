#include "mcm/protocols.h"

#include <algorithm>

#include "graphalg/topologies.h"
#include "network/primitives.h"

namespace topofaq {
namespace {

Graph McmLine(int k) { return LineTopology(k + 2); }

}  // namespace

McmResult RunMcmSequential(const McmInstance& inst) {
  const int k = inst.k();
  const int n = inst.n();
  SyncNetwork net(McmLine(k), inst.capacity_bits);
  McmResult out;
  BitVector y = inst.x;
  int64_t round = 0;
  // P_i -> P_{i+1}: the current partial product, N bits; P_{i+1} multiplies.
  for (int i = 0; i <= k; ++i) {
    round = UnicastBits(&net, i, i + 1, n, round);
    if (i + 1 <= k) y = inst.matrices[i].Apply(y);  // A_{i+1} is at P_{i+1}
  }
  out.y = y;
  out.rounds = round;
  out.total_bits = net.total_bits();
  return out;
}

McmResult RunMcmMerge(const McmInstance& inst) {
  const int k = inst.k();
  const int n = inst.n();
  SyncNetwork net(McmLine(k), inst.capacity_bits);
  McmResult out;
  if (k == 0) {
    out.rounds = UnicastBits(&net, 0, 1, n, 0);
    out.y = inst.x;
    out.total_bits = net.total_bits();
    return out;
  }

  // Active accumulators: (player, product over a contiguous range). In each
  // iteration adjacent pairs merge; transfers run on edge-disjoint line
  // segments, hence in parallel.
  struct Acc {
    int player;           // line node id (player i holds A_i at node i)
    BitMatrix product;    // product over its range, later-range-major
  };
  std::vector<Acc> active;
  active.reserve(k);
  for (int i = 1; i <= k; ++i) active.push_back({i, inst.matrices[i - 1]});

  int64_t round = 0;
  while (active.size() > 1) {
    std::vector<Acc> next;
    int64_t iter_finish = round;
    for (size_t j = 0; j + 1 < active.size(); j += 2) {
      // Left sends its N² bits to right; right multiplies (right-range
      // product times left-range product).
      const Acc& left = active[j];
      Acc& right = active[j + 1];
      iter_finish = std::max(
          iter_finish, UnicastBits(&net, left.player, right.player,
                                   static_cast<int64_t>(n) * n, round));
      right.product = right.product.Multiply(left.product);
      next.push_back(std::move(right));
    }
    if (active.size() % 2 == 1) next.push_back(std::move(active.back()));
    active = std::move(next);
    round = iter_finish;
  }

  // x flows from P0 to the surviving accumulator's player, the result to
  // P_{k+1}.
  const int holder = active[0].player;
  round = UnicastBits(&net, 0, holder, n, round);
  BitVector y = active[0].product.Apply(inst.x);
  round = UnicastBits(&net, holder, k + 1, n, round);
  out.y = y;
  out.rounds = round;
  out.total_bits = net.total_bits();
  return out;
}

McmResult RunMcmTrivial(const McmInstance& inst) {
  const int k = inst.k();
  const int n = inst.n();
  SyncNetwork net(McmLine(k), inst.capacity_bits);
  std::vector<FlowDemand> demands;
  demands.push_back({0, n});  // x
  for (int i = 1; i <= k; ++i)
    demands.push_back({i, static_cast<int64_t>(n) * n});
  McmResult out;
  out.rounds = GatherFlows(&net, demands, k + 1, 0);
  out.y = ChainApply(inst.matrices, inst.x);
  out.total_bits = net.total_bits();
  return out;
}

FaqQuery<Gf2Semiring> McmAsFaq(const McmInstance& inst) {
  const int k = inst.k();
  const int n = inst.n();
  // Variables z_0..z_k; edges: {z_0} for x, {z_{j-1}, z_j} for A_j.
  std::vector<std::vector<VarId>> edges;
  edges.push_back({0});
  for (int j = 1; j <= k; ++j)
    edges.push_back({static_cast<VarId>(j - 1), static_cast<VarId>(j)});
  Hypergraph h(k + 1, edges);

  std::vector<Relation<Gf2Semiring>> rels;
  Relation<Gf2Semiring> xr{Schema({0})};
  for (int v = 0; v < n; ++v)
    if (inst.x.Get(v)) xr.Add({static_cast<Value>(v)}, 1);
  rels.push_back(std::move(xr));
  for (int j = 1; j <= k; ++j) {
    // Schema is sorted: (z_{j-1}, z_j); A_j(z_j, z_{j-1}) = A_j[row, col].
    Relation<Gf2Semiring> ar{Schema({static_cast<VarId>(j - 1),
                                     static_cast<VarId>(j)})};
    for (int row = 0; row < n; ++row)
      for (int col = 0; col < n; ++col)
        if (inst.matrices[j - 1].Get(row, col))
          ar.Add({static_cast<Value>(col), static_cast<Value>(row)}, 1);
    rels.push_back(std::move(ar));
  }
  return MakeFaqSS<Gf2Semiring>(std::move(h), std::move(rels),
                                {static_cast<VarId>(k)});
}

BitVector DecodeFaqVector(const Relation<Gf2Semiring>& rel, int n) {
  BitVector y(n);
  for (size_t i = 0; i < rel.size(); ++i)
    if (rel.annot(i)) y.Set(static_cast<int>(rel.at(i, 0)), true);
  return y;
}

}  // namespace topofaq
