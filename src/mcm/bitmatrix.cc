#include "mcm/bitmatrix.h"

#include <bit>

namespace topofaq {

bool BitVector::Dot(const BitVector& other) const {
  TOPOFAQ_CHECK(n_ == other.n_);
  uint64_t acc = 0;
  for (size_t i = 0; i < words_.size(); ++i)
    acc ^= words_[i] & other.words_[i];
  return std::popcount(acc) & 1;
}

void BitVector::Xor(const BitVector& other) {
  TOPOFAQ_CHECK(n_ == other.n_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
}

BitVector BitVector::Random(int n, Rng* rng) {
  BitVector v(n);
  for (auto& w : v.words_) w = rng->NextU64();
  // Mask tail bits beyond n.
  if (n % 64 != 0 && !v.words_.empty())
    v.words_.back() &= (1ULL << (n % 64)) - 1;
  return v;
}

BitVector BitMatrix::Apply(const BitVector& x) const {
  TOPOFAQ_CHECK(x.size() == n_);
  BitVector y(n_);
  for (int r = 0; r < n_; ++r) y.Set(r, rows_[r].Dot(x));
  return y;
}

BitMatrix BitMatrix::Multiply(const BitMatrix& other) const {
  TOPOFAQ_CHECK(n_ == other.n_);
  // C[r] = XOR over c with this[r][c]=1 of other.row(c).
  BitMatrix out(n_);
  for (int r = 0; r < n_; ++r) {
    BitVector acc(n_);
    for (int c = 0; c < n_; ++c)
      if (Get(r, c)) acc.Xor(other.rows_[c]);
    out.rows_[r] = std::move(acc);
  }
  return out;
}

int BitMatrix::Rank() const {
  std::vector<BitVector> rows = rows_;
  int rank = 0;
  for (int col = 0; col < n_ && rank < n_; ++col) {
    int pivot = -1;
    for (int r = rank; r < n_; ++r)
      if (rows[r].Get(col)) {
        pivot = r;
        break;
      }
    if (pivot < 0) continue;
    std::swap(rows[rank], rows[pivot]);
    for (int r = 0; r < n_; ++r)
      if (r != rank && rows[r].Get(col)) rows[r].Xor(rows[rank]);
    ++rank;
  }
  return rank;
}

BitMatrix BitMatrix::Identity(int n) {
  BitMatrix m(n);
  for (int i = 0; i < n; ++i) m.Set(i, i, true);
  return m;
}

BitMatrix BitMatrix::Random(int n, Rng* rng) {
  BitMatrix m(n);
  for (int r = 0; r < n; ++r) m.rows_[r] = BitVector::Random(n, rng);
  return m;
}

BitVector ChainApply(const std::vector<BitMatrix>& matrices,
                     const BitVector& x) {
  BitVector y = x;
  for (const auto& m : matrices) y = m.Apply(y);
  return y;
}

}  // namespace topofaq
