// The three MCM protocols of Section 6 / Appendix I.1, run on the line
// topology P0 - P1 - ... - P_{k+1} (Problem 1.1): P0 holds x, P_i holds A_i,
// and P_{k+1} must learn A_k ··· A_1 · x.
//
//  * Sequential (Prop. 6.1): P_i computes the partial product y_i = A_i
//    y_{i-1} and streams it right — Θ(kN) rounds at 1 bit/round; tight by
//    Theorem 6.4.
//  * Merge (App. I.1): log k halving iterations of parallel N²-bit matrix
//    transfers — O(N² log k + k) rounds, better when k >> N.
//  * Trivial: ship every matrix to P_{k+1} — Θ(kN²) rounds.
//
// Each returns the computed vector plus exact round/bit accounting from the
// SyncNetwork ledger; answers are validated against ChainApply.
#ifndef TOPOFAQ_MCM_PROTOCOLS_H_
#define TOPOFAQ_MCM_PROTOCOLS_H_

#include <vector>

#include "faq/query.h"
#include "mcm/bitmatrix.h"
#include "network/simulator.h"

namespace topofaq {

struct McmInstance {
  std::vector<BitMatrix> matrices;  ///< A_1 .. A_k
  BitVector x;
  /// Channel budget per round. Section 6 counts one F2 element per round
  /// (footnote 12 semantics), i.e. 1 bit.
  int64_t capacity_bits = 1;

  int k() const { return static_cast<int>(matrices.size()); }
  int n() const { return x.size(); }
};

struct McmResult {
  BitVector y;
  int64_t rounds = 0;
  int64_t total_bits = 0;
};

/// Proposition 6.1: sequential partial products, O(kN) rounds.
McmResult RunMcmSequential(const McmInstance& inst);

/// Appendix I.1: bottom-to-top merge, O(N² log(k) + k) rounds.
McmResult RunMcmMerge(const McmInstance& inst);

/// Trivial protocol: every matrix to P_{k+1}, Θ(kN²) rounds.
McmResult RunMcmTrivial(const McmInstance& inst);

/// Eq. (5): the same computation expressed as FAQ-SS over GF(2) with
/// variables z_0..z_k, hyperedges {z_0} (x) and {z_{j-1}, z_j} (A_j), and
/// free variable z_k. Solving it with the generic engine must agree with
/// ChainApply.
FaqQuery<Gf2Semiring> McmAsFaq(const McmInstance& inst);

/// Decodes the relation over {z_k} returned by an FAQ solver back to a
/// vector (value v present with annotation 1 ⇔ y[v] = 1).
BitVector DecodeFaqVector(const Relation<Gf2Semiring>& rel, int n);

}  // namespace topofaq

#endif  // TOPOFAQ_MCM_PROTOCOLS_H_
