#include "util/status.h"

namespace topofaq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace topofaq
