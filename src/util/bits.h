// Small integer helpers used for communication-cost accounting.
#ifndef TOPOFAQ_UTIL_BITS_H_
#define TOPOFAQ_UTIL_BITS_H_

#include <bit>
#include <cstdint>

#include "util/check.h"

namespace topofaq {

/// ceil(a / b) for positive b.
inline int64_t CeilDiv(int64_t a, int64_t b) {
  TOPOFAQ_CHECK(b > 0);
  return (a + b - 1) / b;
}

/// ceil(log2(x)) for x >= 1; 0 for x == 1.
inline int CeilLog2(uint64_t x) {
  TOPOFAQ_CHECK(x >= 1);
  return x == 1 ? 0 : 64 - std::countl_zero(x - 1);
}

/// Number of bits needed to encode a value in [0, domain_size); at least 1.
/// This is the paper's log2(D) factor for a single attribute value.
inline int BitsForDomain(uint64_t domain_size) {
  TOPOFAQ_CHECK(domain_size >= 1);
  int b = CeilLog2(domain_size);
  return b < 1 ? 1 : b;
}

}  // namespace topofaq

#endif  // TOPOFAQ_UTIL_BITS_H_
