// Shared low-level identifiers used across modules.
#ifndef TOPOFAQ_UTIL_TYPES_H_
#define TOPOFAQ_UTIL_TYPES_H_

#include <cstdint>

namespace topofaq {

/// Identifier for a query variable (a vertex of the query hypergraph H).
using VarId = uint32_t;

/// A single attribute value; domains are [0, D).
using Value = uint64_t;

/// Identifier for a node of the network topology G.
using NodeId = int;

}  // namespace topofaq

#endif  // TOPOFAQ_UTIL_TYPES_H_
