#include "util/rng.h"

#include <unordered_set>

namespace topofaq {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextU64(uint64_t bound) {
  TOPOFAQ_CHECK(bound > 0);
  // Rejection sampling over the largest multiple of bound.
  const uint64_t limit = bound * (UINT64_MAX / bound);
  uint64_t x;
  do {
    x = NextU64();
  } while (x >= limit);
  return x % bound;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  TOPOFAQ_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextU64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::vector<uint64_t> Rng::Sample(uint64_t n, uint64_t k) {
  TOPOFAQ_CHECK(k <= n);
  // Floyd's algorithm: k iterations, O(k) memory.
  std::unordered_set<uint64_t> chosen;
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = NextU64(j + 1);
    if (chosen.count(t)) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  return out;
}

}  // namespace topofaq
