// Status / Result<T>: lightweight error propagation without exceptions,
// in the style of Arrow / RocksDB status objects.
#ifndef TOPOFAQ_UTIL_STATUS_H_
#define TOPOFAQ_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace topofaq {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// Cooperative cancellation observed mid-query (server/engine.h).
  kCancelled,
  /// Admission control refused the work: a predicted bound exceeds the
  /// configured budget (server/admission.h names the violated bound).
  kResourceExhausted,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    TOPOFAQ_CHECK_MSG(!std::get<Status>(v_).ok(),
                      "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  /// Crashes if not OK; use only after checking ok() or in tests.
  const T& value() const& {
    TOPOFAQ_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(v_);
  }
  T& value() & {
    TOPOFAQ_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(v_);
  }
  T&& value() && {
    TOPOFAQ_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(v_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace topofaq

/// Propagates a non-OK Status from the current function.
#define TOPOFAQ_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::topofaq::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // TOPOFAQ_UTIL_STATUS_H_
