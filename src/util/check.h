// Invariant-checking macros.
//
// TOPOFAQ_CHECK is used for programmer-error invariants that must hold in all
// build modes (the library is an algorithms/research engine, so we prefer
// loud, immediate failure over silently wrong round counts). Recoverable,
// input-dependent failures use util/status.h instead.
#ifndef TOPOFAQ_UTIL_CHECK_H_
#define TOPOFAQ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace topofaq {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const char* msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace internal
}  // namespace topofaq

#define TOPOFAQ_CHECK(cond)                                                 \
  do {                                                                      \
    if (!(cond)) ::topofaq::internal::CheckFailed(__FILE__, __LINE__, #cond, ""); \
  } while (0)

#define TOPOFAQ_CHECK_MSG(cond, msg)                                        \
  do {                                                                      \
    if (!(cond))                                                            \
      ::topofaq::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg));   \
  } while (0)

#ifdef NDEBUG
#define TOPOFAQ_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define TOPOFAQ_DCHECK(cond) TOPOFAQ_CHECK(cond)
#endif

#endif  // TOPOFAQ_UTIL_CHECK_H_
