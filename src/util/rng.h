// Deterministic pseudo-random number generation (xoshiro256** seeded via
// SplitMix64). Every randomized test and benchmark takes an explicit seed so
// runs are reproducible bit-for-bit.
#ifndef TOPOFAQ_UTIL_RNG_H_
#define TOPOFAQ_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace topofaq {

/// xoshiro256** generator. Not cryptographic; fast and statistically solid
/// for simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t NextU64();

  /// Uniform in [0, bound). Requires bound > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextU64(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p = 0.5);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextU64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// k distinct values uniformly from [0, n). Requires k <= n.
  std::vector<uint64_t> Sample(uint64_t n, uint64_t k);

 private:
  uint64_t s_[4];
};

}  // namespace topofaq

#endif  // TOPOFAQ_UTIL_RNG_H_
