#include "entropy/distribution.h"

#include <algorithm>
#include <cmath>

namespace topofaq {

BitDist::BitDist(int n_bits) : n_bits_(n_bits) {
  TOPOFAQ_CHECK(n_bits >= 0 && n_bits <= 24);
  p_.assign(1ULL << n_bits, 0.0);
}

void BitDist::Normalize() {
  const double total = TotalMass();
  TOPOFAQ_CHECK(total > 0);
  for (double& v : p_) v /= total;
}

double BitDist::TotalMass() const {
  double t = 0;
  for (double v : p_) t += v;
  return t;
}

double BitDist::MinEntropy() const {
  double mx = 0;
  for (double v : p_) mx = std::max(mx, v);
  TOPOFAQ_CHECK(mx > 0);
  return -std::log2(mx);
}

double BitDist::ShannonEntropy() const {
  double h = 0;
  for (double v : p_)
    if (v > 0) h -= v * std::log2(v);
  return h;
}

double BitDist::SmoothMinEntropy(double eps) const {
  TOPOFAQ_CHECK(eps >= 0 && eps < 1);
  if (eps == 0) return MinEntropy();
  // Cap atoms at threshold t with Σ max(p - t, 0) = eps: sort descending
  // and walk down.
  std::vector<double> sorted(p_.begin(), p_.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double excess = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    // Candidate threshold: sorted[i] (cap everything above to this level).
    const double t = sorted[i];
    // Mass removed if capping the first i atoms to t:
    // excess accumulated below is Σ_{j<i}(sorted[j] - sorted[i]) computed
    // incrementally.
    if (i > 0) excess += (sorted[i - 1] - t) * static_cast<double>(i);
    if (excess >= eps) {
      // Between this and the previous threshold: solve t' with
      // Σ_{j<i}(sorted[j]-t') = eps  =>  t' = t + (excess - eps)/i.
      const double t_prime = t + (excess - eps) / static_cast<double>(i);
      return -std::log2(t_prime);
    }
  }
  // Everything could be flattened below the smallest atom.
  const double t_prime =
      std::max(1e-300, (TotalMass() - eps) / static_cast<double>(sorted.size()));
  return -std::log2(t_prime);
}

BitDist BitDist::Uniform(int n_bits) {
  BitDist d(n_bits);
  const double v = 1.0 / static_cast<double>(d.size());
  for (uint64_t x = 0; x < d.size(); ++x) d.p_[x] = v;
  return d;
}

BitDist BitDist::PointMass(int n_bits, uint64_t x) {
  BitDist d(n_bits);
  d.p_[x] = 1.0;
  return d;
}

BitDist BitDist::UniformOnSet(int n_bits,
                              const std::vector<uint64_t>& support) {
  BitDist d(n_bits);
  TOPOFAQ_CHECK(!support.empty());
  const double v = 1.0 / static_cast<double>(support.size());
  for (uint64_t x : support) {
    TOPOFAQ_CHECK(x < d.size());
    d.p_[x] += v;
  }
  return d;
}

double StatDistance(const BitDist& a, const BitDist& b) {
  TOPOFAQ_CHECK(a.n_bits() == b.n_bits());
  double s = 0;
  for (uint64_t x = 0; x < a.size(); ++x) s += std::abs(a.p(x) - b.p(x));
  return s / 2;
}

double GuessingProbability(const BitDist& d) {
  double mx = 0;
  for (uint64_t x = 0; x < d.size(); ++x) mx = std::max(mx, d.p(x));
  return mx;
}

}  // namespace topofaq
