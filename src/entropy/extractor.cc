#include "entropy/extractor.h"

#include <bit>
#include <cmath>

namespace topofaq {
namespace {

std::vector<uint64_t> RandomSupport(int n, int k, Rng* rng) {
  TOPOFAQ_CHECK(k <= n);
  return rng->Sample(1ULL << n, 1ULL << k);
}

}  // namespace

ExtractorResult InnerProductExperiment(int n, int k1, int k2, Rng* rng) {
  TOPOFAQ_CHECK(n <= 20);
  ExtractorResult res;
  res.n = n;
  res.k1 = k1;
  res.k2 = k2;
  res.delta = static_cast<double>(k1 + k2) / n - 1.0;
  res.theorem_bound =
      res.delta > 0 ? std::pow(2.0, -res.delta * n / 2.0 - 1.0) : 1.0;

  const auto sy = RandomSupport(n, k1, rng);
  const auto sz = RandomSupport(n, k2, rng);
  const double py = 1.0 / static_cast<double>(sy.size());

  // distance = (1/2) Σ_y Σ_b | Pr[y, <y,z>=b] - p_y/2 |.
  double dist = 0;
  for (uint64_t y : sy) {
    int64_t ones = 0;
    for (uint64_t z : sz) ones += std::popcount(y & z) & 1;
    const double p1 = py * static_cast<double>(ones) /
                      static_cast<double>(sz.size());
    const double p0 = py - p1;
    dist += std::abs(p0 - py / 2) + std::abs(p1 - py / 2);
  }
  res.distance = dist / 2;
  return res;
}

ShannonCounterexample ShannonCounterexampleNumbers(int n, double alpha) {
  ShannonCounterexample c;
  c.n = n;
  c.alpha = alpha;
  c.t = static_cast<int>(alpha * n);
  c.h_x = (1 - alpha) * c.t + alpha * (n - c.t);
  c.h_ax_given_leak = alpha * n;
  return c;
}

}  // namespace topofaq
