// Small-scale exact execution of Theorem 6.3 / H.3: if A ∈ F2^{m×n} retains
// min-entropy (1-γ)mn after leaking γmn entries and x is an independent
// source with H∞(x) >= αn, then H∞(Ax) >= (1-√(2γ))m. We fix a random γ
// fraction of A's entries (the leak), take x uniform on a random support,
// and compute the distribution of Ax exactly (rows of A are independent
// given x).
#ifndef TOPOFAQ_ENTROPY_MATRIX_ENTROPY_H_
#define TOPOFAQ_ENTROPY_MATRIX_ENTROPY_H_

#include "entropy/distribution.h"

namespace topofaq {

struct MatrixVectorEntropyResult {
  int m = 0, n = 0;
  double gamma = 0;           ///< leaked fraction of entries
  double hinf_x = 0;          ///< H∞ of the x source
  double hinf_ax = 0;         ///< exact H∞(Ax)
  double theorem_floor = 0;   ///< (1 - sqrt(2γ)) · m
  BitDist ax_dist{0};
};

/// x uniform over 2^support_log2 random *nonzero* vectors; A uniform except
/// round(γ·m·n) fixed random entries. Exact output distribution (m <= 16).
MatrixVectorEntropyResult MatrixVectorExperiment(int m, int n, double gamma,
                                                 int support_log2, Rng* rng);

}  // namespace topofaq

#endif  // TOPOFAQ_ENTROPY_MATRIX_ENTROPY_H_
