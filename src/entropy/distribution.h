// Exact distributions over F2^n (n small) and the entropy notions of
// Section 6.2.1: min-entropy H∞, smooth min-entropy H∞^ε, Shannon entropy,
// and statistical distance. These power the small-scale executions of
// Theorem 6.3 / H.9 and the Appendix I.3 Shannon counterexample.
#ifndef TOPOFAQ_ENTROPY_DISTRIBUTION_H_
#define TOPOFAQ_ENTROPY_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace topofaq {

/// A probability distribution over {0,1}^n, stored densely (n <= 24).
class BitDist {
 public:
  explicit BitDist(int n_bits);

  int n_bits() const { return n_bits_; }
  size_t size() const { return p_.size(); }
  double p(uint64_t x) const { return p_[x]; }
  void set_p(uint64_t x, double v) { p_[x] = v; }

  /// Scales to total mass 1. Requires positive mass.
  void Normalize();
  double TotalMass() const;

  /// H∞(X) = -log2 max_x Pr[X = x].
  double MinEntropy() const;

  /// Shannon entropy (bits).
  double ShannonEntropy() const;

  /// Smooth min-entropy H∞^ε: mass ε may be discarded; the optimum caps the
  /// largest atoms (water-filling), giving -log2 of the resulting max.
  double SmoothMinEntropy(double eps) const;

  static BitDist Uniform(int n_bits);
  static BitDist PointMass(int n_bits, uint64_t x);
  static BitDist UniformOnSet(int n_bits, const std::vector<uint64_t>& support);

 private:
  int n_bits_;
  std::vector<double> p_;
};

/// Total-variation distance (1/2)·Σ|p - q|.
double StatDistance(const BitDist& a, const BitDist& b);

/// Lemma 6.3 quantity: the best guessing probability max_x Pr[X = x]
/// (success of any deterministic guesser without side information).
double GuessingProbability(const BitDist& d);

}  // namespace topofaq

#endif  // TOPOFAQ_ENTROPY_DISTRIBUTION_H_
