// The inner-product two-source extractor experiment (Theorem H.9, from
// Dodis–Oliveira): if H∞(y) + H∞(z) >= (1+Δ)n for independent sources over
// F2^n, then (y, <y,z>) is 2^{-Δn/2-1}-close to D_y × U_1. We compute the
// exact statistical distance for random flat sources and compare it to the
// bound.
#ifndef TOPOFAQ_ENTROPY_EXTRACTOR_H_
#define TOPOFAQ_ENTROPY_EXTRACTOR_H_

#include "entropy/distribution.h"

namespace topofaq {

struct ExtractorResult {
  int n = 0;
  int k1 = 0;  ///< H∞(y) (flat source: log2 of support size)
  int k2 = 0;  ///< H∞(z)
  double delta = 0;          ///< (k1 + k2)/n - 1
  double distance = 0;       ///< exact statistical distance
  double theorem_bound = 0;  ///< 2^{-Δn/2 - 1} (when Δ > 0)
};

/// Exact distance of (y, <y,z>) from D_y × U_1 for y, z uniform on random
/// supports of sizes 2^k1 and 2^k2.
ExtractorResult InnerProductExperiment(int n, int k1, int k2, Rng* rng);

/// Appendix I.3's counterexample numbers: for the span-vs-complement source
/// x (mass 1-α on a random t = αn dimensional subspace) and the leak
/// f(A) = (A x*_1 .. A x*_t), Shannon entropy drops from H(x) ≈ 2α(1-α)n to
/// H(Ax | f(A)) <= α·n — Shannon cannot support the inductive argument of
/// Lemma 6.2, which is why the proof needs min-entropy.
struct ShannonCounterexample {
  int n = 0;
  int t = 0;         ///< subspace dimension αn
  double alpha = 0;
  double h_x = 0;               ///< (1-α)·t + α·(n-t)
  double h_ax_given_leak = 0;   ///< upper bound (1-α)·0 + α·n
};
ShannonCounterexample ShannonCounterexampleNumbers(int n, double alpha);

}  // namespace topofaq

#endif  // TOPOFAQ_ENTROPY_EXTRACTOR_H_
