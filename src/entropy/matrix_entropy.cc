#include "entropy/matrix_entropy.h"

#include <bit>
#include <cmath>

namespace topofaq {

MatrixVectorEntropyResult MatrixVectorExperiment(int m, int n, double gamma,
                                                 int support_log2, Rng* rng) {
  TOPOFAQ_CHECK(m >= 1 && m <= 16 && n >= 1 && n <= 20);
  MatrixVectorEntropyResult res;
  res.m = m;
  res.n = n;
  res.gamma = gamma;
  res.theorem_floor = (1.0 - std::sqrt(2.0 * gamma)) * m;

  // Leak: fix `leak_count` random entries of A.
  const int leak_count =
      static_cast<int>(std::llround(gamma * static_cast<double>(m) * n));
  std::vector<uint64_t> leaked_mask(m, 0);   // per row: which columns fixed
  std::vector<uint64_t> leaked_bits(m, 0);   // the fixed values
  for (uint64_t cell : rng->Sample(static_cast<uint64_t>(m) * n,
                                   static_cast<uint64_t>(leak_count))) {
    const int row = static_cast<int>(cell / n);
    const int col = static_cast<int>(cell % n);
    leaked_mask[row] |= 1ULL << col;
    if (rng->NextBool()) leaked_bits[row] |= 1ULL << col;
  }

  // x source: uniform over random nonzero vectors.
  const uint64_t support_size = 1ULL << support_log2;
  std::vector<uint64_t> support;
  {
    std::vector<uint64_t> picks =
        rng->Sample((1ULL << n) - 1, support_size);  // values in [0, 2^n-1)
    for (uint64_t v : picks) support.push_back(v + 1);  // skip 0
  }
  res.hinf_x = static_cast<double>(support_log2);

  // Exact distribution of Ax: per row i, (Ax)_i = <a_i, x>. Given x, rows
  // are independent; row i is uniform iff x hits a free (unleaked) column,
  // else deterministic with bit <leaked_bits_i, x>.
  BitDist dist(m);
  const double px = 1.0 / static_cast<double>(support.size());
  for (uint64_t x : support) {
    uint64_t det_mask = 0;   // rows with deterministic output
    uint64_t det_bits = 0;
    int free_rows = 0;
    for (int i = 0; i < m; ++i) {
      const bool has_free = (x & ~leaked_mask[i] & ((1ULL << n) - 1)) != 0;
      if (has_free) {
        ++free_rows;
      } else {
        det_mask |= 1ULL << i;
        if (std::popcount(x & leaked_bits[i]) & 1) det_bits |= 1ULL << i;
      }
    }
    const double w = px / std::pow(2.0, free_rows);
    // Add w to every z agreeing with det_bits on det_mask: enumerate the
    // free-row subcube.
    uint64_t free_mask = ~det_mask & ((1ULL << m) - 1);
    uint64_t sub = 0;
    while (true) {
      dist.set_p(det_bits | sub, dist.p(det_bits | sub) + w);
      if (sub == free_mask) break;
      sub = (sub - free_mask) & free_mask;  // next subset of free_mask
    }
  }
  res.hinf_ax = dist.MinEntropy();
  res.ax_dist = std::move(dist);
  return res;
}

}  // namespace topofaq
