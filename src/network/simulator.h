// The synchronous network of Model 2.1: topology G with private
// point-to-point channels, each carrying at most `capacity_bits` per
// direction per round (the paper's O(r·log2 D) budget; footnote 6 notes the
// bounds generalize to any per-edge budget B).
//
// SyncNetwork is a *transport ledger*: protocols reserve (edge, direction,
// round) bit budgets through it, and it accounts rounds and bits exactly.
// Any subset of edges may be used in the same round (Model 2.1), so
// parallel protocol phases are expressed simply by scheduling onto the same
// rounds; capacity violations are impossible by construction.
#ifndef TOPOFAQ_NETWORK_SIMULATOR_H_
#define TOPOFAQ_NETWORK_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "graphalg/graph.h"
#include "util/status.h"

namespace topofaq {

class SyncNetwork {
 public:
  /// Largest per-round capacity the uint16 round ledger can represent.
  /// Capacities above this are a *contract violation* of the sync simulator,
  /// not a soft failure: protocols that need the high-capacity regime run on
  /// AsyncNetwork (network/async.h), whose bandwidths are unbounded doubles.
  static constexpr int64_t kMaxCapacityBits = 65535;

  /// Status form of the constructor contract: capacity must be in
  /// [1, kMaxCapacityBits].
  static Status ValidateCapacity(int64_t capacity_bits);

  /// Checked construction; the error Status names the ledger limit and the
  /// AsyncNetwork escape hatch.
  static Result<SyncNetwork> Create(Graph g, int64_t capacity_bits);

  /// `capacity_bits` is the per-direction per-round budget of every channel.
  /// CHECK-fails outside [1, kMaxCapacityBits]; callers with untrusted
  /// capacities go through Create().
  SyncNetwork(Graph g, int64_t capacity_bits);

  const Graph& graph() const { return g_; }
  int64_t capacity_bits() const { return capacity_bits_; }

  /// Bits already reserved on (edge, direction) at `round`.
  int64_t Used(int edge, bool forward, int64_t round) const;

  /// Remaining budget on (edge, direction) at `round`.
  int64_t Remaining(int edge, bool forward, int64_t round) const;

  /// Reserves up to `bits` on the channel from `from` across `edge` at
  /// `round`; returns the amount actually granted (0 if the round is full).
  int64_t Reserve(int edge, NodeId from, int64_t round, int64_t bits);

  /// Highest round index with any traffic, plus one (the protocol's round
  /// count if it started at round 0).
  int64_t horizon() const { return horizon_; }

  /// Total bits ever reserved.
  int64_t total_bits() const { return total_bits_; }

  /// Direction flag for traffic leaving `from` over `edge`.
  bool ForwardDir(int edge, NodeId from) const {
    return g_.edge(edge).first == from;
  }

 private:
  Graph g_;
  int64_t capacity_bits_;
  /// Per-round used bits, grown on demand. uint16 keeps long simulations
  /// (millions of rounds x hundreds of edges) memory-friendly; capacities
  /// above 65535 bits/round are rejected at construction.
  std::vector<std::vector<uint16_t>> usage_fwd_;
  std::vector<std::vector<uint16_t>> usage_bwd_;
  int64_t horizon_ = 0;
  int64_t total_bits_ = 0;
};

}  // namespace topofaq

#endif  // TOPOFAQ_NETWORK_SIMULATOR_H_
