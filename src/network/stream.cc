#include "network/stream.h"

#include <algorithm>

namespace topofaq {

InFlightLedger::InFlightLedger(int num_nodes) : in_flight_(num_nodes, 0) {}

void InFlightLedger::Charge(NodeId src) {
  peak_ = std::max(peak_, ++in_flight_[src]);
  ++total_;
}

void InFlightLedger::Release(NodeId src) {
  TOPOFAQ_CHECK_MSG(in_flight_[src] > 0, "credit for a node with no pages out");
  --in_flight_[src];
}

}  // namespace topofaq
