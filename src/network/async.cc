#include "network/async.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

namespace topofaq {

AsyncNetwork::AsyncNetwork(Graph g, LinkParams link) : g_(std::move(g)) {
  TOPOFAQ_CHECK_MSG(link.latency >= 0, "negative link latency");
  TOPOFAQ_CHECK_MSG(link.bandwidth_bits > 0, "bandwidth must be positive");
  links_.assign(g_.num_edges(), link);
  busy_until_.assign(g_.num_edges(), {0, 0});
  busy_time_.assign(g_.num_edges(), {0, 0});
  handlers_.resize(g_.num_nodes());
}

void AsyncNetwork::SetLink(int edge, LinkParams p) {
  TOPOFAQ_CHECK(edge >= 0 && edge < g_.num_edges());
  TOPOFAQ_CHECK_MSG(p.latency >= 0, "negative link latency");
  TOPOFAQ_CHECK_MSG(p.bandwidth_bits > 0, "bandwidth must be positive");
  links_[edge] = p;
}

void AsyncNetwork::SetHandler(NodeId node, Handler h) {
  TOPOFAQ_CHECK(node >= 0 && node < g_.num_nodes());
  handlers_[node] = std::move(h);
}

void AsyncNetwork::set_trace(obs::TraceSession* t) {
  trace_ = t;
  xmit_tracks_.assign(static_cast<size_t>(g_.num_edges()), {0, 0});
}

void AsyncNetwork::Send(NodeId from, NodeId to, Packet p) {
  const int edge = g_.EdgeBetween(from, to);
  TOPOFAQ_CHECK_MSG(edge >= 0, "Send endpoints are not adjacent");
  TOPOFAQ_CHECK(p.bits >= 0);
  const int dir = g_.edge(edge).first == from ? 0 : 1;
  const LinkParams& link = links_[edge];
  const SimTime serialize = static_cast<SimTime>(p.bits) / link.bandwidth_bits;
  const SimTime start = std::max(now_, busy_until_[edge][dir]);
  busy_until_[edge][dir] = start + serialize;
  busy_time_[edge][dir] += serialize;
  total_bits_ += p.bits;
  ++packets_;
  if (trace_ != nullptr) {
    // One span per packet on the (edge, direction) track, in simulated time
    // (1 unit exported as 1 µs). Duration is the serialization interval
    // [start, start + serialize) only: consecutive packets on one direction
    // abut rather than overlap, while the latency tail would overlap the
    // next packet's serialization (transfers pipeline across hops).
    uint32_t& slot = xmit_tracks_[static_cast<size_t>(edge)][dir];
    if (slot == 0) {
      const auto& ep = g_.edge(edge);
      const NodeId a = dir == 0 ? ep.first : ep.second;
      const NodeId b = dir == 0 ? ep.second : ep.first;
      slot = trace_->RegisterTrack(
                 "link " + std::to_string(a) + "->" + std::to_string(b),
                 obs::ClockDomain::kSimulated) +
             1;
    }
    char args[128];
    std::snprintf(args, sizeof(args),
                  "{\"bits\":%lld,\"stream\":%llu,\"seq\":%lld,\"hop\":%d}",
                  static_cast<long long>(p.bits),
                  static_cast<unsigned long long>(p.stream),
                  static_cast<long long>(p.seq), p.hop);
    trace_->Emit(p.control ? "ctl" : "page", slot - 1,
                 obs::ClockDomain::kSimulated, start, serialize, args);
  }
  const SimTime arrive = start + serialize + link.latency;
  heap_.push(Event{arrive, next_event_id_++,
                   [this, to, p = std::move(p)]() mutable {
                     TOPOFAQ_CHECK_MSG(static_cast<bool>(handlers_[to]),
                                       "packet arrived at a handler-less node");
                     handlers_[to](std::move(p));
                   }});
}

void AsyncNetwork::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  TOPOFAQ_CHECK(delay >= 0);
  heap_.push(Event{now_ + delay, next_event_id_++, std::move(fn)});
}

SimTime AsyncNetwork::Run() {
  while (!heap_.empty()) {
    // Moving out of a priority_queue requires the const_cast dance; the
    // element is popped immediately after, so nothing observes the
    // moved-from state.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    makespan_ = std::max(makespan_, now_);
    ev.fn();
  }
  return makespan_;
}

std::vector<double> AsyncNetwork::EdgeUtilization() const {
  std::vector<double> out(g_.num_edges(), 0.0);
  if (makespan_ <= 0) return out;
  for (int e = 0; e < g_.num_edges(); ++e)
    out[e] = (busy_time_[e][0] + busy_time_[e][1]) / (2.0 * makespan_);
  return out;
}

}  // namespace topofaq
