#include "network/simulator.h"

#include <algorithm>

namespace topofaq {

SyncNetwork::SyncNetwork(Graph g, int64_t capacity_bits)
    : g_(std::move(g)), capacity_bits_(capacity_bits) {
  TOPOFAQ_CHECK(capacity_bits_ >= 1);
  TOPOFAQ_CHECK_MSG(capacity_bits_ <= 65535, "per-round capacity too large");
  usage_fwd_.resize(g_.num_edges());
  usage_bwd_.resize(g_.num_edges());
}

int64_t SyncNetwork::Used(int edge, bool forward, int64_t round) const {
  const auto& u = forward ? usage_fwd_[edge] : usage_bwd_[edge];
  if (round >= static_cast<int64_t>(u.size())) return 0;
  return u[round];
}

int64_t SyncNetwork::Remaining(int edge, bool forward, int64_t round) const {
  return capacity_bits_ - Used(edge, forward, round);
}

int64_t SyncNetwork::Reserve(int edge, NodeId from, int64_t round, int64_t bits) {
  TOPOFAQ_CHECK(edge >= 0 && edge < g_.num_edges());
  TOPOFAQ_CHECK(round >= 0);
  TOPOFAQ_CHECK(bits >= 0);
  const bool fwd = ForwardDir(edge, from);
  auto& u = fwd ? usage_fwd_[edge] : usage_bwd_[edge];
  if (round >= static_cast<int64_t>(u.size())) u.resize(round + 1, 0);
  const int64_t grant = std::min(bits, capacity_bits_ - u[round]);
  u[round] = static_cast<uint16_t>(u[round] + grant);
  if (grant > 0) {
    horizon_ = std::max(horizon_, round + 1);
    total_bits_ += grant;
  }
  return grant;
}

}  // namespace topofaq
