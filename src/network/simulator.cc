#include "network/simulator.h"

#include <algorithm>
#include <string>

namespace topofaq {

Status SyncNetwork::ValidateCapacity(int64_t capacity_bits) {
  if (capacity_bits < 1)
    return Status::InvalidArgument("per-round capacity must be >= 1 bit");
  if (capacity_bits > kMaxCapacityBits)
    return Status::InvalidArgument(
        "per-round capacity " + std::to_string(capacity_bits) +
        " exceeds SyncNetwork's uint16 round-ledger limit of " +
        std::to_string(kMaxCapacityBits) +
        " bits; use the event-driven AsyncNetwork (network/async.h) for the "
        "high-capacity regime");
  return Status::Ok();
}

Result<SyncNetwork> SyncNetwork::Create(Graph g, int64_t capacity_bits) {
  TOPOFAQ_RETURN_IF_ERROR(ValidateCapacity(capacity_bits));
  return SyncNetwork(std::move(g), capacity_bits);
}

SyncNetwork::SyncNetwork(Graph g, int64_t capacity_bits)
    : g_(std::move(g)), capacity_bits_(capacity_bits) {
  const Status st = ValidateCapacity(capacity_bits_);
  TOPOFAQ_CHECK_MSG(st.ok(), st.message().c_str());
  usage_fwd_.resize(g_.num_edges());
  usage_bwd_.resize(g_.num_edges());
}

int64_t SyncNetwork::Used(int edge, bool forward, int64_t round) const {
  const auto& u = forward ? usage_fwd_[edge] : usage_bwd_[edge];
  if (round >= static_cast<int64_t>(u.size())) return 0;
  return u[round];
}

int64_t SyncNetwork::Remaining(int edge, bool forward, int64_t round) const {
  return capacity_bits_ - Used(edge, forward, round);
}

int64_t SyncNetwork::Reserve(int edge, NodeId from, int64_t round, int64_t bits) {
  TOPOFAQ_CHECK(edge >= 0 && edge < g_.num_edges());
  TOPOFAQ_CHECK(round >= 0);
  TOPOFAQ_CHECK(bits >= 0);
  const bool fwd = ForwardDir(edge, from);
  auto& u = fwd ? usage_fwd_[edge] : usage_bwd_[edge];
  if (round >= static_cast<int64_t>(u.size())) u.resize(round + 1, 0);
  const int64_t grant = std::min(bits, capacity_bits_ - u[round]);
  u[round] = static_cast<uint16_t>(u[round] + grant);
  if (grant > 0) {
    horizon_ = std::max(horizon_, round + 1);
    total_bits_ += grant;
  }
  return grant;
}

}  // namespace topofaq
