#include "network/primitives.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

#include "util/bits.h"

namespace topofaq {

RootedTree OrientTree(const Graph& g, const std::vector<int>& edges,
                      NodeId root) {
  RootedTree t;
  t.root = root;
  const int n = g.num_nodes();
  t.parent_edge.assign(n, -1);
  t.parent.assign(n, -1);
  t.children.assign(n, {});
  t.in_tree.assign(n, false);
  t.depth.assign(n, -1);

  std::vector<std::vector<std::pair<NodeId, int>>> adj(n);
  for (int e : edges) {
    auto [u, v] = g.edge(e);
    adj[u].push_back({v, e});
    adj[v].push_back({u, e});
  }
  t.in_tree[root] = true;
  t.depth[root] = 0;
  std::deque<NodeId> q{root};
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop_front();
    for (auto [w, e] : adj[v]) {
      if (t.in_tree[w]) continue;
      t.in_tree[w] = true;
      t.parent[w] = v;
      t.parent_edge[w] = e;
      t.depth[w] = t.depth[v] + 1;
      t.children[v].push_back(w);
      q.push_back(w);
    }
  }
  return t;
}

int64_t UnicastBits(SyncNetwork* net, NodeId from, NodeId to, int64_t bits,
                    int64_t start_round) {
  if (from == to || bits == 0) return start_round;
  const std::vector<NodeId> path = net->graph().ShortestPath(from, to);
  TOPOFAQ_CHECK_MSG(!path.empty(), "no route between endpoints");
  const int hops = static_cast<int>(path.size()) - 1;
  // buf[i] = bits currently held at path[i] and not yet forwarded.
  std::vector<int64_t> buf(hops + 1, 0);
  buf[0] = bits;
  int64_t round = start_round;
  // Rounds already reserved by earlier traffic may grant nothing; fresh
  // rounds always have capacity, so the transfer provably finishes by
  // horizon + ceil(bits/cap) + hops. Guard generously against bugs.
  const int64_t guard = net->horizon() + start_round +
                        CeilDiv(bits, net->capacity_bits()) + hops + 16;
  while (buf[hops] < bits) {
    // Snapshot sends based on state at the start of the round; data moved in
    // round r becomes available at the next hop in round r+1.
    std::vector<int64_t> moved(hops, 0);
    for (int i = 0; i < hops; ++i) {
      if (buf[i] == 0) continue;
      const int e = net->graph().EdgeBetween(path[i], path[i + 1]);
      moved[i] = net->Reserve(e, path[i], round, buf[i]);
    }
    for (int i = 0; i < hops; ++i) {
      buf[i] -= moved[i];
      buf[i + 1] += moved[i];
    }
    ++round;
    TOPOFAQ_CHECK_MSG(round <= guard, "unicast ran past its guard bound");
  }
  return round;
}

int64_t BroadcastBits(SyncNetwork* net, NodeId src,
                      const std::vector<NodeId>& targets, int64_t bits,
                      int64_t start_round) {
  if (bits == 0) return start_round;
  std::vector<NodeId> needed;
  for (NodeId t : targets)
    if (t != src) needed.push_back(t);
  if (needed.empty()) return start_round;

  // BFS tree from src, pruned to branches containing targets.
  const Graph& g = net->graph();
  std::vector<int> all_edges;
  for (int e = 0; e < g.num_edges(); ++e) all_edges.push_back(e);
  RootedTree bfs = OrientTree(g, all_edges, src);
  std::vector<bool> keep(g.num_nodes(), false);
  for (NodeId t : needed) {
    TOPOFAQ_CHECK_MSG(bfs.in_tree[t], "broadcast target unreachable");
    for (NodeId v = t; v >= 0 && !keep[v]; v = bfs.parent[v]) keep[v] = true;
  }

  // have[v] = bits received at v (src has everything).
  std::vector<int64_t> have(g.num_nodes(), 0);
  have[src] = bits;
  // sent[v] = bits already forwarded to v by its parent.
  std::vector<int64_t> sent(g.num_nodes(), 0);
  int64_t round = start_round;
  const int64_t guard = net->horizon() + start_round +
                        CeilDiv(bits, net->capacity_bits()) +
                        g.num_nodes() + 16;
  auto done = [&] {
    for (NodeId t : needed)
      if (have[t] < bits) return false;
    return true;
  };
  while (!done()) {
    std::vector<std::pair<NodeId, int64_t>> deliveries;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!keep[v] || v == src) continue;
      const NodeId p = bfs.parent[v];
      const int64_t avail = have[p] - sent[v];
      if (avail <= 0) continue;
      const int64_t granted = net->Reserve(bfs.parent_edge[v], p, round, avail);
      if (granted > 0) deliveries.push_back({v, granted});
    }
    for (auto [v, granted] : deliveries) {
      sent[v] += granted;
      have[v] += granted;
    }
    ++round;
    TOPOFAQ_CHECK_MSG(round <= guard, "broadcast ran past its guard bound");
  }
  return round;
}

int64_t BroadcastOnTree(SyncNetwork* net, const RootedTree& tree, int64_t bits,
                        int64_t start_round) {
  if (bits == 0) return start_round;
  const Graph& g = net->graph();
  const int n = g.num_nodes();
  std::vector<int64_t> have(n, 0), sent(n, 0);
  have[tree.root] = bits;
  int64_t outstanding = 0;
  for (NodeId v = 0; v < n; ++v)
    if (tree.in_tree[v] && v != tree.root) ++outstanding;
  if (outstanding == 0) return start_round;
  int64_t round = start_round;
  const int64_t guard = net->horizon() + start_round +
                        CeilDiv(bits, net->capacity_bits()) + n + 16;
  while (true) {
    bool all_done = true;
    for (NodeId v = 0; v < n; ++v)
      if (tree.in_tree[v] && v != tree.root && have[v] < bits) all_done = false;
    if (all_done) break;
    std::vector<std::pair<NodeId, int64_t>> deliveries;
    for (NodeId v = 0; v < n; ++v) {
      if (!tree.in_tree[v] || v == tree.root) continue;
      const NodeId p = tree.parent[v];
      const int64_t avail = have[p] - sent[v];
      if (avail <= 0) continue;
      const int64_t granted = net->Reserve(tree.parent_edge[v], p, round, avail);
      if (granted > 0) deliveries.push_back({v, granted});
    }
    for (auto [v, granted] : deliveries) {
      sent[v] += granted;
      have[v] += granted;
    }
    ++round;
    TOPOFAQ_CHECK_MSG(round <= guard, "tree broadcast ran past its guard");
  }
  return round;
}

int64_t MultiTreeBroadcast(SyncNetwork* net,
                           const std::vector<RootedTree>& trees, int64_t bits,
                           int64_t start_round) {
  TOPOFAQ_CHECK(!trees.empty());
  const int64_t t = static_cast<int64_t>(trees.size());
  const int64_t chunk = CeilDiv(bits, t);
  int64_t finish = start_round;
  for (int64_t i = 0; i < t; ++i) {
    const int64_t this_chunk = std::min(chunk, bits - i * chunk);
    if (this_chunk <= 0) break;
    finish = std::max(
        finish, BroadcastOnTree(net, trees[i], this_chunk, start_round));
  }
  return finish;
}

int64_t ConvergecastItems(SyncNetwork* net, const RootedTree& tree,
                          int64_t n_items, int item_bits, int64_t start_round) {
  if (n_items == 0) return start_round;
  const Graph& g = net->graph();
  const int n = g.num_nodes();
  // A node's aggregated prefix is limited by the slowest child stream; we
  // track received bits from each child and derive the ready item count.
  std::vector<std::vector<int64_t>> recv(n);
  std::vector<int64_t> sent_up(n, 0);
  for (NodeId v = 0; v < n; ++v)
    if (tree.in_tree[v]) recv[v].assign(tree.children[v].size(), 0);

  auto ready_items = [&](NodeId v) -> int64_t {
    // Leaf (or node with no children): own vector is ready immediately.
    int64_t r = n_items;
    for (size_t c = 0; c < tree.children[v].size(); ++c)
      r = std::min(r, recv[v][c] / item_bits);
    return r;
  };

  int64_t round = start_round;
  const int64_t guard =
      net->horizon() + start_round +
      CeilDiv(n_items * item_bits, net->capacity_bits()) * (g.num_nodes() + 1) +
      g.num_nodes() + 16;
  while (ready_items(tree.root) < n_items) {
    struct Delivery {
      NodeId parent;
      size_t child_slot;
      int64_t bits;
    };
    std::vector<Delivery> deliveries;
    for (NodeId v = 0; v < n; ++v) {
      if (!tree.in_tree[v] || v == tree.root) continue;
      const int64_t sendable = ready_items(v) * item_bits - sent_up[v];
      if (sendable <= 0) continue;
      const int64_t granted =
          net->Reserve(tree.parent_edge[v], v, round, sendable);
      if (granted <= 0) continue;
      const NodeId p = tree.parent[v];
      size_t slot = 0;
      while (tree.children[p][slot] != v) ++slot;
      deliveries.push_back({p, slot, granted});
      sent_up[v] += granted;
    }
    for (const auto& d : deliveries) recv[d.parent][d.child_slot] += d.bits;
    ++round;
    TOPOFAQ_CHECK_MSG(round <= guard, "convergecast ran past its guard bound");
  }
  return round;
}

int64_t GatherFlows(SyncNetwork* net, const std::vector<FlowDemand>& demands,
                    NodeId target, int64_t start_round) {
  const Graph& g = net->graph();
  // Congestion-aware static routing: biggest demands pick paths first;
  // edge weight grows with load already assigned.
  std::vector<std::vector<NodeId>> paths(demands.size());
  std::vector<double> load(g.num_edges(), 0.0);
  std::vector<size_t> order(demands.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return demands[a].bits > demands[b].bits;
  });
  double total_bits = 1.0;
  for (const auto& d : demands) total_bits += static_cast<double>(d.bits);
  for (size_t idx : order) {
    const NodeId s = demands[idx].source;
    if (s == target || demands[idx].bits == 0) {
      paths[idx] = {target};
      continue;
    }
    // Dijkstra with weight 1 + load-share penalty.
    std::vector<double> dist(g.num_nodes(),
                             std::numeric_limits<double>::infinity());
    std::vector<int> par_edge(g.num_nodes(), -1);
    using Entry = std::pair<double, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    dist[s] = 0;
    pq.push({0, s});
    while (!pq.empty()) {
      auto [dv, v] = pq.top();
      pq.pop();
      if (dv > dist[v]) continue;
      for (auto [w, e] : g.Neighbors(v)) {
        const double wgt = 1.0 + 4.0 * load[e] / total_bits;
        if (dist[v] + wgt < dist[w]) {
          dist[w] = dist[v] + wgt;
          par_edge[w] = e;
          pq.push({dist[w], w});
        }
      }
    }
    TOPOFAQ_CHECK_MSG(par_edge[target] >= 0 || s == target,
                      "gather source disconnected");
    std::vector<NodeId> path{target};
    for (NodeId v = target; v != s;) {
      const int e = par_edge[v];
      load[e] += static_cast<double>(demands[idx].bits);
      v = g.OtherEnd(e, v);
      path.push_back(v);
    }
    std::reverse(path.begin(), path.end());
    paths[idx] = std::move(path);
  }

  // Store-and-forward simulation: buf[i][h] = bits of demand i waiting at
  // hop h of its path. Round-robin order rotates for fairness on shared
  // edges.
  std::vector<std::vector<int64_t>> buf(demands.size());
  int64_t outstanding = 0;
  for (size_t i = 0; i < demands.size(); ++i) {
    buf[i].assign(paths[i].size(), 0);
    buf[i][0] = demands[i].bits;
    if (paths[i].size() > 1) outstanding += demands[i].bits;
  }
  int64_t round = start_round;
  int64_t guard = net->horizon() + start_round + 16;
  for (size_t i = 0; i < demands.size(); ++i)
    guard += CeilDiv(demands[i].bits, net->capacity_bits()) +
             static_cast<int64_t>(paths[i].size());
  size_t rotate = 0;
  while (outstanding > 0) {
    struct Move {
      size_t demand;
      size_t hop;
      int64_t bits;
    };
    std::vector<Move> moves;
    for (size_t k = 0; k < demands.size(); ++k) {
      const size_t i = (k + rotate) % demands.size();
      const auto& path = paths[i];
      for (size_t h = 0; h + 1 < path.size(); ++h) {
        if (buf[i][h] <= 0) continue;
        const int e = g.EdgeBetween(path[h], path[h + 1]);
        const int64_t granted = net->Reserve(e, path[h], round, buf[i][h]);
        if (granted > 0) moves.push_back({i, h, granted});
      }
    }
    for (const auto& m : moves) {
      buf[m.demand][m.hop] -= m.bits;
      buf[m.demand][m.hop + 1] += m.bits;
      if (m.hop + 2 == paths[m.demand].size()) outstanding -= m.bits;
    }
    ++round;
    ++rotate;
    TOPOFAQ_CHECK_MSG(round <= guard, "gather ran past its guard bound");
  }
  return round;
}

}  // namespace topofaq
