// Transport primitives over SyncNetwork, all pipelined and all accounted
// round-by-round against channel capacities:
//
//  * UnicastBits      — point-to-point streaming along a shortest path
//  * BroadcastBits    — one-to-many streaming down a BFS tree
//  * ConvergecastItems— bottom-up elementwise aggregation over a Steiner
//                       tree (the engine behind the Theorem 3.11 protocol)
//  * GatherFlows      — many-to-one store-and-forward routing with
//                       congestion-aware path selection (the trivial
//                       protocol / τ_MCF engine, Definition 3.12)
//
// Every primitive takes a start round and returns the round *after* its last
// transmission, so protocol phases compose sequentially or in parallel by
// choosing start rounds.
#ifndef TOPOFAQ_NETWORK_PRIMITIVES_H_
#define TOPOFAQ_NETWORK_PRIMITIVES_H_

#include <vector>

#include "graphalg/steiner.h"
#include "network/simulator.h"

namespace topofaq {

/// Rooted view of a Steiner tree given by edge ids.
struct RootedTree {
  NodeId root = -1;
  std::vector<int> parent_edge;   ///< per node: edge toward parent (-1 if
                                  ///< root or not in tree)
  std::vector<NodeId> parent;     ///< per node: parent node id (-1 likewise)
  std::vector<std::vector<NodeId>> children;  ///< per node
  std::vector<bool> in_tree;      ///< per node
  std::vector<int> depth;         ///< per node (root = 0; -1 outside)
};

/// Orients `edges` as a tree rooted at `root` (must be a node of the tree).
RootedTree OrientTree(const Graph& g, const std::vector<int>& edges, NodeId root);

/// Streams `bits` from `from` to `to` along a shortest path, starting no
/// earlier than `start_round`. Returns the first round index at which the
/// full payload is available at `to` (== finish round).
int64_t UnicastBits(SyncNetwork* net, NodeId from, NodeId to, int64_t bits,
                    int64_t start_round);

/// Streams `bits` from `src` to every node in `targets` down a BFS tree.
/// Returns the round at which the last target is complete.
int64_t BroadcastBits(SyncNetwork* net, NodeId src,
                      const std::vector<NodeId>& targets, int64_t bits,
                      int64_t start_round);

/// Pipelined broadcast of `bits` from each tree's root to *all* its nodes,
/// restricted to tree edges. Returns the completion round.
int64_t BroadcastOnTree(SyncNetwork* net, const RootedTree& tree, int64_t bits,
                        int64_t start_round);

/// Chunked broadcast over an edge-disjoint packing (all trees rooted at the
/// payload owner): chunk i flows down tree i, so every spanned node receives
/// the full payload in ~bits/(cap·T) + Δ rounds — the gossip-style broadcast
/// that keeps Algorithm 1's step 3 within the Theorem 3.11 budget.
int64_t MultiTreeBroadcast(SyncNetwork* net,
                           const std::vector<RootedTree>& trees, int64_t bits,
                           int64_t start_round);

/// Pipelined bottom-up aggregation of `n_items` items of `item_bits` bits
/// each over the given tree: every tree node combines its children's streams
/// elementwise with its own vector and forwards the combined prefix to its
/// parent. Returns the round at which the root holds all aggregated items.
int64_t ConvergecastItems(SyncNetwork* net, const RootedTree& tree,
                          int64_t n_items, int item_bits, int64_t start_round);

/// One source→sink demand for GatherFlows.
struct FlowDemand {
  NodeId source;
  int64_t bits;
};

/// Routes every demand to `target` with store-and-forward pipelining.
/// Paths are chosen congestion-aware (successive least-loaded shortest
/// paths). Returns the round at which the last bit arrives.
int64_t GatherFlows(SyncNetwork* net, const std::vector<FlowDemand>& demands,
                    NodeId target, int64_t start_round);

}  // namespace topofaq

#endif  // TOPOFAQ_NETWORK_PRIMITIVES_H_
