// Streaming relation transport over the AsyncNetwork (async.h): ships a
// `Relation<S>` from one node to another as a sequence of fixed-size
// column-chunk pages instead of one whole-relation payload, so a relation
// larger than the in-flight budget never fully materializes on the wire.
//
// Page format: `RelationPage<S>` holds `page_rows` consecutive rows of the
// source relation as per-column chunks (the same struct-of-arrays layout as
// Relation itself) plus the parallel annotation chunk and a `last` flag.
// Pages are plain row ranges — a single key run may span a page boundary;
// the sink's RelationBuilder re-certifies the canonical invariant with no
// sort because pages arrive in row order over FIFO channels.
//
// Compressed columns ship compressed: a chunk of an encoded source column
// (relation/encoding.h) is re-packed as the bit-packed code slice it covers
// (EncodedColumn::Slice) instead of decoded values, and the packet's wire
// bits are the true packed payload — rows·width bits per encoded column
// versus rows·bits_per_attr for a plain one. A dictionary travels exactly
// once per stream, on the first page; the sink caches it and decodes every
// later chunk against the cached copy. Decoding happens only at the sink's
// AppendChunk splice (the RelationBuilder emission point), and the rebuilt
// relation re-runs the encode-on-canonicalize policy in Build(), so a
// skewed relation stays compressed end to end: in memory at the source, on
// every hop of the wire, and in memory at the sink. The per-stream
// encoded/plain payload totals are exported for ProtocolStats.
//
// Backpressure rule: every *source node* has a page budget
// (`StreamOptions::node_page_budget`, shared by all streams it is currently
// sourcing). A page is charged against the budget when it is materialized,
// travels hop-by-hop along the stream's fixed shortest-path route, is freed
// when the final sink consumes it, and the budget slot returns to the source
// as a small credit packet routed back along the same path. A source at its
// budget stalls (no page is cut from the relation at all) until a credit
// arrives, so the pages in flight *per source node* never exceed the budget
// (relayed pages stay charged to their source; a relay buffers forwarded
// pages on top of its own budget) — the InFlightLedger records the
// high-water mark protocols export as `ProtocolStats::max_in_flight_pages`.
//
// Determinism: pages of one stream arrive in sequence order (FIFO channels,
// fixed route), sources are pumped in stream-id order, and the rebuilt
// relation is bit-identical — per column and annotation bit pattern — to the
// source (RelationBuilder's sorted path, no closing sort).
#ifndef TOPOFAQ_NETWORK_STREAM_H_
#define TOPOFAQ_NETWORK_STREAM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "network/async.h"
#include "relation/relation.h"

namespace topofaq {

/// Knobs of the streaming transport.
struct StreamOptions {
  /// Rows per page (the chunk size payloads are cut into).
  size_t page_rows = 4096;
  /// Max pages one source node may have materialized in flight, across all
  /// streams it is sourcing (the backpressure budget; >= 1).
  int64_t node_page_budget = 8;
  /// Fixed per-page framing overhead on the wire (stream id, seq, row
  /// count).
  int64_t page_header_bits = 64;
  /// Wire size of one credit (budget-return) packet.
  int64_t credit_bits = 32;
};

/// Exact in-flight page accounting, per source node. A page is "in flight"
/// from the moment the source materializes it until the sink consumes it;
/// the budget slot itself is only reusable once the credit returns.
class InFlightLedger {
 public:
  explicit InFlightLedger(int num_nodes);

  void Charge(NodeId src);
  void Release(NodeId src);
  int64_t InFlight(NodeId src) const { return in_flight_[src]; }
  /// High-water mark of in-flight pages charged to any single source node
  /// (relayed pages count against their source, not the relay).
  int64_t peak_pages() const { return peak_; }
  /// Pages ever charged (== pages shipped end to end when drained).
  int64_t total_pages() const { return total_; }

 private:
  std::vector<int64_t> in_flight_;
  int64_t peak_ = 0;
  int64_t total_ = 0;
};

/// One column chunk of a page: raw values (kPlain) or a bit-packed code
/// slice sharing the source column's code space (kDict / kFor). The
/// dictionary rides in `enc.dict` only on the stream's first page; later
/// chunks carry codes alone and the sink decodes them against its cached
/// copy.
struct PageCol {
  ColumnEncoding encoding = ColumnEncoding::kPlain;
  std::vector<Value> plain;  // kPlain only
  EncodedColumn enc;         // kDict / kFor only
};

/// One page: rows [row_begin, row_begin + rows()) of the source relation as
/// column chunks, schema order, plus the annotation chunk.
template <CommutativeSemiring S>
struct RelationPage {
  std::vector<PageCol> cols;
  std::vector<typename S::Value> annots;
  bool last = false;
  size_t rows() const { return annots.size(); }
};

/// The transport. Owns every node's AsyncNetwork handler (protocol adapters
/// interact through SendRelation completions and ScheduleAfter, never raw
/// packets). One StreamNet per simulation; all streams of a run share its
/// ledger.
template <CommutativeSemiring S>
class StreamNet {
 public:
  using Completion = std::function<void(Relation<S>)>;

  StreamNet(AsyncNetwork* net, StreamOptions opts)
      : net_(net), opts_(opts), ledger_(net->graph().num_nodes()) {
    TOPOFAQ_CHECK_MSG(opts_.page_rows >= 1, "page_rows must be >= 1");
    TOPOFAQ_CHECK_MSG(opts_.node_page_budget >= 1, "page budget must be >= 1");
    for (NodeId v = 0; v < net_->graph().num_nodes(); ++v)
      net_->SetHandler(v, [this, v](Packet p) { OnPacket(v, std::move(p)); });
  }

  /// Ships `rel` from `src` to `dst` (any pair of nodes; the route is the
  /// shortest path) and invokes `done` with the rebuilt relation once the
  /// last page is consumed at `dst`. `rel` must be canonical and must stay
  /// alive and unmodified until `done` fires — pages are cut from it lazily
  /// as budget allows, which is exactly what keeps oversized payloads from
  /// materializing. src == dst delivers a copy at the next simulated
  /// instant with no pages or bits.
  void SendRelation(NodeId src, NodeId dst, const Relation<S>& rel,
                    int bits_per_attr, Completion done) {
    TOPOFAQ_CHECK_MSG(rel.canonical(),
                      "streamed relations must be canonical (sorted pages "
                      "are what lets the sink skip its closing sort)");
    if (src == dst) {
      net_->ScheduleAfter(0, [done = std::move(done), copy = rel]() mutable {
        done(std::move(copy));
      });
      return;
    }
    const uint64_t id = next_stream_++;
    std::vector<NodeId> route = net_->graph().ShortestPath(src, dst);
    TOPOFAQ_CHECK_MSG(!route.empty(), "no route between stream endpoints");
    routes_[id] = std::move(route);
    sources_.emplace(id, SourceState{&rel, bits_per_attr, 0, 0, false});
    sinks_.emplace(id, SinkState{RelationBuilder<S>(rel.schema()),
                                 std::move(done),
                                 {},
                                 {}});
    Pump(src);
  }

  int64_t pages_shipped() const { return ledger_.total_pages(); }
  int64_t max_in_flight_pages() const { return ledger_.peak_pages(); }
  const InFlightLedger& ledger() const { return ledger_; }

  /// Actual payload bits shipped (annotations + column chunks as encoded,
  /// dictionaries included; framing/credits excluded) — what the packets'
  /// wire bits charge.
  int64_t payload_bits_encoded() const { return payload_bits_encoded_; }
  /// The same payload priced by the plain r·log2(D) cost model. The ratio
  /// encoded/plain is the wire compression the column encodings bought;
  /// the two are equal when every shipped column was plain.
  int64_t payload_bits_plain() const { return payload_bits_plain_; }

 private:
  struct SourceState {
    const Relation<S>* rel;
    int bits_per_attr;
    size_t next_row;
    int64_t seq;
    bool all_sent;  // the `last` page has been materialized
  };
  struct SinkState {
    RelationBuilder<S> builder;
    Completion done;
    /// Per-column dictionaries cached from the stream's first page; later
    /// chunks of a dict column decode against these.
    std::vector<std::vector<Value>> dicts;
    /// Decoded-chunk scratch reused across pages of this stream.
    std::vector<std::vector<Value>> scratch;
  };

  /// Materializes and launches pages for every stream sourced at `src`, in
  /// stream-id order, until the node's budget is exhausted or nothing is
  /// left to send.
  void Pump(NodeId src) {
    for (auto& [id, st] : sources_) {
      if (routes_[id].front() != src || st.all_sent) continue;
      while (!st.all_sent &&
             ledger_.InFlight(src) < opts_.node_page_budget) {
        const size_t n = st.rel->size();
        const size_t begin = st.next_row;
        const size_t end = std::min(n, begin + opts_.page_rows);
        const int64_t rows = static_cast<int64_t>(end - begin);
        auto page = std::make_shared<RelationPage<S>>();
        page->cols.reserve(st.rel->arity());
        // Payload accounting: encoded columns cost their true packed bits
        // (plus the dictionary, once per stream); plain columns keep the
        // r·log2(D) cost model, so a fully plain relation's wire bits are
        // unchanged from the pre-encoding transport.
        int64_t payload = rows * S::kValueBits;
        for (size_t j = 0; j < st.rel->arity(); ++j) {
          PageCol pc;
          if (const EncodedColumn* e = st.rel->encoded_col(j)) {
            const bool ship_dict =
                st.seq == 0 && e->encoding == ColumnEncoding::kDict;
            pc.encoding = e->encoding;
            pc.enc = EncodedColumn::Slice(*e, begin, end, ship_dict);
            payload += rows * e->width;
            if (ship_dict) payload += static_cast<int64_t>(e->DictBits());
          } else {
            ColumnView c = st.rel->col(j, begin, end);
            pc.plain.assign(c.begin(), c.end());
            payload += rows * st.bits_per_attr;
          }
          page->cols.push_back(std::move(pc));
        }
        const auto& an = st.rel->annots();
        page->annots.assign(an.begin() + begin, an.begin() + end);
        page->last = end == n;
        st.next_row = end;
        st.all_sent = page->last;
        payload_bits_encoded_ += payload;
        payload_bits_plain_ +=
            st.rel->EncodedBitsRange(begin, end, st.bits_per_attr);
        Packet p;
        p.src = src;
        p.dst = routes_[id].back();
        p.bits = opts_.page_header_bits + payload;
        p.stream = id;
        p.seq = st.seq++;
        p.hop = 0;
        p.payload = std::move(page);
        ledger_.Charge(src);
        net_->Send(src, routes_[id][1], std::move(p));
      }
    }
  }

  void OnPacket(NodeId at, Packet p) {
    const std::vector<NodeId>& route = routes_.at(p.stream);
    if (p.control) {
      // Credit flowing back toward the source: hop index decreases.
      p.hop -= 1;
      TOPOFAQ_DCHECK(route[p.hop] == at);
      if (p.hop > 0) {
        net_->Send(at, route[p.hop - 1], std::move(p));
        return;
      }
      ledger_.Release(at);
      Pump(at);
      return;
    }
    p.hop += 1;
    TOPOFAQ_DCHECK(route[p.hop] == at);
    if (at != p.dst) {  // relay: store-and-forward toward the sink
      net_->Send(at, route[p.hop + 1], std::move(p));
      return;
    }
    Consume(at, std::move(p));
  }

  /// Final-hop delivery: fold the page into the sink builder, free it, and
  /// return the budget slot to the source as a credit packet.
  void Consume(NodeId at, Packet p) {
    auto it = sinks_.find(p.stream);
    TOPOFAQ_CHECK_MSG(it != sinks_.end(), "page for an unknown stream");
    SinkState& sink = it->second;
    auto* page = static_cast<RelationPage<S>*>(p.payload.get());
    // Decode the chunks here — the RelationBuilder emission point, the one
    // place packed codes turn back into values. A first-page dictionary is
    // captured into the per-stream cache; FOR chunks are self-contained.
    const size_t rows = page->rows();
    if (sink.dicts.size() < page->cols.size())
      sink.dicts.resize(page->cols.size());
    std::vector<std::vector<Value>>& cols = sink.scratch;
    cols.resize(page->cols.size());
    for (size_t j = 0; j < page->cols.size(); ++j) {
      PageCol& pc = page->cols[j];
      if (pc.encoding == ColumnEncoding::kPlain) {
        cols[j] = std::move(pc.plain);
        continue;
      }
      cols[j].resize(rows);
      if (pc.encoding == ColumnEncoding::kFor) {
        pc.enc.DecodeInto(0, rows, cols[j].data());
        continue;
      }
      if (!pc.enc.dict.empty()) sink.dicts[j] = std::move(pc.enc.dict);
      const std::vector<Value>& dict = sink.dicts[j];
      const uint64_t m = pc.enc.mask();
      for (size_t i = 0; i < rows; ++i)
        cols[j][i] = dict[UnpackAt(pc.enc.words.data(), i, pc.enc.width, m)];
    }
    // Pages are contiguous sorted column chunks already — splice them in
    // bulk (one boundary compare + arity+1 range inserts) instead of
    // regathering row by row. Build() re-runs the encoding policy, so a
    // compressed source arrives compressed.
    sink.builder.AppendChunk(
        cols, std::span<const typename S::Value>(page->annots));
    const bool last = page->last;
    p.payload.reset();  // the page is consumed; only the credit remains

    const std::vector<NodeId>& route = routes_.at(p.stream);
    Packet credit;
    credit.src = at;
    credit.dst = route.front();
    credit.bits = opts_.credit_bits;
    credit.stream = p.stream;
    credit.seq = p.seq;
    credit.hop = p.hop;
    credit.control = true;
    net_->Send(at, route[p.hop - 1], std::move(credit));

    if (last) {
      Relation<S> out = sink.builder.Build();
      Completion done = std::move(sink.done);
      sinks_.erase(it);
      sources_.erase(p.stream);
      // routes_ stays: in-flight credits of this stream still consult it.
      done(std::move(out));
    }
  }

  AsyncNetwork* net_;
  StreamOptions opts_;
  InFlightLedger ledger_;
  uint64_t next_stream_ = 0;
  int64_t payload_bits_encoded_ = 0;
  int64_t payload_bits_plain_ = 0;
  // Ordered maps: Pump walks streams in id order, so scheduling is
  // deterministic and independent of map iteration quirks.
  std::map<uint64_t, SourceState> sources_;
  std::map<uint64_t, SinkState> sinks_;
  std::map<uint64_t, std::vector<NodeId>> routes_;
};

}  // namespace topofaq

#endif  // TOPOFAQ_NETWORK_STREAM_H_
