// Discrete-event asynchronous network simulator — the second execution mode
// of Model 2.1, alongside the synchronous round ledger (simulator.h).
//
// Where SyncNetwork accounts whole-relation reservations round by round,
// AsyncNetwork models each channel as a FIFO link with a latency and a
// bandwidth: a packet of b bits sent over an edge occupies that direction of
// the link for b/bandwidth simulated time units (serialization), then lands
// at the far endpoint one latency later. Packets queued behind it start
// serializing when it finishes — store-and-forward per packet, pipelined
// across packets and across hops. Footnote 6 of the paper notes the bounds
// generalize to any per-edge budget B; mapping one synchronous round's
// `capacity_bits` to one time unit of bandwidth makes async makespans
// directly comparable to the ledger's round counts.
//
// The simulator is a single event heap: channel deliveries and node-local
// task callbacks are both events, ordered by (time, insertion sequence), so
// a run is fully deterministic — no wall clock, no randomness, no thread
// timing. Handlers and scheduled tasks may send further packets and schedule
// further tasks; Run() drains the heap and returns the makespan (the time of
// the last event). Exact bit accounting (total_bits, per-edge-direction busy
// time, EdgeUtilization) makes the *actual* transferred bytes of a protocol
// observable against its worst-case budget.
#ifndef TOPOFAQ_NETWORK_ASYNC_H_
#define TOPOFAQ_NETWORK_ASYNC_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "graphalg/graph.h"
#include "obs/trace.h"

namespace topofaq {

/// Simulated time. Abstract units; protocol adapters map one synchronous
/// round to one unit so makespan and rounds share a scale.
using SimTime = double;

/// Channel model of one edge (both directions): time for the last bit to
/// cross after serialization finishes, and bits serialized per time unit.
struct LinkParams {
  SimTime latency = 1.0;
  double bandwidth_bits = 1.0;
};

/// One message in flight. `payload` is opaque to the network — the streaming
/// transport (stream.h) stores typed relation pages in it; only `bits` is
/// charged against the channel.
struct Packet {
  NodeId src = -1;  ///< originating endpoint (not the current hop)
  NodeId dst = -1;  ///< final destination
  int64_t bits = 0;
  uint64_t stream = 0;  ///< stream id (transport-level demultiplexing)
  int64_t seq = 0;      ///< page sequence number within the stream
  int hop = 0;          ///< index of the current node on the stream's route
  bool control = false; ///< true for credit/ack packets
  std::shared_ptr<void> payload;
};

class AsyncNetwork {
 public:
  using Handler = std::function<void(Packet)>;

  /// Every edge starts with `link`; override per edge with SetLink.
  AsyncNetwork(Graph g, LinkParams link);

  const Graph& graph() const { return g_; }
  void SetLink(int edge, LinkParams p);
  const LinkParams& link(int edge) const { return links_[edge]; }

  /// Installs the arrival callback for packets whose next hop is `node`.
  void SetHandler(NodeId node, Handler h);

  /// Current simulated time (the timestamp of the event being processed).
  SimTime now() const { return now_; }

  /// Enqueues `p` on the channel from `from` to the adjacent node `to`:
  /// serialization starts when the channel's earlier traffic (same
  /// direction) has finished, and `to`'s handler fires one latency after the
  /// last bit is serialized. Direction queues are independent (full duplex).
  void Send(NodeId from, NodeId to, Packet p);

  /// Schedules `fn` to run `delay` time units from now() — node-local work
  /// (compute tasks, stream pumps). A zero delay still goes through the heap
  /// behind events already scheduled for this instant.
  void ScheduleAfter(SimTime delay, std::function<void()> fn);

  /// Drains the event heap; returns the makespan (time of the last event; 0
  /// if nothing was ever scheduled). May be called once per simulation.
  SimTime Run();

  SimTime makespan() const { return makespan_; }
  /// Total payload bits ever serialized onto any channel.
  int64_t total_bits() const { return total_bits_; }
  int64_t packets_sent() const { return packets_; }

  /// Serialization time spent on (edge, direction) so far.
  SimTime BusyTime(int edge, bool forward) const {
    return busy_time_[edge][forward ? 0 : 1];
  }

  /// Per-edge utilization after Run(): serialization time summed over both
  /// directions, divided by 2·makespan (1.0 = both directions saturated for
  /// the whole run). Empty-makespan runs report all zeros.
  std::vector<double> EdgeUtilization() const;

  /// Installs (or clears) a span sink. Every Send then records a simulated-
  /// domain span on a per-(edge, direction) track — ts at serialization
  /// start, duration exactly the serialization time (such spans never
  /// overlap on their track by busy_until_ construction; the trailing
  /// latency is deliberately not part of the span, since deliveries pipeline
  /// behind the next packet's serialization). Protocol adapters layer node
  /// compute spans on top via trace(); null (the default) costs one branch
  /// per Send. Borrowed: the session must outlive the simulation.
  void set_trace(obs::TraceSession* t);
  obs::TraceSession* trace() const { return trace_; }

 private:
  struct Event {
    SimTime time;
    uint64_t id;  // insertion sequence: FIFO among same-time events
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  Graph g_;
  std::vector<LinkParams> links_;
  std::vector<std::array<SimTime, 2>> busy_until_;  // per edge, per direction
  std::vector<std::array<SimTime, 2>> busy_time_;
  std::vector<Handler> handlers_;
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
  uint64_t next_event_id_ = 0;
  SimTime now_ = 0;
  SimTime makespan_ = 0;
  int64_t total_bits_ = 0;
  int64_t packets_ = 0;
  obs::TraceSession* trace_ = nullptr;
  /// Track id + 1 per (edge, direction); 0 = not yet registered (tracks are
  /// registered lazily so idle links never clutter the export).
  std::vector<std::array<uint32_t, 2>> xmit_tracks_;
};

}  // namespace topofaq

#endif  // TOPOFAQ_NETWORK_ASYNC_H_
