// The network topology G = (V, E): a simple undirected graph. Nodes are
// players/routers; each edge is a private point-to-point channel
// (Model 2.1).
#ifndef TOPOFAQ_GRAPHALG_GRAPH_H_
#define TOPOFAQ_GRAPHALG_GRAPH_H_

#include <string>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace topofaq {

/// Simple undirected graph with stable edge ids.
class Graph {
 public:
  Graph() : n_(0) {}
  explicit Graph(int n) : n_(n), adj_(n) { TOPOFAQ_CHECK(n >= 0); }

  /// Adds edge {u, v}; returns its id. Parallel edges and self-loops are
  /// rejected.
  int AddEdge(NodeId u, NodeId v);

  int num_nodes() const { return n_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  std::pair<NodeId, NodeId> edge(int e) const { return edges_[e]; }

  /// Neighbors of v as (neighbor, edge id) pairs.
  const std::vector<std::pair<NodeId, int>>& Neighbors(NodeId v) const {
    return adj_[v];
  }
  int DegreeOf(NodeId v) const { return static_cast<int>(adj_[v].size()); }

  bool HasEdge(NodeId u, NodeId v) const;
  /// Edge id of {u, v}, or -1.
  int EdgeBetween(NodeId u, NodeId v) const;
  /// The endpoint of edge e that is not u.
  NodeId OtherEnd(int e, NodeId u) const;

  /// BFS hop distances from src; -1 for unreachable. `edge_alive` (if
  /// non-null, indexed by edge id) restricts traversal to alive edges.
  std::vector<int> BfsDistances(NodeId src,
                                const std::vector<bool>* edge_alive = nullptr) const;

  /// Shortest path (list of node ids, src..dst inclusive); empty if
  /// unreachable or src == dst.
  std::vector<NodeId> ShortestPath(NodeId src, NodeId dst,
                                   const std::vector<bool>* edge_alive = nullptr) const;

  bool IsConnected() const;
  /// Largest pairwise distance; -1 if disconnected.
  int Diameter() const;
  /// Largest pairwise distance among nodes in K.
  int DiameterAmong(const std::vector<NodeId>& k) const;

  std::string DebugString() const;

 private:
  int n_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<std::vector<std::pair<NodeId, int>>> adj_;
};

}  // namespace topofaq

#endif  // TOPOFAQ_GRAPHALG_GRAPH_H_
