// Network-topology generators: the paper's G1 (line) and G2 (clique) plus
// the standard families used in the benchmarks, the MPC comparison topologies
// of Appendix A, and random connected graphs.
#ifndef TOPOFAQ_GRAPHALG_TOPOLOGIES_H_
#define TOPOFAQ_GRAPHALG_TOPOLOGIES_H_

#include "graphalg/graph.h"
#include "util/rng.h"

namespace topofaq {

/// Path 0-1-...-(n-1). G1 of Figure 1 is LineTopology(4).
Graph LineTopology(int n);

/// Complete graph. G2 of Figure 1 is CliqueTopology(4).
Graph CliqueTopology(int n);

/// Node 0 is the hub; 1..n-1 are spokes.
Graph StarTopology(int n);

/// Cycle 0-1-...-(n-1)-0.
Graph RingTopology(int n);

/// rows x cols grid, node id = r*cols + c.
Graph GridTopology(int rows, int cols);

/// Complete `branching`-ary tree of the given depth (depth 0 = single root).
Graph BalancedTreeTopology(int branching, int depth);

/// Random tree plus `extra_edges` random chords: always connected.
Graph RandomConnectedTopology(int n, int extra_edges, Rng* rng);

/// Two cliques of sizes a and b joined by a single bridge edge — MinCut = 1
/// no matter how well-connected the sides are.
Graph DumbbellTopology(int a, int b);

/// MPC(0) topology G' of Appendix A.1: k player nodes (ids 0..k-1, no edges
/// among them) each connected to every node of a p-clique (ids k..k+p-1).
Graph MpcZeroTopology(int k, int p);

}  // namespace topofaq

#endif  // TOPOFAQ_GRAPHALG_TOPOLOGIES_H_
