// τ_MCF(G, K, N') (Definition 3.12): rounds needed to route N'·log2(N') bits
// from all players in K to one designated player, at log2(N') bits per edge
// per round — i.e. N' unit "packets" with one packet per edge per round.
// The flow bound below (packets / maxflow + eccentricity) is the planning
// estimate; network/primitives.h provides the exact store-and-forward
// simulation used by the protocols.
#ifndef TOPOFAQ_GRAPHALG_ROUTING_H_
#define TOPOFAQ_GRAPHALG_ROUTING_H_

#include <vector>

#include "graphalg/graph.h"

namespace topofaq {

struct GatherPlan {
  NodeId target = -1;       ///< best sink among K
  int64_t flow = 0;         ///< max packets absorbed per round at the target
  int eccentricity = 0;     ///< max distance from K to the target
  int64_t rounds = 0;       ///< ceil(packets/flow) + eccentricity
};

/// Flow-based estimate of τ_MCF: tries every player in K as the sink and
/// keeps the cheapest.
GatherPlan PlanGather(const Graph& g, const std::vector<NodeId>& k,
                      int64_t packets);

/// Same, with a fixed sink.
GatherPlan PlanGatherTo(const Graph& g, const std::vector<NodeId>& k,
                        NodeId target, int64_t packets);

}  // namespace topofaq

#endif  // TOPOFAQ_GRAPHALG_ROUTING_H_
