#include "graphalg/steiner.h"

#include "util/bits.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>

namespace topofaq {
namespace {

/// Terminal diameter of a tree given as an edge mask.
int TerminalDiameter(const Graph& g, const std::vector<NodeId>& k,
                     const std::vector<bool>& tree_edges) {
  int best = 0;
  for (NodeId v : k) {
    auto d = g.BfsDistances(v, &tree_edges);
    for (NodeId w : k) {
      if (d[w] < 0) return -1;  // not spanning
      best = std::max(best, d[w]);
    }
  }
  return best;
}

/// One randomized attempt: connect terminals in random order via shortest
/// paths in the residual graph. Returns edge ids or empty on failure.
std::vector<int> TryBuildTree(const Graph& g, std::vector<NodeId> terminals,
                              const std::vector<bool>& residual, int max_diameter,
                              Rng* rng) {
  rng->Shuffle(&terminals);
  std::vector<bool> in_tree_node(g.num_nodes(), false);
  std::vector<bool> tree_edge(g.num_edges(), false);
  std::vector<int> edges;
  in_tree_node[terminals[0]] = true;

  for (size_t i = 1; i < terminals.size(); ++i) {
    const NodeId t = terminals[i];
    if (in_tree_node[t]) continue;
    // BFS from t through residual edges until any tree node is reached.
    std::vector<int> parent_edge(g.num_nodes(), -1);
    std::vector<bool> seen(g.num_nodes(), false);
    std::deque<NodeId> q{t};
    seen[t] = true;
    NodeId hit = -1;
    while (!q.empty() && hit < 0) {
      NodeId v = q.front();
      q.pop_front();
      // Randomize neighbor visiting order for diversity across restarts.
      std::vector<std::pair<NodeId, int>> nbrs = g.Neighbors(v);
      rng->Shuffle(&nbrs);
      for (const auto& [w, e] : nbrs) {
        if (!residual[e] || seen[w]) continue;
        seen[w] = true;
        parent_edge[w] = e;
        if (in_tree_node[w]) {
          hit = w;
          break;
        }
        q.push_back(w);
      }
    }
    if (hit < 0) return {};
    // Walk back from the hit to t, committing path edges.
    for (NodeId v = hit; v != t;) {
      const int e = parent_edge[v];
      tree_edge[e] = true;
      edges.push_back(e);
      in_tree_node[v] = true;
      v = g.OtherEnd(e, v);
    }
    in_tree_node[t] = true;
  }
  const int diam = TerminalDiameter(g, terminals, tree_edge);
  if (diam < 0 || diam > max_diameter) return {};
  return edges;
}

}  // namespace

std::vector<SteinerTree> PackSteinerTrees(const Graph& g,
                                          const std::vector<NodeId>& k,
                                          int max_diameter, uint64_t seed,
                                          int restarts) {
  TOPOFAQ_CHECK(!k.empty());
  Rng rng(seed);
  std::vector<bool> residual(g.num_edges(), true);
  std::vector<SteinerTree> trees;
  if (k.size() == 1) return trees;
  while (true) {
    std::vector<int> best;
    for (int attempt = 0; attempt < restarts; ++attempt) {
      std::vector<int> cand = TryBuildTree(g, k, residual, max_diameter, &rng);
      if (cand.empty()) continue;
      if (best.empty() || cand.size() < best.size()) best = std::move(cand);
    }
    if (best.empty()) break;
    std::vector<bool> mask(g.num_edges(), false);
    for (int e : best) {
      residual[e] = false;
      mask[e] = true;
    }
    SteinerTree tree;
    tree.edges = std::move(best);
    tree.terminal_diameter = TerminalDiameter(g, k, mask);
    trees.push_back(std::move(tree));
  }
  return trees;
}

IntersectionPlan PlanIntersection(const Graph& g, const std::vector<NodeId>& k,
                                  int64_t n_items, uint64_t seed) {
  IntersectionPlan best;
  best.predicted_rounds = std::numeric_limits<int64_t>::max();
  if (k.size() <= 1) {
    best.delta = 0;
    best.predicted_rounds = 0;
    return best;
  }
  const int diam_lo = g.DiameterAmong(k);
  TOPOFAQ_CHECK_MSG(diam_lo >= 0, "terminals not connected");
  for (int delta = std::max(1, diam_lo); delta <= g.num_nodes(); ++delta) {
    if (delta >= best.predicted_rounds) break;  // rounds >= Δ: can't improve
    auto trees = PackSteinerTrees(g, k, delta, seed + delta);
    if (trees.empty()) continue;
    const int64_t rounds =
        CeilDiv(n_items, static_cast<int64_t>(trees.size())) + delta;
    if (rounds < best.predicted_rounds) {
      best.predicted_rounds = rounds;
      best.delta = delta;
      best.trees = std::move(trees);
    }
  }
  TOPOFAQ_CHECK_MSG(!best.trees.empty(), "no Steiner tree found");
  return best;
}

bool ValidatePacking(const Graph& g, const std::vector<NodeId>& k,
                     int max_diameter, const std::vector<SteinerTree>& trees) {
  std::set<int> used;
  for (const auto& t : trees) {
    std::vector<bool> mask(g.num_edges(), false);
    for (int e : t.edges) {
      if (e < 0 || e >= g.num_edges()) return false;
      if (used.count(e)) return false;  // edge-disjointness
      used.insert(e);
      mask[e] = true;
    }
    const int diam = TerminalDiameter(g, k, mask);
    if (diam < 0 || diam > max_diameter) return false;
  }
  return true;
}

}  // namespace topofaq
