#include "graphalg/routing.h"

#include <algorithm>
#include <limits>

#include "graphalg/maxflow.h"
#include "util/bits.h"

namespace topofaq {

GatherPlan PlanGatherTo(const Graph& g, const std::vector<NodeId>& k,
                        NodeId target, int64_t packets) {
  GatherPlan plan;
  plan.target = target;
  std::vector<NodeId> sources;
  for (NodeId v : k)
    if (v != target) sources.push_back(v);
  if (sources.empty()) {
    plan.flow = 0;
    plan.rounds = 0;
    return plan;
  }
  plan.flow = MaxFlowFromSet(g, sources, target);
  TOPOFAQ_CHECK_MSG(plan.flow > 0, "players disconnected from target");
  auto dist = g.BfsDistances(target);
  for (NodeId v : k) plan.eccentricity = std::max(plan.eccentricity, dist[v]);
  plan.rounds = CeilDiv(packets, plan.flow) + plan.eccentricity;
  return plan;
}

GatherPlan PlanGather(const Graph& g, const std::vector<NodeId>& k,
                      int64_t packets) {
  TOPOFAQ_CHECK(!k.empty());
  GatherPlan best;
  best.rounds = std::numeric_limits<int64_t>::max();
  for (NodeId t : k) {
    GatherPlan cand = PlanGatherTo(g, k, t, packets);
    if (cand.rounds < best.rounds) best = cand;
  }
  return best;
}

}  // namespace topofaq
