// Dinic max-flow on undirected graphs, plus the Steiner min-cut
// MinCut(G, K) (Definition 3.6): the smallest edge cut separating the
// terminal set K into two non-empty parts.
#ifndef TOPOFAQ_GRAPHALG_MAXFLOW_H_
#define TOPOFAQ_GRAPHALG_MAXFLOW_H_

#include <vector>

#include "graphalg/graph.h"

namespace topofaq {

/// Max s-t flow value with unit (or integer `capacity`) capacity per
/// undirected edge.
int64_t MaxFlow(const Graph& g, NodeId s, NodeId t, int64_t capacity = 1);

/// Max flow from a *set* of sources to t (adds a virtual super-source).
int64_t MaxFlowFromSet(const Graph& g, const std::vector<NodeId>& sources,
                       NodeId t, int64_t capacity = 1);

struct MinCutResult {
  int64_t value = 0;
  /// Side A of the optimal cut (contains at least one terminal); B = V \ A.
  std::vector<NodeId> side_a;
  /// Edge ids crossing the cut.
  std::vector<int> cut_edges;
};

/// MinCut(G, K): minimum edge cut separating the terminals K (|K| >= 2).
/// Classic reduction: fix k0 ∈ K and take the best max-flow min-cut
/// against every other terminal.
MinCutResult MinCutBetween(const Graph& g, const std::vector<NodeId>& k);

}  // namespace topofaq

#endif  // TOPOFAQ_GRAPHALG_MAXFLOW_H_
