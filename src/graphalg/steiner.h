// Edge-disjoint Steiner-tree packing ST(G, K, Δ) (Definitions 3.8/3.9):
// the maximum number of edge-disjoint trees, each spanning all terminals K
// with pairwise terminal distance (within the tree) at most Δ. Lau's theorem
// (Theorem 3.10) guarantees ST(G, K, |V|) = Ω(MinCut(G, K)); we implement a
// randomized greedy packer (sequential terminal connection with restarts)
// that achieves the constant-factor regime needed by Theorem 3.11 and pick
// the Δ minimizing N/ST(G,K,Δ) + Δ.
#ifndef TOPOFAQ_GRAPHALG_STEINER_H_
#define TOPOFAQ_GRAPHALG_STEINER_H_

#include <vector>

#include "graphalg/graph.h"
#include "util/rng.h"

namespace topofaq {

/// One packed Steiner tree.
struct SteinerTree {
  std::vector<int> edges;  ///< edge ids of G
  /// Terminal diameter within the tree (max pairwise hop distance among K).
  int terminal_diameter = 0;
};

/// Packs edge-disjoint Steiner trees for terminals `k` with terminal
/// diameter <= `max_diameter`. Deterministic given `seed`. `restarts`
/// bounds the random attempts per additional tree.
std::vector<SteinerTree> PackSteinerTrees(const Graph& g,
                                          const std::vector<NodeId>& k,
                                          int max_diameter, uint64_t seed,
                                          int restarts = 24);

/// The Theorem 3.11 optimizer: sweeps Δ ∈ [1, |V|] and returns the packing
/// minimizing rounds(Δ) = ceil(n_items / ST(G,K,Δ)) + Δ.
struct IntersectionPlan {
  int delta = 0;                   ///< chosen Δ
  std::vector<SteinerTree> trees;  ///< the packing for that Δ
  int64_t predicted_rounds = 0;    ///< ceil(n_items/|trees|) + Δ
};
IntersectionPlan PlanIntersection(const Graph& g, const std::vector<NodeId>& k,
                                  int64_t n_items, uint64_t seed = 0x5eed);

/// Validates edge-disjointness, terminal spanning, connectivity and the
/// diameter bound of a packing; used by tests.
bool ValidatePacking(const Graph& g, const std::vector<NodeId>& k,
                     int max_diameter, const std::vector<SteinerTree>& trees);

}  // namespace topofaq

#endif  // TOPOFAQ_GRAPHALG_STEINER_H_
