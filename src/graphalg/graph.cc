#include "graphalg/graph.h"

#include <algorithm>
#include <deque>

namespace topofaq {

int Graph::AddEdge(NodeId u, NodeId v) {
  TOPOFAQ_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  TOPOFAQ_CHECK_MSG(u != v, "self-loop");
  TOPOFAQ_CHECK_MSG(!HasEdge(u, v), "parallel edge");
  const int id = num_edges();
  edges_.emplace_back(u, v);
  adj_[u].emplace_back(v, id);
  adj_[v].emplace_back(u, id);
  return id;
}

bool Graph::HasEdge(NodeId u, NodeId v) const { return EdgeBetween(u, v) >= 0; }

int Graph::EdgeBetween(NodeId u, NodeId v) const {
  for (const auto& [w, e] : adj_[u])
    if (w == v) return e;
  return -1;
}

NodeId Graph::OtherEnd(int e, NodeId u) const {
  const auto& [a, b] = edges_[e];
  TOPOFAQ_CHECK(u == a || u == b);
  return u == a ? b : a;
}

std::vector<int> Graph::BfsDistances(NodeId src,
                                     const std::vector<bool>* edge_alive) const {
  std::vector<int> dist(n_, -1);
  std::deque<NodeId> q{src};
  dist[src] = 0;
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop_front();
    for (const auto& [w, e] : adj_[v]) {
      if (edge_alive != nullptr && !(*edge_alive)[e]) continue;
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        q.push_back(w);
      }
    }
  }
  return dist;
}

std::vector<NodeId> Graph::ShortestPath(NodeId src, NodeId dst,
                                        const std::vector<bool>* edge_alive) const {
  if (src == dst) return {src};
  std::vector<int> parent(n_, -1);
  std::deque<NodeId> q{src};
  std::vector<bool> seen(n_, false);
  seen[src] = true;
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop_front();
    for (const auto& [w, e] : adj_[v]) {
      if (edge_alive != nullptr && !(*edge_alive)[e]) continue;
      if (!seen[w]) {
        seen[w] = true;
        parent[w] = v;
        if (w == dst) {
          std::vector<NodeId> path{dst};
          for (NodeId x = dst; x != src;) {
            x = parent[x];
            path.push_back(x);
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        q.push_back(w);
      }
    }
  }
  return {};
}

bool Graph::IsConnected() const {
  if (n_ == 0) return true;
  auto d = BfsDistances(0);
  return std::all_of(d.begin(), d.end(), [](int x) { return x >= 0; });
}

int Graph::Diameter() const {
  int best = 0;
  for (NodeId v = 0; v < n_; ++v) {
    auto d = BfsDistances(v);
    for (int x : d) {
      if (x < 0) return -1;
      best = std::max(best, x);
    }
  }
  return best;
}

int Graph::DiameterAmong(const std::vector<NodeId>& k) const {
  int best = 0;
  for (NodeId v : k) {
    auto d = BfsDistances(v);
    for (NodeId w : k) {
      if (d[w] < 0) return -1;
      best = std::max(best, d[w]);
    }
  }
  return best;
}

std::string Graph::DebugString() const {
  std::string s = "G(n=" + std::to_string(n_) + "; ";
  for (int e = 0; e < num_edges(); ++e) {
    if (e) s += ", ";
    s += std::to_string(edges_[e].first) + "-" + std::to_string(edges_[e].second);
  }
  return s + ")";
}

}  // namespace topofaq
