#include "graphalg/topologies.h"

namespace topofaq {

Graph LineTopology(int n) {
  TOPOFAQ_CHECK(n >= 1);
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Graph CliqueTopology(int n) {
  TOPOFAQ_CHECK(n >= 1);
  Graph g(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  return g;
}

Graph StarTopology(int n) {
  TOPOFAQ_CHECK(n >= 2);
  Graph g(n);
  for (int i = 1; i < n; ++i) g.AddEdge(0, i);
  return g;
}

Graph RingTopology(int n) {
  TOPOFAQ_CHECK(n >= 3);
  Graph g(n);
  for (int i = 0; i < n; ++i) g.AddEdge(i, (i + 1) % n);
  return g;
}

Graph GridTopology(int rows, int cols) {
  TOPOFAQ_CHECK(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(r * cols + c, r * cols + c + 1);
      if (r + 1 < rows) g.AddEdge(r * cols + c, (r + 1) * cols + c);
    }
  return g;
}

Graph BalancedTreeTopology(int branching, int depth) {
  TOPOFAQ_CHECK(branching >= 1 && depth >= 0);
  int n = 1, layer = 1;
  for (int d = 0; d < depth; ++d) {
    layer *= branching;
    n += layer;
  }
  Graph g(n);
  // Children of node v in BFS order: positions are assigned level by level.
  int next = 1;
  for (int v = 0; v < n && next < n; ++v)
    for (int b = 0; b < branching && next < n; ++b) g.AddEdge(v, next++);
  return g;
}

Graph RandomConnectedTopology(int n, int extra_edges, Rng* rng) {
  TOPOFAQ_CHECK(n >= 2);
  Graph g(n);
  // Random recursive tree: node i attaches to a uniform earlier node.
  for (int i = 1; i < n; ++i)
    g.AddEdge(static_cast<NodeId>(rng->NextU64(i)), i);
  int added = 0, guard = 0;
  while (added < extra_edges && guard < 100 * extra_edges + 100) {
    ++guard;
    NodeId u = static_cast<NodeId>(rng->NextU64(n));
    NodeId v = static_cast<NodeId>(rng->NextU64(n));
    if (u == v || g.HasEdge(u, v)) continue;
    g.AddEdge(u, v);
    ++added;
  }
  return g;
}

Graph DumbbellTopology(int a, int b) {
  TOPOFAQ_CHECK(a >= 1 && b >= 1);
  Graph g(a + b);
  for (int i = 0; i < a; ++i)
    for (int j = i + 1; j < a; ++j) g.AddEdge(i, j);
  for (int i = 0; i < b; ++i)
    for (int j = i + 1; j < b; ++j) g.AddEdge(a + i, a + j);
  g.AddEdge(a - 1, a);  // the bridge
  return g;
}

Graph MpcZeroTopology(int k, int p) {
  TOPOFAQ_CHECK(k >= 1 && p >= 1);
  Graph g(k + p);
  for (int i = 0; i < p; ++i)
    for (int j = i + 1; j < p; ++j) g.AddEdge(k + i, k + j);
  for (int player = 0; player < k; ++player)
    for (int i = 0; i < p; ++i) g.AddEdge(player, k + i);
  return g;
}

}  // namespace topofaq
