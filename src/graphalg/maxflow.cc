#include "graphalg/maxflow.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace topofaq {
namespace {

/// Standard Dinic implementation over an explicit arc list.
class Dinic {
 public:
  explicit Dinic(int n) : head_(n, -1), level_(n), it_(n) {}

  void AddEdge(int u, int v, int64_t cap) {
    arcs_.push_back({v, head_[u], cap});
    head_[u] = static_cast<int>(arcs_.size()) - 1;
    arcs_.push_back({u, head_[v], cap});  // undirected: same capacity back
    head_[v] = static_cast<int>(arcs_.size()) - 1;
  }

  int64_t Run(int s, int t) {
    int64_t flow = 0;
    while (Bfs(s, t)) {
      it_ = head_;
      int64_t f;
      while ((f = Dfs(s, t, std::numeric_limits<int64_t>::max())) > 0) flow += f;
    }
    return flow;
  }

  /// Nodes reachable from s in the final residual graph (the cut side).
  std::vector<bool> ReachableFrom(int s) {
    std::vector<bool> seen(head_.size(), false);
    std::deque<int> q{s};
    seen[s] = true;
    while (!q.empty()) {
      int v = q.front();
      q.pop_front();
      for (int a = head_[v]; a >= 0; a = arcs_[a].next)
        if (arcs_[a].cap > 0 && !seen[arcs_[a].to]) {
          seen[arcs_[a].to] = true;
          q.push_back(arcs_[a].to);
        }
    }
    return seen;
  }

 private:
  struct Arc {
    int to;
    int next;
    int64_t cap;
  };

  bool Bfs(int s, int t) {
    std::fill(level_.begin(), level_.end(), -1);
    std::deque<int> q{s};
    level_[s] = 0;
    while (!q.empty()) {
      int v = q.front();
      q.pop_front();
      for (int a = head_[v]; a >= 0; a = arcs_[a].next)
        if (arcs_[a].cap > 0 && level_[arcs_[a].to] < 0) {
          level_[arcs_[a].to] = level_[v] + 1;
          q.push_back(arcs_[a].to);
        }
    }
    return level_[t] >= 0;
  }

  int64_t Dfs(int v, int t, int64_t pushed) {
    if (v == t) return pushed;
    for (int& a = it_[v]; a >= 0; a = arcs_[a].next) {
      Arc& arc = arcs_[a];
      if (arc.cap <= 0 || level_[arc.to] != level_[v] + 1) continue;
      int64_t f = Dfs(arc.to, t, std::min(pushed, arc.cap));
      if (f > 0) {
        arc.cap -= f;
        arcs_[a ^ 1].cap += f;
        return f;
      }
    }
    return 0;
  }

  std::vector<int> head_, level_, it_;
  std::vector<Arc> arcs_;
};

Dinic BuildDinic(const Graph& g, int64_t capacity, int extra_nodes) {
  Dinic d(g.num_nodes() + extra_nodes);
  for (int e = 0; e < g.num_edges(); ++e) {
    auto [u, v] = g.edge(e);
    d.AddEdge(u, v, capacity);
  }
  return d;
}

}  // namespace

int64_t MaxFlow(const Graph& g, NodeId s, NodeId t, int64_t capacity) {
  TOPOFAQ_CHECK(s != t);
  Dinic d = BuildDinic(g, capacity, 0);
  return d.Run(s, t);
}

int64_t MaxFlowFromSet(const Graph& g, const std::vector<NodeId>& sources,
                       NodeId t, int64_t capacity) {
  Dinic d = BuildDinic(g, capacity, 1);
  const int super = g.num_nodes();
  const int64_t inf = std::numeric_limits<int64_t>::max() / 4;
  bool any = false;
  for (NodeId s : sources) {
    if (s == t) continue;
    d.AddEdge(super, s, inf);
    any = true;
  }
  if (!any) return 0;
  return d.Run(super, t);
}

MinCutResult MinCutBetween(const Graph& g, const std::vector<NodeId>& k) {
  TOPOFAQ_CHECK_MSG(k.size() >= 2, "need at least two terminals");
  MinCutResult best;
  best.value = std::numeric_limits<int64_t>::max();
  const NodeId k0 = k[0];
  for (size_t i = 1; i < k.size(); ++i) {
    Dinic d = BuildDinic(g, 1, 0);
    int64_t f = d.Run(k0, k[i]);
    if (f < best.value) {
      best.value = f;
      auto reach = d.ReachableFrom(k0);
      best.side_a.clear();
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        if (reach[v]) best.side_a.push_back(v);
      best.cut_edges.clear();
      for (int e = 0; e < g.num_edges(); ++e) {
        auto [u, v] = g.edge(e);
        if (reach[u] != reach[v]) best.cut_edges.push_back(e);
      }
    }
  }
  return best;
}

}  // namespace topofaq
