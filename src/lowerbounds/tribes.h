// The TRIBES function (Theorem 2.3): TRIBES_{m,N}(X̄, Ȳ) = ∧_i DISJ_N(X_i,
// Y_i), where DISJ_N(X, Y) = 1 iff X ∩ Y ≠ ∅. Jayram et al. prove the
// randomized two-party round lower bound Ω(m·N); all BCQ lower bounds in the
// paper reduce from it.
#ifndef TOPOFAQ_LOWERBOUNDS_TRIBES_H_
#define TOPOFAQ_LOWERBOUNDS_TRIBES_H_

#include <vector>

#include "util/rng.h"

namespace topofaq {

/// One TRIBES instance: m set pairs over the universe [0, n).
struct TribesInstance {
  int n = 0;
  /// pairs[i] = (S_i, T_i), each a sorted subset of [0, n).
  std::vector<std::pair<std::vector<uint64_t>, std::vector<uint64_t>>> pairs;

  int m() const { return static_cast<int>(pairs.size()); }

  /// TRIBES value: 1 iff every pair intersects.
  bool Evaluate() const;

  /// Per-pair DISJ values.
  std::vector<bool> PairIntersects() const;
};

/// Random instance: each pair intersects with probability `p_intersect`,
/// planted in the style of the hard distribution of Remark G.5 (at most one
/// common element per pair).
TribesInstance RandomTribes(int m, int n, double p_intersect, Rng* rng);

}  // namespace topofaq

#endif  // TOPOFAQ_LOWERBOUNDS_TRIBES_H_
