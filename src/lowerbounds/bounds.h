// The paper's bound formulas, evaluated on concrete (H, G, K, N):
//
//   upper  (Thm 4.1 / 5.2):  y(H)·min_Δ(N/ST(G,K,Δ) + Δ)
//                            + τ_MCF(G, K, n2(H)·d·N)
//   lower  (Thm 4.4 / 5.1):  Ω̃((y(H) + n2(H)) · N / MinCut(G, K))
//   MCM    (Prop 6.1 / Thm 6.4): Θ(k·N) on the line for k <= N
//
// These are the planning/reporting quantities the benches print next to the
// measured round counts of the executable protocols.
#ifndef TOPOFAQ_LOWERBOUNDS_BOUNDS_H_
#define TOPOFAQ_LOWERBOUNDS_BOUNDS_H_

#include <string>
#include <vector>

#include "graphalg/graph.h"
#include "hypergraph/hypergraph.h"

namespace topofaq {

struct BoundBreakdown {
  int y = 0;            ///< internal-node-width (minimized decomposition)
  int n2 = 0;           ///< |V(C(H))|
  int degeneracy = 0;   ///< d (Definition 3.3)
  int arity = 0;        ///< r
  int64_t star_term = 0;    ///< y · min_Δ(N/ST + Δ)
  int64_t core_term = 0;    ///< τ_MCF flow estimate for n2·d·N packets
  int64_t upper_total = 0;  ///< star_term + core_term
  int64_t min_cut = 0;      ///< MinCut(G, K)
  int64_t lower_bound = 0;  ///< (y + n2) · N / MinCut (constants dropped)

  double Gap() const {
    return lower_bound > 0
               ? static_cast<double>(upper_total) / static_cast<double>(lower_bound)
               : 0.0;
  }
  std::string ToString() const;
};

/// Evaluates both formulas for computing a size-N query of shape `h` on `g`
/// with players `k`.
BoundBreakdown ComputeBounds(const Hypergraph& h, const Graph& g,
                             const std::vector<NodeId>& k, int64_t n,
                             uint64_t seed = 0xb0d);

/// Section 6: round bounds for MCM on the line (capacity 1 bit).
struct McmBounds {
  int64_t sequential = 0;  ///< ~ (k+1)·N   (Prop 6.1)
  int64_t merge = 0;       ///< ~ N²·ceil(log2 k) + k (App I.1)
  int64_t trivial = 0;     ///< ~ k·N²
  int64_t lower = 0;       ///< Ω(k·N) for k <= N (Thm 6.4)
};
McmBounds ComputeMcmBounds(int k, int n);

}  // namespace topofaq

#endif  // TOPOFAQ_LOWERBOUNDS_BOUNDS_H_
