#include "lowerbounds/tribes.h"

#include <algorithm>

#include "util/check.h"

namespace topofaq {

bool TribesInstance::Evaluate() const {
  for (bool b : PairIntersects())
    if (!b) return false;
  return true;
}

std::vector<bool> TribesInstance::PairIntersects() const {
  std::vector<bool> out;
  out.reserve(pairs.size());
  for (const auto& [s, t] : pairs) {
    std::vector<uint64_t> inter;
    std::set_intersection(s.begin(), s.end(), t.begin(), t.end(),
                          std::back_inserter(inter));
    out.push_back(!inter.empty());
  }
  return out;
}

TribesInstance RandomTribes(int m, int n, double p_intersect, Rng* rng) {
  TOPOFAQ_CHECK(n >= 2);
  TribesInstance inst;
  inst.n = n;
  for (int i = 0; i < m; ++i) {
    const bool want_intersect = rng->NextBool(p_intersect);
    // Split the universe into two halves; S draws from the lower half, T
    // from the upper half, so they are disjoint by construction. If the
    // pair should intersect, plant exactly one common element.
    std::vector<uint64_t> s, t;
    const uint64_t half = static_cast<uint64_t>(n) / 2;
    for (uint64_t v : rng->Sample(half, std::max<uint64_t>(1, half / 2)))
      s.push_back(v);
    for (uint64_t v : rng->Sample(half, std::max<uint64_t>(1, half / 2)))
      t.push_back(half + v);
    if (want_intersect) {
      const uint64_t common = rng->NextU64(n);
      s.push_back(common);
      t.push_back(common);
    }
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
    inst.pairs.emplace_back(std::move(s), std::move(t));
  }
  return inst;
}

}  // namespace topofaq
