#include "lowerbounds/embeddings.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "ghd/md_ghd.h"
#include "ghd/width.h"
#include "graphalg/maxflow.h"

namespace topofaq {
namespace {

using BRel = Relation<BooleanSemiring>;

/// Relation on a 2-edge {u, v} (schema sorted) with values `vals` at
/// position of `var` and the constant 1 at the other position.
BRel ValuesTimesOne(const std::vector<VarId>& edge, VarId var,
                    const std::vector<uint64_t>& vals) {
  BRel r{Schema(edge)};
  std::vector<Value> row(edge.size(), 1);
  const int pos = Schema(edge).PositionOf(var);
  TOPOFAQ_CHECK(pos >= 0);
  for (uint64_t v : vals) {
    row[pos] = v;
    r.Add(row, 1);
  }
  r.Canonicalize();
  return r;
}

/// [0, n) at `var`'s position, 1 elsewhere.
BRel RangeTimesOne(const std::vector<VarId>& edge, VarId var, uint64_t n) {
  std::vector<uint64_t> vals(n);
  for (uint64_t i = 0; i < n; ++i) vals[i] = i;
  return ValuesTimesOne(edge, var, vals);
}

/// The all-ones singleton tuple.
BRel AllOnes(const std::vector<VarId>& edge) {
  BRel r{Schema(edge)};
  std::vector<Value> row(edge.size(), 1);
  r.Add(row, 1);
  return r;
}

}  // namespace

Result<BcqEmbedding> EmbedAtVertices(const Hypergraph& h,
                                     const std::vector<VarId>& centers,
                                     const TribesInstance& tribes) {
  if (tribes.m() > static_cast<int>(centers.size()))
    return Status::InvalidArgument("not enough centers for the TRIBES size");
  // Validate: pairwise non-adjacent (no edge contains two centers), each
  // with >= 2 incident edges.
  std::set<VarId> chosen(centers.begin(), centers.begin() + tribes.m());
  for (int e = 0; e < h.num_edges(); ++e) {
    int hits = 0;
    for (VarId v : h.edge(e))
      if (chosen.count(v)) ++hits;
    if (hits > 1)
      return Status::InvalidArgument("centers are adjacent (edge " +
                                     std::to_string(e) + ")");
  }

  BcqEmbedding out;
  out.m = tribes.m();
  std::vector<BRel> rels(h.num_edges());
  std::vector<bool> assigned(h.num_edges(), false);

  for (int i = 0; i < tribes.m(); ++i) {
    const VarId o = centers[i];
    std::vector<int> inc = h.IncidentEdges(o);
    if (inc.size() < 2)
      return Status::InvalidArgument("center of degree < 2");
    const int e_s = inc[0], e_t = inc[1];
    rels[e_s] = ValuesTimesOne(h.edge(e_s), o, tribes.pairs[i].first);
    rels[e_t] = ValuesTimesOne(h.edge(e_t), o, tribes.pairs[i].second);
    assigned[e_s] = assigned[e_t] = true;
    out.s_edges.push_back(e_s);
    out.t_edges.push_back(e_t);
    // Remaining edges at o impose no constraint on o.
    for (size_t j = 2; j < inc.size(); ++j) {
      rels[inc[j]] = RangeTimesOne(h.edge(inc[j]), o,
                                   static_cast<uint64_t>(tribes.n));
      assigned[inc[j]] = true;
    }
  }
  for (int e = 0; e < h.num_edges(); ++e)
    if (!assigned[e]) rels[e] = AllOnes(h.edge(e));

  out.query = MakeBcq(h, std::move(rels));
  return out;
}

namespace {

/// Internal (degree >= 2) vertices on the larger bipartition side of a
/// forest — the set O of Lemma 4.3.
std::vector<VarId> ForestCenters(const Hypergraph& h) {
  const int n = h.num_vertices();
  // Bipartition by BFS levels over the simple-graph adjacency.
  std::vector<std::vector<VarId>> adj(n);
  for (int e = 0; e < h.num_edges(); ++e) {
    const auto& ed = h.edge(e);
    if (ed.size() != 2) return {};
    adj[ed[0]].push_back(ed[1]);
    adj[ed[1]].push_back(ed[0]);
  }
  std::vector<int> side(n, -1);
  for (int root = 0; root < n; ++root) {
    if (side[root] >= 0 || adj[root].empty()) continue;
    side[root] = 0;
    std::vector<VarId> stack{static_cast<VarId>(root)};
    while (!stack.empty()) {
      VarId v = stack.back();
      stack.pop_back();
      for (VarId w : adj[v])
        if (side[w] < 0) {
          side[w] = 1 - side[v];
          stack.push_back(w);
        }
    }
  }
  std::vector<VarId> even, odd;
  for (int v = 0; v < n; ++v) {
    if (adj[v].size() < 2) continue;
    (side[v] == 0 ? even : odd).push_back(static_cast<VarId>(v));
  }
  return even.size() >= odd.size() ? even : odd;
}

}  // namespace

int ForestEmbeddingCapacity(const Hypergraph& h) {
  return static_cast<int>(ForestCenters(h).size());
}

Result<BcqEmbedding> EmbedTribesInForest(const Hypergraph& h,
                                         const TribesInstance& tribes) {
  if (h.MaxArity() > 2)
    return Status::InvalidArgument("forest embedding needs arity 2");
  return EmbedAtVertices(h, ForestCenters(h), tribes);
}

namespace {

std::vector<VarId> GreedyIndependentCenters(const Hypergraph& h) {
  // Greedy IS among degree->=2 vertices, lowest degree first (Turán-style).
  std::vector<VarId> cands;
  for (int v = 0; v < h.num_vertices(); ++v)
    if (h.Degree(static_cast<VarId>(v)) >= 2)
      cands.push_back(static_cast<VarId>(v));
  std::stable_sort(cands.begin(), cands.end(), [&](VarId a, VarId b) {
    return h.Degree(a) < h.Degree(b);
  });
  std::vector<VarId> chosen;
  std::set<VarId> blocked;
  for (VarId v : cands) {
    if (blocked.count(v)) continue;
    chosen.push_back(v);
    for (int e : h.IncidentEdges(v))
      for (VarId w : h.edge(e)) blocked.insert(w);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace

int IndependentSetCapacity(const Hypergraph& h) {
  return static_cast<int>(GreedyIndependentCenters(h).size());
}

Result<BcqEmbedding> EmbedTribesByIndependentSet(const Hypergraph& h,
                                                 const TribesInstance& tribes) {
  return EmbedAtVertices(h, GreedyIndependentCenters(h), tribes);
}

std::vector<std::vector<VarId>> FindDisjointCycles(const Hypergraph& h) {
  const int n = h.num_vertices();
  std::vector<std::vector<VarId>> cycles;
  std::vector<bool> gone(n, false);
  while (true) {
    // DFS for a cycle in the surviving induced subgraph.
    std::vector<std::vector<VarId>> adj(n);
    for (int e = 0; e < h.num_edges(); ++e) {
      const auto& ed = h.edge(e);
      if (ed.size() != 2 || gone[ed[0]] || gone[ed[1]]) continue;
      adj[ed[0]].push_back(ed[1]);
      adj[ed[1]].push_back(ed[0]);
    }
    std::vector<int> state(n, 0), parent(n, -1);
    std::vector<VarId> cycle;
    for (int s = 0; s < n && cycle.empty(); ++s) {
      if (gone[s] || state[s] != 0) continue;
      // Iterative DFS.
      std::vector<std::pair<VarId, size_t>> stack{{static_cast<VarId>(s), 0}};
      state[s] = 1;
      while (!stack.empty() && cycle.empty()) {
        auto& [v, idx] = stack.back();
        if (idx >= adj[v].size()) {
          state[v] = 2;
          stack.pop_back();
          continue;
        }
        VarId w = adj[v][idx++];
        if (static_cast<int>(w) == parent[v]) {
          parent[v] = -2;  // consume one parent edge (handles multi-edges)
          continue;
        }
        if (state[w] == 1) {
          // Back edge: recover cycle w .. v.
          cycle.push_back(w);
          for (int i = static_cast<int>(stack.size()) - 1;
               i >= 0 && stack[i].first != w; --i)
            cycle.push_back(stack[i].first);
          std::reverse(cycle.begin() + 1, cycle.end());
          break;
        }
        if (state[w] == 0) {
          state[w] = 1;
          parent[w] = static_cast<int>(v);
          stack.push_back({w, 0});
        }
      }
    }
    if (cycle.empty()) break;
    for (VarId v : cycle) gone[v] = true;
    cycles.push_back(std::move(cycle));
  }
  return cycles;
}

Result<BcqEmbedding> EmbedTribesOnCycles(const Hypergraph& h,
                                         const TribesInstance& tribes) {
  if (h.MaxArity() > 2)
    return Status::InvalidArgument("cycle embedding needs arity 2");
  auto cycles = FindDisjointCycles(h);
  if (tribes.m() > static_cast<int>(cycles.size()))
    return Status::InvalidArgument("not enough vertex-disjoint cycles");
  const uint64_t s =
      std::max<uint64_t>(2, static_cast<uint64_t>(std::sqrt(tribes.n)));

  BcqEmbedding out;
  out.m = tribes.m();
  std::vector<BRel> rels(h.num_edges());
  std::vector<bool> assigned(h.num_edges(), false);
  auto edge_between = [&](VarId a, VarId b) {
    for (int e = 0; e < h.num_edges(); ++e) {
      const auto& ed = h.edge(e);
      if (ed.size() == 2 && ((ed[0] == a && ed[1] == b) ||
                             (ed[0] == b && ed[1] == a)) &&
          !assigned[e])
        return e;
    }
    return -1;
  };

  for (int i = 0; i < tribes.m(); ++i) {
    const auto& cyc = cycles[i];
    TOPOFAQ_CHECK(cyc.size() >= 3 || (cyc.size() == 2));
    // Pair encoding over [s]²: value v in [s²] is the point (v/s, v%s).
    auto pair_rel = [&](int e, VarId first_attr, VarId second_attr,
                        const std::vector<uint64_t>& vals) {
      BRel r{Schema(h.edge(e))};
      const int p_first = Schema(h.edge(e)).PositionOf(first_attr);
      const int p_second = Schema(h.edge(e)).PositionOf(second_attr);
      std::vector<Value> row(2, 0);
      for (uint64_t v : vals) {
        if (v >= s * s) continue;  // truncate to the encodable universe
        row[p_first] = v / s;
        row[p_second] = v % s;
        r.Add(row, 1);
      }
      r.Canonicalize();
      return r;
    };
    const int e_s = edge_between(cyc[0], cyc[1]);
    TOPOFAQ_CHECK(e_s >= 0);
    rels[e_s] = pair_rel(e_s, cyc[0], cyc[1], tribes.pairs[i].first);
    assigned[e_s] = true;
    const int e_t = edge_between(cyc[2 % cyc.size()], cyc[1]);
    TOPOFAQ_CHECK(e_t >= 0);
    // Reversed attribute order (R_T(c3, c2), Appendix E.3).
    rels[e_t] = pair_rel(e_t, cyc[2 % cyc.size()], cyc[1],
                         tribes.pairs[i].second);
    assigned[e_t] = true;
    out.s_edges.push_back(e_s);
    out.t_edges.push_back(e_t);
    // Identity on the remaining cycle edges c3-c4-...-cl-c1.
    for (size_t j = 2; j + 1 <= cyc.size(); ++j) {
      const VarId a = cyc[j % cyc.size()];
      const VarId b = cyc[(j + 1) % cyc.size()];
      if (a == cyc[0] || b == cyc[0]) {
        // closing edge cl-c1 handled below with identity too
      }
      const int e = edge_between(a, b);
      if (e < 0) continue;
      BRel r{Schema(h.edge(e))};
      for (uint64_t v = 0; v < s; ++v)
        r.Add({static_cast<Value>(v), static_cast<Value>(v)}, 1);
      rels[e] = std::move(r);
      assigned[e] = true;
    }
  }
  // All other edges: the full relation [s] × [s] (no constraint).
  for (int e = 0; e < h.num_edges(); ++e) {
    if (assigned[e]) continue;
    if (h.edge(e).size() == 2) {
      rels[e] = FullRelation<BooleanSemiring>(Schema(h.edge(e)), s);
    } else {
      rels[e] = FullRelation<BooleanSemiring>(Schema(h.edge(e)), s);
    }
  }
  out.query = MakeBcq(h, std::move(rels));
  return out;
}

std::vector<VarId> GreedyStrongIndependentSet(
    const Hypergraph& h, const std::vector<VarId>& candidates) {
  std::vector<VarId> chosen;
  std::set<VarId> blocked;
  for (VarId v : candidates) {
    if (blocked.count(v)) continue;
    chosen.push_back(v);
    for (int e : h.IncidentEdges(v))
      for (VarId w : h.edge(e)) blocked.insert(w);
  }
  return chosen;
}

namespace {

std::vector<VarId> HypergraphCenters(const Hypergraph& h) {
  GyoGhd gg = BuildGyoGhd(h);
  FlattenToMdGhd(&gg.ghd);
  auto witnesses = FindPrivateAttributes(h, gg.ghd);
  std::vector<VarId> attrs;
  for (const auto& w : witnesses) attrs.push_back(w.attribute);
  // Also admit any degree->=2 vertex as a fallback candidate (useful for
  // cyclic cores where the forest is shallow).
  for (int v = 0; v < h.num_vertices(); ++v)
    if (h.Degree(static_cast<VarId>(v)) >= 2)
      attrs.push_back(static_cast<VarId>(v));
  std::vector<VarId> dedup;
  std::set<VarId> seen;
  for (VarId v : attrs)
    if (seen.insert(v).second) dedup.push_back(v);
  return GreedyStrongIndependentSet(h, dedup);
}

}  // namespace

int HypergraphEmbeddingCapacity(const Hypergraph& h) {
  return static_cast<int>(HypergraphCenters(h).size());
}

Result<BcqEmbedding> EmbedTribesInHypergraph(const Hypergraph& h,
                                             const TribesInstance& tribes) {
  std::vector<VarId> centers = HypergraphCenters(h);
  if (tribes.m() > static_cast<int>(centers.size()))
    return Status::InvalidArgument("not enough strong-IS witnesses");
  // Same planting as EmbedAtVertices, generalized to arity r: S_i / T_i at
  // the private attribute's position, 1 elsewhere.
  return EmbedAtVertices(h, centers, tribes);
}

Result<WorstCaseAssignment> AssignAcrossMinCut(const Graph& g,
                                               const BcqEmbedding& embedding) {
  if (g.num_nodes() < 2)
    return Status::InvalidArgument("need at least two nodes");
  std::vector<NodeId> all(g.num_nodes());
  for (int v = 0; v < g.num_nodes(); ++v) all[v] = v;
  MinCutResult cut = MinCutBetween(g, all);

  WorstCaseAssignment out;
  out.min_cut = cut.value;
  std::vector<bool> in_a(g.num_nodes(), false);
  for (NodeId v : cut.side_a) in_a[v] = true;
  // Alice: a node on side A; Bob: a node on side B (also the sink).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_a[v] && out.alice < 0) out.alice = v;
    if (!in_a[v] && out.bob < 0) out.bob = v;
  }
  TOPOFAQ_CHECK(out.alice >= 0 && out.bob >= 0);

  const int k = embedding.query.hypergraph.num_edges();
  out.owners.assign(k, out.alice);
  std::set<int> s_set(embedding.s_edges.begin(), embedding.s_edges.end());
  std::set<int> t_set(embedding.t_edges.begin(), embedding.t_edges.end());
  for (int e = 0; e < k; ++e) {
    if (s_set.count(e))
      out.owners[e] = out.alice;
    else if (t_set.count(e))
      out.owners[e] = out.bob;
    else
      out.owners[e] = (e % 2 == 0) ? out.alice : out.bob;
  }
  return out;
}

}  // namespace topofaq
