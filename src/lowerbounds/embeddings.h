// TRIBES → BCQ reductions (the paper's lower-bound constructions):
//
//  * EmbedAtVertices        — the common engine: given pairwise non-adjacent
//                             degree-≥2 vertices o_1..o_m of a simple graph,
//                             plant (S_i, T_i) on two edges at o_i and pad
//                             the rest ([N]×{1} near o_i, {(1,1)} elsewhere)
//                             exactly as in Lemma 4.3.
//  * EmbedTribesInForest    — Lemma 4.3: O = the larger bipartition side of
//                             internal nodes (|O| >= y/2).
//  * EmbedTribesOnCycles    — Theorem 4.4 case 1: vertex-disjoint cycles,
//                             √N×√N pair encoding with identity chains.
//  * EmbedTribesByIndependentSet — Theorem 4.4 case 2 (Turán greedy).
//  * EmbedTribesInHypergraph— Theorem F.8: MD-GHD private attributes +
//                             strong independent set (Theorem F.5).
//  * AssignAcrossMinCut     — Lemma 4.4: worst-case assignment placing all
//                             S-relations on one side of a minimum cut of G
//                             and all T-relations on the other.
#ifndef TOPOFAQ_LOWERBOUNDS_EMBEDDINGS_H_
#define TOPOFAQ_LOWERBOUNDS_EMBEDDINGS_H_

#include <vector>

#include "faq/query.h"
#include "graphalg/graph.h"
#include "lowerbounds/tribes.h"
#include "util/status.h"

namespace topofaq {

/// A BCQ instance functionally equivalent to a TRIBES instance.
struct BcqEmbedding {
  FaqQuery<BooleanSemiring> query;
  /// Hyperedge ids carrying the S_i / T_i relations (Alice / Bob sides of
  /// the induced two-party problem).
  std::vector<int> s_edges;
  std::vector<int> t_edges;
  int m = 0;  ///< number of TRIBES pairs embedded
};

/// Core engine shared by Lemma 4.3 and the Theorem 4.4 independent-set case.
/// `centers` must be pairwise non-adjacent vertices of degree >= 2; one
/// TRIBES pair is planted per center (requires tribes.m() <= centers.size()).
Result<BcqEmbedding> EmbedAtVertices(const Hypergraph& h,
                                     const std::vector<VarId>& centers,
                                     const TribesInstance& tribes);

/// Lemma 4.3. `h` must be an arity-2 forest. Capacity is |O| >= y(H)/2.
Result<BcqEmbedding> EmbedTribesInForest(const Hypergraph& h,
                                         const TribesInstance& tribes);
/// Number of TRIBES pairs EmbedTribesInForest can host.
int ForestEmbeddingCapacity(const Hypergraph& h);

/// Theorem 4.4 case 2: greedy independent set among degree->=2 vertices.
Result<BcqEmbedding> EmbedTribesByIndependentSet(const Hypergraph& h,
                                                 const TribesInstance& tribes);
int IndependentSetCapacity(const Hypergraph& h);

/// Theorem 4.4 case 1: embed pairs on vertex-disjoint cycles using the
/// √N×√N two-attribute encoding. `h` must be a simple graph.
Result<BcqEmbedding> EmbedTribesOnCycles(const Hypergraph& h,
                                         const TribesInstance& tribes);
/// Vertex-disjoint cycles found by the greedy peeler.
std::vector<std::vector<VarId>> FindDisjointCycles(const Hypergraph& h);

/// Theorem F.8 for hypergraphs: witnesses from an MD-GHD, thinned to a
/// strong independent set (no hyperedge contains two chosen attributes).
Result<BcqEmbedding> EmbedTribesInHypergraph(const Hypergraph& h,
                                             const TribesInstance& tribes);
int HypergraphEmbeddingCapacity(const Hypergraph& h);

/// Greedy strong independent set (Theorem F.5 guarantees >= |V|/(d(r-1))).
std::vector<VarId> GreedyStrongIndependentSet(const Hypergraph& h,
                                              const std::vector<VarId>& candidates);

/// Lemma 4.4: a worst-case assignment across a minimum cut separating the
/// players.
struct WorstCaseAssignment {
  std::vector<NodeId> owners;
  int64_t min_cut = 0;
  NodeId alice = -1;  ///< node holding all S relations (side A)
  NodeId bob = -1;    ///< node holding all T relations (side B); also sink
};
Result<WorstCaseAssignment> AssignAcrossMinCut(const Graph& g,
                                               const BcqEmbedding& embedding);

}  // namespace topofaq

#endif  // TOPOFAQ_LOWERBOUNDS_EMBEDDINGS_H_
