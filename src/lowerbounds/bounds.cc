#include "lowerbounds/bounds.h"

#include <algorithm>

#include "ghd/width.h"
#include "graphalg/maxflow.h"
#include "graphalg/routing.h"
#include "graphalg/steiner.h"
#include "hypergraph/degeneracy.h"
#include "util/bits.h"

namespace topofaq {

std::string BoundBreakdown::ToString() const {
  return "y=" + std::to_string(y) + " n2=" + std::to_string(n2) +
         " d=" + std::to_string(degeneracy) + " r=" + std::to_string(arity) +
         " UB=" + std::to_string(upper_total) +
         " (star=" + std::to_string(star_term) +
         " core=" + std::to_string(core_term) +
         ") LB=" + std::to_string(lower_bound) +
         " mincut=" + std::to_string(min_cut);
}

BoundBreakdown ComputeBounds(const Hypergraph& h, const Graph& g,
                             const std::vector<NodeId>& k, int64_t n,
                             uint64_t seed) {
  BoundBreakdown b;
  WidthResult w = MinimizeWidth(h, /*restarts=*/8, seed);
  b.y = w.internal_nodes;
  b.n2 = w.n2;
  b.degeneracy = ComputeDegeneracy(h).degeneracy;
  b.arity = h.MaxArity();

  if (k.size() >= 2) {
    IntersectionPlan plan = PlanIntersection(g, k, n, seed);
    b.star_term = static_cast<int64_t>(b.y) * plan.predicted_rounds;
    // The Lemma 4.2 core term: nothing to ship when the query is acyclic
    // and connected (the core is the last star's root bag).
    const CoreForest& cf = w.decomposition.core_forest;
    const bool pure_star_phase =
        cf.core_edges.empty() && cf.root_edges.size() == 1;
    if (!pure_star_phase) {
      GatherPlan gather = PlanGather(
          g, k,
          static_cast<int64_t>(b.n2) * std::max(1, b.degeneracy) * n);
      b.core_term = gather.rounds;
    }
    b.min_cut = MinCutBetween(g, k).value;
  } else {
    b.min_cut = 1;
  }
  b.upper_total = b.star_term + b.core_term;
  b.lower_bound =
      CeilDiv(static_cast<int64_t>(b.y + b.n2) * n, std::max<int64_t>(1, b.min_cut));
  return b;
}

McmBounds ComputeMcmBounds(int k, int n) {
  McmBounds b;
  b.sequential = static_cast<int64_t>(k + 1) * n;
  b.merge = static_cast<int64_t>(n) * n *
                std::max(1, CeilLog2(static_cast<uint64_t>(std::max(2, k)))) +
            k + 2 * n;
  b.trivial = static_cast<int64_t>(k) * n * n;
  b.lower = static_cast<int64_t>(k) * n;
  return b;
}

}  // namespace topofaq
