#include "obs/op_format.h"

#include <cstdio>

namespace topofaq {
namespace obs {

std::string FormatOpStats(const char* name, const OpStats& s) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "%s: calls=%lld in=%lld out=%lld cmp=%lld sorts=%lld "
                "skips=%lld morsels=%lld seeks=%lld peak=%lld "
                "simd=%lld scalar_fb=%lld\n",
                name, static_cast<long long>(s.calls),
                static_cast<long long>(s.rows_in),
                static_cast<long long>(s.rows_out),
                static_cast<long long>(s.comparisons),
                static_cast<long long>(s.sorts),
                static_cast<long long>(s.sort_skips),
                static_cast<long long>(s.morsels),
                static_cast<long long>(s.seeks),
                static_cast<long long>(s.peak_rows),
                static_cast<long long>(s.simd_blocks),
                static_cast<long long>(s.scalar_fallbacks));
  return buf;
}

std::string OpStatsJson(const OpStats& s) {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "{\"calls\":%lld,\"rows_in\":%lld,\"rows_out\":%lld,"
                "\"comparisons\":%lld,\"sorts\":%lld,\"sort_skips\":%lld,"
                "\"morsels\":%lld,\"seeks\":%lld,\"peak_rows\":%lld,"
                "\"simd_blocks\":%lld,\"scalar_fallbacks\":%lld}",
                static_cast<long long>(s.calls),
                static_cast<long long>(s.rows_in),
                static_cast<long long>(s.rows_out),
                static_cast<long long>(s.comparisons),
                static_cast<long long>(s.sorts),
                static_cast<long long>(s.sort_skips),
                static_cast<long long>(s.morsels),
                static_cast<long long>(s.seeks),
                static_cast<long long>(s.peak_rows),
                static_cast<long long>(s.simd_blocks),
                static_cast<long long>(s.scalar_fallbacks));
  return buf;
}

OpStats OpStatsDelta(const OpStats& before, const OpStats& after) {
  OpStats d;
  d.calls = after.calls - before.calls;
  d.rows_in = after.rows_in - before.rows_in;
  d.rows_out = after.rows_out - before.rows_out;
  d.comparisons = after.comparisons - before.comparisons;
  d.sorts = after.sorts - before.sorts;
  d.sort_skips = after.sort_skips - before.sort_skips;
  d.morsels = after.morsels - before.morsels;
  d.seeks = after.seeks - before.seeks;
  d.peak_rows = after.peak_rows;  // high-water mark, not a difference
  d.simd_blocks = after.simd_blocks - before.simd_blocks;
  d.scalar_fallbacks = after.scalar_fallbacks - before.scalar_fallbacks;
  return d;
}

}  // namespace obs
}  // namespace topofaq
