#include "obs/trace.h"

#include <cstdio>

namespace topofaq {
namespace obs {

namespace {

/// JSON string escaping for track names (span names are identifiers by
/// contract, but track names carry user text like query tags).
void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

int Pid(ClockDomain d) { return d == ClockDomain::kWall ? 1 : 2; }

}  // namespace

TraceSession::TraceSession() : base_(std::chrono::steady_clock::now()) {
  tracks_.emplace_back("main", ClockDomain::kWall);
}

uint32_t TraceSession::RegisterTrack(const std::string& name,
                                     ClockDomain domain) {
  std::lock_guard<std::mutex> lock(mu_);
  tracks_.emplace_back(name, domain);
  return static_cast<uint32_t>(tracks_.size() - 1);
}

void TraceSession::Emit(const char* name, uint32_t track, ClockDomain domain,
                        double ts_us, double dur_us, std::string args_json) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      TraceEvent{name, track, domain, ts_us, dur_us, std::move(args_json)});
}

size_t TraceSession::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceSession::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string TraceSession::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[\n";
  char buf[256];
  // Process metadata: one Chrome "process" per clock domain.
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"wall clock\"}},\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
      "\"args\":{\"name\":\"simulated time\"}},\n";
  for (size_t t = 0; t < tracks_.size(); ++t) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%zu,\"args\":{\"name\":\"",
                  Pid(tracks_[t].second), t);
    out += buf;
    AppendEscaped(&out, tracks_[t].first);
    out += "\"}},\n";
  }
  for (const TraceEvent& e : events_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f",
                  e.name, Pid(e.domain), e.track, e.ts_us, e.dur_us);
    out += buf;
    if (!e.args_json.empty()) {
      out += ",\"args\":";
      out += e.args_json;
    }
    out += "},\n";
  }
  // Every entry above (metadata included) ends ",\n"; drop the last comma.
  out.replace(out.size() - 2, 2, "\n");
  out += "]}\n";
  return out;
}

bool TraceSession::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open %s\n", path.c_str());
    return false;
  }
  const std::string json = ToChromeJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace obs
}  // namespace topofaq
