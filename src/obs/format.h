// The one place stats structs become text (and span-args JSON). Before this
// header, OpStats had a hand-rolled printf in relation/exec.cc, ProtocolStats
// another in the protocol benches, and EngineStats a third in topofaq_shell —
// three renderings that drifted independently. ExecContext::DebugString, the
// shell's `stats` command, and bench_common's --verbose protocol dump all
// route through here now.
//
// Layering: obs/trace.h and obs/metrics.h depend on nothing above util/.
// This header is the presentation seam and deliberately sits *above* the
// structs it renders (protocols/instance.h, server/engine.h) — those layers
// never include it back. The OpStats-only helpers live in obs/op_format.h
// (re-exported here) so the relation layer itself can use them.
#ifndef TOPOFAQ_OBS_FORMAT_H_
#define TOPOFAQ_OBS_FORMAT_H_

#include <string>

#include "obs/op_format.h"
#include "protocols/instance.h"
#include "server/engine.h"

namespace topofaq {
namespace obs {

/// Multi-line rendering of one protocol run: the round/byte/makespan block,
/// then the kernel rollup via FormatOpStats.
std::string FormatProtocolStats(const ProtocolStats& s);

/// Two lines: engine counters, then the plan-cache block — the shell's
/// `stats` rendering.
std::string FormatEngineStats(const EngineStats& s);

}  // namespace obs
}  // namespace topofaq

#endif  // TOPOFAQ_OBS_FORMAT_H_
