// Process-wide metrics registry: counters, gauges, and fixed log-bucket
// histograms, registered once by name and recorded lock-free afterwards
// (docs/observability.md lists every metric the engine registers).
//
// Usage contract: Get*() resolves (or creates) a metric under the registry
// mutex — call it once and keep the reference (metric objects live for the
// process; the registry never deletes). Recording (Counter::Add,
// Gauge::Set, Histogram::Record) is a relaxed atomic op with no lock, so
// hot paths — dispatcher threads, worker morsels — record concurrently
// without serializing on each other (tests/obs_test.cc hammers one
// histogram from every core under TSan).
//
// Label convention: labels are part of the registered name, rendered
// Prometheus-style by LabeledName("engine.exec_ms", "class", "point") →
// `engine.exec_ms{class="point"}`. One (name, label) combination is one
// metric object; the engine registers its per-QueueClass family at
// construction, so serving-path lookups never touch the registry map.
#ifndef TOPOFAQ_OBS_METRICS_H_
#define TOPOFAQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace topofaq {
namespace obs {

/// Monotone event count.
class Counter {
 public:
  void Add(uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depths, in-flight counts).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed log-bucket histogram over non-negative values.
///
/// Bucket i >= 1 covers [min_value·2^((i-1)/4), min_value·2^(i/4)) — four
/// geometric buckets per octave (each ~19% wide), kBuckets of them spanning
/// min_value .. min_value·2^(kBuckets/4) ≈ 8.8 decades. Bucket 0 absorbs
/// everything below min_value, the last bucket everything at or above the
/// top edge. Quantile() walks the cumulative counts and returns the upper
/// edge of the bucket holding the requested rank, so a reported p99 is an
/// upper bound on the true p99 that is at most one bucket (~19%) high —
/// exactly testable, which is what tests/obs_test.cc pins down.
///
/// Record is one relaxed fetch_add on the bucket plus one on the sum (the
/// sum kept as a fixed-point integer so the histogram stays lock-free
/// without atomic<double> support); never a mutex.
class Histogram {
 public:
  static constexpr int kBuckets = 120;

  explicit Histogram(double min_value = 1e-3) : min_value_(min_value) {}

  void Record(double v);
  uint64_t count() const;
  double sum() const;
  /// Upper edge of the bucket containing rank ceil(q·count) (q in [0,1]);
  /// 0 when empty. See the class comment for the error bound.
  double Quantile(double q) const;
  double min_value() const { return min_value_; }
  /// Inclusive-lower edge of bucket i (i >= 1); bucket 0's lower edge is 0.
  double BucketLowerEdge(int i) const;
  uint64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Index of the bucket Record(v) lands in (tests pin the bucket math).
  int BucketIndex(double v) const;
  void Reset();

 private:
  double min_value_;
  std::atomic<uint64_t> buckets_[kBuckets]{};
  /// Sum in units of min_value_/1024 (fixed point; see class comment).
  std::atomic<uint64_t> sum_fp_{0};
};

/// `base{key="value"}` — the label convention above.
std::string LabeledName(std::string_view base, std::string_view key,
                        std::string_view value);

/// The process-wide registry. Metric objects are never destroyed, so a
/// reference obtained once stays valid for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& Shared();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name, double min_value = 1e-3);

  /// Plaintext dump, one metric per line sorted by name:
  ///   counter NAME VALUE
  ///   gauge NAME VALUE
  ///   histogram NAME count=N sum=S p50=X p95=Y p99=Z
  /// Engine::MetricsText() returns exactly this.
  std::string TextDump() const;

  /// Zeroes every registered metric (keeps registrations). Test isolation
  /// only — concurrent recorders may land increments on either side of the
  /// reset.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace topofaq

#endif  // TOPOFAQ_OBS_METRICS_H_
