#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace topofaq {
namespace obs {

int Histogram::BucketIndex(double v) const {
  if (!(v >= min_value_)) return 0;  // below range and NaN both land here
  // v in [min·2^((i-1)/4), min·2^(i/4)) ⇔ i-1 <= 4·log2(v/min) < i.
  const int i = 1 + static_cast<int>(std::floor(4.0 * std::log2(v / min_value_)));
  return std::min(i, kBuckets - 1);
}

double Histogram::BucketLowerEdge(int i) const {
  if (i <= 0) return 0.0;
  return min_value_ * std::exp2((i - 1) / 4.0);
}

void Histogram::Record(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  const double clamped = std::max(v, 0.0);
  sum_fp_.fetch_add(static_cast<uint64_t>(clamped / min_value_ * 1024.0),
                    std::memory_order_relaxed);
}

uint64_t Histogram::count() const {
  uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

double Histogram::sum() const {
  return static_cast<double>(sum_fp_.load(std::memory_order_relaxed)) *
         min_value_ / 1024.0;
}

double Histogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(n))));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketLowerEdge(i + 1);
  }
  return BucketLowerEdge(kBuckets);  // unreachable unless racing a Record
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_fp_.store(0, std::memory_order_relaxed);
}

std::string LabeledName(std::string_view base, std::string_view key,
                        std::string_view value) {
  std::string out(base);
  out += '{';
  out += key;
  out += "=\"";
  out += value;
  out += "\"}";
  return out;
}

MetricsRegistry& MetricsRegistry::Shared() {
  static MetricsRegistry* r = new MetricsRegistry();  // never destroyed
  return *r;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         double min_value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(min_value);
  return *slot;
}

std::string MetricsRegistry::TextDump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[384];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "gauge %s %lld\n", name.c_str(),
                  static_cast<long long>(g->value()));
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof(buf),
                  "histogram %s count=%llu sum=%.4f p50=%.4f p95=%.4f "
                  "p99=%.4f\n",
                  name.c_str(),
                  static_cast<unsigned long long>(h->count()), h->sum(),
                  h->Quantile(0.50), h->Quantile(0.95), h->Quantile(0.99));
    out += buf;
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace topofaq
