// OpStats rendering helpers, split from obs/format.h so the relation layer
// itself can use them (format.h renders protocol/engine structs and
// therefore sits above those layers; this header depends only on
// relation/exec.h). ExecContext::DebugString and the operator span sites in
// relation/ops.h are the in-layer consumers.
#ifndef TOPOFAQ_OBS_OP_FORMAT_H_
#define TOPOFAQ_OBS_OP_FORMAT_H_

#include <string>

#include "relation/exec.h"

namespace topofaq {
namespace obs {

/// One operator-counter line, newline-terminated:
///   NAME: calls=.. in=.. out=.. cmp=.. sorts=.. skips=.. morsels=.. seeks=..
///   peak=.. simd=.. scalar_fb=..
std::string FormatOpStats(const char* name, const OpStats& s);

/// The counters of `s` as a JSON object — the `args` payload operator spans
/// carry into the Chrome trace, so a slice click in Perfetto shows the same
/// numbers FormatOpStats prints.
std::string OpStatsJson(const OpStats& s);

/// `after - before`, field-wise (peak_rows by max, matching operator+=):
/// what one operator call contributed to a cumulative OpStats.
OpStats OpStatsDelta(const OpStats& before, const OpStats& after);

}  // namespace obs
}  // namespace topofaq

#endif  // TOPOFAQ_OBS_OP_FORMAT_H_
