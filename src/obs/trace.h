// Span tracing for one query (or one protocol run): where the time went,
// as a tree of named intervals, exportable as Chrome trace-event JSON that
// Perfetto / chrome://tracing load directly (docs/observability.md).
//
// Two clock domains, never mixed on one track:
//
//  * kWall — microseconds of std::chrono::steady_clock, relative to the
//    TraceSession's construction. Engine pipeline stages, operator calls,
//    and worker morsels live here (pid 1 in the exported JSON).
//  * kSimulated — AsyncNetwork's SimTime, exported 1 unit = 1 µs. Link
//    transfers and simulated node compute live here (pid 2). A simulated
//    timeline shares a file with wall spans but never a track, so the two
//    time bases cannot be visually conflated.
//
// Cost contract: every span site is guarded by a raw `TraceSession*` that
// is null when tracing is off, so a disabled site costs one predictable
// branch — no atomics, no allocation, no clock read
// (bench/bench_obs_overhead.cc gates this against the pre-obs baseline).
// Span names must be string literals (static storage): the Span object
// stores the pointer, and nothing is copied until the span closes with
// tracing on.
//
// Concurrency: Emit appends under one mutex. Spans are recorded at
// operator / morsel / pipeline-stage granularity — thousands per query, not
// millions — so the shared vector is nowhere near contention, and recording
// from worker threads is TSan-clean by construction (tests/obs_test.cc).
#ifndef TOPOFAQ_OBS_TRACE_H_
#define TOPOFAQ_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace topofaq {
namespace obs {

/// Which clock a span's timestamps belong to. Exported as the Chrome-trace
/// process id (wall = pid 1, simulated = pid 2), so the two time bases get
/// separate process groups in the viewer.
enum class ClockDomain : uint8_t { kWall = 0, kSimulated = 1 };

/// One closed span (a Chrome "X" complete event): [ts_us, ts_us + dur_us)
/// on `track`, in `domain` time.
struct TraceEvent {
  const char* name;  ///< static string — never owned
  uint32_t track;
  ClockDomain domain;
  double ts_us;
  double dur_us;
  std::string args_json;  ///< pre-rendered JSON object, or empty
};

class TraceSession {
 public:
  TraceSession();

  /// Registers a named timeline (a Chrome thread). Track 0 always exists as
  /// "main". Thread-safe; returns the track id to pass to Emit / Span.
  uint32_t RegisterTrack(const std::string& name,
                         ClockDomain domain = ClockDomain::kWall);

  /// Wall microseconds since this session was constructed.
  double NowUs() const { return TimeUs(std::chrono::steady_clock::now()); }
  /// `tp` as wall microseconds since construction (for intervals whose start
  /// predates the emitting code, e.g. queue wait measured from enqueue time).
  double TimeUs(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double, std::micro>(tp - base_).count();
  }

  /// Records one closed span. `name` must be a string literal.
  void Emit(const char* name, uint32_t track, ClockDomain domain, double ts_us,
            double dur_us, std::string args_json = {});

  size_t event_count() const;
  /// Snapshot of the events recorded so far (tests).
  std::vector<TraceEvent> events() const;

  /// The whole session as Chrome trace-event JSON: {"traceEvents": [...]}
  /// with one metadata block naming processes (clock domains) and tracks,
  /// then every span as a "X" complete event.
  std::string ToChromeJson() const;
  /// ToChromeJson() to a file; false (with a stderr note) on IO failure.
  bool WriteChromeJson(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point base_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<std::string, ClockDomain>> tracks_;
};

/// RAII wall-clock span: opens at construction, closes (and records) at
/// destruction. With a null session the whole object is one branch and a
/// few register writes — the disabled-site cost contract above.
class Span {
 public:
  Span(TraceSession* session, const char* name, uint32_t track)
      : session_(session), name_(name), track_(track) {
    if (session_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~Span() { Close(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a pre-rendered JSON object emitted with the span on close.
  /// Callers guard the (possibly costly) rendering with `if (trace)`.
  void SetArgsJson(std::string j) {
    if (session_ != nullptr) args_ = std::move(j);
  }

  /// Closes early (idempotent); the destructor is the usual path.
  void Close() {
    if (session_ == nullptr) return;
    const double ts = session_->TimeUs(start_);
    session_->Emit(name_, track_, ClockDomain::kWall, ts,
                   session_->NowUs() - ts, std::move(args_));
    session_ = nullptr;
  }

 private:
  TraceSession* session_;
  const char* name_;
  uint32_t track_;
  std::chrono::steady_clock::time_point start_;
  std::string args_;
};

}  // namespace obs
}  // namespace topofaq

#endif  // TOPOFAQ_OBS_TRACE_H_
