#include "obs/format.h"

#include <cstdio>

namespace topofaq {
namespace obs {

std::string FormatProtocolStats(const ProtocolStats& s) {
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "protocol: rounds=%lld total_bits=%lld makespan=%.1f pages=%lld "
      "peak_pages=%lld payload_enc=%lld payload_plain=%lld max_edge_util=%.3f\n",
      static_cast<long long>(s.rounds), static_cast<long long>(s.total_bits),
      s.makespan, static_cast<long long>(s.pages),
      static_cast<long long>(s.max_in_flight_pages),
      static_cast<long long>(s.payload_bits_encoded),
      static_cast<long long>(s.payload_bits_plain), s.max_edge_utilization);
  std::string out = buf;
  out += FormatOpStats("kernel", s.kernel);
  return out;
}

std::string FormatEngineStats(const EngineStats& s) {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "engine: submitted=%lld completed=%lld rejected=%lld "
                "cancelled=%lld failed=%lld subscriptions=%lld "
                "deltas_applied=%lld deltas_rejected=%lld\n",
                static_cast<long long>(s.submitted),
                static_cast<long long>(s.completed),
                static_cast<long long>(s.rejected),
                static_cast<long long>(s.cancelled),
                static_cast<long long>(s.failed),
                static_cast<long long>(s.subscriptions),
                static_cast<long long>(s.deltas_applied),
                static_cast<long long>(s.deltas_rejected));
  std::string out = buf;
  std::snprintf(buf, sizeof(buf),
                "plan cache: hits=%lld misses=%lld evictions=%lld "
                "hit-rate=%.2f\n",
                static_cast<long long>(s.plan_cache.hits),
                static_cast<long long>(s.plan_cache.misses),
                static_cast<long long>(s.plan_cache.evictions),
                s.plan_cache.HitRate());
  out += buf;
  return out;
}

}  // namespace obs
}  // namespace topofaq
