// Batched deltas on base relations — the data half of incremental view
// maintenance (docs/ivm.md).
//
// A delta is a pair of annotated relations: `removes` erases matching tuples
// from the base outright (its annotations are ignored — deletion is by key),
// `adds` is ⊕-merged in, removes first. Both halves are canonicalized on
// application, so callers can hand over raw batches.
//
// The base update is one splice over the canonical columns: erased rows are
// zeroed with set_annot and dropped by the one-pass Relation::Compact()
// re-certification, then AddInto walks the (sorted) add rows once, bulk-
// appending the untouched base runs between them via
// RelationBuilder::AppendChunk and ⊕-merging collisions exactly the way
// Canonicalize's run fold would (base row first, delta row second). Cost:
// O(|base| memmove + |delta| · log |base|), no sort.
//
// RingTraits classifies each semiring for the propagation layer
// (ivm/standing_query.h): in a *ring*, the net effect of a delta on a base
// relation is itself an annotated relation C with base_new = base_old ⊕ C
// pointwise (deletions contribute additive inverses), and because every
// operator in the Yannakakis pass is ⊕-linear in each argument, C can be
// pushed through the join tree instead of recomputing it. Only exact rings
// qualify for that path bit-for-bit: Natural (uint64 wraps — the ring
// ℤ/2^64) and GF2 (XOR is its own inverse). Counting *is* a ring
// algebraically, but IEEE double addition is not associative at the bit
// level, so folding -old ⊕ new incrementally can differ in low bits from a
// fresh fold; it is marked inexact and takes the recompute path, keeping
// the differential bit-identity guarantee unconditional.
#ifndef TOPOFAQ_IVM_DELTA_H_
#define TOPOFAQ_IVM_DELTA_H_

#include <span>
#include <utility>
#include <vector>

#include "faq/query.h"
#include "relation/relation.h"
#include "util/status.h"

namespace topofaq {

/// Ring classification per semiring. kIsRing: ⊕ has additive inverses
/// (Negate). kExact: ⊕/⊗ are exact (no rounding), so incremental folds are
/// bit-identical to full refolds — the gate for delta propagation.
template <typename S>
struct RingTraits {
  static constexpr bool kIsRing = false;
  static constexpr bool kExact = false;
};

template <>
struct RingTraits<NaturalSemiring> {  // ℤ/2^64: wrapping uint64 arithmetic
  static constexpr bool kIsRing = true;
  static constexpr bool kExact = true;
  static NaturalSemiring::Value Negate(NaturalSemiring::Value v) {
    return ~v + 1;  // two's complement: 0 - v mod 2^64
  }
};

template <>
struct RingTraits<Gf2Semiring> {  // F2: every element is its own inverse
  static constexpr bool kIsRing = true;
  static constexpr bool kExact = true;
  static Gf2Semiring::Value Negate(Gf2Semiring::Value v) { return v; }
};

template <>
struct RingTraits<CountingSemiring> {  // (ℝ, +, ×): a ring, but floats are
  static constexpr bool kIsRing = true;   // not bit-exact under reassociation
  static constexpr bool kExact = false;
  static CountingSemiring::Value Negate(CountingSemiring::Value v) {
    return -v;
  }
};

/// One batched update to a base relation. Schemas of non-empty halves must
/// match the base relation's schema.
template <CommutativeSemiring S>
struct Delta {
  /// Tuples to erase from the base. Matching is by key columns only; the
  /// annotations here are ignored (deletion, not subtraction). Tuples not
  /// present in the base are ignored.
  Relation<S> removes;
  /// Tuples to ⊕-merge into the base after the removes. A tuple both
  /// removed and added ends up carrying exactly the added annotation.
  Relation<S> adds;

  bool empty() const { return removes.empty() && adds.empty(); }
  size_t size() const { return removes.size() + adds.size(); }
};

namespace ivm_detail {

/// First row index >= `t` lexicographically in canonical `r`, searching
/// [lo, r.size()). O(arity · log n) via at() (decoded or encoded).
template <CommutativeSemiring S>
size_t LowerBoundRow(const Relation<S>& r, std::span<const Value> t,
                     size_t lo) {
  size_t hi = r.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    int cmp = 0;
    for (size_t j = 0; j < t.size() && cmp == 0; ++j) {
      const Value x = r.at(mid, j);
      cmp = x < t[j] ? -1 : (x > t[j] ? 1 : 0);
    }
    if (cmp < 0)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

template <CommutativeSemiring S>
bool RowEquals(const Relation<S>& r, size_t i, std::span<const Value> t) {
  for (size_t j = 0; j < t.size(); ++j)
    if (r.at(i, j) != t[j]) return false;
  return true;
}

}  // namespace ivm_detail

/// Erases every base tuple that appears in (canonical) `removes`: binary
/// search per remove row, zero the annotation, then one Compact() pass
/// drops the zeroed runs and re-certifies — the set_annot/Compact
/// re-certification contract exercised as a bulk mutation. Tuples absent
/// from the base are silently skipped.
template <CommutativeSemiring S>
void EraseMatching(Relation<S>* base, const Relation<S>& removes) {
  if (removes.empty() || base->empty()) return;
  const size_t a = base->arity();
  std::vector<Value> row(a);
  size_t lo = 0;  // removes are sorted too: searches only ever move right
  for (size_t i = 0; i < removes.size(); ++i) {
    for (size_t j = 0; j < a; ++j) row[j] = removes.at(i, j);
    lo = ivm_detail::LowerBoundRow(*base, row, lo);
    if (lo >= base->size()) break;
    if (ivm_detail::RowEquals(*base, lo, row)) base->set_annot(lo, S::Zero());
  }
  base->Compact();
}

/// ⊕-merges canonical `delta` into canonical `*base` with one splice pass:
/// base runs between consecutive delta rows move as AppendChunk column
/// views, collisions fold S::Add(base_annot, delta_annot) — the same
/// association Canonicalize's run fold (base row id < delta row id) would
/// produce — and Build()'s compaction drops exact cancellations (GF2,
/// wrapping Natural). The result re-runs the encoding policy.
template <CommutativeSemiring S>
void AddInto(Relation<S>* base, const Relation<S>& delta,
             ExecContext* ctx = nullptr) {
  if (delta.empty()) return;
  TOPOFAQ_CHECK_MSG(base->schema() == delta.schema() ||
                        (base->empty() && base->arity() == 0),
                    "AddInto: schema mismatch");
  if (base->empty()) {
    *base = delta;
    base->Canonicalize(ctx);
    return;
  }
  base->Compact();  // canonical in, canonical out
  Relation<S> old = std::move(*base);
  old.DecodeAll();
  const size_t a = old.arity();
  const auto& dcols = delta.columns();  // decoded once; delta is canonical
  RelationBuilder<S> b(old.schema());
  b.set_encode(false);  // single policy run at the end, on the spliced result
  b.Reserve(old.size() + delta.size());
  std::vector<ColumnView> chunk(a);
  std::vector<Value> row(a);
  size_t pos = 0;
  for (size_t di = 0; di < delta.size(); ++di) {
    for (size_t j = 0; j < a; ++j) row[j] = dcols[j][di];
    const size_t ub = ivm_detail::LowerBoundRow(old, row, pos);
    if (ub > pos) {
      for (size_t j = 0; j < a; ++j)
        chunk[j] = ColumnView(old.col(j).data() + pos, ub - pos);
      b.AppendChunk(std::span<const ColumnView>(chunk),
                    std::span<const typename S::Value>(
                        old.annots().data() + pos, ub - pos));
      pos = ub;
    }
    if (pos < old.size() && ivm_detail::RowEquals(old, pos, row)) {
      b.Append(row, S::Add(old.annot(pos), delta.annot(di)));
      ++pos;
    } else {
      b.Append(row, delta.annot(di));
    }
  }
  if (pos < old.size()) {
    for (size_t j = 0; j < a; ++j)
      chunk[j] = ColumnView(old.col(j).data() + pos, old.size() - pos);
    b.AppendChunk(std::span<const ColumnView>(chunk),
                  std::span<const typename S::Value>(
                      old.annots().data() + pos, old.size() - pos));
  }
  *base = b.Build();
  base->EncodeColumns();
}

/// Ring mode only: the annotated relation C with base_after = base_before
/// ⊕ C pointwise, for a delta of (canonical) `removes` then `adds`. Erased
/// tuples contribute their base annotation negated; added tuples contribute
/// their value; a tuple in both folds Negate(old) ⊕ new (row-id order:
/// removes were Added first). Exact rings only — C drives join-tree
/// propagation in StandingQuery.
template <CommutativeSemiring S>
  requires(RingTraits<S>::kIsRing)
Relation<S> NetChange(const Relation<S>& base, const Relation<S>& removes,
                      const Relation<S>& adds, ExecContext* ctx = nullptr) {
  Relation<S> c(base.schema());
  const size_t a = base.arity();
  std::vector<Value> row(a);
  size_t lo = 0;
  for (size_t i = 0; i < removes.size(); ++i) {
    for (size_t j = 0; j < a; ++j) row[j] = removes.at(i, j);
    lo = ivm_detail::LowerBoundRow(base, row, lo);
    if (lo >= base.size()) break;
    if (ivm_detail::RowEquals(base, lo, row))
      c.Add(std::span<const Value>(row), RingTraits<S>::Negate(base.annot(lo)));
  }
  for (size_t i = 0; i < adds.size(); ++i) {
    for (size_t j = 0; j < a; ++j) row[j] = adds.at(i, j);
    c.Add(std::span<const Value>(row), adds.annot(i));
  }
  c.Canonicalize(ctx);
  return c;
}

/// Applies one delta to a base relation: canonicalize both halves, erase,
/// merge. This is the single base-update path — the standing query and the
/// full-recompute oracle both go through it, so their bases stay
/// byte-identical by construction.
template <CommutativeSemiring S>
Status ApplyDeltaToRelation(Relation<S>* base, Delta<S> d,
                            ExecContext* ctx = nullptr) {
  d.removes.Canonicalize(ctx);
  d.adds.Canonicalize(ctx);
  if (!d.removes.empty() && !(d.removes.schema() == base->schema()))
    return Status::InvalidArgument("delta removes schema != base schema");
  if (!d.adds.empty() && !(d.adds.schema() == base->schema()))
    return Status::InvalidArgument("delta adds schema != base schema");
  EraseMatching(base, d.removes);
  AddInto(base, d.adds, ctx);
  return Status::Ok();
}

/// Oracle-side convenience: applies a delta to one relation of a query.
template <CommutativeSemiring S>
Status ApplyDeltaToQuery(FaqQuery<S>* q, int relation_id, Delta<S> d,
                         ExecContext* ctx = nullptr) {
  if (relation_id < 0 ||
      relation_id >= static_cast<int>(q->relations.size()))
    return Status::InvalidArgument("delta targets unknown relation " +
                                   std::to_string(relation_id));
  return ApplyDeltaToRelation(&q->relations[relation_id], std::move(d), ctx);
}

/// Permutes `r`'s columns to match `target` (same variable set, any order)
/// and re-canonicalizes under the new order. Incremental terms come out of
/// Join with the delta leftmost, so their schema order can differ from the
/// materialized message they fold into; this aligns them.
template <CommutativeSemiring S>
void ReorderTo(Relation<S>* r, const Schema& target,
               ExecContext* ctx = nullptr) {
  if (r->schema() == target) return;
  TOPOFAQ_CHECK_MSG(r->arity() == target.arity(),
                    "ReorderTo: arity mismatch");
  std::vector<int> src(target.arity());
  for (size_t j = 0; j < target.arity(); ++j) {
    src[j] = r->schema().PositionOf(target.var(j));
    TOPOFAQ_CHECK_MSG(src[j] >= 0, "ReorderTo: variable set mismatch");
  }
  r->ReorderColumns(target, src);
  r->Canonicalize(ctx);
}

}  // namespace topofaq

#endif  // TOPOFAQ_IVM_DELTA_H_
