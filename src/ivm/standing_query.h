// StandingQuery — incremental view maintenance over the Theorem G.3 pass.
//
// A standing query materializes the GHD upward pass once (per-node base
// relations and the post-elimination message each non-root node sends its
// parent), then keeps the answer current under batched base-relation deltas
// (ivm/delta.h) at a cost proportional to the delta and the key runs it
// touches, not the database. Two maintenance modes, chosen per query at
// creation:
//
//  * Ring propagation (exact rings — Natural, GF2 — with all-⊕ bound
//    variables): the delta's net change C (base_new = base_old ⊕ C) is
//    pushed along the touched node's root path. Every operator in the pass
//    is ⊕-linear in each argument — Join(A ⊕ C, B) = Join(A, B) ⊕
//    Join(C, B) by distributivity, Eliminate/Project commute with ⊕ — so at
//    each node the incremental term is Join(Δchild, every *other* input at
//    its current value), eliminated exactly as the full pass would, folded
//    into the stored message, and forwarded. One root-to-leaf path of
//    delta-sized joins; untouched subtrees are never visited. Bit-identity
//    vs full recompute holds because ⊕/⊗ in these rings are exact and
//    order-free, and every materialized state stays in canonical form.
//
//  * Affected-subtree recompute (everything else — idempotent semirings
//    like Boolean/MinPlus/MaxProduct, inexact Counting, or min/max bound
//    aggregates): deletions have no additive inverse (or no exact one), so
//    the nodes on the touched root path rerun their original pass step with
//    the *same* deterministic operators, reusing the cached messages of
//    every clean subtree. Identical ops on byte-identical inputs give
//    byte-identical outputs — bit-identity is unconditional here.
//
// Delta application is deliberately NOT cancellable: a cancel observed
// mid-propagation would leave messages half-updated. Deltas are small by
// admission (server/subscribe.h); cancellation stays a one-shot-query
// feature.
#ifndef TOPOFAQ_IVM_STANDING_QUERY_H_
#define TOPOFAQ_IVM_STANDING_QUERY_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "faq/solvers.h"
#include "ivm/delta.h"

namespace topofaq {

/// Maintenance counters, cumulative over the standing query's lifetime.
struct StandingStats {
  int64_t deltas_applied = 0;    ///< non-empty deltas admitted and applied
  int64_t ring_deltas = 0;       ///< took the ring propagation path
  int64_t recompute_deltas = 0;  ///< took the affected-subtree recompute
  int64_t nodes_updated = 0;     ///< GHD nodes whose state was recomputed/folded
  int64_t nodes_reused = 0;      ///< clean nodes whose cached message was reused
};

template <CommutativeSemiring S>
class StandingQuery {
 public:
  using Semiring = S;

  /// Plans q through the shared PlanCache (identical keys to
  /// YannakakisSolve — a standing query warms the same plan one-shot
  /// queries hit) and runs the full pass once. Fails with
  /// FailedPrecondition when F ⊈ V(C(H)) (Appendix G.5): standing queries
  /// have no brute-force fallback, because only the GHD pass has
  /// incrementally maintainable state.
  static Result<StandingQuery> Create(FaqQuery<S> q,
                                      ExecContext* ctx = nullptr) {
    TOPOFAQ_RETURN_IF_ERROR(q.Validate());
    auto w = PlanCache::Shared().PlanFor(q.hypergraph, q.free_vars);
    if (!w.ok()) return w.status();
    StandingQuery sq;
    sq.q_ = std::move(q);
    sq.gg_ = std::move(w->decomposition);
    const Ghd& ghd = sq.gg_.ghd;
    const auto& root_chi = ghd.node(ghd.root()).chi;
    for (VarId v : sq.q_.free_vars)
      if (!std::binary_search(root_chi.begin(), root_chi.end(), v))
        return Status::FailedPrecondition(
            "free variable " + std::to_string(v) +
            " outside V(C(H)): unsupported choice of F (Appendix G.5)");
    sq.node_of_relation_.assign(sq.q_.relations.size(), -1);
    for (int v = 0; v < ghd.num_nodes(); ++v) {
      const int e = ghd.node(v).edge_id;
      if (e >= 0) sq.node_of_relation_[static_cast<size_t>(e)] = v;
    }
    for (int node : sq.node_of_relation_)
      if (node < 0)
        return Status::Internal("decomposition covers no node for an edge");
    // Ring propagation needs exact additive inverses AND ⊕-linear
    // eliminations: any bound min/max aggregate forces recompute mode.
    sq.ring_mode_ = RingTraits<S>::kIsRing && RingTraits<S>::kExact;
    if (sq.ring_mode_) {
      for (VarId v = 0;
           v < static_cast<VarId>(sq.q_.hypergraph.num_vertices()); ++v) {
        const bool is_free =
            std::find(sq.q_.free_vars.begin(), sq.q_.free_vars.end(), v) !=
            sq.q_.free_vars.end();
        if (!is_free && sq.q_.hypergraph.Degree(v) > 0 &&
            sq.q_.OpFor(v) != VarOp::kSemiringSum)
          sq.ring_mode_ = false;
      }
    }
    sq.RebuildAll(ctx);
    return sq;
  }

  /// The current answer over F, canonical. Repeatable; never recomputes.
  const Relation<S>& Current() const { return answer_; }

  const FaqQuery<S>& query() const { return q_; }
  bool ring_mode() const { return ring_mode_; }
  const StandingStats& stats() const { return stats_; }
  const GyoGhd& decomposition() const { return gg_; }

  /// Applies one batched delta to relation `relation_id` and brings the
  /// answer current. Both halves are canonicalized here; empty deltas are
  /// free. NOT thread-safe: callers serialize (server/subscribe.h holds a
  /// per-session mutex).
  Status ApplyDelta(int relation_id, Delta<S> d, ExecContext* ctx = nullptr) {
    if (relation_id < 0 ||
        relation_id >= static_cast<int>(q_.relations.size()))
      return Status::InvalidArgument("delta targets unknown relation " +
                                     std::to_string(relation_id));
    Relation<S>& base = q_.relations[static_cast<size_t>(relation_id)];
    d.removes.Canonicalize(ctx);
    d.adds.Canonicalize(ctx);
    if (!d.removes.empty() && !(d.removes.schema() == base.schema()))
      return Status::InvalidArgument("delta removes schema != base schema");
    if (!d.adds.empty() && !(d.adds.schema() == base.schema()))
      return Status::InvalidArgument("delta adds schema != base schema");
    if (d.empty()) return Status::Ok();
    ++stats_.deltas_applied;

    const int node = node_of_relation_[static_cast<size_t>(relation_id)];
    if constexpr (RingTraits<S>::kIsRing && RingTraits<S>::kExact) {
      if (ring_mode_) {
        // Net change first (it reads the pre-delta annotations), then the
        // shared base update, then push the change up the root path.
        Relation<S> change = NetChange(base, d.removes, d.adds, ctx);
        EraseMatching(&base, d.removes);
        AddInto(&base, d.adds, ctx);
        ++stats_.ring_deltas;
        if (change.empty()) return Status::Ok();
        PropagateRing(std::move(change), node, ctx);
        return Status::Ok();
      }
    }
    EraseMatching(&base, d.removes);
    AddInto(&base, d.adds, ctx);
    ++stats_.recompute_deltas;
    RecomputeDirty(node, ctx);
    return Status::Ok();
  }

 private:
  StandingQuery() = default;

  /// The node's own input: its hyperedge's relation, or the unit scalar for
  /// the synthetic root.
  const Relation<S>& BaseOf(int v) {
    const int e = gg_.ghd.node(v).edge_id;
    if (e >= 0) return q_.relations[static_cast<size_t>(e)];
    if (unit_.empty()) unit_ = internal::UnitRelation<S>();
    return unit_;
  }

  /// Variables of `sc` not in the (sorted) bag `chi`.
  static std::vector<VarId> VarsOutside(const Schema& sc,
                                        const std::vector<VarId>& chi) {
    std::vector<VarId> out;
    for (VarId x : sc.vars())
      if (!std::binary_search(chi.begin(), chi.end(), x)) out.push_back(x);
    return out;
  }

  std::vector<VarId> BoundVarsOf(const Schema& sc) const {
    std::vector<VarId> bound;
    for (VarId v : sc.vars())
      if (std::find(q_.free_vars.begin(), q_.free_vars.end(), v) ==
          q_.free_vars.end())
        bound.push_back(v);
    return bound;
  }

  /// One full upward pass — step for step YannakakisSolveOn — that leaves
  /// every non-root node's post-elimination message materialized in msgs_.
  void RebuildAll(ExecContext* ctx) {
    const Ghd& ghd = gg_.ghd;
    std::vector<Relation<S>> state(static_cast<size_t>(ghd.num_nodes()));
    for (int v = 0; v < ghd.num_nodes(); ++v) state[v] = BaseOf(v);
    for (int v : ghd.BottomUpOrder()) {
      for (int c : ghd.node(v).children)
        state[v] = Join(state[v], state[c], ctx);
      if (v == ghd.root()) break;
      const auto& parent_chi = ghd.node(ghd.node(v).parent).chi;
      // Private vars are read before the move: function-argument evaluation
      // order would otherwise race the move-out of state[v].
      std::vector<VarId> priv = VarsOutside(state[v].schema(), parent_chi);
      state[v] = internal::EliminateAll(std::move(state[v]), std::move(priv),
                                        q_, ctx);
    }
    Relation<S>& root_rel = state[ghd.root()];
    std::vector<VarId> bound = BoundVarsOf(root_rel.schema());
    root_rel = internal::EliminateAll(std::move(root_rel), std::move(bound),
                                      q_, ctx);
    answer_ = Project(root_rel, q_.free_vars, ctx);
    state[ghd.root()] = Relation<S>();  // answer_ supersedes the root state
    msgs_ = std::move(state);
  }

  /// Ring mode: walk the touched node's root path once. At each node the
  /// incremental term is the delta joined with every *other* input at its
  /// current value (⊕-linearity in the dirty argument); eliminate exactly
  /// as the full pass would, fold into the stored message, forward. Stops
  /// early when a term annihilates (⊕-cancellation or empty join).
  void PropagateRing(Relation<S> cur, int node, ExecContext* ctx) {
    const Ghd& ghd = gg_.ghd;
    int v = node;
    int from = -1;  // child the delta arrived from; -1 = v's own base
    for (;;) {
      ++stats_.nodes_updated;
      Relation<S> term = std::move(cur);
      if (from >= 0) term = Join(term, BaseOf(v), ctx);
      for (int c : ghd.node(v).children) {
        if (c == from) continue;
        term = Join(term, msgs_[static_cast<size_t>(c)], ctx);
      }
      if (v == ghd.root()) {
        std::vector<VarId> bound = BoundVarsOf(term.schema());
        term = internal::EliminateAll(std::move(term), std::move(bound), q_,
                                      ctx);
        Relation<S> dans = Project(term, q_.free_vars, ctx);
        AddInto(&answer_, dans, ctx);
        return;
      }
      const auto& parent_chi = ghd.node(ghd.node(v).parent).chi;
      std::vector<VarId> priv = VarsOutside(term.schema(), parent_chi);
      term = internal::EliminateAll(std::move(term), std::move(priv), q_, ctx);
      if (term.empty()) return;  // nothing survives to the parent
      ReorderTo(&term, msgs_[static_cast<size_t>(v)].schema(), ctx);
      AddInto(&msgs_[static_cast<size_t>(v)], term, ctx);
      cur = std::move(term);
      from = v;
      v = ghd.node(v).parent;
    }
  }

  /// Fallback mode: rerun the original pass step at every node on the
  /// touched root path, reusing the cached message of every clean child —
  /// identical deterministic operators on byte-identical inputs.
  void RecomputeDirty(int touched, ExecContext* ctx) {
    const Ghd& ghd = gg_.ghd;
    std::vector<char> dirty(static_cast<size_t>(ghd.num_nodes()), 0);
    for (int v = touched; v >= 0; v = ghd.node(v).parent)
      dirty[static_cast<size_t>(v)] = 1;
    for (int v : ghd.BottomUpOrder()) {
      if (!dirty[static_cast<size_t>(v)]) {
        ++stats_.nodes_reused;
        continue;
      }
      ++stats_.nodes_updated;
      Relation<S> state = BaseOf(v);
      for (int c : ghd.node(v).children)
        state = Join(state, msgs_[static_cast<size_t>(c)], ctx);
      if (v == ghd.root()) {
        std::vector<VarId> bound = BoundVarsOf(state.schema());
        state = internal::EliminateAll(std::move(state), std::move(bound), q_,
                                       ctx);
        answer_ = Project(state, q_.free_vars, ctx);
        return;
      }
      const auto& parent_chi = ghd.node(ghd.node(v).parent).chi;
      std::vector<VarId> priv = VarsOutside(state.schema(), parent_chi);
      msgs_[static_cast<size_t>(v)] =
          internal::EliminateAll(std::move(state), std::move(priv), q_, ctx);
    }
  }

  FaqQuery<S> q_;  // relations mutate under deltas; shape is fixed
  GyoGhd gg_;
  std::vector<int> node_of_relation_;  // hyperedge id -> GHD node
  /// Post-elimination message per non-root node (root slot empty).
  std::vector<Relation<S>> msgs_;
  Relation<S> answer_;
  Relation<S> unit_;  // lazily built unit scalar for synthetic nodes
  bool ring_mode_ = false;
  StandingStats stats_;
};

}  // namespace topofaq

#endif  // TOPOFAQ_IVM_STANDING_QUERY_H_
