// Figure 2 + §2.3 + Appendix C.2: internal-node-width machinery. Prints the
// GHDs for H2 (T1 shape, y = 1), the W1/W2 Steiner packing of the 4-clique,
// the GYO execution trace of H3 (Appendix C.2), and a width survey over
// random query families.
#include "bench_common.h"
#include "ghd/md_ghd.h"
#include "ghd/width.h"
#include "graphalg/steiner.h"
#include "graphalg/topologies.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace topofaq {
namespace {

void PrintTable(bool quick) {
  std::printf("== Figure 2: GHDs of H2, W1/W2 packing, GYO trace of H3 ==\n\n");
  {
    WidthResult w = ComputeWidth(PaperH2());
    std::printf("H2 decomposition (T1 shape, y = %d):\n%s\n", w.internal_nodes,
                w.decomposition.ghd.DebugString().c_str());
    GyoGhd raw = BuildGyoGhd(PaperH2());
    std::printf("raw GYO-GHD before flattening (T2 shape, y = %d)\n\n",
                raw.ghd.InternalNodeCount());
  }
  {
    auto trees = PackSteinerTrees(CliqueTopology(4), {0, 1, 2, 3}, 3, 7);
    std::printf("W1/W2 on G2: packed %zu edge-disjoint Steiner trees "
                "(diameters:", trees.size());
    for (const auto& t : trees) std::printf(" %d", t.terminal_diameter);
    std::printf(")\n\n");
  }
  {
    std::printf("Appendix C.2 GYO trace of H3 (A..H = 0..7):\n%s",
                TraceToString(PaperH3(), GyoReduce(PaperH3())).c_str());
    CoreForest cf = DecomposeCoreForest(PaperH3());
    std::printf("core edges:");
    for (int e : cf.core_edges) std::printf(" e%d", e + 1);
    std::printf("  tree root: e%d  n2 = %d\n\n", cf.root_edges[0] + 1, cf.n2());
  }
  std::printf("width survey over random families (y / n2 / edges):\n");
  Rng rng(5);
  const std::vector<int> sizes =
      quick ? std::vector<int>{5, 8} : std::vector<int>{5, 8, 12};
  for (const char* fam : {"forest", "acyclic-hg", "2-degenerate"}) {
    for (int size : sizes) {
      Hypergraph h = fam[0] == 'f'   ? RandomForest(1, size, &rng)
                     : fam[0] == 'a' ? RandomAcyclicHypergraph(size, 3, &rng)
                                     : RandomDDegenerate(size, 2, &rng);
      WidthResult w = MinimizeWidth(h, 8, size);
      std::printf("  %-13s size=%-3d edges=%-3d y=%-3d n2=%d\n", fam, size,
                  h.num_edges(), w.internal_nodes, w.n2);
    }
  }
  std::printf("\n");
}

void BM_ComputeWidth(benchmark::State& state) {
  Rng rng(1);
  Hypergraph h = RandomAcyclicHypergraph(static_cast<int>(state.range(0)), 3,
                                         &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeWidth(h));
  }
}
BENCHMARK(BM_ComputeWidth)->Arg(8)->Arg(16)->Arg(32);

void BM_GyoReduce(benchmark::State& state) {
  Rng rng(2);
  Hypergraph h = RandomDDegenerate(static_cast<int>(state.range(0)), 3, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GyoReduce(h));
  }
}
BENCHMARK(BM_GyoReduce)->Arg(16)->Arg(64);

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const topofaq::bench::BenchArgs args =
      topofaq::bench::ParseBenchArgs(&argc, argv);
  topofaq::PrintTable(args.quick);
  if (args.quick) return 0;  // smoke mode: reproduction table only
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
