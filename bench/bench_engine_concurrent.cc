// Engine concurrency bench: point-lookup tail latency under heavy load.
//
// The serving claim of src/server/ is isolation: a point lookup entering the
// strict-priority admission queues must not wait behind heavy cyclic
// analytics, even though both multiplex the one process-wide WorkerPool at
// morsel granularity. This bench measures that claim directly:
//
//  * solo phase: K Boolean BCQ path lookups (class kPoint) through an idle
//    Engine — per-query Submit->Wait latency, p50/p99 recorded.
//  * loaded phase: the same K lookups while two background threads keep a
//    heavy triangle query (class kHeavy, capped at heavy_slots in flight)
//    running continuously.
//
// The JSON row (bench="engine_point_p99") maps the shared gate fields onto
// latencies: reference_ms = solo p99, kernel_ms = parallel_ms = loaded p99,
// so the gated "speedup" field is solo_p99 / loaded_p99 — how much of the
// idle-engine tail survives under load. CI floors it (generously — shared
// runners are noisy) via check_bench_regression.py; see ci.yml.
//
// Flags: --quick (CI sizes), --parallelism N / -j N, --out PATH.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_micro_common.h"
#include "hypergraph/generators.h"
#include "server/engine.h"
#include "util/rng.h"

namespace topofaq {
namespace {

using Clock = std::chrono::steady_clock;

FaqQuery<BooleanSemiring> RandomBcq(const Hypergraph& h, size_t n,
                                    uint64_t dom, uint64_t seed) {
  Rng rng(seed);
  std::vector<Relation<BooleanSemiring>> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    Relation<BooleanSemiring> r{Schema(h.edge(e))};
    std::vector<Value> row(h.edge(e).size());
    for (size_t i = 0; i < n; ++i) {
      for (Value& v : row) v = rng.NextU64(dom);
      r.Add(row, 1);
    }
    r.Canonicalize();
    rels.push_back(std::move(r));
  }
  return MakeFaqSS<BooleanSemiring>(h, std::move(rels), {});
}

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Runs `count` sequential point lookups and returns the sorted per-query
/// latencies (Submit -> Wait, the full admission + queue + solve path).
std::vector<double> TimeLookups(Engine& engine,
                                const FaqQuery<BooleanSemiring>& q,
                                int count) {
  std::vector<double> ms;
  ms.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    QueryRequest req;
    req.query = q;
    req.tag = "point";
    const auto t0 = Clock::now();
    auto r = engine.Solve(std::move(req));
    ms.push_back(MsSince(t0));
    TOPOFAQ_CHECK_MSG(r.ok(), "point lookup failed");
    TOPOFAQ_CHECK_MSG(r->klass == QueueClass::kPoint,
                      "lookup not classified kPoint");
  }
  std::sort(ms.begin(), ms.end());
  return ms;
}

double Quantile(const std::vector<double>& sorted_ms, double q) {
  const size_t idx = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ms.size())));
  return sorted_ms[idx];
}

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  using namespace topofaq;
  const auto args = bench::ParseMicroBenchArgs(argc, argv,
                                               "BENCH_engine_concurrent.json");

  EngineOptions opts = EngineOptions::FromEnv();
  opts.parallelism = args.parallelism;
  opts.dispatchers = 2;   // one dispatcher always free for point traffic
  opts.heavy_slots = 1;
  Engine engine(opts);

  // Workload sizes: the point lookup stays under point_input_rows_max (so it
  // classifies kPoint); the triangle load is sized so one heavy query runs
  // for many point-lookup lifetimes. The JSON row is keyed n=100000 — the
  // heavy relation size the gate names — in quick mode too, where only the
  // lookup count shrinks.
  const size_t point_rows = 50000;
  const size_t heavy_rows = 100000;
  const uint64_t heavy_dom = 10000;
  const int lookups = args.quick ? 100 : 300;

  const auto point = RandomBcq(PathGraph(2), point_rows, 1 << 20, 7);
  const auto heavy = RandomBcq(CycleGraph(3), heavy_rows, heavy_dom, 11);

  // Warm the plan cache and fault in both query shapes.
  { auto r = engine.Solve(point); TOPOFAQ_CHECK_MSG(r.ok(), "warmup failed"); }

  const std::vector<double> solo = TimeLookups(engine, point, lookups);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> heavy_done{0};
  std::vector<std::thread> load;
  for (int t = 0; t < 2; ++t)
    load.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        QueryRequest req;
        req.query = heavy;
        req.tag = "heavy-load";
        auto r = engine.Solve(std::move(req));
        TOPOFAQ_CHECK_MSG(r.ok(), "heavy load query failed");
        heavy_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  // Make sure at least one heavy query is actually in flight before timing.
  while (engine.stats().completed < static_cast<int64_t>(solo.size()) + 2)
    std::this_thread::yield();

  const std::vector<double> loaded = TimeLookups(engine, point, lookups);
  stop.store(true);
  for (auto& t : load) t.join();

  const double solo_p50 = Quantile(solo, 0.50), solo_p99 = Quantile(solo, 0.99);
  const double load_p50 = Quantile(loaded, 0.50);
  const double load_p99 = Quantile(loaded, 0.99);
  std::printf("parallelism %d, %d lookups, %lld heavy queries completed "
              "during loaded phase\n",
              args.parallelism, lookups,
              static_cast<long long>(heavy_done.load()));
  std::printf("%-18s %9s %9s\n", "phase", "p50_ms", "p99_ms");
  std::printf("%-18s %9.3f %9.3f\n", "solo", solo_p50, solo_p99);
  std::printf("%-18s %9.3f %9.3f\n", "under-heavy-load", load_p50, load_p99);
  std::printf("isolation (solo_p99 / loaded_p99): %.3fx\n",
              solo_p99 / load_p99);

  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\": \"engine_point_p99\", \"n\": %zu, "
                "\"out_rows\": %d, \"kernel_ms\": %.4f, "
                "\"parallel_ms\": %.4f, \"parallelism\": %d, "
                "\"reference_ms\": %.4f, \"speedup\": %.3f, "
                "\"par_speedup\": 1.0, \"bytes_resident\": 0}",
                heavy_rows, lookups, load_p99, load_p99, args.parallelism,
                solo_p99, solo_p99 / load_p99);
  bench::WriteJsonRows({std::string(buf)}, args.out_path);
  return 0;
}
