// Table 1, row 2 — FAQ on arbitrary G, d = O(1), r = O(1), gap O~(1).
// The same constant-degeneracy queries across clique / grid / tree / random
// topologies: better-connected G lowers both the measured rounds and the
// formulas together, keeping the gap O~(1).
#include "bench_common.h"

namespace topofaq {
namespace {

void PrintTable(bool quick) {
  std::printf("== Table 1 / row 2: FAQ, arbitrary G, d = O(1), r = O(1) ==\n\n");
  bench::PrintRowHeader();
  const int n = quick ? 128 : 256;
  Rng rng(22);
  Hypergraph star = StarGraph(4);
  auto q = MakeFaqSS<CountingSemiring>(
      star, bench::FullOverlapRelations<CountingSemiring>(star, n), {0});
  bench::ReportRow("star4 on line(5)", q, LineTopology(5), n);
  if (!quick) {
    bench::ReportRow("star4 on ring(6)", q, RingTopology(6), n);
    bench::ReportRow("star4 on grid(2x3)", q, GridTopology(2, 3), n);
    bench::ReportRow("star4 on tree(2,2)", q, BalancedTreeTopology(2, 2), n);
  }
  bench::ReportRow("star4 on clique(5)", q, CliqueTopology(5), n);
  bench::ReportRow("star4 on random(6)", q,
                   RandomConnectedTopology(6, 4, &rng), n);

  Hypergraph tree = RandomForest(1, 5, &rng);
  auto q2 = MakeBcq(tree, bench::FullOverlapRelations<BooleanSemiring>(tree, n));
  bench::ReportRow("tree5 on line(5)", q2, LineTopology(5), n);
  bench::ReportRow("tree5 on clique(5)", q2, CliqueTopology(5), n);
  std::printf("\n");
}

void BM_StarFaqOnClique(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Hypergraph star = StarGraph(4);
  auto q = MakeFaqSS<CountingSemiring>(
      star, bench::FullOverlapRelations<CountingSemiring>(star, n), {0});
  DistInstance<CountingSemiring> inst;
  inst.query = q;
  inst.topology = CliqueTopology(5);
  inst.owners = RoundRobinOwners(4, 5);
  inst.sink = 0;
  for (auto _ : state) {
    auto res = RunCoreForestProtocol(inst);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_StarFaqOnClique)->Arg(256);

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const topofaq::bench::BenchArgs args =
      topofaq::bench::ParseBenchArgs(&argc, argv);
  topofaq::PrintTable(args.quick);
  if (args.quick) return 0;  // smoke mode: reproduction table only
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
