// Appendix A: instantiating our model on the MPC(0) topology G' (k player
// nodes, each wired to a p-clique). With per-edge capacity L/k the star
// query completes in O(1)-ish rounds via the p parallel 2-hop Steiner trees
// (Appendix A.1.4); forests take O(D') star phases.
#include "bench_common.h"

namespace topofaq {
namespace {

void PrintTable(bool quick) {
  std::printf("== Appendix A: MPC(0) topology G'(k players + p-clique) ==\n\n");
  std::printf("%-24s %6s %6s %10s %10s\n", "instance", "p", "cap",
              "measured", "trivial");
  const int n = quick ? 128 : 256;
  Hypergraph star = StarGraph(4);  // k = 4 relations
  const std::vector<int> ps =
      quick ? std::vector<int>{2, 4} : std::vector<int>{2, 4, 8};
  for (int p : ps) {
    // Edge capacity models L/k with L = Θ(kN/p): capacity ≈ N/p per round
    // in value units; we use bits: tuple_bits * N / p.
    DistInstance<BooleanSemiring> inst;
    inst.query =
        MakeBcq(star, bench::FullOverlapRelations<BooleanSemiring>(star, n));
    inst.topology = MpcZeroTopology(4, p);
    inst.owners = {0, 1, 2, 3};
    inst.sink = 0;
    inst.capacity_bits = std::min<int64_t>(65535, 19LL * n / p);
    ProtocolStats stats;
    auto ans = RunBcqProtocol(inst, &stats);
    auto trivial = RunTrivialProtocol(inst);
    char label[64];
    std::snprintf(label, sizeof(label), "star4 on G'(4,%d)", p);
    std::printf("%-24s %6d %6lld %10lld %10lld\n", label, p,
                static_cast<long long>(inst.capacity_bits),
                ans.ok() ? static_cast<long long>(stats.rounds) : -1,
                trivial.ok()
                    ? static_cast<long long>(trivial->stats.rounds)
                    : -1);
  }
  std::printf("\nWith MPC-style node capacity L = Θ(kN/p) the star completes "
              "in O(1) rounds,\nmatching the one-round MPC(0) protocols of "
              "Beame-Koutris-Suciu (Appendix A.1.4).\n\n");

  std::printf("%-24s %6s %6s %10s\n", "forest depth sweep", "p", "cap",
              "measured");
  Rng rng(4);
  const std::vector<int> depths =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 3};
  for (int depth : depths) {
    // A path-of-stars forest with growing depth D'.
    Hypergraph h = PathGraph(2 * depth);
    DistInstance<BooleanSemiring> inst;
    inst.query = MakeBcq(h, bench::FullOverlapRelations<BooleanSemiring>(h, n));
    inst.topology = MpcZeroTopology(h.num_edges(), 4);
    inst.owners = RoundRobinOwners(h.num_edges(), h.num_edges());
    inst.sink = 0;
    inst.capacity_bits = std::min<int64_t>(65535, 19LL * n / 4);
    ProtocolStats stats;
    auto ans = RunBcqProtocol(inst, &stats);
    char label[64];
    std::snprintf(label, sizeof(label), "path(%d) D'=%d", 2 * depth, depth);
    std::printf("%-24s %6d %6lld %10lld\n", label, 4,
                static_cast<long long>(inst.capacity_bits),
                ans.ok() ? static_cast<long long>(stats.rounds) : -1);
  }
  std::printf("\nRounds grow with the query diameter D' (the Appendix A.1.4 "
              "forest bound),\nnot with N.\n\n");
}

void BM_MpcStar(benchmark::State& state) {
  Hypergraph star = StarGraph(4);
  DistInstance<BooleanSemiring> inst;
  inst.query =
      MakeBcq(star, bench::FullOverlapRelations<BooleanSemiring>(star, 256));
  inst.topology = MpcZeroTopology(4, static_cast<int>(state.range(0)));
  inst.owners = {0, 1, 2, 3};
  inst.sink = 0;
  inst.capacity_bits = 19LL * 256 / state.range(0);
  for (auto _ : state) {
    ProtocolStats stats;
    auto ans = RunBcqProtocol(inst, &stats);
    benchmark::DoNotOptimize(ans);
  }
}
BENCHMARK(BM_MpcStar)->Arg(4)->Arg(8);

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const topofaq::bench::BenchArgs args =
      topofaq::bench::ParseBenchArgs(&argc, argv);
  topofaq::PrintTable(args.quick);
  if (args.quick) return 0;  // smoke mode: reproduction table only
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
