// Figure 1 + Examples 2.1–2.3: the toy query H0 and star H1 computed on the
// line G1 and the clique G2. Expected shapes: ~N+2 on the line (Examples
// 2.1/2.2), ~N/2+2 on the clique (Example 2.3), trivial ~3N (Example 2.1's
// 3N+2 comparison).
#include "bench_common.h"

namespace topofaq {
namespace {

void PrintTable(bool quick) {
  std::printf("== Figure 1 / Examples 2.1-2.3: H0 and H1 on G1 and G2 ==\n\n");
  std::printf("%-26s %10s %10s %14s\n", "instance", "measured", "trivial",
              "paper shape");
  const std::vector<int> ns =
      quick ? std::vector<int>{256} : std::vector<int>{256, 512};
  for (int n : ns) {
    // Example 2.1: H0 (four self-loops) on the line G1.
    {
      Hypergraph h = PaperH0();
      DistInstance<BooleanSemiring> inst;
      inst.query =
          MakeBcq(h, bench::FullOverlapRelations<BooleanSemiring>(h, n));
      inst.topology = LineTopology(4);
      inst.owners = {0, 1, 2, 3};
      inst.sink = 3;
      ProtocolStats stats;
      auto ans = RunBcqProtocol(inst, &stats);
      auto trivial = RunTrivialProtocol(inst);
      char label[64], shape[32];
      std::snprintf(label, sizeof(label), "Ex2.1 H0 on G1, N=%d", n);
      std::snprintf(shape, sizeof(shape), "N+2 = %d", n + 2);
      std::printf("%-26s %10lld %10lld %14s %s\n", label,
                  ans.ok() ? static_cast<long long>(stats.rounds) : -1,
                  trivial.ok() ? static_cast<long long>(trivial->stats.rounds)
                               : -1,
                  shape, ans.ok() && *ans ? "" : "(!)");
    }
    // Examples 2.2/2.3: star H1 on G1 (line) and G2 (clique), sink P2.
    for (bool clique : {false, true}) {
      Hypergraph h = PaperH1();
      DistInstance<BooleanSemiring> inst;
      inst.query =
          MakeBcq(h, bench::FullOverlapRelations<BooleanSemiring>(h, n));
      inst.topology = clique ? CliqueTopology(4) : LineTopology(4);
      inst.owners = {0, 1, 2, 3};
      inst.sink = 1;
      ProtocolStats stats;
      auto ans = RunBcqProtocol(inst, &stats);
      auto trivial = RunTrivialProtocol(inst);
      char label[64], shape[32];
      std::snprintf(label, sizeof(label), "Ex2.%d H1 on %s, N=%d",
                    clique ? 3 : 2, clique ? "G2" : "G1", n);
      if (clique)
        std::snprintf(shape, sizeof(shape), "N/2+2 = %d", n / 2 + 2);
      else
        std::snprintf(shape, sizeof(shape), "N+2 = %d", n + 2);
      std::printf("%-26s %10lld %10lld %14s\n", label,
                  ans.ok() ? static_cast<long long>(stats.rounds) : -1,
                  trivial.ok() ? static_cast<long long>(trivial->stats.rounds)
                               : -1,
                  shape);
    }
  }
  std::printf(
      "\n(measured counts include the Algorithm 1 broadcast, so absolute\n"
      "values carry a ~2x constant; the line/clique ratio and N-scaling are\n"
      "the reproduced quantities.)\n\n");
}

void BM_Example23Clique(benchmark::State& state) {
  Hypergraph h = PaperH1();
  DistInstance<BooleanSemiring> inst;
  inst.query = MakeBcq(h, bench::FullOverlapRelations<BooleanSemiring>(h, 512));
  inst.topology = CliqueTopology(4);
  inst.owners = {0, 1, 2, 3};
  inst.sink = 1;
  for (auto _ : state) {
    ProtocolStats stats;
    auto ans = RunBcqProtocol(inst, &stats);
    benchmark::DoNotOptimize(ans);
  }
}
BENCHMARK(BM_Example23Clique);

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const topofaq::bench::BenchArgs args =
      topofaq::bench::ParseBenchArgs(&argc, argv);
  topofaq::PrintTable(args.quick);
  if (args.quick) return 0;  // smoke mode: reproduction table only
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
