// Table 1, row 5 — MCM on the line, gap O(1): the sequential protocol's
// measured rounds divided by the Theorem 6.4 lower bound k·N stay a small
// constant across the whole k <= N sweep.
#include "bench_common.h"
#include "lowerbounds/bounds.h"
#include "mcm/protocols.h"

namespace topofaq {
namespace {

McmInstance MakeInstance(int k, int n, uint64_t seed) {
  Rng rng(seed);
  McmInstance inst;
  inst.x = BitVector::Random(n, &rng);
  for (int i = 0; i < k; ++i)
    inst.matrices.push_back(BitMatrix::Random(n, &rng));
  return inst;
}

void PrintTable(bool quick) {
  std::printf("== Table 1 / row 5: MCM on the line, gap O(1) ==\n\n");
  std::printf("%5s %5s %10s %10s %8s %8s\n", "k", "N", "measured",
              "LB=k*N", "gap", "correct");
  const std::vector<std::pair<int, int>> sweep =
      quick ? std::vector<std::pair<int, int>>{{2, 64}, {8, 64}, {16, 64}}
            : std::vector<std::pair<int, int>>{{2, 64},   {4, 64},  {8, 64},
                                               {16, 64},  {16, 128},
                                               {32, 128}, {64, 128}};
  for (auto [k, n] : sweep) {
    McmInstance inst = MakeInstance(k, n, 55 + k);
    McmResult r = RunMcmSequential(inst);
    McmBounds b = ComputeMcmBounds(k, n);
    const bool ok = r.y == ChainApply(inst.matrices, inst.x);
    std::printf("%5d %5d %10lld %10lld %8.3f %8s\n", k, n,
                static_cast<long long>(r.rounds),
                static_cast<long long>(b.lower),
                static_cast<double>(r.rounds) / static_cast<double>(b.lower),
                ok ? "ok" : "NO");
  }
  std::printf("\nThe gap stays (k+1)/k -> 1: matching upper (Prop 6.1) and "
              "lower (Thm 6.4) bounds.\n\n");
}

void BM_McmSequential(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  McmInstance inst = MakeInstance(k, 64, 99);
  for (auto _ : state) {
    McmResult r = RunMcmSequential(inst);
    benchmark::DoNotOptimize(r);
    state.counters["rounds"] = static_cast<double>(r.rounds);
  }
}
BENCHMARK(BM_McmSequential)->Arg(8)->Arg(32);

void BM_F2MatVec(benchmark::State& state) {
  Rng rng(3);
  BitMatrix a = BitMatrix::Random(256, &rng);
  BitVector x = BitVector::Random(256, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Apply(x));
  }
}
BENCHMARK(BM_F2MatVec);

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const topofaq::bench::BenchArgs args =
      topofaq::bench::ParseBenchArgs(&argc, argv);
  topofaq::PrintTable(args.quick);
  if (args.quick) return 0;  // smoke mode: reproduction table only
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
