// Section 6.2 machinery: (a) the inner-product extractor distance vs the
// Theorem H.9 bound 2^{-Δn/2-1}; (b) matrix-vector min-entropy propagation
// (Theorem 6.3) for leaked matrices; (c) the Appendix I.3 Shannon-entropy
// counterexample numbers.
#include "bench_common.h"
#include "entropy/extractor.h"
#include "entropy/matrix_entropy.h"

namespace topofaq {
namespace {

void PrintTable(bool quick) {
  std::printf("== Theorem H.9: inner-product extractor ==\n\n");
  std::printf("%4s %4s %4s %8s %12s %12s\n", "n", "k1", "k2", "delta",
              "distance", "2^(-dn/2-1)");
  Rng rng(123);
  const int n = quick ? 12 : 14;
  const std::vector<int> ks = quick ? std::vector<int>{8, 12}
                                    : std::vector<int>{8, 10, 12, 13, 14};
  for (int k : ks) {
    ExtractorResult r = InnerProductExperiment(n, k, n, &rng);
    std::printf("%4d %4d %4d %8.3f %12.3e %12.3e\n", r.n, r.k1, r.k2, r.delta,
                r.distance, r.theorem_bound);
  }

  std::printf("\n== Theorem 6.3: H_inf(Ax) for gamma-leaked A ==\n\n");
  std::printf("%6s %6s %8s %10s %14s\n", "m", "n", "gamma", "H(Ax)",
              "(1-sqrt(2g))m");
  const std::vector<double> gammas =
      quick ? std::vector<double>{0.0, 0.1}
            : std::vector<double>{0.0, 0.02, 0.05, 0.1, 0.2};
  for (double gamma : gammas) {
    Rng r2(55);
    auto res = MatrixVectorExperiment(12, 14, gamma, 8, &r2);
    std::printf("%6d %6d %8.2f %10.3f %14.3f\n", res.m, res.n, res.gamma,
                res.hinf_ax, res.theorem_floor);
  }

  std::printf("\n== Appendix I.3: why Shannon entropy fails ==\n\n");
  std::printf("%6s %8s %10s %16s\n", "n", "alpha", "H(x)", "H(Ax|f(A)) <=");
  for (double alpha : {0.1, 0.25, 0.4}) {
    auto c = ShannonCounterexampleNumbers(200, alpha);
    std::printf("%6d %8.2f %10.1f %16.1f\n", c.n, c.alpha, c.h_x,
                c.h_ax_given_leak);
  }
  std::printf("\nShannon entropy can drop by ~2x after a single leak, so the\n"
              "Lemma 6.2 induction needs min-entropy (which the Theorem 6.3\n"
              "floor above preserves).\n\n");
}

void BM_InnerProductExtractor(benchmark::State& state) {
  Rng rng(7);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(InnerProductExperiment(n, n - 1, n, &rng));
  }
}
BENCHMARK(BM_InnerProductExtractor)->Arg(10)->Arg(14);

void BM_MatrixVectorEntropy(benchmark::State& state) {
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatrixVectorExperiment(12, 14, 0.05, 8, &rng));
  }
}
BENCHMARK(BM_MatrixVectorEntropy);

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const topofaq::bench::BenchArgs args =
      topofaq::bench::ParseBenchArgs(&argc, argv);
  topofaq::PrintTable(args.quick);
  if (args.quick) return 0;  // smoke mode: reproduction table only
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
