// Table 1, row 4 — FAQ on arbitrary G for d-degenerate hypergraphs of arity
// r, gap O~(d²r²) (Theorems 5.2 / F.1). Sweeps (d, r).
#include "bench_common.h"

#include "hypergraph/degeneracy.h"

namespace topofaq {
namespace {

void PrintTable(bool quick) {
  std::printf(
      "== Table 1 / row 4: FAQ, arbitrary G, (d, r)-hypergraphs, gap "
      "O~(d^2 r^2) ==\n\n");
  bench::PrintRowHeader();
  const int n = quick ? 64 : 96;
  const std::vector<int> rs =
      quick ? std::vector<int>{2, 3} : std::vector<int>{2, 3, 4};
  for (int r : rs) {
    for (int d : {1, 2}) {
      Rng rng(500 + 10 * r + d);
      Hypergraph h = RandomHypergraph(8, d, r, &rng);
      auto q = MakeBcq(h, bench::RandomBoolRelations(h, n, 3, &rng));
      char label[64];
      std::snprintf(label, sizeof(label), "r=%d d=%d clique", r, d);
      bench::ReportRow(label, q, CliqueTopology(6), n);
    }
  }
  // Acyclic hypergraph FAQ with a counting aggregate.
  const std::vector<int> acyclic_rs =
      quick ? std::vector<int>{3} : std::vector<int>{3, 4};
  for (int r : acyclic_rs) {
    Rng rng(700 + r);
    Hypergraph h = RandomAcyclicHypergraph(5, r, &rng);
    auto q = MakeFaqSS<NaturalSemiring>(
        h, bench::FullOverlapRelations<NaturalSemiring>(h, n), {});
    char label[64];
    std::snprintf(label, sizeof(label), "acyclic r=%d count", r);
    bench::ReportRow(label, q, GridTopology(2, 3), n);
  }
  std::printf("\n");
}

void BM_HypergraphFaq(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  Rng rng(500 + 10 * r + 1);
  Hypergraph h = RandomHypergraph(8, 1, r, &rng);
  auto q = MakeBcq(h, bench::RandomBoolRelations(h, 96, 3, &rng));
  DistInstance<BooleanSemiring> inst;
  inst.query = q;
  inst.topology = CliqueTopology(6);
  inst.owners = RoundRobinOwners(h.num_edges(), 6);
  inst.sink = 0;
  for (auto _ : state) {
    auto res = RunCoreForestProtocol(inst);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_HypergraphFaq)->Arg(3)->Arg(4);

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const topofaq::bench::BenchArgs args =
      topofaq::bench::ParseBenchArgs(&argc, argv);
  topofaq::PrintTable(args.quick);
  if (args.quick) return 0;  // smoke mode: reproduction table only
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
