// Shared helpers for the reproduction benches. Each bench binary prints the
// paper-shaped table first, then runs google-benchmark kernels for the
// underlying primitives (so `./bench_x` gives both the reproduction rows and
// machine timings).
#ifndef TOPOFAQ_BENCH_BENCH_COMMON_H_
#define TOPOFAQ_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>

#include "faq/solvers.h"
#include "graphalg/topologies.h"
#include "hypergraph/generators.h"
#include "lowerbounds/bounds.h"
#include "protocols/distributed.h"
#include "util/rng.h"

namespace topofaq {
namespace bench {

/// Relations with N tuples each and a fully overlapping first attribute
/// (the Example 2.1/2.2 worst-case-style workload).
template <CommutativeSemiring S>
std::vector<Relation<S>> FullOverlapRelations(const Hypergraph& h, int n) {
  std::vector<Relation<S>> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    Relation<S> r{Schema(h.edge(e))};
    for (int i = 0; i < n; ++i) {
      std::vector<Value> row(h.edge(e).size(), 1);
      row[0] = static_cast<Value>(i);
      r.Add(row, S::One());
    }
    r.Canonicalize();
    rels.push_back(std::move(r));
  }
  return rels;
}

/// Random Boolean relations (N tuples drawn from a domain of size `dom`).
inline std::vector<Relation<BooleanSemiring>> RandomBoolRelations(
    const Hypergraph& h, int n, uint64_t dom, Rng* rng) {
  std::vector<Relation<BooleanSemiring>> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    Relation<BooleanSemiring> r{Schema(h.edge(e))};
    for (int i = 0; i < n; ++i) {
      std::vector<Value> row;
      for (size_t j = 0; j < h.edge(e).size(); ++j)
        row.push_back(rng->NextU64(dom));
      r.Add(row, 1);
    }
    r.Canonicalize();
    rels.push_back(std::move(r));
  }
  return rels;
}

/// Runs the structured protocol + trivial protocol + bound formulas for one
/// (query, topology) pair and prints a row.
template <CommutativeSemiring S>
void ReportRow(const char* label, const FaqQuery<S>& query, Graph topology,
               int n) {
  DistInstance<S> inst;
  inst.query = query;
  inst.topology = std::move(topology);
  inst.owners = RoundRobinOwners(query.hypergraph.num_edges(),
                                 inst.topology.num_nodes());
  inst.sink = 0;
  auto smart = RunCoreForestProtocol(inst);
  auto trivial = RunTrivialProtocol(inst);
  if (!smart.ok() || !trivial.ok()) {
    std::printf("%-22s ERROR: %s\n", label,
                (!smart.ok() ? smart.status() : trivial.status())
                    .ToString()
                    .c_str());
    return;
  }
  BoundBreakdown b =
      ComputeBounds(query.hypergraph, inst.topology, inst.Players(), n);
  const bool correct = smart->answer.EqualsAsFunction(trivial->answer);
  std::printf(
      "%-22s %8lld %9lld %9lld %9lld %7.2f  %s\n", label,
      static_cast<long long>(smart->stats.rounds),
      static_cast<long long>(trivial->stats.rounds),
      static_cast<long long>(b.upper_total),
      static_cast<long long>(b.lower_bound),
      static_cast<double>(smart->stats.rounds) /
          static_cast<double>(std::max<int64_t>(1, b.lower_bound)),
      correct ? "ok" : "MISMATCH");
}

inline void PrintRowHeader() {
  std::printf("%-22s %8s %9s %9s %9s %7s\n", "instance", "measured",
              "trivial", "UB-form", "LB-form", "gap");
}

}  // namespace bench
}  // namespace topofaq

#endif  // TOPOFAQ_BENCH_BENCH_COMMON_H_
