// Shared helpers for the reproduction benches. Each bench binary prints the
// paper-shaped table first, then runs google-benchmark kernels for the
// underlying primitives (so `./bench_x` gives both the reproduction rows and
// machine timings). Every bench accepts the shared flags parsed by
// ParseBenchArgs below; in particular `--quick` trims every bench to a
// CI-smoke-sized workload.
#ifndef TOPOFAQ_BENCH_BENCH_COMMON_H_
#define TOPOFAQ_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "graphalg/topologies.h"
#include "hypergraph/generators.h"
#include "lowerbounds/bounds.h"
#include "obs/format.h"
#include "protocols/distributed.h"
#include "relation/parallel.h"
#include "server/engine.h"
#include "util/rng.h"

namespace topofaq {
namespace bench {

/// The process-wide engine every bench verifies against: Engine::Solve's
/// centralized answer is the oracle for the protocol outputs, and repeated
/// rows over one query shape exercise the plan cache the way a serving
/// workload would.
inline Engine& BenchEngine() {
  static Engine engine{EngineOptions::FromEnv()};
  return engine;
}

/// Flags shared by every bench binary.
struct BenchArgs {
  /// CI smoke mode: smallest workload sizes, skip the google-benchmark
  /// kernels, just prove the bench runs and the numbers are sane.
  bool quick = false;
  /// Kernel parallelism for this process (0 = leave the TOPOFAQ_PARALLELISM
  /// / default-of-1 resolution alone).
  int parallelism = 0;
  /// Print the full per-row protocol stats block (obs::FormatProtocolStats)
  /// under each reproduction row.
  bool verbose = false;
};

/// Set by ParseBenchArgs from --verbose; read by ReportRow.
inline bool g_verbose_stats = false;

/// Strips the shared flags (--quick, --verbose, --parallelism N / -j N) out
/// of argc/argv — remaining flags flow on to benchmark::Initialize. A
/// --parallelism request is exported through the TOPOFAQ_PARALLELISM
/// environment variable so every ExecContext the bench (or the protocol
/// layer beneath it) creates picks it up.
inline BenchArgs ParseBenchArgs(int* argc, char** argv) {
  BenchArgs args;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      args.verbose = true;
      g_verbose_stats = true;
    } else if ((std::strcmp(argv[i], "--parallelism") == 0 ||
                std::strcmp(argv[i], "-j") == 0) &&
               i + 1 < *argc) {
      args.parallelism = std::atoi(argv[++i]);
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  if (args.parallelism > 0) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", args.parallelism);
    setenv("TOPOFAQ_PARALLELISM", buf, 1);
  }
  return args;
}

/// Relations with N tuples each and a fully overlapping first attribute
/// (the Example 2.1/2.2 worst-case-style workload). Rows are appended in
/// sorted order, so the builder certifies them canonical without a sort.
template <CommutativeSemiring S>
std::vector<Relation<S>> FullOverlapRelations(const Hypergraph& h, int n) {
  std::vector<Relation<S>> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    RelationBuilder<S> b{Schema(h.edge(e))};
    b.Reserve(static_cast<size_t>(n));
    std::vector<Value> row(h.edge(e).size(), 1);
    for (int i = 0; i < n; ++i) {
      row[0] = static_cast<Value>(i);
      b.Append(row, S::One());
    }
    rels.push_back(b.Build());
  }
  return rels;
}

/// Random Boolean relations (N tuples drawn from a domain of size `dom`).
inline std::vector<Relation<BooleanSemiring>> RandomBoolRelations(
    const Hypergraph& h, int n, uint64_t dom, Rng* rng) {
  std::vector<Relation<BooleanSemiring>> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    RelationBuilder<BooleanSemiring> b{Schema(h.edge(e))};
    b.Reserve(static_cast<size_t>(n));
    std::vector<Value> row(h.edge(e).size());
    for (int i = 0; i < n; ++i) {
      for (size_t j = 0; j < row.size(); ++j) row[j] = rng->NextU64(dom);
      b.Append(row, 1);
    }
    rels.push_back(b.Build());
  }
  return rels;
}

/// Runs the structured protocol + trivial protocol + bound formulas for one
/// (query, topology) pair and prints a row.
template <CommutativeSemiring S>
void ReportRow(const char* label, const FaqQuery<S>& query, Graph topology,
               int n) {
  DistInstance<S> inst;
  inst.query = query;
  inst.topology = std::move(topology);
  inst.owners = RoundRobinOwners(query.hypergraph.num_edges(),
                                 inst.topology.num_nodes());
  inst.sink = 0;
  auto smart = RunCoreForestProtocol(inst);
  auto trivial = RunTrivialProtocol(inst);
  if (!smart.ok() || !trivial.ok()) {
    std::printf("%-22s ERROR: %s\n", label,
                (!smart.ok() ? smart.status() : trivial.status())
                    .ToString()
                    .c_str());
    return;
  }
  BoundBreakdown b =
      ComputeBounds(query.hypergraph, inst.topology, inst.Players(), n);
  // Both protocol outputs must match the engine's centralized answer (which
  // itself is solver-independent — tests/engine_test.cc pins it to the
  // brute-force oracle bit for bit).
  auto central = BenchEngine().Solve(query);
  const bool correct = central.ok() &&
                       smart->answer.EqualsAsFunction(*central) &&
                       trivial->answer.EqualsAsFunction(*central);
  const OpStats& k = smart->stats.kernel;
  std::printf(
      "%-22s %8lld %9lld %9lld %9lld %7.2f %8lld %7lld  %s\n", label,
      static_cast<long long>(smart->stats.rounds),
      static_cast<long long>(trivial->stats.rounds),
      static_cast<long long>(b.upper_total),
      static_cast<long long>(b.lower_bound),
      static_cast<double>(smart->stats.rounds) /
          static_cast<double>(std::max<int64_t>(1, b.lower_bound)),
      static_cast<long long>(k.rows_out),
      static_cast<long long>(k.sort_skips),
      correct ? "ok" : "MISMATCH");
  if (g_verbose_stats) {
    std::printf("  [core-forest] %s",
                obs::FormatProtocolStats(smart->stats).c_str());
    std::printf("  [trivial]     %s",
                obs::FormatProtocolStats(trivial->stats).c_str());
  }
}

inline void PrintRowHeader() {
  std::printf("%-22s %8s %9s %9s %9s %7s %8s %7s\n", "instance", "measured",
              "trivial", "UB-form", "LB-form", "gap", "k-rows", "k-skip");
}

}  // namespace bench
}  // namespace topofaq

#endif  // TOPOFAQ_BENCH_BENCH_COMMON_H_
