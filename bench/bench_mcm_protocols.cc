// Proposition 6.1 vs Appendix I.1 vs the trivial protocol: the MCM
// crossover. Sequential wins for k <= N; the merge protocol's
// O(N² log k + k) takes over for k >> N; trivial is always Θ(kN²).
#include "bench_common.h"
#include "lowerbounds/bounds.h"
#include "mcm/protocols.h"

namespace topofaq {
namespace {

McmInstance MakeInstance(int k, int n, uint64_t seed) {
  Rng rng(seed);
  McmInstance inst;
  inst.x = BitVector::Random(n, &rng);
  for (int i = 0; i < k; ++i)
    inst.matrices.push_back(BitMatrix::Random(n, &rng));
  return inst;
}

void PrintTable(bool quick) {
  std::printf("== MCM protocol comparison (Prop 6.1 / App I.1 / trivial) ==\n\n");
  std::printf("%5s %5s | %10s %10s %10s | winner\n", "k", "N", "sequential",
              "merge", "trivial");
  const int n = 24;
  const std::vector<int> ks =
      quick ? std::vector<int>{2, 8, 32}
            : std::vector<int>{2, 4, 8, 16, 32, 64, 128, 256};
  for (int k : ks) {
    McmInstance inst = MakeInstance(k, n, 1000 + k);
    McmResult seq = RunMcmSequential(inst);
    McmResult mrg = RunMcmMerge(inst);
    // Trivial is simulated only for small k (it is Θ(kN²) rounds).
    int64_t trivial_rounds = -1;
    if (k <= 32) trivial_rounds = RunMcmTrivial(inst).rounds;
    const char* winner = seq.rounds <= mrg.rounds ? "sequential" : "merge";
    std::printf("%5d %5d | %10lld %10lld %10lld | %s\n", k, n,
                static_cast<long long>(seq.rounds),
                static_cast<long long>(mrg.rounds),
                static_cast<long long>(trivial_rounds), winner);
  }
  std::printf("\nCrossover near N^2·log(k)/N ≈ N·log k, i.e. k slightly above "
              "N — matching\nProp 6.1 (k <= N: sequential optimal) and "
              "App I.1 (k >> N: merge wins).\n\n");
}

void BM_McmMerge(benchmark::State& state) {
  McmInstance inst = MakeInstance(static_cast<int>(state.range(0)), 24, 77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunMcmMerge(inst));
  }
}
BENCHMARK(BM_McmMerge)->Arg(16)->Arg(64);

void BM_F2MatMul(benchmark::State& state) {
  Rng rng(5);
  BitMatrix a = BitMatrix::Random(static_cast<int>(state.range(0)), &rng);
  BitMatrix b = BitMatrix::Random(static_cast<int>(state.range(0)), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(b));
  }
}
BENCHMARK(BM_F2MatMul)->Arg(64)->Arg(256);

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const topofaq::bench::BenchArgs args =
      topofaq::bench::ParseBenchArgs(&argc, argv);
  topofaq::PrintTable(args.quick);
  if (args.quick) return 0;  // smoke mode: reproduction table only
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
