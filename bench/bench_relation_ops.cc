// Sorted-relation kernel microbenchmark: join and eliminate throughput at
// 1e3–1e6 rows, for the sort-merge kernel (relation/ops.h) — serial and
// morsel-parallel — vs. the retained hash-based reference
// (relation/reference_ops.h). Results are printed as a table and appended as
// JSON to BENCH_relation_ops.json so the perf trajectory of the kernel is
// recorded across PRs; bench/check_bench_regression.py gates CI on it.
//
// Workloads:
//  * join: R(0,1) ⋈ S(1,2), N rows each, domain ~N (output ~N rows).
//  * join_overlap: the Example 2.1-style full-overlap join (heavy runs).
//  * eliminate: ⊕-eliminate 2 of 3 columns of an N-row relation (FAQ-SS
//    push-down shape — one batched group-by vs. per-variable regrouping).
//  * scan: annotation-weighted fold over one key column of a 3-column
//    relation — the columnar layout (contiguous column) against the same
//    fold over a row-major materialization (stride = arity). The direct
//    columnar-vs-rowmajor measurement the CI floor gates.
//  * probe: random full-row gathers — the access pattern where row-major
//    wins (one contiguous row vs. one cache line per column); recorded so
//    the layout tradeoff stays visible, not gated.
//
// Flags: --quick (CI sizes), --parallelism N / -j N (default: every core),
// --out PATH (JSON destination). Each bench runs the kernel at parallelism 1
// and at the requested parallelism and CHECKs the outputs byte-identical.
#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_micro_common.h"
#include "relation/exec.h"
#include "relation/ops.h"
#include "relation/reference_ops.h"
#include "util/rng.h"

namespace topofaq {
namespace {

using NRel = Relation<NaturalSemiring>;
using bench::TimeMs;

int g_parallelism = 1;

NRel RandomRel(const std::vector<VarId>& vars, size_t n, uint64_t dom,
               uint64_t seed) {
  Rng rng(seed);
  Relation<NaturalSemiring> r{Schema(vars)};
  std::vector<Value> row(vars.size());
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = rng.NextU64(dom);
    r.Add(row, rng.NextU64(100) + 1);
  }
  r.Canonicalize();
  return r;
}

struct Row {
  std::string bench;
  size_t n;
  size_t out_rows;
  double kernel_ms;    // serial kernel (parallelism 1)
  double parallel_ms;  // kernel at g_parallelism workers
  double reference_ms;
};

void Report(std::vector<Row>* rows, std::string bench, size_t n,
            size_t out_rows, double kernel_ms, double parallel_ms,
            double reference_ms) {
  std::printf("%-14s %9zu %9zu %10.3f %10.3f %12.3f %7.2fx %7.2fx\n",
              bench.c_str(), n, out_rows, kernel_ms, parallel_ms,
              reference_ms, reference_ms / kernel_ms,
              kernel_ms / parallel_ms);
  rows->push_back(Row{std::move(bench), n, out_rows, kernel_ms, parallel_ms,
                      reference_ms});
}

/// Times `fn(&ctx)` at parallelism 1 and at g_parallelism; checks outputs
/// byte-identical; returns {serial_ms, parallel_ms, serial_out}.
template <typename Fn>
std::tuple<double, double, NRel> TimeKernel(int reps, const char* what,
                                            Fn&& fn) {
  ExecContext serial;
  serial.parallelism = 1;
  NRel out1;
  const double k1 = TimeMs(reps, [&] { out1 = fn(&serial); });
  double kp = k1;
  if (g_parallelism > 1) {
    ExecContext par;
    par.parallelism = g_parallelism;
    NRel outp;
    kp = TimeMs(reps, [&] { outp = fn(&par); });
    bench::CheckIdentical(out1, outp, what);
  }
  return {k1, kp, std::move(out1)};
}

void BenchJoin(std::vector<Row>* rows, size_t n, int reps) {
  // Domain ~n keeps the output near n rows (sparse, realistic shape).
  const uint64_t dom = std::max<uint64_t>(4, n);
  NRel r = RandomRel({0, 1}, n, dom, 17 + n);
  NRel s = RandomRel({1, 2}, n, dom, 71 + n);
  auto [k1, kp, out] =
      TimeKernel(reps, "join", [&](ExecContext* cx) { return Join(r, s, cx); });
  NRel ref;
  const double h = TimeMs(reps, [&] { ref = reference::Join(r, s); });
  TOPOFAQ_CHECK_MSG(out.EqualsAsFunction(ref), "kernel join != reference join");
  Report(rows, "join", n, out.size(), k1, kp, h);
}

void BenchJoinOverlap(std::vector<Row>* rows, size_t n, int reps) {
  // Full-overlap first attribute: R(0,1) ⋈ S(0,2) on a shared prefix key —
  // both sides canonical-prefix aligned, zero sorts in the kernel.
  RelationBuilder<NaturalSemiring> br{Schema({0, 1})}, bs{Schema({0, 2})};
  for (size_t i = 0; i < n; ++i) {
    br.Append({static_cast<Value>(i), 1}, 2);
    bs.Append({static_cast<Value>(i), 3}, 5);
  }
  NRel r = br.Build(), s = bs.Build();
  auto [k1, kp, out] = TimeKernel(
      reps, "join_overlap", [&](ExecContext* cx) { return Join(r, s, cx); });
  NRel ref;
  const double h = TimeMs(reps, [&] { ref = reference::Join(r, s); });
  TOPOFAQ_CHECK_MSG(out.EqualsAsFunction(ref), "kernel join != reference join");
  Report(rows, "join_overlap", n, out.size(), k1, kp, h);
}

void BenchEliminate(std::vector<Row>* rows, size_t n, int reps) {
  const uint64_t dom = std::max<uint64_t>(4, n / 8);
  NRel r = RandomRel({0, 1, 2}, n, dom, 29 + n);
  const std::vector<VarId> vars{1, 2};
  const std::vector<VarOp> ops{VarOp::kSemiringSum, VarOp::kSemiringSum};
  auto [k1, kp, out] =
      TimeKernel(reps, "eliminate",
                 [&](ExecContext* cx) { return Eliminate(r, vars, ops, cx); });
  NRel ref;
  const double h = TimeMs(reps, [&] {
    ref = reference::EliminateVar(
        reference::EliminateVar(r, 2, VarOp::kSemiringSum), 1,
        VarOp::kSemiringSum);
  });
  TOPOFAQ_CHECK_MSG(out.EqualsAsFunction(ref),
                    "kernel eliminate != reference eliminate");
  Report(rows, "eliminate", n, out.size(), k1, kp, h);
}

// Keeps the per-element fold from being optimized out while staying
// deterministic across layouts.
uint64_t FoldStep(uint64_t acc, Value key, uint64_t annot) {
  return acc + key * 3 + annot;
}

/// scan: fold key column 0 + annotations of an N-row 3-column relation.
/// kernel_ms reads the contiguous column view; reference_ms reads the same
/// values through a row-major materialization with stride = arity — the
/// committed layout before this PR. Results are checked equal, and the
/// reported speedup is the pure layout effect the CI floor gates.
void BenchScan(std::vector<Row>* rows, size_t n, int reps) {
  const uint64_t dom = std::max<uint64_t>(4, n / 8);
  NRel r = RandomRel({0, 1, 2}, n, dom, 43 + n);
  const std::vector<Value> flat = r.MaterializeRows();
  const size_t arity = r.arity();
  uint64_t col_acc = 0;
  const double k1 = TimeMs(reps, [&] {
    uint64_t acc = 0;
    const Value* c0 = r.col(0).data();
    for (size_t i = 0; i < r.size(); ++i)
      acc = FoldStep(acc, c0[i], r.annot(i));
    col_acc = acc;
  });
  uint64_t row_acc = 0;
  const double h = TimeMs(reps, [&] {
    uint64_t acc = 0;
    const Value* d = flat.data();
    for (size_t i = 0; i < r.size(); ++i)
      acc = FoldStep(acc, d[i * arity], r.annot(i));
    row_acc = acc;
  });
  TOPOFAQ_CHECK_MSG(col_acc == row_acc, "scan folds disagree across layouts");
  Report(rows, "scan", n, r.size(), k1, k1, h);
}

/// probe: gather full rows at random row ids — the row-major-friendly
/// pattern, reported honestly (columnar pays one line per column here).
void BenchProbe(std::vector<Row>* rows, size_t n, int reps) {
  const uint64_t dom = std::max<uint64_t>(4, n / 8);
  NRel r = RandomRel({0, 1, 2}, n, dom, 47 + n);
  const std::vector<Value> flat = r.MaterializeRows();
  const size_t arity = r.arity();
  Rng rng(101 + n);
  std::vector<size_t> ids(std::min<size_t>(r.size(), 1 << 16));
  for (auto& id : ids) id = rng.NextU64(r.size());
  uint64_t col_acc = 0;
  const double k1 = TimeMs(reps, [&] {
    uint64_t acc = 0;
    const RowCursor cur(r);
    Value row[3];
    for (size_t id : ids) {
      cur.Gather(id, row);
      acc = FoldStep(acc, row[0] ^ row[1] ^ row[2], 1);
    }
    col_acc = acc;
  });
  uint64_t row_acc = 0;
  const double h = TimeMs(reps, [&] {
    uint64_t acc = 0;
    const Value* d = flat.data();
    for (size_t id : ids) {
      const Value* row = d + id * arity;
      acc = FoldStep(acc, row[0] ^ row[1] ^ row[2], 1);
    }
    row_acc = acc;
  });
  TOPOFAQ_CHECK_MSG(col_acc == row_acc, "probe folds disagree across layouts");
  Report(rows, "probe", n, ids.size(), k1, k1, h);
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::vector<std::string> lines;
  char buf[320];
  for (const Row& r : rows) {
    std::snprintf(buf, sizeof(buf),
                  "{\"bench\": \"%s\", \"n\": %zu, \"out_rows\": %zu, "
                  "\"kernel_ms\": %.4f, \"parallel_ms\": %.4f, "
                  "\"parallelism\": %d, \"reference_ms\": %.4f, "
                  "\"speedup\": %.3f, \"par_speedup\": %.3f}",
                  r.bench.c_str(), r.n, r.out_rows, r.kernel_ms, r.parallel_ms,
                  g_parallelism, r.reference_ms, r.reference_ms / r.kernel_ms,
                  r.kernel_ms / r.parallel_ms);
    lines.emplace_back(buf);
  }
  bench::WriteJsonRows(lines, path);
}

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const auto args =
      topofaq::bench::ParseMicroBenchArgs(argc, argv, "BENCH_relation_ops.json");
  const bool quick = args.quick;
  const char* out_path = args.out_path;
  topofaq::g_parallelism = args.parallelism;

  std::printf("parallelism: %d\n", topofaq::g_parallelism);
  std::printf("%-14s %9s %9s %10s %10s %12s %7s %7s\n", "bench", "n", "out",
              "kernel_ms", "par_ms", "reference_ms", "speedup", "par_spd");
  std::vector<topofaq::Row> rows;
  const std::vector<size_t> sizes =
      quick ? std::vector<size_t>{1000, 10000, 100000}
            : std::vector<size_t>{1000, 10000, 100000, 1000000};
  for (size_t n : sizes) {
    const int reps = n <= 10000 ? 5 : 3;
    topofaq::BenchJoin(&rows, n, reps);
    topofaq::BenchJoinOverlap(&rows, n, reps);
    topofaq::BenchEliminate(&rows, n, reps);
    // The layout micro-rows run in microseconds below 1e5 rows — inside
    // shared-CI clock noise for the 1.5x relative gate — so they are only
    // recorded at sizes where the timing is signal.
    if (n >= 100000) {
      topofaq::BenchScan(&rows, n, reps);
      topofaq::BenchProbe(&rows, n, reps);
    }
  }
  topofaq::WriteJson(rows, out_path);
  return 0;
}
