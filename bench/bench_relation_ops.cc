// Sorted-relation kernel microbenchmark: join and eliminate throughput at
// 1e3–1e6 rows, for the sort-merge kernel (relation/ops.h) — serial and
// morsel-parallel — vs. the retained hash-based reference
// (relation/reference_ops.h). Results are printed as a table and appended as
// JSON to BENCH_relation_ops.json so the perf trajectory of the kernel is
// recorded across PRs; bench/check_bench_regression.py gates CI on it.
//
// Workloads:
//  * join: R(0,1) ⋈ S(1,2), N rows each, domain ~N (output ~N rows).
//  * join_overlap: the Example 2.1-style full-overlap join (heavy runs).
//  * eliminate: ⊕-eliminate 2 of 3 columns of an N-row relation (FAQ-SS
//    push-down shape — one batched group-by vs. per-variable regrouping).
//  * scan: annotation-weighted fold over one key column of a 3-column
//    relation — the columnar layout (contiguous column) against the same
//    fold over a row-major materialization (stride = arity). The direct
//    columnar-vs-rowmajor measurement the CI floor gates.
//  * probe: random full-row gathers — the access pattern where row-major
//    wins (one contiguous row vs. one cache line per column); recorded so
//    the layout tradeoff stays visible, not gated.
//  * scan_skew / footprint_skew / eliminate_skew / triangle_skew: the
//    compressed-column rows (docs/kernel.md, "Compressed columns") on a
//    skewed low-cardinality input where the auto policy encodes every
//    column. scan_skew folds the bit-packed key column against the same
//    fold over plain values (CI floors the speedup); footprint_skew's
//    "speedup" is plain/encoded ResidentKeyBytes — deterministic, floored
//    at 2x; eliminate_skew and triangle_skew run the same kernel on
//    encoded vs plain inputs and must stay ~1x (encodings never slow the
//    hot paths). Rows carry bytes_resident so the memory effect is in the
//    committed baseline, not just the timings.
//
// Flags: --quick (CI sizes), --parallelism N / -j N (default: every core),
// --out PATH (JSON destination). Each bench runs the kernel at parallelism 1
// and at the requested parallelism and CHECKs the outputs byte-identical.
#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_micro_common.h"
#include "relation/encoding.h"
#include "relation/exec.h"
#include "relation/multiway.h"
#include "relation/ops.h"
#include "relation/reference_ops.h"
#include "util/rng.h"

namespace topofaq {
namespace {

using NRel = Relation<NaturalSemiring>;
using bench::TimeMs;

int g_parallelism = 1;

NRel RandomRel(const std::vector<VarId>& vars, size_t n, uint64_t dom,
               uint64_t seed) {
  Rng rng(seed);
  Relation<NaturalSemiring> r{Schema(vars)};
  std::vector<Value> row(vars.size());
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = rng.NextU64(dom);
    r.Add(row, rng.NextU64(100) + 1);
  }
  r.Canonicalize();
  return r;
}

struct Row {
  std::string bench;
  size_t n;
  size_t out_rows;
  double kernel_ms;    // serial kernel (parallelism 1)
  double parallel_ms;  // kernel at g_parallelism workers
  double reference_ms;
  size_t bytes_resident = 0;  // key-column footprint of the scanned input
};

void Report(std::vector<Row>* rows, std::string bench, size_t n,
            size_t out_rows, double kernel_ms, double parallel_ms,
            double reference_ms, size_t bytes_resident = 0) {
  std::printf("%-14s %9zu %9zu %10.3f %10.3f %12.3f %7.2fx %7.2fx %10zu\n",
              bench.c_str(), n, out_rows, kernel_ms, parallel_ms,
              reference_ms, reference_ms / kernel_ms,
              kernel_ms / parallel_ms, bytes_resident);
  rows->push_back(Row{std::move(bench), n, out_rows, kernel_ms, parallel_ms,
                      reference_ms, bytes_resident});
}

/// Times `fn(&ctx)` at parallelism 1 and at g_parallelism; checks outputs
/// byte-identical; returns {serial_ms, parallel_ms, serial_out}.
template <typename Fn>
std::tuple<double, double, NRel> TimeKernel(int reps, const char* what,
                                            Fn&& fn) {
  ExecContext serial;
  serial.parallelism = 1;
  NRel out1;
  const double k1 = TimeMs(reps, [&] { out1 = fn(&serial); });
  double kp = k1;
  if (g_parallelism > 1) {
    ExecContext par;
    par.parallelism = g_parallelism;
    NRel outp;
    kp = TimeMs(reps, [&] { outp = fn(&par); });
    bench::CheckIdentical(out1, outp, what);
  }
  return {k1, kp, std::move(out1)};
}

void BenchJoin(std::vector<Row>* rows, size_t n, int reps) {
  // Domain ~n keeps the output near n rows (sparse, realistic shape).
  const uint64_t dom = std::max<uint64_t>(4, n);
  NRel r = RandomRel({0, 1}, n, dom, 17 + n);
  NRel s = RandomRel({1, 2}, n, dom, 71 + n);
  auto [k1, kp, out] =
      TimeKernel(reps, "join", [&](ExecContext* cx) { return Join(r, s, cx); });
  NRel ref;
  const double h = TimeMs(reps, [&] { ref = reference::Join(r, s); });
  TOPOFAQ_CHECK_MSG(out.EqualsAsFunction(ref), "kernel join != reference join");
  Report(rows, "join", n, out.size(), k1, kp, h);
}

void BenchJoinOverlap(std::vector<Row>* rows, size_t n, int reps) {
  // Full-overlap first attribute: R(0,1) ⋈ S(0,2) on a shared prefix key —
  // both sides canonical-prefix aligned, zero sorts in the kernel.
  RelationBuilder<NaturalSemiring> br{Schema({0, 1})}, bs{Schema({0, 2})};
  for (size_t i = 0; i < n; ++i) {
    br.Append({static_cast<Value>(i), 1}, 2);
    bs.Append({static_cast<Value>(i), 3}, 5);
  }
  NRel r = br.Build(), s = bs.Build();
  auto [k1, kp, out] = TimeKernel(
      reps, "join_overlap", [&](ExecContext* cx) { return Join(r, s, cx); });
  NRel ref;
  const double h = TimeMs(reps, [&] { ref = reference::Join(r, s); });
  TOPOFAQ_CHECK_MSG(out.EqualsAsFunction(ref), "kernel join != reference join");
  Report(rows, "join_overlap", n, out.size(), k1, kp, h);
}

void BenchEliminate(std::vector<Row>* rows, size_t n, int reps) {
  const uint64_t dom = std::max<uint64_t>(4, n / 8);
  NRel r = RandomRel({0, 1, 2}, n, dom, 29 + n);
  const std::vector<VarId> vars{1, 2};
  const std::vector<VarOp> ops{VarOp::kSemiringSum, VarOp::kSemiringSum};
  auto [k1, kp, out] =
      TimeKernel(reps, "eliminate",
                 [&](ExecContext* cx) { return Eliminate(r, vars, ops, cx); });
  NRel ref;
  const double h = TimeMs(reps, [&] {
    ref = reference::EliminateVar(
        reference::EliminateVar(r, 2, VarOp::kSemiringSum), 1,
        VarOp::kSemiringSum);
  });
  TOPOFAQ_CHECK_MSG(out.EqualsAsFunction(ref),
                    "kernel eliminate != reference eliminate");
  Report(rows, "eliminate", n, out.size(), k1, kp, h);
}

// Keeps the per-element fold from being optimized out while staying
// deterministic across layouts.
uint64_t FoldStep(uint64_t acc, Value key, uint64_t annot) {
  return acc + key * 3 + annot;
}

/// scan: fold key column 0 + annotations of an N-row 3-column relation.
/// kernel_ms reads the contiguous column view; reference_ms reads the same
/// values through a row-major materialization with stride = arity — the
/// committed layout before this PR. Results are checked equal, and the
/// reported speedup is the pure layout effect the CI floor gates.
/// Scan kernels run well under a millisecond; a single call is below the
/// steady_clock jitter floor. Each timed window repeats the fold until the
/// window is ~a millisecond, and the reported time is per-fold.
constexpr int kScanInner = 16;

void BenchScan(std::vector<Row>* rows, size_t n, int reps) {
  const uint64_t dom = std::max<uint64_t>(4, n / 8);
  NRel r = RandomRel({0, 1, 2}, n, dom, 43 + n);
  const std::vector<Value> flat = r.MaterializeRows();
  const size_t arity = r.arity();
  uint64_t col_acc = 0;
  const double k1 = TimeMs(reps, [&] {
    uint64_t acc = 0;
    for (int it = 0; it < kScanInner; ++it) {
      const Value* c0 = r.col(0).data();
      for (size_t i = 0; i < r.size(); ++i)
        acc = FoldStep(acc, c0[i], r.annot(i));
      asm volatile("" ::: "memory");
    }
    col_acc = acc;
  }) / kScanInner;
  uint64_t row_acc = 0;
  const double h = TimeMs(reps, [&] {
    uint64_t acc = 0;
    for (int it = 0; it < kScanInner; ++it) {
      const Value* d = flat.data();
      for (size_t i = 0; i < r.size(); ++i)
        acc = FoldStep(acc, d[i * arity], r.annot(i));
      asm volatile("" ::: "memory");
    }
    row_acc = acc;
  }) / kScanInner;
  TOPOFAQ_CHECK_MSG(col_acc == row_acc, "scan folds disagree across layouts");
  Report(rows, "scan", n, r.size(), k1, k1, h, r.ResidentKeyBytes());
}

/// Skewed low-cardinality relation: the narrow front-loaded value
/// distribution the auto encoding policy targets (FOR deltas a few bits
/// wide on every column).
NRel SkewedRel(const std::vector<VarId>& vars, size_t n, uint64_t seed) {
  Rng rng(seed);
  const uint64_t dom = std::max<uint64_t>(32, n / 8);
  Relation<NaturalSemiring> r{Schema(vars)};
  std::vector<Value> row(vars.size());
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : row) {
      const uint64_t u = rng.NextU64(dom);
      v = (u * u) / (dom << 2);  // front-loaded, range ~dom/4
    }
    r.Add(row, rng.NextU64(100) + 1);
  }
  r.Canonicalize();
  return r;
}

/// scan_skew: the scan fold running directly over the bit-packed key
/// column (EncodedColumn::ScanChecksum — vectorized quad unpack, no
/// materialization) vs the same fold over the plain column.
/// footprint_skew: the resident-bytes ratio of the same input,
/// deterministic and floored in CI.
void BenchScanSkew(std::vector<Row>* rows, size_t n, int reps) {
  NRel plain;
  {
    ScopedEncodingMode off(EncodingMode::kPlain);
    plain = SkewedRel({0, 1, 2}, n, 53 + n);
  }
  NRel enc = plain;
  {
    ScopedEncodingMode autom(EncodingMode::kAuto);
    enc.EncodeColumns();
  }
  const EncodedColumn* e0 = enc.encoded_col(0);
  TOPOFAQ_CHECK_MSG(e0 != nullptr, "auto policy left the skewed column plain");
  uint64_t enc_acc = 0;
  const double k1 = TimeMs(reps, [&] {
    uint64_t total = 0;
    for (int it = 0; it < kScanInner; ++it) {
      total = e0->ScanChecksum(0, enc.size(), enc.annots().data());
      asm volatile("" ::: "memory");
    }
    enc_acc = total;
  }) / kScanInner;
  uint64_t plain_acc = 0;
  const double h = TimeMs(reps, [&] {
    uint64_t total = 0;
    for (int it = 0; it < kScanInner; ++it) {
      uint64_t acc = 0;
      const Value* c0 = plain.col(0).data();
      for (size_t i = 0; i < plain.size(); ++i)
        acc = FoldStep(acc, c0[i], plain.annot(i));
      total = acc;
      asm volatile("" ::: "memory");
    }
    plain_acc = total;
  }) / kScanInner;
  TOPOFAQ_CHECK_MSG(enc_acc == plain_acc,
                    "scan folds disagree across encodings");
  Report(rows, "scan_skew", n, enc.size(), k1, k1, h, enc.ResidentKeyBytes());
  // Deterministic footprint row: "timings" are the key-column footprints
  // in MB, so the gated speedup field is plain_bytes / encoded_bytes.
  const double enc_mb = static_cast<double>(enc.ResidentKeyBytes()) / 1e6;
  const double plain_mb = static_cast<double>(plain.ResidentKeyBytes()) / 1e6;
  Report(rows, "footprint_skew", n, enc.size(), enc_mb, enc_mb, plain_mb,
         enc.ResidentKeyBytes());
}

/// eliminate_skew / triangle_skew: the hot-path operators on encoded vs
/// plain inputs — the "encodings never slow the kernel" rows.
void BenchEliminateSkew(std::vector<Row>* rows, size_t n, int reps) {
  NRel plain;
  {
    ScopedEncodingMode off(EncodingMode::kPlain);
    plain = SkewedRel({0, 1, 2}, n, 59 + n);
  }
  NRel enc = plain;
  {
    ScopedEncodingMode autom(EncodingMode::kAuto);
    enc.EncodeColumns();
  }
  TOPOFAQ_CHECK_MSG(enc.any_encoded(), "auto policy left the input plain");
  const std::vector<VarId> vars{1, 2};
  const std::vector<VarOp> ops{VarOp::kSemiringSum, VarOp::kSemiringSum};
  ScopedEncodingMode off(EncodingMode::kPlain);  // time inputs, not outputs
  auto [k1, kp, out] =
      TimeKernel(reps, "eliminate_skew",
                 [&](ExecContext* cx) { return Eliminate(enc, vars, ops, cx); });
  ExecContext pcx;
  pcx.parallelism = 1;
  NRel ref;
  const double h =
      TimeMs(reps, [&] { ref = Eliminate(plain, vars, ops, &pcx); });
  bench::CheckIdentical(out, ref, "eliminate_skew");
  Report(rows, "eliminate_skew", n, out.size(), k1, kp, h,
         enc.ResidentKeyBytes());
}

void BenchTriangleSkew(std::vector<Row>* rows, size_t n, int reps) {
  std::vector<NRel> plain;
  {
    ScopedEncodingMode off(EncodingMode::kPlain);
    plain.push_back(SkewedRel({0, 1}, n, 61 + n));
    plain.push_back(SkewedRel({1, 2}, n, 67 + n));
    plain.push_back(SkewedRel({0, 2}, n, 73 + n));
  }
  std::vector<NRel> enc = plain;
  {
    ScopedEncodingMode autom(EncodingMode::kAuto);
    for (auto& r : enc) r.EncodeColumns();
  }
  size_t resident = 0;
  for (const auto& r : enc) {
    TOPOFAQ_CHECK_MSG(r.any_encoded(), "auto policy left an input plain");
    resident += r.ResidentKeyBytes();
  }
  ScopedEncodingMode off(EncodingMode::kPlain);  // time inputs, not outputs
  auto [k1, kp, out] = TimeKernel(reps, "triangle_skew", [&](ExecContext* cx) {
    return MultiwayJoin(enc, cx);
  });
  ExecContext pcx;
  pcx.parallelism = 1;
  NRel ref;
  const double h = TimeMs(reps, [&] { ref = MultiwayJoin(plain, &pcx); });
  bench::CheckIdentical(out, ref, "triangle_skew");
  Report(rows, "triangle_skew", n, out.size(), k1, kp, h, resident);
}

/// probe: gather full rows at random row ids — the row-major-friendly
/// pattern, reported honestly (columnar pays one line per column here).
void BenchProbe(std::vector<Row>* rows, size_t n, int reps) {
  const uint64_t dom = std::max<uint64_t>(4, n / 8);
  NRel r = RandomRel({0, 1, 2}, n, dom, 47 + n);
  const std::vector<Value> flat = r.MaterializeRows();
  const size_t arity = r.arity();
  Rng rng(101 + n);
  std::vector<size_t> ids(std::min<size_t>(r.size(), 1 << 16));
  for (auto& id : ids) id = rng.NextU64(r.size());
  uint64_t col_acc = 0;
  const double k1 = TimeMs(reps, [&] {
    uint64_t acc = 0;
    const RowCursor cur(r);
    Value row[3];
    for (size_t id : ids) {
      cur.Gather(id, row);
      acc = FoldStep(acc, row[0] ^ row[1] ^ row[2], 1);
    }
    col_acc = acc;
  });
  uint64_t row_acc = 0;
  const double h = TimeMs(reps, [&] {
    uint64_t acc = 0;
    const Value* d = flat.data();
    for (size_t id : ids) {
      const Value* row = d + id * arity;
      acc = FoldStep(acc, row[0] ^ row[1] ^ row[2], 1);
    }
    row_acc = acc;
  });
  TOPOFAQ_CHECK_MSG(col_acc == row_acc, "probe folds disagree across layouts");
  Report(rows, "probe", n, ids.size(), k1, k1, h, r.ResidentKeyBytes());
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::vector<std::string> lines;
  char buf[320];
  for (const Row& r : rows) {
    std::snprintf(buf, sizeof(buf),
                  "{\"bench\": \"%s\", \"n\": %zu, \"out_rows\": %zu, "
                  "\"kernel_ms\": %.4f, \"parallel_ms\": %.4f, "
                  "\"parallelism\": %d, \"reference_ms\": %.4f, "
                  "\"speedup\": %.3f, \"par_speedup\": %.3f, "
                  "\"bytes_resident\": %zu}",
                  r.bench.c_str(), r.n, r.out_rows, r.kernel_ms, r.parallel_ms,
                  g_parallelism, r.reference_ms, r.reference_ms / r.kernel_ms,
                  r.kernel_ms / r.parallel_ms, r.bytes_resident);
    lines.emplace_back(buf);
  }
  bench::WriteJsonRows(lines, path);
}

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const auto args =
      topofaq::bench::ParseMicroBenchArgs(argc, argv, "BENCH_relation_ops.json");
  const bool quick = args.quick;
  const char* out_path = args.out_path;
  topofaq::g_parallelism = args.parallelism;

  std::printf("parallelism: %d\n", topofaq::g_parallelism);
  std::printf("%-14s %9s %9s %10s %10s %12s %7s %7s %10s\n", "bench", "n",
              "out", "kernel_ms", "par_ms", "reference_ms", "speedup",
              "par_spd", "res_bytes");
  std::vector<topofaq::Row> rows;
  const std::vector<size_t> sizes =
      quick ? std::vector<size_t>{1000, 10000, 100000}
            : std::vector<size_t>{1000, 10000, 100000, 1000000};
  for (size_t n : sizes) {
    const int reps = n <= 10000 ? 5 : 3;
    topofaq::BenchJoin(&rows, n, reps);
    topofaq::BenchJoinOverlap(&rows, n, reps);
    topofaq::BenchEliminate(&rows, n, reps);
    // The layout micro-rows run in microseconds below 1e5 rows — inside
    // shared-CI clock noise for the 1.5x relative gate — so they are only
    // recorded at sizes where the timing is signal.
    if (n >= 100000) {
      topofaq::BenchScan(&rows, n, reps);
      topofaq::BenchProbe(&rows, n, reps);
      // Compressed-column rows: auto encoding engages from kEncodeMinRows,
      // and the CI floors (scan_skew speedup, footprint_skew >= 2x) need
      // row sizes where timing is signal.
      topofaq::BenchScanSkew(&rows, n, reps);
      topofaq::BenchEliminateSkew(&rows, n, reps);
      if (n == 100000) topofaq::BenchTriangleSkew(&rows, n, reps);
    }
  }
  topofaq::WriteJson(rows, out_path);
  return 0;
}
