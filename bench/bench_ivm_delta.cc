// Delta maintenance vs full recompute (docs/ivm.md).
//
// One standing Natural-semiring path query R(0,1) ⋈ S(1,2) ⋈ T(2,3) ⋈
// U(3,4) with free variable 0, N rows per relation. The shape is chosen so
// the two costs separate: a delta against R updates the root join only
// (cached child messages are reused), while the full pass re-sorts and
// re-joins every edge. The measured kernel is a 0.1%
// batched delta against R — half deletions of live rows, half insertions —
// applied through StandingQuery::ApplyDelta (ring propagation: Z/2^64 is an
// exact ring). The reference is YannakakisSolve over the same base, i.e.
// what a non-incremental server would redo per batch. CI floors the
// speedup at 10x for the 1e6-row instance (ivm_delta@1000000=10).
//
// Timing trick: deltas are applied in forward/inverse pairs. The inverse
// removes exactly the inserted rows (their leading key is drawn outside the
// base's domain, so they can never collide with live tuples) and re-adds
// the deleted rows with their original annotations, so every pair restores
// the standing state to the same bytes — best-of-N timing runs against a
// steady state, and the final state is byte-checked against a fresh
// recompute.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_micro_common.h"
#include "faq/solvers.h"
#include "hypergraph/generators.h"
#include "ivm/delta.h"
#include "ivm/standing_query.h"
#include "util/rng.h"

namespace topofaq {
namespace {

using bench::CheckIdentical;
using bench::TimeMs;
using NRel = Relation<NaturalSemiring>;

int g_parallelism = 1;

FaqQuery<NaturalSemiring> BuildInstance(size_t n, uint64_t dom,
                                        uint64_t seed) {
  const Hypergraph h = PathGraph(4);
  std::vector<NRel> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    Rng rng(seed + static_cast<uint64_t>(e));
    NRel r{Schema(h.edge(e))};
    std::vector<Value> row(h.edge(e).size());
    for (size_t i = 0; i < n; ++i) {
      for (auto& v : row) v = rng.NextU64(dom);
      r.Add(row, rng.NextU64(1u << 20) + 1);
    }
    r.Canonicalize();
    rels.push_back(std::move(r));
  }
  return MakeFaqSS<NaturalSemiring>(h, std::move(rels), {0});
}

struct DeltaPair {
  Delta<NaturalSemiring> fwd;
  Delta<NaturalSemiring> inv;
};

/// `n_remove` live rows out, `n_add` fresh rows in, plus the exact inverse.
DeltaPair MakeDeltaPair(const NRel& base, size_t n_remove, size_t n_add,
                        uint64_t dom, uint64_t seed) {
  Rng rng(seed);
  DeltaPair p;
  p.fwd.removes = NRel(base.schema());
  p.fwd.adds = NRel(base.schema());
  p.inv.removes = NRel(base.schema());
  p.inv.adds = NRel(base.schema());
  std::vector<Value> row(base.arity());
  for (uint64_t i : rng.Sample(base.size(), n_remove)) {
    for (size_t j = 0; j < row.size(); ++j) row[j] = base.at(i, j);
    p.fwd.removes.Add(std::span<const Value>(row), 1);
    p.inv.adds.Add(std::span<const Value>(row), base.annot(i));
  }
  for (size_t i = 0; i < n_add; ++i) {
    // Leading key outside the live domain: the insert can never collide
    // with a base tuple, so removing it by key restores the exact bytes.
    row[0] = dom + rng.NextU64(dom);
    for (size_t j = 1; j < row.size(); ++j) row[j] = rng.NextU64(dom);
    p.fwd.adds.Add(std::span<const Value>(row), rng.NextU64(1u << 20) + 1);
    p.inv.removes.Add(std::span<const Value>(row), 1);
  }
  return p;
}

/// Best-of-`reps` per-delta cost: each rep applies forward then inverse and
/// lands back on the same standing state.
double TimeDeltaPairMs(StandingQuery<NaturalSemiring>* sq, const DeltaPair& p,
                       int reps, ExecContext* ctx) {
  return TimeMs(reps, [&] {
           Delta<NaturalSemiring> f = p.fwd;
           Delta<NaturalSemiring> i = p.inv;
           Status s = sq->ApplyDelta(0, std::move(f), ctx);
           if (s.ok()) s = sq->ApplyDelta(0, std::move(i), ctx);
           if (!s.ok()) {
             std::fprintf(stderr, "FATAL: delta failed: %s\n",
                          s.ToString().c_str());
             std::abort();
           }
         }) /
         2.0;
}

struct Row {
  std::string bench;
  size_t n;
  size_t out_rows;
  double kernel_ms;
  double parallel_ms;
  double reference_ms;
};

void Report(std::vector<Row>* rows, std::string bench, size_t n,
            size_t out_rows, double kernel_ms, double parallel_ms,
            double reference_ms) {
  std::printf("%-14s %9zu %9zu %10.3f %10.3f %12.3f %7.2fx %7.2fx\n",
              bench.c_str(), n, out_rows, kernel_ms, parallel_ms,
              reference_ms, reference_ms / kernel_ms,
              kernel_ms / parallel_ms);
  rows->push_back(Row{std::move(bench), n, out_rows, kernel_ms, parallel_ms,
                      reference_ms});
}

void BenchIvmDelta(std::vector<Row>* rows, size_t n, int reps) {
  const uint64_t dom = std::max<uint64_t>(4, n / 4);
  FaqQuery<NaturalSemiring> q = BuildInstance(n, dom, 42);
  ExecContext serial;
  serial.parallelism = 1;
  auto sq = StandingQuery<NaturalSemiring>::Create(q, &serial);
  if (!sq.ok()) {
    std::fprintf(stderr, "FATAL: Create failed: %s\n",
                 sq.status().ToString().c_str());
    std::abort();
  }
  // 0.1% of the touched relation, split evenly between deletes and inserts.
  const size_t half = std::max<size_t>(1, n / 2000);
  const DeltaPair p = MakeDeltaPair(q.relations[0], half, half, dom, 43);

  const double kernel = TimeDeltaPairMs(&*sq, p, reps, &serial);

  ExecContext pctx;
  pctx.parallelism = g_parallelism;
  auto sqp = StandingQuery<NaturalSemiring>::Create(q, &pctx);
  if (!sqp.ok()) std::abort();
  const double parallel = TimeDeltaPairMs(&*sqp, p, reps, &pctx);
  CheckIdentical(sq->Current(), sqp->Current(), "ivm_delta parallel");

  // Reference: the full pass a non-incremental engine would rerun per
  // batch, on the same (restored) base.
  NRel full;
  const double reference = TimeMs(std::max(2, reps - 1), [&] {
    auto r = YannakakisSolve(q, &serial);
    if (!r.ok()) {
      std::fprintf(stderr, "FATAL: recompute failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
    full = *std::move(r);
  });
  // The forward/inverse pairs must have restored the answer exactly.
  CheckIdentical(sq->Current(), full, "ivm_delta vs full recompute");

  Report(rows, "ivm_delta", n, full.size(), kernel, parallel, reference);
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::vector<std::string> lines;
  char buf[320];
  for (const Row& r : rows) {
    std::snprintf(buf, sizeof(buf),
                  "{\"bench\": \"%s\", \"n\": %zu, \"out_rows\": %zu, "
                  "\"kernel_ms\": %.4f, \"parallel_ms\": %.4f, "
                  "\"parallelism\": %d, \"reference_ms\": %.4f, "
                  "\"speedup\": %.3f, \"par_speedup\": %.3f, "
                  "\"bytes_resident\": 0}",
                  r.bench.c_str(), r.n, r.out_rows, r.kernel_ms,
                  r.parallel_ms, g_parallelism, r.reference_ms,
                  r.reference_ms / r.kernel_ms,
                  r.kernel_ms / r.parallel_ms);
    lines.emplace_back(buf);
  }
  bench::WriteJsonRows(lines, path);
}

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const auto args =
      topofaq::bench::ParseMicroBenchArgs(argc, argv, "BENCH_ivm_delta.json");
  topofaq::g_parallelism = args.parallelism;

  std::printf("parallelism: %d\n", topofaq::g_parallelism);
  std::printf("%-14s %9s %9s %10s %10s %12s %7s %7s\n", "bench", "n", "out",
              "kernel_ms", "par_ms", "reference_ms", "speedup", "par_spd");
  std::vector<topofaq::Row> rows;
  // The 1e6 row is the CI-gated one (ivm_delta@1000000=10); it is emitted
  // in --quick mode too, so the smoke leg and the gate see the same key.
  topofaq::BenchIvmDelta(&rows, 100000, args.quick ? 3 : 5);
  topofaq::BenchIvmDelta(&rows, 1000000, args.quick ? 2 : 4);
  topofaq::WriteJson(rows, args.out_path);
  return 0;
}
