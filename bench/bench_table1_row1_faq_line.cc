// Table 1, row 1 — FAQ on a Line, d = O(1), r = O(1), gap O~(1).
// Constant-degeneracy acyclic FAQ queries computed on line topologies: the
// measured protocol rounds stay within a small constant of the
// (y + n2)·N / MinCut lower-bound formula (MinCut(line) = 1).
#include "bench_common.h"

namespace topofaq {
namespace {

void PrintTable(bool quick) {
  std::printf("== Table 1 / row 1: FAQ, G = line, d = O(1), r = O(1) ==\n");
  std::printf("(gap column = measured / LB-formula; expected O~(1))\n\n");
  bench::PrintRowHeader();
  Rng rng(11);
  const std::vector<int> star_ns =
      quick ? std::vector<int>{128} : std::vector<int>{128, 256, 512};
  for (int n : star_ns) {
    // Star FAQ (counting semiring, factor marginal) on a 5-node line.
    Hypergraph star = StarGraph(4);
    auto q = MakeFaqSS<CountingSemiring>(
        star, bench::FullOverlapRelations<CountingSemiring>(star, n), {0});
    char label[64];
    std::snprintf(label, sizeof(label), "star4 marginal N=%d", n);
    bench::ReportRow(label, q, LineTopology(5), n);
  }
  const std::vector<int> tree_ns =
      quick ? std::vector<int>{128} : std::vector<int>{128, 256};
  for (int n : tree_ns) {
    Hypergraph forest = RandomForest(1, 5, &rng);
    auto q = MakeBcq(forest,
                     bench::FullOverlapRelations<BooleanSemiring>(forest, n));
    char label[64];
    std::snprintf(label, sizeof(label), "tree5 BCQ N=%d", n);
    bench::ReportRow(label, q, LineTopology(6), n);
  }
  std::printf("\n");
}

void BM_StarFaqOnLine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Hypergraph star = StarGraph(4);
  auto q = MakeFaqSS<CountingSemiring>(
      star, bench::FullOverlapRelations<CountingSemiring>(star, n), {0});
  DistInstance<CountingSemiring> inst;
  inst.query = q;
  inst.topology = LineTopology(5);
  inst.owners = RoundRobinOwners(4, 5);
  inst.sink = 0;
  for (auto _ : state) {
    auto res = RunCoreForestProtocol(inst);
    benchmark::DoNotOptimize(res);
    state.counters["rounds"] =
        static_cast<double>(res.ok() ? res->stats.rounds : -1);
  }
}
BENCHMARK(BM_StarFaqOnLine)->Arg(128)->Arg(512);

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const topofaq::bench::BenchArgs args =
      topofaq::bench::ParseBenchArgs(&argc, argv);
  topofaq::PrintTable(args.quick);
  if (args.quick) return 0;  // smoke mode: reproduction table only
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
