#!/usr/bin/env python3
"""CI perf-gate for the sorted-relation kernel (docs/kernel.md).

Compares a fresh BENCH_relation_ops.json (produced by
`bench_relation_ops --quick --out <current>`) against the committed baseline
and fails on per-bench kernel slowdowns.

Because CI machines differ wildly from the machines baselines were recorded
on, raw milliseconds are not comparable across runs. Every bench row also
times the retained hash-based reference kernel *on the same machine in the
same run*, so the gate compares the machine-neutral ratio

    normalized(row) = kernel_ms / reference_ms

and fails when normalized(current) > threshold * normalized(baseline) for
any (bench, n) present in both files. The same check is applied to the
morsel-parallel timing (parallel_ms): with a serial baseline this doubles as
"parallel execution must never be more than threshold-times slower than the
recorded serial kernel, relative to the reference".

Usage:
  check_bench_regression.py BASELINE CURRENT [--threshold 1.5]
Exit status: 0 = pass, 1 = regression, 2 = usage/IO/coverage error.
"""

import argparse
import json
import sys


def load_rows(path):
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for row in rows:
        out[(row["bench"], row["n"])] = row
    return out


def normalized(row, key):
    # Guard against degenerate timings (a 0.0 from clock resolution would
    # otherwise divide by zero); treat anything below 1µs as 1µs.
    return max(row[key], 1e-3) / max(row["reference_ms"], 1e-3)


def main():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("baseline", help="committed BENCH_relation_ops.json")
    p.add_argument("current", help="freshly produced bench JSON")
    p.add_argument("--threshold", type=float, default=1.5,
                   help="fail on > THRESHOLD x normalized slowdown")
    p.add_argument("--min-n", type=int, default=10000,
                   help="ignore bench rows below this size: microsecond-"
                        "scale timings are clock/microarch noise, not signal")
    args = p.parse_args()

    base = load_rows(args.baseline)
    cur = load_rows(args.current)
    common = sorted(k for k in set(base) & set(cur) if k[1] >= args.min_n)
    if not common:
        print("error: no common (bench, n) rows between baseline and current",
              file=sys.stderr)
        return 2

    failures = []
    print(f"{'bench':<14} {'n':>9} {'metric':<11} {'baseline':>9} "
          f"{'current':>9} {'ratio':>7}")
    for key in common:
        b, c = base[key], cur[key]
        for metric in ("kernel_ms", "parallel_ms"):
            if metric not in b or metric not in c:
                continue  # older baselines predate the parallel column
            nb, nc = normalized(b, metric), normalized(c, metric)
            ratio = nc / nb
            flag = " <-- REGRESSION" if ratio > args.threshold else ""
            print(f"{key[0]:<14} {key[1]:>9} {metric:<11} {nb:>9.4f} "
                  f"{nc:>9.4f} {ratio:>6.2f}x{flag}")
            if ratio > args.threshold:
                failures.append((key, metric, ratio))

    if failures:
        print(f"\nFAIL: {len(failures)} bench(es) regressed more than "
              f"{args.threshold}x vs baseline:", file=sys.stderr)
        for (bench, n), metric, ratio in failures:
            print(f"  {bench} n={n} {metric}: {ratio:.2f}x", file=sys.stderr)
        print("If the slowdown is intended, refresh the baseline with\n"
              "  ./build/bench_relation_ops --out BENCH_relation_ops.json",
              file=sys.stderr)
        return 1
    print(f"\nOK: {len(common)} bench rows within {args.threshold}x of "
          f"baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
