#!/usr/bin/env python3
"""CI perf-gate for the sorted-relation kernel (docs/kernel.md).

Compares a fresh BENCH_relation_ops.json (produced by
`bench_relation_ops --quick --out <current>`) against the committed baseline
and fails on per-bench kernel slowdowns.

Because CI machines differ wildly from the machines baselines were recorded
on, raw milliseconds are not comparable across runs. Every bench row also
times the retained hash-based reference kernel *on the same machine in the
same run*, so the gate compares the machine-neutral ratio

    normalized(row) = kernel_ms / reference_ms

and fails when normalized(current) > threshold * normalized(baseline) for
any (bench, n) present in both files. The same check is applied to the
morsel-parallel timing (parallel_ms): with a serial baseline this doubles as
"parallel execution must never be more than threshold-times slower than the
recorded serial kernel, relative to the reference".

Usage:
  check_bench_regression.py BASELINE CURRENT [--threshold 1.5]
Exit status: 0 = pass, 1 = regression, 2 = usage/IO/coverage error.
"""

import argparse
import json
import sys


def load_rows(path):
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for row in rows:
        out[(row["bench"], row["n"])] = row
    return out


def normalized(row, key):
    # Guard against degenerate timings (a 0.0 from clock resolution would
    # otherwise divide by zero); treat anything below 1µs as 1µs.
    return max(row[key], 1e-3) / max(row["reference_ms"], 1e-3)


def main():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("baseline", help="committed BENCH_relation_ops.json")
    p.add_argument("current", help="freshly produced bench JSON")
    p.add_argument("--threshold", type=float, default=1.5,
                   help="fail on > THRESHOLD x normalized slowdown")
    p.add_argument("--min-n", type=int, default=10000,
                   help="ignore bench rows below this size: microsecond-"
                        "scale timings are clock/microarch noise, not signal")
    p.add_argument("--speedup-floor", action="append", default=[],
                   metavar="BENCH[@N]=RATIO",
                   help="absolute floor on the current run's 'speedup' field "
                        "for the named bench, applied to rows with n >= N "
                        "(default: min-n); repeatable. Unlike the relative "
                        "gate, this cannot ratchet down across baseline "
                        "refreshes. CI uses it for the multiway triangle "
                        "(vs the pairwise plan) and for the columnar "
                        "scan/eliminate rows (vs the row-major layout / "
                        "hash reference) — see ci.yml.")
    args = p.parse_args()
    floor_specs = []
    for spec in args.speedup_floor:
        name, _, ratio = spec.partition("=")
        name, _, size = name.partition("@")
        try:
            floor_specs.append((name, int(size) if size else args.min_n,
                                float(ratio)))
        except ValueError:
            print(f"error: bad --speedup-floor {spec!r} "
                  f"(want BENCH[@N]=RATIO)", file=sys.stderr)
            return 2

    base = load_rows(args.baseline)
    cur = load_rows(args.current)
    common = sorted(k for k in set(base) & set(cur) if k[1] >= args.min_n)
    if not common:
        print("error: no common (bench, n) rows between baseline and current",
              file=sys.stderr)
        return 2

    failures = []
    print(f"{'bench':<14} {'n':>9} {'metric':<11} {'baseline':>9} "
          f"{'current':>9} {'ratio':>7}")
    for key in common:
        b, c = base[key], cur[key]
        for metric in ("kernel_ms", "parallel_ms"):
            if metric not in b or metric not in c:
                continue  # older baselines predate the parallel column
            nb, nc = normalized(b, metric), normalized(c, metric)
            ratio = nc / nb
            flag = " <-- REGRESSION" if ratio > args.threshold else ""
            print(f"{key[0]:<14} {key[1]:>9} {metric:<11} {nb:>9.4f} "
                  f"{nc:>9.4f} {ratio:>6.2f}x{flag}")
            if ratio > args.threshold:
                failures.append((key, metric, ratio))

    # Absolute speedup floors: each spec is checked independently, and a spec
    # that matches no current row is an error, not a vacuous pass — renaming
    # a bench or shrinking the size list must not silently disable the gate.
    floor_failures = []
    for name, min_size, floor in floor_specs:
        matched = sorted((k, r) for k, r in cur.items()
                         if k[0] == name and k[1] >= min_size
                         and "speedup" in r)
        if not matched:
            print(f"error: --speedup-floor {name}@{min_size} matched no "
                  f"current rows; the absolute gate would be vacuous",
                  file=sys.stderr)
            return 2
        for (bench, n), row in matched:
            flag = " <-- BELOW FLOOR" if row["speedup"] < floor else ""
            print(f"{bench:<14} {n:>9} {'speedup':<11} {floor:>8.2f}x "
                  f"{row['speedup']:>8.2f}x{flag}")
            if row["speedup"] < floor:
                floor_failures.append((bench, n, row["speedup"], floor))

    if failures:
        print(f"\nFAIL: {len(failures)} bench(es) regressed more than "
              f"{args.threshold}x vs baseline:", file=sys.stderr)
        for (bench, n), metric, ratio in failures:
            print(f"  {bench} n={n} {metric}: {ratio:.2f}x", file=sys.stderr)
        print("If the slowdown is intended, refresh the baseline: run\n"
              "  ./build/bench_relation_ops --out BENCH_relation_ops.json\n"
              "  ./build/bench_multiway_join --out BENCH_multiway_join.json\n"
              "then merge both into the committed file with\n"
              "  tools/merge_bench_json.py BENCH_relation_ops.json \\\n"
              "      BENCH_multiway_join.json --out BENCH_relation_ops.json",
              file=sys.stderr)
    if floor_failures:
        print(f"\nFAIL: {len(floor_failures)} bench(es) below the absolute "
              f"speedup floor — refreshing the baseline cannot fix this, "
              f"the kernel itself regressed:", file=sys.stderr)
        for bench, n, speedup, floor in floor_failures:
            print(f"  {bench} n={n}: {speedup:.2f}x < required {floor:.2f}x",
                  file=sys.stderr)
    if failures or floor_failures:
        return 1
    print(f"\nOK: {len(common)} bench rows within {args.threshold}x of "
          f"baseline"
          + (f"; {len(floor_specs)} absolute floor(s) held"
             if floor_specs else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
