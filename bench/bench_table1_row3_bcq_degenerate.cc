// Table 1, row 3 — BCQ on arbitrary G for d-degenerate simple H (arity 2),
// gap O~(d). Sweeping the degeneracy d shows the measured/LB ratio growing
// at most linearly in d (the Theorem 4.1 gap).
#include "bench_common.h"

#include "hypergraph/degeneracy.h"

namespace topofaq {
namespace {

void PrintTable(bool quick) {
  std::printf(
      "== Table 1 / row 3: BCQ, arbitrary G, (d, 2)-queries, gap O~(d) ==\n\n");
  bench::PrintRowHeader();
  const int n = quick ? 64 : 128;
  const std::vector<int> ds =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 3, 4};
  for (int d : ds) {
    Rng rng(100 + d);
    Hypergraph h = RandomDDegenerate(8, d, &rng);
    const int actual_d = ComputeDegeneracy(h).degeneracy;
    auto q = MakeBcq(h, bench::RandomBoolRelations(h, n, 4, &rng));
    char label[64];
    std::snprintf(label, sizeof(label), "d=%d(real %d) clique", d, actual_d);
    bench::ReportRow(label, q, CliqueTopology(6), n);
    std::snprintf(label, sizeof(label), "d=%d(real %d) line", d, actual_d);
    bench::ReportRow(label, q, LineTopology(6), n);
  }
  std::printf("\nNote: the gap column may exceed O~(1) as d grows — exactly "
              "the Table 1 row-3 behaviour.\n\n");
}

void BM_DegenerateBcq(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  Rng rng(100 + d);
  Hypergraph h = RandomDDegenerate(8, d, &rng);
  auto q = MakeBcq(h, bench::RandomBoolRelations(h, 128, 4, &rng));
  DistInstance<BooleanSemiring> inst;
  inst.query = q;
  inst.topology = CliqueTopology(6);
  inst.owners = RoundRobinOwners(h.num_edges(), 6);
  inst.sink = 0;
  for (auto _ : state) {
    auto res = RunCoreForestProtocol(inst);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_DegenerateBcq)->Arg(1)->Arg(3);

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const topofaq::bench::BenchArgs args =
      topofaq::bench::ParseBenchArgs(&argc, argv);
  topofaq::PrintTable(args.quick);
  if (args.quick) return 0;  // smoke mode: reproduction table only
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
