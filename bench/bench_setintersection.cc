// Theorem 3.11: k-party set intersection in Θ(min_Δ(N/ST(G,K,Δ) + Δ))
// rounds. Measures the pipelined Steiner-tree convergecast against the
// formula across topologies and N.
#include "bench_common.h"
#include "graphalg/steiner.h"
#include "graphalg/topologies.h"
#include "network/primitives.h"
#include "util/bits.h"
#include "util/rng.h"

namespace topofaq {
namespace {

/// Runs the Theorem 3.11 protocol: plan a packing, convergecast N 1-bit
/// items per tree chunk, all trees in parallel; returns measured rounds.
int64_t MeasureIntersection(const Graph& g, const std::vector<NodeId>& k,
                            int64_t n, int64_t cap) {
  SyncNetwork net(g, cap);
  IntersectionPlan plan = PlanIntersection(g, k, CeilDiv(n, cap));
  int64_t finish = 0;
  const int64_t chunk = CeilDiv(n, static_cast<int64_t>(plan.trees.size()));
  for (const auto& tree : plan.trees) {
    RootedTree rooted = OrientTree(g, tree.edges, k[0]);
    finish = std::max(finish, ConvergecastItems(&net, rooted, chunk, 1, 0));
  }
  return finish;
}

void Row(const char* name, const Graph& g, const std::vector<NodeId>& k,
         int64_t n, int64_t cap) {
  IntersectionPlan plan = PlanIntersection(g, k, CeilDiv(n, cap));
  const int64_t measured = MeasureIntersection(g, k, n, cap);
  std::printf("%-14s N=%-6lld cap=%-3lld trees=%-2zu delta=%-2d "
              "formula=%-6lld measured=%lld\n",
              name, static_cast<long long>(n), static_cast<long long>(cap),
              plan.trees.size(), plan.delta,
              static_cast<long long>(plan.predicted_rounds),
              static_cast<long long>(measured));
}

void PrintTable(bool quick) {
  std::printf("== Theorem 3.11: set intersection = Θ(min_Δ(N/ST + Δ)) ==\n\n");
  Rng rng(17);
  const std::vector<int64_t> ns =
      quick ? std::vector<int64_t>{1024} : std::vector<int64_t>{1024, 4096};
  for (int64_t n : ns) {
    Row("line(4)", LineTopology(4), {0, 1, 2, 3}, n, 1);
    Row("clique(4)", CliqueTopology(4), {0, 1, 2, 3}, n, 1);
    Row("clique(8)", CliqueTopology(8), {0, 1, 2, 3, 4, 5, 6, 7}, n, 1);
    Row("grid(3x3)", GridTopology(3, 3), {0, 2, 6, 8}, n, 1);
    Row("ring(8)", RingTopology(8), {0, 2, 4, 6}, n, 1);
    Graph rnd = RandomConnectedTopology(9, 6, &rng);
    Row("random(9)", rnd, {0, 3, 6, 8}, n, 1);
  }
  std::printf("\nWider capacity divides the N term:\n");
  Row("clique(4)", CliqueTopology(4), {0, 1, 2, 3}, 4096, 8);
  Row("line(4)", LineTopology(4), {0, 1, 2, 3}, 4096, 8);
  std::printf("\n");
}

void BM_Convergecast(benchmark::State& state) {
  Graph g = CliqueTopology(8);
  std::vector<NodeId> k{0, 1, 2, 3, 4, 5, 6, 7};
  const int64_t n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureIntersection(g, k, n, 1));
  }
}
BENCHMARK(BM_Convergecast)->Arg(1024)->Arg(4096);

void BM_PackSteinerTrees(benchmark::State& state) {
  Graph g = CliqueTopology(static_cast<int>(state.range(0)));
  std::vector<NodeId> k;
  for (int i = 0; i < g.num_nodes(); ++i) k.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PackSteinerTrees(g, k, g.num_nodes(), 7));
  }
}
BENCHMARK(BM_PackSteinerTrees)->Arg(6)->Arg(10);

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const topofaq::bench::BenchArgs args =
      topofaq::bench::ParseBenchArgs(&argc, argv);
  topofaq::PrintTable(args.quick);
  if (args.quick) return 0;  // smoke mode: reproduction table only
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
