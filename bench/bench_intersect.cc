// Microbench for the SIMD sorted-key kernels (relation/simd.h): pairwise
// set intersection, the leapfrog frontier step, and the gallop-closing
// lower bound, each timed scalar-vs-SIMD on the same inputs in the same
// run. The "speedup" field of every row is scalar_ms / simd_ms — a
// machine-neutral ratio CI gates with an absolute floor (SIMD must beat
// the scalar twin by >= 1.5x on the low-selectivity intersection rows; see
// ci.yml). reference_ms holds the scalar timing so the relative
// regression gate of check_bench_regression.py normalizes the same way as
// the other microbenches.
//
// Selectivity s = fraction of a-positions whose value occurs in b. Low s
// is the regime the frontier block-skip is built for (whole blocks retire
// on two compares); s = 0.5 stresses the all-pairs match path and the
// shuffle compaction.
//
// Every timed pair is also a differential check: scalar and SIMD outputs
// are compared byte-for-byte and a mismatch aborts the bench.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_micro_common.h"
#include "relation/simd.h"

namespace topofaq {
namespace {

struct Row {
  std::string bench;
  size_t n = 0;
  size_t out_rows = 0;
  double simd_ms = 0;
  double scalar_ms = 0;
};

constexpr size_t kN = 1 << 17;  // elements per side; >= 1e5 so timing is signal

/// Sorted test sets with controlled overlap: b gets even values, a takes
/// floor(s * kN) values from b and fills the rest with odd values — so the
/// non-shared parts are disjoint by parity and the selectivity is exact.
struct Sets {
  std::vector<Value> a64, b64;
  std::vector<uint32_t> a32, b32;
};

Sets MakeSets(double sel, std::mt19937_64* rng) {
  Sets s;
  std::uniform_int_distribution<uint64_t> dist(0, (1ull << 30) - 1);
  s.b64.resize(kN);
  for (auto& v : s.b64) v = dist(*rng) * 2;
  std::sort(s.b64.begin(), s.b64.end());
  const size_t shared = static_cast<size_t>(sel * kN);
  s.a64.resize(kN);
  for (size_t i = 0; i < shared; ++i)
    s.a64[i] = s.b64[(*rng)() % kN];
  for (size_t i = shared; i < kN; ++i) s.a64[i] = dist(*rng) * 2 + 1;
  std::sort(s.a64.begin(), s.a64.end());
  // Same sets in the narrow lane domain (values < 2^31 by construction).
  s.a32.assign(s.a64.begin(), s.a64.end());
  s.b32.assign(s.b64.begin(), s.b64.end());
  return s;
}

void Fatal(const char* what) {
  std::fprintf(stderr, "FATAL: SIMD output differs from scalar in %s\n", what);
  std::abort();
}

void BenchIntersect64(std::vector<Row>* rows, const Sets& s,
                      const char* name, int reps) {
  std::vector<Value> out_s(kN), out_v(kN);
  size_t cs = 0, cv = 0;
  const double scalar_ms = bench::TimeMs(reps, [&] {
    cs = simd::ScalarIntersectU64(s.a64.data(), kN, s.b64.data(), kN,
                                  out_s.data());
  });
  const double simd_ms = bench::TimeMs(reps, [&] {
    cv = simd::IntersectU64(s.a64.data(), kN, s.b64.data(), kN, out_v.data(),
                            nullptr);
  });
  if (cs != cv || std::memcmp(out_s.data(), out_v.data(), cs * sizeof(Value)))
    Fatal(name);
  rows->push_back({name, kN, cs, simd_ms, scalar_ms});
}

void BenchIntersect32(std::vector<Row>* rows, const Sets& s,
                      const char* name, int reps) {
  std::vector<uint32_t> out_s(kN), out_v(kN);
  size_t cs = 0, cv = 0;
  const double scalar_ms = bench::TimeMs(reps, [&] {
    cs = simd::ScalarIntersectU32(s.a32.data(), kN, s.b32.data(), kN,
                                  out_s.data());
  });
  const double simd_ms = bench::TimeMs(reps, [&] {
    cv = simd::IntersectU32(s.a32.data(), kN, s.b32.data(), kN, out_v.data(),
                            nullptr);
  });
  if (cs != cv ||
      std::memcmp(out_s.data(), out_v.data(), cs * sizeof(uint32_t)))
    Fatal(name);
  rows->push_back({name, kN, cs, simd_ms, scalar_ms});
}

/// Drives the frontier step to exhaustion — the multiway k == 2 loop shape.
template <typename T, typename Step>
size_t DriveFrontier(const std::vector<T>& a, const std::vector<T>& b,
                     Step step) {
  size_t i = 0, j = 0, matches = 0;
  for (;;) {
    const simd::Frontier f = step(a.data(), i, a.size(), b.data(), j,
                                  b.size(), static_cast<size_t>(1) << 30);
    i = f.i;
    j = f.j;
    if (f.kind != simd::Frontier::kMatch) return matches;
    ++matches;
    ++i;
  }
}

void BenchFrontier64(std::vector<Row>* rows, const Sets& s, const char* name,
                     int reps) {
  size_t ms_ = 0, mv = 0;
  const double scalar_ms = bench::TimeMs(reps, [&] {
    ms_ = DriveFrontier(s.a64, s.b64,
                        [](const Value* a, size_t i, size_t an, const Value* b,
                           size_t j, size_t bn, size_t mb) {
                          return simd::ScalarNextMatchU64(a, i, an, b, j, bn,
                                                          mb);
                        });
  });
  const double simd_ms = bench::TimeMs(reps, [&] {
    mv = DriveFrontier(s.a64, s.b64,
                       [](const Value* a, size_t i, size_t an, const Value* b,
                          size_t j, size_t bn, size_t mb) {
                         return simd::NextMatchU64(a, i, an, b, j, bn, mb,
                                                   nullptr);
                       });
  });
  if (ms_ != mv) Fatal(name);
  rows->push_back({name, kN, ms_, simd_ms, scalar_ms});
}

/// The gallop-closing shape: lower bounds over 128-wide windows, the span
/// at which TrieSeek hands its binary search to simd::LowerBoundU64.
void BenchGallop64(std::vector<Row>* rows, const Sets& s, const char* name,
                   int reps, std::mt19937_64* rng) {
  constexpr size_t kWindow = 128;
  constexpr size_t kProbes = 1 << 16;
  std::vector<size_t> starts(kProbes);
  std::vector<Value> keys(kProbes);
  for (size_t p = 0; p < kProbes; ++p) {
    starts[p] = (*rng)() % (kN - kWindow);
    // Key inside the window so the probe does real work.
    keys[p] = s.a64[starts[p] + (*rng)() % kWindow];
  }
  size_t hs = 0, hv = 0;
  const double scalar_ms = bench::TimeMs(reps, [&] {
    hs = 0;
    for (size_t p = 0; p < kProbes; ++p)
      hs += simd::ScalarLowerBoundU64(s.a64.data(), starts[p],
                                      starts[p] + kWindow, keys[p], false);
  });
  const double simd_ms = bench::TimeMs(reps, [&] {
    hv = 0;
    for (size_t p = 0; p < kProbes; ++p)
      hv += simd::LowerBoundU64(s.a64.data(), starts[p], starts[p] + kWindow,
                                keys[p], false, nullptr);
  });
  if (hs != hv) Fatal(name);
  rows->push_back({name, kN, kProbes, simd_ms, scalar_ms});
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::vector<std::string> lines;
  char buf[320];
  for (const Row& r : rows) {
    std::snprintf(buf, sizeof(buf),
                  "{\"bench\": \"%s\", \"n\": %zu, \"out_rows\": %zu, "
                  "\"kernel_ms\": %.4f, \"parallel_ms\": %.4f, "
                  "\"parallelism\": 1, \"reference_ms\": %.4f, "
                  "\"speedup\": %.3f, \"par_speedup\": 1.000, "
                  "\"bytes_resident\": 0}",
                  r.bench.c_str(), r.n, r.out_rows, r.simd_ms, r.simd_ms,
                  r.scalar_ms, r.scalar_ms / r.simd_ms);
    lines.emplace_back(buf);
  }
  bench::WriteJsonRows(lines, path);
}

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  using namespace topofaq;
  const auto args =
      bench::ParseMicroBenchArgs(argc, argv, "BENCH_intersect.json");
  const int reps = args.quick ? 5 : 9;

  ScopedSimdMode force_on(true);
  if (!simd::Available())
    std::fprintf(stderr,
                 "warning: AVX2 unavailable; SIMD legs run the scalar body "
                 "(speedups will be ~1.0)\n");

  std::printf("%-18s %9s %9s %9s %10s %8s\n", "bench", "n", "out", "simd_ms",
              "scalar_ms", "speedup");
  std::mt19937_64 rng(0x70F0FA9u);
  std::vector<Row> rows;
  const struct {
    double sel;
    const char* suff;
  } kSel[] = {{1e-4, "s1e4"}, {1e-3, "s1e3"}, {1e-2, "s1e2"},
              {1e-1, "s1e1"}, {0.5, "s50"}};
  for (const auto& sc : kSel) {
    const Sets s = MakeSets(sc.sel, &rng);
    char name[64];
    std::snprintf(name, sizeof(name), "intersect64_%s", sc.suff);
    BenchIntersect64(&rows, s, name, reps);
    std::snprintf(name, sizeof(name), "intersect32_%s", sc.suff);
    BenchIntersect32(&rows, s, name, reps);
    if (sc.sel == 1e-2) {
      BenchFrontier64(&rows, s, "frontier64_s1e2", reps);
      BenchGallop64(&rows, s, "gallop64_w128", reps, &rng);
    }
  }
  for (const Row& r : rows)
    std::printf("%-18s %9zu %9zu %9.3f %10.3f %7.2fx\n", r.bench.c_str(), r.n,
                r.out_rows, r.simd_ms, r.scalar_ms, r.scalar_ms / r.simd_ms);
  WriteJson(rows, args.out_path);
  return 0;
}
