// Observability overhead gate: the tracing-off serving path must cost the
// same as before src/obs/ existed, and the tracing-on path must stay cheap.
//
// Two single-threaded kernel workloads, each timed with tracing off
// (obs_off*) and with a live TraceSession attached to the ExecContext
// (obs_on*):
//
//  * obs_off / obs_on          — Eliminate over a 3-ary n=1e5 relation
//                                (two semiring-sum folds);
//  * obs_off_triangle / obs_on_triangle — MultiwayJoin over the random
//                                triangle at n=3e4.
//
// reference_ms is a deterministic column-scan fold over the same inputs
// (kScanInner passes of acc + key*3 + annot) — a pure-read baseline with no
// allocator or hash noise, interleaved rep-by-rep with the kernel runs so
// host-load transients hit every phase alike.
//
// The cost contract (obs/trace.h: tracing off costs one branch per span
// site) is gated in CI with absolute speedup floors: the obs_off floors
// (17x eliminate, 1.40x triangle — ci.yml) are 0.95x of the conservative
// pre-obs speedup, established by an identical-harness A/B against the
// library as built before src/obs/ existed (same source, same flags, only
// the library swapped: off-path kernel_ms within 1.04-1.05x min-vs-min,
// i.e. >= 0.95x of pre-obs throughput). The obs_on rows carry speedup =
// off_ms/on_ms, floored in CI at 0.8 (tracing on costs at most 1.25x on
// these span-per-call workloads). Floors rather than a tight relative gate
// because the streaming reference and the sub-ms cache-resident kernels
// respond differently to runner load — the committed rows still feed the
// standard 1.5x relative gate.
//
// Rows append to BENCH_obs_overhead.json (same row schema as
// bench_relation_ops.cc) and gate against the committed
// BENCH_relation_ops.json baseline like every other bench.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_micro_common.h"
#include "obs/trace.h"
#include "relation/exec.h"
#include "relation/multiway.h"
#include "relation/ops.h"
#include "relation/reference_ops.h"
#include "util/rng.h"

namespace topofaq {
namespace {

using NRel = Relation<NaturalSemiring>;
using bench::TimeMs;

/// Scan passes per reference rep: enough work that one rep is milliseconds,
/// not microseconds, on the gated sizes.
constexpr int kScanInner = 16;

NRel RandomRel(const std::vector<VarId>& vars, size_t n, uint64_t dom,
               uint64_t seed) {
  Rng rng(seed);
  Relation<NaturalSemiring> r{Schema(vars)};
  std::vector<Value> row(vars.size());
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = rng.NextU64(dom);
    r.Add(row, rng.NextU64(100) + 1);
  }
  r.Canonicalize();
  return r;
}

uint64_t FoldStep(uint64_t acc, Value key, uint64_t annot) {
  return acc + key * 3 + annot;
}

/// One rep of the deterministic pure-read baseline (see file comment).
double ScanRefOnce(const std::vector<const NRel*>& rels) {
  uint64_t sink = 0;
  const double ms = TimeMs(1, [&] {
    uint64_t acc = 0;
    for (int it = 0; it < kScanInner; ++it) {
      for (const NRel* r : rels)
        for (size_t c = 0; c < r->arity(); ++c) {
          const Value* col = r->col(c).data();
          for (size_t i = 0; i < r->size(); ++i)
            acc = FoldStep(acc, col[i], r->annot(i));
        }
      asm volatile("" ::: "memory");
    }
    sink = acc;
  });
  asm volatile("" : : "r"(sink) : "memory");
  return ms;
}

struct Row {
  std::string bench;
  size_t n;
  size_t out_rows;
  double kernel_ms;
  double reference_ms;
  /// obs_off rows: reference_ms/kernel_ms (the usual meaning). obs_on rows:
  /// off_ms/on_ms — the tracing-on cost ratio CI floors at 0.8.
  double speedup;
};

void Report(std::vector<Row>* rows, Row r) {
  std::printf("%-16s %8zu %8zu %10.4f %12.4f %8.3fx\n", r.bench.c_str(), r.n,
              r.out_rows, r.kernel_ms, r.reference_ms, r.speedup);
  rows->push_back(std::move(r));
}

/// Times `work` with tracing off and with a live TraceSession, checks the
/// outputs byte-identical (tracing must never change results), and reports
/// the obs_off<suffix> / obs_on<suffix> row pair.
///
/// The reference scan and the two kernel runs are interleaved round-robin
/// (ref, off, on, ref, off, on, …) rather than timed in three contiguous
/// windows: on a shared CI core a load transient then hits all three phases
/// alike and min-of-reps discards it, instead of poisoning one phase's
/// entire window and skewing the normalized ratio the gate checks.
template <typename WorkFn>
void BenchOffOn(std::vector<Row>* rows, const char* suffix, size_t n,
                int reps, const std::vector<const NRel*>& ref_rels,
                WorkFn&& work) {
  ExecContext off_cx;
  off_cx.parallelism = 1;
  obs::TraceSession ts;
  ExecContext on_cx;
  on_cx.parallelism = 1;
  on_cx.SetTrace(&ts, ts.RegisterTrack("bench"));
  NRel off_out;
  NRel on_out;
  double ref = 1e300, off = 1e300, on = 1e300;
  for (int i = 0; i < reps; ++i) {
    ref = std::min(ref, ScanRefOnce(ref_rels));
    off = std::min(off, TimeMs(1, [&] { off_out = work(off_cx); }));
    on = std::min(on, TimeMs(1, [&] { on_out = work(on_cx); }));
  }
  bench::CheckIdentical(off_out, on_out, suffix);
  TOPOFAQ_CHECK_MSG(ts.event_count() > 0, "tracing-on run recorded no spans");

  Report(rows, Row{std::string("obs_off") + suffix, n, off_out.size(), off,
                   ref, ref / off});
  Report(rows, Row{std::string("obs_on") + suffix, n, on_out.size(), on, ref,
                   off / on});
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::vector<std::string> lines;
  char buf[320];
  for (const Row& r : rows) {
    std::snprintf(buf, sizeof(buf),
                  "{\"bench\": \"%s\", \"n\": %zu, \"out_rows\": %zu, "
                  "\"kernel_ms\": %.4f, \"parallel_ms\": %.4f, "
                  "\"parallelism\": 1, \"reference_ms\": %.4f, "
                  "\"speedup\": %.3f, \"par_speedup\": 1.0, "
                  "\"bytes_resident\": 0}",
                  r.bench.c_str(), r.n, r.out_rows, r.kernel_ms, r.kernel_ms,
                  r.reference_ms, r.speedup);
    lines.emplace_back(buf);
  }
  bench::WriteJsonRows(lines, path);
}

void Run(bool quick, const char* out_path) {
  std::printf("%-16s %8s %8s %10s %12s %8s\n", "bench", "n", "out",
              "kernel_ms", "reference_ms", "speedup");
  std::vector<Row> rows;
  {
    const size_t n = 100000;  // the gated size — --quick keeps it
    const int reps = quick ? 20 : 40;
    NRel r = RandomRel({0, 1, 2}, n, std::max<uint64_t>(4, n / 8), 29 + n);
    const std::vector<VarId> vars{1, 2};
    const std::vector<VarOp> ops{VarOp::kSemiringSum, VarOp::kSemiringSum};
    NRel check = reference::EliminateVar(
        reference::EliminateVar(r, 2, VarOp::kSemiringSum), 1,
        VarOp::kSemiringSum);
    BenchOffOn(&rows, "", n, reps, {&r}, [&](ExecContext& cx) {
      NRel out = Eliminate(r, vars, ops, &cx);
      TOPOFAQ_CHECK(out.EqualsAsFunction(check));
      return out;
    });
  }
  {
    const size_t n = 30000;
    const int reps = quick ? 10 : 20;
    std::vector<NRel> tri;
    tri.push_back(RandomRel({0, 1}, n, n, 61 + n));
    tri.push_back(RandomRel({1, 2}, n, n, 67 + n));
    tri.push_back(RandomRel({0, 2}, n, n, 73 + n));
    NRel check = reference::Join(reference::Join(tri[0], tri[1]), tri[2]);
    BenchOffOn(&rows, "_triangle", n, reps, {&tri[0], &tri[1], &tri[2]},
               [&](ExecContext& cx) {
      NRel out = MultiwayJoin(tri, &cx);
      TOPOFAQ_CHECK(out.EqualsAsFunction(check));
      return out;
    });
  }
  WriteJson(rows, out_path);
}

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const auto args = topofaq::bench::ParseMicroBenchArgs(
      argc, argv, "BENCH_obs_overhead.json");
  topofaq::Run(args.quick, args.out_path);
  return 0;
}
