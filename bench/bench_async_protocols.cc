// Sync-vs-async protocol benchmark: the same DistInstance executed on the
// synchronous round ledger (RunTrivialProtocol / RunCoreForestProtocol) and
// on the event-driven streaming simulator (RunTrivialProtocolAsync /
// RunCoreForestProtocolAsync), with answers checked bit-identical on every
// run. Reported per row:
//
//  * wall-clock of each execution mode (the JSON's kernel_ms = async,
//    reference_ms = sync — the reference-normalized ratio CI gates);
//  * the *simulated* cost models side by side: sync rounds vs async
//    makespan, plus total bits, pages shipped, and the peak in-flight pages
//    of the streaming transport under its per-node page budget;
//  * the encoded/plain payload ratio (enc/pln column, ProtocolStats::
//    payload_bits_encoded over payload_bits_plain) — the wire compression
//    the per-column encodings bought, reported per topology: the trivial
//    protocol is rerun on star and clique topologies at the top size.
//
// Workload: the Example 2.1/2.2 star intersection (full-overlap first
// attribute) over the Natural semiring on a line topology — the shape whose
// round count the paper pins at Θ(N), so the async makespan has a meaningful
// ledger to compare against. Rows are appended to BENCH_relation_ops.json
// via --out and gated by bench/check_bench_regression.py.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_micro_common.h"
#include "graphalg/topologies.h"
#include "hypergraph/generators.h"
#include "obs/trace.h"
#include "protocols/async.h"
#include "protocols/distributed.h"

namespace topofaq {
namespace {

using NRel = Relation<NaturalSemiring>;
using bench::TimeMs;

int g_parallelism = 1;

/// Star FAQ-SS with a planted full intersection on the shared attribute.
DistInstance<NaturalSemiring> StarInstance(int leaves, size_t n) {
  Hypergraph h = StarGraph(leaves);
  std::vector<NRel> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    RelationBuilder<NaturalSemiring> b{Schema(h.edge(e))};
    b.Reserve(n);
    std::vector<Value> row(h.edge(e).size(), 1);
    for (size_t i = 0; i < n; ++i) {
      row[0] = static_cast<Value>(i);
      b.Append(row, 1);
    }
    rels.push_back(b.Build());
  }
  DistInstance<NaturalSemiring> inst;
  inst.query = MakeFaqSS<NaturalSemiring>(h, std::move(rels), {});
  inst.topology = LineTopology(leaves + 1);
  inst.owners = RoundRobinOwners(h.num_edges(), leaves);
  inst.sink = leaves;
  return inst;
}

AsyncProtocolOptions AsyncOptions(int parallelism) {
  AsyncProtocolOptions opts;
  opts.stream.page_rows = 1024;  // ~n/1024 pages per relation: the budget
  opts.stream.node_page_budget = 8;  // backpressure path is really exercised
  opts.parallelism = parallelism;
  return opts;
}

struct Row {
  std::string bench;
  size_t n;
  size_t out_rows;
  double async_ms;      // wall, parallelism 1
  double async_par_ms;  // wall, g_parallelism
  double sync_ms;       // wall, parallelism 1
  double makespan;      // async simulated time
  int64_t rounds;       // sync simulated rounds
  int64_t async_bits;
  int64_t sync_bits;
  int64_t pages;
  int64_t peak_pages;
  int64_t payload_bits_encoded = 0;
  int64_t payload_bits_plain = 0;
};

/// Wire compression the per-column encodings bought on this run's streamed
/// payload (1.0 when everything shipped plain).
double PayloadRatio(const Row& r) {
  return r.payload_bits_plain > 0 ? static_cast<double>(r.payload_bits_encoded) /
                                        static_cast<double>(r.payload_bits_plain)
                                  : 1.0;
}

void Report(std::vector<Row>* rows, Row r) {
  std::printf(
      "%-13s %8zu %9.3f %9.3f %9.3f %10.1f %8lld %7lld %5lld %9.2fx %7.3f\n",
      r.bench.c_str(), r.n, r.async_ms, r.async_par_ms, r.sync_ms, r.makespan,
      static_cast<long long>(r.rounds), static_cast<long long>(r.pages),
      static_cast<long long>(r.peak_pages), r.sync_ms / r.async_ms,
      PayloadRatio(r));
  rows->push_back(std::move(r));
}

/// Runs one (sync fn, async fn) pair, checks the answers bit-identical at
/// both parallelism levels, and reports the row.
template <typename SyncFn, typename AsyncFn>
void BenchPair(std::vector<Row>* rows, const char* name, size_t n, int reps,
               SyncFn&& run_sync, AsyncFn&& run_async) {
  ProtocolResult<NaturalSemiring> sync_out, async_out, async_par_out;
  const double sync_ms = TimeMs(reps, [&] {
    auto r = run_sync(1);
    TOPOFAQ_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    sync_out = std::move(r.value());
  });
  const double async_ms = TimeMs(reps, [&] {
    auto r = run_async(1);
    TOPOFAQ_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    async_out = std::move(r.value());
  });
  double async_par_ms = async_ms;
  if (g_parallelism > 1) {
    async_par_ms = TimeMs(reps, [&] {
      auto r = run_async(g_parallelism);
      TOPOFAQ_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      async_par_out = std::move(r.value());
    });
    bench::CheckIdentical(async_out.answer, async_par_out.answer, name);
  }
  bench::CheckIdentical(sync_out.answer, async_out.answer, name);
  Row r;
  r.bench = name;
  r.n = n;
  r.out_rows = async_out.answer.size();
  r.async_ms = async_ms;
  r.async_par_ms = async_par_ms;
  r.sync_ms = sync_ms;
  r.makespan = async_out.stats.makespan;
  r.rounds = sync_out.stats.rounds;
  r.async_bits = async_out.stats.total_bits;
  r.sync_bits = sync_out.stats.total_bits;
  r.pages = async_out.stats.pages;
  r.peak_pages = async_out.stats.max_in_flight_pages;
  r.payload_bits_encoded = async_out.stats.payload_bits_encoded;
  r.payload_bits_plain = async_out.stats.payload_bits_plain;
  Report(rows, std::move(r));
}

void BenchSize(std::vector<Row>* rows, size_t n, int reps) {
  const auto inst = StarInstance(/*leaves=*/4, n);
  BenchPair(
      rows, "async_trivial", n, reps,
      [&](int p) {
        return RunTrivialProtocol(inst, TrivialOptions{.parallelism = p});
      },
      [&](int p) { return RunTrivialProtocolAsync(inst, AsyncOptions(p)); });
  BenchPair(
      rows, "async_forest", n, reps,
      [&](int p) {
        CoreForestOptions o;
        o.parallelism = p;
        return RunCoreForestProtocol(inst, o);
      },
      [&](int p) { return RunCoreForestProtocolAsync(inst, AsyncOptions(p)); });
}

/// The trivial protocol on alternative topologies over the same instance —
/// the per-topology rows of the encoded/plain payload ratio (the streamed
/// payload is identical; routing and contention differ).
void BenchTopologies(std::vector<Row>* rows, size_t n, int reps) {
  auto inst = StarInstance(/*leaves=*/4, n);
  struct Variant {
    const char* name;
    Graph g;
  };
  Variant variants[] = {{"async_trivial_star", StarTopology(5)},
                        {"async_trivial_clique", CliqueTopology(5)}};
  for (auto& v : variants) {
    inst.topology = std::move(v.g);
    BenchPair(
        rows, v.name, n, reps,
        [&](int p) {
          return RunTrivialProtocol(inst, TrivialOptions{.parallelism = p});
        },
        [&](int p) { return RunTrivialProtocolAsync(inst, AsyncOptions(p)); });
  }
}

/// One untimed traced run of both async protocols, exporting the simulated
/// timeline (link xmit spans + per-node compute spans, pid 2 in the Chrome
/// JSON) — what `--trace PATH` produces and tools/check_trace_json.py
/// validates in CI. Untimed on purpose: tracing every packet would pollute
/// the wall-clock rows above.
void WriteTrace(const char* path, bool quick) {
  obs::TraceSession ts;
  const auto inst = StarInstance(/*leaves=*/4, quick ? 10000 : 100000);
  AsyncProtocolOptions opts = AsyncOptions(1);
  opts.trace = &ts;
  auto forest = RunCoreForestProtocolAsync(inst, opts);
  TOPOFAQ_CHECK_MSG(forest.ok(), forest.status().ToString().c_str());
  auto trivial = RunTrivialProtocolAsync(inst, opts);
  TOPOFAQ_CHECK_MSG(trivial.ok(), trivial.status().ToString().c_str());
  ts.WriteChromeJson(path);
  std::printf("trace: %zu spans -> %s\n", ts.event_count(), path);
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::vector<std::string> lines;
  char buf[512];
  for (const Row& r : rows) {
    std::snprintf(
        buf, sizeof(buf),
        "{\"bench\": \"%s\", \"n\": %zu, \"out_rows\": %zu, "
        "\"kernel_ms\": %.4f, \"parallel_ms\": %.4f, \"parallelism\": %d, "
        "\"reference_ms\": %.4f, \"speedup\": %.3f, \"par_speedup\": %.3f, "
        "\"makespan\": %.1f, \"rounds\": %lld, \"async_bits\": %lld, "
        "\"sync_bits\": %lld, \"pages\": %lld, \"peak_pages\": %lld, "
        "\"payload_bits_encoded\": %lld, \"payload_bits_plain\": %lld, "
        "\"payload_ratio\": %.4f}",
        r.bench.c_str(), r.n, r.out_rows, r.async_ms, r.async_par_ms,
        g_parallelism, r.sync_ms, r.sync_ms / r.async_ms,
        r.async_ms / r.async_par_ms, r.makespan,
        static_cast<long long>(r.rounds), static_cast<long long>(r.async_bits),
        static_cast<long long>(r.sync_bits), static_cast<long long>(r.pages),
        static_cast<long long>(r.peak_pages),
        static_cast<long long>(r.payload_bits_encoded),
        static_cast<long long>(r.payload_bits_plain), PayloadRatio(r));
    lines.emplace_back(buf);
  }
  bench::WriteJsonRows(lines, path);
}

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const auto args = topofaq::bench::ParseMicroBenchArgs(
      argc, argv, "BENCH_async_protocols.json");
  topofaq::g_parallelism = args.parallelism;
  const char* trace_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];

  std::printf("parallelism: %d\n", topofaq::g_parallelism);
  std::printf("%-13s %8s %9s %9s %9s %10s %8s %7s %5s %9s %7s\n", "bench",
              "n", "async_ms", "apar_ms", "sync_ms", "makespan", "rounds",
              "pages", "peak", "spd", "enc/pln");
  std::vector<topofaq::Row> rows;
  // --quick keeps the 1e5 size: protocol wall times below it are
  // few-millisecond timings — shared-CI clock noise for the 1.5x relative
  // gate (the same rule that keeps scan/probe rows out below 1e5) — so the
  // JSON only records rows at sizes where the timing is signal, and the
  // gate needs at least one such row from the quick run.
  for (size_t n : {size_t{1000}, size_t{10000}, size_t{100000}}) {
    const int reps = args.quick ? (n <= 10000 ? 3 : 2) : (n <= 10000 ? 5 : 3);
    topofaq::BenchSize(&rows, n, reps);
    if (n == 100000) topofaq::BenchTopologies(&rows, n, reps);
  }
  std::erase_if(rows, [](const topofaq::Row& r) { return r.n < 100000; });
  topofaq::WriteJson(rows, args.out_path);
  if (trace_path != nullptr) topofaq::WriteTrace(trace_path, args.quick);
  return 0;
}
