// Shared scaffolding for the standalone kernel microbenches
// (bench_relation_ops, bench_multiway_join): wall-clock timing, the
// serial-vs-parallel byte-identity check, the shared flag set (--quick,
// --parallelism N / -j N, --out PATH), and the JSON array emission the CI
// perf-gate (check_bench_regression.py) parses. Deliberately separate from
// bench_common.h, which pulls in the full protocol stack and
// google-benchmark that the microbenches don't need.
#ifndef TOPOFAQ_BENCH_BENCH_MICRO_COMMON_H_
#define TOPOFAQ_BENCH_BENCH_MICRO_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "relation/relation.h"

namespace topofaq {
namespace bench {

/// Best-of-`reps` wall time of `fn` in milliseconds.
template <typename Fn>
double TimeMs(int reps, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto t0 = Clock::now();
    fn();
    auto t1 = Clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

/// Flags shared by the kernel microbenches. ParseMicroBenchArgs fills
/// `parallelism` with every core unless --parallelism/-j overrides it.
struct MicroBenchArgs {
  bool quick = false;
  int parallelism = 1;
  const char* out_path = nullptr;
};

inline MicroBenchArgs ParseMicroBenchArgs(int argc, char** argv,
                                          const char* default_out) {
  MicroBenchArgs args;
  args.out_path = default_out;
  args.parallelism =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) args.quick = true;
    if ((std::strcmp(argv[i], "--parallelism") == 0 ||
         std::strcmp(argv[i], "-j") == 0) &&
        i + 1 < argc)
      args.parallelism = std::max(1, std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      args.out_path = argv[++i];
  }
  return args;
}

/// Byte-identity between the serial and parallel kernel outputs — the
/// morsel-parallel determinism contract, enforced on every bench run.
template <CommutativeSemiring S>
void CheckIdentical(const Relation<S>& serial, const Relation<S>& parallel,
                    const char* what) {
  if (serial.columns() != parallel.columns() ||
      serial.annots() != parallel.annots() ||
      serial.canonical() != parallel.canonical()) {
    std::fprintf(stderr,
                 "FATAL: parallel kernel output differs from serial in %s\n",
                 what);
    std::abort();
  }
}

/// Writes pre-formatted JSON objects as one array to `path` — the shape
/// check_bench_regression.py loads.
inline void WriteJsonRows(const std::vector<std::string>& rows,
                          const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i)
    std::fprintf(f, "  %s%s\n", rows[i].c_str(),
                 i + 1 < rows.size() ? "," : "");
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace bench
}  // namespace topofaq

#endif  // TOPOFAQ_BENCH_BENCH_MICRO_COMMON_H_
