// Example 2.4 / Lemmas 4.3-4.4 / Theorem 4.4: hard-instance round counts.
// TRIBES instances are embedded into BCQs, the relations are assigned across
// a minimum cut of G (Lemma 4.4's worst-case assignment), and the real
// protocol runs on them; measured rounds vs the Ω(m·N / MinCut) argument.
#include "bench_common.h"

#include "lowerbounds/embeddings.h"
#include "lowerbounds/tribes.h"

namespace topofaq {
namespace {

void RunHardInstance(const char* label, const Hypergraph& h, const Graph& g,
                     int m, int n, uint64_t seed) {
  Rng rng(seed);
  TribesInstance t = RandomTribes(m, n, 0.8, &rng);
  auto emb = (h.MaxArity() <= 2 && IsAcyclic(h))
                 ? EmbedTribesInForest(h, t)
                 : EmbedTribesByIndependentSet(h, t);
  if (!emb.ok()) {
    std::printf("%-24s embed error: %s\n", label, emb.status().ToString().c_str());
    return;
  }
  auto assign = AssignAcrossMinCut(g, *emb);
  if (!assign.ok()) {
    std::printf("%-24s assign error\n", label);
    return;
  }
  DistInstance<BooleanSemiring> inst;
  inst.query = emb->query;
  inst.topology = g;
  inst.owners = assign->owners;
  inst.sink = assign->bob;
  ProtocolStats stats;
  auto ans = RunBcqProtocol(inst, &stats);
  if (!ans.ok()) {
    std::printf("%-24s protocol error\n", label);
    return;
  }
  const bool correct = (*ans == t.Evaluate());
  const int64_t lb = static_cast<int64_t>(m) * n /
                     std::max<int64_t>(1, assign->min_cut);
  std::printf("%-24s m=%-2d N=%-4d cut=%-2lld measured=%-7lld "
              "omega(mN/cut)=%-6lld ratio=%5.2f  %s\n",
              label, m, n, static_cast<long long>(assign->min_cut),
              static_cast<long long>(stats.rounds),
              static_cast<long long>(lb),
              static_cast<double>(stats.rounds) / static_cast<double>(lb),
              correct ? "ok" : "WRONG");
}

void PrintTable(bool quick) {
  std::printf("== Lower-bound hard instances (TRIBES embeddings, worst-case "
              "cut assignment) ==\n\n");
  const int big = quick ? 64 : 256;
  const int small = quick ? 64 : 128;
  RunHardInstance("star H1 on line", PaperH1(), LineTopology(4), 1, big, 1);
  RunHardInstance("star H1 on dumbbell", PaperH1(), DumbbellTopology(3, 3), 1,
                  big, 2);
  {
    Rng rng(3);
    Hypergraph forest = RandomForest(2, 5, &rng);
    int cap = ForestEmbeddingCapacity(forest);
    RunHardInstance("forest(2x5) on line", forest, LineTopology(6),
                    std::min(cap, 3), small, 3);
    RunHardInstance("forest(2x5) on grid", forest, GridTopology(2, 3),
                    std::min(cap, 3), small, 4);
  }
  RunHardInstance("cycle6 (IS embed) line", CycleGraph(6), LineTopology(5), 2,
                  small, 5);
  if (!quick)
    RunHardInstance("cycle9 (IS embed) ring", CycleGraph(9), RingTopology(6),
                    3, small, 6);
  std::printf(
      "\nMeasured rounds track m*N/MinCut within small constants: the\n"
      "embeddings are communication-saturating, as the reduction promises.\n\n");
}

void BM_EmbedTribes(benchmark::State& state) {
  Rng rng(9);
  Hypergraph forest = RandomForest(2, 5, &rng);
  TribesInstance t = RandomTribes(2, 128, 0.8, &rng);
  for (auto _ : state) {
    auto emb = EmbedTribesInForest(forest, t);
    benchmark::DoNotOptimize(emb);
  }
}
BENCHMARK(BM_EmbedTribes);

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const topofaq::bench::BenchArgs args =
      topofaq::bench::ParseBenchArgs(&argc, argv);
  topofaq::PrintTable(args.quick);
  if (args.quick) return 0;  // smoke mode: reproduction table only
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
