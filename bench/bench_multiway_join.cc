// Worst-case-optimal multiway join microbenchmark: MultiwayJoin vs the
// pairwise sort-merge Join chain on the cyclic-core family the WCOJ
// literature is built around — the triangle, the 4-cycle, and the
// Loomis–Whitney join on 4 variables. Each input carries a skewed "hub"
// spike (a heavy shared key) on top of a random sparse base, the shape that
// drives pairwise intermediates toward the N² worst case while the output —
// and hence the multiway join's peak materialization — stays small.
//
// Results are printed as a table and written as JSON (default
// BENCH_multiway_join.json; CI passes --out). The committed baseline lives
// merged inside BENCH_relation_ops.json, and bench/check_bench_regression.py
// gates CI on the multiway/pairwise ratio at parallelism 1 and max, so the
// ≥5× triangle speedup recorded there is enforced across PRs.
//
// Flags: --quick (CI sizes), --parallelism N / -j N (default: every core),
// --out PATH. Every run checks the multiway output byte-identical between
// parallelism 1 and the requested level, and function-equal to the pairwise
// plan.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_micro_common.h"
#include "relation/exec.h"
#include "relation/multiway.h"
#include "relation/ops.h"
#include "util/rng.h"

namespace topofaq {
namespace {

using NRel = Relation<NaturalSemiring>;
using bench::TimeMs;

int g_parallelism = 1;

/// n-row binary relation: a sparse random base over [dom)² plus a `spike`
/// heavy rows pinned to hub_col == 0 (the skew that makes pairwise plans
/// quadratic). hub_col < 0 disables the spike.
NRel SkewedRel(const std::vector<VarId>& vars, size_t n, uint64_t dom,
               size_t spike, int hub_col, uint64_t seed) {
  Rng rng(seed);
  Relation<NaturalSemiring> r{Schema(vars)};
  std::vector<Value> row(vars.size());
  const size_t base = n - std::min(n, spike);
  for (size_t i = 0; i < base; ++i) {
    for (auto& v : row) v = rng.NextU64(dom);
    r.Add(row, rng.NextU64(100) + 1);
  }
  for (size_t i = 0; base + i < n; ++i) {
    for (size_t j = 0; j < row.size(); ++j)
      row[j] = (static_cast<int>(j) == hub_col) ? 0 : i + 1;
    r.Add(row, rng.NextU64(100) + 1);
  }
  r.Canonicalize();
  return r;
}

struct Row {
  std::string bench;
  size_t n;
  size_t out_rows;
  double kernel_ms;    // serial MultiwayJoin (parallelism 1)
  double parallel_ms;  // MultiwayJoin at g_parallelism workers
  double reference_ms;  // pairwise Join chain (parallelism 1)
  size_t mw_peak_rows;        // peak rows materialized by MultiwayJoin
  size_t pairwise_peak_rows;  // largest intermediate of the pairwise chain
};

void Report(std::vector<Row>* rows, Row r) {
  std::printf("%-16s %9zu %9zu %10.3f %10.3f %12.3f %7.2fx %10zu %10zu\n",
              r.bench.c_str(), r.n, r.out_rows, r.kernel_ms, r.parallel_ms,
              r.reference_ms, r.reference_ms / r.kernel_ms, r.mw_peak_rows,
              r.pairwise_peak_rows);
  rows->push_back(std::move(r));
}

/// Best-of-`reps` MultiwayJoin timing. The operator consumes its input
/// vector, so each rep hands it a fresh copy — made *outside* the clocked
/// region so the memcpy never inflates the recorded kernel time.
double TimeMultiway(int reps, const std::vector<NRel>& rels, ExecContext* cx,
                    NRel* out) {
  using Clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    std::vector<NRel> in = rels;
    auto t0 = Clock::now();
    *out = MultiwayJoin(std::move(in), cx);
    auto t1 = Clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

/// Runs one cyclic-core instance: times MultiwayJoin at parallelism 1 and at
/// g_parallelism (byte-identical check), times the pairwise left-fold chain,
/// checks function equality, and reports peak materializations.
void BenchFamily(std::vector<Row>* rows, const char* name,
                 const std::vector<NRel>& rels, size_t n, int reps) {
  ExecContext serial;
  serial.parallelism = 1;
  NRel mw1;
  const double k1 = TimeMultiway(reps, rels, &serial, &mw1);
  double kp = k1;
  if (g_parallelism > 1) {
    ExecContext par;
    par.parallelism = g_parallelism;
    NRel mwp;
    kp = TimeMultiway(reps, rels, &par, &mwp);
    bench::CheckIdentical(mw1, mwp, name);
  }

  size_t pairwise_peak = 0;
  NRel pw;
  const double h = TimeMs(reps, [&] {
    ExecContext pctx;
    pctx.parallelism = 1;
    pairwise_peak = 0;
    pw = rels[0];
    for (size_t i = 1; i < rels.size(); ++i) {
      pw = Join(pw, rels[i], &pctx);
      pairwise_peak = std::max(pairwise_peak, pw.size());
    }
  });
  TOPOFAQ_CHECK_MSG(mw1.EqualsAsFunction(pw),
                    "multiway join != pairwise join");
  // Measured high-water materialization (OpStats::peak_rows), not assumed.
  Report(rows, Row{name, n, mw1.size(), k1, kp, h,
                   static_cast<size_t>(serial.multiway.peak_rows),
                   pairwise_peak});
}

void BenchTriangle(std::vector<Row>* rows, size_t n, int reps) {
  const uint64_t dom = std::max<uint64_t>(4, n / 8);
  const size_t spike = std::min<size_t>(n / 32, 4000);
  // Hub on the shared variable 1: R's and S's spikes meet at b == 0, so the
  // pairwise plan materializes the spike² cross block before T prunes it.
  std::vector<NRel> rels{SkewedRel({0, 1}, n, dom, spike, 1, 17 + n),
                         SkewedRel({1, 2}, n, dom, spike, 0, 71 + n),
                         SkewedRel({0, 2}, n, dom, 0, -1, 131 + n)};
  BenchFamily(rows, "triangle", rels, n, reps);
}

void BenchCycle4(std::vector<Row>* rows, size_t n, int reps) {
  const uint64_t dom = std::max<uint64_t>(4, n / 4);
  const size_t spike = std::min<size_t>(n / 32, 4000);
  std::vector<NRel> rels{SkewedRel({0, 1}, n, dom, spike, 1, 19 + n),
                         SkewedRel({1, 2}, n, dom, spike, 0, 73 + n),
                         SkewedRel({2, 3}, n, dom, 0, -1, 137 + n),
                         SkewedRel({0, 3}, n, dom, 0, -1, 173 + n)};
  BenchFamily(rows, "cycle4", rels, n, reps);
}

void BenchLoomisWhitney(std::vector<Row>* rows, size_t n, int reps) {
  // LW(4): every 3-subset of {0,1,2,3}; dom ~ (4n)^{1/3} keeps the output
  // near n while pairwise pays the n²/dom² intermediate.
  const uint64_t dom = std::max<uint64_t>(
      4, static_cast<uint64_t>(std::cbrt(4.0 * static_cast<double>(n))));
  std::vector<NRel> rels{SkewedRel({0, 1, 2}, n, dom, 0, -1, 23 + n),
                         SkewedRel({1, 2, 3}, n, dom, 0, -1, 79 + n),
                         SkewedRel({0, 2, 3}, n, dom, 0, -1, 139 + n),
                         SkewedRel({0, 1, 3}, n, dom, 0, -1, 179 + n)};
  BenchFamily(rows, "loomis_whitney", rels, n, reps);
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::vector<std::string> lines;
  char buf[320];
  for (const Row& r : rows) {
    std::snprintf(buf, sizeof(buf),
                  "{\"bench\": \"%s\", \"n\": %zu, \"out_rows\": %zu, "
                  "\"kernel_ms\": %.4f, \"parallel_ms\": %.4f, "
                  "\"parallelism\": %d, \"reference_ms\": %.4f, "
                  "\"speedup\": %.3f, \"mw_peak_rows\": %zu, "
                  "\"pairwise_peak_rows\": %zu}",
                  r.bench.c_str(), r.n, r.out_rows, r.kernel_ms, r.parallel_ms,
                  g_parallelism, r.reference_ms, r.reference_ms / r.kernel_ms,
                  r.mw_peak_rows, r.pairwise_peak_rows);
    lines.emplace_back(buf);
  }
  bench::WriteJsonRows(lines, path);
}

}  // namespace
}  // namespace topofaq

int main(int argc, char** argv) {
  const auto args = topofaq::bench::ParseMicroBenchArgs(
      argc, argv, "BENCH_multiway_join.json");
  const bool quick = args.quick;
  const char* out_path = args.out_path;
  topofaq::g_parallelism = args.parallelism;

  std::printf("parallelism: %d\n", topofaq::g_parallelism);
  std::printf("%-16s %9s %9s %10s %10s %12s %7s %10s %10s\n", "bench", "n",
              "out", "multi_ms", "par_ms", "pairwise_ms", "speedup",
              "mw_peak", "pw_peak");
  std::vector<topofaq::Row> rows;
  const std::vector<size_t> sizes =
      quick ? std::vector<size_t>{1000, 10000, 100000}
            : std::vector<size_t>{1000, 10000, 100000, 300000};
  for (size_t n : sizes) {
    const int reps = n <= 10000 ? 5 : 3;
    topofaq::BenchTriangle(&rows, n, reps);
    topofaq::BenchCycle4(&rows, n, reps);
    topofaq::BenchLoomisWhitney(&rows, n, reps);
  }
  topofaq::WriteJson(rows, out_path);
  return 0;
}
