// Sensor-network aggregation (Appendix A.4): sensors on a tree topology hold
// reading tables; the base station wants an aggregate over their join. We
// phrase it as a general FAQ with a MIN aggregate on one bound variable and
// SUM on the rest, and compare topologies.
#include <cstdio>

#include "graphalg/topologies.h"
#include "hypergraph/generators.h"
#include "protocols/distributed.h"
#include "server/engine.h"
#include "util/rng.h"

using namespace topofaq;

int main() {
  std::printf("== sensor-network aggregation ==\n\n");
  Rng rng(7);

  // Query: sensors share a region key A (variable 0); each sensor e holds
  // readings R_e(A, reading_e). We aggregate: per region, SUM over joined
  // readings of the product of calibration weights, taking MIN over sensor
  // 1's reading (e.g. "worst calibrated sample").
  const int kSensors = 4;
  Hypergraph h = StarGraph(kSensors);
  const uint64_t regions = 48, readings = 4;
  std::vector<Relation<CountingSemiring>> tables;
  for (int e = 0; e < h.num_edges(); ++e) {
    Relation<CountingSemiring> r{Schema(h.edge(e))};
    for (uint64_t a = 0; a < regions; ++a)
      for (uint64_t v = 0; v < readings; ++v)
        if (rng.NextBool(0.6))
          r.Add({a, v}, (4.0 + static_cast<double>(rng.NextU64(12))) / 4.0);
    tables.push_back(std::move(r));
  }
  auto query = MakeFaqSS<CountingSemiring>(h, std::move(tables), {0});
  query.var_ops[1] = VarOp::kMin;  // sensor 1's reading: MIN aggregate

  // The brute-force oracle, selected as an engine strategy.
  Engine engine;
  auto exact = engine.Solve(query, Strategy::kBruteForce);
  if (!exact.ok()) {
    std::printf("error: %s\n", exact.status().ToString().c_str());
    return 1;
  }
  std::printf("regions with data: %zu of %llu\n\n", exact->size(),
              static_cast<unsigned long long>(regions));

  // Run on three deployment topologies; the base station is node 0.
  struct Deployment {
    const char* name;
    Graph g;
  };
  Rng topo_rng(9);
  Deployment deployments[] = {
      {"chain (corridor)", LineTopology(5)},
      {"balanced tree", BalancedTreeTopology(2, 2)},
      {"mesh (random)", RandomConnectedTopology(6, 5, &topo_rng)},
  };
  for (auto& dep : deployments) {
    DistInstance<CountingSemiring> inst;
    inst.query = query;
    inst.topology = dep.g;
    inst.owners = RoundRobinOwners(h.num_edges(), dep.g.num_nodes());
    inst.sink = 0;
    auto res = RunCoreForestProtocol(inst);
    if (!res.ok()) {
      std::printf("%-18s protocol error: %s\n", dep.name,
                  res.status().ToString().c_str());
      continue;
    }
    std::printf("%-18s %5lld rounds  %7lld bits   correct=%s\n", dep.name,
                static_cast<long long>(res->stats.rounds),
                static_cast<long long>(res->stats.total_bits),
                res->answer.EqualsAsFunction(*exact) ? "yes" : "NO");
  }
  std::printf("\nBetter-connected deployments finish the same aggregation in "
              "fewer rounds,\nas predicted by min_D(N/ST(G,K,D) + D).\n");
  return 0;
}
