// Matrix-chain pipeline (Section 6): k layers of F2 matrices on a line of
// devices (the paper's k-layer-network motivation). Runs all three
// protocols, checks them against each other and against the Eq. (5) FAQ
// formulation, and prints the round counts next to the Θ(kN) lower bound.
#include <cstdio>

#include "lowerbounds/bounds.h"
#include "mcm/protocols.h"
#include "server/engine.h"

using namespace topofaq;

int main() {
  std::printf("== F2 matrix-chain pipeline on a line ==\n\n");
  Rng rng(99);

  const int n = 48;
  for (int k : {2, 4, 8, 16}) {
    McmInstance inst;
    inst.x = BitVector::Random(n, &rng);
    for (int i = 0; i < k; ++i)
      inst.matrices.push_back(BitMatrix::Random(n, &rng));

    McmResult seq = RunMcmSequential(inst);
    McmResult mrg = RunMcmMerge(inst);
    McmResult trv = RunMcmTrivial(inst);
    McmBounds bounds = ComputeMcmBounds(k, n);
    const BitVector expected = ChainApply(inst.matrices, inst.x);
    const bool ok =
        seq.y == expected && mrg.y == expected && trv.y == expected;

    std::printf("k=%2d N=%d | sequential %6lld  merge %7lld  trivial %7lld "
                "| LB k*N = %5lld | answers agree: %s\n",
                k, n, static_cast<long long>(seq.rounds),
                static_cast<long long>(mrg.rounds),
                static_cast<long long>(trv.rounds),
                static_cast<long long>(bounds.lower), ok ? "yes" : "NO");
  }

  // Cross-check the FAQ-SS formulation (Eq. (5)) on a small instance.
  McmInstance small;
  small.x = BitVector::Random(6, &rng);
  for (int i = 0; i < 3; ++i)
    small.matrices.push_back(BitMatrix::Random(6, &rng));
  Engine engine;
  auto res = engine.Solve(McmAsFaq(small), Strategy::kBruteForce);
  if (!res.ok()) {
    std::printf("FAQ error: %s\n", res.status().ToString().c_str());
    return 1;
  }
  const bool faq_ok =
      DecodeFaqVector(*res, 6) == ChainApply(small.matrices, small.x);
  std::printf("\nEq. (5) FAQ-SS over GF(2) equals the chain product: %s\n",
              faq_ok ? "yes" : "NO");
  std::printf("Sequential is Θ(kN) — tight by Theorem 6.4's min-entropy "
              "lower bound (k <= N).\n");
  return 0;
}
