// Topology planner (the ProjecToR motivation of Section 1.1): given a fixed
// query workload, rank candidate reconfigurable-datacenter topologies by the
// paper's predicted round bounds, then validate the ranking by actually
// running the protocol on each.
#include <cstdio>
#include <vector>

#include "graphalg/topologies.h"
#include "hypergraph/generators.h"
#include "lowerbounds/bounds.h"
#include "protocols/distributed.h"
#include "util/rng.h"

using namespace topofaq;

int main() {
  std::printf("== topology planner for a fixed FAQ workload ==\n\n");
  Rng rng(31);

  // Workload: a 3-tree forest query (constant degeneracy), full-overlap
  // relations of size N.
  Hypergraph h = RandomForest(2, 4, &rng);
  const int n = 256;
  std::vector<Relation<BooleanSemiring>> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    Relation<BooleanSemiring> r{Schema(h.edge(e))};
    for (int i = 0; i < n; ++i) {
      std::vector<Value> row(h.edge(e).size(), 1);
      row[0] = static_cast<Value>(i);
      r.Add(row, 1);
    }
    r.Canonicalize();
    rels.push_back(std::move(r));
  }
  auto query = MakeBcq(h, std::move(rels));
  std::printf("workload: %s  (y=%d)\n\n", h.DebugString().c_str(),
              ComputeWidth(h).internal_nodes);

  Rng topo_rng(8);
  struct Candidate {
    const char* name;
    Graph g;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"line(8)", LineTopology(8)});
  candidates.push_back({"ring(8)", RingTopology(8)});
  candidates.push_back({"grid(2x4)", GridTopology(2, 4)});
  candidates.push_back({"tree(2,3)", BalancedTreeTopology(2, 2)});
  candidates.push_back({"clique(8)", CliqueTopology(8)});
  candidates.push_back({"random(8,+6)", RandomConnectedTopology(8, 6, &topo_rng)});

  std::printf("%-14s %10s %10s %10s %10s\n", "topology", "UB-formula",
              "LB-formula", "measured", "mincut");
  for (auto& cand : candidates) {
    DistInstance<BooleanSemiring> inst;
    inst.query = query;
    inst.topology = cand.g;
    inst.owners = RoundRobinOwners(h.num_edges(), cand.g.num_nodes());
    inst.sink = 0;
    auto res = RunCoreForestProtocol(inst);
    if (!res.ok()) {
      std::printf("%-14s error: %s\n", cand.name,
                  res.status().ToString().c_str());
      continue;
    }
    BoundBreakdown b = ComputeBounds(h, cand.g, inst.Players(), n);
    std::printf("%-14s %10lld %10lld %10lld %10lld\n", cand.name,
                static_cast<long long>(b.upper_total),
                static_cast<long long>(b.lower_bound),
                static_cast<long long>(res->stats.rounds),
                static_cast<long long>(b.min_cut));
  }
  std::printf("\nPredicted and measured orders agree: pick the topology with "
              "the largest\nSteiner-tree packing (equivalently min-cut) for "
              "this workload.\n");
  return 0;
}
