// Quickstart: build a small FAQ query, solve it through the engine (which
// predicts the paper's bounds before executing), then run the distributed
// protocol on two topologies and compare the measured round counts with the
// Theorem 4.1 bound formulas.
#include <cstdio>

#include "graphalg/topologies.h"
#include "hypergraph/generators.h"
#include "lowerbounds/bounds.h"
#include "protocols/distributed.h"
#include "server/engine.h"

using namespace topofaq;

int main() {
  std::printf("== topofaq quickstart ==\n\n");

  // The star query H1 of Figure 1: q() :- R(A,B), S(A,C), T(A,D), U(A,E).
  Hypergraph h = PaperH1();
  std::printf("query hypergraph: %s\n", h.DebugString().c_str());

  // Relations: every player knows values 0..N-1 on the shared attribute A,
  // plus a private second column.
  const int n = 256;
  std::vector<Relation<BooleanSemiring>> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    Relation<BooleanSemiring> r{Schema(h.edge(e))};
    for (int i = 0; i < n; ++i) r.Add({static_cast<Value>(i), 1});
    rels.push_back(std::move(r));
  }
  auto query = MakeBcq(h, std::move(rels));

  // 1. Centralized evaluation, served: the engine computes the hypergraph
  // bounds first (admission control), classifies the query, then runs the
  // Theorem G.3 GHD message passing.
  Engine engine;
  QueryRequest request;
  request.query = query;
  request.tag = "quickstart-bcq";
  auto central = engine.Solve(std::move(request));
  if (!central.ok()) {
    std::printf("engine error: %s\n", central.status().ToString().c_str());
    return 1;
  }
  std::printf("centralized BCQ answer: %s\n",
              central->answer_as<BooleanSemiring>().empty() ? "unsatisfiable"
                                                            : "satisfiable");
  std::printf("engine: queue=%s, predicted <= %llu rows, observed %llu, "
              "plan cache %s\n\n",
              QueueClassName(central->klass),
              static_cast<unsigned long long>(
                  central->bounds.predicted_output_rows),
              static_cast<unsigned long long>(central->observed_rows),
              central->plan_cache_hit ? "hit" : "miss");

  // 2. Width machinery: y(H1) = 1, one star.
  WidthResult w = ComputeWidth(h);
  std::printf("internal-node-width y(H) = %d, n2(H) = %d\n\n",
              w.internal_nodes, w.n2);

  // 3. Distributed execution on the Figure 1 topologies.
  for (const char* name : {"line G1", "clique G2"}) {
    DistInstance<BooleanSemiring> inst;
    inst.query = query;
    inst.topology =
        (name[0] == 'l') ? LineTopology(4) : CliqueTopology(4);
    inst.owners = {0, 1, 2, 3};
    inst.sink = 1;
    ProtocolStats stats;
    auto ans = RunBcqProtocol(inst, &stats);
    if (!ans.ok()) {
      std::printf("protocol error: %s\n", ans.status().ToString().c_str());
      return 1;
    }
    auto trivial = RunTrivialProtocol(inst);
    BoundBreakdown b =
        ComputeBounds(h, inst.topology, inst.Players(), n);
    std::printf("%-9s : protocol %6lld rounds | trivial %6lld rounds | "
                "UB formula %lld | LB formula %lld\n",
                name, static_cast<long long>(stats.rounds),
                static_cast<long long>(trivial->stats.rounds),
                static_cast<long long>(b.upper_total),
                static_cast<long long>(b.lower_bound));
  }
  std::printf("\nThe clique halves the star phase (Example 2.3) and both "
              "beat the trivial protocol.\n");
  return 0;
}
