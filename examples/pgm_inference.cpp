// PGM inference as FAQ-SS (Section 1): a tree-structured probabilistic
// graphical model whose factors live on different machines; we compute a
// *factor marginal* (F = e over the counting semiring) with the distributed
// protocol and verify it against exact centralized inference.
#include <cstdio>

#include "graphalg/topologies.h"
#include "hypergraph/generators.h"
#include "protocols/distributed.h"
#include "server/engine.h"
#include "util/rng.h"

using namespace topofaq;

int main() {
  std::printf("== PGM factor-marginal inference ==\n\n");
  Rng rng(2024);

  // A small tree-shaped PGM: 7 variables, pairwise potentials along a tree.
  Hypergraph model = RandomTree(7, &rng);
  std::printf("model (markov tree): %s\n", model.DebugString().c_str());

  // Random potentials over domain {0,1,2}: f_e(x_u, x_v) > 0.
  const uint64_t domain = 3;
  std::vector<Relation<CountingSemiring>> factors;
  for (int e = 0; e < model.num_edges(); ++e) {
    Relation<CountingSemiring> f{Schema(model.edge(e))};
    for (uint64_t a = 0; a < domain; ++a)
      for (uint64_t b = 0; b < domain; ++b)
        f.Add({a, b}, (1.0 + static_cast<double>(rng.NextU64(16))) / 4.0);
    factors.push_back(std::move(f));
  }

  // Marginalize onto factor 0 (the paper's "factor marginal in PGMs").
  auto query = MakeFactorMarginal(model, factors, /*marginal_edge=*/0);

  // Centralized exact inference, served by the engine (GHD strategy).
  Engine engine;
  auto exact = engine.Solve(query);
  if (!exact.ok()) {
    std::printf("solver error: %s\n", exact.status().ToString().c_str());
    return 1;
  }

  // Distribute the factors over a sensor-network-like balanced tree
  // (Appendix A.4) and run the protocol.
  DistInstance<CountingSemiring> inst;
  inst.query = query;
  inst.topology = BalancedTreeTopology(2, 2);
  inst.owners = RoundRobinOwners(model.num_edges(), inst.topology.num_nodes());
  inst.sink = 0;  // the base station
  auto dist = RunCoreForestProtocol(inst);
  if (!dist.ok()) {
    std::printf("protocol error: %s\n", dist.status().ToString().c_str());
    return 1;
  }

  std::printf("\nunnormalized marginal over factor 0 (%zu entries):\n",
              exact->size());
  double z = 0;
  for (size_t i = 0; i < exact->size(); ++i) z += exact->annot(i);
  for (size_t i = 0; i < std::min<size_t>(exact->size(), 9); ++i) {
    std::printf("  (x%u=%llu, x%u=%llu)  p = %.4f\n",
                exact->schema().var(0),
                static_cast<unsigned long long>(exact->at(i, 0)),
                exact->schema().var(1),
                static_cast<unsigned long long>(exact->at(i, 1)),
                exact->annot(i) / z);
  }
  std::printf("\ndistributed == centralized: %s\n",
              dist->answer.EqualsAsFunction(*exact) ? "yes" : "NO");
  std::printf("protocol: %lld rounds, %lld bits on the wire\n",
              static_cast<long long>(dist->stats.rounds),
              static_cast<long long>(dist->stats.total_bits));
  return 0;
}
