// Worst-case-optimal multiway join tests (docs/kernel.md, "Worst-case-
// optimal join"): differential checks of MultiwayJoin against the retained
// pairwise-Join oracle across four semirings on triangle / 4-cycle / skewed
// / empty / single-key-run / permuted-schema inputs, byte-identical output
// across parallelism ∈ {1, 2, 7, hardware_concurrency}, the AGM peak-
// intermediate property on the triangle query, and the JoinAndEliminate
// routing policy (cyclic / >= 3-relation components go multiway, smaller
// components stay pairwise).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "bit_identity.h"
#include "faq/query.h"
#include "faq/solvers.h"
#include "hypergraph/generators.h"
#include "random_instances.h"
#include "relation/multiway.h"
#include "relation/ops.h"
#include "util/rng.h"

namespace topofaq {
namespace {

/// The pairwise oracle: left-fold of the sort-merge Join, permuted to the
/// ascending-variable schema MultiwayJoin emits.
template <CommutativeSemiring S>
Relation<S> PairwiseOracle(const std::vector<Relation<S>>& rels) {
  ExecContext ctx;
  ctx.parallelism = 1;
  Relation<S> acc = rels[0];
  for (size_t i = 1; i < rels.size(); ++i) acc = Join(acc, rels[i], &ctx);
  return internal::PermuteToVarOrder(std::move(acc), ctx, &ctx.multiway);
}

/// Differential + determinism check for one input family: MultiwayJoin must
/// compute the same function as the pairwise chain, and every parallelism
/// level must reproduce the serial bytes.
template <CommutativeSemiring S>
void CheckMultiway(const std::vector<Relation<S>>& rels,
                   const std::string& what) {
  SCOPED_TRACE(what);
  ExecContext serial;
  serial.parallelism = 1;
  const Relation<S> mw = MultiwayJoin(rels, &serial);
  EXPECT_TRUE(mw.canonical());
  EXPECT_TRUE(mw.EqualsAsFunction(PairwiseOracle(rels)));
  const int hw =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
  for (int p : {2, 7, hw}) {
    ExecContext ctx;
    ctx.parallelism = p;
    SCOPED_TRACE("parallelism " + std::to_string(p));
    EXPECT_TRUE(BytesEqual(MultiwayJoin(rels, &ctx), mw));
    EXPECT_EQ(ctx.multiway.rows_out, serial.multiway.rows_out);
  }
}

template <CommutativeSemiring S>
void RunSemiringSuite(uint64_t seed) {
  const size_t n = 2000;  // above kParallelMinRows: the morsel path engages
  // Triangle R(0,1) ⋈ S(1,2) ⋈ T(0,2): the canonical cyclic core.
  CheckMultiway<S>({RandomRelation<S>({0, 1}, n, 250, seed),
                    RandomRelation<S>({1, 2}, n, 250, seed + 1),
                    RandomRelation<S>({0, 2}, n, 250, seed + 2)},
                   InstanceLabel("triangle", seed));
  // 4-cycle R(0,1) ⋈ S(1,2) ⋈ T(2,3) ⋈ U(0,3).
  CheckMultiway<S>({RandomRelation<S>({0, 1}, n, 400, seed + 3),
                    RandomRelation<S>({1, 2}, n, 400, seed + 4),
                    RandomRelation<S>({2, 3}, n, 400, seed + 5),
                    RandomRelation<S>({0, 3}, n, 400, seed + 6)},
                   InstanceLabel("4-cycle", seed));
  // Heavy skew on the outermost variable: long unequal top-level key runs
  // stress the morsel-cut alignment.
  CheckMultiway<S>({RandomRelation<S>({0, 1}, n, 64, seed + 7, 2),
                    RandomRelation<S>({1, 2}, n, 64, seed + 8),
                    RandomRelation<S>({0, 2}, n, 64, seed + 9, 2)},
                   InstanceLabel("skewed triangle", seed));
  // One empty input: the join is empty at every parallelism level.
  CheckMultiway<S>({RandomRelation<S>({0, 1}, n, 250, seed + 10),
                    Relation<S>{Schema({1, 2})},
                    RandomRelation<S>({0, 2}, n, 250, seed + 11)},
                   InstanceLabel("empty side", seed));
  // Single key run at the outermost variable: one morsel, serial semantics.
  {
    RelationBuilder<S> br{Schema({0, 1})}, bt{Schema({0, 2})};
    for (size_t i = 0; i < 2048; ++i) {
      br.Append({7, static_cast<Value>(i)}, TestAnnot<S>(i));
      bt.Append({7, static_cast<Value>(i * 3 % 512)}, TestAnnot<S>(i + 5));
    }
    CheckMultiway<S>({br.Build(), RandomRelation<S>({1, 2}, n, 512, seed + 12),
                      bt.Build()},
                     InstanceLabel("single top key run", seed));
  }
  // Out-of-order schema: the permutation pass must rebuild the trie view.
  CheckMultiway<S>({RandomRelation<S>({0, 1}, n, 250, seed + 13),
                    RandomRelation<S>({1, 2}, n, 250, seed + 14),
                    RandomRelation<S>({2, 0}, n, 250, seed + 15)},
                   InstanceLabel("permuted schema", seed));
}

TEST(MultiwayJoin, NaturalSemiring) { RunSemiringSuite<NaturalSemiring>(11); }
TEST(MultiwayJoin, CountingSemiring) {
  RunSemiringSuite<CountingSemiring>(22);
}
TEST(MultiwayJoin, MinPlusSemiring) { RunSemiringSuite<MinPlusSemiring>(33); }
TEST(MultiwayJoin, Gf2Semiring) { RunSemiringSuite<Gf2Semiring>(44); }

// The SIMD frontier/seek kernels are pure mechanism: forcing the scalar
// bodies must reproduce the vector path's bytes on the full semiring suite
// (the vector leg runs in the tests above under the default toggle).
TEST(MultiwayJoin, ScalarModeBitIdentical) {
  ScopedSimdMode off(false);
  RunSemiringSuite<CountingSemiring>(22);
}

TEST(MultiwayJoin, SingleRelationIsItsTrieView) {
  auto r = RandomRelation<NaturalSemiring>({3, 1}, 500, 40, 9);
  ExecContext ctx;
  const auto out = MultiwayJoin<NaturalSemiring>({r}, &ctx);
  EXPECT_EQ(out.schema().vars(), (std::vector<VarId>{1, 3}));
  EXPECT_TRUE(out.EqualsAsFunction(
      internal::PermuteToVarOrder(r, ctx, &ctx.multiway)));
}

TEST(MultiwayJoin, ZeroAryInputsFoldIntoAScalarFactor) {
  Relation<NaturalSemiring> scalar{Schema(std::vector<VarId>{})};
  scalar.Add(std::initializer_list<Value>{}, 5);
  auto r = RandomRelation<NaturalSemiring>({0, 1}, 300, 20, 3);
  auto s = RandomRelation<NaturalSemiring>({1, 2}, 300, 20, 4);
  auto t = RandomRelation<NaturalSemiring>({0, 2}, 300, 20, 5);
  ExecContext ctx;
  const auto with = MultiwayJoin<NaturalSemiring>({scalar, r, s, t}, &ctx);
  const auto without = MultiwayJoin<NaturalSemiring>({r, s, t}, &ctx);
  ASSERT_EQ(with.size(), without.size());
  for (size_t i = 0; i < with.size(); ++i)
    EXPECT_EQ(with.annot(i), 5 * without.annot(i));
}

TEST(MultiwayJoin, ParallelPathActuallyEngages) {
  const size_t n = 8000;
  std::vector<Relation<NaturalSemiring>> rels{
      RandomRelation<NaturalSemiring>({0, 1}, n, 1000, 1),
      RandomRelation<NaturalSemiring>({1, 2}, n, 1000, 2),
      RandomRelation<NaturalSemiring>({0, 2}, n, 1000, 3)};
  ExecContext ctx;
  ctx.parallelism = 4;
  MultiwayJoin(rels, &ctx);
  EXPECT_GT(ctx.multiway.morsels, 1);
  EXPECT_GT(ctx.multiway.seeks, 0);
}

// The worst-case-optimality property the AGM / fractional-edge-cover bound
// promises: on the triangle query the multiway join never materializes more
// than the output, which is within the N^{3/2} AGM bound, while the
// pairwise plan's first intermediate blows up to N² rows.
TEST(MultiwayJoin, TrianglePeakIntermediateStaysWithinAgmBound) {
  const size_t n = 512;
  Relation<NaturalSemiring> r{Schema({0, 1})}, s{Schema({1, 2})},
      t{Schema({0, 2})};
  for (size_t i = 0; i < n; ++i) {
    r.Add({static_cast<Value>(i), 0}, 1);  // R = [N] × {0}
    s.Add({0, static_cast<Value>(i)}, 1);  // S = {0} × [N]
    t.Add({static_cast<Value>(i), static_cast<Value>(i)}, 1);  // T = diagonal
  }
  r.Canonicalize();
  s.Canonicalize();
  t.Canonicalize();

  ExecContext ctx;
  ctx.parallelism = 1;
  const auto out = MultiwayJoin<NaturalSemiring>({r, s, t}, &ctx);
  const double agm = std::pow(static_cast<double>(n), 1.5);
  // Output = {(i, 0, i)}: N rows, within the AGM bound — and peak_rows is
  // the measured high-water materialization of the multiway operator
  // (rebuilt trie views + output), which must also stay within the bound.
  EXPECT_EQ(out.size(), n);
  EXPECT_LE(static_cast<double>(ctx.multiway.rows_out), agm);
  EXPECT_GT(ctx.multiway.peak_rows, 0);
  EXPECT_LE(static_cast<double>(ctx.multiway.peak_rows), agm);
  // The pairwise plan's first step R ⋈ S materializes all of [N] × {0} × [N].
  const auto rs = Join(r, s, &ctx);
  EXPECT_EQ(rs.size(), n * n);
  EXPECT_GT(static_cast<double>(rs.size()), agm);
}

// Routing policy in internal::JoinAndEliminate: a cyclic (>= 3 relation)
// component runs MultiwayJoin; 1-2 relation components stay pairwise.
TEST(Routing, BruteForceRoutesCyclicCoreThroughMultiway) {
  Hypergraph h = CycleGraph(3);
  std::vector<Relation<NaturalSemiring>> rels;
  for (int e = 0; e < 3; ++e)
    rels.push_back(RandomRelation<NaturalSemiring>(h.edge(e), 200, 16, 50 + e));
  auto q = MakeFaqSS<NaturalSemiring>(h, rels, {});
  ExecContext ctx;
  auto res = BruteForceSolve(q, &ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(ctx.multiway.calls, 0);
  // Cross-check the scalar against the explicit pairwise plan.
  ExecContext pairwise_ctx;
  auto joined = Join(Join(rels[0], rels[1], &pairwise_ctx), rels[2],
                     &pairwise_ctx);
  auto folded = Eliminate(std::move(joined), {0, 1, 2},
                          {VarOp::kSemiringSum, VarOp::kSemiringSum,
                           VarOp::kSemiringSum},
                          &pairwise_ctx);
  EXPECT_TRUE(res->EqualsAsFunction(folded));
  EXPECT_EQ(pairwise_ctx.multiway.calls, 0);
}

TEST(Routing, TwoRelationComponentsStayPairwise) {
  Hypergraph h = PathGraph(2);  // R(0,1), S(1,2): acyclic, 2 relations
  std::vector<Relation<NaturalSemiring>> rels{
      RandomRelation<NaturalSemiring>({0, 1}, 200, 16, 60),
      RandomRelation<NaturalSemiring>({1, 2}, 200, 16, 61)};
  auto q = MakeFaqSS<NaturalSemiring>(h, rels, {});
  ExecContext ctx;
  auto res = BruteForceSolve(q, &ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(ctx.multiway.calls, 0);
  EXPECT_GT(ctx.join.calls, 0);
}

TEST(MultiwayJoin, HugeLeadingKeysSkipTheRootDirectory) {
  // Leading keys at the top of the Value domain (including UINT64_MAX) must
  // not wrap the root-directory density check in BuildSeekIndexes; the join
  // falls back to galloping seeks and stays correct.
  using NRel = Relation<NaturalSemiring>;
  const size_t n = 5000;  // above kSeekSampleMinRows so indexes are built
  NRel r{Schema({0, 1})}, s{Schema({1, 2})}, t{Schema({0, 2})};
  for (size_t i = 0; i < n; ++i) {
    const Value hi = ~Value{0} - static_cast<Value>(i % 97);
    r.Add({hi, static_cast<Value>(i % 53)}, 1);
    s.Add({static_cast<Value>(i % 53), static_cast<Value>(i % 31)}, 1);
    t.Add({hi, static_cast<Value>(i % 31)}, 1);
  }
  r.Canonicalize();
  s.Canonicalize();
  t.Canonicalize();
  ExecContext cx;
  cx.parallelism = 1;
  NRel mw = MultiwayJoin(std::vector<NRel>{r, s, t}, &cx);
  ExecContext px;
  px.parallelism = 1;
  NRel pw = Join(Join(r, s, &px), t, &px);
  EXPECT_TRUE(mw.EqualsAsFunction(pw));
}

}  // namespace
}  // namespace topofaq
