// GHD construction, validation, MD-GHD flattening and internal-node-width
// tests — reproducing the Figure 2 discussion (y(H1) = y(H2) = 1).
#include <gtest/gtest.h>

#include "ghd/ghd.h"
#include "ghd/gyo_ghd.h"
#include "ghd/md_ghd.h"
#include "ghd/width.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace topofaq {
namespace {

TEST(Ghd, ValidateAcceptsHandBuiltJoinTree) {
  // Path a-b-c-d with root (b,c) and leaves (a,b), (c,d): a valid GHD.
  Hypergraph h(4, {{0, 1}, {1, 2}, {2, 3}});
  Ghd g;
  int root = g.AddNode({{1, 2}, {1}, -1, {}, 1});
  int left = g.AddNode({{0, 1}, {0}, -1, {}, 0});
  int right = g.AddNode({{2, 3}, {2}, -1, {}, 2});
  g.set_root(root);
  g.SetParent(left, root);
  g.SetParent(right, root);
  EXPECT_TRUE(g.Validate(h).ok());
  EXPECT_TRUE(g.ValidateReduced(h).ok());
  EXPECT_EQ(g.InternalNodeCount(), 1);
  EXPECT_EQ(g.Depth(), 1);
}

TEST(Ghd, ValidateRejectsRipViolation) {
  // Figure 2 discussion: hanging (C,F) under (A,B,E) separates the two
  // C-containing bags.
  Hypergraph h2 = PaperH2();
  Ghd g;
  int root = g.AddNode({{0, 1, 2}, {0}, -1, {}, 0});   // (A,B,C)
  int bd = g.AddNode({{1, 3}, {1}, -1, {}, 1});        // (B,D)
  int abe = g.AddNode({{0, 1, 4}, {3}, -1, {}, 3});    // (A,B,E)
  int cf = g.AddNode({{2, 5}, {2}, -1, {}, 2});        // (C,F)
  g.set_root(root);
  g.SetParent(bd, root);
  g.SetParent(abe, root);
  g.SetParent(cf, abe);  // C appears at root and here, but not at (A,B,E)
  EXPECT_FALSE(g.Validate(h2).ok());
}

TEST(Ghd, ValidateRejectsMissingCoverage) {
  Hypergraph h(3, {{0, 1}, {1, 2}});
  Ghd g;
  int root = g.AddNode({{0, 1}, {0}, -1, {}, 0});
  g.set_root(root);
  // Edge 1 never covered.
  EXPECT_FALSE(g.Validate(h).ok());
}

TEST(GyoGhd, ValidForPaperQueries) {
  for (const Hypergraph& h : {PaperH0(), PaperH1(), PaperH2(), PaperH3()}) {
    GyoGhd gg = BuildGyoGhd(h);
    EXPECT_TRUE(gg.ghd.Validate(h).ok()) << h.DebugString() << gg.ghd.DebugString();
    EXPECT_TRUE(gg.ghd.ValidateReduced(h).ok()) << h.DebugString();
  }
}

TEST(GyoGhd, EveryEdgeHasANode) {
  Hypergraph h = PaperH3();
  GyoGhd gg = BuildGyoGhd(h);
  for (int e = 0; e < h.num_edges(); ++e) {
    int node = gg.node_of_edge[e];
    if (node >= 0) {
      EXPECT_EQ(gg.ghd.node(node).chi, h.edge(e));
    } else {
      // A core edge not materialized only if represented inside λ(r').
      const auto& lam = gg.ghd.node(gg.ghd.root()).lambda;
      EXPECT_NE(std::find(lam.begin(), lam.end(), e), lam.end());
    }
  }
}

TEST(Width, StarHasWidthOne) {
  // y(H1) = 1: root (A,B)-style bag with all other edges as leaves (§2.3).
  WidthResult w = ComputeWidth(PaperH1());
  EXPECT_EQ(w.internal_nodes, 1);
  EXPECT_TRUE(w.decomposition.ghd.Validate(PaperH1()).ok());
}

TEST(Width, H2HasWidthOne) {
  // Figure 2: T1 with root (A,B,C) and leaves (B,D), (C,F), (A,B,E).
  WidthResult w = ComputeWidth(PaperH2());
  EXPECT_EQ(w.internal_nodes, 1);
  // The achieved decomposition is exactly the T1 shape: root bag {A,B,C}.
  const Ghd& g = w.decomposition.ghd;
  EXPECT_EQ(g.node(g.root()).chi, (std::vector<VarId>{0, 1, 2}));
  EXPECT_EQ(g.Depth(), 1);
}

TEST(Width, SelfLoopQueryH0HasWidthOne) {
  EXPECT_EQ(ComputeWidth(PaperH0()).internal_nodes, 1);
}

TEST(Width, PathWidthGrowsLinearly) {
  // For a path query with m edges the join tree is a forced chain with both
  // end edges as leaves: y(path_m) = m - 2 for m >= 3 (and 1 for m <= 3).
  EXPECT_EQ(ComputeWidth(PathGraph(2)).internal_nodes, 1);
  EXPECT_EQ(ComputeWidth(PathGraph(3)).internal_nodes, 1);
  EXPECT_EQ(ComputeWidth(PathGraph(5)).internal_nodes, 3);
  EXPECT_EQ(ComputeWidth(PathGraph(9)).internal_nodes, 7);
}

TEST(Width, H3MatchesAppendixC2Shape) {
  WidthResult w = ComputeWidth(PaperH3());
  // Appendix C.2's first sample hangs (A,F) and (B,G) directly on the core
  // bag, giving 2 internal nodes. Our construction keeps forest nodes below
  // their GYO tree root (so the protocol star-reduces them before the core
  // phase), which costs one extra internal node: r', e4=(A,B,E), e6=(B,G).
  EXPECT_EQ(w.internal_nodes, 3);
  EXPECT_EQ(w.n2, 5);
  EXPECT_TRUE(w.decomposition.ghd.Validate(PaperH3()).ok());
}

TEST(MdGhd, FlatteningNeverIncreasesInternalCount) {
  Rng rng(21);
  for (int iter = 0; iter < 30; ++iter) {
    Hypergraph h = RandomAcyclicHypergraph(9, 4, &rng);
    GyoGhd gg = BuildGyoGhd(h);
    int before = gg.ghd.InternalNodeCount();
    FlattenToMdGhd(&gg.ghd);
    EXPECT_LE(gg.ghd.InternalNodeCount(), before);
    EXPECT_TRUE(gg.ghd.Validate(h).ok()) << h.DebugString();
  }
}

TEST(MdGhd, FlatteningIsIdempotent) {
  Rng rng(22);
  for (int iter = 0; iter < 10; ++iter) {
    Hypergraph h = RandomAcyclicHypergraph(8, 3, &rng);
    GyoGhd gg = BuildGyoGhd(h);
    FlattenToMdGhd(&gg.ghd);
    EXPECT_EQ(FlattenToMdGhd(&gg.ghd), 0);
  }
}

TEST(MdGhd, PrivateAttributeWitnessesAreValid) {
  // Lemma F.3: for each internal node of an MD-GHD there is an attribute
  // private to its subtree, covered by >= 2 hyperedges.
  Rng rng(23);
  for (int iter = 0; iter < 20; ++iter) {
    Hypergraph h = RandomAcyclicHypergraph(8, 4, &rng);
    GyoGhd gg = BuildGyoGhd(h);
    FlattenToMdGhd(&gg.ghd);
    auto witnesses = FindPrivateAttributes(h, gg.ghd);
    for (const auto& w : witnesses) {
      EXPECT_NE(w.edge_a, w.edge_b);
      EXPECT_TRUE(h.EdgeContains(w.edge_a, w.attribute));
      EXPECT_TRUE(h.EdgeContains(w.edge_b, w.attribute));
      // The attribute must not occur in any bag outside the subtree.
      const Ghd& g = gg.ghd;
      for (int v = 0; v < g.num_nodes(); ++v) {
        bool in_subtree = false;
        for (int a = v; a >= 0; a = g.node(a).parent)
          if (a == w.internal_node) in_subtree = true;
        if (in_subtree) continue;
        EXPECT_FALSE(std::binary_search(g.node(v).chi.begin(),
                                        g.node(v).chi.end(), w.attribute));
      }
    }
  }
}

TEST(MdGhd, StarInternalNodesGetWitnesses) {
  Hypergraph h = PaperH1();
  GyoGhd gg = BuildGyoGhd(h);
  FlattenToMdGhd(&gg.ghd);
  auto witnesses = FindPrivateAttributes(h, gg.ghd);
  // One internal node (the root) and its witness attribute is A (=0), the
  // shared center covered by all four relations.
  ASSERT_EQ(witnesses.size(), 1u);
  EXPECT_EQ(witnesses[0].attribute, 0u);
}

TEST(Width, MinimizeNeverWorseThanCanonical) {
  Rng rng(24);
  for (int iter = 0; iter < 15; ++iter) {
    Hypergraph h = RandomAcyclicHypergraph(9, 3, &rng);
    WidthResult canonical = ComputeWidth(h);
    WidthResult best = MinimizeWidth(h, 8, /*seed=*/iter);
    EXPECT_LE(best.internal_nodes, canonical.internal_nodes);
    EXPECT_TRUE(best.decomposition.ghd.Validate(h).ok()) << h.DebugString();
  }
}

TEST(Width, CyclicGraphsKeepCoreAtRoot) {
  WidthResult w = ComputeWidth(CycleGraph(6));
  // All cycle edges are core; root bag is the full vertex set.
  EXPECT_EQ(w.n2, 6);
  const Ghd& g = w.decomposition.ghd;
  EXPECT_EQ(g.node(g.root()).chi.size(), 6u);
  EXPECT_TRUE(g.Validate(CycleGraph(6)).ok());
}

class GhdValidationSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GhdValidationSweep, RandomHypergraphsYieldValidDecompositions) {
  auto [edges, arity] = GetParam();
  Rng rng(edges * 31 + arity);
  for (int iter = 0; iter < 8; ++iter) {
    Hypergraph h = RandomAcyclicHypergraph(edges, arity, &rng);
    WidthResult w = ComputeWidth(h);
    EXPECT_TRUE(w.decomposition.ghd.Validate(h).ok()) << h.DebugString();
    EXPECT_TRUE(w.decomposition.ghd.ValidateReduced(h).ok());
    EXPECT_GE(w.internal_nodes, 1);
  }
}

TEST_P(GhdValidationSweep, RandomDDegenerateGraphsDecomposeValidly) {
  auto [n, d] = GetParam();
  Rng rng(n * 37 + d);
  Hypergraph h = RandomDDegenerate(n + 2, std::min(d, 3), &rng);
  WidthResult w = ComputeWidth(h);
  EXPECT_TRUE(w.decomposition.ghd.Validate(h).ok()) << h.DebugString();
}

INSTANTIATE_TEST_SUITE_P(Sweep, GhdValidationSweep,
                         ::testing::Combine(::testing::Values(4, 7, 12),
                                            ::testing::Values(2, 3, 5)));

}  // namespace
}  // namespace topofaq
