// Differential fuzz for the SIMD kernel library (relation/simd.h): every
// vector kernel must agree with its scalar twin on randomized sorted
// inputs — duplicates, long equal runs, degenerate tails, lengths straddling
// the vector width, keys below/inside/above the range — and the multiway
// join must produce bit-identical relations with the vector kernels on and
// off, across encodings and parallelism levels. The scalar twins define the
// semantics; these suites are what lets every consumer treat the dispatch
// as invisible.
#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "bit_identity.h"
#include "random_instances.h"
#include "relation/multiway.h"
#include "relation/simd.h"
#include "semiring/semiring.h"
#include "util/rng.h"

namespace topofaq {
namespace {

/// Sorted array with duplicates and runs: lengths hover around vector-width
/// multiples (0..~70), values from a small domain so equal runs are common.
template <typename T>
std::vector<T> RandomSorted(Rng* rng, size_t max_len, uint64_t dom) {
  const size_t n = rng->NextU64(max_len + 1);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng->NextU64(dom));
  std::sort(v.begin(), v.end());
  return v;
}

/// A probe key that lands below, inside, or above the array's range.
template <typename T>
T RandomKey(Rng* rng, const std::vector<T>& v, uint64_t dom) {
  switch (rng->NextU64(4)) {
    case 0:
      return 0;
    case 1:
      return static_cast<T>(dom + rng->NextU64(4));  // past every value
    case 2:
      return v.empty() ? static_cast<T>(rng->NextU64(dom))
                       : v[rng->NextU64(v.size())];
    default:
      return static_cast<T>(rng->NextU64(dom));
  }
}

TEST(SimdKernelTest, LowerBoundMatchesScalar) {
  ScopedSimdMode on(true);
  Rng rng(2024);
  for (int trial = 0; trial < 4000; ++trial) {
    const uint64_t dom = 1 + rng.NextU64(64);
    const auto a64 = RandomSorted<Value>(&rng, 70, dom);
    const auto a32 = RandomSorted<uint32_t>(&rng, 70, dom);
    const bool strict = (trial & 1) != 0;
    const Value k64 = RandomKey(&rng, a64, dom);
    const uint32_t k32 = RandomKey(&rng, a32, dom);
    const size_t lo64 = a64.empty() ? 0 : rng.NextU64(a64.size());
    const size_t lo32 = a32.empty() ? 0 : rng.NextU64(a32.size());
    EXPECT_EQ(
        simd::LowerBoundU64(a64.data(), lo64, a64.size(), k64, strict, nullptr),
        simd::ScalarLowerBoundU64(a64.data(), lo64, a64.size(), k64, strict))
        << "trial " << trial;
    EXPECT_EQ(
        simd::LowerBoundU32(a32.data(), lo32, a32.size(), k32, strict, nullptr),
        simd::ScalarLowerBoundU32(a32.data(), lo32, a32.size(), k32, strict))
        << "trial " << trial;
  }
}

TEST(SimdKernelTest, AdvanceMatchesScalar) {
  ScopedSimdMode on(true);
  Rng rng(2025);
  for (int trial = 0; trial < 4000; ++trial) {
    const uint64_t dom = 1 + rng.NextU64(64);
    const auto a = RandomSorted<Value>(&rng, 70, dom);
    const bool strict = (trial & 1) != 0;
    const Value key = RandomKey(&rng, a, dom);
    const size_t i = a.empty() ? 0 : rng.NextU64(a.size() + 1);
    EXPECT_EQ(simd::AdvanceU64(a.data(), i, a.size(), key, strict, nullptr),
              simd::ScalarAdvanceU64(a.data(), i, a.size(), key, strict))
        << "trial " << trial;
  }
}

TEST(SimdKernelTest, IntersectMatchesScalar) {
  ScopedSimdMode on(true);
  Rng rng(2026);
  for (int trial = 0; trial < 2000; ++trial) {
    const uint64_t dom = 1 + rng.NextU64(96);
    const auto a64 = RandomSorted<Value>(&rng, 70, dom);
    const auto b64 = RandomSorted<Value>(&rng, 70, dom);
    std::vector<Value> os(a64.size()), ov(a64.size());
    const size_t cs = simd::ScalarIntersectU64(a64.data(), a64.size(),
                                               b64.data(), b64.size(),
                                               os.data());
    const size_t cv = simd::IntersectU64(a64.data(), a64.size(), b64.data(),
                                         b64.size(), ov.data(), nullptr);
    ASSERT_EQ(cs, cv) << "trial " << trial;
    EXPECT_EQ(0, std::memcmp(os.data(), ov.data(), cs * sizeof(Value)))
        << "trial " << trial;

    const auto a32 = RandomSorted<uint32_t>(&rng, 70, dom);
    const auto b32 = RandomSorted<uint32_t>(&rng, 70, dom);
    std::vector<uint32_t> ps(a32.size()), pv(a32.size());
    const size_t ds = simd::ScalarIntersectU32(a32.data(), a32.size(),
                                               b32.data(), b32.size(),
                                               ps.data());
    const size_t dv = simd::IntersectU32(a32.data(), a32.size(), b32.data(),
                                         b32.size(), pv.data(), nullptr);
    ASSERT_EQ(ds, dv) << "trial " << trial;
    EXPECT_EQ(0, std::memcmp(ps.data(), pv.data(), ds * sizeof(uint32_t)))
        << "trial " << trial;
  }
}

/// With an effectively unlimited block budget neither body ever returns
/// kSeek, so every kMatch must be *positionally* identical to the scalar
/// two-pointer walk; on kExhausted both must have drained a side (the other
/// side's position is unspecified — see Frontier::Kind).
TEST(SimdKernelTest, NextMatchUnlimitedBudgetIsExact) {
  ScopedSimdMode on(true);
  Rng rng(2027);
  const size_t unlimited = static_cast<size_t>(1) << 30;
  for (int trial = 0; trial < 2000; ++trial) {
    const uint64_t dom = 1 + rng.NextU64(96);
    const auto a = RandomSorted<Value>(&rng, 70, dom);
    const auto b = RandomSorted<Value>(&rng, 70, dom);
    size_t i = 0, j = 0;
    for (;;) {
      const simd::Frontier fv = simd::NextMatchU64(
          a.data(), i, a.size(), b.data(), j, b.size(), unlimited, nullptr);
      const simd::Frontier fs = simd::ScalarNextMatchU64(
          a.data(), i, a.size(), b.data(), j, b.size(), unlimited);
      ASSERT_EQ(fv.kind, fs.kind) << "trial " << trial;
      if (fv.kind != simd::Frontier::kMatch) {
        ASSERT_EQ(fv.kind, simd::Frontier::kExhausted) << "trial " << trial;
        EXPECT_TRUE(fv.i == a.size() || fv.j == b.size()) << "trial " << trial;
        EXPECT_TRUE(fs.i == a.size() || fs.j == b.size()) << "trial " << trial;
        break;
      }
      ASSERT_EQ(fv.i, fs.i) << "trial " << trial;
      ASSERT_EQ(fv.j, fs.j) << "trial " << trial;
      i = fv.i + 1;
      j = fv.j + 1;
    }
  }
}

/// With small budgets the two bodies may hand back kSeek at different
/// positions — but a caller that answers every kSeek with a far seek (as the
/// multiway frontier does) must recover the identical match sequence from
/// either body, because neither is allowed to skip a possible match.
template <typename Step>
std::vector<std::pair<Value, Value>> DriveToFixpoint(
    const std::vector<Value>& a, const std::vector<Value>& b,
    size_t max_blocks, Step step) {
  std::vector<std::pair<Value, Value>> matches;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const simd::Frontier f =
        step(a.data(), i, a.size(), b.data(), j, b.size(), max_blocks);
    i = f.i;
    j = f.j;
    if (f.kind == simd::Frontier::kMatch) {
      matches.emplace_back(a[i], b[j]);
      ++i;
      ++j;
    } else if (f.kind == simd::Frontier::kExhausted) {
      break;
    } else if (f.kind == simd::Frontier::kSeekA) {
      i = simd::ScalarLowerBoundU64(a.data(), i, a.size(), b[j], false);
    } else {
      j = simd::ScalarLowerBoundU64(b.data(), j, b.size(), a[i], false);
    }
  }
  return matches;
}

TEST(SimdKernelTest, NextMatchCappedBudgetSameMatches) {
  ScopedSimdMode on(true);
  Rng rng(2028);
  for (int trial = 0; trial < 1000; ++trial) {
    const uint64_t dom = 1 + rng.NextU64(200);
    const auto a = RandomSorted<Value>(&rng, 120, dom);
    const auto b = RandomSorted<Value>(&rng, 120, dom);
    const size_t cap = 1 + rng.NextU64(8);
    const auto mv = DriveToFixpoint(
        a, b, cap,
        [](const Value* x, size_t i, size_t xn, const Value* y, size_t j,
           size_t yn, size_t mb) {
          return simd::NextMatchU64(x, i, xn, y, j, yn, mb, nullptr);
        });
    const auto ms = DriveToFixpoint(
        a, b, cap,
        [](const Value* x, size_t i, size_t xn, const Value* y, size_t j,
           size_t yn, size_t mb) {
          return simd::ScalarNextMatchU64(x, i, xn, y, j, yn, mb);
        });
    EXPECT_EQ(mv, ms) << "trial " << trial << " cap " << cap;
  }
}

TEST(SimdKernelTest, DecodeWindowMatchesDecodeInto) {
  ScopedSimdMode on(true);
  Rng rng(2029);
  for (int trial = 0; trial < 800; ++trial) {
    // Domain size sweeps the code width across the quad-unpack boundary
    // (width <= 14 vectorizes; wider falls back to the scalar visitor).
    const uint64_t dom = 1 + rng.NextU64(trial % 3 == 0 ? (1u << 17) : 300);
    const size_t n = 4 + rng.NextU64(96);
    std::vector<Value> col(n);
    for (auto& v : col) v = rng.NextU64(dom);
    std::sort(col.begin(), col.end());
    std::vector<Value> dict(col);
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
    const EncodedColumn ed = EncodedColumn::Dict(col, dict);
    const EncodedColumn ef =
        EncodedColumn::For(col, col.front(), col.back());
    for (const EncodedColumn* e : {&ed, &ef}) {
      const size_t begin = rng.NextU64(n);
      const size_t end = begin + rng.NextU64(n - begin + 1);
      std::vector<Value> want(end - begin), got(end - begin);
      e->DecodeInto(begin, end, want.data());
      simd::DecodeWindowU64(*e, begin, end, got.data(), nullptr);
      EXPECT_EQ(want, got) << "trial " << trial << " width " << e->width;
      ASSERT_TRUE(simd::FitsU32(*e));  // dom < 2^32 throughout
      std::vector<uint32_t> got32(end - begin);
      simd::DecodeWindowU32(*e, begin, end, got32.data(), nullptr);
      for (size_t t = 0; t < want.size(); ++t)
        ASSERT_EQ(want[t], static_cast<Value>(got32[t]))
            << "trial " << trial << " width " << e->width;
    }
  }
}

TEST(SimdKernelTest, FitsU32Boundaries) {
  const std::vector<Value> small{1, 2, 3};
  EXPECT_TRUE(simd::FitsU32(EncodedColumn::Dict(small, small)));
  const std::vector<Value> big{1, 2, (1ull << 32)};
  EXPECT_FALSE(simd::FitsU32(EncodedColumn::Dict(big, big)));
  // FOR whose *span* fits 32 bits but whose values do not.
  const std::vector<Value> high{(1ull << 40), (1ull << 40) + 7};
  EXPECT_FALSE(simd::FitsU32(
      EncodedColumn::For(high, high.front(), high.back())));
  EXPECT_TRUE(simd::FitsU32(EncodedColumn::For(small, 1, 3)));
}

TEST(SimdKernelTest, ScalarModeForcesScalarBodies) {
  ScopedSimdMode off(false);
  EXPECT_FALSE(simd::Available());
  Rng rng(2030);
  const auto a = RandomSorted<Value>(&rng, 64, 40);
  // With the toggle off the dispatchers run the scalar twins verbatim.
  for (const bool strict : {false, true}) {
    for (const Value key : {Value{0}, Value{17}, Value{60}}) {
      EXPECT_EQ(simd::LowerBoundU64(a.data(), 0, a.size(), key, strict,
                                    nullptr),
                simd::ScalarLowerBoundU64(a.data(), 0, a.size(), key, strict));
      EXPECT_EQ(simd::AdvanceU64(a.data(), 0, a.size(), key, strict, nullptr),
                simd::ScalarAdvanceU64(a.data(), 0, a.size(), key, strict));
    }
  }
}

/// The end-to-end contract: the multiway join's relation output is
/// bit-identical with the vector kernels on and off, for every encoding
/// mode and parallelism level — the SIMD layer is pure mechanism.
TEST(SimdKernelTest, MultiwayBitIdenticalSimdOnOff) {
  using S = CountingSemiring;
  const Hypergraph tri(3, {{0, 1}, {1, 2}, {0, 2}});
  for (const EncodingMode mode :
       {EncodingMode::kAuto, EncodingMode::kPlain, EncodingMode::kForceDict,
        EncodingMode::kForceFor}) {
    ScopedEncodingMode em(mode);
    for (const uint64_t seed : {7u, 8u}) {
      std::vector<Relation<S>> rels;
      for (int e = 0; e < tri.num_edges(); ++e)
        rels.push_back(RandomRelation<S>(tri.edge(e), 6000, 700,
                                         seed + static_cast<uint64_t>(e),
                                         /*skew=*/2));
      for (const int par : {1, 3}) {
        SCOPED_TRACE(InstanceLabel("triangle mode=" +
                                       std::to_string(static_cast<int>(mode)) +
                                       " par=" + std::to_string(par),
                                   seed));
        ExecContext con;
        con.parallelism = par;
        ExecContext coff;
        coff.parallelism = par;
        Relation<S> ron, roff;
        {
          ScopedSimdMode on(true);
          ron = MultiwayJoin(rels, &con);
        }
        {
          ScopedSimdMode off(false);
          roff = MultiwayJoin(rels, &coff);
        }
        EXPECT_TRUE(BytesEqual(ron, roff));
        // The forced-scalar leg must record its fallbacks; the vector leg
        // must have retired blocks whenever it was actually available.
        if (simd::Available()) {
          EXPECT_GT(con.multiway.simd_blocks + con.multiway.scalar_fallbacks,
                    0);
        }
      }
    }
  }
}

}  // namespace
}  // namespace topofaq
