// Shared randomized-instance generators for the test suites.
//
// Every suite that needs "a random canonical relation" or "a random FAQ
// query over shape H" builds it here, from an explicit seed, so
//   * the same (shape, size, domain, seed) tuple reproduces the same bytes
//     in every suite and under every encoding mode in scope, and
//   * failures are replayable: wrap checks in
//     SCOPED_TRACE(InstanceLabel("what", seed)) and the seed appears in the
//     failure output.
//
// The IVM differential harness (ivm_test.cc) draws its base instances and
// delta batches from these generators too, so a standing-query mismatch
// reproduces as a plain solver instance with the logged seed.
#ifndef TOPOFAQ_TESTS_RANDOM_INSTANCES_H_
#define TOPOFAQ_TESTS_RANDOM_INSTANCES_H_

#include <string>
#include <utility>
#include <vector>

#include "faq/query.h"
#include "hypergraph/hypergraph.h"
#include "relation/relation.h"
#include "util/rng.h"

namespace topofaq {

/// Nonzero annotation for row-key `k`, bitwise-reproducible per semiring:
/// small integers for the exact rings, small half-integer doubles for the
/// floating semirings (sums and the products our suites take stay exact in
/// an IEEE double), One() for the 1-byte semirings (Boolean/GF(2), whose
/// carrier is {0,1}).
template <CommutativeSemiring S>
typename S::Value TestAnnot(uint64_t k) {
  if constexpr (std::is_same_v<typename S::Value, double>) {
    return 0.5 * static_cast<double>(k % 13 + 1);
  } else if constexpr (sizeof(typename S::Value) == 1) {
    return S::One();
  } else {
    return static_cast<typename S::Value>(k % 97 + 1);
  }
}

/// Random canonical relation over `vars`: n draws from [0, dom) per column,
/// duplicate rows ⊕-merged by Canonicalize under whatever encoding mode is
/// in scope. skew > 0 squashes the leading column's domain so key runs get
/// long and unequal — the distribution dictionaries, run-aware kernels, and
/// morsel-cut alignment pay off on.
template <CommutativeSemiring S>
Relation<S> RandomRelation(std::vector<VarId> vars, size_t n, uint64_t dom,
                           uint64_t seed, int skew = 0) {
  Rng rng(seed);
  Relation<S> r{Schema(std::move(vars))};
  std::vector<Value> row(r.arity());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < row.size(); ++j) {
      uint64_t v = rng.NextU64(dom);
      if (j == 0 && skew > 0) v = (v * v) / (dom << skew);
      row[j] = v;
    }
    r.Add(row, TestAnnot<S>(rng.NextU64(1 << 20)));
  }
  r.Canonicalize();
  return r;
}

/// Random FAQ-SS query over shape `h`: one RandomRelation per hyperedge,
/// seeded seed, seed+1, ... in edge order.
template <CommutativeSemiring S>
FaqQuery<S> RandomQuery(const Hypergraph& h, size_t tuples, uint64_t dom,
                        uint64_t seed, std::vector<VarId> free_vars,
                        int skew = 0) {
  std::vector<Relation<S>> rels;
  rels.reserve(h.num_edges());
  for (int e = 0; e < h.num_edges(); ++e)
    rels.push_back(RandomRelation<S>(h.edge(e), tuples, dom,
                                     seed + static_cast<uint64_t>(e), skew));
  return MakeFaqSS<S>(h, std::move(rels), std::move(free_vars));
}

/// "what (seed N)" — the SCOPED_TRACE label that makes every generated
/// instance replayable from the failure output.
inline std::string InstanceLabel(const std::string& what, uint64_t seed) {
  return what + " (seed " + std::to_string(seed) + ")";
}

}  // namespace topofaq

#endif  // TOPOFAQ_TESTS_RANDOM_INSTANCES_H_
