// Centralized FAQ solver tests: Yannakakis/GHD message passing vs brute
// force across semirings, query shapes and aggregate mixes; BCQ, natural
// join, semijoin and PGM-marginal specializations (Appendix G.1).
#include <gtest/gtest.h>

#include "faq/query.h"
#include "faq/solvers.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace topofaq {
namespace {

template <CommutativeSemiring S>
Relation<S> RandomRelation(const std::vector<VarId>& vars, int tuples,
                           uint64_t domain, Rng* rng,
                           typename S::Value (*val)(Rng*)) {
  Relation<S> r{Schema(vars)};
  for (int i = 0; i < tuples; ++i) {
    std::vector<Value> row;
    for (size_t j = 0; j < vars.size(); ++j) row.push_back(rng->NextU64(domain));
    r.Add(row, val(rng));
  }
  r.Canonicalize();
  return r;
}

uint64_t NatVal(Rng* rng) { return rng->NextU64(4) + 1; }
uint8_t BoolVal(Rng*) { return 1; }
double CountVal(Rng* rng) { return static_cast<double>(rng->NextU64(4) + 1); }

template <CommutativeSemiring S>
FaqQuery<S> RandomFaqSS(const Hypergraph& h, int tuples, uint64_t domain,
                        Rng* rng, typename S::Value (*val)(Rng*),
                        std::vector<VarId> free_vars) {
  std::vector<Relation<S>> rels;
  for (int e = 0; e < h.num_edges(); ++e)
    rels.push_back(RandomRelation<S>(h.edge(e), tuples, domain, rng, val));
  return MakeFaqSS<S>(h, std::move(rels), std::move(free_vars));
}

TEST(BruteForce, TriangleCountingByHand) {
  // Count of triangles via (ℕ, +, ×): H = 3-cycle, F = ∅.
  Hypergraph h = CycleGraph(3);
  std::vector<Relation<NaturalSemiring>> rels;
  for (int e = 0; e < 3; ++e) {
    Relation<NaturalSemiring> r{Schema(h.edge(e))};
    // Complete bipartite-ish data on domain {0,1}: every pair present.
    r.Add({0, 0}, 1);
    r.Add({0, 1}, 1);
    r.Add({1, 0}, 1);
    r.Add({1, 1}, 1);
    rels.push_back(std::move(r));
  }
  auto q = MakeFaqSS<NaturalSemiring>(h, std::move(rels), {});
  auto res = BruteForceSolve(q);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 1u);
  EXPECT_EQ(res->annot(0), 8u);  // 2^3 assignments all satisfy
}

TEST(BruteForce, BcqDetectsEmptyJoin) {
  Hypergraph h = PathGraph(2);  // R(0,1), S(1,2)
  Relation<BooleanSemiring> r{Schema({0, 1})}, s{Schema({1, 2})};
  r.Add({1, 5});
  s.Add({6, 2});  // no shared B value
  auto q = MakeBcq(h, {r, s});
  auto res = BruteForceSolve(q);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->empty());
}

TEST(Yannakakis, MatchesBruteForceOnPaperH2) {
  Rng rng(31);
  for (int iter = 0; iter < 15; ++iter) {
    auto q = RandomFaqSS<NaturalSemiring>(PaperH2(), 12, 3, &rng, NatVal, {});
    auto bf = BruteForceSolve(q);
    auto yk = YannakakisSolve(q);
    ASSERT_TRUE(bf.ok() && yk.ok());
    EXPECT_TRUE(bf->EqualsAsFunction(*yk));
  }
}

TEST(Yannakakis, MatchesBruteForceOnStar) {
  Rng rng(32);
  for (int iter = 0; iter < 15; ++iter) {
    auto q = RandomFaqSS<NaturalSemiring>(StarGraph(4), 10, 3, &rng, NatVal, {});
    auto bf = BruteForceSolve(q);
    auto yk = YannakakisSolve(q);
    ASSERT_TRUE(bf.ok() && yk.ok());
    EXPECT_TRUE(bf->EqualsAsFunction(*yk));
  }
}

TEST(Yannakakis, HandlesCyclicCores) {
  Rng rng(33);
  for (int iter = 0; iter < 15; ++iter) {
    for (const Hypergraph& h : {CycleGraph(4), PaperH3(), CliqueGraph(4)}) {
      auto q = RandomFaqSS<NaturalSemiring>(h, 8, 3, &rng, NatVal, {});
      auto bf = BruteForceSolve(q);
      auto yk = YannakakisSolve(q);
      ASSERT_TRUE(bf.ok() && yk.ok());
      EXPECT_TRUE(bf->EqualsAsFunction(*yk)) << h.DebugString();
    }
  }
}

TEST(Yannakakis, FreeVariablesInsideCoreBag) {
  // F = the root-edge variables of a star (factor-marginal style).
  Rng rng(34);
  Hypergraph h = PaperH1();
  for (int iter = 0; iter < 10; ++iter) {
    auto q = RandomFaqSS<CountingSemiring>(h, 10, 3, &rng, CountVal, {0});
    auto bf = BruteForceSolve(q);
    auto yk = YannakakisSolve(q);
    ASSERT_TRUE(bf.ok() && yk.ok());
    EXPECT_TRUE(bf->EqualsAsFunction(*yk));
  }
}

TEST(Yannakakis, LeafPrivateFreeVariableWorksViaRerooting) {
  // F = {B} sits in the bag (A,B): the solver re-roots the join tree there
  // (MinimizeWidthWithRoot), extending the paper's F ⊆ V(C(H)) restriction
  // to any F covered by a single bag of an acyclic H.
  Rng rng(35);
  auto q = RandomFaqSS<NaturalSemiring>(PaperH1(), 8, 3, &rng, NatVal,
                                        /*free=*/{1});
  auto yk = YannakakisSolve(q);
  ASSERT_TRUE(yk.ok()) << yk.status().ToString();
  auto bf = BruteForceSolve(q);
  ASSERT_TRUE(bf.ok());
  EXPECT_TRUE(bf->EqualsAsFunction(*yk));
}

TEST(Yannakakis, RejectsFreeVariablesNoBagCovers) {
  // F = {B, C}: no hyperedge of H1 contains both, so no valid root exists
  // (Appendix G.5 restriction).
  Rng rng(41);
  auto q = RandomFaqSS<NaturalSemiring>(PaperH1(), 8, 3, &rng, NatVal,
                                        /*free=*/{1, 2});
  auto yk = YannakakisSolve(q);
  EXPECT_FALSE(yk.ok());
  EXPECT_EQ(yk.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Yannakakis, GeneralFaqWithMixedAggregates) {
  // Bound variables carry kMax / kMin semiring aggregates (Eq. (4)): the
  // Theorem G.1 swap conditions hold over (ℝ≥0, ·), so GHD evaluation must
  // match the canonical innermost-first order.
  Rng rng(36);
  Hypergraph h = PaperH1();  // leaves B,C,D,E are degree-1
  for (int iter = 0; iter < 15; ++iter) {
    auto q = RandomFaqSS<CountingSemiring>(h, 10, 3, &rng, CountVal, {0});
    q.var_ops[1] = VarOp::kMax;
    q.var_ops[2] = VarOp::kMin;
    q.var_ops[3] = VarOp::kMax;
    auto bf = BruteForceSolve(q);
    auto yk = YannakakisSolve(q);
    ASSERT_TRUE(bf.ok() && yk.ok());
    EXPECT_TRUE(bf->EqualsAsFunction(*yk));
  }
}

TEST(Yannakakis, ProductAggregateOnBoundVariableIsRejected) {
  Rng rng(40);
  auto q = RandomFaqSS<CountingSemiring>(PaperH1(), 8, 3, &rng, CountVal, {0});
  q.var_ops[1] = VarOp::kProduct;
  auto res = YannakakisSolve(q);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kUnimplemented);
}

TEST(Faq, PgmMarginalSumsToPartitionFunction) {
  // A chain PGM: marginalizing a factor and then summing it out equals the
  // partition function computed directly.
  Rng rng(37);
  Hypergraph h = PathGraph(3);
  std::vector<Relation<CountingSemiring>> rels;
  for (int e = 0; e < h.num_edges(); ++e)
    rels.push_back(
        RandomRelation<CountingSemiring>(h.edge(e), 6, 2, &rng, CountVal));
  auto marginal_q = MakeFactorMarginal(h, rels, /*marginal_edge=*/0);
  auto z_q = MakeFaqSS<CountingSemiring>(h, rels, {});
  auto marginal = BruteForceSolve(marginal_q);
  auto z = BruteForceSolve(z_q);
  ASSERT_TRUE(marginal.ok() && z.ok());
  double sum = 0;
  for (size_t i = 0; i < marginal->size(); ++i) sum += marginal->annot(i);
  double zval = z->empty() ? 0.0 : z->annot(0);
  EXPECT_NEAR(sum, zval, 1e-9 * std::max(1.0, zval));
}

TEST(Faq, NaturalJoinMatchesRelationalJoin) {
  Rng rng(38);
  Hypergraph h = PathGraph(2);
  for (int iter = 0; iter < 10; ++iter) {
    auto r0 = RandomRelation<BooleanSemiring>(h.edge(0), 10, 3, &rng, BoolVal);
    auto r1 = RandomRelation<BooleanSemiring>(h.edge(1), 10, 3, &rng, BoolVal);
    auto q = MakeNaturalJoin(h, {r0, r1});
    auto res = BruteForceSolve(q);
    ASSERT_TRUE(res.ok());
    auto expected = Project(Join(r0, r1), q.free_vars);
    EXPECT_TRUE(res->EqualsAsFunction(expected));
  }
}

TEST(Faq, SemijoinAsFaq) {
  // Appendix G.1: semijoin = FAQ with F = ar(R1) over the Boolean semiring.
  Rng rng(39);
  Hypergraph h(3, {{0, 1}, {1, 2}});
  auto r0 = RandomRelation<BooleanSemiring>(h.edge(0), 12, 3, &rng, BoolVal);
  auto r1 = RandomRelation<BooleanSemiring>(h.edge(1), 12, 3, &rng, BoolVal);
  auto q = MakeFaqSS<BooleanSemiring>(h, {r0, r1}, {0, 1});
  auto res = BruteForceSolve(q);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->EqualsAsFunction(Semijoin(r0, r1)));
}

TEST(Faq, ValidateCatchesShapeErrors) {
  Hypergraph h = PathGraph(2);
  Relation<BooleanSemiring> wrong{Schema({0, 2})};  // wrong schema
  Relation<BooleanSemiring> right{Schema({1, 2})};
  auto q = MakeBcq(h, {wrong, right});
  EXPECT_FALSE(q.Validate().ok());
}

TEST(Faq, DomainSizeTracksData) {
  Hypergraph h = PathGraph(2);
  Relation<BooleanSemiring> a{Schema({0, 1})}, b{Schema({1, 2})};
  a.Add({0, 250});
  b.Add({250, 3});
  auto q = MakeBcq(h, {a, b});
  EXPECT_EQ(q.DomainSize(), 251u);
}

// Differential sweep: many random acyclic hypergraph queries across
// semirings; Yannakakis must equal brute force with F = ∅ and with the
// root-edge variables free.
class FaqDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FaqDifferential, NaturalSemiringScalar) {
  Rng rng(4000 + GetParam());
  Hypergraph h = RandomAcyclicHypergraph(3 + GetParam() % 5, 3, &rng);
  auto q = RandomFaqSS<NaturalSemiring>(h, 8, 3, &rng, NatVal, {});
  auto bf = BruteForceSolve(q);
  auto yk = YannakakisSolve(q);
  ASSERT_TRUE(bf.ok() && yk.ok());
  EXPECT_TRUE(bf->EqualsAsFunction(*yk)) << h.DebugString();
}

TEST_P(FaqDifferential, BooleanScalar) {
  Rng rng(5000 + GetParam());
  Hypergraph h = RandomAcyclicHypergraph(3 + GetParam() % 5, 3, &rng);
  auto q = RandomFaqSS<BooleanSemiring>(h, 6, 2, &rng, BoolVal, {});
  auto bf = BruteForceSolve(q);
  auto yk = YannakakisSolve(q);
  ASSERT_TRUE(bf.ok() && yk.ok());
  EXPECT_TRUE(bf->EqualsAsFunction(*yk)) << h.DebugString();
}

TEST_P(FaqDifferential, RootEdgeFreeVariables) {
  Rng rng(6000 + GetParam());
  Hypergraph h = RandomAcyclicHypergraph(4, 3, &rng);
  WidthResult w = ComputeWidth(h);
  // Free vars: the root bag of the canonical decomposition.
  std::vector<VarId> f = w.decomposition.ghd.node(w.decomposition.ghd.root()).chi;
  auto q = RandomFaqSS<NaturalSemiring>(h, 8, 3, &rng, NatVal, f);
  auto bf = BruteForceSolve(q);
  auto yk = YannakakisSolveOn(q, w.decomposition);
  ASSERT_TRUE(bf.ok() && yk.ok());
  EXPECT_TRUE(bf->EqualsAsFunction(*yk)) << h.DebugString();
}

INSTANTIATE_TEST_SUITE_P(Sweep, FaqDifferential, ::testing::Range(0, 20));

}  // namespace
}  // namespace topofaq
