// Engine serving-path tests: concurrent queries through topofaq::Engine must
// be bit-identical to direct solver calls (the variant/queue/dispatch layers
// may not change a single output byte); cancellation surfaces
// Status::Cancelled and leaves the engine reusable; admission rejects
// over-budget queries with a Status naming the violated bound; the textual
// query format round-trips; the plan cache reports hits.
//
// CI runs this suite under TSan with TOPOFAQ_PARALLELISM=max (the engine
// stress leg), so every cross-thread handoff here is sanitizer-checked.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "bit_identity.h"
#include "faq/parse.h"
#include "faq/solvers.h"
#include "hypergraph/generators.h"
#include "random_instances.h"
#include "server/engine.h"
#include "util/rng.h"

namespace topofaq {
namespace {

/// Mirrors the engine's kAuto strategy on a private serial context: the
/// direct-call baseline the engine must reproduce byte for byte.
template <CommutativeSemiring S>
Relation<S> DirectAuto(const FaqQuery<S>& q) {
  ExecContext ctx;
  ctx.parallelism = 1;
  auto ans = YannakakisSolve(q, &ctx);
  if (!ans.ok() && ans.status().code() == StatusCode::kFailedPrecondition)
    ans = BruteForceSolve(q, &ctx);
  EXPECT_TRUE(ans.ok()) << ans.status().ToString();
  return *std::move(ans);
}

// ---------------------------------------------------------------------------
// Concurrent bit-identity across semirings, shapes, and queue classes.

/// One in-flight comparison: submit through the engine, remember the
/// directly-computed baseline, check bytes after Wait().
template <CommutativeSemiring S>
struct Flight {
  std::shared_ptr<Session> session;
  Relation<S> expected;
  QueueClass want_class;

  void Launch(Engine& engine, const FaqQuery<S>& q, QueueClass want) {
    expected = DirectAuto(q);
    want_class = want;
    QueryRequest req;
    req.query = q;
    session = engine.Submit(std::move(req));
  }

  void Check() {
    auto r = session->Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(BytesEqual(expected, r->answer_as<S>()));
    EXPECT_EQ(r->klass, want_class);
    // The admission predictor must be a genuine upper bound.
    EXPECT_LE(r->observed_rows, r->bounds.predicted_output_rows);
  }
};

TEST(Engine, ConcurrentQueriesBitIdenticalToDirectCalls) {
  EngineOptions opts;
  opts.parallelism = 4;
  opts.dispatchers = 3;
  opts.heavy_slots = 1;
  Engine engine(opts);

  const Hypergraph path = PathGraph(2);   // acyclic: R(0,1), S(1,2)
  const Hypergraph star = StarGraph(4);   // acyclic, one shared attribute
  const Hypergraph cycle = CycleGraph(3); // y = 1: heavy class

  // 16 concurrent queries: 4 semirings x {path point lookup, star BCQ,
  // cyclic heavy, brute-force-strategy oracle}. All in flight at once on 3
  // dispatchers, multiplexing the process WorkerPool at morsel granularity.
  Flight<BooleanSemiring> b1, b2, b3;
  Flight<NaturalSemiring> n1, n2, n3;
  Flight<CountingSemiring> c1, c2, c3;
  Flight<MinPlusSemiring> m1, m2, m3;

  b1.Launch(engine,
            RandomQuery<BooleanSemiring>(path, 200, 40, 1, {0}),
            QueueClass::kPoint);
  n1.Launch(engine,
            RandomQuery<NaturalSemiring>(path, 200, 40, 2, {0}),
            QueueClass::kPoint);
  c1.Launch(engine,
            RandomQuery<CountingSemiring>(path, 200, 40, 3, {0}),
            QueueClass::kPoint);
  m1.Launch(engine,
            RandomQuery<MinPlusSemiring>(path, 200, 40, 4, {0}),
            QueueClass::kPoint);

  b2.Launch(engine,
            RandomQuery<BooleanSemiring>(star, 300, 16, 5, {}),
            QueueClass::kPoint);
  n2.Launch(engine,
            RandomQuery<NaturalSemiring>(star, 300, 16, 6, {}),
            QueueClass::kPoint);
  c2.Launch(engine,
            RandomQuery<CountingSemiring>(star, 300, 16, 7, {}),
            QueueClass::kPoint);
  m2.Launch(engine,
            RandomQuery<MinPlusSemiring>(star, 300, 16, 8, {}),
            QueueClass::kPoint);

  b3.Launch(engine,
            RandomQuery<BooleanSemiring>(cycle, 400, 24, 9, {}),
            QueueClass::kHeavy);
  n3.Launch(engine,
            RandomQuery<NaturalSemiring>(cycle, 400, 24, 10, {}),
            QueueClass::kHeavy);
  c3.Launch(engine,
            RandomQuery<CountingSemiring>(cycle, 400, 24, 11, {}),
            QueueClass::kHeavy);
  m3.Launch(engine,
            RandomQuery<MinPlusSemiring>(cycle, 400, 24, 12, {}),
            QueueClass::kHeavy);

  // Brute-force strategy selected explicitly, against its own oracle call.
  auto qb = RandomQuery<NaturalSemiring>(cycle, 120, 12, 13, {});
  ExecContext oracle_ctx;
  auto oracle = BruteForceSolve(qb, &oracle_ctx);
  ASSERT_TRUE(oracle.ok());
  QueryRequest brute_req;
  brute_req.query = qb;
  brute_req.strategy = Strategy::kBruteForce;
  auto brute_session = engine.Submit(std::move(brute_req));

  b1.Check(); n1.Check(); c1.Check(); m1.Check();
  b2.Check(); n2.Check(); c2.Check(); m2.Check();
  b3.Check(); n3.Check(); c3.Check(); m3.Check();
  auto brute = brute_session->Wait();
  ASSERT_TRUE(brute.ok()) << brute.status().ToString();
  EXPECT_TRUE(BytesEqual(*oracle, brute->answer_as<NaturalSemiring>()));

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 13);
  EXPECT_EQ(stats.completed, 13);
  EXPECT_EQ(stats.rejected, 0);
}

// ---------------------------------------------------------------------------
// Cancellation.

TEST(Engine, CancelledQueryReturnsCancelledAndEngineStaysUsable) {
  EngineOptions opts;
  opts.dispatchers = 1;  // one dispatcher: the heavy query occupies it
  opts.heavy_slots = 1;
  Engine engine(opts);

  // Occupy the only dispatcher with a heavy cyclic query...
  auto heavy = RandomQuery<NaturalSemiring>(CycleGraph(3), 800, 48, 21, {});
  QueryRequest heavy_req;
  heavy_req.query = heavy;
  auto heavy_session = engine.Submit(std::move(heavy_req));

  // ...queue a victim behind it and cancel while it waits. Whether the
  // victim is still queued (fast path) or just started (solver checks the
  // token at operator/morsel boundaries), the outcome is kCancelled.
  auto victim = RandomQuery<NaturalSemiring>(PathGraph(2), 200, 40, 22, {0});
  QueryRequest victim_req;
  victim_req.query = victim;
  auto victim_session = engine.Submit(std::move(victim_req));
  victim_session->Cancel();

  auto victim_result = victim_session->Wait();
  ASSERT_FALSE(victim_result.ok());
  EXPECT_EQ(victim_result.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(heavy_session->Wait().ok());

  // No leaked scratch / poisoned state: the same engine must keep serving
  // bit-identical answers after a cancellation.
  auto followup = RandomQuery<NaturalSemiring>(PathGraph(2), 200, 40, 22, {0});
  auto again = engine.Solve(followup);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(BytesEqual(DirectAuto(followup), *again));

  const EngineStats stats = engine.stats();
  EXPECT_GE(stats.cancelled, 1);
}

TEST(Engine, SolversReturnCancelledOnPreFiredToken) {
  // The solver-level contract, no engine involved: a context whose token is
  // already set yields kCancelled from both solvers.
  auto q = RandomQuery<CountingSemiring>(CycleGraph(3), 100, 16, 31, {});
  std::atomic<bool> flag{true};
  ExecContext ctx;
  ctx.cancel = &flag;
  auto a = BruteForceSolve(q, &ctx);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kCancelled);
  auto b = YannakakisSolve(q, &ctx);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Admission control.

TEST(Engine, AdmissionRejectsOverBudgetNamingTheBound) {
  EngineOptions opts;
  opts.admission.max_predicted_output_rows = 10;
  Engine engine(opts);

  // Natural join over a path: predicted output far above 10 rows.
  auto big = RandomQuery<BooleanSemiring>(PathGraph(2), 3000, 1u << 20, 41,
                                          {0, 1, 2});
  auto r = engine.Solve(big);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("FD-aware output bound"),
            std::string::npos)
      << r.status().message();

  // Tiny point lookups still get through the same engine.
  auto small = RandomQuery<BooleanSemiring>(PathGraph(2), 50, 8, 42, {0});
  EXPECT_TRUE(engine.Solve(small).ok());
  EXPECT_EQ(engine.stats().rejected, 1);
}

TEST(Engine, AdmissionRejectsDeepJoinTreesByWidth) {
  // y counts internal join-tree nodes: PathGraph(5) decomposes with y = 3,
  // PathGraph(2) with y = 1 (see ghd_test.cc).
  EngineOptions opts;
  opts.admission.max_width = 2;
  Engine engine(opts);

  auto deep = RandomQuery<NaturalSemiring>(PathGraph(5), 50, 8, 51, {});
  auto r = engine.Solve(deep);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("internal-node-width"),
            std::string::npos)
      << r.status().message();

  auto shallow = RandomQuery<NaturalSemiring>(PathGraph(2), 50, 8, 52, {});
  EXPECT_TRUE(engine.Solve(shallow).ok());
}

TEST(Engine, ProfileRelationMeasuresLeadingRuns) {
  Relation<NaturalSemiring> r{Schema(std::vector<VarId>{0, 1})};
  for (Value k : {0, 0, 0, 1, 2, 2})
    r.Add({k, static_cast<Value>(r.size())}, 1);
  r.Canonicalize();
  const RelationProfile p = ProfileRelation(r);
  EXPECT_EQ(p.rows, 6u);
  EXPECT_EQ(p.max_leading_run, 3u);
}

// ---------------------------------------------------------------------------
// Parser round-trip and instantiation.

TEST(Parse, RoundTripsThroughFormat) {
  const char* text = "q(A, C) :- R(A, B), S(B, C), T(C); min(B)";
  auto p1 = ParseQuery(text);
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();
  const std::string printed = FormatQuery(*p1);
  auto p2 = ParseQuery(printed);
  ASSERT_TRUE(p2.ok()) << p2.status().ToString();
  EXPECT_EQ(FormatQuery(*p2), printed);
  EXPECT_EQ(p1->head, p2->head);
  EXPECT_EQ(p1->var_names, p2->var_names);
  EXPECT_EQ(p1->free_vars, p2->free_vars);
  EXPECT_EQ(p1->var_ops, p2->var_ops);
  ASSERT_EQ(p1->atoms.size(), p2->atoms.size());
  for (size_t i = 0; i < p1->atoms.size(); ++i) {
    EXPECT_EQ(p1->atoms[i].name, p2->atoms[i].name);
    EXPECT_EQ(p1->atoms[i].vars, p2->atoms[i].vars);
  }
  // Shape checks: vars are interned in first-appearance order A,C,B.
  EXPECT_EQ(p1->var_names, (std::vector<std::string>{"A", "C", "B"}));
  EXPECT_EQ(p1->free_vars, (std::vector<VarId>{0, 1}));
  EXPECT_EQ(p1->var_ops[2], VarOp::kMin);
}

TEST(Parse, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("q(A)").ok());                       // no body
  EXPECT_FALSE(ParseQuery("q(A) :- ").ok());                   // empty body
  EXPECT_FALSE(ParseQuery("q(A) :- R(A, A)").ok());            // repeated var
  EXPECT_FALSE(ParseQuery("q(A, A) :- R(A)").ok());            // repeated head
  EXPECT_FALSE(ParseQuery("q(A) :- R(B)").ok());               // A not in body
  EXPECT_FALSE(ParseQuery("q(A) :- R(A, B); avg(B)").ok());    // unknown agg
  EXPECT_FALSE(ParseQuery("q(A) :- R(A, B); min(Z)").ok());    // unknown var
  EXPECT_FALSE(ParseQuery("q(A) :- R(A, B); min(A)").ok());    // agg on free
  EXPECT_FALSE(ParseQuery("q(A) :- R(A, B); min(B), max(B)").ok());  // dup agg
  EXPECT_FALSE(ParseQuery("q(A) :- R(A, B) garbage").ok());    // trailing
}

TEST(Parse, InstantiatedQueryMatchesHandBuiltQuery) {
  // S is written S(C, B) — reversed relative to VarId order — so this also
  // exercises the positional column reordering.
  auto parsed = ParseQuery("q(A) :- R(A, B), S(C, B)");
  ASSERT_TRUE(parsed.ok());

  Rng rng(77);
  std::vector<std::vector<Value>> r_rows, s_rows;
  for (int i = 0; i < 150; ++i) {
    r_rows.push_back({rng.NextU64(20), rng.NextU64(20)});
    s_rows.push_back({rng.NextU64(20), rng.NextU64(20)});
  }

  // Text path: columns in written-atom order (S's first column is C).
  Relation<NaturalSemiring> r_txt{Schema(std::vector<VarId>{0, 1})};
  for (auto& row : r_rows) r_txt.Add({row[0], row[1]}, 1);
  Relation<NaturalSemiring> s_txt{Schema(std::vector<VarId>{0, 1})};
  for (auto& row : s_rows) s_txt.Add({row[0], row[1]}, 1);
  auto q_txt = InstantiateQuery<NaturalSemiring>(
      *parsed, {std::move(r_txt), std::move(s_txt)});
  ASSERT_TRUE(q_txt.ok()) << q_txt.status().ToString();

  // Hand-built path: A=0, B=1, C=2; S's schema is sorted {B=1, C=2}.
  Hypergraph h(3, {{0, 1}, {1, 2}});
  Relation<NaturalSemiring> r_hand{Schema(std::vector<VarId>{0, 1})};
  for (auto& row : r_rows) r_hand.Add({row[0], row[1]}, 1);
  Relation<NaturalSemiring> s_hand{Schema(std::vector<VarId>{1, 2})};
  for (auto& row : s_rows) s_hand.Add({row[1], row[0]}, 1);  // B, C
  r_hand.Canonicalize();
  s_hand.Canonicalize();
  auto q_hand = MakeFaqSS<NaturalSemiring>(
      h, {std::move(r_hand), std::move(s_hand)}, {0});

  Engine engine;
  auto a_txt = engine.Solve(*std::move(q_txt));
  auto a_hand = engine.Solve(std::move(q_hand));
  ASSERT_TRUE(a_txt.ok());
  ASSERT_TRUE(a_hand.ok());
  EXPECT_TRUE(BytesEqual(*a_txt, *a_hand));
}

// ---------------------------------------------------------------------------
// Plan cache.

TEST(Engine, PlanCacheHitsOnRepeatedShapes) {
  PlanCache::Shared().Clear();
  Engine engine;

  // Same shape, different data: first query misses, the rest hit.
  auto q1 = RandomQuery<NaturalSemiring>(StarGraph(3), 100, 16, 61, {});
  auto q2 = RandomQuery<NaturalSemiring>(StarGraph(3), 100, 16, 62, {});
  QueryRequest req1;
  req1.query = q1;
  auto r1 = engine.Solve(std::move(req1));
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->plan_cache_hit);

  QueryRequest req2;
  req2.query = q2;
  auto r2 = engine.Solve(std::move(req2));
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->plan_cache_hit);

  const PlanCache::Stats stats = PlanCache::Shared().stats();
  EXPECT_GE(stats.hits, 1);
  EXPECT_GE(stats.misses, 1);
  EXPECT_GT(stats.HitRate(), 0.0);

  // Direct solver calls share the same cache: a third solve of the shape
  // adds hits without misses.
  const int64_t misses_before = stats.misses;
  ExecContext ctx;
  ASSERT_TRUE(YannakakisSolve(q1, &ctx).ok());
  EXPECT_EQ(PlanCache::Shared().stats().misses, misses_before);
  EXPECT_GT(PlanCache::Shared().stats().hits, stats.hits);
}

TEST(PlanCache, FingerprintSeparatesShapes) {
  const Hypergraph a(3, {{0, 1}, {1, 2}});
  const Hypergraph b(3, {{1, 2}, {0, 1}});  // same edge set, other order
  EXPECT_NE(PlanCache::Fingerprint(a, {}, 4, 1),
            PlanCache::Fingerprint(b, {}, 4, 1));
  EXPECT_NE(PlanCache::Fingerprint(a, {0}, 4, 1),
            PlanCache::Fingerprint(a, {1}, 4, 1));
  EXPECT_EQ(PlanCache::Fingerprint(a, {}, 4, 1),
            PlanCache::Fingerprint(a, {}, 4, 1));
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  PlanCache cache(/*capacity=*/2);
  const Hypergraph h1(2, {{0, 1}});
  const Hypergraph h2(3, {{0, 1}, {1, 2}});
  const Hypergraph h3(4, {{0, 1}, {1, 2}, {2, 3}});
  cache.Canonical(h1);
  cache.Canonical(h2);
  cache.Canonical(h3);  // evicts h1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  bool hit = false;
  cache.Canonical(h1, &hit);  // re-miss after eviction
  EXPECT_FALSE(hit);
  cache.Canonical(h3, &hit);
  EXPECT_TRUE(hit);
}

// ---------------------------------------------------------------------------
// Options.

TEST(EngineOptions, FromEnvParsesPageBudget) {
  setenv("TOPOFAQ_PAGE_BUDGET", "3", 1);
  EXPECT_EQ(EngineOptions::FromEnv().page_budget, 3);
  setenv("TOPOFAQ_PAGE_BUDGET", "0", 1);  // invalid: keep the default
  EXPECT_EQ(EngineOptions::FromEnv().page_budget, 8);
  unsetenv("TOPOFAQ_PAGE_BUDGET");
  EXPECT_EQ(EngineOptions::FromEnv().page_budget, 8);
}

}  // namespace
}  // namespace topofaq
