// Property/fuzz tests for the textual query format (faq/parse.h).
//
// Three layers on top of the hand-written accept/reject cases in
// engine_test.cc:
//   1. Generative round-trip: render a random query shape with random
//      whitespace, optional explicit sum() clauses (the formatter's
//      default, so canonical output drops them), and an optional trailing
//      '.'; the parse must fix-point through FormatQuery and reproduce the
//      same structure from both the noisy and the canonical text.
//   2. Byte mangles: deleting / substituting / inserting single bytes and
//      truncating at every position must never crash, never accept-and-
//      corrupt silently (any success must still fix-point), and every
//      position-carrying error must report a byte offset inside the input.
//   3. Targeted offsets: for each reject family the reported offset is
//      pinned exactly, so error positions are part of the contract, not an
//      accident of the cursor implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "faq/parse.h"
#include "random_instances.h"
#include "util/rng.h"

namespace topofaq {
namespace {

// ---------------------------------------------------------------------------
// Generative round-trip
// ---------------------------------------------------------------------------

/// Distinct identifiers exercising the whole ident grammar
/// ([A-Za-z_][A-Za-z0-9_]*), including ones that look like keywords —
/// "sum" is a fine variable name outside an aggregate clause.
const char* const kVarNames[] = {"A", "B", "x9", "_u", "sum", "Very_Long_7"};
const char* const kAtomNames[] = {"R", "S", "edge_3", "_f", "min"};
const char* const kAggNames[] = {"sum", "min", "max", "prod"};

/// A random query shape plus its token stream (no whitespace decisions yet).
struct GenQuery {
  std::vector<std::string> tokens;
  size_t num_atoms = 0;
};

GenQuery GenerateQuery(Rng* rng) {
  GenQuery g;
  const size_t num_vars = 1 + rng->NextU64(6);
  const size_t num_atoms = 1 + rng->NextU64(4);
  g.num_atoms = num_atoms;

  // Atoms first, so the head can be restricted to variables that occur in
  // some atom (the parser rejects free variables outside every edge).
  std::vector<std::vector<size_t>> atom_vars(num_atoms);
  std::vector<bool> used(num_vars, false);
  for (size_t a = 0; a < num_atoms; ++a) {
    const size_t arity = 1 + rng->NextU64(std::min<size_t>(3, num_vars));
    std::vector<size_t> pool(num_vars);
    for (size_t i = 0; i < num_vars; ++i) pool[i] = i;
    rng->Shuffle(&pool);
    for (size_t j = 0; j < arity; ++j) {
      atom_vars[a].push_back(pool[j]);
      used[pool[j]] = true;
    }
  }
  std::vector<size_t> usable;
  for (size_t v = 0; v < num_vars; ++v)
    if (used[v]) usable.push_back(v);

  // Head: 0-2 distinct used variables.
  rng->Shuffle(&usable);
  const size_t num_free = rng->NextU64(std::min<size_t>(3, usable.size() + 1));
  std::vector<bool> is_free(num_vars, false);
  g.tokens.push_back("q");
  g.tokens.push_back("(");
  for (size_t i = 0; i < num_free; ++i) {
    if (i > 0) g.tokens.push_back(",");
    g.tokens.push_back(kVarNames[usable[i]]);
    is_free[usable[i]] = true;
  }
  g.tokens.push_back(")");
  g.tokens.push_back(":-");
  for (size_t a = 0; a < num_atoms; ++a) {
    if (a > 0) g.tokens.push_back(",");
    g.tokens.push_back(kAtomNames[a % (sizeof(kAtomNames) /
                                       sizeof(kAtomNames[0]))]);
    g.tokens.push_back("(");
    for (size_t j = 0; j < atom_vars[a].size(); ++j) {
      if (j > 0) g.tokens.push_back(",");
      g.tokens.push_back(kVarNames[atom_vars[a][j]]);
    }
    g.tokens.push_back(")");
  }
  // Aggregate clauses on a subset of bound variables; explicit sum()
  // clauses are legal input that the canonical form drops.
  std::vector<size_t> bound;
  for (size_t v : usable)
    if (!is_free[v]) bound.push_back(v);
  rng->Shuffle(&bound);
  const size_t num_aggs = rng->NextU64(bound.size() + 1);
  for (size_t i = 0; i < num_aggs; ++i) {
    g.tokens.push_back(i == 0 ? ";" : ",");
    g.tokens.push_back(kAggNames[rng->NextU64(4)]);
    g.tokens.push_back("(");
    g.tokens.push_back(kVarNames[bound[i]]);
    g.tokens.push_back(")");
  }
  if (rng->NextBool()) g.tokens.push_back(".");
  return g;
}

/// Joins tokens with random whitespace (the grammar is whitespace-
/// insensitive: punctuation separates tokens, so "" is legal glue).
std::string RenderNoisy(const GenQuery& g, Rng* rng) {
  const char* const kWs[] = {"", " ", "  ", "\t", "\n", " \t "};
  std::string out = kWs[rng->NextU64(6)];
  for (const std::string& t : g.tokens) {
    out += t;
    out += kWs[rng->NextU64(6)];
  }
  return out;
}

void ExpectSameQuery(const ParsedQuery& a, const ParsedQuery& b) {
  EXPECT_EQ(a.head, b.head);
  EXPECT_EQ(a.var_names, b.var_names);
  EXPECT_EQ(a.free_vars, b.free_vars);
  EXPECT_EQ(a.var_ops, b.var_ops);
  ASSERT_EQ(a.atoms.size(), b.atoms.size());
  for (size_t i = 0; i < a.atoms.size(); ++i) {
    EXPECT_EQ(a.atoms[i].name, b.atoms[i].name);
    EXPECT_EQ(a.atoms[i].vars, b.atoms[i].vars);
  }
}

TEST(ParseFuzz, GeneratedQueriesRoundTripThroughFormat) {
  const uint64_t base_seed = 4242;
  for (uint64_t trial = 0; trial < 300; ++trial) {
    const uint64_t seed = base_seed + trial;
    SCOPED_TRACE(InstanceLabel("generated query", seed));
    Rng rng(seed);
    const GenQuery g = GenerateQuery(&rng);
    const std::string noisy = RenderNoisy(g, &rng);
    SCOPED_TRACE("text: " + noisy);

    auto p1 = ParseQuery(noisy);
    ASSERT_TRUE(p1.ok()) << p1.status().ToString();
    EXPECT_EQ(p1->atoms.size(), g.num_atoms);

    // FormatQuery(ParseQuery(s)) is the canonical form: parsing it back
    // reproduces the same structure and the same bytes (fix point).
    const std::string canonical = FormatQuery(*p1);
    auto p2 = ParseQuery(canonical);
    ASSERT_TRUE(p2.ok()) << "canonical: " << canonical << "\n"
                         << p2.status().ToString();
    EXPECT_EQ(FormatQuery(*p2), canonical);
    ExpectSameQuery(*p1, *p2);
  }
}

// ---------------------------------------------------------------------------
// Byte mangles
// ---------------------------------------------------------------------------

/// Byte offset from a "parse error at offset N: ..." message, or -1 for
/// errors that don't carry a position.
int ErrorOffset(const Status& st) {
  static const char kPrefix[] = "parse error at offset ";
  const std::string& m = st.message();
  if (m.rfind(kPrefix, 0) != 0) return -1;
  return std::atoi(m.c_str() + sizeof(kPrefix) - 1);
}

/// The parser contract under arbitrary bytes: no crash, InvalidArgument on
/// failure, any reported offset inside [0, len], and any *success* still
/// fix-points through FormatQuery (a mangle may legitimately still parse —
/// deleting one of two spaces, say — but it must never half-parse).
void CheckMangled(const std::string& s) {
  auto p = ParseQuery(s);
  if (!p.ok()) {
    EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument)
        << p.status().ToString();
    const int off = ErrorOffset(p.status());
    if (off >= 0) {
      EXPECT_LE(static_cast<size_t>(off), s.size())
          << p.status().ToString();
    }
    return;
  }
  const std::string canonical = FormatQuery(*p);
  auto p2 = ParseQuery(canonical);
  ASSERT_TRUE(p2.ok()) << "canonical: " << canonical;
  EXPECT_EQ(FormatQuery(*p2), canonical);
}

TEST(ParseFuzz, MangledBytesNeverCrashAndOffsetsStayInBounds) {
  const char kNasty[] = "(),;:-. _0Zz\0\xff\t\n";  // includes NUL
  const size_t nasty_n = sizeof(kNasty) - 1;
  const uint64_t base_seed = 9090;
  for (uint64_t trial = 0; trial < 400; ++trial) {
    const uint64_t seed = base_seed + trial;
    SCOPED_TRACE(InstanceLabel("mangle", seed));
    Rng rng(seed);
    const GenQuery g = GenerateQuery(&rng);
    std::string s = RenderNoisy(g, &rng);
    const size_t pos = rng.NextU64(s.size());
    switch (rng.NextU64(4)) {
      case 0:  // delete one byte
        s.erase(pos, 1);
        break;
      case 1:  // substitute one byte
        s[pos] = kNasty[rng.NextU64(nasty_n)];
        break;
      case 2:  // insert one byte
        s.insert(pos, 1, kNasty[rng.NextU64(nasty_n)]);
        break;
      case 3:  // truncate
        s.resize(pos);
        break;
    }
    SCOPED_TRACE("text: " + s);
    CheckMangled(s);
  }
}

TEST(ParseFuzz, EveryTruncationOfAValidQueryIsHandled) {
  const std::string full = "q(A, C) :- R(A, B), S(B, C), T(C); min(B)";
  for (size_t len = 0; len <= full.size(); ++len) {
    SCOPED_TRACE("prefix length " + std::to_string(len));
    CheckMangled(full.substr(0, len));
  }
}

// ---------------------------------------------------------------------------
// Targeted error offsets
// ---------------------------------------------------------------------------

TEST(ParseFuzz, ErrorOffsetsArePinnedPerRejectFamily) {
  struct Case {
    const char* text;
    int offset;
    const char* needle;
  };
  const Case cases[] = {
      // Missing ":-": the cursor stops right after the head.
      {"q(A)", 4, "expected ':-'"},
      {"q(A) :# R(A)", 5, "expected ':-'"},
      // Empty body: offset is end-of-input, where an atom should start.
      {"q(A) :- ", 8, "expected a predicate name"},
      // Unclosed argument list: offset is where ',' or ')' was expected.
      {"q(A) :- R(A", 11, "expected ',' or ')'"},
      // Head repetition is detected after the head atom is consumed.
      {"q(A, A) :- R(A)", 7, "repeated"},
      // Trailing garbage: offset is the first unconsumed byte.
      {"q(A) :- R(A, B) garbage", 16, "trailing input"},
      // Unknown aggregate: offset is right after the bad name.
      {"q(A) :- R(A, B); avg(B)", 20, "unknown aggregate"},
      // Aggregate on a free variable: offset after the full clause.
      {"q(A) :- R(A, B); min(A)", 23, "aggregate on free variable"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.text);
    auto p = ParseQuery(c.text);
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(ErrorOffset(p.status()), c.offset) << p.status().ToString();
    EXPECT_NE(p.status().message().find(c.needle), std::string::npos)
        << p.status().ToString();
  }
}

}  // namespace
}  // namespace topofaq
