// End-to-end reproduction of the paper's worked examples: the Figure 1
// queries/topologies, Examples 2.1–2.4, the Figure 2 decompositions, and the
// Appendix C.2 GYO trace — each exercised through the real protocol stack.
#include <gtest/gtest.h>

#include "faq/solvers.h"
#include "graphalg/topologies.h"
#include "hypergraph/generators.h"
#include "lowerbounds/bounds.h"
#include "lowerbounds/embeddings.h"
#include "mcm/protocols.h"
#include "protocols/distributed.h"

namespace topofaq {
namespace {

using BRel = Relation<BooleanSemiring>;

/// Builds the query of Example 2.1/2.2 style: every relation contains
/// {(i, 1) : i < n} (arity 2) or {i : i < n} (arity 1), so the shared
/// attribute's intersection is full and the protocol must process all of it.
std::vector<BRel> FullOverlapRelations(const Hypergraph& h, int n) {
  std::vector<BRel> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    BRel r{Schema(h.edge(e))};
    for (int i = 0; i < n; ++i) {
      std::vector<Value> row(h.edge(e).size(), 1);
      row[0] = static_cast<Value>(i);
      r.Add(row, 1);
    }
    r.Canonicalize();
    rels.push_back(std::move(r));
  }
  return rels;
}

TEST(Example21, SelfLoopIntersectionOnLineIsLinearInN) {
  // q0() :- R(A), S(A), T(A), U(A) on G1; upper bound N + 2 in the paper's
  // one-value-per-round accounting.
  for (int n : {64, 128, 256}) {
    DistInstance<BooleanSemiring> inst;
    inst.query = MakeBcq(PaperH0(), FullOverlapRelations(PaperH0(), n));
    inst.topology = LineTopology(4);
    inst.owners = {0, 1, 2, 3};
    inst.sink = 3;
    ProtocolStats stats;
    auto ans = RunBcqProtocol(inst, &stats);
    ASSERT_TRUE(ans.ok());
    EXPECT_TRUE(*ans);
    // Linear in N; far below the trivial protocol's 3N relation shipping.
    EXPECT_LE(stats.rounds, 2 * n + 30);
    auto trivial = RunTrivialProtocol(inst);
    ASSERT_TRUE(trivial.ok());
    EXPECT_GE(trivial->stats.rounds, 3 * (n - 1));
  }
}

TEST(Example22, StarOnLineScalesLinearly) {
  // q1() :- R(A,B), S(A,C), T(A,D), U(A,E) on G1, sink P2 (node 1).
  std::vector<int64_t> rounds;
  for (int n : {128, 256, 512}) {
    DistInstance<BooleanSemiring> inst;
    inst.query = MakeBcq(PaperH1(), FullOverlapRelations(PaperH1(), n));
    inst.topology = LineTopology(4);
    inst.owners = {0, 1, 2, 3};
    inst.sink = 1;
    ProtocolStats stats;
    auto ans = RunBcqProtocol(inst, &stats);
    ASSERT_TRUE(ans.ok());
    EXPECT_TRUE(*ans);
    rounds.push_back(stats.rounds);
  }
  // Doubling N roughly doubles the rounds (N + O(1) shape).
  EXPECT_GT(rounds[1], rounds[0] * 3 / 2);
  EXPECT_LT(rounds[2], rounds[1] * 3);
}

TEST(Example23, CliqueHalvesTheStarCost) {
  const int n = 512;
  DistInstance<BooleanSemiring> line, clique;
  line.query = clique.query =
      MakeBcq(PaperH1(), FullOverlapRelations(PaperH1(), n));
  line.topology = LineTopology(4);
  clique.topology = CliqueTopology(4);
  line.owners = clique.owners = {0, 1, 2, 3};
  line.sink = clique.sink = 1;
  ProtocolStats s_line, s_clique;
  ASSERT_TRUE(RunBcqProtocol(line, &s_line).ok());
  ASSERT_TRUE(RunBcqProtocol(clique, &s_clique).ok());
  // W1/W2 packing: two edge-disjoint diameter-3 trees => about half the
  // rounds of the single line path.
  EXPECT_LT(s_clique.rounds, s_line.rounds * 3 / 4);
  EXPECT_GT(s_clique.rounds, s_line.rounds / 4);
}

TEST(Example24, LowerBoundFormulaOnG1) {
  // MinCut(G1, K) = 1 and y(H1) = 1: lower bound Ω(N); the protocol's
  // measured rounds are within a constant of it.
  const int n = 256;
  Graph g1 = LineTopology(4);
  std::vector<NodeId> k{0, 1, 2, 3};
  BoundBreakdown b = ComputeBounds(PaperH1(), g1, k, n);
  EXPECT_EQ(b.y, 1);
  EXPECT_EQ(b.min_cut, 1);
  EXPECT_EQ(b.lower_bound, (1 + 2) * n);  // (y + n2)·N / 1

  DistInstance<BooleanSemiring> inst;
  inst.query = MakeBcq(PaperH1(), FullOverlapRelations(PaperH1(), n));
  inst.topology = g1;
  inst.owners = {0, 1, 2, 3};
  inst.sink = 1;
  ProtocolStats stats;
  ASSERT_TRUE(RunBcqProtocol(inst, &stats).ok());
  EXPECT_LE(stats.rounds, 8 * b.lower_bound);  // O~(1) gap, Table 1 row 2
}

TEST(Example24, HardInstanceEndToEnd) {
  // The TRIBES-embedded star instance across the G1 cut, exactly as in
  // Example 2.4: R = X1×{1}, S = T = [N]×{1}, U = Y1×{1}.
  Rng rng(42);
  for (double p : {0.0, 1.0}) {
    TribesInstance t = RandomTribes(1, 64, p, &rng);
    auto emb = EmbedTribesInForest(PaperH1(), t);
    ASSERT_TRUE(emb.ok());
    auto assign = AssignAcrossMinCut(LineTopology(4), *emb);
    ASSERT_TRUE(assign.ok());
    EXPECT_EQ(assign->min_cut, 1);
    DistInstance<BooleanSemiring> inst;
    inst.query = emb->query;
    inst.topology = LineTopology(4);
    inst.owners = assign->owners;
    inst.sink = assign->bob;
    auto ans = RunBcqProtocol(inst);
    ASSERT_TRUE(ans.ok());
    EXPECT_EQ(*ans, t.Evaluate());
  }
}

TEST(Figure2, DecompositionShapes) {
  // T1: root (A,B,C) with three leaves — one internal node; y(H2) = 1.
  WidthResult w = ComputeWidth(PaperH2());
  EXPECT_EQ(w.internal_nodes, 1);
  const Ghd& g = w.decomposition.ghd;
  EXPECT_EQ(g.node(g.root()).chi, (std::vector<VarId>{0, 1, 2}));
  EXPECT_EQ(g.num_nodes(), 4);
  // W1/W2: the 4-clique packs two edge-disjoint diameter-3 Steiner trees.
  auto trees = PackSteinerTrees(CliqueTopology(4), {0, 1, 2, 3}, 3, 7);
  EXPECT_EQ(trees.size(), 2u);
}

TEST(Figure2, H2BcqThroughBothDecompositions) {
  // The answer cannot depend on which GYO-GHD (T1 vs T2 shape) evaluates it.
  Rng rng(77);
  Hypergraph h = PaperH2();
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<BRel> rels;
    for (int e = 0; e < h.num_edges(); ++e) {
      BRel r{Schema(h.edge(e))};
      for (int i = 0; i < 8; ++i) {
        std::vector<Value> row;
        for (size_t j = 0; j < h.edge(e).size(); ++j)
          row.push_back(rng.NextU64(3));
        r.Add(row, 1);
      }
      r.Canonicalize();
      rels.push_back(std::move(r));
    }
    auto q = MakeBcq(h, rels);
    // T1 shape (flattened/minimized) vs raw canonical GYO-GHD (T2-like).
    auto via_t1 = YannakakisSolveOn(q, MinimizeWidth(h, 4, iter).decomposition);
    auto via_t2 = YannakakisSolveOn(q, BuildGyoGhd(h));
    ASSERT_TRUE(via_t1.ok() && via_t2.ok());
    EXPECT_EQ(via_t1->empty(), via_t2->empty());
  }
}

TEST(AppendixC2, GyoTraceOfH3) {
  // The worked GYO execution: residual {e1,e2,e3}, forest {e4..e7} as one
  // tree rooted at e4, C(H3) = {A,B,C,D,E}, n2 = 5.
  CoreForest cf = DecomposeCoreForest(PaperH3());
  EXPECT_EQ(cf.core_edges, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(cf.root_edges, (std::vector<int>{3}));
  EXPECT_EQ(cf.n2(), 5);
  // The two sample GYO-GHDs in C.2 have 2 and 3 internal nodes. Our
  // construction keeps forest nodes inside their GYO tree (protocol-friendly;
  // see DESIGN.md) and lands on 3: r', (A,B,E), (B,G).
  EXPECT_EQ(ComputeWidth(PaperH3()).internal_nodes, 3);
}

TEST(Table1Row5, McmShapes) {
  // Sequential O(kN) vs lower bound kN: constant-factor gap (row 5 gap
  // O(1)); and the k >> N merge regime.
  McmBounds b = ComputeMcmBounds(8, 32);
  Rng rng(5);
  McmInstance inst;
  inst.x = BitVector::Random(32, &rng);
  for (int i = 0; i < 8; ++i) inst.matrices.push_back(BitMatrix::Random(32, &rng));
  McmResult seq = RunMcmSequential(inst);
  EXPECT_GE(seq.rounds, b.lower);
  EXPECT_LE(seq.rounds, 2 * b.lower + 64);
}

TEST(Table1, GapShrinksWithConnectivity) {
  // The same star query: the line pays MinCut = 1; the clique's larger cut
  // shrinks the lower bound while the protocol speeds up accordingly.
  const int n = 256;
  std::vector<NodeId> k{0, 1, 2, 3};
  BoundBreakdown line = ComputeBounds(PaperH1(), LineTopology(4), k, n);
  BoundBreakdown clique = ComputeBounds(PaperH1(), CliqueTopology(4), k, n);
  EXPECT_LT(clique.star_term, line.star_term);
  EXPECT_GT(clique.min_cut, line.min_cut);
}

}  // namespace
}  // namespace topofaq
