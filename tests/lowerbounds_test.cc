// Lower-bound machinery tests: the TRIBES → BCQ reductions must be
// *functionally equivalent* (BCQ answer == TRIBES value) for every
// embedding, and the worst-case cut assignments must separate the S and T
// relations.
#include <gtest/gtest.h>

#include "faq/solvers.h"
#include "graphalg/topologies.h"
#include "hypergraph/generators.h"
#include "lowerbounds/bounds.h"
#include "lowerbounds/embeddings.h"
#include "lowerbounds/tribes.h"
#include "protocols/distributed.h"

namespace topofaq {
namespace {

bool BcqValue(const FaqQuery<BooleanSemiring>& q) {
  auto res = BruteForceSolve(q);
  TOPOFAQ_CHECK(res.ok());
  return !res->empty();
}

TEST(Tribes, EvaluateMatchesDefinition) {
  TribesInstance t;
  t.n = 10;
  t.pairs = {{{1, 2}, {2, 3}}, {{4}, {4, 5}}};
  EXPECT_TRUE(t.Evaluate());  // both intersect
  t.pairs.push_back({{6}, {7}});
  EXPECT_FALSE(t.Evaluate());  // last pair disjoint
  auto per = t.PairIntersects();
  EXPECT_TRUE(per[0]);
  EXPECT_FALSE(per[2]);
}

TEST(Tribes, RandomPlantingControlsIntersection) {
  Rng rng(1);
  TribesInstance yes = RandomTribes(20, 64, 1.0, &rng);
  EXPECT_TRUE(yes.Evaluate());
  TribesInstance no = RandomTribes(20, 64, 0.0, &rng);
  EXPECT_FALSE(no.Evaluate());
}

TEST(ForestEmbedding, StarMatchesExample24) {
  // Example 2.4: TRIBES_{1,N} embeds into BCQ of the star H1 with
  // R = X1×{1}, S = T = [N]×{1}, U = Y1×{1}.
  Hypergraph h = PaperH1();
  for (double p : {0.0, 1.0}) {
    Rng rng(p == 0.0 ? 2 : 3);
    TribesInstance t = RandomTribes(1, 32, p, &rng);
    auto emb = EmbedTribesInForest(h, t);
    ASSERT_TRUE(emb.ok());
    EXPECT_EQ(BcqValue(emb->query), t.Evaluate());
    EXPECT_EQ(emb->s_edges.size(), 1u);
    EXPECT_EQ(emb->t_edges.size(), 1u);
  }
}

TEST(ForestEmbedding, CapacityAtLeastHalfWidth) {
  // |O| >= y(H)/2 (Lemma 4.3).
  Rng rng(4);
  for (int iter = 0; iter < 20; ++iter) {
    Hypergraph h = RandomForest(2, 6, &rng);
    WidthResult w = MinimizeWidth(h, 4, iter);
    EXPECT_GE(2 * ForestEmbeddingCapacity(h), w.internal_nodes)
        << h.DebugString();
  }
}

class ForestEmbeddingSweep : public ::testing::TestWithParam<int> {};

TEST_P(ForestEmbeddingSweep, FunctionalEquivalenceOnRandomForests) {
  Rng rng(100 + GetParam());
  Hypergraph h = RandomForest(1 + GetParam() % 3, 5, &rng);
  const int cap = ForestEmbeddingCapacity(h);
  if (cap == 0) GTEST_SKIP() << "degenerate forest";
  const int m = 1 + GetParam() % cap;
  for (double p : {0.0, 0.6, 1.0}) {
    TribesInstance t = RandomTribes(m, 16, p, &rng);
    auto emb = EmbedTribesInForest(h, t);
    ASSERT_TRUE(emb.ok()) << emb.status().ToString();
    EXPECT_EQ(BcqValue(emb->query), t.Evaluate()) << h.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ForestEmbeddingSweep, ::testing::Range(0, 12));

TEST(IndependentSetEmbedding, WorksOnCyclicGraphs) {
  Rng rng(5);
  for (const Hypergraph& h :
       {CycleGraph(6), CycleGraph(9), RandomDDegenerate(12, 2, &rng)}) {
    const int cap = IndependentSetCapacity(h);
    ASSERT_GE(cap, 1);
    for (double p : {0.0, 1.0}) {
      TribesInstance t = RandomTribes(std::min(cap, 3), 16, p, &rng);
      auto emb = EmbedTribesByIndependentSet(h, t);
      ASSERT_TRUE(emb.ok()) << emb.status().ToString();
      EXPECT_EQ(BcqValue(emb->query), t.Evaluate()) << h.DebugString();
    }
  }
}

TEST(CycleEmbedding, FindsDisjointCycles) {
  auto cycles = FindDisjointCycles(CycleGraph(5));
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 5u);
  // Two disjoint triangles.
  Hypergraph two(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  EXPECT_EQ(FindDisjointCycles(two).size(), 2u);
  EXPECT_TRUE(FindDisjointCycles(PathGraph(5)).empty());
}

TEST(CycleEmbedding, FunctionalEquivalenceOnCycles) {
  Rng rng(6);
  Hypergraph two(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  for (double p : {0.0, 1.0}) {
    TribesInstance t = RandomTribes(2, 16, p, &rng);  // universe [16] -> 4x4
    auto emb = EmbedTribesOnCycles(two, t);
    ASSERT_TRUE(emb.ok()) << emb.status().ToString();
    EXPECT_EQ(BcqValue(emb->query), t.Evaluate());
  }
}

TEST(CycleEmbedding, CliqueHostsMultiplePairs) {
  Rng rng(7);
  Hypergraph h = CliqueGraph(9);  // 3 vertex-disjoint triangles exist
  auto cycles = FindDisjointCycles(h);
  ASSERT_GE(cycles.size(), 2u);
  TribesInstance t = RandomTribes(2, 9, 1.0, &rng);
  auto emb = EmbedTribesOnCycles(h, t);
  ASSERT_TRUE(emb.ok());
  EXPECT_EQ(BcqValue(emb->query), t.Evaluate());
}

TEST(StrongIS, NoHyperedgeContainsTwoChosen) {
  Rng rng(8);
  for (int iter = 0; iter < 10; ++iter) {
    Hypergraph h = RandomHypergraph(12, 3, 3, &rng);
    std::vector<VarId> all;
    for (int v = 0; v < h.num_vertices(); ++v) all.push_back(v);
    auto is = GreedyStrongIndependentSet(h, all);
    for (int e = 0; e < h.num_edges(); ++e) {
      int hits = 0;
      for (VarId v : h.edge(e))
        if (std::find(is.begin(), is.end(), v) != is.end()) ++hits;
      EXPECT_LE(hits, 1);
    }
  }
}

class HypergraphEmbeddingSweep : public ::testing::TestWithParam<int> {};

TEST_P(HypergraphEmbeddingSweep, FunctionalEquivalenceOnHypergraphs) {
  Rng rng(200 + GetParam());
  Hypergraph h = RandomAcyclicHypergraph(6, 3, &rng);
  const int cap = HypergraphEmbeddingCapacity(h);
  if (cap == 0) GTEST_SKIP() << "no witnesses";
  for (double p : {0.0, 1.0}) {
    TribesInstance t = RandomTribes(std::min(cap, 2), 12, p, &rng);
    auto emb = EmbedTribesInHypergraph(h, t);
    ASSERT_TRUE(emb.ok()) << emb.status().ToString();
    EXPECT_EQ(BcqValue(emb->query), t.Evaluate()) << h.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HypergraphEmbeddingSweep,
                         ::testing::Range(0, 10));

TEST(CutAssignment, SeparatesSAndTSides) {
  Rng rng(9);
  Hypergraph h = PaperH1();
  TribesInstance t = RandomTribes(1, 16, 1.0, &rng);
  auto emb = EmbedTribesInForest(h, t);
  ASSERT_TRUE(emb.ok());
  for (const Graph& g : {LineTopology(4), DumbbellTopology(3, 3)}) {
    auto assign = AssignAcrossMinCut(g, *emb);
    ASSERT_TRUE(assign.ok());
    EXPECT_EQ(assign->min_cut, 1);
    EXPECT_NE(assign->alice, assign->bob);
    for (int e : emb->s_edges) EXPECT_EQ(assign->owners[e], assign->alice);
    for (int e : emb->t_edges) EXPECT_EQ(assign->owners[e], assign->bob);
  }
}

TEST(CutAssignment, ProtocolOnHardInstanceStillCorrect) {
  // End-to-end: embed, assign across the cut, run the real protocol; the
  // answer must equal TRIBES.
  Rng rng(10);
  Hypergraph h = PaperH1();
  for (double p : {0.0, 1.0}) {
    TribesInstance t = RandomTribes(1, 64, p, &rng);
    auto emb = EmbedTribesInForest(h, t);
    ASSERT_TRUE(emb.ok());
    Graph g = LineTopology(4);
    auto assign = AssignAcrossMinCut(g, *emb);
    ASSERT_TRUE(assign.ok());
    DistInstance<BooleanSemiring> inst;
    inst.query = emb->query;
    inst.topology = g;
    inst.owners = assign->owners;
    inst.sink = assign->bob;
    auto ans = RunBcqProtocol(inst);
    ASSERT_TRUE(ans.ok());
    EXPECT_EQ(*ans, t.Evaluate());
  }
}

TEST(Bounds, BreakdownIsInternallyConsistent) {
  Graph g = CliqueTopology(5);
  std::vector<NodeId> k{0, 1, 2, 3, 4};
  BoundBreakdown b = ComputeBounds(StarGraph(4), g, k, 1000);
  EXPECT_EQ(b.y, 1);
  EXPECT_EQ(b.upper_total, b.star_term + b.core_term);
  EXPECT_GT(b.lower_bound, 0);
  EXPECT_GE(b.Gap(), 0.0);
  EXPECT_FALSE(b.ToString().empty());
}

TEST(Bounds, LineMinCutMakesLowerBoundLarge) {
  std::vector<NodeId> k{0, 1, 2, 3};
  BoundBreakdown line = ComputeBounds(StarGraph(3), LineTopology(4), k, 1000);
  BoundBreakdown clique =
      ComputeBounds(StarGraph(3), CliqueTopology(4), k, 1000);
  EXPECT_EQ(line.min_cut, 1);
  EXPECT_EQ(clique.min_cut, 3);
  EXPECT_GT(line.lower_bound, clique.lower_bound);
}

TEST(Bounds, GapStaysSmallForConstantDegeneracy) {
  // Table 1 rows 1-3: for constant-d H the UB/LB gap is O~(1)-ish.
  Rng rng(11);
  for (int iter = 0; iter < 5; ++iter) {
    Hypergraph h = RandomForest(1, 6, &rng);
    Graph g = CliqueTopology(6);
    std::vector<NodeId> k{0, 1, 2, 3, 4, 5};
    BoundBreakdown b = ComputeBounds(h, g, k, 4096);
    EXPECT_GT(b.Gap(), 0.0);
    EXPECT_LT(b.Gap(), 40.0) << b.ToString();
  }
}

}  // namespace
}  // namespace topofaq
