// Morsel-parallel kernel tests (docs/kernel.md, "Morsel-parallel
// execution"): the WorkerPool fork/join contract, key-aligned morsel cuts,
// and — the core guarantee — byte-identical canonical output across
// parallelism ∈ {1, 2, 7, hardware_concurrency} for Join / Semijoin /
// Project / Eliminate over four semirings, including empty, skewed, and
// single-key-run inputs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "bit_identity.h"
#include "faq/solvers.h"
#include "relation/exec.h"
#include "relation/ops.h"
#include "relation/parallel.h"
#include "util/rng.h"

namespace topofaq {
namespace {

// ---------------------------------------------------------------------------
// WorkerPool / cuts machinery
// ---------------------------------------------------------------------------

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  WorkerPool& pool = WorkerPool::Shared();
  EXPECT_GE(pool.max_workers(), 4);  // floor of 3 extra threads + caller
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(pool.max_workers(), n,
                   [&](int, size_t t) { hits[t].fetch_add(1); });
  for (size_t t = 0; t < n; ++t) EXPECT_EQ(hits[t].load(), 1) << t;
}

TEST(WorkerPool, WorkerIdsStayInRange) {
  WorkerPool& pool = WorkerPool::Shared();
  const int workers = 3;
  std::atomic<bool> ok{true};
  pool.ParallelFor(workers, 256, [&](int w, size_t) {
    if (w < 0 || w >= workers) ok.store(false);
  });
  EXPECT_TRUE(ok.load());
}

TEST(WorkerPool, ZeroTasksAndSingleWorkerAreNoops) {
  WorkerPool& pool = WorkerPool::Shared();
  int calls = 0;
  pool.ParallelFor(4, 0, [&](int, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, 5, [&](int w, size_t) {
    EXPECT_EQ(w, 0);  // single worker = caller runs everything inline
    ++calls;
  });
  EXPECT_EQ(calls, 5);
}

TEST(WorkerPool, ConcurrentCallersDegradeInsteadOfDeadlocking) {
  // Two user threads hammer the shared pool at once; the loser of the busy
  // check must run serially on its own thread, and every task must still
  // run exactly once.
  std::atomic<int> total{0};
  auto burst = [&] {
    for (int i = 0; i < 50; ++i)
      WorkerPool::Shared().ParallelFor(4, 64,
                                       [&](int, size_t) { total.fetch_add(1); });
  };
  std::thread a(burst), b(burst);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * 50 * 64);
}

TEST(KeyAlignedCuts, NeverSplitsARun) {
  // Keys with heavy runs: position t belongs to run t/7.
  const size_t n = 5000;
  auto starts = [](size_t t) { return t % 7 == 0; };
  std::vector<size_t> cuts = KeyAlignedCuts(n, 16, starts);
  ASSERT_GE(cuts.size(), 2u);
  EXPECT_EQ(cuts.front(), 0u);
  EXPECT_EQ(cuts.back(), n);
  for (size_t i = 1; i + 1 < cuts.size(); ++i) {
    EXPECT_LT(cuts[i - 1], cuts[i]);
    EXPECT_TRUE(starts(cuts[i])) << "cut " << cuts[i] << " inside a run";
  }
}

TEST(KeyAlignedCuts, SingleRunYieldsSingleMorsel) {
  std::vector<size_t> cuts =
      KeyAlignedCuts(4096, 8, [](size_t) { return false; });
  EXPECT_EQ(cuts, (std::vector<size_t>{0, 4096}));
}

// ---------------------------------------------------------------------------
// Operator determinism across parallelism levels
// ---------------------------------------------------------------------------

/// Nonzero annotation generator per semiring (bitwise-reproducible values).
template <CommutativeSemiring S>
typename S::Value MakeAnnot(uint64_t k);
template <>
NaturalSemiring::Value MakeAnnot<NaturalSemiring>(uint64_t k) {
  return k % 97 + 1;
}
template <>
CountingSemiring::Value MakeAnnot<CountingSemiring>(uint64_t k) {
  return 0.5 * static_cast<double>(k % 13 + 1);
}
template <>
MinPlusSemiring::Value MakeAnnot<MinPlusSemiring>(uint64_t k) {
  return static_cast<double>(k % 29);
}
template <>
Gf2Semiring::Value MakeAnnot<Gf2Semiring>(uint64_t) {
  return 1;
}

/// Random canonical relation. skew > 0 squashes the first column's domain so
/// key runs become long and unequal (the morsel balancing worst case).
template <CommutativeSemiring S>
Relation<S> RandomRel(std::vector<VarId> vars, size_t n, uint64_t dom,
                      int skew, uint64_t seed) {
  Rng rng(seed);
  Relation<S> r{Schema(std::move(vars))};
  std::vector<Value> row(r.arity());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < row.size(); ++j) {
      uint64_t v = rng.NextU64(dom);
      if (j == 0 && skew > 0) v = (v * v) / (dom << skew);  // front-loaded
      row[j] = v;
    }
    r.Add(row, MakeAnnot<S>(rng.NextU64(1 << 20)));
  }
  r.Canonicalize();
  return r;
}

/// All-four-operators determinism check for one (left, right) input pair:
/// every parallelism level must reproduce the serial bytes, and the stats
/// rollup must keep rows_in/rows_out identical.
template <CommutativeSemiring S>
void CheckOpsDeterministic(const Relation<S>& left, const Relation<S>& right,
                           const char* what) {
  const int hw =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
  ExecContext serial;
  serial.parallelism = 1;
  const Relation<S> join1 = Join(left, right, &serial);
  const Relation<S> semi1 = Semijoin(left, right, &serial);
  const Relation<S> proj1 =
      left.arity() > 1
          ? Project(left, {left.schema().var(0)}, &serial)
          : Project(left, left.schema().vars(), &serial);
  const Relation<S> elim1 =
      left.arity() > 1
          ? Eliminate(left, {left.schema().var(left.arity() - 1)},
                      {VarOp::kSemiringSum}, &serial)
          : left;
  for (int p : {2, 7, hw}) {
    ExecContext ctx;
    ctx.parallelism = p;
    SCOPED_TRACE(std::string(what) + " @ parallelism " + std::to_string(p));
    EXPECT_TRUE(BytesEqual(Join(left, right, &ctx), join1));
    EXPECT_TRUE(BytesEqual(Semijoin(left, right, &ctx), semi1));
    EXPECT_TRUE(BytesEqual(
        left.arity() > 1 ? Project(left, {left.schema().var(0)}, &ctx)
                         : Project(left, left.schema().vars(), &ctx),
        proj1));
    if (left.arity() > 1)
      EXPECT_TRUE(BytesEqual(
          Eliminate(left, {left.schema().var(left.arity() - 1)},
                    {VarOp::kSemiringSum}, &ctx),
          elim1));
    EXPECT_EQ(ctx.join.rows_out, serial.join.rows_out);
  }
}

template <CommutativeSemiring S>
void RunSemiringSuite(uint64_t seed) {
  const size_t n = 6000;  // comfortably above kParallelMinRows
  // Random sparse join: R(0,1) ⋈ S(1,2), probe path on the left (key is not
  // a left prefix).
  CheckOpsDeterministic<S>(RandomRel<S>({0, 1}, n, n, 0, seed),
                           RandomRel<S>({1, 2}, n, n, 0, seed + 1),
                           "sparse probe join");
  // Prefix-aligned monotone merge: R(0,1) ⋈ S(0,2).
  CheckOpsDeterministic<S>(RandomRel<S>({0, 1}, n, n / 2, 0, seed + 2),
                           RandomRel<S>({0, 2}, n, n / 2, 0, seed + 3),
                           "prefix merge join");
  // Heavy skew: long unequal key runs stress morsel balancing + alignment.
  CheckOpsDeterministic<S>(RandomRel<S>({0, 1}, n, 64, 2, seed + 4),
                           RandomRel<S>({0, 2}, n, 64, 2, seed + 5),
                           "skewed runs");
  // Empty sides.
  CheckOpsDeterministic<S>(Relation<S>{Schema({0, 1})},
                           RandomRel<S>({1, 2}, n, n, 0, seed + 6),
                           "empty left");
  CheckOpsDeterministic<S>(RandomRel<S>({0, 1}, n, n, 0, seed + 7),
                           Relation<S>{Schema({1, 2})}, "empty right");
  // Single key run: every shared key equal — one morsel, serial semantics.
  {
    RelationBuilder<S> bl{Schema({0, 1})}, br{Schema({0, 2})};
    for (size_t i = 0; i < 2048; ++i) {
      bl.Append({7, static_cast<Value>(i)}, MakeAnnot<S>(i));
      br.Append({7, static_cast<Value>(i * 3 % 64)}, MakeAnnot<S>(i + 5));
    }
    CheckOpsDeterministic<S>(bl.Build(), br.Build(), "single key run");
  }
}

TEST(ParallelDeterminism, NaturalSemiring) {
  RunSemiringSuite<NaturalSemiring>(101);
}
TEST(ParallelDeterminism, CountingSemiring) {
  RunSemiringSuite<CountingSemiring>(202);
}
TEST(ParallelDeterminism, MinPlusSemiring) {
  RunSemiringSuite<MinPlusSemiring>(303);
}
TEST(ParallelDeterminism, Gf2Semiring) { RunSemiringSuite<Gf2Semiring>(404); }

TEST(ParallelDeterminism, ParallelPathActuallyEngages) {
  // Guard against the whole suite silently running serial: a large probe
  // join at parallelism 4 must report morsel executions.
  auto l = RandomRel<NaturalSemiring>({0, 1}, 8000, 8000, 0, 9);
  auto r = RandomRel<NaturalSemiring>({1, 2}, 8000, 8000, 0, 10);
  ExecContext ctx;
  ctx.parallelism = 4;
  Join(l, r, &ctx);
  EXPECT_GT(ctx.join.morsels, 1);
  Eliminate(l, {1}, {VarOp::kSemiringSum}, &ctx);
  EXPECT_GT(ctx.eliminate.morsels, 1);
}

TEST(ParallelDeterminism, SmallInputsStaySerial) {
  auto l = RandomRel<NaturalSemiring>({0, 1}, 100, 100, 0, 11);
  auto r = RandomRel<NaturalSemiring>({1, 2}, 100, 100, 0, 12);
  ExecContext ctx;
  ctx.parallelism = 8;
  Join(l, r, &ctx);
  EXPECT_EQ(ctx.join.morsels, 0);
}

TEST(ParallelDeterminism, NonCanonicalDuplicatesStayBitIdentical) {
  // Duplicate tuples in an un-canonicalized float input: piece-local
  // canonicalization would fold their ⊕ in a different association than the
  // serial whole-output pass, so the parallel path must refuse (Join gates
  // on a canonical left) and every parallelism level must still return the
  // serial bits.
  Rng rng(77);
  Relation<CountingSemiring> l{Schema({0, 1})}, r{Schema({1, 2})};
  for (int i = 0; i < 6000; ++i) {
    const Value x = rng.NextU64(50), y = rng.NextU64(50);
    l.Add({x, y}, MakeAnnot<CountingSemiring>(rng.NextU64(100)));
    if (i % 3 == 0)  // heavy duplication, never canonicalized
      l.Add({x, y}, MakeAnnot<CountingSemiring>(rng.NextU64(100)));
    r.Add({rng.NextU64(50), rng.NextU64(50)},
          MakeAnnot<CountingSemiring>(rng.NextU64(100)));
  }
  ExecContext serial;
  serial.parallelism = 1;
  const auto want = Join(l, r, &serial);
  for (int p : {2, 7}) {
    ExecContext ctx;
    ctx.parallelism = p;
    EXPECT_TRUE(BytesEqual(Join(l, r, &ctx), want));
    EXPECT_EQ(ctx.join.morsels, 0);  // non-canonical left: serial fallback
  }
  // Canonical left + non-canonical right must still parallelize and agree.
  Relation<CountingSemiring> lc = l;
  lc.Canonicalize();
  ExecContext s2;
  s2.parallelism = 1;
  const auto want2 = Join(lc, r, &s2);
  ExecContext p2;
  p2.parallelism = 4;
  EXPECT_TRUE(BytesEqual(Join(lc, r, &p2), want2));
  EXPECT_GT(p2.join.morsels, 1);
}

TEST(ParallelDeterminism, MultiBatchEliminateAcrossOps) {
  // Mixed aggregates force multiple batches; each batch's group-by must be
  // deterministic under parallelism.
  auto r = RandomRel<CountingSemiring>({0, 1, 2, 3}, 6000, 32, 0, 21);
  ExecContext serial;
  serial.parallelism = 1;
  auto want = Eliminate(r, {1, 2, 3},
                        {VarOp::kMax, VarOp::kSemiringSum, VarOp::kMin},
                        &serial);
  for (int p : {2, 7}) {
    ExecContext ctx;
    ctx.parallelism = p;
    EXPECT_TRUE(BytesEqual(
        Eliminate(r, {1, 2, 3},
                  {VarOp::kMax, VarOp::kSemiringSum, VarOp::kMin}, &ctx),
        want));
  }
}

TEST(ParallelDeterminism, SolversMatchUnderParallelism) {
  // End-to-end: YannakakisSolve over a path query with a parallel context
  // equals the serial solve and the brute-force oracle.
  Hypergraph h(3, {{0, 1}, {1, 2}});
  Rng rng(5);
  std::vector<Relation<NaturalSemiring>> rels;
  for (int e = 0; e < 2; ++e) {
    Relation<NaturalSemiring> r{Schema(h.edge(e))};
    for (int i = 0; i < 4000; ++i)
      r.Add({rng.NextU64(800), rng.NextU64(800)}, rng.NextU64(5) + 1);
    r.Canonicalize();
    rels.push_back(std::move(r));
  }
  auto q = MakeFaqSS<NaturalSemiring>(h, rels, {0});
  ExecContext serial;
  serial.parallelism = 1;
  auto want = YannakakisSolve(q, &serial);
  ASSERT_TRUE(want.ok());
  ExecContext par;
  par.parallelism = 4;
  auto got = YannakakisSolve(q, &par);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(BytesEqual(*got, *want));
  auto oracle = BruteForceSolve(q);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(got->EqualsAsFunction(*oracle));
}

}  // namespace
}  // namespace topofaq
