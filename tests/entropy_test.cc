// Min-entropy machinery tests (Section 6.2): H∞ / smooth H∞ / Shannon,
// statistical distance, the inner-product extractor (Theorem H.9), and the
// matrix-vector min-entropy propagation experiment (Theorem 6.3).
#include <gtest/gtest.h>

#include <cmath>

#include "entropy/distribution.h"
#include "entropy/extractor.h"
#include "entropy/matrix_entropy.h"

namespace topofaq {
namespace {

TEST(BitDist, UniformEntropies) {
  BitDist d = BitDist::Uniform(8);
  EXPECT_NEAR(d.MinEntropy(), 8.0, 1e-9);
  EXPECT_NEAR(d.ShannonEntropy(), 8.0, 1e-9);
}

TEST(BitDist, PointMassEntropies) {
  BitDist d = BitDist::PointMass(8, 42);
  EXPECT_NEAR(d.MinEntropy(), 0.0, 1e-9);
  EXPECT_NEAR(d.ShannonEntropy(), 0.0, 1e-9);
}

TEST(BitDist, MinEntropyIsAtMostShannon) {
  Rng rng(1);
  for (int iter = 0; iter < 20; ++iter) {
    BitDist d(6);
    for (uint64_t x = 0; x < d.size(); ++x) d.set_p(x, rng.NextDouble());
    d.Normalize();
    EXPECT_LE(d.MinEntropy(), d.ShannonEntropy() + 1e-9);
  }
}

TEST(BitDist, UniformOnSetHasLogSupportEntropy) {
  BitDist d = BitDist::UniformOnSet(8, {1, 2, 3, 4});
  EXPECT_NEAR(d.MinEntropy(), 2.0, 1e-9);
}

TEST(BitDist, SmoothingIncreasesMinEntropy) {
  // Spike + uniform: smoothing removes the spike.
  BitDist d(6);
  for (uint64_t x = 0; x < d.size(); ++x) d.set_p(x, 1.0);
  d.set_p(0, 100.0);
  d.Normalize();
  const double h0 = d.MinEntropy();
  const double h_smooth = d.SmoothMinEntropy(0.7);
  EXPECT_GT(h_smooth, h0 + 1.0);
  // Monotone in eps.
  EXPECT_LE(d.SmoothMinEntropy(0.1), d.SmoothMinEntropy(0.5) + 1e-9);
}

TEST(BitDist, SmoothingWithZeroEpsIsPlain) {
  BitDist d = BitDist::Uniform(5);
  EXPECT_NEAR(d.SmoothMinEntropy(0), d.MinEntropy(), 1e-9);
}

TEST(StatDistance, IdenticalAndDisjoint) {
  BitDist a = BitDist::PointMass(4, 1);
  BitDist b = BitDist::PointMass(4, 2);
  EXPECT_NEAR(StatDistance(a, a), 0.0, 1e-12);
  EXPECT_NEAR(StatDistance(a, b), 1.0, 1e-12);
  BitDist u = BitDist::Uniform(4);
  EXPECT_NEAR(StatDistance(u, a), 1.0 - 1.0 / 16, 1e-12);
}

TEST(Guessing, Lemma63Shape) {
  // Pr[guess] = 2^{-H∞}: the Lemma 6.3 bound with eps = 0.
  BitDist d = BitDist::UniformOnSet(8, {3, 7, 9, 11, 200, 201, 202, 203});
  EXPECT_NEAR(GuessingProbability(d), std::pow(2.0, -d.MinEntropy()), 1e-12);
}

TEST(Extractor, FullEntropySourcesAreNearUniform) {
  Rng rng(2);
  ExtractorResult r = InnerProductExperiment(/*n=*/10, /*k1=*/10, /*k2=*/10, &rng);
  EXPECT_NEAR(r.delta, 1.0, 1e-9);
  // Bound 2^{-n/2-1} ≈ 0.015; the exact distance should comply.
  EXPECT_LE(r.distance, r.theorem_bound + 1e-9);
}

TEST(Extractor, TheoremBoundHoldsAcrossDeltas) {
  Rng rng(3);
  for (int k = 6; k <= 10; ++k) {
    ExtractorResult r = InnerProductExperiment(10, k, 10, &rng);
    if (r.delta > 0) {
      EXPECT_LE(r.distance, r.theorem_bound + 1e-9)
          << "k1=" << k << " delta=" << r.delta;
    }
  }
}

TEST(Extractor, DistanceDecaysWithDelta) {
  Rng rng(4);
  ExtractorResult low = InnerProductExperiment(12, 7, 7, &rng);
  ExtractorResult high = InnerProductExperiment(12, 11, 11, &rng);
  EXPECT_GT(low.distance, high.distance);
}

TEST(Extractor, LowEntropyCanFail) {
  // A dimension-k subspace source with z in its orthogonal complement makes
  // <y,z> constant: distance 1/2. We emulate the worst case analytically:
  // with k1 + k2 <= n the theorem gives no guarantee; just document that
  // the bound reported is vacuous (>= 1) there.
  Rng rng(5);
  ExtractorResult r = InnerProductExperiment(10, 4, 4, &rng);
  EXPECT_GE(r.theorem_bound, 1.0);
}

TEST(MatrixEntropy, NoLeakGivesNearFullEntropy) {
  Rng rng(6);
  auto r = MatrixVectorExperiment(/*m=*/8, /*n=*/10, /*gamma=*/0.0,
                                  /*support_log2=*/6, &rng);
  // x is never 0, A fully uniform: Ax is exactly uniform on F2^m.
  EXPECT_NEAR(r.hinf_ax, 8.0, 1e-9);
  EXPECT_NEAR(r.theorem_floor, 8.0, 1e-9);
}

TEST(MatrixEntropy, TheoremFloorHolds) {
  Rng rng(7);
  for (double gamma : {0.02, 0.05, 0.1}) {
    auto r = MatrixVectorExperiment(10, 12, gamma, 7, &rng);
    EXPECT_GE(r.hinf_ax + 1e-6, r.theorem_floor)
        << "gamma=" << gamma << " H(Ax)=" << r.hinf_ax;
  }
}

TEST(MatrixEntropy, EntropyDegradesGracefullyWithLeak) {
  Rng rng(8);
  auto lo = MatrixVectorExperiment(10, 12, 0.05, 7, &rng);
  auto hi = MatrixVectorExperiment(10, 12, 0.6, 7, &rng);
  EXPECT_GE(lo.hinf_ax, hi.hinf_ax - 1e-9);
}

TEST(MatrixEntropy, OutputDistributionIsNormalized) {
  Rng rng(9);
  auto r = MatrixVectorExperiment(8, 10, 0.1, 6, &rng);
  EXPECT_NEAR(r.ax_dist.TotalMass(), 1.0, 1e-9);
}

TEST(ShannonCounterexample, FactorTwoDrop) {
  // Appendix I.3: H(x) ≈ 2α(1-α)n but H(Ax | f(A)) <= αn — the conditional
  // Shannon entropy can halve, breaking the inductive argument.
  auto c = ShannonCounterexampleNumbers(/*n=*/100, /*alpha=*/0.25);
  EXPECT_NEAR(c.h_x, 0.75 * 25 + 0.25 * 75, 1e-9);
  EXPECT_NEAR(c.h_ax_given_leak, 25.0, 1e-9);
  EXPECT_LT(c.h_ax_given_leak, c.h_x / 1.4);
}

class ExtractorSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExtractorSweep, BoundHoldsOnRandomSources) {
  Rng rng(100 + GetParam());
  const int n = 8 + GetParam() % 4;
  const int k1 = n - GetParam() % 2;
  const int k2 = n - 1;
  ExtractorResult r = InnerProductExperiment(n, k1, k2, &rng);
  if (r.delta > 0) EXPECT_LE(r.distance, r.theorem_bound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExtractorSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace topofaq
